GO ?= go

.PHONY: check build vet test bench

## check is the tier-1 verification gate: every PR must leave it green.
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

## bench runs the hot-path microbenchmarks (store mutation and sync batch
## assembly) with allocation stats, for before/after comparisons.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStorePut' -benchmem ./internal/store/
	$(GO) test -run xxx -bench 'BenchmarkHandleSyncRequest|BenchmarkMakeSyncRequest' -benchmem ./internal/replica/
