GO ?= go

.PHONY: check build vet test test-differential bench

## check is the tier-1 verification gate: every PR must leave it green.
## test-differential re-runs the engine-equivalence tests on their own so a
## parallel-engine regression is named explicitly in the failure output.
check: build vet test test-differential

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

## test-differential proves the parallel emulation engine is bit-identical to
## the sequential reference across every policy and constraint mode.
test-differential:
	$(GO) test -race -run Differential ./internal/emu/

## bench runs the hot-path microbenchmarks (store mutation, sync batch
## assembly, and whole emulation runs) with allocation stats, for
## before/after comparisons.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStorePut' -benchmem ./internal/store/
	$(GO) test -run xxx -bench 'BenchmarkHandleSyncRequest|BenchmarkMakeSyncRequest' -benchmem ./internal/replica/
	$(GO) test -run xxx -bench 'BenchmarkEmuRun' -benchmem ./internal/emu/
