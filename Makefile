GO ?= go

## COVER_FLOOR is the coverage baseline `make cover` enforces. Raise it when
## coverage grows; never lower it to make a failing build pass. Coverage is
## measured with -coverpkg=./... (union across all test binaries) because the
## analyzer driver (internal/analysis/lintcore) and golden-test harness
## (linttest) are deliberately exercised from other packages' tests; without
## cross-package accounting their genuinely-executed statements would count
## as dead.
COVER_FLOOR ?= 86.0

## FUZZ_SMOKE_TIME bounds each fuzz target's run in `make fuzz-smoke`: long
## enough to mutate past the seed corpus, short enough for every CI run.
FUZZ_SMOKE_TIME ?= 10s

.PHONY: check build vet lint test test-differential cover fuzz-smoke bench bench-scale bench-sync bench-wal scale-smoke

## check is the tier-1 verification gate: every PR must leave it green.
## test-differential re-runs the engine-equivalence tests on their own so a
## parallel-engine regression is named explicitly in the failure output.
check: build vet lint test test-differential

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint runs dtnlint, the repository's own invariant checker (see
## internal/analysis and DESIGN.md §10): determinism, callbackunderlock,
## transientleak, errdiscard, lockorder, goroutineleak, unboundedgrowth, and
## hotpathalloc. Any diagnostic fails the build. A violation may be
## suppressed with `//lint:allow <analyzer> -- <justification>` ONLY when
## the flagged code upholds the invariant by other documented means (e.g. a
## callback contractually forbidden from re-entering, a transient field that
## is an explicit part of the wire protocol); the justification is mandatory
## and reviewed like code. Never allow-list to silence a finding you have
## not analyzed — fix it or escalate.
##
## The binary lands in bin/ and results are cached per package content hash
## under .dtnlint-cache, so a warm re-run only re-analyzes what changed.
lint:
	$(GO) build -o bin/dtnlint ./cmd/dtnlint
	./bin/dtnlint -cache .dtnlint-cache ./...

test:
	$(GO) test -race ./...

## test-differential proves the parallel emulation engine is bit-identical to
## the sequential reference across every policy and constraint mode — with
## faults off (including the faults-disabled equivalence smoke) and with a
## seeded fault schedule on.
test-differential:
	$(GO) test -race -run 'Differential|FaultsDisabled' ./internal/emu/

## cover fails if total statement coverage drops below COVER_FLOOR.
cover:
	$(GO) test -coverpkg=./... -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'END { sub(/%/, "", $$3); if ($$3 + 0 < floor + 0) { \
			printf "coverage %.1f%% is below the %.1f%% floor\n", $$3, floor; exit 1 } }'

## fuzz-smoke runs each native fuzz target briefly against the
## parse-hostile surfaces — the transport's frame/gob stream, the v3 binary
## frame bodies (internal/wire), the vclock knowledge codec, and the WAL's
## crash-recovery readers — complementing the static dtnlint pass with
## dynamic checking. Seed corpora live under each package's testdata/fuzz
## (regenerate with `go test -tags corpusgen -run WriteFuzzCorpus`; for the
## WAL, `WAL_GEN_CORPUS=1 go test -run TestGenerateFuzzCorpus
## ./internal/persist/wal/`). Any crasher fails the target; run the printed
## reproducer file under `go test` to debug.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzKnowledgeDecode$$' -fuzztime $(FUZZ_SMOKE_TIME) ./internal/vclock/
	$(GO) test -run '^$$' -fuzz '^FuzzKnowledgeMerge$$' -fuzztime $(FUZZ_SMOKE_TIME) ./internal/vclock/
	$(GO) test -run '^$$' -fuzz '^FuzzDigestDecode$$' -fuzztime $(FUZZ_SMOKE_TIME) ./internal/vclock/
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaDecode$$' -fuzztime $(FUZZ_SMOKE_TIME) ./internal/vclock/
	$(GO) test -run '^$$' -fuzz '^FuzzServeConn$$' -fuzztime $(FUZZ_SMOKE_TIME) ./internal/transport/
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZ_SMOKE_TIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZ_SMOKE_TIME) ./internal/persist/wal/

## bench runs the hot-path microbenchmarks (store mutation, sync batch
## assembly, whole emulation runs, and the observability hooks' disabled-path
## overhead) with allocation stats, for before/after comparisons. The alloc
## budget test turns the //dtn:hotpath functions' measured allocs/op into a
## hard assertion (it must run without -race; the race runtime inflates
## allocation counts).
bench:
	$(GO) test -run 'TestSyncAllocBudget' -count=1 ./internal/replica/
	$(GO) test -run xxx -bench 'BenchmarkStorePut' -benchmem ./internal/store/
	$(GO) test -run xxx -bench 'BenchmarkHandleSyncRequest|BenchmarkMakeSyncRequest' -benchmem ./internal/replica/
	$(GO) test -run xxx -bench 'BenchmarkEmuRun|BenchmarkPartition' -benchmem ./internal/emu/
	$(GO) test -run xxx -bench 'BenchmarkSyncHooks' -benchmem .

## bench-scale drives the region-sharded engine across seeded random-waypoint
## fleets up to 100k nodes (sequential baseline at each size the schedule
## keeps tractable). Results are recorded in BENCH_scale.json — refresh the
## file when the engine's scaling behavior changes.
bench-scale:
	$(GO) test -run xxx -bench 'BenchmarkScale' -benchtime 3x -timeout 30m -benchmem ./internal/emu/

## bench-sync measures the knowledge-frame bytes each sync request
## representation ships at 10k+ known versions — exact v1 frame, protocol-v2
## Bloom digest, and recurring-pair delta — plus the protocol-v3 binary frame
## codec against the gob stream it replaced, with allocation stats. Results
## are recorded in BENCH_sync.json; refresh the file when the knowledge
## codec, digest sizing, delta protocol, or frame codec changes. The >=5x
## reduction the file reports is pinned as a regular test by
## TestKnowledgeFrameReduction.
bench-sync:
	$(GO) test -run xxx -bench 'BenchmarkKnowledgeFrame' -benchmem ./internal/replica/
	$(GO) test -run xxx -bench 'BenchmarkSyncResponseCodec' -benchmem ./internal/wire/

## bench-wal measures the write-ahead-log backend: the per-mutation append
## cost (encode + frame + fsync bookkeeping) with and without memtable
## flushing, and recovery time against logs of growing length. Results are
## recorded in BENCH_wal.json — refresh the file when the record format,
## flush policy, or recovery path changes.
bench-wal:
	$(GO) test -run xxx -bench 'BenchmarkWAL' -benchmem ./internal/persist/wal/

## scale-smoke is the scale gate CI runs on every push: a 10k-node
## random-waypoint scenario through the sequential and the sharded engine
## under -race, asserting bit-identical results and event logs. Opt-in via
## the env var because tier-1 `make test` should stay fast.
scale-smoke:
	DTN_SCALE_SMOKE=1 $(GO) test -race -run 'TestScaleSmoke' -v ./internal/emu/
