GO ?= go

## COVER_FLOOR is the coverage baseline `make cover` enforces: the total
## statement coverage measured before the fault-injection PR. Raise it when
## coverage grows; never lower it to make a failing build pass.
COVER_FLOOR ?= 82.7

.PHONY: check build vet test test-differential cover bench

## check is the tier-1 verification gate: every PR must leave it green.
## test-differential re-runs the engine-equivalence tests on their own so a
## parallel-engine regression is named explicitly in the failure output.
check: build vet test test-differential

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

## test-differential proves the parallel emulation engine is bit-identical to
## the sequential reference across every policy and constraint mode — with
## faults off (including the faults-disabled equivalence smoke) and with a
## seeded fault schedule on.
test-differential:
	$(GO) test -race -run 'Differential|FaultsDisabled' ./internal/emu/

## cover fails if total statement coverage drops below COVER_FLOOR.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'END { sub(/%/, "", $$3); if ($$3 + 0 < floor + 0) { \
			printf "coverage %.1f%% is below the %.1f%% floor\n", $$3, floor; exit 1 } }'

## bench runs the hot-path microbenchmarks (store mutation, sync batch
## assembly, and whole emulation runs) with allocation stats, for
## before/after comparisons.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStorePut' -benchmem ./internal/store/
	$(GO) test -run xxx -bench 'BenchmarkHandleSyncRequest|BenchmarkMakeSyncRequest' -benchmem ./internal/replica/
	$(GO) test -run xxx -bench 'BenchmarkEmuRun' -benchmem ./internal/emu/
