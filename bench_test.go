package replidtn

// One benchmark per table and figure of the paper's evaluation, each
// regenerating its rows/series on a scaled-down deterministic trace, plus
// micro-benchmarks for the synchronization hot path. Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale experiments (paper-calibrated 17-day trace) run via
// cmd/dtnsim; their measured outputs are recorded in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"replidtn/internal/emu"
	"replidtn/internal/experiment"
	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/trace"
	"replidtn/internal/vclock"
)

// benchTrace caches the scaled-down trace across benchmarks.
var benchTrace *trace.Trace

func getBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	if benchTrace == nil {
		tr, err := experiment.SmallTrace(1)
		if err != nil {
			b.Fatal(err)
		}
		benchTrace = tr
	}
	return benchTrace
}

// BenchmarkTable1 regenerates the Table I policy summary.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiment.FormatTable1(experiment.Table1()); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 regenerates the Table II parameter listing.
func BenchmarkTable2(b *testing.B) {
	params := emu.DefaultParams()
	for i := 0; i < b.N; i++ {
		if out := experiment.FormatTable2(params); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig5 regenerates the mean-delay-vs-filter-size sweep (random and
// selected strategies).
func BenchmarkFig5(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		fs, err := experiment.RunFilterSweep(tr, []int{0, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(fs.Fig5()) != 2 {
			b.Fatal("malformed Fig5 series")
		}
	}
}

// BenchmarkFig6 regenerates the delivery-within-12h-vs-filter-size sweep.
func BenchmarkFig6(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		fs, err := experiment.RunFilterSweep(tr, []int{0, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(fs.Fig6()) != 2 {
			b.Fatal("malformed Fig6 series")
		}
	}
}

// BenchmarkFig7 regenerates the unconstrained per-policy delay CDFs (both
// the 12-hour and the 10-day views).
func BenchmarkFig7(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		ps, err := experiment.RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(ps.CDFHours(12)) == 0 || len(ps.CDFDays(10)) == 0 {
			b.Fatal("malformed Fig7 series")
		}
	}
}

// BenchmarkFig8 regenerates the stored-copies accounting.
func BenchmarkFig8(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		ps, err := experiment.RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(ps.Fig8()) == 0 {
			b.Fatal("malformed Fig8 rows")
		}
	}
}

// BenchmarkFig9 regenerates the bandwidth-constrained CDFs (one message per
// encounter).
func BenchmarkFig9(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		ps, err := experiment.RunPolicySweep(tr, emu.DefaultParams(), 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(ps.CDFHours(12)) == 0 {
			b.Fatal("malformed Fig9 series")
		}
	}
}

// BenchmarkFig10 regenerates the storage-constrained CDFs (two relayed
// messages per node, FIFO eviction).
func BenchmarkFig10(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		ps, err := experiment.RunPolicySweep(tr, emu.DefaultParams(), 0, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(ps.CDFHours(12)) == 0 {
			b.Fatal("malformed Fig10 series")
		}
	}
}

// BenchmarkAblationTTL regenerates the epidemic TTL ablation.
func BenchmarkAblationTTL(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationEpidemicTTL(tr, []int{2, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSprayCopies regenerates the spray allowance ablation.
func BenchmarkAblationSprayCopies(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationSprayCopies(tr, []int{4, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEviction regenerates the relay-eviction comparison.
func BenchmarkAblationEviction(b *testing.B) {
	tr := getBenchTrace(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationEviction(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncPair measures one directed synchronization between two
// replicas holding a realistic store.
func BenchmarkSyncPair(b *testing.B) {
	src := replica.New(replica.Config{
		ID: "src", OwnAddresses: []string{"addr:src"}, Policy: epidemic.New(10),
	})
	for i := 0; i < 200; i++ {
		src.CreateItem(item.Metadata{
			Source:       "addr:src",
			Destinations: []string{fmt.Sprintf("addr:%d", i%20)},
			Kind:         "message",
		}, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := replica.New(replica.Config{
			ID:           vclock.ReplicaID(fmt.Sprintf("dst%d", i)),
			OwnAddresses: []string{"addr:0"},
			Policy:       epidemic.New(10),
		})
		replica.Sync(src, dst, 0)
	}
}

// BenchmarkSyncPairConstrained measures the bandwidth-constrained encounter
// hot path (Fig. 9's 1-message budget) against a large source store: the
// source must pick the single best item out of thousands of candidates,
// which exercises the streaming top-K batch selector rather than a full
// sort.
func BenchmarkSyncPairConstrained(b *testing.B) {
	src := replica.New(replica.Config{
		ID: "src", OwnAddresses: []string{"addr:src"}, Policy: epidemic.New(10),
	})
	for i := 0; i < 5000; i++ {
		src.CreateItem(item.Metadata{
			Source:       "addr:src",
			Destinations: []string{fmt.Sprintf("addr:%d", i%20)},
			Kind:         "message",
		}, nil)
	}
	dst := replica.New(replica.Config{
		ID: "dst", OwnAddresses: []string{"addr:none"}, Policy: epidemic.New(10),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := dst.MakeSyncRequest(1)
		resp := src.HandleSyncRequest(req)
		if len(resp.Items) != 1 {
			b.Fatalf("want 1 item, got %d", len(resp.Items))
		}
	}
}

// BenchmarkSyncHooks measures the observability hooks' cost on the
// synchronization hot path. "off" is the nil-sink default every emulation
// runs with — its per-op cost must be indistinguishable from a build without
// the hooks, which is the "disabled means free" contract in DESIGN.md §11.
// "on" attaches a live ReplicaMetrics sink for the instrumented comparison.
func BenchmarkSyncHooks(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    *obs.ReplicaMetrics
	}{{"off", nil}, {"on", &obs.ReplicaMetrics{}}} {
		b.Run(mode.name, func(b *testing.B) {
			src := replica.New(replica.Config{
				ID: "src", OwnAddresses: []string{"addr:src"},
				Policy: epidemic.New(10), Metrics: mode.m,
			})
			for i := 0; i < 5000; i++ {
				src.CreateItem(item.Metadata{
					Source:       "addr:src",
					Destinations: []string{fmt.Sprintf("addr:%d", i%20)},
					Kind:         "message",
				}, nil)
			}
			dst := replica.New(replica.Config{
				ID: "dst", OwnAddresses: []string{"addr:none"},
				Policy: epidemic.New(10), Metrics: mode.m,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := dst.MakeSyncRequest(16)
				resp := src.HandleSyncRequest(req)
				if len(resp.Items) != 16 {
					b.Fatalf("want 16 items, got %d", len(resp.Items))
				}
			}
		})
	}
}

// BenchmarkEmulationDay measures one emulated day of the full evaluation
// pipeline under Epidemic routing.
func BenchmarkEmulationDay(b *testing.B) {
	dn := trace.DefaultDieselNet()
	dn.Days = 1
	wl := trace.DefaultWorkload()
	wl.InjectDays = 1
	wl.Messages = 61
	tr, err := trace.Generate(dn, wl, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emu.Run(emu.Config{
			Trace:  tr,
			Policy: emu.Factory(emu.PolicyEpidemic, emu.DefaultParams()),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
