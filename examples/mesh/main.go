// Mesh: a self-assembling DTN over real sockets. Four nodes know only a
// shared list of UDP beacon targets; discovery finds live peers, and every
// discovery triggers a TCP encounter, so a message floods the mesh with no
// static topology at all — the closest this library gets to radios meeting
// on the street.
//
// Run with: go run ./examples/mesh
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"replidtn/internal/discovery"
	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/transport"
	"replidtn/internal/vclock"
)

const nodeCount = 4

func main() {
	// Reserve one UDP beacon address per node.
	udpAddrs := make([]string, nodeCount)
	for i := range udpAddrs {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		udpAddrs[i] = conn.LocalAddr().String()
		conn.Close()
	}

	var delivered sync.WaitGroup
	delivered.Add(1)

	nodes := make([]*replica.Replica, nodeCount)
	for i := range nodes {
		i := i
		id := fmt.Sprintf("node%d", i)
		cfg := replica.Config{
			ID:           vclock.ReplicaID(id),
			OwnAddresses: []string{fmt.Sprintf("addr:%d", i)},
			Policy:       epidemic.New(10),
		}
		if i == nodeCount-1 {
			cfg.OnDeliver = func(it *item.Item) {
				fmt.Printf("%s delivered %q\n", id, it.Payload)
				delivered.Done()
			}
		}
		nodes[i] = replica.New(cfg)
	}

	// Start a TCP encounter server and a discoverer per node. Each node
	// beacons to every known UDP address; whoever answers gets an encounter.
	for i, node := range nodes {
		node := node
		srv := transport.NewServer(node, 0)
		tcpAddr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()

		disc := discovery.New(discovery.Config{
			Self:     node.ID(),
			TCPAddr:  tcpAddr.String(),
			Listen:   udpAddrs[i],
			Targets:  udpAddrs,
			Interval: 100 * time.Millisecond,
			OnPeer: func(p discovery.Peer) {
				fmt.Printf("%s discovered %s\n", node.ID(), p.ID)
				// Encounter errors are expected during shutdown (peers close
				// their servers as the example exits) and are simply skipped —
				// a DTN retries at the next contact anyway.
				_, _ = transport.Encounter(node, p.Addr, 0, 5*time.Second)
			},
		})
		if _, err := disc.Start(); err != nil {
			log.Fatal(err)
		}
		defer disc.Stop()
	}

	msg := nodes[0].CreateItem(item.Metadata{
		Source:       "addr:0",
		Destinations: []string{fmt.Sprintf("addr:%d", nodeCount-1)},
		Kind:         "message",
	}, []byte("found you through the mesh"))
	fmt.Printf("node0 sent %s; waiting for the mesh to carry it...\n", msg.ID)

	done := make(chan struct{})
	go func() { delivered.Wait(); close(done) }()
	select {
	case <-done:
		fmt.Println("delivered — no static topology required")
	case <-time.After(15 * time.Second):
		log.Fatal("mesh failed to deliver in time")
	}
}
