// Quickstart: the simplest possible DTN messaging setup on the replication
// substrate — two devices, one relay, no routing policy.
//
// Alice's phone and Bob's laptop never meet directly. A courier device
// volunteers to carry Bob's messages by adding Bob's address to its filter
// (the paper's §IV.B multi-address filters). Two opportunistic encounters
// later the message arrives, exactly once.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"replidtn/internal/messaging"
	"replidtn/internal/replica"
)

func main() {
	alice := messaging.NewEndpoint(messaging.Config{
		NodeID:    "alice-phone",
		Addresses: []string{"user:alice"},
	})
	courier := messaging.NewEndpoint(messaging.Config{
		NodeID:    "courier",
		Addresses: []string{"user:courier"},
		// The courier's filter volunteers for Bob's messages.
		ExtraFilterAddresses: []string{"user:bob"},
	})
	bob := messaging.NewEndpoint(messaging.Config{
		NodeID:    "bob-laptop",
		Addresses: []string{"user:bob"},
		OnReceive: func(r messaging.Received) {
			fmt.Printf("bob received %q from %s\n", r.Message.Body, r.Message.From)
		},
	})

	msg, err := alice.Send("user:alice", []string{"user:bob"}, []byte("see you at the shed at 23:00"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice sent message %s\n", msg.ID)

	// Encounter 1: Alice meets the courier. The courier's filter matches, so
	// the message replicates to it.
	replica.Encounter(alice.Replica(), courier.Replica(), 0)
	fmt.Printf("courier carries the message: %v\n", courier.Replica().HasItem(msg.ID))

	// Encounter 2: the courier meets Bob — delivery, exactly once, even if
	// they meet again.
	replica.Encounter(courier.Replica(), bob.Replica(), 0)
	replica.Encounter(courier.Replica(), bob.Replica(), 0)
	fmt.Printf("bob inbox: %d message(s), duplicates seen: %d\n",
		len(bob.Inbox()), bob.Replica().Stats().Duplicates)

	// Bob acknowledges; the tombstone flows back and clears the courier.
	if err := bob.Ack(msg.ID); err != nil {
		log.Fatal(err)
	}
	replica.Encounter(bob.Replica(), courier.Replica(), 0)
	fmt.Printf("after ack, courier still carries it: %v\n", courier.Replica().HasItem(msg.ID))
}
