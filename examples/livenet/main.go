// Livenet: the replication substrate as a real distributed system — five
// nodes in one process connected only by TCP loopback sockets, flooding a
// message along a line topology with Epidemic routing.
//
// Every node runs a transport.Server; encounters are genuine network
// exchanges of the sync protocol (hello, request with knowledge + filter +
// routing state, prioritized batch, reverse sync, ack).
//
// Run with: go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/transport"
	"replidtn/internal/vclock"
)

const nodeCount = 5

func main() {
	nodes := make([]*replica.Replica, nodeCount)
	servers := make([]*transport.Server, nodeCount)
	addrs := make([]string, nodeCount)
	for i := range nodes {
		id := fmt.Sprintf("node%d", i)
		nodes[i] = replica.New(replica.Config{
			ID:           vclock.ReplicaID(id),
			OwnAddresses: []string{fmt.Sprintf("addr:%d", i)},
			Policy:       epidemic.New(10),
			OnDeliver: func(it *item.Item) {
				fmt.Printf("  %s delivered %q\n", id, it.Payload)
			},
		})
		servers[i] = transport.NewServer(nodes[i], 0)
		bound, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer servers[i].Close()
		addrs[i] = bound.String()
		fmt.Printf("%s listening on %s\n", id, addrs[i])
	}

	msg := nodes[0].CreateItem(item.Metadata{
		Source:       "addr:0",
		Destinations: []string{fmt.Sprintf("addr:%d", nodeCount-1)},
		Kind:         "message",
	}, []byte("hello across the wire"))
	fmt.Printf("\nnode0 sends %s to addr:%d; encounters run left to right:\n", msg.ID, nodeCount-1)

	for i := 0; i+1 < nodeCount; i++ {
		if _, err := transport.Encounter(nodes[i], addrs[i+1], 0, 5*time.Second); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node%d <-> node%d done; node%d holds the message: %v\n",
			i, i+1, i+1, nodes[i+1].HasItem(msg.ID))
	}

	last := nodes[nodeCount-1].Stats()
	fmt.Printf("\nfinal node: delivered=%d duplicates=%d\n", last.Delivered, last.Duplicates)
}
