// Durable: replica state survives a crash. A relay node receives a message,
// snapshots itself to disk, "crashes", and restarts from the snapshot — its
// knowledge is intact, so the sender does not re-transmit, and its stored
// relay copy still reaches the destination.
//
// Run with: go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"replidtn/internal/item"
	"replidtn/internal/persist"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
)

func main() {
	dir, err := os.MkdirTemp("", "replidtn-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "relay.snap")

	alice := replica.New(replica.Config{
		ID: "alice", OwnAddresses: []string{"addr:alice"}, Policy: epidemic.New(10),
	})
	relayCfg := replica.Config{
		ID: "relay", OwnAddresses: []string{"addr:relay"}, Policy: epidemic.New(10),
	}
	relay := replica.New(relayCfg)
	bob := replica.New(replica.Config{
		ID: "bob", OwnAddresses: []string{"addr:bob"},
		OnDeliver: func(it *item.Item) { fmt.Printf("bob got %q\n", it.Payload) },
	})

	msg := alice.CreateItem(item.Metadata{
		Source:       "addr:alice",
		Destinations: []string{"addr:bob"},
		Kind:         "message",
	}, []byte("durable hello"))
	replica.Encounter(alice, relay, 0)
	fmt.Printf("relay carries the message: %v\n", relay.HasItem(msg.ID))

	if err := persist.Save(snapPath, relay); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relay state saved to %s\n", snapPath)

	// The process "crashes": the in-memory relay is discarded and rebuilt
	// from disk with a fresh policy instance.
	relay = nil
	restarted, err := persist.Load(snapPath, replica.Config{
		ID: "relay", OwnAddresses: []string{"addr:relay"}, Policy: epidemic.New(10),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted relay still carries it: %v\n", restarted.HasItem(msg.ID))

	// Alice meets the restarted relay: nothing to send — the knowledge
	// survived, so at-most-once holds across the crash.
	res := replica.Encounter(alice, restarted, 0)
	fmt.Printf("alice re-sent %d items after the restart\n", res.AtoB.Sent+res.BtoA.Sent)

	// The relay delivers to Bob as if nothing happened.
	replica.Encounter(restarted, bob, 0)
	fmt.Printf("bob delivered exactly once: %v\n", bob.Stats().Delivered == 1)
}
