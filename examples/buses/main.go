// Buses: the paper's full vehicular scenario in miniature — an e-mail
// workload routed through a DieselNet-like bus network, comparing the basic
// replication substrate against MaxProp and printing a Fig. 7-style delay
// CDF.
//
// Run with: go run ./examples/buses
package main

import (
	"fmt"
	"log"

	"replidtn/internal/emu"
	"replidtn/internal/metrics"
	"replidtn/internal/trace"
)

func main() {
	// A one-week slice of the paper's scenario.
	dn := trace.DefaultDieselNet()
	dn.Days = 7
	wl := trace.DefaultWorkload()
	wl.InjectDays = 3
	wl.Messages = 180
	tr, err := trace.Generate(dn, wl, 99)
	if err != nil {
		log.Fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("trace: %d days, %d encounters, %d messages over %d buses\n\n",
		st.Days, st.TotalEncounters, st.TotalMessages, len(tr.Buses))

	basic, err := emu.Run(emu.Config{Trace: tr})
	if err != nil {
		log.Fatal(err)
	}
	mp, err := emu.Run(emu.Config{
		Trace:  tr,
		Policy: emu.Factory(emu.PolicyMaxProp, emu.DefaultParams()),
	})
	if err != nil {
		log.Fatal(err)
	}

	bounds := metrics.HourBounds(12)
	xs := make([]float64, len(bounds))
	for i, b := range bounds {
		xs[i] = float64(b) / 3600
	}
	fmt.Println("delay CDF (% of messages delivered within N hours):")
	fmt.Print(metrics.FormatTable("hours", []metrics.Series{
		{Label: "cimbiosys", X: xs, Y: basic.Summary.CDF(bounds)},
		{Label: "maxprop", X: xs, Y: mp.Summary.CDF(bounds)},
	}))

	fmt.Printf("\nmean delay:   %6.1f h (basic)  vs %6.1f h (maxprop)\n",
		basic.Summary.MeanDelayHours(), mp.Summary.MeanDelayHours())
	fmt.Printf("delivered:    %6d    (basic)  vs %6d    (maxprop) of %d\n",
		basic.Summary.DeliveredCount(), mp.Summary.DeliveredCount(), basic.Summary.Total())
	fmt.Printf("items moved:  %6d    (basic)  vs %6d    (maxprop)\n",
		basic.ItemsTransferred, mp.ItemsTransferred)
	fmt.Printf("end copies:   %6.1f    (basic)  vs %6.1f    (maxprop)\n",
		basic.Summary.MeanCopiesAtEnd(), mp.Summary.MeanCopiesAtEnd())
}
