// Policies: the four DTN routing protocols side by side on one random gossip
// scenario, showing the trade-off the paper's evaluation quantifies — delay
// versus copies stored in the network.
//
// Twelve nodes gossip randomly; node 0 sends a message to node 11 under each
// policy in turn. The run reports when the message arrived and how many nodes
// ended up holding a copy.
//
// Run with: go run ./examples/policies
package main

import (
	"fmt"
	"math/rand"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/routing/spraywait"
	"replidtn/internal/vclock"
)

const (
	nodes      = 20
	encounters = 120
	seed       = 42
)

func main() {
	fmt.Printf("%-10s%16s%18s%14s\n", "policy", "delivered after", "copies in network", "items moved")
	for _, name := range []string{"none", "prophet", "spray", "epidemic", "maxprop"} {
		delivered, copies, moved := run(name)
		after := "never"
		if delivered >= 0 {
			after = fmt.Sprintf("%d encounters", delivered)
		}
		fmt.Printf("%-10s%16s%18d%14d\n", name, after, copies, moved)
	}
}

// run executes the scenario under one policy and returns the encounter index
// of delivery (-1 if undelivered), the final copy count, and total items
// transferred.
func run(policy string) (deliveredAt, copies, moved int) {
	var now int64
	clock := func() int64 { return now }
	mkPolicy := func(id string, addr string) routing.Policy {
		switch policy {
		case "epidemic":
			return epidemic.New(0)
		case "spray":
			return spraywait.New(0)
		case "prophet":
			return prophet.New(prophet.DefaultParams(), clock, addr)
		case "maxprop":
			return maxprop.New(vclock.ReplicaID(id), 0, clock, addr)
		default:
			return nil
		}
	}

	group := make([]*replica.Replica, nodes)
	for i := range group {
		id := fmt.Sprintf("n%02d", i)
		addr := fmt.Sprintf("addr:%02d", i)
		group[i] = replica.New(replica.Config{
			ID:           vclock.ReplicaID(id),
			OwnAddresses: []string{addr},
			Policy:       mkPolicy(id, addr),
		})
	}
	dest := fmt.Sprintf("addr:%02d", nodes-1)
	msg := group[0].CreateItem(item.Metadata{
		Source:       "addr:00",
		Destinations: []string{dest},
		Kind:         "message",
	}, []byte("profile the trade-off"))

	deliveredAt = -1
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < encounters; k++ {
		now += 600 // ten simulated minutes between encounters
		i, j := rng.Intn(nodes), rng.Intn(nodes)
		if i == j {
			continue
		}
		replica.Encounter(group[i], group[j], 0)
		if deliveredAt < 0 && group[nodes-1].HasItem(msg.ID) {
			deliveredAt = k + 1
		}
	}
	for _, r := range group {
		if r.HasItem(msg.ID) {
			copies++
		}
		moved += r.Stats().ItemsReceived
	}
	return deliveredAt, copies, moved
}
