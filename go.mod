// Deliberately dependency-free. The dtnlint analyzers mirror the
// golang.org/x/tools/go/analysis API but are built on the standard library
// alone (internal/analysis/lintcore) — see DESIGN.md §10.
module replidtn

go 1.22
