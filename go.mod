module replidtn

go 1.22
