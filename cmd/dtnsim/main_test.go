package main

import (
	"os"
	"strings"
	"testing"

	"replidtn/internal/fault"
	"replidtn/internal/obs"
)

func TestRunKnownExperiments(t *testing.T) {
	// The cheap experiments run on the scaled-down trace; the full figure
	// sweeps are covered by the experiment package and the benchmarks.
	// Alternating worker counts also smoke-tests the parallel engine path.
	for i, name := range []string{"table1", "table2", "fig8", "ablation-eviction", "fault-sweep"} {
		name := name
		workers := (i % 2) * 4
		emulates := name != "table1" && name != "table2"
		t.Run(name, func(t *testing.T) {
			nm := &obs.NodeMetrics{}
			if err := run(name, true, 1, "", workers, fault.Config{}, nm); err != nil {
				t.Fatalf("run(%q): %v", name, err)
			}
			if synced := nm.Replica.SyncsInitiated.Value() > 0; synced != emulates {
				t.Errorf("run(%q) synced=%v, want %v (SyncsInitiated=%d)",
					name, synced, emulates, nm.Replica.SyncsInitiated.Value())
			}
		})
	}
}

func TestDumpObs(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "obs")
	if err != nil {
		t.Fatal(err)
	}
	nm := &obs.NodeMetrics{}
	nm.Replica.SyncsInitiated.Add(3)
	dumpObs(f, nm)
	out, err := os.ReadFile(f.Name())
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"syncs_initiated": 3`) {
		t.Errorf("dump missing counter:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", true, 1, "", 0, fault.Config{}, nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBuildTrace(t *testing.T) {
	small, err := buildTrace(true, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	full, err := buildTrace(false, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if small.Days >= full.Days {
		t.Errorf("small trace (%d days) should be shorter than full (%d days)",
			small.Days, full.Days)
	}
	if err := full.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	// A faulted figure run exercises the full flag path: parsed spec, seeded
	// schedule, and fault option threading through the experiment driver.
	cfg, err := fault.Parse("drop=0.2,cutoff=0.3,cutoff-items=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	if err := run("fig8", true, 1, "", 2, cfg, nil); err != nil {
		t.Fatalf("faulted run: %v", err)
	}
}
