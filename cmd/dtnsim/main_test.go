package main

import (
	"testing"

	"replidtn/internal/fault"
)

func TestRunKnownExperiments(t *testing.T) {
	// The cheap experiments run on the scaled-down trace; the full figure
	// sweeps are covered by the experiment package and the benchmarks.
	// Alternating worker counts also smoke-tests the parallel engine path.
	for i, name := range []string{"table1", "table2", "fig8", "ablation-eviction", "fault-sweep"} {
		name := name
		workers := (i % 2) * 4
		t.Run(name, func(t *testing.T) {
			if err := run(name, true, 1, "", workers, fault.Config{}); err != nil {
				t.Fatalf("run(%q): %v", name, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", true, 1, "", 0, fault.Config{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBuildTrace(t *testing.T) {
	small, err := buildTrace(true, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	full, err := buildTrace(false, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if small.Days >= full.Days {
		t.Errorf("small trace (%d days) should be shorter than full (%d days)",
			small.Days, full.Days)
	}
	if err := full.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	// A faulted figure run exercises the full flag path: parsed spec, seeded
	// schedule, and fault option threading through the experiment driver.
	cfg, err := fault.Parse("drop=0.2,cutoff=0.3,cutoff-items=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	if err := run("fig8", true, 1, "", 2, cfg); err != nil {
		t.Fatalf("faulted run: %v", err)
	}
}
