package main

import (
	"os"
	"strings"
	"testing"

	"replidtn/internal/fault"
	"replidtn/internal/obs"
)

func TestRunKnownExperiments(t *testing.T) {
	// The cheap experiments run on the scaled-down trace; the full figure
	// sweeps are covered by the experiment package and the benchmarks.
	// Alternating worker counts also smoke-tests the parallel engine path.
	for i, name := range []string{"table1", "table2", "fig8", "ablation-eviction", "fault-sweep"} {
		name := name
		workers := (i % 2) * 4
		emulates := name != "table1" && name != "table2"
		t.Run(name, func(t *testing.T) {
			nm := &obs.NodeMetrics{}
			if err := run(name, true, 1, "", "", workers, fault.Config{}, nm, i%2 == 0); err != nil {
				t.Fatalf("run(%q): %v", name, err)
			}
			if synced := nm.Replica.SyncsInitiated.Value() > 0; synced != emulates {
				t.Errorf("run(%q) synced=%v, want %v (SyncsInitiated=%d)",
					name, synced, emulates, nm.Replica.SyncsInitiated.Value())
			}
		})
	}
}

func TestDumpObs(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "obs")
	if err != nil {
		t.Fatal(err)
	}
	nm := &obs.NodeMetrics{}
	nm.Replica.SyncsInitiated.Add(3)
	dumpObs(f, nm)
	out, err := os.ReadFile(f.Name())
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"syncs_initiated": 3`) {
		t.Errorf("dump missing counter:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", true, 1, "", "", 0, fault.Config{}, nil, false); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBuildTrace(t *testing.T) {
	small, err := buildTrace(true, 1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	full, err := buildTrace(false, 1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if small.Days >= full.Days {
		t.Errorf("small trace (%d days) should be shorter than full (%d days)",
			small.Days, full.Days)
	}
	if err := full.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	// A faulted figure run exercises the full flag path: parsed spec, seeded
	// schedule, and fault option threading through the experiment driver.
	cfg, err := fault.Parse("drop=0.2,cutoff=0.3,cutoff-items=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	if err := run("fig8", true, 1, "", "", 2, cfg, nil, true); err != nil {
		t.Fatalf("faulted run: %v", err)
	}
}

func TestBuildTraceScenario(t *testing.T) {
	tr, err := buildTrace(false, 1, "", "rwp:n=30,seed=5,users=8,msgs=20,active=3600")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Buses) != 30 {
		t.Errorf("scenario trace has %d nodes, want 30", len(tr.Buses))
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := buildTrace(false, 1, "", "warp:n=10"); err == nil {
		t.Error("unknown scenario model should fail")
	}
}

func TestRunScenarioExperiment(t *testing.T) {
	// -scenario replaces the generated trace for any experiment.
	nm := &obs.NodeMetrics{}
	spec := "community:n=30,seed=5,users=8,msgs=20,active=3600,cells=2,bias=0.8"
	if err := run("summary", false, 1, "", spec, 4, fault.Config{}, nm, false); err != nil {
		t.Fatalf("run(summary, %q): %v", spec, err)
	}
	if nm.Replica.SyncsInitiated.Value() == 0 {
		t.Error("scenario run performed no syncs")
	}
}

func TestRunScaleSweepExperiment(t *testing.T) {
	var out strings.Builder
	if err := runScaleSweep(&out, false, "rwp:n=30,seed=5,users=8,msgs=20,active=3600", 4, fault.Config{}, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scale sweep", "workers", "rwp:n=30"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("sweep output missing %q:\n%s", want, out.String())
		}
	}
	// Each spec runs on both engines: header + 2 rows.
	if lines := strings.Count(strings.TrimRight(out.String(), "\n"), "\n") + 1; lines != 4 {
		t.Errorf("sweep printed %d lines, want 4:\n%s", lines, out.String())
	}
	// workers < 1 drops to the sequential engine only.
	out.Reset()
	if err := runScaleSweep(&out, false, "rwp:n=30,seed=5,users=8,msgs=20,active=3600", 0, fault.Config{}, nil); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimRight(out.String(), "\n"), "\n") + 1; lines != 3 {
		t.Errorf("sequential-only sweep printed %d lines, want 3:\n%s", lines, out.String())
	}
}
