// Command dtnsim runs the paper's evaluation experiments and prints the
// corresponding tables and figures as text.
//
// Usage:
//
//	dtnsim -experiment all            # every table and figure (default)
//	dtnsim -experiment fig7a          # one experiment
//	dtnsim -experiment fig9 -small    # scaled-down trace (fast)
//	dtnsim -experiment fig5 -seed 7   # different trace seed
//	dtnsim -experiment fig7a -trace ./traces   # run on an external CSV trace
//	dtnsim -experiment fig7a -scenario rwp:n=1000,seed=7   # seeded mobility scenario
//	dtnsim -experiment all -workers 0          # sequential reference engine
//	dtnsim -experiment scale-sweep             # engine throughput, 1k-100k nodes
//	dtnsim -experiment fig7a -cpuprofile cpu.out   # profile the run
//
// The engine runs region-sharded with one worker per CPU by default; output
// is bit-identical at any worker count, and -workers 0 selects the
// sequential reference engine.
//
// Scenario specs (see internal/mobility): dieselnet, rwp, community,
// corridor, dir:PATH — e.g. "rwp:n=100000,seed=7" or
// "community:n=500,cells=3,bias=0.7".
//
// Experiments: table1, table2, fig5, fig6, fig7a, fig7b, fig8, fig9, fig10,
// all, summary, fault-sweep, scale-sweep; ablations: ablation-ttl,
// ablation-copies, ablation-threshold, ablation-bandwidth, ablation-bytes,
// ablation-storage, ablation-lifetime, ablation-eviction.
//
// Fault injection (deterministic, seeded):
//
//	dtnsim -experiment fig7a -faults drop=0.3                # drop 30% of encounters
//	dtnsim -experiment fig7a -faults drop=0.1,cutoff=0.3,cutoff-items=2,crash=0.01
//	dtnsim -experiment fault-sweep -small                    # delivery vs fault dose
//	dtnsim -experiment fig7a -faults drop=0.3 -fault-seed 7  # different fault schedule
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"replidtn/internal/emu"
	"replidtn/internal/experiment"
	"replidtn/internal/fault"
	"replidtn/internal/metrics"
	"replidtn/internal/mobility"
	"replidtn/internal/obs"
	"replidtn/internal/trace"
)

func main() {
	var (
		name       = flag.String("experiment", "all", "experiment to run (table1, table2, fig5..fig10, fault-sweep, scale-sweep, all)")
		small      = flag.Bool("small", false, "use the scaled-down trace (fast)")
		seed       = flag.Int64("seed", 1, "trace generator seed")
		traceDir   = flag.String("trace", "", "load the trace from a directory of CSVs instead of generating it")
		scenario   = flag.String("scenario", "", `generate the trace from a mobility scenario spec, e.g. "rwp:n=1000,seed=7" (dieselnet, rwp, community, corridor, dir:PATH)`)
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "emulation worker goroutines (0 = sequential reference engine; output is identical)")
		faultSpec  = flag.String("faults", "", `fault injection spec, e.g. "drop=0.3,cutoff=0.25,cutoff-items=2,crash=0.01" ("" or "off" disables)`)
		faultSeed  = flag.Int64("fault-seed", 1, "fault schedule seed (same seed = same faults)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		obsDump    = flag.Bool("metrics", false, "dump aggregated replica/store observability counters as JSON to stderr at exit")
		summaries  = flag.Bool("summaries", false, "enable the compact knowledge summary sync protocol (Bloom digests + delta knowledge); delivery results are identical, knowledge traffic shrinks")
	)
	flag.Parse()
	faults, err := fault.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtnsim: %v\n", err)
		os.Exit(2)
	}
	faults.Seed = *faultSeed
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtnsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dtnsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var nm *obs.NodeMetrics
	if *obsDump {
		nm = &obs.NodeMetrics{}
	}
	if err := run(*name, *small, *seed, *traceDir, *scenario, *workers, faults, nm, *summaries); err != nil {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "dtnsim: %v\n", err)
		os.Exit(1)
	}
	if nm != nil {
		dumpObs(os.Stderr, nm)
	}
}

// dumpObs renders the aggregated counters as indented JSON. The dump goes to
// stderr so experiment tables on stdout stay byte-comparable across runs.
func dumpObs(w *os.File, nm *obs.NodeMetrics) {
	out, err := json.MarshalIndent(nm.Snapshot(), "", "  ")
	if err != nil {
		fmt.Fprintf(w, "dtnsim: metrics dump: %v\n", err)
		return
	}
	fmt.Fprintf(w, "== observability counters (aggregated over all nodes and runs) ==\n%s\n", out)
}

func run(name string, small bool, seed int64, traceDir, scenario string, workers int, faults fault.Config, nm *obs.NodeMetrics, summaries bool) error {
	if name == "scale-sweep" {
		// The sweep materializes its own scenarios (one per rung of the
		// ladder); -scenario narrows it to a single spec.
		return runScaleSweep(os.Stdout, small, scenario, workers, faults, nm)
	}
	tr, err := buildTrace(small, seed, traceDir, scenario)
	if err != nil {
		return err
	}
	params := emu.DefaultParams()
	ww := experiment.WithWorkers(workers)
	wf := experiment.WithFaults(faults)
	wo := experiment.WithObs(nm)
	ws := experiment.WithSyncSummaries(summaries)
	if summaries {
		fmt.Fprintln(os.Stdout, "[sync summaries: on]")
	}
	if faults.Enabled() {
		fmt.Fprintf(os.Stdout, "[faults: %s]\n", faults)
	}
	out := os.Stdout

	switch name {
	case "all":
		suite := &experiment.Suite{Trace: tr, Params: params, Workers: workers, Faults: faults, Obs: nm, Summaries: summaries}
		return suite.RunAll(out)
	case "table1":
		fmt.Fprint(out, experiment.FormatTable1(experiment.Table1()))
	case "table2":
		fmt.Fprint(out, experiment.FormatTable2(params))
	case "fig5", "fig6":
		fs, err := experiment.RunFilterSweep(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		if name == "fig5" {
			fmt.Fprintf(out, "Fig. 5: average message delay (hours) vs addresses in filter\n%s",
				metrics.FormatTable("k", fs.Fig5()))
		} else {
			fmt.Fprintf(out, "Fig. 6: %% delivered within 12 hours vs addresses in filter\n%s",
				metrics.FormatTable("k", fs.Fig6()))
		}
	case "fig7a", "fig7b", "fig8":
		ps, err := experiment.RunPolicySweep(tr, params, 0, 0, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		switch name {
		case "fig7a":
			fmt.Fprintf(out, "Fig. 7(a): delay CDF, first 12 hours (%% delivered)\n%s",
				metrics.FormatTable("hours", ps.CDFHours(12)))
		case "fig7b":
			fmt.Fprintf(out, "Fig. 7(b): delay CDF, 1-10 days (%% delivered)\n%s",
				metrics.FormatTable("days", ps.CDFDays(10)))
		case "fig8":
			fmt.Fprintf(out, "Fig. 8: average stored copies per message\n%s",
				experiment.FormatFig8(ps.Fig8()))
		}
	case "fig9":
		ps, err := experiment.RunPolicySweep(tr, params, 1, 0, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Fig. 9: delay CDF under bandwidth constraint (1 msg/encounter)\n%s",
			metrics.FormatTable("hours", ps.CDFHours(12)))
	case "fig10":
		ps, err := experiment.RunPolicySweep(tr, params, 0, 2, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Fig. 10: delay CDF under storage constraint (2 relayed msgs/node)\n%s",
			metrics.FormatTable("hours", ps.CDFHours(12)))
	case "summary":
		ps, err := experiment.RunPolicySweep(tr, params, 0, 0, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Per-policy overview (unconstrained)\n%s",
			experiment.FormatSummary(ps.SummaryRows()))
	case "fault-sweep":
		// The sweep injects its own fault grid; -faults selects nothing here,
		// but -fault-seed still picks the schedule.
		rows, err := experiment.RunFaultSweep(tr, faults.Seed, nil, nil, ww, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Fault sweep: delivery vs encounter drop probability and cutoff budget (seed %d)\n%s",
			faults.Seed, experiment.FormatFaultSweep(rows))
	case "ablation-ttl":
		rows, err := experiment.AblationEpidemicTTL(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: epidemic TTL", rows))
	case "ablation-copies":
		rows, err := experiment.AblationSprayCopies(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: spray copy allowance", rows))
	case "ablation-threshold":
		rows, err := experiment.AblationMaxPropThreshold(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: MaxProp hop threshold (1 msg/encounter)", rows))
	case "ablation-bandwidth":
		rows, err := experiment.AblationBandwidth(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: per-encounter budget (epidemic)", rows))
	case "ablation-storage":
		rows, err := experiment.AblationStorage(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: relay capacity (epidemic)", rows))
	case "ablation-bytes":
		rows, err := experiment.AblationByteBudget(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: per-encounter byte budget (epidemic, 1KiB msgs)", rows))
	case "ablation-lifetime":
		rows, err := experiment.AblationLifetime(tr, nil, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: bounded message lifetime (epidemic)", rows))
	case "ablation-eviction":
		rows, err := experiment.AblationEviction(tr, ww, wf, wo, ws)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FormatAblation("Ablation: relay eviction strategy (capacity 2)", rows))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// runScaleSweep drives the engine-throughput ladder: each rung materializes
// a seeded mobility scenario and runs it on the sequential reference engine
// and the sharded engine, reporting wall-clock throughput and partition
// statistics.
func runScaleSweep(out io.Writer, small bool, scenario string, workers int, faults fault.Config, nm *obs.NodeMetrics) error {
	specs := experiment.DefaultScaleSpecs
	if small {
		specs = experiment.SmallScaleSpecs
	}
	if scenario != "" {
		specs = []string{scenario}
	}
	counts := []int{0, workers}
	if workers < 1 {
		counts = []int{0}
	}
	rows, err := experiment.RunScaleSweep(specs, counts, emu.PolicySpray,
		experiment.WithFaults(faults), experiment.WithObs(nm))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Scale sweep: engine throughput vs fleet size (spray policy)\n%s",
		experiment.FormatScaleSweep(rows))
	return nil
}

func buildTrace(small bool, seed int64, traceDir, scenario string) (*trace.Trace, error) {
	if traceDir != "" {
		return trace.LoadDir(traceDir)
	}
	if scenario != "" {
		sc, err := mobility.Parse(scenario)
		if err != nil {
			return nil, err
		}
		return trace.Materialize(sc)
	}
	if small {
		return experiment.SmallTrace(seed)
	}
	dn := trace.DefaultDieselNet()
	dn.Seed = seed
	wl := trace.DefaultWorkload()
	wl.Seed = seed + 1
	return trace.Generate(dn, wl, seed+2)
}
