package main

import (
	"os"
	"path/filepath"
	"testing"

	"replidtn/internal/trace"
)

func TestRunWritesAllFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 3); err != nil {
		t.Fatal(err)
	}
	enc, err := os.Open(filepath.Join(dir, "encounters.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	encounters, err := trace.ReadEncounters(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(encounters) == 0 {
		t.Error("no encounters written")
	}
	msgs, err := os.Open(filepath.Join(dir, "messages.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer msgs.Close()
	messages, err := trace.ReadMessages(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(messages) == 0 {
		t.Error("no messages written")
	}
	for _, m := range messages {
		if trace.Day(m.Time) >= 3 {
			t.Errorf("message %s beyond the 3-day override", m.ID)
		}
	}
	asg, err := os.Open(filepath.Join(dir, "assignments.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer asg.Close()
	assignments, err := trace.ReadAssignments(asg)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 3 {
		t.Errorf("assignments cover %d days, want 3", len(assignments))
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run("/dev/null/nope", 1, 0); err == nil {
		t.Error("unwritable directory should fail")
	}
}
