package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"replidtn/internal/mobility"
	"replidtn/internal/trace"
)

func TestRunWritesAllFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 3, ""); err != nil {
		t.Fatal(err)
	}
	nodes, err := os.Open(filepath.Join(dir, trace.NodesFile))
	if err != nil {
		t.Fatal(err)
	}
	defer nodes.Close()
	roster, err := trace.ReadNodes(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(roster) == 0 {
		t.Error("no nodes written")
	}
	enc, err := os.Open(filepath.Join(dir, "encounters.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	encounters, err := trace.ReadEncounters(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(encounters) == 0 {
		t.Error("no encounters written")
	}
	msgs, err := os.Open(filepath.Join(dir, "messages.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer msgs.Close()
	messages, err := trace.ReadMessages(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(messages) == 0 {
		t.Error("no messages written")
	}
	for _, m := range messages {
		if trace.Day(m.Time) >= 3 {
			t.Errorf("message %s beyond the 3-day override", m.ID)
		}
	}
	asg, err := os.Open(filepath.Join(dir, "assignments.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer asg.Close()
	assignments, err := trace.ReadAssignments(asg)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 3 {
		t.Errorf("assignments cover %d days, want 3", len(assignments))
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run("/dev/null/nope", 1, 0, ""); err == nil {
		t.Error("unwritable directory should fail")
	}
}

// TestScenarioRoundTrip is the CSV round-trip gate for the mobility
// generators: a written scenario directory loaded back through trace.LoadDir
// must reconstruct the materialized trace exactly — roster (silent nodes
// included, via nodes.csv), schedule, workload, and assignments.
func TestScenarioRoundTrip(t *testing.T) {
	spec := "corridor:n=25,seed=9,users=6,msgs=15,active=3600,lanes=3"
	dir := t.TempDir()
	if err := run(dir, 1, 0, spec); err != nil {
		t.Fatal(err)
	}
	sc, err := mobility.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.Materialize(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loaded trace differs from materialized scenario:\nbuses %d vs %d, encounters %d vs %d, messages %d vs %d",
			len(got.Buses), len(want.Buses), len(got.Encounters), len(want.Encounters),
			len(got.Messages), len(want.Messages))
	}
}

func TestScenarioRejectsDaysOverride(t *testing.T) {
	if err := run(t.TempDir(), 1, 3, "rwp:n=10"); err == nil {
		t.Error("-days with -scenario should fail")
	}
}

func TestBadScenarioSpec(t *testing.T) {
	if err := run(t.TempDir(), 1, 0, "warp:n=10"); err == nil {
		t.Error("unknown scenario model should fail")
	}
}
