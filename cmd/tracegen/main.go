// Command tracegen generates the synthetic DieselNet-like encounter trace and
// Enron-like message workload used by the experiments and writes them as CSV
// files, so they can be inspected or replaced by real traces.
//
// Usage:
//
//	tracegen -out ./traces            # writes encounters.csv, messages.csv,
//	                                  # assignments.csv and prints statistics
//	tracegen -out ./traces -seed 7 -days 10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"replidtn/internal/trace"
)

func main() {
	var (
		out  = flag.String("out", ".", "output directory")
		seed = flag.Int64("seed", 1, "generator seed")
		days = flag.Int("days", 0, "override number of days (0 = paper default)")
	)
	flag.Parse()
	if err := run(*out, *seed, *days); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, days int) error {
	dn := trace.DefaultDieselNet()
	dn.Seed = seed
	wl := trace.DefaultWorkload()
	wl.Seed = seed + 1
	if days > 0 {
		dn.Days = days
		if wl.InjectDays > days {
			wl.InjectDays = days
		}
	}
	tr, err := trace.Generate(dn, wl, seed+2)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "encounters.csv"), func(f *os.File) error {
		return trace.WriteEncounters(f, tr.Encounters)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "messages.csv"), func(f *os.File) error {
		return trace.WriteMessages(f, tr.Messages)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "assignments.csv"), func(f *os.File) error {
		return trace.WriteAssignments(f, tr.Assignment)
	}); err != nil {
		return err
	}
	st := tr.ComputeStats()
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("days: %d\n", st.Days)
	fmt.Printf("encounters: %d (%.1f/day)\n", st.TotalEncounters, st.EncountersPerDay)
	fmt.Printf("avg active buses/day: %.1f\n", st.AvgActiveBuses)
	fmt.Printf("messages: %d\n", st.TotalMessages)
	fmt.Printf("distinct meeting pairs: %d\n", st.DistinctPairs)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
