// Command tracegen generates an encounter trace and message workload and
// writes them as CSV files, so they can be inspected, replayed with dtnsim
// -trace, or replaced by real traces. The default scenario is the synthetic
// DieselNet-like trace with an Enron-like workload used by the paper's
// experiments; -scenario selects a seeded mobility model instead.
//
// Usage:
//
//	tracegen -out ./traces            # writes nodes.csv, encounters.csv,
//	                                  # messages.csv, assignments.csv
//	tracegen -out ./traces -seed 7 -days 10
//	tracegen -out ./traces -scenario rwp:n=500,seed=7
//	tracegen -out ./traces -scenario community:n=200,cells=3,bias=0.7
//
// Scenario specs (see internal/mobility): dieselnet, rwp, community,
// corridor, dir:PATH. The written directory round-trips: dtnsim
// -trace DIR (or trace.LoadDir) reconstructs the identical trace,
// silent nodes included via nodes.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"replidtn/internal/mobility"
	"replidtn/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 1, "generator seed (ignored when -scenario carries its own seed)")
		days     = flag.Int("days", 0, "override number of days (0 = scenario default)")
		scenario = flag.String("scenario", "", `mobility scenario spec, e.g. "rwp:n=500,seed=7" ("" = paper DieselNet trace)`)
	)
	flag.Parse()
	if err := run(*out, *seed, *days, *scenario); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, days int, scenario string) error {
	tr, err := buildTrace(seed, days, scenario)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	// nodes.csv pins the roster so loading the directory reconstructs nodes
	// that never appear in an encounter (trace.LoadDir reads it when present).
	if err := writeFile(filepath.Join(out, trace.NodesFile), func(f *os.File) error {
		return trace.WriteNodes(f, tr.Buses)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "encounters.csv"), func(f *os.File) error {
		return trace.WriteEncounters(f, tr.Encounters)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "messages.csv"), func(f *os.File) error {
		return trace.WriteMessages(f, tr.Messages)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "assignments.csv"), func(f *os.File) error {
		return trace.WriteAssignments(f, tr.Assignment)
	}); err != nil {
		return err
	}
	st := tr.ComputeStats()
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("nodes: %d\n", len(tr.Buses))
	fmt.Printf("days: %d\n", st.Days)
	fmt.Printf("encounters: %d (%.1f/day)\n", st.TotalEncounters, st.EncountersPerDay)
	fmt.Printf("avg active buses/day: %.1f\n", st.AvgActiveBuses)
	fmt.Printf("messages: %d\n", st.TotalMessages)
	fmt.Printf("distinct meeting pairs: %d\n", st.DistinctPairs)
	return nil
}

func buildTrace(seed int64, days int, scenario string) (*trace.Trace, error) {
	if scenario != "" {
		sc, err := mobility.Parse(scenario)
		if err != nil {
			return nil, err
		}
		if days > 0 {
			return nil, fmt.Errorf("-days does not apply to -scenario; set days in the spec (e.g. %q)",
				fmt.Sprintf("%s,days=%d", scenario, days))
		}
		return trace.Materialize(sc)
	}
	dn := trace.DefaultDieselNet()
	dn.Seed = seed
	wl := trace.DefaultWorkload()
	wl.Seed = seed + 1
	if days > 0 {
		dn.Days = days
		if wl.InjectDays > days {
			wl.InjectDays = days
		}
	}
	return trace.Generate(dn, wl, seed+2)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
