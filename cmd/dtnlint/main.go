// Command dtnlint is the repository's invariant checker: a multichecker
// running the eight dtnlint analyzers (determinism, callbackunderlock,
// transientleak, errdiscard, lockorder, goroutineleak, unboundedgrowth,
// hotpathalloc) over the packages matching the given patterns.
//
// Usage:
//
//	dtnlint [-json] [-cache dir] [-workers n] [packages]
//
// With no arguments it checks ./... relative to the current directory.
// Diagnostics print as file:line:col: analyzer: message, one per line, and
// any diagnostic makes the exit status 1 — `make lint` wires this into the
// tier-1 `make check` gate. With -json, output is instead one JSON document
// ({"diagnostics": [{file,line,col,analyzer,message}], "packages", "cached"})
// for CI annotation tooling. -cache names a directory for the per-package
// result cache: packages whose sources, dependency cone, toolchain, and
// analyzer set are unchanged are served from disk without re-type-checking,
// making warm runs sub-second. -workers bounds parallel package analysis
// (default GOMAXPROCS). Suppress a deliberate violation with a justified
// //lint:allow comment (see internal/analysis/lintcore).
package main

import (
	"flag"
	"fmt"
	"os"

	"replidtn/internal/analysis"
	"replidtn/internal/analysis/lintcore"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON document")
	cacheDir := flag.String("cache", "", "directory for the per-package result cache (empty disables caching)")
	workers := flag.Int("workers", 0, "max concurrent package analyses (0 = GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dtnlint [-json] [-cache dir] [-workers n] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Flags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := check(patterns, *cacheDir, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := lintcore.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "dtnlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "dtnlint: %d diagnostic(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}

func check(patterns []string, cacheDir string, workers int) (*lintcore.Result, error) {
	return lintcore.Check(lintcore.Config{
		Patterns:  patterns,
		Analyzers: analysis.All(),
		CacheDir:  cacheDir,
		Workers:   workers,
	})
}

// run is the uncached sequential path kept for tests that want plain
// diagnostics for a pattern list.
func run(patterns []string) ([]lintcore.Diagnostic, error) {
	res, err := check(patterns, "", 0)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}
