// Command dtnlint is the repository's invariant checker: a multichecker
// running the four dtnlint analyzers (determinism, callbackunderlock,
// transientleak, errdiscard) over the packages matching the given patterns.
//
// Usage:
//
//	dtnlint [packages]
//
// With no arguments it checks ./... relative to the current directory.
// Diagnostics print as file:line:col: analyzer: message, one per line, and
// any diagnostic makes the exit status 1 — `make lint` wires this into the
// tier-1 `make check` gate. Suppress a deliberate violation with a
// justified //lint:allow comment (see internal/analysis/lintcore).
package main

import (
	"flag"
	"fmt"
	"os"

	"replidtn/internal/analysis"
	"replidtn/internal/analysis/lintcore"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dtnlint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dtnlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func run(patterns []string) ([]lintcore.Diagnostic, error) {
	pkgs, err := lintcore.Load(".", patterns...)
	if err != nil {
		return nil, err
	}
	return lintcore.Run(pkgs, analysis.All())
}
