package main

import "testing"

// TestLintedPackagesStayClean pins the two packages this PR brought under
// the determinism invariant: discovery (whose time.Now calls at
// discovery.go:130 and :214 the analyzer originally found, fixed by the
// injected Config.Clock) and vclock. A regression reintroducing a wall-clock
// read fails here as well as in `make lint`.
func TestLintedPackagesStayClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages from source; skipped in -short runs")
	}
	diags, err := run([]string{
		"replidtn/internal/discovery",
		"replidtn/internal/vclock",
	})
	if err != nil {
		t.Fatalf("dtnlint run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
