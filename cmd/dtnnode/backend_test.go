package main

// Restart tests for the -data/-data-backend pair: a node is built, fed
// state, closed, and rebuilt over the same path; the rebuilt node must carry
// the items and knowledge forward under both backends. For the wal backend
// this drives the real OSFS recovery path end to end — manifest read,
// segment replay, log replay.

import (
	"io"
	"path/filepath"
	"testing"
)

func restartNode(t *testing.T, backend, path string) {
	t.Helper()
	opts := options{
		id: "alice", addr: "user:alice", listen: "127.0.0.1:0",
		policy: "epidemic", dataPath: path, dataBackend: backend,
		out: io.Discard,
	}
	n, err := newNode(opts)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	if _, err := n.ep.Send("user:alice", []string{"user:bob"}, []byte("survive me")); err != nil {
		n.close()
		t.Fatal(err)
	}
	itemCount, _, _ := n.ep.Replica().StoreLen()
	know := n.ep.Replica().Knowledge()
	n.close()

	n2, err := newNode(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer n2.close()
	if got, _, _ := n2.ep.Replica().StoreLen(); got != itemCount {
		t.Errorf("restarted store has %d items, want %d", got, itemCount)
	}
	if !n2.ep.Replica().Knowledge().Equal(know) {
		t.Error("restarted node lost knowledge; it would re-accept messages it already has")
	}
	// The restarted node keeps its version counter: a new message must not
	// collide with the persisted one.
	if _, err := n2.ep.Send("user:alice", []string{"user:bob"}, []byte("later")); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := n2.ep.Replica().StoreLen(); got != itemCount+1 {
		t.Errorf("post-restart send: store has %d items, want %d", got, itemCount+1)
	}
}

func TestNodeRestartBackends(t *testing.T) {
	t.Run("snapshot", func(t *testing.T) {
		restartNode(t, "snapshot", filepath.Join(t.TempDir(), "n.snap"))
	})
	t.Run("wal", func(t *testing.T) {
		restartNode(t, "wal", filepath.Join(t.TempDir(), "waldir"))
	})
	t.Run("default-empty", func(t *testing.T) {
		// An empty backend string (zero options value) means snapshot.
		restartNode(t, "", filepath.Join(t.TempDir(), "n.snap"))
	})
}

func TestNodeUnknownBackend(t *testing.T) {
	_, err := newNode(options{
		id: "a", addr: "user:a", listen: "127.0.0.1:0", policy: "none",
		dataPath: filepath.Join(t.TempDir(), "x"), dataBackend: "etcd",
		out: io.Discard,
	})
	if err == nil {
		t.Fatal("unknown data backend should fail node construction")
	}
}
