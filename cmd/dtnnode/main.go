// Command dtnnode runs a live networked DTN messaging node: a replica served
// over TCP plus a tiny line-oriented console for sending messages and
// triggering encounters with peers.
//
// Usage:
//
//	dtnnode -id alice -addr user:alice -listen 127.0.0.1:7701 \
//	        -peers 127.0.0.1:7702,127.0.0.1:7703 -policy epidemic \
//	        -data alice.snap
//
// Console commands (stdin):
//
//	send <to-address> <text...>   insert a message
//	sync                          encounter every configured peer once
//	inbox                         list received messages
//	stats                         print replication counters
//	quit
//
// With -sync-every set, the node also encounters its peers periodically in
// the background, making a small always-on gossip mesh. With -data set, the
// replica state (items, knowledge, routing state) persists across restarts,
// so a restarted node never re-accepts messages it already received.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"replidtn/internal/discovery"
	"replidtn/internal/messaging"
	"replidtn/internal/persist"
	"replidtn/internal/routing"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/routing/spraywait"
	"replidtn/internal/transport"
	"replidtn/internal/vclock"
)

func main() {
	var (
		id         = flag.String("id", "", "replica ID (required)")
		addr       = flag.String("addr", "", "endpoint address homed on this node (required)")
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		peers      = flag.String("peers", "", "comma-separated peer TCP addresses")
		policy     = flag.String("policy", "epidemic", "routing policy: none, epidemic, spray, prophet, maxprop")
		syncEvery  = flag.Duration("sync-every", 0, "background encounter period (0 = manual only)")
		dataPath   = flag.String("data", "", "snapshot file for durable state (empty = in-memory only)")
		discListen = flag.String("discover-listen", "", "UDP address for peer discovery beacons (empty = disabled)")
		discPeers  = flag.String("discover-peers", "", "comma-separated UDP beacon targets")
	)
	flag.Parse()
	if *id == "" || *addr == "" {
		fmt.Fprintln(os.Stderr, "dtnnode: -id and -addr are required")
		os.Exit(2)
	}
	opts := options{
		id: *id, addr: *addr, listen: *listen, peers: splitPeers(*peers),
		policy: *policy, syncEvery: *syncEvery, dataPath: *dataPath,
		discoverListen: *discListen, discoverPeers: splitPeers(*discPeers),
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "dtnnode: %v\n", err)
		os.Exit(1)
	}
}

func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func buildPolicy(name, id, addr string) (routing.Policy, error) {
	now := func() int64 { return time.Now().Unix() }
	switch name {
	case "none":
		return nil, nil
	case "epidemic":
		return epidemic.New(0), nil
	case "spray":
		return spraywait.New(0), nil
	case "prophet":
		return prophet.New(prophet.DefaultParams(), now, addr), nil
	case "maxprop":
		return maxprop.New(vclock.ReplicaID(id), 0, now, addr), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// options collects the node's flag values.
type options struct {
	id, addr, listen string
	peers            []string
	policy           string
	syncEvery        time.Duration
	dataPath         string
	discoverListen   string
	discoverPeers    []string
}

func run(opts options) error {
	id, addr, listen, peers, policyName := opts.id, opts.addr, opts.listen, opts.peers, opts.policy
	syncEvery, dataPath := opts.syncEvery, opts.dataPath
	pol, err := buildPolicy(policyName, id, addr)
	if err != nil {
		return err
	}
	ep := messaging.NewEndpoint(messaging.Config{
		NodeID:    vclock.ReplicaID(id),
		Addresses: []string{addr},
		Policy:    pol,
		Now:       func() int64 { return time.Now().Unix() },
		OnReceive: func(r messaging.Received) {
			fmt.Printf("<< message from %s: %s\n", r.Message.From, r.Message.Body)
		},
	})
	save := func() {}
	if dataPath != "" {
		if snap, err := persist.LoadSnapshot(dataPath); err == nil {
			if err := ep.Replica().RestoreSnapshot(snap); err != nil {
				return fmt.Errorf("restore %s: %w", dataPath, err)
			}
			fmt.Printf("restored state from %s\n", dataPath)
		} else if !errors.Is(err, persist.ErrNotExist) {
			return err
		}
		save = func() {
			if err := persist.Save(dataPath, ep.Replica()); err != nil {
				fmt.Fprintf(os.Stderr, "!! persist: %v\n", err)
			}
		}
		defer save()
	}

	srv := transport.NewServer(ep.Replica(), 0)
	srv.OnError = func(err error) { fmt.Fprintf(os.Stderr, "!! %v\n", err) }
	bound, err := srv.Listen(listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("node %s (%s, policy %s) listening on %s\n", id, addr, policyName, bound)

	var disc *discovery.Discoverer
	if opts.discoverListen != "" {
		disc = discovery.New(discovery.Config{
			Self:    vclock.ReplicaID(id),
			TCPAddr: bound.String(),
			Listen:  opts.discoverListen,
			Targets: opts.discoverPeers,
			OnPeer: func(p discovery.Peer) {
				fmt.Printf("** discovered %s at %s\n", p.ID, p.Addr)
				if _, err := transport.Encounter(ep.Replica(), p.Addr, 0, 5*time.Second); err != nil {
					fmt.Fprintf(os.Stderr, "!! sync %s: %v\n", p.Addr, err)
				}
			},
		})
		udpAddr, err := disc.Start()
		if err != nil {
			return err
		}
		defer disc.Stop()
		fmt.Printf("discovery beacons on %s\n", udpAddr)
	}

	syncAll := func() {
		targets := append([]string(nil), peers...)
		if disc != nil {
			targets = append(targets, disc.Addrs()...)
		}
		for _, peer := range targets {
			if _, err := transport.Encounter(ep.Replica(), peer, 0, 5*time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "!! sync %s: %v\n", peer, err)
			}
		}
		save()
	}
	if syncEvery > 0 {
		ticker := time.NewTicker(syncEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				syncAll()
			}
		}()
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "send":
			if len(fields) < 3 {
				fmt.Println("usage: send <to-address> <text...>")
				break
			}
			body := strings.Join(fields[2:], " ")
			if _, err := ep.Send(addr, []string{fields[1]}, []byte(body)); err != nil {
				fmt.Printf("!! %v\n", err)
			} else {
				save()
				fmt.Println("queued")
			}
		case "sync":
			syncAll()
			fmt.Println("synced")
		case "inbox":
			for i, r := range ep.Inbox() {
				fmt.Printf("%3d %s -> %s: %s\n", i+1, r.Message.From, r.At, r.Message.Body)
			}
		case "stats":
			fmt.Printf("%+v\n", ep.Replica().Stats())
		case "quit", "exit":
			return nil
		default:
			fmt.Println("commands: send, sync, inbox, stats, quit")
		}
		fmt.Print("> ")
	}
	return sc.Err()
}
