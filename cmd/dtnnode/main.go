// Command dtnnode runs a live networked DTN messaging node: a replica served
// over TCP plus a tiny line-oriented console for sending messages and
// triggering encounters with peers.
//
// Usage:
//
//	dtnnode -id alice -addr user:alice -listen 127.0.0.1:7701 \
//	        -peers 127.0.0.1:7702,127.0.0.1:7703 -policy epidemic \
//	        -data alice.snap -debug-addr 127.0.0.1:8701
//
// Console commands (stdin):
//
//	send <to-address> <text...>   insert a message
//	sync                          encounter every configured peer once
//	inbox                         list received messages
//	stats                         print replication counters
//	quit
//
// With -sync-every set, the node also encounters its peers periodically in
// the background, making a small always-on gossip mesh. With -data set, the
// replica state (items, knowledge, routing state) persists across restarts,
// so a restarted node never re-accepts messages it already received.
//
// With -debug-addr set, the node serves an HTTP observability endpoint:
// /metrics (counters, gauges, histograms, and recent sync spans as JSON),
// /healthz, /peers, /debug/vars (expvar), and /debug/pprof/* (see debug.go
// for the response schemas).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"replidtn/internal/discovery"
	"replidtn/internal/messaging"
	"replidtn/internal/obs"
	"replidtn/internal/persist"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/routing/spraywait"
	"replidtn/internal/transport"
	"replidtn/internal/vclock"
)

func main() {
	var (
		id         = flag.String("id", "", "replica ID (required)")
		addr       = flag.String("addr", "", "endpoint address homed on this node (required)")
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		peers      = flag.String("peers", "", "comma-separated peer TCP addresses")
		policy     = flag.String("policy", "epidemic", "routing policy: none, epidemic, spray, prophet, maxprop")
		syncEvery  = flag.Duration("sync-every", 0, "background encounter period (0 = manual only)")
		dataPath   = flag.String("data", "", "durable state path: snapshot file or wal directory (empty = in-memory only)")
		dataBack   = flag.String("data-backend", "snapshot", "durability backend for -data: "+persist.BackendKinds+" (wal journals every mutation and recovers by log replay)")
		discListen = flag.String("discover-listen", "", "UDP address for peer discovery beacons (empty = disabled)")
		discPeers  = flag.String("discover-peers", "", "comma-separated UDP beacon targets")
		debugAddr  = flag.String("debug-addr", "", "HTTP address for /metrics, /healthz, /peers, /debug/* (empty = disabled)")
		summaries  = flag.Bool("summaries", false, "enable the compact knowledge summary sync protocol (negotiated per peer; v1 peers keep exact knowledge)")
	)
	flag.Parse()
	if *id == "" || *addr == "" {
		fmt.Fprintln(os.Stderr, "dtnnode: -id and -addr are required")
		os.Exit(2)
	}
	opts := options{
		id: *id, addr: *addr, listen: *listen, peers: splitPeers(*peers),
		policy: *policy, syncEvery: *syncEvery, dataPath: *dataPath, dataBackend: *dataBack,
		discoverListen: *discListen, discoverPeers: splitPeers(*discPeers),
		debugAddr: *debugAddr, syncOnDiscover: true,
		summaries: *summaries,
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "dtnnode: %v\n", err)
		os.Exit(1)
	}
}

func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func buildPolicy(name, id, addr string) (routing.Policy, error) {
	now := func() int64 { return time.Now().Unix() }
	switch name {
	case "none":
		return nil, nil
	case "epidemic":
		return epidemic.New(0), nil
	case "spray":
		return spraywait.New(0), nil
	case "prophet":
		return prophet.New(prophet.DefaultParams(), now, addr), nil
	case "maxprop":
		return maxprop.New(vclock.ReplicaID(id), 0, now, addr), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// options collects the node's flag values.
type options struct {
	id, addr, listen string
	peers            []string
	policy           string
	syncEvery        time.Duration
	dataPath         string
	// dataBackend selects the durability strategy for dataPath: "snapshot"
	// (default; also "") or "wal". See persist.OpenBackend.
	dataBackend string
	discoverListen   string
	discoverPeers    []string
	debugAddr        string
	// syncOnDiscover triggers an immediate encounter when discovery reports a
	// fresh peer. On for the CLI; tests disable it to drive syncs explicitly.
	syncOnDiscover bool
	// summaries enables the compact knowledge summary sync protocol.
	summaries bool
	// out receives console and status output (nil = os.Stdout).
	out io.Writer
}

// node is one running dtnnode: the messaging endpoint, its transport server,
// optional discovery and debug HTTP servers, and the shared metrics they all
// report into. Built by newNode, torn down by close.
type node struct {
	opts    options
	metrics *obs.NodeMetrics
	ep      *messaging.Endpoint
	srv     *transport.Server
	bound   net.Addr
	disc    *discovery.Discoverer
	debug   *debugServer
	backend persist.Backend
	save    func()
	started time.Time
	out     io.Writer
}

// newNode builds and starts every subsystem: restores durable state, listens
// for encounters, and (when configured) launches discovery beacons and the
// debug HTTP endpoint. The caller owns the result and must close it.
func newNode(opts options) (n *node, err error) {
	pol, err := buildPolicy(opts.policy, opts.id, opts.addr)
	if err != nil {
		return nil, err
	}
	n = &node{
		opts:    opts,
		metrics: &obs.NodeMetrics{},
		save:    func() {},
		started: time.Now(),
		out:     opts.out,
	}
	if n.out == nil {
		n.out = os.Stdout
	}
	// Capture the node now: `return nil, err` zeroes the named return before
	// this deferred cleanup runs, so closing through n would nil-deref.
	defer func(built *node) {
		if err != nil {
			built.close()
		}
	}(n)
	n.ep = messaging.NewEndpoint(messaging.Config{
		NodeID:        vclock.ReplicaID(opts.id),
		Addresses:     []string{opts.addr},
		Policy:        pol,
		Now:           func() int64 { return time.Now().Unix() },
		Metrics:       &n.metrics.Replica,
		StoreMetrics:  &n.metrics.Store,
		SyncSummaries: opts.summaries,
		OnReceive: func(r messaging.Received) {
			fmt.Fprintf(n.out, "<< message from %s: %s\n", r.Message.From, r.Message.Body)
		},
	})
	if opts.dataPath != "" {
		kind := opts.dataBackend
		if kind == "" {
			kind = "snapshot"
		}
		b, err := persist.OpenBackend(kind, opts.dataPath, &n.metrics.WAL)
		if err != nil {
			return nil, err
		}
		n.backend = b
		if snap, err := b.Load(); err == nil {
			if err := n.ep.Replica().RestoreSnapshot(snap); err != nil {
				return nil, fmt.Errorf("restore %s: %w", opts.dataPath, err)
			}
			fmt.Fprintf(n.out, "restored state from %s (%s backend)\n", opts.dataPath, kind)
		} else if !errors.Is(err, persist.ErrNotExist) {
			return nil, err
		}
		// The wal backend journals every mutation from here on; the snapshot
		// backend just remembers the replica for the explicit saves below.
		if err := b.Attach(n.ep.Replica()); err != nil {
			return nil, err
		}
		n.save = func() {
			if err := b.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "!! persist: %v\n", err)
			}
		}
	}

	n.srv = transport.NewServer(n.ep.Replica(), 0)
	n.srv.OnError = func(err error) { fmt.Fprintf(os.Stderr, "!! %v\n", err) }
	n.srv.Metrics = &n.metrics.Transport
	if n.bound, err = n.srv.Listen(opts.listen); err != nil {
		return nil, err
	}

	if opts.discoverListen != "" {
		n.disc = discovery.New(discovery.Config{
			Self:    vclock.ReplicaID(opts.id),
			TCPAddr: n.bound.String(),
			Listen:  opts.discoverListen,
			Targets: opts.discoverPeers,
			Metrics: &n.metrics.Discovery,
			OnPeer: func(p discovery.Peer) {
				fmt.Fprintf(n.out, "** discovered %s at %s\n", p.ID, p.Addr)
				if opts.syncOnDiscover {
					if _, err := n.encounter(p.Addr); err != nil {
						fmt.Fprintf(os.Stderr, "!! sync %s: %v\n", p.Addr, err)
					}
				}
			},
		})
		udpAddr, err := n.disc.Start()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(n.out, "discovery beacons on %s\n", udpAddr)
	}

	if opts.debugAddr != "" {
		if n.debug, err = startDebug(opts.debugAddr, n); err != nil {
			return nil, err
		}
		fmt.Fprintf(n.out, "debug endpoint on http://%s/metrics\n", n.debug.addr)
	}
	return n, nil
}

// close tears down whatever newNode started, saving durable state last.
func (n *node) close() {
	if n.debug != nil {
		n.debug.close()
	}
	if n.disc != nil {
		n.disc.Stop()
	}
	if n.srv != nil {
		n.srv.Close()
	}
	if n.backend != nil {
		if err := n.backend.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "!! persist: %v\n", err)
		}
	}
}

// encounter dials one peer with the node's transport metrics attached.
func (n *node) encounter(addr string) (replica.EncounterResult, error) {
	return transport.EncounterOpts(n.ep.Replica(), addr, 0, 5*time.Second,
		transport.DialOptions{Metrics: &n.metrics.Transport})
}

// syncAll encounters every configured and discovered peer once.
func (n *node) syncAll() {
	targets := append([]string(nil), n.opts.peers...)
	if n.disc != nil {
		targets = append(targets, n.disc.Addrs()...)
	}
	for _, peer := range targets {
		if _, err := n.encounter(peer); err != nil {
			fmt.Fprintf(os.Stderr, "!! sync %s: %v\n", peer, err)
		}
	}
	n.save()
}

func run(opts options) error {
	n, err := newNode(opts)
	if err != nil {
		return err
	}
	defer n.close()
	fmt.Fprintf(n.out, "node %s (%s, policy %s) listening on %s\n",
		opts.id, opts.addr, opts.policy, n.bound)

	if opts.syncEvery > 0 {
		ticker := time.NewTicker(opts.syncEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				n.syncAll()
			}
		}()
	}
	return n.console(os.Stdin)
}

// console runs the interactive command loop until quit or EOF.
func (n *node) console(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprint(n.out, "> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(n.out, "> ")
			continue
		}
		switch fields[0] {
		case "send":
			if len(fields) < 3 {
				fmt.Fprintln(n.out, "usage: send <to-address> <text...>")
				break
			}
			body := strings.Join(fields[2:], " ")
			if _, err := n.ep.Send(n.opts.addr, []string{fields[1]}, []byte(body)); err != nil {
				fmt.Fprintf(n.out, "!! %v\n", err)
			} else {
				n.save()
				fmt.Fprintln(n.out, "queued")
			}
		case "sync":
			n.syncAll()
			fmt.Fprintln(n.out, "synced")
		case "inbox":
			for i, r := range n.ep.Inbox() {
				fmt.Fprintf(n.out, "%3d %s -> %s: %s\n", i+1, r.Message.From, r.At, r.Message.Body)
			}
		case "stats":
			fmt.Fprintf(n.out, "%+v\n", n.ep.Replica().Stats())
		case "quit", "exit":
			return nil
		default:
			fmt.Fprintln(n.out, "commands: send, sync, inbox, stats, quit")
		}
		fmt.Fprint(n.out, "> ")
	}
	return sc.Err()
}
