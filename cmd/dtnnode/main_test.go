package main

import (
	"reflect"
	"testing"
)

func TestSplitPeers(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , , b:2 ", []string{"a:1", "b:2"}},
	}
	for _, tc := range cases {
		got := splitPeers(tc.in)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitPeers(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestBuildPolicy(t *testing.T) {
	for _, name := range []string{"epidemic", "spray", "prophet", "maxprop"} {
		pol, err := buildPolicy(name, "node1", "addr:1")
		if err != nil {
			t.Errorf("buildPolicy(%q): %v", name, err)
		}
		if pol == nil {
			t.Errorf("buildPolicy(%q) returned nil policy", name)
		}
	}
	if pol, err := buildPolicy("none", "n", "a"); err != nil || pol != nil {
		t.Error("none should yield a nil policy without error")
	}
	if _, err := buildPolicy("bogus", "n", "a"); err == nil {
		t.Error("unknown policy should fail")
	}
}
