package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"replidtn/internal/obs"
)

// freeUDPAddr reserves a loopback UDP address and frees it for the node.
func freeUDPAddr(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	return addr
}

// startTestNode builds a quiet node with the debug endpoint on an ephemeral
// port and discovery beaconing to targets (none = discovery off).
func startTestNode(t *testing.T, id, addr, udpListen string, udpTargets ...string) *node {
	t.Helper()
	n, err := newNode(options{
		id: id, addr: addr, listen: "127.0.0.1:0",
		policy:         "epidemic",
		debugAddr:      "127.0.0.1:0",
		discoverListen: udpListen,
		discoverPeers:  udpTargets,
		syncOnDiscover: false,
		out:            io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.close)
	return n
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestTwoNodeEncounterObservability runs two live nodes through discovery and
// a real TCP encounter, then checks that the counters served over /metrics
// agree with the EncounterResult and that every debug route answers.
func TestTwoNodeEncounterObservability(t *testing.T) {
	udpA, udpB := freeUDPAddr(t), freeUDPAddr(t)
	alice := startTestNode(t, "alice", "user:alice", udpA, udpB)
	bob := startTestNode(t, "bob", "user:bob", udpB, udpA)

	if _, err := alice.ep.Send("user:alice", []string{"user:bob"}, []byte("hi bob")); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.ep.Send("user:bob", []string{"user:alice"}, []byte("hi alice")); err != nil {
		t.Fatal(err)
	}

	// Wait for mutual discovery, then drive the encounter explicitly
	// (syncOnDiscover is off) so the result is in hand for comparison.
	deadline := time.Now().Add(5 * time.Second)
	for len(alice.disc.Addrs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	addrs := alice.disc.Addrs()
	if len(addrs) != 1 || addrs[0] != bob.bound.String() {
		t.Fatalf("alice discovered %v, want [%s]", addrs, bob.bound)
	}
	res, err := alice.encounter(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.AtoB.Sent != 1 || res.BtoA.Sent != 1 {
		t.Fatalf("encounter moved %d/%d items, want 1/1", res.AtoB.Sent, res.BtoA.Sent)
	}
	if inbox := alice.ep.Inbox(); len(inbox) != 1 || string(inbox[0].Message.Body) != "hi alice" {
		t.Fatalf("alice inbox = %+v", inbox)
	}
	// Flush bob's connection handler so its serve-side counters are final.
	if err := bob.srv.Close(); err != nil {
		t.Fatal(err)
	}

	var aliceSnap, bobSnap obs.NodeSnapshot
	getJSON(t, fmt.Sprintf("http://%s/metrics", alice.debug.addr), &aliceSnap)
	getJSON(t, fmt.Sprintf("http://%s/metrics", bob.debug.addr), &bobSnap)

	at, bt := aliceSnap.Transport, bobSnap.Transport
	if at.EncountersDialed != 1 || at.EncounterErrors != 0 {
		t.Errorf("alice transport: %+v", at)
	}
	if bt.EncountersServed != 1 || bt.EncounterErrors != 0 {
		t.Errorf("bob transport: %+v", bt)
	}
	if at.BytesWritten != bt.BytesRead || at.BytesRead != bt.BytesWritten {
		t.Errorf("wire bytes disagree: alice w/r %d/%d, bob r/w %d/%d",
			at.BytesWritten, at.BytesRead, bt.BytesRead, bt.BytesWritten)
	}
	if len(aliceSnap.Spans) != 1 {
		t.Fatalf("alice spans = %+v", aliceSnap.Spans)
	}
	span := aliceSnap.Spans[0]
	if span.Role != obs.RoleDial || span.Peer != "bob" || span.Err != "" {
		t.Errorf("alice span = %+v", span)
	}
	if span.ItemsSent != res.AtoB.Sent {
		t.Errorf("span sent %d, result %d", span.ItemsSent, res.AtoB.Sent)
	}
	applied := res.BtoA.Apply.Stored + res.BtoA.Apply.Relayed + res.BtoA.Apply.Tombstones
	if span.ItemsApplied != applied {
		t.Errorf("span applied %d, result %d", span.ItemsApplied, applied)
	}
	// Replica-level accounting: each side initiated one sync and served one,
	// and alice applied what the result says she did.
	if aliceSnap.Replica.SyncsInitiated != 1 || aliceSnap.Replica.SyncsServed != 1 {
		t.Errorf("alice replica: %+v", aliceSnap.Replica)
	}
	if aliceSnap.Replica.ItemsApplied != int64(applied) {
		t.Errorf("alice ItemsApplied = %d, result %d", aliceSnap.Replica.ItemsApplied, applied)
	}
	if aliceSnap.Store.Live != 2 { // own message + bob's, both live on alice
		t.Errorf("alice live gauge = %d, want 2", aliceSnap.Store.Live)
	}
	if aliceSnap.Discovery.PeersSeen != 1 || aliceSnap.Discovery.BeaconsSent == 0 {
		t.Errorf("alice discovery: %+v", aliceSnap.Discovery)
	}

	// The remaining debug routes answer.
	var health map[string]any
	getJSON(t, fmt.Sprintf("http://%s/healthz", alice.debug.addr), &health)
	if health["status"] != "ok" || health["id"] != "alice" {
		t.Errorf("healthz = %v", health)
	}
	var peers struct {
		Configured []string `json:"configured"`
		Discovered []struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
		} `json:"discovered"`
	}
	getJSON(t, fmt.Sprintf("http://%s/peers", alice.debug.addr), &peers)
	if len(peers.Discovered) != 1 || peers.Discovered[0].ID != "bob" {
		t.Errorf("peers = %+v", peers)
	}
	var vars map[string]json.RawMessage
	getJSON(t, fmt.Sprintf("http://%s/debug/vars", alice.debug.addr), &vars)
	if _, ok := vars["dtnnode.alice"]; !ok {
		t.Errorf("expvar missing dtnnode.alice, has %d vars", len(vars))
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/goroutine?debug=1", alice.debug.addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof goroutine: status %d, body %q...", resp.StatusCode, truncate(string(body), 80))
	}
}

// TestExpvarRepublishSafe: rebuilding a node with the same id in one process
// must not panic expvar's duplicate-name check.
func TestExpvarRepublishSafe(t *testing.T) {
	for i := 0; i < 2; i++ {
		n := startTestNode(t, "repeat", "user:repeat", "")
		var snap obs.NodeSnapshot
		getJSON(t, fmt.Sprintf("http://%s/metrics", n.debug.addr), &snap)
		n.close()
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
