// Debug HTTP endpoint for a live node, enabled with -debug-addr.
//
// Routes:
//
//	/metrics      obs.NodeSnapshot as JSON: {"transport": {...}, "replica":
//	              {...}, "store": {...}, "discovery": {...}, "spans": [...]}
//	              — counters, gauges, power-of-two histograms, and the most
//	              recent sync spans.
//	/healthz      {"status": "ok", "id": ..., "listen": ..., "uptime_s": ...}
//	/peers        {"configured": [...], "discovered": [{"id", "addr",
//	              "last_seen"}, ...]} — discovered is empty without -discover-listen.
//	/debug/vars   standard expvar dump; the node's metrics are published as
//	              "dtnnode.<id>".
//	/debug/pprof  the standard runtime profiles (heap, goroutine, profile, ...).
//
// The endpoint is read-only and unauthenticated: bind it to loopback or a
// trusted interface.
package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"replidtn/internal/discovery"
)

// debugServer is the node's HTTP observability listener.
type debugServer struct {
	srv  *http.Server
	addr net.Addr
}

// startDebug binds addr and serves the debug routes for n in the background.
func startDebug(addr string, n *node) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listen %s: %w", addr, err)
	}
	publishExpvar(n)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, n.metrics.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":   "ok",
			"id":       n.opts.id,
			"addr":     n.opts.addr,
			"listen":   n.bound.String(),
			"policy":   n.opts.policy,
			"uptime_s": int64(time.Since(n.started).Seconds()),
		})
	})
	mux.HandleFunc("/peers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, peersView(n))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// The pprof handlers self-register on http.DefaultServeMux, which this
	// mux deliberately is not; mount them explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &debugServer{srv: &http.Server{Handler: mux}, addr: ln.Addr()}
	go d.srv.Serve(ln) // Serve returns ErrServerClosed after close; listen errors already surfaced
	return d, nil
}

func (d *debugServer) close() {
	d.srv.Close()
}

// publishExpvar exposes the node's metrics snapshot as the expvar
// "dtnnode.<id>". expvar panics on duplicate names, and its registry is
// process-global and append-only, so a same-named successor (a node restarted
// in-process, as tests do) keeps the first registration; /metrics always
// reflects the current node.
func publishExpvar(n *node) {
	name := "dtnnode." + n.opts.id
	if expvar.Get(name) != nil {
		return
	}
	m := n.metrics
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}

// peersView renders the node's view of its neighborhood: statically
// configured encounter addresses plus everything discovery currently sees.
func peersView(n *node) map[string]any {
	discovered := []map[string]any{}
	var peers []discovery.Peer
	if n.disc != nil {
		peers = n.disc.Peers()
	}
	for _, p := range peers {
		discovered = append(discovered, map[string]any{
			"id":        string(p.ID),
			"addr":      p.Addr,
			"last_seen": p.LastSeen.Format(time.RFC3339),
		})
	}
	configured := n.opts.peers
	if configured == nil {
		configured = []string{}
	}
	return map[string]any{"configured": configured, "discovered": discovered}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
