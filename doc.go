// Package replidtn reproduces "Peer-to-Peer Data Replication Meets Delay
// Tolerant Networking" (Gilbert, Ramasubramanian, Stuedi, Terry — ICDCS
// 2011): a Cimbiosys-style peer-to-peer filtered replication substrate, a
// DTN messaging application built on it, a pluggable DTN routing-policy
// extension with Epidemic, Spray and Wait, PROPHET, and MaxProp policies,
// and the trace-driven evaluation harness that regenerates every table and
// figure of the paper.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory and experiment index, and the examples/ directory for runnable
// entry points.
package replidtn
