// Package fault is the deterministic fault-injection layer for
// disruption-realistic emulation. Real DTN contacts are short, lossy radio
// encounters: transfers get cut off mid-flight, contacts predicted by the
// trace never materialize, and nodes crash and restart from persisted state.
// This package decides, reproducibly, which faults strike which encounters.
//
// Every decision is a pure function of (seed, encounter index): it is derived
// by hashing rather than by drawing from a shared sequential RNG. That makes
// the fault plan independent of execution order, which is what lets the
// parallel emulation engine execute faulted encounters concurrently and still
// produce output bit-identical to the sequential reference engine.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Config parameterizes fault injection. The zero value disables every fault:
// an emulation run with a zero Config is byte-identical to a fault-free run.
type Config struct {
	// Seed selects the fault plan. Two runs with equal Config produce
	// identical faults; changing Seed reshuffles which encounters are struck
	// without changing the expected fault rates.
	Seed int64
	// Drop is the per-encounter probability that the contact never happens at
	// all (the radio link failed to form). Dropped encounters perform no
	// synchronization and move no data.
	Drop float64
	// Cutoff is the per-encounter probability that the link dies mid-encounter.
	// A cut encounter delivers at most CutoffItems batch items before the link
	// fails; an interrupted batch is discarded transactionally by the target.
	Cutoff float64
	// CutoffItems is the item budget a cut link delivers before dying. The
	// actual cut point is drawn uniformly from [0, CutoffItems] per encounter,
	// so some cut contacts die almost immediately and others nearly complete.
	CutoffItems int
	// Crash is the per-endpoint, per-encounter probability that the node
	// crashes immediately after the encounter and restarts from its persisted
	// state (snapshot round-trip through the internal/persist codec).
	Crash float64
}

// Enabled reports whether any fault can ever fire under this configuration.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Cutoff > 0 || c.Crash > 0
}

// String renders the configuration in the same key=value form Parse accepts
// (seed excluded; it travels separately).
func (c Config) String() string {
	var parts []string
	if c.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", c.Drop))
	}
	if c.Cutoff > 0 {
		parts = append(parts, fmt.Sprintf("cutoff=%g", c.Cutoff))
		parts = append(parts, fmt.Sprintf("cutoff-items=%d", c.CutoffItems))
	}
	if c.Crash > 0 {
		parts = append(parts, fmt.Sprintf("crash=%g", c.Crash))
	}
	if len(parts) == 0 {
		return "off"
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Parse builds a Config from a comma-separated key=value spec, e.g.
// "drop=0.3,cutoff=0.25,cutoff-items=2,crash=0.01". Unknown keys and
// out-of-range values are errors. An empty spec is the zero (disabled)
// Config. The seed is not part of the spec; set Config.Seed separately.
func Parse(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: %q is not key=value", kv)
		}
		switch key {
		case "drop", "cutoff", "crash":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Config{}, fmt.Errorf("fault: %s=%q is not a probability in [0,1]", key, val)
			}
			switch key {
			case "drop":
				c.Drop = p
			case "cutoff":
				c.Cutoff = p
			case "crash":
				c.Crash = p
			}
		case "cutoff-items":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Config{}, fmt.Errorf("fault: cutoff-items=%q is not a non-negative integer", val)
			}
			c.CutoffItems = n
		default:
			return Config{}, fmt.Errorf("fault: unknown key %q (want drop, cutoff, cutoff-items, crash)", key)
		}
	}
	return c, nil
}

// Decision is the fault outcome for one encounter.
type Decision struct {
	// Drop suppresses the encounter entirely.
	Drop bool
	// Cutoff is the number of batch items the link delivers before dying,
	// counted across both synchronization legs. Negative means the link is
	// reliable for this encounter.
	Cutoff int
	// CrashA and CrashB schedule a crash-restart of the respective endpoint
	// immediately after the encounter.
	CrashA, CrashB bool
}

// Reliable is the no-fault decision.
func Reliable() Decision { return Decision{Cutoff: -1} }

// Faulted reports whether any fault struck this encounter.
func (d Decision) Faulted() bool {
	return d.Drop || d.Cutoff >= 0 || d.CrashA || d.CrashB
}

// Plan derives per-encounter fault decisions for one run. A nil *Plan is
// valid and means faults are disabled.
type Plan struct {
	cfg Config
}

// NewPlan builds the fault plan for cfg, or nil when cfg disables all faults
// — callers can branch on the nil plan to keep the fault-free hot path
// untouched.
func NewPlan(cfg Config) *Plan {
	if !cfg.Enabled() {
		return nil
	}
	return &Plan{cfg: cfg}
}

// Config returns the plan's configuration (the zero Config for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// Independent hash streams per fault dimension, so e.g. raising the drop
// probability never changes which encounters are cut off or crash.
const (
	streamDrop uint64 = iota + 1
	streamCutoff
	streamCutoffPoint
	streamCrashA
	streamCrashB
)

// Encounter returns the decision for the index-th encounter of the trace.
// It is a pure function of (plan seed, index): calling it in any order, from
// any goroutine, yields the same answer.
func (p *Plan) Encounter(index int) Decision {
	if p == nil {
		return Reliable()
	}
	d := Reliable()
	if p.cfg.Drop > 0 && p.float(index, streamDrop) < p.cfg.Drop {
		d.Drop = true
		return d
	}
	if p.cfg.Cutoff > 0 && p.float(index, streamCutoff) < p.cfg.Cutoff {
		d.Cutoff = p.intn(index, streamCutoffPoint, p.cfg.CutoffItems+1)
	}
	if p.cfg.Crash > 0 {
		d.CrashA = p.float(index, streamCrashA) < p.cfg.Crash
		d.CrashB = p.float(index, streamCrashB) < p.cfg.Crash
	}
	return d
}

// mix64 is the SplitMix64 finalizer: a fast, well-distributed bijection on
// 64-bit values used to turn (seed, index, stream) into an independent
// uniform draw.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// u64 hashes (seed, index, stream) to a uniform 64-bit value.
func (p *Plan) u64(index int, stream uint64) uint64 {
	h := uint64(p.cfg.Seed) * 0x9e3779b97f4a7c15
	h = mix64(h ^ mix64(uint64(index)+0x632be59bd9b4e019))
	return mix64(h ^ mix64(stream*0xd1b54a32d192ed03))
}

// float hashes to a uniform float64 in [0, 1).
func (p *Plan) float(index int, stream uint64) float64 {
	return float64(p.u64(index, stream)>>11) / (1 << 53)
}

// intn hashes to a uniform int in [0, n).
func (p *Plan) intn(index int, stream uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(p.u64(index, stream) % uint64(n))
}
