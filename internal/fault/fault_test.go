package fault

import (
	"math"
	"testing"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Error("zero config must be disabled")
	}
	if NewPlan(c) != nil {
		t.Error("disabled config must yield a nil plan")
	}
	var p *Plan
	for i := 0; i < 100; i++ {
		if d := p.Encounter(i); d.Faulted() {
			t.Fatalf("nil plan produced fault at %d: %+v", i, d)
		}
	}
}

func TestDecisionsAreDeterministicAndOrderIndependent(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.3, Cutoff: 0.2, CutoffItems: 3, Crash: 0.05}
	p1, p2 := NewPlan(cfg), NewPlan(cfg)
	const n = 2000
	forward := make([]Decision, n)
	for i := 0; i < n; i++ {
		forward[i] = p1.Encounter(i)
	}
	// Query in reverse on an independent plan: every answer must match.
	for i := n - 1; i >= 0; i-- {
		if got := p2.Encounter(i); got != forward[i] {
			t.Fatalf("encounter %d: %+v (reverse) != %+v (forward)", i, got, forward[i])
		}
	}
	// Re-querying never changes the answer.
	for _, i := range []int{0, 17, n - 1} {
		if got := p1.Encounter(i); got != forward[i] {
			t.Errorf("encounter %d not stable: %+v != %+v", i, got, forward[i])
		}
	}
}

func TestSeedChangesPlan(t *testing.T) {
	cfg := Config{Seed: 1, Drop: 0.5}
	other := cfg
	other.Seed = 2
	a, b := NewPlan(cfg), NewPlan(other)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Encounter(i).Drop == b.Encounter(i).Drop {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical plans")
	}
}

func TestRatesApproximatelyHonored(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.3, Cutoff: 0.2, CutoffItems: 4, Crash: 0.1}
	p := NewPlan(cfg)
	const n = 20000
	var drops, cuts, crashes, cutSum int
	for i := 0; i < n; i++ {
		d := p.Encounter(i)
		if d.Drop {
			drops++
			if d.Cutoff >= 0 || d.CrashA || d.CrashB {
				t.Fatalf("dropped encounter %d carries other faults: %+v", i, d)
			}
			continue
		}
		if d.Cutoff >= 0 {
			cuts++
			cutSum += d.Cutoff
			if d.Cutoff > cfg.CutoffItems {
				t.Fatalf("cut point %d exceeds budget %d", d.Cutoff, cfg.CutoffItems)
			}
		}
		if d.CrashA {
			crashes++
		}
		if d.CrashB {
			crashes++
		}
	}
	within := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s rate = %.3f, want %.3f ± %.3f", name, got, want, tol)
		}
	}
	within("drop", float64(drops)/n, cfg.Drop, 0.02)
	// Cutoff and crash rates apply to the non-dropped remainder.
	survivors := float64(n - drops)
	within("cutoff", float64(cuts)/survivors, cfg.Cutoff, 0.02)
	within("crash", float64(crashes)/(2*survivors), cfg.Crash, 0.02)
	// Cut points are uniform over [0, CutoffItems].
	within("mean cut point", float64(cutSum)/float64(cuts), float64(cfg.CutoffItems)/2, 0.25)
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"", Config{}},
		{"off", Config{}},
		{"drop=0.3", Config{Drop: 0.3}},
		{"drop=0.3,cutoff=0.25,cutoff-items=2,crash=0.01",
			Config{Drop: 0.3, Cutoff: 0.25, CutoffItems: 2, Crash: 0.01}},
		{" drop=0.1 , crash=1 ", Config{Drop: 0.1, Crash: 1}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// String renders a spec Parse maps back to the same config.
		again, err := Parse(got.String())
		if err != nil || again != got {
			t.Errorf("Parse(String(%+v)) = %+v, %v", got, again, err)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"drop", "drop=", "drop=x", "drop=1.5", "drop=-0.1",
		"cutoff-items=-1", "cutoff-items=x", "bogus=1", "drop=0.1;crash=0.2",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}
