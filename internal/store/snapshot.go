package store

import (
	"fmt"

	"replidtn/internal/item"
)

// EntrySnapshot is the serializable form of one stored entry, including the
// arrival order that drives FIFO eviction.
type EntrySnapshot struct {
	Item      *item.Item
	Transient item.Transient
	Relay     bool
	Local     bool
	Arrival   uint64
}

// snapshotEntry deep-copies one entry into its serializable form.
func snapshotEntry(e *Entry) EntrySnapshot {
	return EntrySnapshot{
		Item:      e.Item.Clone(),
		Transient: e.Transient.Clone(),
		Relay:     e.Relay,
		Local:     e.Local,
		Arrival:   e.arrival,
	}
}

// Snapshot captures every entry in deterministic order together with the
// arrival counter, for durable persistence. The ordered index supplies the
// order; no sorting happens here.
func (s *Store) Snapshot() ([]EntrySnapshot, uint64) {
	out := make([]EntrySnapshot, 0, len(s.entries))
	s.index.ascend(func(e *Entry) bool {
		out = append(out, snapshotEntry(e))
		return true
	})
	return out, s.nextArrival
}

// Restore replaces the store's contents from a snapshot. It fails if the
// snapshot violates the arrival counter or duplicates an item ID; on failure
// the store is left unchanged.
func (s *Store) Restore(entries []EntrySnapshot, nextArrival uint64) error {
	fresh := make(map[item.ID]*Entry, len(entries))
	for _, es := range entries {
		if es.Item == nil {
			return fmt.Errorf("store: snapshot entry without item")
		}
		if _, dup := fresh[es.Item.ID]; dup {
			return fmt.Errorf("store: duplicate snapshot entry %s", es.Item.ID)
		}
		if es.Arrival > nextArrival {
			return fmt.Errorf("store: snapshot arrival %d beyond counter %d", es.Arrival, nextArrival)
		}
		relay := es.Relay
		if es.Local {
			relay = false
		}
		fresh[es.Item.ID] = &Entry{
			Item:      es.Item.Clone(),
			Transient: es.Transient.Clone(),
			Relay:     relay,
			Local:     es.Local,
			arrival:   es.Arrival,
		}
	}
	// Wholesale replacement: back out the outgoing population's gauge
	// contribution before rebuildIndexes recounts the restored one.
	if s.metrics != nil {
		s.metrics.Live.Add(-int64(s.liveCount))
		s.metrics.Relay.Add(-int64(s.relayCount))
		s.metrics.Tombstones.Add(-int64(s.TombstoneLen()))
	}
	s.entries = fresh
	s.nextArrival = nextArrival
	s.rebuildIndexes()
	return nil
}
