package store

import (
	"sort"

	"replidtn/internal/item"
)

// entryIndex is an in-memory B-tree over store entries keyed by item ID. It
// is maintained incrementally on every store mutation so that in-order
// iteration needs no per-call allocation or sorting — the sync hot path
// iterates candidates straight off the index. DTN7 keeps its bundle store
// behind maintained indexes for the same reason.
//
// The tree follows the classic structure: every node holds between
// indexMinItems and indexMaxItems entries (the root may hold fewer), inserts
// split full nodes on the way down, and deletes grow underfull nodes by
// stealing from or merging with a sibling on the way down.
type entryIndex struct {
	root *indexNode
	size int
}

const (
	// indexMinItems is the minimum entries per non-root node (t-1 for B-tree
	// minimum degree t=16).
	indexMinItems = 15
	// indexMaxItems is the maximum entries per node (2t-1).
	indexMaxItems = 2*indexMinItems + 1
)

type indexNode struct {
	entries  []*Entry
	children []*indexNode
}

// find returns the position of id in n.entries, or the child index to
// descend into when absent.
func (n *indexNode) find(id item.ID) (int, bool) {
	i := sort.Search(len(n.entries), func(i int) bool {
		return !lessID(n.entries[i].Item.ID, id)
	})
	if i < len(n.entries) && n.entries[i].Item.ID == id {
		return i, true
	}
	return i, false
}

// len returns the number of indexed entries.
func (ix *entryIndex) len() int { return ix.size }

// get returns the entry for id, or nil.
func (ix *entryIndex) get(id item.ID) *Entry {
	n := ix.root
	for n != nil {
		i, found := n.find(id)
		if found {
			return n.entries[i]
		}
		if len(n.children) == 0 {
			return nil
		}
		n = n.children[i]
	}
	return nil
}

// replaceOrInsert adds e to the index, returning the entry it replaced (nil
// when the ID is new).
func (ix *entryIndex) replaceOrInsert(e *Entry) *Entry {
	if ix.root == nil {
		ix.root = &indexNode{entries: []*Entry{e}}
		ix.size = 1
		return nil
	}
	if len(ix.root.entries) >= indexMaxItems {
		mid, right := ix.root.split(indexMaxItems / 2)
		ix.root = &indexNode{
			entries:  []*Entry{mid},
			children: []*indexNode{ix.root, right},
		}
	}
	prev := ix.root.insert(e)
	if prev == nil {
		ix.size++
	}
	return prev
}

// split divides n at index i, returning the promoted entry and the new right
// sibling.
func (n *indexNode) split(i int) (*Entry, *indexNode) {
	mid := n.entries[i]
	right := &indexNode{}
	right.entries = append(right.entries, n.entries[i+1:]...)
	n.entries = n.entries[:i]
	if len(n.children) > 0 {
		right.children = append(right.children, n.children[i+1:]...)
		n.children = n.children[:i+1]
	}
	return mid, right
}

// maybeSplitChild splits child i when full, reporting whether it did.
func (n *indexNode) maybeSplitChild(i int) bool {
	if len(n.children[i].entries) < indexMaxItems {
		return false
	}
	child := n.children[i]
	mid, right := child.split(indexMaxItems / 2)
	n.entries = append(n.entries, nil)
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = mid
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	return true
}

func (n *indexNode) insert(e *Entry) *Entry {
	i, found := n.find(e.Item.ID)
	if found {
		prev := n.entries[i]
		n.entries[i] = e
		return prev
	}
	if len(n.children) == 0 {
		n.entries = append(n.entries, nil)
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		return nil
	}
	if n.maybeSplitChild(i) {
		// The promoted separator may be the key itself or may shift the
		// descent one child to the right.
		switch {
		case n.entries[i].Item.ID == e.Item.ID:
			prev := n.entries[i]
			n.entries[i] = e
			return prev
		case lessID(n.entries[i].Item.ID, e.Item.ID):
			i++
		}
	}
	return n.children[i].insert(e)
}

// removeKind selects what (*indexNode).remove removes.
type removeKind int

const (
	removeID  removeKind = iota // the entry with a given ID
	removeMax                   // the subtree's maximum entry
)

// delete removes and returns the entry for id (nil when absent).
func (ix *entryIndex) delete(id item.ID) *Entry {
	if ix.root == nil || len(ix.root.entries) == 0 {
		return nil
	}
	out := ix.root.remove(id, removeID)
	if len(ix.root.entries) == 0 && len(ix.root.children) > 0 {
		ix.root = ix.root.children[0]
	}
	if out != nil {
		ix.size--
	}
	return out
}

func (n *indexNode) remove(id item.ID, kind removeKind) *Entry {
	var i int
	var found bool
	switch kind {
	case removeMax:
		if len(n.children) == 0 {
			out := n.entries[len(n.entries)-1]
			n.entries = n.entries[:len(n.entries)-1]
			return out
		}
		i = len(n.entries)
	case removeID:
		i, found = n.find(id)
		if len(n.children) == 0 {
			if !found {
				return nil
			}
			out := n.entries[i]
			copy(n.entries[i:], n.entries[i+1:])
			n.entries = n.entries[:len(n.entries)-1]
			return out
		}
	}
	if len(n.children[i].entries) <= indexMinItems {
		return n.growChildAndRemove(i, id, kind)
	}
	if found {
		// Replace the separator with its in-order predecessor, pulled from
		// the (sufficiently full) left subtree.
		out := n.entries[i]
		n.entries[i] = n.children[i].remove(item.ID{}, removeMax)
		return out
	}
	return n.children[i].remove(id, kind)
}

// growChildAndRemove brings child i above the minimum occupancy — stealing
// from a sibling or merging with one — then retries the removal from n.
func (n *indexNode) growChildAndRemove(i int, id item.ID, kind removeKind) *Entry {
	switch {
	case i > 0 && len(n.children[i-1].entries) > indexMinItems:
		// Steal the left sibling's last entry through the separator.
		child, left := n.children[i], n.children[i-1]
		child.entries = append(child.entries, nil)
		copy(child.entries[1:], child.entries)
		child.entries[0] = n.entries[i-1]
		n.entries[i-1] = left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		if len(left.children) > 0 {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.entries) && len(n.children[i+1].entries) > indexMinItems:
		// Steal the right sibling's first entry through the separator.
		child, right := n.children[i], n.children[i+1]
		child.entries = append(child.entries, n.entries[i])
		n.entries[i] = right.entries[0]
		copy(right.entries, right.entries[1:])
		right.entries = right.entries[:len(right.entries)-1]
		if len(right.children) > 0 {
			child.children = append(child.children, right.children[0])
			copy(right.children, right.children[1:])
			right.children = right.children[:len(right.children)-1]
		}
	default:
		// Merge child i with its right sibling (or left, at the end).
		if i >= len(n.entries) {
			i--
		}
		child, right := n.children[i], n.children[i+1]
		child.entries = append(child.entries, n.entries[i])
		child.entries = append(child.entries, right.entries...)
		child.children = append(child.children, right.children...)
		copy(n.entries[i:], n.entries[i+1:])
		n.entries = n.entries[:len(n.entries)-1]
		copy(n.children[i+1:], n.children[i+2:])
		n.children = n.children[:len(n.children)-1]
	}
	return n.remove(id, kind)
}

// ascend calls fn for every entry in ascending ID order until fn returns
// false, reporting whether the walk ran to completion.
func (ix *entryIndex) ascend(fn func(*Entry) bool) bool {
	if ix.root == nil {
		return true
	}
	return ix.root.ascend(fn)
}

func (n *indexNode) ascend(fn func(*Entry) bool) bool {
	internal := len(n.children) > 0
	for i, e := range n.entries {
		if internal && !n.children[i].ascend(fn) {
			return false
		}
		if !fn(e) {
			return false
		}
	}
	if internal {
		return n.children[len(n.children)-1].ascend(fn)
	}
	return true
}

// reset empties the index.
func (ix *entryIndex) reset() {
	ix.root = nil
	ix.size = 0
}
