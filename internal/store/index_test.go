package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/vclock"
)

// checkIndexInvariants walks the tree verifying B-tree structure: key order,
// node occupancy, and uniform leaf depth.
func checkIndexInvariants(t *testing.T, ix *entryIndex) {
	t.Helper()
	if ix.root == nil {
		if ix.size != 0 {
			t.Fatalf("nil root with size %d", ix.size)
		}
		return
	}
	var prev *item.ID
	counted := 0
	leafDepth := -1
	var walk func(n *indexNode, depth int)
	walk = func(n *indexNode, depth int) {
		if n != ix.root && len(n.entries) < indexMinItems {
			t.Fatalf("underfull node: %d entries at depth %d", len(n.entries), depth)
		}
		if len(n.entries) > indexMaxItems {
			t.Fatalf("overfull node: %d entries", len(n.entries))
		}
		internal := len(n.children) > 0
		if internal && len(n.children) != len(n.entries)+1 {
			t.Fatalf("node has %d entries but %d children", len(n.entries), len(n.children))
		}
		if !internal {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf depth %d != %d", depth, leafDepth)
			}
		}
		for i, e := range n.entries {
			if internal {
				walk(n.children[i], depth+1)
			}
			if prev != nil && !lessID(*prev, e.Item.ID) {
				t.Fatalf("order violation: %s !< %s", *prev, e.Item.ID)
			}
			id := e.Item.ID
			prev = &id
			counted++
		}
		if internal {
			walk(n.children[len(n.children)-1], depth+1)
		}
	}
	walk(ix.root, 0)
	if counted != ix.size {
		t.Fatalf("walk found %d entries, size says %d", counted, ix.size)
	}
}

// TestIndexDifferential drives the B-tree and a map-based reference with the
// same random operation stream and demands identical contents throughout.
func TestIndexDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ix entryIndex
	ref := make(map[item.ID]*Entry)

	randomID := func() item.ID {
		return item.ID{
			Creator: vclock.ReplicaID(fmt.Sprintf("r%d", rng.Intn(20))),
			Num:     uint64(rng.Intn(200) + 1),
		}
	}
	for op := 0; op < 20000; op++ {
		id := randomID()
		switch rng.Intn(3) {
		case 0, 1: // insert or replace
			e := &Entry{Item: &item.Item{ID: id}}
			prev := ix.replaceOrInsert(e)
			if prev != ref[id] {
				t.Fatalf("op %d: replaceOrInsert(%s) returned %v, ref had %v", op, id, prev, ref[id])
			}
			ref[id] = e
		case 2: // delete
			got := ix.delete(id)
			if got != ref[id] {
				t.Fatalf("op %d: delete(%s) returned %v, ref had %v", op, id, got, ref[id])
			}
			delete(ref, id)
		}
		if ix.len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", op, ix.len(), len(ref))
		}
		if e := ix.get(id); e != ref[id] {
			t.Fatalf("op %d: get(%s) = %v, ref %v", op, id, e, ref[id])
		}
		if op%500 == 0 {
			checkIndexInvariants(t, &ix)
			assertSameOrder(t, &ix, ref)
		}
	}
	checkIndexInvariants(t, &ix)
	assertSameOrder(t, &ix, ref)

	// Drain completely to exercise every delete rebalancing path.
	ids := make([]item.ID, 0, len(ref))
	for id := range ref {
		ids = append(ids, id)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if ix.delete(id) == nil {
			t.Fatalf("drain: delete(%s) found nothing", id)
		}
		delete(ref, id)
	}
	if ix.len() != 0 {
		t.Fatalf("drained index has %d entries", ix.len())
	}
	checkIndexInvariants(t, &ix)
}

// assertSameOrder checks that ascend yields exactly the reference contents in
// ascending ID order.
func assertSameOrder(t *testing.T, ix *entryIndex, ref map[item.ID]*Entry) {
	t.Helper()
	want := make([]item.ID, 0, len(ref))
	for id := range ref {
		want = append(want, id)
	}
	sort.Slice(want, func(i, j int) bool { return lessID(want[i], want[j]) })
	i := 0
	ix.ascend(func(e *Entry) bool {
		if i >= len(want) {
			t.Fatalf("ascend yielded extra entry %s", e.Item.ID)
		}
		if e.Item.ID != want[i] {
			t.Fatalf("ascend[%d] = %s, want %s", i, e.Item.ID, want[i])
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("ascend yielded %d entries, want %d", i, len(want))
	}
}

// TestIndexAscendEarlyStop verifies the walk halts when fn returns false.
func TestIndexAscendEarlyStop(t *testing.T) {
	var ix entryIndex
	for i := 1; i <= 100; i++ {
		ix.replaceOrInsert(&Entry{Item: mkItem("a", uint64(i))})
	}
	n := 0
	ix.ascend(func(*Entry) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d entries, want 7", n)
	}
}

// TestIndexReset verifies reset empties the tree.
func TestIndexReset(t *testing.T) {
	var ix entryIndex
	ix.replaceOrInsert(&Entry{Item: mkItem("a", 1)})
	ix.reset()
	if ix.len() != 0 || ix.get(item.ID{Creator: "a", Num: 1}) != nil {
		t.Fatal("reset left entries behind")
	}
}
