package store

import (
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/obs"
)

func mkTombstone(creator string, num uint64) *item.Item {
	it := mkItem(creator, num)
	it.Deleted = true
	return it
}

// checkGauges asserts the metric gauges mirror the store's own counters.
func checkGauges(t *testing.T, s *Store, m *obs.StoreMetrics) {
	t.Helper()
	if got, want := m.Live.Value(), int64(s.LiveLen()); got != want {
		t.Errorf("Live gauge = %d, store says %d", got, want)
	}
	if got, want := m.Relay.Value(), int64(s.RelayLen()); got != want {
		t.Errorf("Relay gauge = %d, store says %d", got, want)
	}
	if got, want := m.Tombstones.Value(), int64(s.TombstoneLen()); got != want {
		t.Errorf("Tombstones gauge = %d, store says %d", got, want)
	}
}

func TestMetricsGaugesTrackMutations(t *testing.T) {
	s := New(2)
	m := &obs.StoreMetrics{}
	s.SetMetrics(m)

	s.Put(mkItem("a", 1), nil, false, true) // local live
	s.Put(mkItem("b", 1), nil, true, false) // relay
	s.Put(mkItem("b", 2), nil, true, false) // relay
	checkGauges(t, s, m)

	// Third relay entry evicts the oldest relay (b/1).
	s.Put(mkItem("b", 3), nil, true, false)
	checkGauges(t, s, m)
	if got := m.Evictions.Value(); got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}

	// Replacing a live entry with a tombstone moves live -> tombstone.
	s.Put(mkTombstone("a", 1), nil, false, true)
	checkGauges(t, s, m)
	if m.Tombstones.Value() != 1 {
		t.Errorf("Tombstones = %d, want 1", m.Tombstones.Value())
	}

	// Remove drops whatever partition the entry was in.
	s.Remove(item.ID{Creator: "a", Num: 1})
	s.Remove(item.ID{Creator: "b", Num: 2})
	checkGauges(t, s, m)
}

func TestMetricsGaugesSurviveRestore(t *testing.T) {
	s := New(0)
	m := &obs.StoreMetrics{}
	s.SetMetrics(m)
	s.Put(mkItem("a", 1), nil, false, true)
	s.Put(mkItem("a", 2), nil, true, false)
	s.Put(mkTombstone("a", 3), nil, false, false)

	donor := New(0)
	donor.Put(mkItem("z", 1), nil, true, false)
	donor.Put(mkItem("z", 2), nil, true, false)
	snap, next := donor.Snapshot()

	if err := s.Restore(snap, next); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	checkGauges(t, s, m)
	if m.Live.Value() != 2 || m.Relay.Value() != 2 || m.Tombstones.Value() != 0 {
		t.Errorf("post-restore gauges = %d/%d/%d, want 2/2/0",
			m.Live.Value(), m.Relay.Value(), m.Tombstones.Value())
	}

	// A failed restore must leave the gauges untouched.
	bad := []EntrySnapshot{{Item: nil}}
	if err := s.Restore(bad, next); err == nil {
		t.Fatal("Restore with nil item should fail")
	}
	checkGauges(t, s, m)
}

func TestMetricsNilIsNoOp(t *testing.T) {
	s := New(1)
	s.SetMetrics(nil)
	s.Put(mkItem("a", 1), nil, true, false)
	s.Put(mkItem("a", 2), nil, true, false) // evicts
	s.Remove(item.ID{Creator: "a", Num: 2})
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}
