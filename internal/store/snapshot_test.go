package store

import (
	"testing"

	"replidtn/internal/item"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New(3)
	a, b := mkItem("x", 1), mkItem("y", 1)
	s.Put(a, item.Transient{}.Set(item.FieldTTL, 5), true, false)
	s.Put(b, nil, false, true)
	dead := mkItem("z", 1)
	dead.Deleted = true
	s.Put(dead, nil, false, false)

	entries, next := s.Snapshot()
	if len(entries) != 3 {
		t.Fatalf("snapshot has %d entries", len(entries))
	}

	restored := New(3)
	if err := restored.Restore(entries, next); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 || restored.LiveLen() != 2 || restored.RelayLen() != 1 {
		t.Errorf("counts = %d/%d/%d", restored.Len(), restored.LiveLen(), restored.RelayLen())
	}
	ea := restored.Get(a.ID)
	if ea == nil || !ea.Relay || ea.Transient.GetInt(item.FieldTTL) != 5 {
		t.Errorf("entry a mismatched: %+v", ea)
	}
	eb := restored.Get(b.ID)
	if eb == nil || !eb.Local || eb.Relay {
		t.Errorf("entry b mismatched: %+v", eb)
	}
	// FIFO order survives: the next relay put evicts a (the oldest) once
	// capacity shrinks to 1.
	tight := New(1)
	if err := tight.Restore(entries, next); err != nil {
		t.Fatal(err)
	}
	ev := tight.Put(mkItem("w", 1), nil, true, false)
	if len(ev) != 1 || ev[0].Item.ID != a.ID {
		t.Errorf("restored FIFO order broken: evicted %v", ev)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := New(0)
	it := mkItem("x", 1)
	s.Put(it, item.Transient{}.Set(item.FieldTTL, 9), false, false)
	entries, _ := s.Snapshot()
	entries[0].Item.Payload = []byte("mutated")
	entries[0].Transient.Set(item.FieldTTL, 1)
	if got := s.Get(it.ID); got.Transient.GetInt(item.FieldTTL) != 9 || len(got.Item.Payload) != 0 {
		t.Error("snapshot shares storage with the live store")
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	s := New(0)
	good, next := func() ([]EntrySnapshot, uint64) {
		tmp := New(0)
		tmp.Put(mkItem("x", 1), nil, false, false)
		return tmp.Snapshot()
	}()
	cases := []struct {
		name    string
		entries []EntrySnapshot
		next    uint64
	}{
		{"nil item", []EntrySnapshot{{}}, 1},
		{"duplicate id", append(append([]EntrySnapshot(nil), good...), good...), next},
		{"arrival beyond counter", good, 0},
	}
	for _, tc := range cases {
		if err := s.Restore(tc.entries, tc.next); err == nil {
			t.Errorf("%s: Restore should fail", tc.name)
		}
	}
	if s.Len() != 0 {
		t.Error("failed restore must leave the store unchanged")
	}
}

func TestRelayCapacityAccessor(t *testing.T) {
	if New(7).RelayCapacity() != 7 {
		t.Error("RelayCapacity accessor mismatch")
	}
}
