// Package store implements a replica's local item store: the latest version
// of every logical item the replica holds, including tombstones for deleted
// items, together with per-copy transient routing metadata.
//
// Entries divide into two partitions. In-filter entries match the replica's
// own filter (for the messaging application: messages addressed to it).
// Relay entries do not match the filter and are held only to be forwarded on
// behalf of others — the generalization of the Cimbiosys push-out store that
// the paper's DTN extension relies on. Storage limits and FIFO eviction apply
// exclusively to relay entries, matching the paper's storage-constrained
// experiments, which exempt messages for which the node is the sender or a
// destination.
package store

import (
	"sort"

	"replidtn/internal/item"
)

// Entry is one stored copy of an item plus its host-local state.
type Entry struct {
	// Item is the latest known version of the logical item.
	Item *item.Item
	// Transient is host-specific routing metadata for this copy; it never
	// replicates and mutating it never changes the item's version.
	Transient item.Transient
	// Relay marks entries held only for forwarding (they do not match the
	// replica's filter). Relay entries are subject to capacity eviction.
	Relay bool
	// Local marks entries created by this replica. Local entries are never
	// relay entries: a sender keeps its own messages regardless of filter
	// and storage pressure, matching the paper's storage-constraint rule.
	Local bool
	// arrival is the store-local arrival sequence used for FIFO eviction.
	arrival uint64
}

// Arrival returns the entry's arrival order within the store (earlier is
// smaller).
func (e *Entry) Arrival() uint64 { return e.arrival }

// EvictionStrategy orders relay entries for eviction when the store exceeds
// its relay capacity. Less reports whether a should be evicted before b.
type EvictionStrategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Less reports whether entry a should be evicted before entry b.
	Less(a, b *Entry) bool
}

// FIFO evicts the oldest relay entry first — the strategy the paper's
// storage-constrained experiments use.
type FIFO struct{}

// Name implements EvictionStrategy.
func (FIFO) Name() string { return "fifo" }

// Less implements EvictionStrategy.
func (FIFO) Less(a, b *Entry) bool { return a.arrival < b.arrival }

// EvictByCost evicts the relay entry with the highest transient cost field
// first (ties broken FIFO). MaxProp's buffer management uses this shape:
// messages least likely to be delivered (highest path cost) are dropped
// first.
type EvictByCost struct {
	// Field is the transient field holding the cost (higher = evict first).
	Field string
}

// Name implements EvictionStrategy.
func (e EvictByCost) Name() string { return "cost(" + e.Field + ")" }

// Less implements EvictionStrategy.
func (e EvictByCost) Less(a, b *Entry) bool {
	ca, okA := a.Transient.Get(e.Field)
	cb, okB := b.Transient.Get(e.Field)
	switch {
	case okA && okB && ca != cb:
		return ca > cb
	case okA != okB:
		// Entries without a cost stay longest: nothing is known against them.
		return okA
	default:
		return a.arrival < b.arrival
	}
}

// Store holds a replica's entries. The zero value is not usable; call New.
// Store is not safe for concurrent use; the owning replica serializes access.
type Store struct {
	entries map[item.ID]*Entry
	// relayCapacity bounds the number of live (non-tombstone) relay entries;
	// <= 0 means unlimited.
	relayCapacity int
	eviction      EvictionStrategy
	nextArrival   uint64
}

// New creates an empty store. relayCapacity bounds the number of live relay
// entries (<= 0 for unlimited); when the bound is exceeded the oldest relay
// entry is evicted first (FIFO). Use NewWithEviction for other strategies.
func New(relayCapacity int) *Store {
	return NewWithEviction(relayCapacity, FIFO{})
}

// NewWithEviction creates an empty store with an explicit eviction strategy.
func NewWithEviction(relayCapacity int, eviction EvictionStrategy) *Store {
	if eviction == nil {
		eviction = FIFO{}
	}
	return &Store{
		entries:       make(map[item.ID]*Entry),
		relayCapacity: relayCapacity,
		eviction:      eviction,
	}
}

// RelayCapacity returns the configured relay bound (<= 0 means unlimited).
func (s *Store) RelayCapacity() int { return s.relayCapacity }

// Get returns the entry for the given item ID, or nil.
func (s *Store) Get(id item.ID) *Entry { return s.entries[id] }

// Len returns the total number of entries, including tombstones.
func (s *Store) Len() int { return len(s.entries) }

// LiveLen returns the number of non-tombstone entries.
func (s *Store) LiveLen() int {
	n := 0
	for _, e := range s.entries {
		if !e.Item.Deleted {
			n++
		}
	}
	return n
}

// RelayLen returns the number of live relay entries (the population the
// capacity bound applies to).
func (s *Store) RelayLen() int {
	n := 0
	for _, e := range s.entries {
		if e.Relay && !e.Item.Deleted {
			n++
		}
	}
	return n
}

// Put inserts or replaces the entry for it.ID and returns the entries evicted
// to respect the relay capacity (possibly including the one just inserted,
// though FIFO order makes that unlikely in practice). The item is stored as
// given; callers pass clones when they need isolation. Local entries are
// never treated as relay entries.
func (s *Store) Put(it *item.Item, transient item.Transient, relay, local bool) []*Entry {
	prev := s.entries[it.ID]
	if local {
		relay = false
	}
	e := &Entry{Item: it, Transient: transient, Relay: relay, Local: local}
	if prev != nil {
		// Replacing a known item keeps its arrival slot: an updated relay
		// entry does not move to the back of the FIFO queue.
		e.arrival = prev.arrival
	} else {
		s.nextArrival++
		e.arrival = s.nextArrival
	}
	s.entries[it.ID] = e
	return s.evictOverflow()
}

// Remove deletes the entry outright (used when applying tombstones where no
// forwarding obligation remains). It returns the removed entry, or nil.
func (s *Store) Remove(id item.ID) *Entry {
	e := s.entries[id]
	if e != nil {
		delete(s.entries, id)
	}
	return e
}

// evictOverflow enforces the relay capacity, evicting oldest-first.
func (s *Store) evictOverflow() []*Entry {
	if s.relayCapacity <= 0 {
		return nil
	}
	over := s.RelayLen() - s.relayCapacity
	if over <= 0 {
		return nil
	}
	relays := make([]*Entry, 0, s.RelayLen())
	for _, e := range s.entries {
		if e.Relay && !e.Item.Deleted {
			relays = append(relays, e)
		}
	}
	sort.Slice(relays, func(i, j int) bool { return s.eviction.Less(relays[i], relays[j]) })
	evicted := relays[:over]
	for _, e := range evicted {
		delete(s.entries, e.Item.ID)
	}
	return evicted
}

// Entries returns all entries in deterministic (item ID) order. The slice is
// freshly allocated; entries are shared.
func (s *Store) Entries() []*Entry {
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].Item.ID, out[j].Item.ID) })
	return out
}

// Range calls fn for every entry in deterministic order until fn returns
// false.
func (s *Store) Range(fn func(*Entry) bool) {
	for _, e := range s.Entries() {
		if !fn(e) {
			return
		}
	}
}

func lessID(a, b item.ID) bool {
	if a.Creator != b.Creator {
		return a.Creator < b.Creator
	}
	return a.Num < b.Num
}
