// Package store implements a replica's local item store: the latest version
// of every logical item the replica holds, including tombstones for deleted
// items, together with per-copy transient routing metadata.
//
// Entries divide into two partitions. In-filter entries match the replica's
// own filter (for the messaging application: messages addressed to it).
// Relay entries do not match the filter and are held only to be forwarded on
// behalf of others — the generalization of the Cimbiosys push-out store that
// the paper's DTN extension relies on. Storage limits and FIFO eviction apply
// exclusively to relay entries, matching the paper's storage-constrained
// experiments, which exempt messages for which the node is the sender or a
// destination.
//
// The store keeps three incremental indexes so its read paths are cheap on
// the synchronization hot path: an ordered B-tree over entries (iteration in
// ID order without per-call allocation or sorting), live/relay counters
// (LiveLen and RelayLen are O(1)), and — for arrival-ordered eviction
// strategies — a lazy min-heap over relay entries so enforcing the relay
// capacity never rescans the store.
package store

import (
	"sort"

	"replidtn/internal/item"
	"replidtn/internal/obs"
)

// Entry is one stored copy of an item plus its host-local state.
type Entry struct {
	// Item is the latest known version of the logical item.
	Item *item.Item
	// Transient is host-specific routing metadata for this copy; it never
	// replicates and mutating it never changes the item's version.
	Transient item.Transient
	// Relay marks entries held only for forwarding (they do not match the
	// replica's filter). Relay entries are subject to capacity eviction.
	Relay bool
	// Local marks entries created by this replica. Local entries are never
	// relay entries: a sender keeps its own messages regardless of filter
	// and storage pressure, matching the paper's storage-constraint rule.
	Local bool
	// arrival is the store-local arrival sequence used for FIFO eviction.
	arrival uint64
}

// Arrival returns the entry's arrival order within the store (earlier is
// smaller).
func (e *Entry) Arrival() uint64 { return e.arrival }

// relayLive reports whether the entry counts toward the relay capacity.
func (e *Entry) relayLive() bool { return e.Relay && !e.Item.Deleted }

// EvictionStrategy orders relay entries for eviction when the store exceeds
// its relay capacity. Less reports whether a should be evicted before b.
type EvictionStrategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Less reports whether entry a should be evicted before entry b.
	Less(a, b *Entry) bool
}

// ArrivalOrdered marks eviction strategies whose order depends only on the
// entry's immutable arrival sequence. For such strategies the store maintains
// an incremental eviction heap; strategies whose order reads mutable state
// (e.g. transient cost fields a routing policy rewrites in place) cannot be
// indexed and fall back to scanning the relay partition when — and only
// when — an eviction is actually due.
type ArrivalOrdered interface {
	ArrivalOrdered() bool
}

// FIFO evicts the oldest relay entry first — the strategy the paper's
// storage-constrained experiments use.
type FIFO struct{}

// Name implements EvictionStrategy.
func (FIFO) Name() string { return "fifo" }

// Less implements EvictionStrategy.
func (FIFO) Less(a, b *Entry) bool { return a.arrival < b.arrival }

// ArrivalOrdered implements ArrivalOrdered: FIFO order is fixed at insert.
func (FIFO) ArrivalOrdered() bool { return true }

// EvictByCost evicts the relay entry with the highest transient cost field
// first (ties broken FIFO). MaxProp's buffer management uses this shape:
// messages least likely to be delivered (highest path cost) are dropped
// first.
type EvictByCost struct {
	// Field is the transient field holding the cost (higher = evict first).
	Field string
}

// Name implements EvictionStrategy.
func (e EvictByCost) Name() string { return "cost(" + e.Field + ")" }

// Less implements EvictionStrategy.
func (e EvictByCost) Less(a, b *Entry) bool {
	ca, okA := a.Transient.Get(e.Field)
	cb, okB := b.Transient.Get(e.Field)
	switch {
	case okA && okB && ca != cb:
		return ca > cb
	case okA != okB:
		// Entries without a cost stay longest: nothing is known against them.
		return okA
	default:
		return a.arrival < b.arrival
	}
}

// Store holds a replica's entries. The zero value is not usable; call New.
// Store is not safe for concurrent use; the owning replica serializes access.
type Store struct {
	entries map[item.ID]*Entry
	// index orders entries by item ID, maintained on every mutation.
	index entryIndex
	// relayCapacity bounds the number of live (non-tombstone) relay entries;
	// <= 0 means unlimited.
	relayCapacity int
	eviction      EvictionStrategy
	nextArrival   uint64

	// liveCount counts non-tombstone entries; relayCount counts live relay
	// entries (the population the capacity bound applies to). Both are
	// maintained on every mutation so LiveLen/RelayLen are O(1).
	liveCount  int
	relayCount int

	// evictHeap is a min-heap over relay-live entries keyed by the eviction
	// strategy's (arrival-only) order, with lazy invalidation: superseded or
	// reclassified entries stay in the heap and are skipped on pop. Nil when
	// the strategy is not ArrivalOrdered or the capacity is unlimited.
	evictHeap []*Entry
	useHeap   bool

	// onLive observes live-copy transitions (see LiveNotify).
	onLive func(item.ID, int)

	// onJournal observes every incremental mutation (see Journal).
	onJournal func(JournalOp)

	// metrics, when set, mirrors the partition counters into observability
	// gauges (see SetMetrics). Nil disables the hooks entirely.
	metrics *obs.StoreMetrics
}

// SetMetrics registers an observability sink: the Live/Relay/Tombstones
// gauges track the partition populations by delta on every mutation, and
// Evictions counts capacity evictions. A single sink may be shared by many
// stores — deltas aggregate — as long as each store is detached before being
// discarded. Nil (the default) disables the hooks; like LiveNotify, register
// before the store sees traffic.
func (s *Store) SetMetrics(m *obs.StoreMetrics) { s.metrics = m }

// DetachMetrics withdraws this store's contribution from the shared gauges
// and unregisters the sink. Call it before discarding a store whose contents
// live on elsewhere (e.g. a crash-restart that rebuilds the node from a
// snapshot), so the successor's recount does not double the population.
func (s *Store) DetachMetrics() {
	if s.metrics == nil {
		return
	}
	s.metrics.Live.Add(-int64(s.liveCount))
	s.metrics.Relay.Add(-int64(s.relayCount))
	s.metrics.Tombstones.Add(-int64(s.TombstoneLen()))
	s.metrics = nil
}

// JournalOp is one incremental store mutation as observed by a Journal hook:
// exactly one of Put and Remove is set.
type JournalOp struct {
	// Put, when non-nil, is a deep snapshot of the entry that just became
	// current (insert or replacement), safe to retain and serialize.
	Put *EntrySnapshot
	// Remove, when Put is nil, identifies the entry that just left the store
	// (explicit removal or capacity eviction).
	Remove item.ID
	// NextArrival is the store's arrival counter after the mutation; a
	// journal replay must restore it so FIFO eviction order survives.
	NextArrival uint64
}

// Journal registers fn to observe every incremental mutation: one Put op per
// entry that becomes current and one Remove op per entry that leaves the
// store (including capacity evictions), in occurrence order. Replaying the
// ops against an empty store rebuilds its exact contents — the hook the
// write-ahead-log persistence backend rides on. Restore is wholesale
// replacement, not an incremental mutation, and is not journaled; like
// LiveNotify, register before the store sees traffic. A nil fn unregisters.
func (s *Store) Journal(fn func(JournalOp)) { s.onJournal = fn }

// LiveNotify registers fn to observe live-copy transitions: fn(id, +1) runs
// when a live (non-tombstone) entry for id becomes current, fn(id, -1) when
// the current live entry for id is replaced, removed, or evicted. Replacing a
// live entry with a newer live version fires -1 then +1 (net zero). The sum
// of deltas for an id therefore tracks whether this store holds a live copy
// of it — the per-item copy accounting the emulator aggregates across nodes.
// Restore rebuilds the store wholesale and does not notify; register before
// the store sees traffic.
func (s *Store) LiveNotify(fn func(item.ID, int)) { s.onLive = fn }

// New creates an empty store. relayCapacity bounds the number of live relay
// entries (<= 0 for unlimited); when the bound is exceeded the oldest relay
// entry is evicted first (FIFO). Use NewWithEviction for other strategies.
func New(relayCapacity int) *Store {
	return NewWithEviction(relayCapacity, FIFO{})
}

// NewWithEviction creates an empty store with an explicit eviction strategy.
func NewWithEviction(relayCapacity int, eviction EvictionStrategy) *Store {
	if eviction == nil {
		eviction = FIFO{}
	}
	ao, ok := eviction.(ArrivalOrdered)
	return &Store{
		entries:       make(map[item.ID]*Entry),
		relayCapacity: relayCapacity,
		eviction:      eviction,
		useHeap:       relayCapacity > 0 && ok && ao.ArrivalOrdered(),
	}
}

// RelayCapacity returns the configured relay bound (<= 0 means unlimited).
func (s *Store) RelayCapacity() int { return s.relayCapacity }

// Get returns the entry for the given item ID, or nil.
func (s *Store) Get(id item.ID) *Entry { return s.entries[id] }

// Len returns the total number of entries, including tombstones.
func (s *Store) Len() int { return len(s.entries) }

// LiveLen returns the number of non-tombstone entries in O(1).
func (s *Store) LiveLen() int { return s.liveCount }

// RelayLen returns the number of live relay entries (the population the
// capacity bound applies to) in O(1).
func (s *Store) RelayLen() int { return s.relayCount }

// TombstoneLen returns the number of tombstone entries in O(1).
func (s *Store) TombstoneLen() int { return len(s.entries) - s.liveCount }

// Put inserts or replaces the entry for it.ID and returns the entries evicted
// to respect the relay capacity (possibly including the one just inserted,
// though FIFO order makes that unlikely in practice). The item is stored as
// given; callers pass clones when they need isolation. Local entries are
// never treated as relay entries.
func (s *Store) Put(it *item.Item, transient item.Transient, relay, local bool) []*Entry {
	prev := s.entries[it.ID]
	if local {
		relay = false
	}
	e := &Entry{Item: it, Transient: transient, Relay: relay, Local: local}
	if prev != nil {
		// Replacing a known item keeps its arrival slot: an updated relay
		// entry does not move to the back of the FIFO queue.
		e.arrival = prev.arrival
		s.uncount(prev)
	} else {
		s.nextArrival++
		e.arrival = s.nextArrival
	}
	s.entries[it.ID] = e
	s.index.replaceOrInsert(e)
	s.count(e)
	if s.onJournal != nil {
		snap := snapshotEntry(e)
		s.onJournal(JournalOp{Put: &snap, NextArrival: s.nextArrival})
	}
	return s.evictOverflow()
}

// Remove deletes the entry outright (used when applying tombstones where no
// forwarding obligation remains). It returns the removed entry, or nil.
func (s *Store) Remove(id item.ID) *Entry {
	e := s.entries[id]
	if e != nil {
		delete(s.entries, id)
		s.index.delete(id)
		s.uncount(e)
		if s.onJournal != nil {
			s.onJournal(JournalOp{Remove: id, NextArrival: s.nextArrival})
		}
	}
	return e
}

// count folds a newly current entry into the maintained counters and, when
// relay-live, the eviction heap.
func (s *Store) count(e *Entry) {
	if !e.Item.Deleted {
		s.liveCount++
		if s.onLive != nil {
			s.onLive(e.Item.ID, 1)
		}
		if s.metrics != nil {
			s.metrics.Live.Add(1)
		}
	} else if s.metrics != nil {
		s.metrics.Tombstones.Add(1)
	}
	if e.relayLive() {
		s.relayCount++
		if s.metrics != nil {
			s.metrics.Relay.Add(1)
		}
		if s.useHeap {
			s.heapPush(e)
		}
	}
}

// uncount removes a no-longer-current entry from the counters. A stale heap
// element is left behind and skipped lazily on pop.
func (s *Store) uncount(e *Entry) {
	if !e.Item.Deleted {
		s.liveCount--
		if s.onLive != nil {
			s.onLive(e.Item.ID, -1)
		}
		if s.metrics != nil {
			s.metrics.Live.Add(-1)
		}
	} else if s.metrics != nil {
		s.metrics.Tombstones.Add(-1)
	}
	if e.relayLive() {
		s.relayCount--
		if s.metrics != nil {
			s.metrics.Relay.Add(-1)
		}
	}
}

// evictOverflow enforces the relay capacity. The counter makes the common
// under-capacity case O(1); when evictions are due, arrival-ordered
// strategies pop the maintained heap and others scan the relay partition.
func (s *Store) evictOverflow() []*Entry {
	if s.relayCapacity <= 0 {
		return nil
	}
	over := s.relayCount - s.relayCapacity
	if over <= 0 {
		return nil
	}
	if s.metrics != nil {
		s.metrics.Evictions.Add(int64(over))
	}
	evicted := make([]*Entry, 0, over)
	if s.useHeap {
		for len(evicted) < over {
			e := s.heapPop()
			delete(s.entries, e.Item.ID)
			s.index.delete(e.Item.ID)
			s.uncount(e)
			if s.onJournal != nil {
				s.onJournal(JournalOp{Remove: e.Item.ID, NextArrival: s.nextArrival})
			}
			evicted = append(evicted, e)
		}
		return evicted
	}
	relays := make([]*Entry, 0, s.relayCount)
	for _, e := range s.entries {
		if e.relayLive() {
			relays = append(relays, e)
		}
	}
	sort.Slice(relays, func(i, j int) bool { return s.eviction.Less(relays[i], relays[j]) })
	for _, e := range relays[:over] {
		delete(s.entries, e.Item.ID)
		s.index.delete(e.Item.ID)
		s.uncount(e)
		if s.onJournal != nil {
			s.onJournal(JournalOp{Remove: e.Item.ID, NextArrival: s.nextArrival})
		}
		evicted = append(evicted, e)
	}
	return evicted
}

// heapPush adds a relay-live entry to the eviction heap, pruning accumulated
// stale elements when they dominate the heap.
func (s *Store) heapPush(e *Entry) {
	if len(s.evictHeap) > 4*s.relayCount+16 {
		s.heapRebuild()
	}
	s.evictHeap = append(s.evictHeap, e)
	i := len(s.evictHeap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.eviction.Less(s.evictHeap[i], s.evictHeap[parent]) {
			break
		}
		s.evictHeap[i], s.evictHeap[parent] = s.evictHeap[parent], s.evictHeap[i]
		i = parent
	}
}

// heapPop removes and returns the first-to-evict valid relay entry, skipping
// lazily invalidated elements (replaced, removed, or reclassified entries).
// The caller guarantees at least one valid element exists (relayCount > 0).
func (s *Store) heapPop() *Entry {
	for {
		e := s.evictHeap[0]
		last := len(s.evictHeap) - 1
		s.evictHeap[0] = s.evictHeap[last]
		s.evictHeap[last] = nil
		s.evictHeap = s.evictHeap[:last]
		if last > 0 {
			s.heapSiftDown(0)
		}
		// Valid iff still the current entry for its ID and still relay-live:
		// Put always allocates a fresh Entry, so pointer identity suffices.
		if s.entries[e.Item.ID] == e && e.relayLive() {
			return e
		}
	}
}

func (s *Store) heapSiftDown(i int) {
	n := len(s.evictHeap)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && s.eviction.Less(s.evictHeap[left], s.evictHeap[least]) {
			least = left
		}
		if right < n && s.eviction.Less(s.evictHeap[right], s.evictHeap[least]) {
			least = right
		}
		if least == i {
			return
		}
		s.evictHeap[i], s.evictHeap[least] = s.evictHeap[least], s.evictHeap[i]
		i = least
	}
}

// heapRebuild drops stale elements and re-heapifies.
func (s *Store) heapRebuild() {
	valid := s.evictHeap[:0]
	for _, e := range s.evictHeap {
		if s.entries[e.Item.ID] == e && e.relayLive() {
			valid = append(valid, e)
		}
	}
	for i := len(valid); i < len(s.evictHeap); i++ {
		s.evictHeap[i] = nil
	}
	s.evictHeap = valid
	for i := len(valid)/2 - 1; i >= 0; i-- {
		s.heapSiftDown(i)
	}
}

// rebuildIndexes reconstructs every maintained index from the entries map;
// used after wholesale replacement (Restore). Wholesale replacement is not
// an incremental live-copy transition, so the LiveNotify observer is
// suppressed for its duration.
func (s *Store) rebuildIndexes() {
	notify := s.onLive
	s.onLive = nil
	defer func() { s.onLive = notify }()
	s.index.reset()
	s.liveCount, s.relayCount = 0, 0
	s.evictHeap = s.evictHeap[:0]
	for _, e := range s.entries {
		s.index.replaceOrInsert(e)
		s.count(e)
	}
}

// Entries returns all entries in deterministic (item ID) order. The slice is
// freshly allocated; entries are shared. Prefer Range on read-only paths —
// Entries exists for callers that mutate the store while iterating.
func (s *Store) Entries() []*Entry {
	out := make([]*Entry, 0, len(s.entries))
	s.index.ascend(func(e *Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Range calls fn for every entry in deterministic (item ID) order until fn
// returns false. It walks the maintained index directly — no allocation, no
// per-call sort. fn must not insert into or remove from the store; use
// Entries for a snapshot when the loop body mutates membership.
func (s *Store) Range(fn func(*Entry) bool) {
	s.index.ascend(fn)
}

func lessID(a, b item.ID) bool {
	if a.Creator != b.Creator {
		return a.Creator < b.Creator
	}
	return a.Num < b.Num
}
