package store

import (
	"fmt"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/vclock"
)

func mkItem(creator string, num uint64) *item.Item {
	return &item.Item{
		ID:      item.ID{Creator: vclock.ReplicaID(creator), Num: num},
		Version: vclock.Version{Replica: vclock.ReplicaID(creator), Seq: num},
		Meta:    item.Metadata{Kind: "message"},
	}
}

func TestPutGet(t *testing.T) {
	s := New(0)
	it := mkItem("a", 1)
	if ev := s.Put(it, nil, false, false); len(ev) != 0 {
		t.Fatalf("unexpected eviction: %v", ev)
	}
	e := s.Get(it.ID)
	if e == nil || e.Item != it {
		t.Fatal("Get should return the stored entry")
	}
	if s.Len() != 1 || s.LiveLen() != 1 || s.RelayLen() != 0 {
		t.Errorf("counts = %d/%d/%d", s.Len(), s.LiveLen(), s.RelayLen())
	}
}

func TestPutReplaceKeepsArrival(t *testing.T) {
	s := New(0)
	s.Put(mkItem("a", 1), nil, true, false)
	first := s.Get(item.ID{Creator: "a", Num: 1}).Arrival()
	s.Put(mkItem("b", 1), nil, true, false)
	s.Put(mkItem("a", 1), nil, true, false) // replace
	if got := s.Get(item.ID{Creator: "a", Num: 1}).Arrival(); got != first {
		t.Errorf("replacement moved arrival %d -> %d", first, got)
	}
}

func TestRelayFIFOEviction(t *testing.T) {
	s := New(2)
	e1, e2, e3 := mkItem("a", 1), mkItem("a", 2), mkItem("a", 3)
	s.Put(e1, nil, true, false)
	s.Put(e2, nil, true, false)
	evicted := s.Put(e3, nil, true, false)
	if len(evicted) != 1 || evicted[0].Item.ID != e1.ID {
		t.Fatalf("expected FIFO eviction of oldest relay, got %v", evicted)
	}
	if s.Get(e1.ID) != nil {
		t.Error("evicted entry still present")
	}
	if s.RelayLen() != 2 {
		t.Errorf("RelayLen = %d, want 2", s.RelayLen())
	}
}

func TestEvictionSparesInFilterEntries(t *testing.T) {
	s := New(1)
	own := mkItem("me", 1)
	s.Put(own, nil, false, false) // in-filter: sender/destination copy
	r1, r2 := mkItem("a", 1), mkItem("a", 2)
	s.Put(r1, nil, true, false)
	evicted := s.Put(r2, nil, true, false)
	if len(evicted) != 1 || evicted[0].Item.ID != r1.ID {
		t.Fatalf("expected relay r1 evicted, got %v", evicted)
	}
	if s.Get(own.ID) == nil {
		t.Error("in-filter entry must never be evicted")
	}
}

func TestEvictionIgnoresTombstones(t *testing.T) {
	s := New(1)
	dead := mkItem("a", 1)
	dead.Deleted = true
	s.Put(dead, nil, true, false)
	live := mkItem("a", 2)
	if ev := s.Put(live, nil, true, false); len(ev) != 0 {
		t.Fatalf("tombstones must not count toward capacity, evicted %v", ev)
	}
	if s.RelayLen() != 1 {
		t.Errorf("RelayLen = %d, want 1 (tombstone excluded)", s.RelayLen())
	}
	if s.LiveLen() != 1 {
		t.Errorf("LiveLen = %d, want 1", s.LiveLen())
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	s := New(0)
	for i := uint64(1); i <= 100; i++ {
		if ev := s.Put(mkItem("a", i), nil, true, false); len(ev) != 0 {
			t.Fatal("unlimited store must never evict")
		}
	}
	if s.RelayLen() != 100 {
		t.Errorf("RelayLen = %d", s.RelayLen())
	}
}

func TestRemove(t *testing.T) {
	s := New(0)
	it := mkItem("a", 1)
	s.Put(it, nil, false, false)
	if e := s.Remove(it.ID); e == nil || e.Item != it {
		t.Error("Remove should return the removed entry")
	}
	if s.Remove(it.ID) != nil {
		t.Error("second Remove should return nil")
	}
	if s.Len() != 0 {
		t.Error("store should be empty after Remove")
	}
}

func TestEntriesDeterministicOrder(t *testing.T) {
	s := New(0)
	s.Put(mkItem("b", 1), nil, false, false)
	s.Put(mkItem("a", 2), nil, false, false)
	s.Put(mkItem("a", 1), nil, false, false)
	got := s.Entries()
	want := []string{"a/1", "a/2", "b/1"}
	for i, e := range got {
		if e.Item.ID.String() != want[i] {
			t.Errorf("Entries()[%d] = %s, want %s", i, e.Item.ID, want[i])
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New(0)
	for i := uint64(1); i <= 5; i++ {
		s.Put(mkItem("a", i), nil, false, false)
	}
	n := 0
	s.Range(func(*Entry) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Range visited %d entries, want 3", n)
	}
}

func TestEvictionEnforcedOnEveryPut(t *testing.T) {
	// Flipping in-filter entries to relay raises the relay population; each
	// Put must restore the invariant immediately, oldest relay first.
	s := New(1)
	a, b, c := mkItem("a", 1), mkItem("a", 2), mkItem("a", 3)
	s.Put(a, nil, true, false)
	s.Put(b, nil, false, false)
	s.Put(c, nil, false, false)
	if ev := s.Put(b, nil, true, false); len(ev) != 1 || ev[0].Item.ID != a.ID {
		t.Fatalf("expected eviction of a, got %v", ev)
	}
	if ev := s.Put(c, nil, true, false); len(ev) != 1 || ev[0].Item.ID != b.ID {
		t.Fatalf("expected eviction of b, got %v", ev)
	}
	if s.RelayLen() != 1 {
		t.Errorf("RelayLen = %d, want 1", s.RelayLen())
	}
}

func TestEvictByCostPrefersHighestCost(t *testing.T) {
	s := NewWithEviction(2, EvictByCost{Field: item.FieldHops})
	cheap := mkItem("a", 1)
	costly := mkItem("a", 2)
	s.Put(cheap, item.Transient{}.Set(item.FieldHops, 1), true, false)
	s.Put(costly, item.Transient{}.Set(item.FieldHops, 9), true, false)
	third := mkItem("a", 3)
	evicted := s.Put(third, item.Transient{}.Set(item.FieldHops, 2), true, false)
	if len(evicted) != 1 || evicted[0].Item.ID != costly.ID {
		t.Fatalf("expected highest-cost eviction, got %v", evicted)
	}
	if s.Get(cheap.ID) == nil || s.Get(third.ID) == nil {
		t.Error("low-cost entries should survive")
	}
}

func TestEvictByCostMissingFieldStaysLongest(t *testing.T) {
	s := NewWithEviction(1, EvictByCost{Field: item.FieldHops})
	unknown := mkItem("a", 1)
	s.Put(unknown, nil, true, false)
	known := mkItem("a", 2)
	evicted := s.Put(known, item.Transient{}.Set(item.FieldHops, 1), true, false)
	if len(evicted) != 1 || evicted[0].Item.ID != known.ID {
		t.Fatalf("costed entry should go before uncosted, got %v", evicted)
	}
}

func TestEvictByCostTieBreaksFIFO(t *testing.T) {
	s := NewWithEviction(1, EvictByCost{Field: item.FieldHops})
	first := mkItem("a", 1)
	second := mkItem("a", 2)
	s.Put(first, item.Transient{}.Set(item.FieldHops, 3), true, false)
	evicted := s.Put(second, item.Transient{}.Set(item.FieldHops, 3), true, false)
	if len(evicted) != 1 || evicted[0].Item.ID != first.ID {
		t.Fatalf("equal cost should evict FIFO, got %v", evicted)
	}
}

func TestEvictionStrategyNames(t *testing.T) {
	if (FIFO{}).Name() != "fifo" {
		t.Error("FIFO name")
	}
	if (EvictByCost{Field: "hops"}).Name() != "cost(hops)" {
		t.Error("EvictByCost name")
	}
}

func TestNewWithNilEvictionDefaultsFIFO(t *testing.T) {
	s := NewWithEviction(1, nil)
	a, b := mkItem("a", 1), mkItem("a", 2)
	s.Put(a, nil, true, false)
	evicted := s.Put(b, nil, true, false)
	if len(evicted) != 1 || evicted[0].Item.ID != a.ID {
		t.Fatalf("nil strategy should behave as FIFO, got %v", evicted)
	}
}

// countByScan recomputes the maintained counters the way the pre-index store
// did, by scanning every entry.
func countByScan(s *Store) (live, relay int) {
	for _, e := range s.entries {
		if !e.Item.Deleted {
			live++
		}
		if e.Relay && !e.Item.Deleted {
			relay++
		}
	}
	return live, relay
}

// TestCountersConsistent drives the store through random Put/Remove and
// live↔tombstone transitions and checks the O(1) counters against a full
// scan after every operation.
func TestCountersConsistent(t *testing.T) {
	for _, cap := range []int{0, 3} {
		s := New(cap)
		rng := uint64(1)
		next := func(n uint64) uint64 { // xorshift, deterministic
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % n
		}
		for op := 0; op < 4000; op++ {
			id := next(24) + 1
			it := mkItem("a", id)
			switch next(6) {
			case 0:
				s.Remove(it.ID)
			case 1: // tombstone
				it.Deleted = true
				s.Put(it, nil, next(2) == 0, next(2) == 0)
			default: // live put: relay, local, or in-filter
				s.Put(it, nil, next(2) == 0, next(3) == 0)
			}
			live, relay := countByScan(s)
			if s.LiveLen() != live {
				t.Fatalf("op %d: LiveLen %d, scan %d", op, s.LiveLen(), live)
			}
			if s.RelayLen() != relay {
				t.Fatalf("op %d: RelayLen %d, scan %d", op, s.RelayLen(), relay)
			}
			if s.TombstoneLen() != s.Len()-live {
				t.Fatalf("op %d: TombstoneLen %d, want %d", op, s.TombstoneLen(), s.Len()-live)
			}
			if cap > 0 && relay > cap {
				t.Fatalf("op %d: relay population %d exceeds capacity %d", op, relay, cap)
			}
		}
	}
}

// TestCountersSurviveRestore verifies indexes and counters are rebuilt from a
// snapshot.
func TestCountersSurviveRestore(t *testing.T) {
	s := New(4)
	for i := uint64(1); i <= 10; i++ {
		it := mkItem("a", i)
		if i%3 == 0 {
			it.Deleted = true
		}
		s.Put(it, nil, i%2 == 0, false)
	}
	snap, next := s.Snapshot()
	restored := New(4)
	if err := restored.Restore(snap, next); err != nil {
		t.Fatal(err)
	}
	wantLive, wantRelay := countByScan(restored)
	if restored.LiveLen() != wantLive || restored.RelayLen() != wantRelay {
		t.Fatalf("restored counters %d/%d, scan %d/%d",
			restored.LiveLen(), restored.RelayLen(), wantLive, wantRelay)
	}
	if got, want := restored.Entries(), s.Entries(); len(got) != len(want) {
		t.Fatalf("restored %d entries, want %d", len(got), len(want))
	}
	// The restored store must keep enforcing capacity with its rebuilt heap.
	for i := uint64(100); i < 110; i++ {
		restored.Put(mkItem("b", i), nil, true, false)
	}
	if restored.RelayLen() > 4 {
		t.Fatalf("restored store exceeded capacity: %d", restored.RelayLen())
	}
}

// scanFIFO is FIFO without the ArrivalOrdered marker, forcing the scan path.
type scanFIFO struct{}

func (scanFIFO) Name() string          { return "scan-fifo" }
func (scanFIFO) Less(a, b *Entry) bool { return a.arrival < b.arrival }

// TestHeapAndScanEvictIdentically mirrors one deterministic workload into a
// heap-backed store and a scan-backed store and demands identical evictions
// and identical final contents.
func TestHeapAndScanEvictIdentically(t *testing.T) {
	heapStore := New(4)
	scanStore := NewWithEviction(4, scanFIFO{})
	rng := uint64(99)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	for op := 0; op < 5000; op++ {
		id := next(40) + 1
		kind := next(10)
		var relay, local bool
		var deleted bool
		switch {
		case kind == 0:
			heapStore.Remove(item.ID{Creator: "x", Num: id})
			scanStore.Remove(item.ID{Creator: "x", Num: id})
			continue
		case kind == 1:
			deleted = true
			relay = next(2) == 0
		default:
			relay = next(3) != 0
			local = next(5) == 0
		}
		mk := func() *item.Item {
			it := mkItem("x", id)
			it.Deleted = deleted
			return it
		}
		ev1 := heapStore.Put(mk(), nil, relay, local)
		ev2 := scanStore.Put(mk(), nil, relay, local)
		if len(ev1) != len(ev2) {
			t.Fatalf("op %d: heap evicted %d, scan evicted %d", op, len(ev1), len(ev2))
		}
		for i := range ev1 {
			if ev1[i].Item.ID != ev2[i].Item.ID {
				t.Fatalf("op %d: eviction %d diverges: %s vs %s",
					op, i, ev1[i].Item.ID, ev2[i].Item.ID)
			}
		}
	}
	a, b := heapStore.Entries(), scanStore.Entries()
	if len(a) != len(b) {
		t.Fatalf("final contents diverge: %d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i].Item.ID != b[i].Item.ID || a[i].Relay != b[i].Relay {
			t.Fatalf("entry %d diverges: %s/%v vs %s/%v",
				i, a[i].Item.ID, a[i].Relay, b[i].Item.ID, b[i].Relay)
		}
	}
}

// BenchmarkStorePut measures Put into a store holding n entries. The bounded
// variants keep the store at its relay capacity, so every Put evicts — the
// steady state of the paper's storage-constrained experiments.
func BenchmarkStorePut(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, bounded := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/bounded=%v", n, bounded)
			b.Run(name, func(b *testing.B) {
				cap := 0
				if bounded {
					cap = n
				}
				s := New(cap)
				for i := 0; i < n; i++ {
					s.Put(mkItem("seed", uint64(i+1)), nil, true, false)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Put(mkItem("a", uint64(i+1)), nil, true, false)
				}
			})
		}
	}
}

func BenchmarkStoreEntries(b *testing.B) {
	s := New(0)
	for i := uint64(1); i <= 500; i++ {
		s.Put(mkItem(fmt.Sprintf("r%d", i%7), i), nil, false, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Entries()
	}
}

// TestLiveNotify checks the live-copy observer against every transition kind:
// insert, live→live replace, tombstone, outright removal, capacity eviction,
// and wholesale Restore (which must stay silent).
func TestLiveNotify(t *testing.T) {
	counts := make(map[item.ID]int)
	var fires int
	s := New(1)
	s.LiveNotify(func(id item.ID, delta int) {
		counts[id] += delta
		fires++
	})

	local := mkItem("a", 1)
	s.Put(local, nil, false, true)
	if counts[local.ID] != 1 {
		t.Errorf("after insert: count = %d, want 1", counts[local.ID])
	}

	// Live→live replacement fires -1 then +1: net zero change.
	before := fires
	s.Put(mkItem("a", 1), nil, false, true)
	if counts[local.ID] != 1 || fires != before+2 {
		t.Errorf("after replace: count = %d (want 1), fires = %d (want %d)",
			counts[local.ID], fires, before+2)
	}

	// Tombstoning a live entry nets -1; inserting a tombstone stays silent.
	dead := mkItem("a", 1)
	dead.Deleted = true
	s.Put(dead, nil, false, true)
	if counts[local.ID] != 0 {
		t.Errorf("after tombstone: count = %d, want 0", counts[local.ID])
	}
	before = fires
	ghost := mkItem("g", 1)
	ghost.Deleted = true
	s.Put(ghost, nil, false, false)
	if fires != before {
		t.Error("inserting a tombstone should not notify")
	}

	// Relay capacity 1: the second relay insert evicts the first (-1).
	r1, r2 := mkItem("r", 1), mkItem("r", 2)
	s.Put(r1, nil, true, false)
	s.Put(r2, nil, true, false)
	if counts[r1.ID] != 0 || counts[r2.ID] != 1 {
		t.Errorf("after eviction: counts = %d/%d, want 0/1", counts[r1.ID], counts[r2.ID])
	}

	// Removal fires -1.
	s.Remove(r2.ID)
	if counts[r2.ID] != 0 {
		t.Errorf("after remove: count = %d, want 0", counts[r2.ID])
	}

	// Restore replaces wholesale without notifying.
	snap, next := s.Snapshot()
	before = fires
	if err := s.Restore(snap, next); err != nil {
		t.Fatal(err)
	}
	if fires != before {
		t.Error("Restore should not notify")
	}

	// Invariant: every id's running sum matches live presence.
	for id, n := range counts {
		e := s.Get(id)
		live := e != nil && !e.Item.Deleted
		if (n == 1) != live || n < 0 || n > 1 {
			t.Errorf("id %v: sum %d, live %v", id, n, live)
		}
	}
}
