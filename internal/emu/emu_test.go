package emu

import (
	"strings"
	"testing"

	"replidtn/internal/trace"
)

// miniTrace generates a scaled-down paper trace for fast tests.
func miniTrace(t *testing.T) *trace.Trace {
	t.Helper()
	dn := trace.DefaultDieselNet()
	dn.Days = 5
	dn.FleetSize = 12
	dn.ActivePerDay = 8
	dn.EncountersPerDay = 150
	wl := trace.DefaultWorkload()
	wl.Users = 16
	wl.Messages = 40
	wl.InjectDays = 2
	tr, err := trace.Generate(dn, wl, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runPolicy(t *testing.T, tr *trace.Trace, name PolicyName, cfgMod func(*Config)) *Result {
	t.Helper()
	cfg := Config{Trace: tr, Policy: Factory(name, DefaultParams())}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunRequiresTrace(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing trace should fail")
	}
}

func TestBasicSubstrateDeliversSomething(t *testing.T) {
	tr := miniTrace(t)
	res := runPolicy(t, tr, PolicyBasic, nil)
	if res.Summary.Total() != 40 {
		t.Fatalf("tracked %d messages, want 40", res.Summary.Total())
	}
	if res.Summary.DeliveredCount() == 0 {
		t.Error("basic substrate should deliver at least some messages")
	}
	if res.Duplicates != 0 {
		t.Errorf("at-most-once violated: %d duplicates", res.Duplicates)
	}
	if res.Encounters != len(tr.Encounters) {
		t.Errorf("processed %d encounters, want %d", res.Encounters, len(tr.Encounters))
	}
}

func TestEveryPolicyRunsCleanly(t *testing.T) {
	tr := miniTrace(t)
	for _, name := range AllPolicies {
		name := name
		t.Run(string(name), func(t *testing.T) {
			res := runPolicy(t, tr, name, nil)
			if res.Duplicates != 0 {
				t.Errorf("%s: %d duplicate receipts", name, res.Duplicates)
			}
			if res.Summary.DeliveredCount() == 0 {
				t.Errorf("%s: delivered nothing", name)
			}
		})
	}
}

func TestEpidemicBeatsBasic(t *testing.T) {
	tr := miniTrace(t)
	basic := runPolicy(t, tr, PolicyBasic, nil)
	epi := runPolicy(t, tr, PolicyEpidemic, nil)
	if epi.Summary.DeliveredCount() < basic.Summary.DeliveredCount() {
		t.Errorf("epidemic delivered %d < basic %d",
			epi.Summary.DeliveredCount(), basic.Summary.DeliveredCount())
	}
	if epi.Summary.DeliveredCount() > 0 && basic.Summary.DeliveredCount() > 0 &&
		epi.Summary.MeanDelayHours() > basic.Summary.MeanDelayHours() {
		t.Errorf("epidemic mean delay %.1fh worse than basic %.1fh",
			epi.Summary.MeanDelayHours(), basic.Summary.MeanDelayHours())
	}
	if epi.ItemsTransferred <= basic.ItemsTransferred {
		t.Error("epidemic should move more traffic than basic")
	}
}

func TestMultiAddressFiltersImproveDelivery(t *testing.T) {
	tr := miniTrace(t)
	basic := runPolicy(t, tr, PolicyBasic, nil)
	selected := runPolicy(t, tr, PolicyBasic, func(c *Config) {
		c.ExtraBuses = SelectedExtraBuses(tr, 4)
	})
	if selected.Summary.DeliveredCount() < basic.Summary.DeliveredCount() {
		t.Errorf("selected-4 delivered %d < basic %d",
			selected.Summary.DeliveredCount(), basic.Summary.DeliveredCount())
	}
}

func TestBandwidthConstraintReducesTraffic(t *testing.T) {
	tr := miniTrace(t)
	free := runPolicy(t, tr, PolicyEpidemic, nil)
	tight := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.MaxMessagesPerEncounter = 1
	})
	if tight.ItemsTransferred > tr.ComputeStats().TotalEncounters {
		t.Errorf("budget violated: %d items over %d encounters",
			tight.ItemsTransferred, tr.ComputeStats().TotalEncounters)
	}
	if tight.ItemsTransferred >= free.ItemsTransferred {
		t.Error("constraint should reduce transfers")
	}
	if tight.Duplicates != 0 {
		t.Error("constraint must not break at-most-once")
	}
}

func TestStorageConstraintBoundsRelayCopies(t *testing.T) {
	tr := miniTrace(t)
	res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.RelayCapacity = 2
	})
	if res.Duplicates != 0 {
		t.Error("constraint must not break at-most-once")
	}
	if res.Summary.DeliveredCount() == 0 {
		t.Error("storage-constrained run should still deliver")
	}
	// Copies at end are bounded: sender + destination + at most 2 per other
	// node is the hard ceiling; in practice far fewer.
	free := runPolicy(t, tr, PolicyEpidemic, nil)
	if res.Summary.MeanCopiesAtEnd() > free.Summary.MeanCopiesAtEnd() {
		t.Errorf("storage constraint raised copy count: %.1f > %.1f",
			res.Summary.MeanCopiesAtEnd(), free.Summary.MeanCopiesAtEnd())
	}
}

func TestSprayStoresFewerEndCopiesThanEpidemic(t *testing.T) {
	tr := miniTrace(t)
	spray := runPolicy(t, tr, PolicySpray, nil)
	epi := runPolicy(t, tr, PolicyEpidemic, nil)
	if spray.Summary.MeanCopiesAtEnd() > epi.Summary.MeanCopiesAtEnd() {
		t.Errorf("spray end copies %.1f exceed epidemic %.1f",
			spray.Summary.MeanCopiesAtEnd(), epi.Summary.MeanCopiesAtEnd())
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := miniTrace(t)
	r1 := runPolicy(t, tr, PolicyMaxProp, nil)
	r2 := runPolicy(t, tr, PolicyMaxProp, nil)
	if r1.Summary.DeliveredCount() != r2.Summary.DeliveredCount() ||
		r1.ItemsTransferred != r2.ItemsTransferred {
		t.Error("same config must reproduce identical results")
	}
	d1, d2 := r1.Summary.Deliveries(), r2.Summary.Deliveries()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

func TestCopiesAccountingSane(t *testing.T) {
	tr := miniTrace(t)
	res := runPolicy(t, tr, PolicyBasic, nil)
	for _, d := range res.Summary.Deliveries() {
		if d.Delivered() && d.CopiesAtDelivery < 1 {
			t.Errorf("message %s delivered with %d copies", d.MsgID, d.CopiesAtDelivery)
		}
		if d.CopiesAtEnd < 1 {
			t.Errorf("message %s vanished entirely (%d copies)", d.MsgID, d.CopiesAtEnd)
		}
	}
	// Basic substrate stores about two copies per delivered message (sender
	// and receiver); same-bus cases can make it slightly less.
	if got := res.Summary.MeanCopiesAtEnd(); got > 2.5 {
		t.Errorf("basic substrate stores %.2f copies on average, want ≈2", got)
	}
}

func TestRandomExtraBuses(t *testing.T) {
	tr := miniTrace(t)
	m := RandomExtraBuses(tr, 3, 7)
	if len(m) != len(tr.Buses) {
		t.Fatalf("strategy covers %d buses, want %d", len(m), len(tr.Buses))
	}
	for bus, extras := range m {
		if len(extras) != 3 {
			t.Errorf("%s has %d extras, want 3", bus, len(extras))
		}
		for _, e := range extras {
			if e == bus {
				t.Errorf("%s chose itself", bus)
			}
		}
	}
	if RandomExtraBuses(tr, 0, 7) != nil {
		t.Error("k=0 should be nil")
	}
}

func TestSelectedExtraBusesPrefersFrequentPartners(t *testing.T) {
	tr := &trace.Trace{
		Days:  1,
		Buses: []string{"a", "b", "c"},
		Encounters: []trace.Encounter{
			{Time: 1, A: "a", B: "b"},
			{Time: 2, A: "a", B: "b"},
			{Time: 3, A: "a", B: "c"},
		},
		Roster:     [][]string{{"a", "b", "c"}},
		Assignment: []map[string]string{{}},
	}
	m := SelectedExtraBuses(tr, 1)
	if got := m["a"]; len(got) != 1 || got[0] != "b" {
		t.Errorf("a's top partner = %v, want [b]", got)
	}
	if SelectedExtraBuses(tr, 0) != nil {
		t.Error("k=0 should be nil")
	}
}

func TestMessageLifetimeBoundsDelivery(t *testing.T) {
	tr := miniTrace(t)
	free := runPolicy(t, tr, PolicyEpidemic, nil)
	bounded := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.MessageLifetime = 6 * 3600
	})
	if bounded.ItemsTransferred > free.ItemsTransferred {
		t.Error("bounded lifetime should not increase traffic")
	}
	// Every bounded delivery happened within the lifetime.
	for _, d := range bounded.Summary.Deliveries() {
		if d.Delivered() && d.Delay() >= 6*3600 {
			t.Errorf("message %s delivered after its lifetime (%ds)", d.MsgID, d.Delay())
		}
	}
	if bounded.Duplicates != 0 {
		t.Error("lifetime must not break at-most-once")
	}
}

func TestEventLog(t *testing.T) {
	tr := miniTrace(t)
	var log strings.Builder
	runPolicy(t, tr, PolicyEpidemic, func(c *Config) { c.EventLog = &log })
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	var injects, delivers, encounters int
	for _, line := range lines {
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			t.Fatalf("malformed event line %q", line)
		}
		switch fields[1] {
		case "inject":
			injects++
		case "deliver":
			delivers++
		case "encounter":
			encounters++
		default:
			t.Fatalf("unknown event %q", fields[1])
		}
	}
	if injects != len(tr.Messages) {
		t.Errorf("logged %d injects, want %d", injects, len(tr.Messages))
	}
	if delivers == 0 || encounters == 0 {
		t.Errorf("missing events: %d delivers, %d encounters", delivers, encounters)
	}
}

func TestTwoHopBaselineBetweenBasicAndEpidemic(t *testing.T) {
	tr := miniTrace(t)
	basic := runPolicy(t, tr, PolicyBasic, nil)
	two := runPolicy(t, tr, PolicyTwoHop, nil)
	epi := runPolicy(t, tr, PolicyEpidemic, nil)
	if two.Summary.DeliveredCount() < basic.Summary.DeliveredCount() {
		t.Errorf("two-hop delivered %d < basic %d",
			two.Summary.DeliveredCount(), basic.Summary.DeliveredCount())
	}
	if two.Summary.DeliveredCount() > epi.Summary.DeliveredCount() {
		t.Errorf("two-hop delivered %d > epidemic %d",
			two.Summary.DeliveredCount(), epi.Summary.DeliveredCount())
	}
	if two.ItemsTransferred >= epi.ItemsTransferred {
		t.Error("two-hop should move less traffic than epidemic")
	}
	if two.Duplicates != 0 {
		t.Error("two-hop broke at-most-once")
	}
}
