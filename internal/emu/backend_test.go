package emu

import (
	"strings"
	"testing"

	"replidtn/internal/fault"
)

// TestWALBackendDifferentialCrashRestart is the emulator-level differential
// for the WAL persistence backend: the same faulted schedule — dropped
// contacts, mid-sync cutoffs, and crash-restarts — run once over the default
// snapshot codec and once over per-node write-ahead logs must produce
// bit-identical results and event logs. The snapshot path serializes the
// dying node's durable state directly; the WAL path hard-crashes the node's
// filesystem (unsynced bytes lost) and recovers by segment + log replay, so
// identity here means the WAL made every mutation durable the moment it
// happened and replays it exactly.
//
// The differential covers the substrate and the policies whose durable state
// is entirely journaled (store entries, knowledge, identity). Policies that
// keep crash-volatile routing hints — PROPHET's and MaxProp's own policy
// state (persisted only at checkpoint boundaries) and spray-and-wait's
// in-place copy-allowance decrements on the sender's stored entries during
// HandleSyncRequest (the explicit volatile class in the WAL's durability
// contract) — are exercised by the invariants test below instead: a hard
// mid-run crash legitimately rolls those hints back further than the
// snapshot codec's crash-instant capture would, changing forwarding
// efficiency but never correctness.
func TestWALBackendDifferentialCrashRestart(t *testing.T) {
	tr := miniTrace(t)
	for _, name := range []PolicyName{PolicyBasic, PolicyEpidemic} {
		t.Run(string(name), func(t *testing.T) {
			var snapLog strings.Builder
			snap := runPolicy(t, tr, name, func(c *Config) {
				c.Faults = testFaults(7)
				c.EventLog = &snapLog
			})
			if snap.Crashes == 0 {
				t.Fatal("fault mix scheduled no crashes; the backends are not being compared")
			}
			for _, workers := range []int{0, 2, 8} {
				var walLog strings.Builder
				wal := runPolicy(t, tr, name, func(c *Config) {
					c.Faults = testFaults(7)
					c.DataBackend = "wal"
					c.Workers = workers
					c.EventLog = &walLog
				})
				assertIdenticalResults(t, workers, snap, wal)
				if snapLog.String() != walLog.String() {
					t.Errorf("workers=%d: wal-backend event log differs from snapshot backend\n%s",
						workers, firstLogDiff(snapLog.String(), walLog.String()))
				}
			}
		})
	}
}

// TestWALBackendInvariants runs the crash mix over the WAL backend for every
// evaluated policy and checks the substrate guarantees the backend must
// carry: crashes actually happened, at-most-once held (zero duplicates), and
// the network still delivered.
func TestWALBackendInvariants(t *testing.T) {
	tr := miniTrace(t)
	for _, name := range AllPolicies {
		t.Run(string(name), func(t *testing.T) {
			res := runPolicy(t, tr, name, func(c *Config) {
				c.Faults = fault.Config{Seed: 11, Crash: 0.05}
				c.DataBackend = "wal"
			})
			if res.Crashes == 0 {
				t.Fatal("no crashes scheduled")
			}
			if res.Duplicates != 0 {
				t.Errorf("WAL recovery broke at-most-once: %d duplicates", res.Duplicates)
			}
			if res.Summary.DeliveredCount() == 0 {
				t.Error("WAL-backed crash-restarts killed all delivery")
			}
		})
	}
}

// TestUnknownDataBackendRejected: a typo'd backend name fails the run loudly
// instead of silently running without persistence.
func TestUnknownDataBackendRejected(t *testing.T) {
	tr := miniTrace(t)
	_, err := Run(Config{Trace: tr, DataBackend: "etcd"})
	if err == nil {
		t.Fatal("unknown data backend should fail Run")
	}
}

// TestWALBackendNoFaults: with no faults scheduled the WAL backend is pure
// overhead — journaling must not perturb the run at all.
func TestWALBackendNoFaults(t *testing.T) {
	tr := miniTrace(t)
	run := func(backend string) (*Result, string) {
		var log strings.Builder
		res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
			c.DataBackend = backend
			c.EventLog = &log
		})
		return res, log.String()
	}
	snap, snapLog := run("")
	wal, walLog := run("wal")
	assertIdenticalResults(t, 0, snap, wal)
	if snapLog != walLog {
		t.Errorf("journaling perturbed a fault-free run\n%s", firstLogDiff(snapLog, walLog))
	}
}
