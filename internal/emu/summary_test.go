package emu

import (
	"fmt"
	"strings"
	"testing"

	"replidtn/internal/fault"
)

// TestDifferentialSyncSummaries is the correctness gate for the compact
// knowledge summary protocol: with summaries enabled, every scenario, policy,
// and fault mode must reproduce the plain-protocol run exactly — the full
// delivery list, every original result counter, and the exact event log text.
// Summaries may only change what the knowledge frames cost, never what gets
// delivered, when, or how often. The sharded engine with summaries on must in
// turn match the sequential engine with summaries on.
func TestDifferentialSyncSummaries(t *testing.T) {
	traces := scenarioTraces(t)
	faultModes := []struct {
		name string
		cfg  fault.Config
	}{
		{"clean", fault.Config{}},
		{"faults", fault.Config{Seed: 9, Drop: 0.1, Cutoff: 0.15, CutoffItems: 2, Crash: 0.02}},
	}
	for _, scenario := range []string{"dieselnet", "rwp", "community", "corridor"} {
		tr := traces[scenario]
		for _, name := range AllPolicies {
			for _, fm := range faultModes {
				t.Run(fmt.Sprintf("%s/%s/%s", scenario, name, fm.name), func(t *testing.T) {
					var plainLog, sumLog, parLog strings.Builder
					plain := runPolicy(t, tr, name, func(c *Config) {
						c.Faults = fm.cfg
						c.EventLog = &plainLog
					})
					sum := runPolicy(t, tr, name, func(c *Config) {
						c.Faults = fm.cfg
						c.SyncSummaries = true
						c.EventLog = &sumLog
					})
					assertSameDeliveryBehavior(t, plain, sum)
					if plainLog.String() != sumLog.String() {
						t.Errorf("summaries changed the event log:\n%s",
							firstLogDiff(plainLog.String(), sumLog.String()))
					}
					// The sharded engine must agree with the sequential one on
					// everything, summary accounting included.
					par := runPolicy(t, tr, name, func(c *Config) {
						c.Faults = fm.cfg
						c.SyncSummaries = true
						c.Workers = 4
						c.EpochEvents = 64
						c.EventLog = &parLog
					})
					assertIdenticalResults(t, 4, sum, par)
					if sumLog.String() != parLog.String() {
						t.Errorf("sharded summary run's event log differs:\n%s",
							firstLogDiff(sumLog.String(), parLog.String()))
					}
				})
			}
		}
	}
}

// assertSameDeliveryBehavior compares a plain run against a summaries-enabled
// run: everything except the knowledge-frame accounting must be identical.
func assertSameDeliveryBehavior(t *testing.T, plain, sum *Result) {
	t.Helper()
	if sum.Duplicates != 0 {
		t.Errorf("summaries broke at-most-once: %d duplicates", sum.Duplicates)
	}
	cp, cs := counters(plain), counters(sum)
	// Indices 11 and 12 are KnowledgeBytes and SummaryFallbacks — the only
	// fields the summary protocol is allowed to change.
	cp[11], cs[11] = 0, 0
	cp[12], cs[12] = 0, 0
	if cp != cs {
		t.Errorf("summaries changed delivery results:\nplain     %+v\nsummaries %+v", cp, cs)
	}
	dp, ds := plain.Summary.Deliveries(), sum.Summary.Deliveries()
	if len(dp) != len(ds) {
		t.Fatalf("%d deliveries with summaries vs %d without", len(ds), len(dp))
	}
	for i := range dp {
		if dp[i] != ds[i] {
			t.Errorf("delivery %d differs: plain=%+v summaries=%+v", i, dp[i], ds[i])
		}
	}
}

// TestSyncSummariesShrinkKnowledgeTraffic is the perf smoke: on a workload
// with recurring contacts, delta knowledge should ship far fewer knowledge
// bytes than re-sending exact knowledge every sync.
func TestSyncSummariesShrinkKnowledgeTraffic(t *testing.T) {
	tr := miniTrace(t)
	plain := runPolicy(t, tr, PolicyEpidemic, nil)
	sum := runPolicy(t, tr, PolicyEpidemic, func(c *Config) { c.SyncSummaries = true })
	if plain.KnowledgeBytes == 0 {
		t.Fatal("plain run shipped no knowledge bytes")
	}
	if sum.KnowledgeBytes >= plain.KnowledgeBytes {
		t.Errorf("summaries did not shrink knowledge traffic: %d >= %d bytes",
			sum.KnowledgeBytes, plain.KnowledgeBytes)
	}
	t.Logf("knowledge bytes: plain=%d summaries=%d (%.1fx), fallbacks=%d",
		plain.KnowledgeBytes, sum.KnowledgeBytes,
		float64(plain.KnowledgeBytes)/float64(sum.KnowledgeBytes), sum.SummaryFallbacks)
}
