package emu

import (
	"strings"
	"testing"

	"replidtn/internal/fault"
)

// testFaults is a fault mix exercising every dimension at once: dropped
// contacts, probabilistic mid-sync cutoffs, and crash-restarts.
func testFaults(seed int64) fault.Config {
	return fault.Config{Seed: seed, Drop: 0.15, Cutoff: 0.2, CutoffItems: 3, Crash: 0.02}
}

// TestFaultsDisabledIsByteIdentical: the zero fault config must leave the run
// indistinguishable from one that never heard of faults — all fault counters
// zero and no fault lines in the event log. (The fault-free code path is the
// exact pre-fault-layer code, so this also pins the byte-identity the
// differential engine tests rely on.)
func TestFaultsDisabledIsByteIdentical(t *testing.T) {
	tr := miniTrace(t)
	var log strings.Builder
	res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Faults = fault.Config{}
		c.EventLog = &log
	})
	if res.EncountersDropped != 0 || res.SyncsAborted != 0 || res.ItemsWasted != 0 ||
		res.BytesWasted != 0 || res.Crashes != 0 {
		t.Errorf("fault counters nonzero without faults: %+v", counters(res))
	}
	for _, kind := range []string{",drop,", ",abort,", ",crash,"} {
		if strings.Contains(log.String(), kind) {
			t.Errorf("fault-free log contains %q lines", kind)
		}
	}
}

// TestDifferentialFaultedEngines extends the determinism gate to faulted
// runs: for every policy, the parallel engine must reproduce the sequential
// engine bit for bit even when the schedule contains dropped encounters,
// aborted transfers, and crash-restart events. `make check` runs this under
// -race, auditing that crash events never race the crashing bus's encounters.
func TestDifferentialFaultedEngines(t *testing.T) {
	tr := miniTrace(t)
	for _, name := range AllPolicies {
		t.Run(string(name), func(t *testing.T) {
			var seqLog strings.Builder
			seq := runPolicy(t, tr, name, func(c *Config) {
				c.Faults = testFaults(7)
				c.EventLog = &seqLog
			})
			if seq.EncountersDropped == 0 || seq.SyncsAborted == 0 || seq.Crashes == 0 {
				t.Fatalf("fault mix too tame to test anything: %+v", counters(seq))
			}
			for _, workers := range []int{1, 2, 8} {
				var parLog strings.Builder
				par := runPolicy(t, tr, name, func(c *Config) {
					c.Faults = testFaults(7)
					c.Workers = workers
					c.EventLog = &parLog
				})
				assertIdenticalResults(t, workers, seq, par)
				if seqLog.String() != parLog.String() {
					t.Errorf("workers=%d: event log differs from sequential engine\n%s",
						workers, firstLogDiff(seqLog.String(), parLog.String()))
				}
			}
		})
	}
}

// TestDifferentialFaultSeed: a fixed fault seed makes faulted runs exactly
// repeatable, and changing the seed changes the fault schedule.
func TestDifferentialFaultSeed(t *testing.T) {
	tr := miniTrace(t)
	run := func(seed int64, workers int) (*Result, string) {
		var log strings.Builder
		res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
			c.Faults = testFaults(seed)
			c.Workers = workers
			c.EventLog = &log
		})
		return res, log.String()
	}
	res1, log1 := run(42, 0)
	res2, log2 := run(42, 4)
	assertIdenticalResults(t, 4, res1, res2)
	if log1 != log2 {
		t.Errorf("same fault seed, different logs:\n%s", firstLogDiff(log1, log2))
	}
	res3, log3 := run(43, 0)
	if counters(res1) == counters(res3) && log1 == log3 {
		t.Error("different fault seeds produced identical runs")
	}
}

// TestDroppedEncountersAccounting: a dropped contact is counted but performs
// no synchronization, so Syncs tracks only the encounters that happened.
func TestDroppedEncountersAccounting(t *testing.T) {
	tr := miniTrace(t)
	res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Faults = fault.Config{Seed: 1, Drop: 0.3}
	})
	if res.Encounters != len(tr.Encounters) {
		t.Errorf("Encounters = %d, want %d (drops included)", res.Encounters, len(tr.Encounters))
	}
	if res.EncountersDropped == 0 {
		t.Fatal("drop probability 0.3 dropped nothing")
	}
	if want := 2 * (res.Encounters - res.EncountersDropped); res.Syncs != want {
		t.Errorf("Syncs = %d, want %d (two per surviving encounter)", res.Syncs, want)
	}
	clean := runPolicy(t, tr, PolicyEpidemic, nil)
	if res.Summary.DeliveredCount() > clean.Summary.DeliveredCount() {
		t.Errorf("dropping encounters improved delivery: %d > %d",
			res.Summary.DeliveredCount(), clean.Summary.DeliveredCount())
	}
}

// TestCutoffFaultsStayConsistent: mid-sync cutoffs waste transfer volume but
// never corrupt the substrate — at-most-once holds, the waste is accounted,
// and wasted items are a subset of the transferred total.
func TestCutoffFaultsStayConsistent(t *testing.T) {
	tr := miniTrace(t)
	res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Faults = fault.Config{Seed: 5, Cutoff: 0.4, CutoffItems: 2}
	})
	if res.SyncsAborted == 0 {
		t.Fatal("cutoff probability 0.4 aborted nothing")
	}
	if res.Duplicates != 0 {
		t.Errorf("cutoffs broke at-most-once: %d duplicates", res.Duplicates)
	}
	if res.ItemsWasted > res.ItemsTransferred || res.BytesWasted > res.BytesTransferred {
		t.Errorf("waste exceeds transfer: %d/%d items, %d/%d bytes",
			res.ItemsWasted, res.ItemsTransferred, res.BytesWasted, res.BytesTransferred)
	}
	if res.ItemsWasted == 0 && res.BytesWasted != 0 {
		t.Errorf("bytes wasted (%d) without items wasted", res.BytesWasted)
	}
}

// TestCrashRestartPreservesOutcome is the crash-restart integration check:
// with a stateless routing policy, every node's durable state round-trips the
// persist codec on a crash, so a crash-only faulted run must reproduce the
// fault-free run's deliveries and transfer counters exactly — no lost
// messages, no duplicate deliveries, no perturbed copy accounting.
func TestCrashRestartPreservesOutcome(t *testing.T) {
	tr := miniTrace(t)
	clean := runPolicy(t, tr, PolicyEpidemic, nil)
	crashed := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Faults = fault.Config{Seed: 11, Crash: 0.05}
	})
	if crashed.Crashes == 0 {
		t.Fatal("crash probability 0.05 scheduled no crashes")
	}
	if crashed.Duplicates != 0 {
		t.Errorf("restarts broke at-most-once: %d duplicates", crashed.Duplicates)
	}
	// Everything except the Crashes counter itself must match the clean run.
	cc, kc := counters(clean), counters(crashed)
	kc[10] = 0
	if cc != kc {
		t.Errorf("crash-only run diverged from fault-free run:\nclean   %+v\ncrashed %+v", cc, kc)
	}
	ds, dc := clean.Summary.Deliveries(), crashed.Summary.Deliveries()
	for i := range ds {
		if ds[i] != dc[i] {
			t.Errorf("delivery %d diverged: clean=%+v crashed=%+v", i, ds[i], dc[i])
		}
	}
}

// TestCrashRestartPersistentPolicy runs the crash mix under every policy —
// including the persistent ones whose state must survive the codec round-trip
// — and checks the substrate invariants hold for each.
func TestCrashRestartPersistentPolicy(t *testing.T) {
	tr := miniTrace(t)
	for _, name := range AllPolicies {
		t.Run(string(name), func(t *testing.T) {
			res := runPolicy(t, tr, name, func(c *Config) {
				c.Faults = fault.Config{Seed: 11, Crash: 0.05}
			})
			if res.Crashes == 0 {
				t.Fatal("no crashes scheduled")
			}
			if res.Duplicates != 0 {
				t.Errorf("%d duplicates after restarts", res.Duplicates)
			}
			if res.Summary.DeliveredCount() == 0 {
				t.Error("crash-restarts killed all delivery")
			}
		})
	}
}

// TestFaultLogLinesWellFormed: every fault event line keeps the log's
// five-field CSV shape, so downstream consumers need no special cases.
func TestFaultLogLinesWellFormed(t *testing.T) {
	tr := miniTrace(t)
	var log strings.Builder
	res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Faults = testFaults(7)
		c.EventLog = &log
	})
	want := map[string]int{"drop": res.EncountersDropped, "crash": res.Crashes}
	got := map[string]int{}
	aborts := 0
	for _, line := range strings.Split(strings.TrimSpace(log.String()), "\n") {
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			t.Fatalf("log line has %d fields, want 5: %q", len(fields), line)
		}
		switch fields[1] {
		case "drop", "crash":
			got[fields[1]]++
		case "abort":
			aborts++
		}
	}
	for kind, n := range want {
		if got[kind] != n {
			t.Errorf("%d %q lines, want %d", got[kind], kind, n)
		}
	}
	if res.SyncsAborted > 0 && aborts == 0 {
		t.Error("aborted syncs produced no abort lines")
	}
	// Abort lines are per-encounter, aborted syncs per-leg.
	if aborts > res.SyncsAborted {
		t.Errorf("%d abort lines exceed %d aborted syncs", aborts, res.SyncsAborted)
	}
}
