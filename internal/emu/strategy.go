package emu

import (
	"math/rand"
	"sort"

	"replidtn/internal/trace"
)

// The §VI.B multi-address filter experiments populate each host's filter with
// the addresses handled by k other hosts. Two strategies are compared:
// random (k arbitrary other buses) and selected (the k buses this bus
// encounters most often in the trace).

// RandomExtraBuses assigns each bus k other buses uniformly at random,
// deterministically from seed.
func RandomExtraBuses(tr *trace.Trace, k int, seed int64) map[string][]string {
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string][]string, len(tr.Buses))
	for _, bus := range tr.Buses {
		others := make([]string, 0, len(tr.Buses)-1)
		for _, b := range tr.Buses {
			if b != bus {
				others = append(others, b)
			}
		}
		rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
		n := k
		if n > len(others) {
			n = len(others)
		}
		chosen := append([]string(nil), others[:n]...)
		sort.Strings(chosen)
		out[bus] = chosen
	}
	return out
}

// SelectedExtraBuses assigns each bus the k other buses it encounters most
// often across the whole trace (the paper's "selected" strategy), breaking
// count ties by bus ID for determinism.
func SelectedExtraBuses(tr *trace.Trace, k int) map[string][]string {
	if k <= 0 {
		return nil
	}
	counts := make(map[string]map[string]int, len(tr.Buses))
	bump := func(a, b string) {
		m := counts[a]
		if m == nil {
			m = make(map[string]int)
			counts[a] = m
		}
		m[b]++
	}
	for _, e := range tr.Encounters {
		bump(e.A, e.B)
		bump(e.B, e.A)
	}
	out := make(map[string][]string, len(tr.Buses))
	for _, bus := range tr.Buses {
		partners := make([]string, 0, len(counts[bus]))
		for p := range counts[bus] {
			partners = append(partners, p)
		}
		sort.Slice(partners, func(i, j int) bool {
			ci, cj := counts[bus][partners[i]], counts[bus][partners[j]]
			if ci != cj {
				return ci > cj
			}
			return partners[i] < partners[j]
		})
		n := k
		if n > len(partners) {
			n = len(partners)
		}
		chosen := append([]string(nil), partners[:n]...)
		sort.Strings(chosen)
		out[bus] = chosen
	}
	return out
}
