package emu

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/trace"
)

// The parallel engine exploits the trace's natural concurrency with a
// region/epoch-sharded schedule:
//
//   - The time-ordered schedule is cut into epochs of contiguous events
//     (Config.EpochEvents, default 4096).
//   - Within an epoch, events partition into region shards: the connected
//     components of the conflict graph, where two events conflict iff they
//     touch a common bus (an encounter touches both endpoints, an injection
//     its source bus, a crash-restart its own bus). Components are computed
//     with an epoch-stamped union-find, O(events · α) per epoch with no
//     per-epoch allocation.
//   - Shards execute concurrently on a worker pool. Each shard replays its
//     own events sequentially in schedule order; shards share no bus — even
//     transitively — so no replica, policy, clock, or recorder is shared,
//     and every endpoint observes exactly the sequential engine's event
//     sequence. Epochs are separated by a barrier, so cross-epoch conflicts
//     are ordered too. By induction, replica contents, version vectors, and
//     policy state are bit-identical to the sequential engine's.
//
// Observable effects are captured in per-event recorders during execution
// and folded into run-global state in two stages, keeping per-item and
// per-message state out of the sequential tail:
//
//   - Fold (parallel): per-event records — copy deltas, message
//     registrations, first-delivery candidates — are routed to fold shards
//     by item ID, and each fold worker replays its items' records in
//     schedule order, maintaining the live-copy table, the item→message
//     index, and per-message delivery state. Items are independent: every
//     record for one item lands in exactly one fold shard, so replaying a
//     shard's records in schedule order yields exactly the sequential
//     outcome, including copies-at-delivery counts. Delivery outcomes are
//     written into per-event slots for the merge to log.
//   - Merge (sequential): commitShard walks the epoch's events in schedule
//     order touching only aggregate result counters and the event log —
//     no per-node, per-item, or per-message state — so the serial section
//     stays O(events) with constant-size state regardless of fleet size.
//
// A delivery always resolves after the injection that created the message:
// the message travelled over a chain of conflicting events whose schedule
// indexes strictly increase, and fold records preserve schedule order.

// defaultEpochEvents is the epoch length when Config.EpochEvents is unset:
// large enough to expose wide components to the pool, small enough that
// per-epoch recorder state stays cache-resident.
const defaultEpochEvents = 4096

// delivery is one resolved first-delivery outcome, produced by the fold
// phase for the merge to log. Slots for repeat receipts stay ok=false.
type delivery struct {
	traceID string
	delay   int64
	ok      bool
}

// runSharded executes the schedule epoch by epoch: partition, execute
// shards concurrently, fold per-item effects concurrently, then merge the
// epoch sequentially in schedule order.
func (r *runner) runSharded(workers int) error {
	se := newShardEngine(r, workers)
	r.engine = se
	em := r.cfg.Engine
	epochLen := r.cfg.EpochEvents
	if epochLen <= 0 {
		epochLen = defaultEpochEvents
	}
	recs := make([]eventRec, min(epochLen, len(r.events)))
	for lo := 0; lo < len(r.events); lo += epochLen {
		hi := min(lo+epochLen, len(r.events))
		epoch := recs[:hi-lo]
		for k := range epoch {
			epoch[k].reset()
		}
		shards := se.partition(lo, hi)

		var t0 time.Time
		if em != nil {
			//lint:allow determinism -- wall clock feeds only the observability histograms below, never the Result or the event log
			t0 = time.Now()
			em.Epochs.Inc()
			em.Shards.Add(int64(len(shards)))
			em.EpochShards.Observe(int64(len(shards)))
			for _, sh := range shards {
				em.ShardEvents.Observe(int64(len(sh)))
			}
		}
		runIndexed(workers, len(shards), func(s int) {
			for _, i := range shards[s] {
				r.exec(&r.events[i], &epoch[i-int32(lo)])
			}
		})
		if em != nil {
			//lint:allow determinism -- wall clock feeds only observability histograms
			now := time.Now()
			em.ExecMicros.Observe(now.Sub(t0).Microseconds())
			t0 = now
		}

		errIdx := se.route(lo, epoch)
		runIndexed(workers, len(se.folds), func(f int) { se.folds[f].run() })
		if em != nil {
			//lint:allow determinism -- wall clock feeds only observability histograms
			now := time.Now()
			em.FoldMicros.Observe(now.Sub(t0).Microseconds())
			t0 = now
		}

		limit := len(epoch)
		if errIdx >= 0 {
			limit = errIdx
		}
		for k := 0; k < limit; k++ {
			r.commitShard(&r.events[lo+k], &epoch[k])
		}
		if em != nil {
			//lint:allow determinism -- wall clock feeds only observability histograms
			em.MergeMicros.Observe(time.Since(t0).Microseconds())
		}
		if errIdx >= 0 {
			return epoch[errIdx].err
		}
	}
	return nil
}

// shardEngine holds the sharded engine's scheduling and fold state. The
// union-find and shard-index arrays are epoch-stamped: reusing them across
// epochs costs one generation bump instead of a clear.
type shardEngine struct {
	r *runner
	// busA/busB are each event's touched bus indexes (busB == busA for
	// single-bus events), precomputed once.
	busA, busB []int32
	// parent/ufStamp implement the stamped union-find over bus indexes.
	parent  []int32
	ufStamp []int64
	// rootShard/rootStamp map a component root to its shard slot.
	rootShard []int32
	rootStamp []int64
	epoch     int64
	shards    [][]int32
	folds     []foldShard
}

func newShardEngine(r *runner, workers int) *shardEngine {
	buses := make(map[string]int32, len(r.tr.Buses))
	for i, b := range r.tr.Buses {
		buses[b] = int32(i)
	}
	se := &shardEngine{
		r:         r,
		busA:      make([]int32, len(r.events)),
		busB:      make([]int32, len(r.events)),
		parent:    make([]int32, len(r.tr.Buses)),
		ufStamp:   make([]int64, len(r.tr.Buses)),
		rootShard: make([]int32, len(r.tr.Buses)),
		rootStamp: make([]int64, len(r.tr.Buses)),
	}
	for i := range r.events {
		ev := &r.events[i]
		switch ev.kind {
		case evInject:
			m := r.tr.Messages[ev.index]
			a := buses[r.tr.Assignment[trace.Day(m.Time)][m.From]]
			se.busA[i], se.busB[i] = a, a
		case evEncounter:
			e := r.tr.Encounters[ev.index]
			se.busA[i], se.busB[i] = buses[e.A], buses[e.B]
		case evCrash:
			a := buses[r.crashes[ev.index].bus]
			se.busA[i], se.busB[i] = a, a
		}
	}
	if workers < 1 {
		workers = 1
	}
	se.folds = make([]foldShard, workers)
	for f := range se.folds {
		se.folds[f].copies = make(map[item.ID]int)
		se.folds[f].byItem = make(map[item.ID]*msgState)
	}
	return se
}

// partition splits epoch [lo, hi) into region shards: one shard per
// connected component of the epoch's conflict graph, each holding its event
// indexes in schedule order.
func (se *shardEngine) partition(lo, hi int) [][]int32 {
	se.epoch++
	for i := lo; i < hi; i++ {
		se.union(se.busA[i], se.busB[i])
	}
	se.shards = se.shards[:0]
	for i := lo; i < hi; i++ {
		root := se.find(se.busA[i])
		if se.rootStamp[root] != se.epoch {
			se.rootStamp[root] = se.epoch
			se.rootShard[root] = int32(len(se.shards))
			se.shards = append(se.shards, nil)
		}
		s := se.rootShard[root]
		se.shards[s] = append(se.shards[s], int32(i))
	}
	return se.shards
}

// find resolves a bus's component root with path halving. A stale stamp
// means the bus has not been touched this epoch: it becomes its own root.
func (se *shardEngine) find(x int32) int32 {
	if se.ufStamp[x] != se.epoch {
		se.ufStamp[x] = se.epoch
		se.parent[x] = x
		return x
	}
	for se.parent[x] != x {
		se.parent[x] = se.parent[se.parent[x]]
		x = se.parent[x]
	}
	return x
}

func (se *shardEngine) union(a, b int32) {
	ra, rb := se.find(a), se.find(b)
	if ra != rb {
		se.parent[ra] = rb
	}
}

// foldKind tags one fold record. Records are routed in schedule order with
// an event's deltas before its registration or deliveries, mirroring the
// sequential commit's fold-deltas-then-resolve order.
const (
	foldDelta = iota
	foldRegister
	foldDeliver
)

// foldRec is one per-item effect awaiting its fold shard.
type foldRec struct {
	kind  int8
	self  bool      // foldRegister: message addressed to its own bus
	delta int32     // foldDelta
	time  int64     // event time
	id    item.ID   // foldDelta, foldDeliver
	st    *msgState // foldRegister
	slot  *delivery // foldDeliver: where to publish the outcome
}

// foldShard owns the per-item state for the items hashed to it: the
// live-copy counts and the item→message index. Shards are disjoint by
// construction, so fold workers run without synchronization.
type foldShard struct {
	recs   []foldRec
	copies map[item.ID]int
	byItem map[item.ID]*msgState
}

// route distributes one epoch's per-item records to the fold shards,
// walking events in schedule order so every shard's record list is
// schedule-ordered for the items it owns. It returns the index of the
// first errored event (records from it and everything after are withheld,
// exactly like the sequential engine, which stops at the first error), or
// -1.
func (se *shardEngine) route(lo int, epoch []eventRec) int {
	for k := range epoch {
		rec := &epoch[k]
		if rec.err != nil {
			return k
		}
		ev := &se.r.events[lo+k]
		for _, d := range rec.deltas {
			f := se.fold(d.id)
			f.recs = append(f.recs, foldRec{kind: foldDelta, id: d.id, delta: int32(d.delta)})
		}
		switch ev.kind {
		case evInject:
			f := se.fold(rec.st.itemID)
			f.recs = append(f.recs, foldRec{
				kind: foldRegister, time: ev.time, st: rec.st, self: rec.from == rec.to,
			})
		case evEncounter:
			if cap(rec.resolved) < len(rec.deliveries) {
				rec.resolved = make([]delivery, len(rec.deliveries))
			}
			rec.resolved = rec.resolved[:len(rec.deliveries)]
			for di, id := range rec.deliveries {
				rec.resolved[di] = delivery{}
				f := se.fold(id)
				f.recs = append(f.recs, foldRec{
					kind: foldDeliver, time: ev.time, id: id, slot: &rec.resolved[di],
				})
			}
		}
	}
	return -1
}

// fold picks the fold shard owning an item.
func (se *shardEngine) fold(id item.ID) *foldShard {
	h := fnv.New64a()
	h.Write([]byte(id.Creator))
	var num [8]byte
	for b := 0; b < 8; b++ {
		num[b] = byte(id.Num >> (8 * b))
	}
	h.Write(num[:])
	return &se.folds[h.Sum64()%uint64(len(se.folds))]
}

// run replays one fold shard's records in schedule order. Writes touch only
// this shard's maps and the message states and delivery slots of items it
// owns, so shards never contend.
func (f *foldShard) run() {
	for i := range f.recs {
		fr := &f.recs[i]
		switch fr.kind {
		case foldDelta:
			if n := f.copies[fr.id] + int(fr.delta); n == 0 {
				delete(f.copies, fr.id)
			} else {
				f.copies[fr.id] = n
			}
		case foldRegister:
			st := fr.st
			f.byItem[st.itemID] = st
			// A self-addressed message was delivered during Send: an
			// immediate single-copy delivery, not a deliver event.
			if fr.self && st.deliveredAt < 0 {
				st.deliveredAt = fr.time
				st.copiesAtDel = 1
			}
		case foldDeliver:
			st := f.byItem[fr.id]
			if st == nil || st.deliveredAt >= 0 {
				continue // repeat receipt: the slot stays unresolved
			}
			st.deliveredAt = fr.time
			st.copiesAtDel = f.copies[fr.id]
			*fr.slot = delivery{traceID: st.traceID, delay: fr.time - st.sentAt, ok: true}
		}
	}
	f.recs = f.recs[:0]
}

// copiesAt reads the end-of-run live-copy count for an item from whichever
// engine maintained it.
func (r *runner) copiesAt(id item.ID) int {
	if r.engine != nil {
		return r.engine.fold(id).copies[id]
	}
	return r.copies[id]
}

// commitShard folds one executed, fold-resolved event into the run result.
// It is the sharded engine's sequential tail, and deliberately touches only
// aggregate counters and the event log: everything per-item or per-message
// was resolved by the fold workers, so the cost per event here is constant
// no matter how large the fleet or the workload.
//
//dtn:hotpath
func (r *runner) commitShard(ev *event, rec *eventRec) {
	switch ev.kind {
	case evInject:
		if r.log != nil {
			logInject(r.log, ev.time, rec.st.traceID, rec.from, rec.to)
		}
	case evEncounter:
		r.res.Encounters++
		if rec.dropped {
			r.res.EncountersDropped++
			if r.log != nil {
				e := r.tr.Encounters[ev.index]
				logDrop(r.log, ev.time, e.A, e.B)
			}
			break
		}
		r.res.Syncs += 2
		r.res.ItemsTransferred += rec.moved
		r.res.BytesTransferred += rec.bytes
		r.res.KnowledgeBytes += rec.kbytes
		r.res.SummaryFallbacks += rec.fallbacks
		if rec.aborted > 0 {
			r.res.SyncsAborted += rec.aborted
			r.res.ItemsWasted += rec.wastedItems
			r.res.BytesWasted += rec.wastedBytes
			if r.log != nil {
				e := r.tr.Encounters[ev.index]
				logAbort(r.log, ev.time, e.A, e.B, rec.wastedItems)
			}
		}
		if r.log != nil && rec.moved > 0 {
			e := r.tr.Encounters[ev.index]
			logEncounter(r.log, ev.time, e.A, e.B, rec.moved)
		}
		for i := range rec.resolved {
			d := &rec.resolved[i]
			if d.ok && r.log != nil {
				logDeliver(r.log, ev.time, d.traceID, d.delay)
			}
		}
	case evCrash:
		r.res.Crashes++
		if r.log != nil {
			logCrash(r.log, ev.time, r.crashes[ev.index].bus)
		}
	}
}

// runIndexed runs f(0..n-1) on up to `workers` goroutines pulling indexes
// from a shared counter. workers <= 1 degrades to an inline loop.
func runIndexed(workers, n int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
