package emu

import (
	"sync"

	"replidtn/internal/trace"
)

// The parallel engine exploits the trace's natural concurrency: most
// encounters at nearby times touch disjoint bus pairs, so they can execute
// simultaneously without any node observing a different event order than the
// sequential engine's.
//
// Scheduling is greedy list scheduling over the conflict graph. Walking the
// time-ordered schedule, every event is placed into the earliest round after
// the rounds of all earlier conflicting events — two events conflict iff
// they touch a common bus (an encounter touches both endpoints, an injection
// its source bus). Rounds execute under a barrier, in order, so:
//
//   - Within a round, events are pairwise conflict-free: no replica, policy,
//     clock, or recorder is shared, and workers may run them in any order.
//   - Across rounds, any two conflicting events execute in schedule order,
//     so every endpoint observes exactly the sequential engine's event
//     sequence. An event's outcome depends only on its endpoints' states,
//     which by induction equal the sequential engine's — replica contents,
//     version vectors, and policy state are bit-identical.
//
// Effects that are global rather than per-endpoint (copy accounting,
// delivery states, result counters, the event log) are captured in
// per-event recorders during execution and committed by the coordinator in
// schedule order: after round r completes, every event scheduled in rounds
// <= r has executed, and the commit frontier advances through them by event
// index. A delivery always commits after the injection that created the
// message, because the message travelled over a chain of conflicting events
// whose rounds — and schedule indexes — strictly increase.

// runParallel executes the schedule on a pool of workers over conflict-free
// rounds, committing in schedule order.
func (r *runner) runParallel(workers int) error {
	rounds, eventRound := buildRounds(r.tr, r.events, r.crashes)
	maxWidth := 0
	for _, round := range rounds {
		if len(round) > maxWidth {
			maxWidth = len(round)
		}
	}
	if workers > maxWidth {
		workers = maxWidth
	}

	recs := make([]eventRec, len(r.events))
	var wg sync.WaitGroup
	var jobs chan int
	if workers > 1 {
		// The buffer covers the widest round, so dispatching never blocks on
		// a busy pool.
		jobs = make(chan int, maxWidth)
		defer close(jobs)
		for w := 0; w < workers; w++ {
			go func() {
				for i := range jobs {
					r.exec(&r.events[i], &recs[i])
					wg.Done()
				}
			}()
		}
	}

	frontier := 0
	for ri, round := range rounds {
		if workers <= 1 || len(round) == 1 {
			// A single-event round (or a one-worker pool) runs inline:
			// dispatch overhead would dwarf the work.
			for _, i := range round {
				r.exec(&r.events[i], &recs[i])
			}
		} else {
			wg.Add(len(round))
			for _, i := range round {
				jobs <- i
			}
			wg.Wait()
		}
		// Commit every event whose round has completed, in schedule order.
		for frontier < len(r.events) && eventRound[frontier] <= ri {
			if err := r.commit(&r.events[frontier], &recs[frontier]); err != nil {
				return err
			}
			frontier++
		}
	}
	return nil
}

// buildRounds assigns every event the earliest round compatible with its
// conflicts: one more than the latest round of any earlier event touching
// one of its buses. It returns the rounds (event indexes, in schedule order)
// and each event's round number.
func buildRounds(tr *trace.Trace, events []event, crashes []crashEvent) (rounds [][]int, eventRound []int) {
	eventRound = make([]int, len(events))
	// next maps a bus to the earliest round its next event may occupy.
	next := make(map[string]int, len(tr.Buses))
	for i := range events {
		ev := &events[i]
		var a, b string
		switch ev.kind {
		case evInject:
			m := tr.Messages[ev.index]
			a = tr.Assignment[trace.Day(m.Time)][m.From]
			b = a
		case evEncounter:
			e := tr.Encounters[ev.index]
			a, b = e.A, e.B
		case evCrash:
			// A crash-restart touches exactly its own bus: it must serialize
			// after the encounter that triggered it and before the bus's next
			// event, both of which conflict with it here.
			a = crashes[ev.index].bus
			b = a
		}
		round := next[a]
		if n := next[b]; n > round {
			round = n
		}
		eventRound[i] = round
		next[a], next[b] = round+1, round+1
		if round == len(rounds) {
			rounds = append(rounds, nil)
		}
		rounds[round] = append(rounds[round], i)
	}
	return rounds, eventRound
}
