package emu

import (
	"fmt"
	"testing"

	"replidtn/internal/trace"
)

// benchTraces caches generated traces across benchmark runs.
var benchTraces = map[string]*trace.Trace{}

func benchTrace(b *testing.B, full bool) *trace.Trace {
	b.Helper()
	key := "small"
	if full {
		key = "full"
	}
	if tr := benchTraces[key]; tr != nil {
		return tr
	}
	dn := trace.DefaultDieselNet()
	wl := trace.DefaultWorkload()
	if !full {
		dn.Days = 5
		dn.FleetSize = 12
		dn.ActivePerDay = 10
		dn.Routes = 4
		dn.EncountersPerDay = 220
		wl.Users = 20
		wl.Messages = 60
		wl.InjectDays = 2
	}
	tr, err := trace.Generate(dn, wl, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[key] = tr
	return tr
}

// BenchmarkEmuRun measures one full emulation run under epidemic routing —
// the heaviest policy — on the scaled-down and the paper-calibrated trace,
// comparing the sequential reference engine (workers=0) against the parallel
// engine at increasing worker counts. Allocation stats expose the O(1) copy
// accounting: the sequential engine no longer scans every endpoint store per
// delivery or per message at the end of the run.
func BenchmarkEmuRun(b *testing.B) {
	for _, full := range []bool{false, true} {
		size := "small"
		if full {
			size = "full"
		}
		for _, workers := range []int{0, 1, 2, 4, 8} {
			b.Run(fmt.Sprintf("trace=%s/workers=%d", size, workers), func(b *testing.B) {
				tr := benchTrace(b, full)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := Run(Config{
						Trace:   tr,
						Policy:  Factory(PolicyEpidemic, DefaultParams()),
						Workers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Summary.DeliveredCount() == 0 {
						b.Fatal("run delivered nothing")
					}
				}
			})
		}
	}
}

// BenchmarkEmuRunConstrained measures the Fig. 9 bandwidth-constrained
// configuration, whose per-encounter work (top-1 selection over the whole
// store) differs markedly from the unconstrained run.
func BenchmarkEmuRunConstrained(b *testing.B) {
	tr := benchTrace(b, false)
	for _, workers := range []int{0, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(Config{
					Trace:                   tr,
					Policy:                  Factory(PolicyMaxProp, DefaultParams()),
					MaxMessagesPerEncounter: 1,
					Workers:                 workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartition isolates the region sharder: union-find partitioning
// the full paper trace's ~16k events into epochs must stay a negligible
// fraction of a run, and steady-state epochs must not allocate beyond the
// shard index slices.
func BenchmarkPartition(b *testing.B) {
	tr := benchTrace(b, true)
	r := newRunner(Config{Trace: tr}, tr)
	se := newShardEngine(r, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(r.events); lo += defaultEpochEvents {
			shards := se.partition(lo, min(lo+defaultEpochEvents, len(r.events)))
			if len(shards) == 0 {
				b.Fatal("no shards")
			}
		}
	}
}
