package emu

import (
	"replidtn/internal/routing"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/routing/spraywait"
	"replidtn/internal/routing/twohop"
	"replidtn/internal/vclock"
)

// Params collects every routing-protocol parameter of the evaluation — the
// paper's Table II.
type Params struct {
	EpidemicTTL         float64
	SprayCopies         int
	Prophet             prophet.Params
	MaxPropHopThreshold int
}

// DefaultParams returns the paper's Table II values.
func DefaultParams() Params {
	return Params{
		EpidemicTTL:         epidemic.DefaultTTL,
		SprayCopies:         spraywait.DefaultCopies,
		Prophet:             prophet.DefaultParams(),
		MaxPropHopThreshold: maxprop.DefaultHopThreshold,
	}
}

// PolicyName identifies a routing configuration in experiment output.
type PolicyName string

// The five evaluated configurations (basic substrate plus four policies),
// and the extra two-hop relay baseline (not part of the paper's figures).
const (
	PolicyBasic    PolicyName = "cimbiosys"
	PolicyEpidemic PolicyName = "epidemic"
	PolicySpray    PolicyName = "spray"
	PolicyProphet  PolicyName = "prophet"
	PolicyMaxProp  PolicyName = "maxprop"
	PolicyTwoHop   PolicyName = "twohop"
)

// AllPolicies lists the evaluated configurations in the paper's order.
var AllPolicies = []PolicyName{
	PolicyBasic, PolicyProphet, PolicySpray, PolicyEpidemic, PolicyMaxProp,
}

// Factory returns the PolicyFactory for a named configuration (nil for the
// basic substrate).
func Factory(name PolicyName, p Params) PolicyFactory {
	switch name {
	case PolicyBasic:
		return nil
	case PolicyEpidemic:
		return func(vclock.ReplicaID, func() int64, []string) routing.Policy {
			return epidemic.New(int(p.EpidemicTTL))
		}
	case PolicySpray:
		return func(vclock.ReplicaID, func() int64, []string) routing.Policy {
			return spraywait.New(p.SprayCopies)
		}
	case PolicyProphet:
		return func(_ vclock.ReplicaID, now func() int64, own []string) routing.Policy {
			return prophet.New(p.Prophet, now, own...)
		}
	case PolicyMaxProp:
		return func(node vclock.ReplicaID, now func() int64, own []string) routing.Policy {
			return maxprop.New(node, p.MaxPropHopThreshold, now, own...)
		}
	case PolicyTwoHop:
		return func(vclock.ReplicaID, func() int64, []string) routing.Policy {
			return twohop.New()
		}
	default:
		return nil
	}
}
