// Package emu is the emulation harness: it runs many DTN messaging endpoints
// (each backed by its own replica) in one process and drives them with an
// encounter trace and a message workload, reproducing the paper's
// experimental setup — every encounter performs two synchronizations with
// alternating source/target roles, e-mail users are distributed over the
// buses scheduled each day, and message delivery, delay, and stored-copy
// counts are recorded.
//
// Following the paper's model ("messages sent between users are routed
// through a network of vehicular nodes"), the replication hosts are the buses
// and a message from user u to user v injected on day d enters the network at
// u's bus for that day, addressed to v's bus for that day. This reproduces
// the paper's accounting exactly: the basic substrate keeps two copies per
// delivered message (sender bus, destination bus), and a message can miss its
// 12-hour deadline simply because the two buses never meet that day.
package emu

import (
	"fmt"
	"io"
	"sort"

	"replidtn/internal/item"
	"replidtn/internal/messaging"
	"replidtn/internal/metrics"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/trace"
	"replidtn/internal/vclock"
)

// PolicyFactory builds a routing policy for one node. now supplies the
// simulation clock; ownAddresses are the addresses homed on the node (its bus
// address). A nil factory runs the basic substrate (no DTN forwarding).
type PolicyFactory func(node vclock.ReplicaID, now func() int64, ownAddresses []string) routing.Policy

// Config configures one emulation run.
type Config struct {
	// Trace supplies encounters, messages, rosters, and assignments.
	Trace *trace.Trace
	// Policy builds each node's routing policy (nil = basic substrate).
	Policy PolicyFactory
	// ExtraBuses maps a bus to other buses whose addresses it adds to its
	// filter, volunteering to carry their messages (the §IV.B multi-address
	// filter experiments). Nil means own address only.
	ExtraBuses map[string][]string
	// MaxMessagesPerEncounter bounds the items exchanged per encounter
	// across both syncs (0 = unlimited) — the Fig. 9 bandwidth constraint.
	MaxMessagesPerEncounter int
	// MaxBytesPerEncounter bounds the payload volume per encounter across
	// both syncs (0 = unlimited) — a byte-granular bandwidth model.
	MaxBytesPerEncounter int64
	// MessageSize pads every injected message's payload to this many bytes
	// (0 = just the message ID), giving byte budgets something to meter.
	MessageSize int
	// RelayCapacity bounds relayed messages per node (0 = unlimited) — the
	// Fig. 10 storage constraint.
	RelayCapacity int
	// Eviction orders relayed messages for eviction under storage pressure;
	// nil selects FIFO (the paper's strategy).
	Eviction store.EvictionStrategy
	// MessageLifetime, when positive, bounds every injected message's
	// lifetime in seconds: expired messages stop being forwarded or
	// delivered, modeling deadline-bound DTN workloads.
	MessageLifetime int64
	// EventLog, when set, receives one CSV line per emulation event
	// (inject, encounter, deliver) for debugging and external analysis:
	//
	//	time,event,field1,field2,field3
	EventLog io.Writer
}

// Result is the outcome of one emulation run.
type Result struct {
	// Summary aggregates per-message deliveries.
	Summary *metrics.Summary
	// Encounters is the number of encounters processed.
	Encounters int
	// Syncs is the number of synchronizations performed.
	Syncs int
	// ItemsTransferred counts batch items moved over all syncs.
	ItemsTransferred int
	// BytesTransferred estimates the payload volume moved over all syncs.
	BytesTransferred int64
	// Duplicates counts duplicate receipts (the substrate keeps this 0).
	Duplicates int
	// MeanKnowledgeEntries is the average knowledge size (base entries +
	// exceptions) across nodes at the end — the metadata-compactness check.
	MeanKnowledgeEntries float64
}

// clock is the shared simulation clock.
type clock struct{ t int64 }

func (c *clock) now() int64 { return c.t }

// msgState tracks one workload message through the run.
type msgState struct {
	traceID     string
	sentAt      int64
	deliveredAt int64
	copiesAtDel int
	itemID      item.ID
}

// Run executes the emulation.
func Run(cfg Config) (*Result, error) {
	tr := cfg.Trace
	if tr == nil {
		return nil, fmt.Errorf("emu: config needs a trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("emu: %w", err)
	}

	clk := &clock{}
	byItem := make(map[item.ID]*msgState, len(tr.Messages))
	states := make([]*msgState, 0, len(tr.Messages))
	var pendingDeliveries []*msgState

	// Build one endpoint per fleet bus. Delivery callbacks only note the
	// event; copy counting happens after the encounter completes, outside
	// all replica locks.
	endpoints := make(map[string]*messaging.Endpoint, len(tr.Buses))
	for _, bus := range tr.Buses {
		node := vclock.ReplicaID(bus)
		own := []string{bus}
		var pol routing.Policy
		if cfg.Policy != nil {
			pol = cfg.Policy(node, clk.now, own)
		}
		endpoints[bus] = messaging.NewEndpoint(messaging.Config{
			NodeID:               node,
			Addresses:            own,
			ExtraFilterAddresses: cfg.ExtraBuses[bus],
			Policy:               pol,
			RelayCapacity:        cfg.RelayCapacity,
			Eviction:             cfg.Eviction,
			Now:                  clk.now,
			OnReceive: func(rcv messaging.Received) {
				if st := byItem[rcv.Message.ID]; st != nil && st.deliveredAt < 0 {
					st.deliveredAt = clk.t
					pendingDeliveries = append(pendingDeliveries, st)
				}
			},
		})
	}

	res := &Result{}
	events := buildEvents(tr)
	for _, ev := range events {
		clk.t = ev.time
		switch ev.kind {
		case evInject:
			m := tr.Messages[ev.index]
			day := trace.Day(m.Time)
			fromBus := tr.Assignment[day][m.From]
			toBus := tr.Assignment[day][m.To]
			ep := endpoints[fromBus]
			st := &msgState{traceID: m.ID, sentAt: m.Time, deliveredAt: -1}
			states = append(states, st)
			// Register the state before Send: a same-bus message delivers
			// during CreateItem and must be trackable then.
			sent, err := injectTracked(ep, byItem, st, fromBus, toBus, m.ID, cfg.MessageLifetime, cfg.MessageSize)
			if err != nil {
				return nil, fmt.Errorf("emu: inject %s: %w", m.ID, err)
			}
			st.itemID = sent.ID
			if cfg.EventLog != nil {
				fmt.Fprintf(cfg.EventLog, "%d,inject,%s,%s,%s\n", ev.time, m.ID, fromBus, toBus)
			}
		case evEncounter:
			e := tr.Encounters[ev.index]
			a, b := endpoints[e.A], endpoints[e.B]
			er := replica.EncounterBudget(a.Replica(), b.Replica(), replica.Budget{
				Items: cfg.MaxMessagesPerEncounter,
				Bytes: cfg.MaxBytesPerEncounter,
			})
			res.Encounters++
			res.Syncs += 2
			moved := er.AtoB.Sent + er.BtoA.Sent
			res.ItemsTransferred += moved
			res.BytesTransferred += er.AtoB.SentBytes + er.BtoA.SentBytes
			if cfg.EventLog != nil && moved > 0 {
				fmt.Fprintf(cfg.EventLog, "%d,encounter,%s,%s,%d\n", ev.time, e.A, e.B, moved)
			}
		}
		// Count copies for deliveries that occurred in this event, after all
		// replica locks are released.
		for _, st := range pendingDeliveries {
			st.copiesAtDel = countCopies(endpoints, st.itemID)
			if cfg.EventLog != nil {
				fmt.Fprintf(cfg.EventLog, "%d,deliver,%s,%d,\n", ev.time, st.traceID, st.deliveredAt-st.sentAt)
			}
		}
		pendingDeliveries = pendingDeliveries[:0]
	}

	deliveries := make([]metrics.Delivery, len(states))
	for i, st := range states {
		deliveries[i] = metrics.Delivery{
			MsgID:            st.traceID,
			SentAt:           st.sentAt,
			DeliveredAt:      st.deliveredAt,
			CopiesAtDelivery: st.copiesAtDel,
			CopiesAtEnd:      countCopies(endpoints, st.itemID),
		}
	}
	res.Summary = metrics.NewSummary(deliveries)

	totalKnow := 0
	for _, bus := range tr.Buses {
		ep := endpoints[bus]
		stats := ep.Replica().Stats()
		res.Duplicates += stats.Duplicates
		totalKnow += ep.Replica().Knowledge().Size()
	}
	if len(tr.Buses) > 0 {
		res.MeanKnowledgeEntries = float64(totalKnow) / float64(len(tr.Buses))
	}
	return res, nil
}

// injectTracked sends a message and wires its item ID into the tracking map.
// Same-bus messages deliver synchronously inside Send, so the state must be
// resolvable by the delivery callback; the callback tolerates the window by
// matching on the state registered immediately after Send returns.
func injectTracked(ep *messaging.Endpoint, byItem map[item.ID]*msgState, st *msgState, fromBus, toBus, traceID string, lifetime int64, size int) (messaging.Message, error) {
	payload := []byte(traceID)
	if size > len(payload) {
		padded := make([]byte, size)
		copy(padded, payload)
		payload = padded
	}
	var sent messaging.Message
	var err error
	if lifetime > 0 {
		sent, err = ep.SendExpiring(fromBus, []string{toBus}, payload, lifetime)
	} else {
		sent, err = ep.Send(fromBus, []string{toBus}, payload)
	}
	if err != nil {
		return messaging.Message{}, err
	}
	byItem[sent.ID] = st
	// A self-addressed (same bus) message was delivered during Send, before
	// the map entry existed; record it as an immediate delivery.
	if fromBus == toBus && st.deliveredAt < 0 {
		st.deliveredAt = sent.SentAt
		st.copiesAtDel = 1
	}
	return sent, nil
}

// countCopies counts live replicas of the item across the network.
func countCopies(endpoints map[string]*messaging.Endpoint, id item.ID) int {
	n := 0
	for _, ep := range endpoints {
		if ep.Replica().HasItem(id) {
			n++
		}
	}
	return n
}

// event kinds, processed in time order with injections before encounters at
// the same instant.
const (
	evInject = iota
	evEncounter
)

type event struct {
	time  int64
	kind  int
	index int // into Messages or Encounters
}

// buildEvents merges injections and encounters into one time-ordered
// schedule.
func buildEvents(tr *trace.Trace) []event {
	events := make([]event, 0, len(tr.Messages)+len(tr.Encounters))
	for i, m := range tr.Messages {
		events = append(events, event{time: m.Time, kind: evInject, index: i})
	}
	for i, e := range tr.Encounters {
		events = append(events, event{time: e.Time, kind: evEncounter, index: i})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].kind < events[j].kind
	})
	return events
}
