// Package emu is the emulation harness: it runs many DTN messaging endpoints
// (each backed by its own replica) in one process and drives them with an
// encounter trace and a message workload, reproducing the paper's
// experimental setup — every encounter performs two synchronizations with
// alternating source/target roles, e-mail users are distributed over the
// buses scheduled each day, and message delivery, delay, and stored-copy
// counts are recorded.
//
// Following the paper's model ("messages sent between users are routed
// through a network of vehicular nodes"), the replication hosts are the buses
// and a message from user u to user v injected on day d enters the network at
// u's bus for that day, addressed to v's bus for that day. This reproduces
// the paper's accounting exactly: the basic substrate keeps two copies per
// delivered message (sender bus, destination bus), and a message can miss its
// 12-hour deadline simply because the two buses never meet that day.
//
// Two execution engines share one event model. The sequential reference
// engine replays the time-ordered schedule one event at a time. The parallel
// engine (Config.Workers >= 1) cuts the same schedule into epochs and, per
// epoch, into region shards — connected components of the conflict graph,
// where two events conflict iff they touch a common bus. Shards execute
// concurrently, per-item effects are folded concurrently, and a sequential
// merge commits aggregate counters and the event log strictly in schedule
// order. The two engines are bit-identical: every endpoint observes the
// sequential event order, so replica state, policy state, and every recorded
// number match (see DESIGN.md §8 and the differential test).
package emu

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"replidtn/internal/fault"
	"replidtn/internal/item"
	"replidtn/internal/messaging"
	"replidtn/internal/metrics"
	"replidtn/internal/obs"
	"replidtn/internal/persist"
	"replidtn/internal/persist/wal"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/trace"
	"replidtn/internal/vclock"
)

// PolicyFactory builds a routing policy for one node. now supplies the
// simulation clock; ownAddresses are the addresses homed on the node (its bus
// address). A nil factory runs the basic substrate (no DTN forwarding).
type PolicyFactory func(node vclock.ReplicaID, now func() int64, ownAddresses []string) routing.Policy

// Config configures one emulation run.
type Config struct {
	// Trace supplies encounters, messages, rosters, and assignments.
	Trace *trace.Trace
	// Policy builds each node's routing policy (nil = basic substrate).
	Policy PolicyFactory
	// ExtraBuses maps a bus to other buses whose addresses it adds to its
	// filter, volunteering to carry their messages (the §IV.B multi-address
	// filter experiments). Nil means own address only.
	ExtraBuses map[string][]string
	// MaxMessagesPerEncounter bounds the items exchanged per encounter
	// across both syncs (0 = unlimited) — the Fig. 9 bandwidth constraint.
	MaxMessagesPerEncounter int
	// MaxBytesPerEncounter bounds the payload volume per encounter across
	// both syncs (0 = unlimited) — a byte-granular bandwidth model.
	MaxBytesPerEncounter int64
	// MessageSize pads every injected message's payload to this many bytes
	// (0 = just the message ID), giving byte budgets something to meter.
	MessageSize int
	// RelayCapacity bounds relayed messages per node (0 = unlimited) — the
	// Fig. 10 storage constraint.
	RelayCapacity int
	// Eviction orders relayed messages for eviction under storage pressure;
	// nil selects FIFO (the paper's strategy).
	Eviction store.EvictionStrategy
	// MessageLifetime, when positive, bounds every injected message's
	// lifetime in seconds: expired messages stop being forwarded or
	// delivered, modeling deadline-bound DTN workloads.
	MessageLifetime int64
	// Workers selects the execution engine. 0 (the default) runs the
	// sequential reference engine. n >= 1 runs the deterministic sharded
	// parallel engine with n workers over region/epoch shards; its output
	// is bit-identical to the sequential engine's, so the choice is purely
	// a wall-clock matter.
	Workers int
	// EpochEvents bounds the number of schedule events per epoch in the
	// sharded engine (0 = a tuned default). Smaller epochs commit effects
	// sooner but expose less parallelism per barrier; the output is
	// bit-identical at any setting, so this too is purely a wall-clock
	// knob (the differential tests sweep it).
	EpochEvents int
	// Engine, when set, records sharded-engine scheduling metrics: shard
	// counts and widths per epoch, and the wall time spent in the execute,
	// fold, and merge stages. Durations are wall-clock and feed only these
	// histograms — the Result and event log stay bit-identical to an
	// uninstrumented run. Nil (the default) disables collection.
	Engine *obs.EngineMetrics
	// Faults configures deterministic fault injection over the encounter
	// schedule: dropped contacts, mid-sync link cutoffs (aborted
	// transactionally), and node crash-restarts that reload state through the
	// internal/persist codec. Decisions are pure functions of
	// (Faults.Seed, encounter index), so faulted runs are reproducible and
	// engine-independent. The zero value disables every fault and leaves the
	// run byte-identical to a fault-free build.
	Faults fault.Config
	// DataBackend selects the persistence model crash-restarts exercise:
	// "snapshot" (also "", the default) ships the dying node's state through
	// the gob snapshot codec — durable state as persist.Save would write it.
	// "wal" runs every node over an in-memory write-ahead log
	// (internal/persist/wal) that journals each mutation as it happens; a
	// crash then hard-kills the filesystem (unsynced bytes lost) and reboots
	// by WAL replay. Because the WAL's recovery contract is exactness, both
	// backends must produce bit-identical results and event logs — which the
	// emulator-level differential test pins.
	DataBackend string
	// EventLog, when set, receives one CSV line per emulation event
	// (inject, encounter, deliver) for debugging and external analysis:
	//
	//	time,event,field1,field2,field3
	//
	// Writes are buffered for the duration of the run and flushed on return.
	EventLog io.Writer
	// Metrics, when set, aggregates replica-level sync/apply counters across
	// every emulated node into one obs.ReplicaMetrics. All counters are
	// atomic, so the parallel engine feeds them safely; nil (the default)
	// skips instrumentation entirely, keeping the run byte-identical to an
	// uninstrumented build. The emulation Result is unaffected either way.
	Metrics *obs.ReplicaMetrics
	// StoreMetrics, when set, aggregates store occupancy gauges and the
	// eviction counter across every emulated node. Nil disables it.
	StoreMetrics *obs.StoreMetrics
	// SyncSummaries enables the compact knowledge summary protocol on every
	// emulated node (Bloom digests and delta knowledge; see
	// replica.Config.SyncSummaries). Delivery results are unchanged — the
	// summary protocol only shrinks the knowledge frames each sync ships,
	// which Result.KnowledgeBytes accounts.
	SyncSummaries bool
	// SummaryFPRate is the Bloom digest's target false-positive rate; 0
	// selects the default. Only meaningful with SyncSummaries.
	SummaryFPRate float64
	// SummaryDigestMin is the exception-count threshold below which exact
	// knowledge is sent instead of a digest; 0 selects the default. Only
	// meaningful with SyncSummaries.
	SummaryDigestMin int
}

// Result is the outcome of one emulation run.
type Result struct {
	// Summary aggregates per-message deliveries.
	Summary *metrics.Summary
	// Encounters is the number of encounters processed.
	Encounters int
	// Syncs is the number of synchronizations performed.
	Syncs int
	// ItemsTransferred counts batch items moved over all syncs.
	ItemsTransferred int
	// BytesTransferred estimates the payload volume moved over all syncs.
	BytesTransferred int64
	// Duplicates counts duplicate receipts (the substrate keeps this 0).
	Duplicates int
	// MeanKnowledgeEntries is the average knowledge size (base entries +
	// exceptions) across nodes at the end — the metadata-compactness check.
	MeanKnowledgeEntries float64
	// EncountersDropped counts encounters the fault plan suppressed entirely
	// (included in Encounters; zero without faults).
	EncountersDropped int
	// SyncsAborted counts synchronizations whose transfer was cut off
	// mid-batch and discarded transactionally (zero without faults).
	SyncsAborted int
	// ItemsWasted and BytesWasted count partial transfers that crossed the
	// link before a cutoff and were then discarded; both are already included
	// in ItemsTransferred/BytesTransferred (zero without faults).
	ItemsWasted int
	BytesWasted int64
	// Crashes counts node crash-restart events executed (zero without
	// faults).
	Crashes int
	// KnowledgeBytes is the encoded size of every knowledge frame shipped
	// across all syncs — exact frames, digests, deltas, and fallback retries
	// alike. This is the per-encounter metadata cost the summary protocol
	// (Config.SyncSummaries) exists to shrink; item payload volume is counted
	// separately in BytesTransferred.
	KnowledgeBytes int64
	// SummaryFallbacks counts syncs whose summary frame could not be served
	// exactly and needed the extra exact-knowledge round (zero unless
	// SyncSummaries is enabled).
	SummaryFallbacks int
}

// clock is one endpoint's view of the simulation time. Each endpoint owns a
// clock set to the event time just before the endpoint participates in an
// event, so events on disjoint endpoints may execute concurrently while each
// replica and policy still reads exactly the sequential engine's timestamps.
type clock struct{ t int64 }

func (c *clock) now() int64 { return c.t }

// msgState tracks one workload message through the run.
type msgState struct {
	traceID     string
	sentAt      int64
	deliveredAt int64
	copiesAtDel int
	itemID      item.ID
}

// copyDelta is one live-copy transition observed at an endpoint store.
type copyDelta struct {
	id    item.ID
	delta int
}

// eventRec captures everything an event execution produces that must be
// folded into run-global state. Execution fills it (possibly on a worker
// goroutine); commit consumes it in schedule order on the coordinator.
type eventRec struct {
	err       error
	moved     int   // encounter: items moved across both syncs
	bytes     int64 // encounter: payload volume moved
	kbytes    int64 // encounter: knowledge-frame bytes shipped
	fallbacks int   // encounter: summary syncs that needed the exact round

	st       *msgState // inject: the tracked message
	from, to string    // inject: source and destination bus

	// dropped marks an encounter the fault plan suppressed entirely.
	dropped bool
	// aborted counts synchronization legs cut off mid-batch this encounter;
	// wastedItems/wastedBytes are the discarded partial transfers (included
	// in moved/bytes).
	aborted     int
	wastedItems int
	wastedBytes int64

	// deltas are the live-copy transitions the event caused, in occurrence
	// order; replaying them in schedule order maintains the exact copy count
	// the sequential engine would observe after each event.
	deltas []copyDelta
	// deliveries are first-time message receipts, in occurrence order.
	deliveries []item.ID
	// resolved, in the sharded engine, is the fold phase's verdict on each
	// entry of deliveries: the message and delay to log for a first
	// receipt, or an unset slot for a repeat. The merge only reads it.
	resolved []delivery
}

func (rec *eventRec) reset() {
	rec.err = nil
	rec.moved, rec.bytes = 0, 0
	rec.kbytes, rec.fallbacks = 0, 0
	rec.st = nil
	rec.from, rec.to = "", ""
	rec.dropped = false
	rec.aborted, rec.wastedItems, rec.wastedBytes = 0, 0, 0
	rec.deltas = rec.deltas[:0]
	rec.deliveries = rec.deliveries[:0]
	rec.resolved = rec.resolved[:0]
}

// epState is one endpoint plus its engine-side execution state.
type epState struct {
	ep *messaging.Endpoint
	// wal and walFS are the endpoint's write-ahead log and its in-memory
	// filesystem, set only under Config.DataBackend "wal". They are endpoint-
	// private, so the sharded engine's conflict-free rounds cover them the
	// same way they cover the replica itself.
	wal   *wal.DB
	walFS *wal.MemFS
	// clk is the endpoint's simulation clock (see clock).
	clk clock
	// rec points at the recorder of the event currently executing on this
	// endpoint. Delivery and copy-count callbacks append to it. Only the
	// worker running that event touches it — conflict-free rounds guarantee
	// no two concurrent events share an endpoint.
	rec *eventRec
}

// runner holds one run's state, shared by both engines.
type runner struct {
	cfg    Config
	tr     *trace.Trace
	eps    map[string]*epState
	events []event
	// plan is the fault plan; nil disables fault injection entirely, leaving
	// the run byte-identical to a build without the fault layer.
	plan *fault.Plan
	// crashes holds the crash-restart events the plan scheduled; event.index
	// for evCrash events points into it.
	crashes []crashEvent

	// states holds per-message tracking, indexed like Trace.Messages.
	states []*msgState
	// byItem resolves delivered item IDs to message states; written and read
	// only during commit, which is single-threaded in both engines.
	byItem map[item.ID]*msgState
	// copies is the network-wide live-copy count per item, maintained
	// incrementally from committed copy deltas — the O(1) replacement for
	// scanning every endpoint store per delivery.
	copies map[item.ID]int

	// engine is the sharded engine's scheduling and fold state; nil when
	// the sequential reference engine runs.
	engine *shardEngine

	log *bufio.Writer // buffered EventLog; nil when unset
	res *Result
}

// Run executes the emulation.
func Run(cfg Config) (*Result, error) {
	tr := cfg.Trace
	if tr == nil {
		return nil, fmt.Errorf("emu: config needs a trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("emu: %w", err)
	}

	r := newRunner(cfg, tr)
	if err := r.attachWALBackends(); err != nil {
		return nil, err
	}
	if cfg.EventLog != nil {
		r.log = bufio.NewWriterSize(cfg.EventLog, 64<<10)
	}
	var err error
	if cfg.Workers >= 1 {
		err = r.runSharded(cfg.Workers)
	} else {
		err = r.runSequential()
	}
	if r.log != nil {
		r.log.Flush()
	}
	if err != nil {
		return nil, err
	}
	return r.finalize(), nil
}

func newRunner(cfg Config, tr *trace.Trace) *runner {
	r := &runner{
		cfg:    cfg,
		tr:     tr,
		eps:    make(map[string]*epState, len(tr.Buses)),
		plan:   fault.NewPlan(cfg.Faults),
		states: make([]*msgState, len(tr.Messages)),
		byItem: make(map[item.ID]*msgState, len(tr.Messages)),
		copies: make(map[item.ID]int, len(tr.Messages)),
		res:    &Result{},
	}
	r.events, r.crashes = buildEvents(tr, r.plan)
	for _, bus := range tr.Buses {
		es := &epState{}
		es.ep = r.newEndpoint(bus, es)
		r.eps[bus] = es
	}
	return r
}

// newEndpoint builds the messaging endpoint for one bus. The delivery and
// copy-count callbacks capture the bus's epState — which is stable across
// crash-restarts — so a rebuilt endpoint reports into the same recorder
// plumbing as the original.
func (r *runner) newEndpoint(bus string, es *epState) *messaging.Endpoint {
	node := vclock.ReplicaID(bus)
	own := []string{bus}
	var pol routing.Policy
	if r.cfg.Policy != nil {
		pol = r.cfg.Policy(node, es.clk.now, own)
	}
	return messaging.NewEndpoint(messaging.Config{
		NodeID:               node,
		Addresses:            own,
		ExtraFilterAddresses: r.cfg.ExtraBuses[bus],
		Policy:               pol,
		RelayCapacity:        r.cfg.RelayCapacity,
		Eviction:             r.cfg.Eviction,
		Now:                  es.clk.now,
		Metrics:              r.cfg.Metrics,
		StoreMetrics:         r.cfg.StoreMetrics,
		SyncSummaries:        r.cfg.SyncSummaries,
		SummaryFPRate:        r.cfg.SummaryFPRate,
		SummaryDigestMin:     r.cfg.SummaryDigestMin,
		// Both callbacks fire with the replica lock held, on the worker
		// executing this endpoint's current event; they only note what
		// happened, and commit folds it into run-global state in order.
		OnReceive: func(rcv messaging.Received) {
			es.rec.deliveries = append(es.rec.deliveries, rcv.Message.ID)
		},
		OnCopies: func(id item.ID, delta int) {
			es.rec.deltas = append(es.rec.deltas, copyDelta{id: id, delta: delta})
		},
	})
}

// runSequential is the reference engine: execute and commit one event at a
// time in schedule order, reusing a single recorder.
func (r *runner) runSequential() error {
	var rec eventRec
	for i := range r.events {
		rec.reset()
		r.exec(&r.events[i], &rec)
		if err := r.commit(&r.events[i], &rec); err != nil {
			return err
		}
	}
	return nil
}

// exec performs one event against its endpoints, recording every observable
// effect into rec. It touches only the event's endpoints (plus rec), which is
// what makes events on disjoint endpoints safe to run concurrently.
func (r *runner) exec(ev *event, rec *eventRec) {
	switch ev.kind {
	case evInject:
		m := r.tr.Messages[ev.index]
		day := trace.Day(m.Time)
		fromBus := r.tr.Assignment[day][m.From]
		toBus := r.tr.Assignment[day][m.To]
		es := r.eps[fromBus]
		es.clk.t = ev.time
		es.rec = rec
		st := &msgState{traceID: m.ID, sentAt: m.Time, deliveredAt: -1}
		r.states[ev.index] = st
		rec.st, rec.from, rec.to = st, fromBus, toBus
		sent, err := sendPadded(es.ep, fromBus, toBus, m.ID, r.cfg.MessageLifetime, r.cfg.MessageSize)
		if err != nil {
			rec.err = fmt.Errorf("emu: inject %s: %w", m.ID, err)
			return
		}
		st.itemID = sent.ID
	case evEncounter:
		if r.plan != nil {
			dec := r.plan.Encounter(ev.index)
			if dec.Drop {
				// The contact never happens: neither endpoint observes it, so
				// clocks and recorders stay untouched.
				rec.dropped = true
				return
			}
			if dec.Cutoff >= 0 {
				r.execEncounterLink(ev, rec, dec.Cutoff)
				return
			}
		}
		e := r.tr.Encounters[ev.index]
		ea, eb := r.eps[e.A], r.eps[e.B]
		ea.clk.t, eb.clk.t = ev.time, ev.time
		ea.rec, eb.rec = rec, rec
		er := replica.EncounterBudget(ea.ep.Replica(), eb.ep.Replica(), replica.Budget{
			Items: r.cfg.MaxMessagesPerEncounter,
			Bytes: r.cfg.MaxBytesPerEncounter,
		})
		rec.moved = er.AtoB.Sent + er.BtoA.Sent
		rec.bytes = er.AtoB.SentBytes + er.BtoA.SentBytes
		recordSyncOverhead(rec, er)
	case evCrash:
		c := r.crashes[ev.index]
		es := r.eps[c.bus]
		es.clk.t = ev.time
		es.rec = rec
		if err := r.crashRestart(c.bus, es); err != nil {
			rec.err = fmt.Errorf("emu: crash-restart %s: %w", c.bus, err)
		}
	}
}

// execEncounterLink runs one encounter over a link the fault plan will sever
// after cutoff crossed items. The aborted leg's partial transfer is recorded
// as wasted; the transactional discard in replica.EncounterLink guarantees the
// target's knowledge and store are untouched, so a later encounter resumes the
// exchange from scratch.
func (r *runner) execEncounterLink(ev *event, rec *eventRec, cutoff int) {
	e := r.tr.Encounters[ev.index]
	ea, eb := r.eps[e.A], r.eps[e.B]
	ea.clk.t, eb.clk.t = ev.time, ev.time
	ea.rec, eb.rec = rec, rec
	er := replica.EncounterLink(ea.ep.Replica(), eb.ep.Replica(), replica.Budget{
		Items: r.cfg.MaxMessagesPerEncounter,
		Bytes: r.cfg.MaxBytesPerEncounter,
	}, replica.Link{Cutoff: cutoff})
	rec.moved = er.AtoB.Sent + er.BtoA.Sent
	rec.bytes = er.AtoB.SentBytes + er.BtoA.SentBytes
	recordSyncOverhead(rec, er)
	for _, sr := range [2]replica.SyncResult{er.AtoB, er.BtoA} {
		if sr.Aborted {
			rec.aborted++
			rec.wastedItems += sr.Sent
			rec.wastedBytes += sr.SentBytes
		}
	}
}

// recordSyncOverhead folds both legs' knowledge-frame accounting into the
// event recorder.
func recordSyncOverhead(rec *eventRec, er replica.EncounterResult) {
	rec.kbytes = er.AtoB.KnowledgeBytes + er.BtoA.KnowledgeBytes
	for _, sr := range [2]replica.SyncResult{er.AtoB, er.BtoA} {
		if sr.Fallback {
			rec.fallbacks++
		}
	}
}

// attachWALBackends puts every endpoint behind a write-ahead log when
// Config.DataBackend selects one, and rejects unknown backend names.
func (r *runner) attachWALBackends() error {
	switch r.cfg.DataBackend {
	case "", "snapshot":
		return nil
	case "wal":
	default:
		return fmt.Errorf("emu: unknown data backend %q (have: %s)", r.cfg.DataBackend, persist.BackendKinds)
	}
	for _, bus := range r.tr.Buses {
		es := r.eps[bus]
		es.walFS = wal.NewMemFS()
		db, err := wal.Open(es.walFS, wal.Options{})
		if err != nil {
			return fmt.Errorf("emu: wal backend %s: %w", bus, err)
		}
		if _, err := db.Load(); !errors.Is(err, wal.ErrNoState) {
			return fmt.Errorf("emu: wal backend %s: fresh load: %v", bus, err)
		}
		if err := db.Attach(es.ep.Replica()); err != nil {
			return fmt.Errorf("emu: wal backend %s: %w", bus, err)
		}
		es.wal = db
	}
	return nil
}

// crashRestart models a node dying and rebooting at the current instant.
//
// Under the default snapshot backend, the endpoint's durable state is shipped
// through the persist codec — exactly the bytes persist.Save would put on
// disk — a fresh endpoint is built the way a cold boot would build it, and
// the snapshot is restored into it. Under the "wal" backend the crash is
// harder: the endpoint's in-memory filesystem drops everything not fsynced
// and the reboot recovers by segment + log replay, exactly the dtnnode
// restart path. Either way, volatile state (a non-persistent policy's
// internals) is lost; knowledge, store contents, and persistent policy state
// survive, which is what carries the substrate's at-most-once guarantee
// across the restart. Restoring fires no delivery or copy callbacks: the
// node's live copies are unchanged by the reboot, so the run-global copy
// table stays exact.
func (r *runner) crashRestart(bus string, es *epState) error {
	var snap *replica.Snapshot
	if es.wal != nil {
		if err := es.wal.Err(); err != nil {
			return err
		}
		es.walFS.Crash()
		db, err := wal.Open(es.walFS, wal.Options{})
		if err != nil {
			return err
		}
		if snap, err = db.Load(); err != nil {
			return err
		}
		es.wal = db
	} else {
		var buf bytes.Buffer
		if err := persist.Encode(&buf, es.ep.Replica()); err != nil {
			return err
		}
		var err error
		if snap, err = persist.Decode(&buf); err != nil {
			return err
		}
	}
	// The dying node's store contribution leaves the shared gauges before the
	// rebuilt node's restore re-adds it.
	es.ep.Replica().DetachStoreMetrics()
	ep := r.newEndpoint(bus, es)
	if err := ep.Replica().RestoreSnapshot(snap); err != nil {
		return err
	}
	if es.wal != nil {
		if err := es.wal.Attach(ep.Replica()); err != nil {
			return err
		}
	}
	es.ep = ep
	return nil
}

// commit folds one executed event into run-global state: the copy-count
// table, the result counters, message delivery states, and the event log.
// Both engines call it in schedule order from a single goroutine, which is
// what keeps copy accounting and the log bit-identical to the sequential
// engine regardless of execution interleaving.
func (r *runner) commit(ev *event, rec *eventRec) error {
	if rec.err != nil {
		return rec.err
	}
	for _, d := range rec.deltas {
		if n := r.copies[d.id] + d.delta; n == 0 {
			delete(r.copies, d.id)
		} else {
			r.copies[d.id] = n
		}
	}
	switch ev.kind {
	case evInject:
		st := rec.st
		r.byItem[st.itemID] = st
		// A self-addressed (same bus) message was delivered during Send; it
		// is recorded as an immediate single-copy delivery, not as a deliver
		// event.
		if rec.from == rec.to && st.deliveredAt < 0 {
			st.deliveredAt = ev.time
			st.copiesAtDel = 1
		}
		if r.log != nil {
			logInject(r.log, ev.time, st.traceID, rec.from, rec.to)
		}
	case evEncounter:
		r.res.Encounters++
		if rec.dropped {
			r.res.EncountersDropped++
			if r.log != nil {
				e := r.tr.Encounters[ev.index]
				logDrop(r.log, ev.time, e.A, e.B)
			}
			break
		}
		r.res.Syncs += 2
		r.res.ItemsTransferred += rec.moved
		r.res.BytesTransferred += rec.bytes
		r.res.KnowledgeBytes += rec.kbytes
		r.res.SummaryFallbacks += rec.fallbacks
		if rec.aborted > 0 {
			r.res.SyncsAborted += rec.aborted
			r.res.ItemsWasted += rec.wastedItems
			r.res.BytesWasted += rec.wastedBytes
			if r.log != nil {
				e := r.tr.Encounters[ev.index]
				logAbort(r.log, ev.time, e.A, e.B, rec.wastedItems)
			}
		}
		if r.log != nil && rec.moved > 0 {
			e := r.tr.Encounters[ev.index]
			logEncounter(r.log, ev.time, e.A, e.B, rec.moved)
		}
		for _, id := range rec.deliveries {
			st := r.byItem[id]
			if st == nil || st.deliveredAt >= 0 {
				continue
			}
			st.deliveredAt = ev.time
			st.copiesAtDel = r.copies[id]
			if r.log != nil {
				logDeliver(r.log, ev.time, st.traceID, st.deliveredAt-st.sentAt)
			}
		}
	case evCrash:
		r.res.Crashes++
		if r.log != nil {
			logCrash(r.log, ev.time, r.crashes[ev.index].bus)
		}
	}
	return nil
}

// The event-log line formats, shared verbatim by the sequential commit and
// the sharded merge so the differential tests compare engines against one
// source of truth.

func logInject(w io.Writer, t int64, id, from, to string) {
	fmt.Fprintf(w, "%d,inject,%s,%s,%s\n", t, id, from, to)
}

func logDrop(w io.Writer, t int64, a, b string) {
	fmt.Fprintf(w, "%d,drop,%s,%s,\n", t, a, b)
}

func logAbort(w io.Writer, t int64, a, b string, wasted int) {
	fmt.Fprintf(w, "%d,abort,%s,%s,%d\n", t, a, b, wasted)
}

func logEncounter(w io.Writer, t int64, a, b string, moved int) {
	fmt.Fprintf(w, "%d,encounter,%s,%s,%d\n", t, a, b, moved)
}

func logDeliver(w io.Writer, t int64, id string, delay int64) {
	fmt.Fprintf(w, "%d,deliver,%s,%d,\n", t, id, delay)
}

func logCrash(w io.Writer, t int64, bus string) {
	fmt.Fprintf(w, "%d,crash,%s,,\n", t, bus)
}

// finalize assembles the Result after every event has committed. CopiesAtEnd
// reads the maintained copy table — O(1) per message instead of a scan over
// every endpoint store.
func (r *runner) finalize() *Result {
	deliveries := make([]metrics.Delivery, len(r.states))
	for i, st := range r.states {
		deliveries[i] = metrics.Delivery{
			MsgID:            st.traceID,
			SentAt:           st.sentAt,
			DeliveredAt:      st.deliveredAt,
			CopiesAtDelivery: st.copiesAtDel,
			CopiesAtEnd:      r.copiesAt(st.itemID),
		}
	}
	r.res.Summary = metrics.NewSummary(deliveries)

	totalKnow := 0
	for _, bus := range r.tr.Buses {
		ep := r.eps[bus].ep
		stats := ep.Replica().Stats()
		r.res.Duplicates += stats.Duplicates
		totalKnow += ep.Replica().Knowledge().Size()
	}
	if len(r.tr.Buses) > 0 {
		r.res.MeanKnowledgeEntries = float64(totalKnow) / float64(len(r.tr.Buses))
	}
	return r.res
}

// sendPadded sends a message whose payload is the trace ID padded to size.
func sendPadded(ep *messaging.Endpoint, fromBus, toBus, traceID string, lifetime int64, size int) (messaging.Message, error) {
	payload := []byte(traceID)
	if size > len(payload) {
		padded := make([]byte, size)
		copy(padded, payload)
		payload = padded
	}
	if lifetime > 0 {
		return ep.SendExpiring(fromBus, []string{toBus}, payload, lifetime)
	}
	return ep.Send(fromBus, []string{toBus}, payload)
}

// event kinds, processed in time order with injections before encounters and
// encounters before crash-restarts at the same instant (a node crashing "at"
// an encounter goes down right after the contact).
const (
	evInject = iota
	evEncounter
	evCrash
)

type event struct {
	time  int64
	kind  int
	index int // into Messages, Encounters, or runner.crashes
}

// crashEvent is one scheduled node crash-restart.
type crashEvent struct {
	time int64
	bus  string
}

// buildEvents merges injections, encounters, and any fault-plan crash events
// into one time-ordered schedule. Crash events derive deterministically from
// the plan's per-encounter decisions, so both engines — and repeated runs —
// build the identical schedule.
func buildEvents(tr *trace.Trace, plan *fault.Plan) ([]event, []crashEvent) {
	events := make([]event, 0, len(tr.Messages)+len(tr.Encounters))
	for i, m := range tr.Messages {
		events = append(events, event{time: m.Time, kind: evInject, index: i})
	}
	var crashes []crashEvent
	for i, e := range tr.Encounters {
		events = append(events, event{time: e.Time, kind: evEncounter, index: i})
		if plan == nil {
			continue
		}
		dec := plan.Encounter(i)
		if dec.CrashA {
			events = append(events, event{time: e.Time, kind: evCrash, index: len(crashes)})
			crashes = append(crashes, crashEvent{time: e.Time, bus: e.A})
		}
		if dec.CrashB {
			events = append(events, event{time: e.Time, kind: evCrash, index: len(crashes)})
			crashes = append(crashes, crashEvent{time: e.Time, bus: e.B})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].kind < events[j].kind
	})
	return events, crashes
}
