package emu

import (
	"fmt"
	"strings"
	"testing"

	"replidtn/internal/fault"
	"replidtn/internal/mobility"
	"replidtn/internal/obs"
	"replidtn/internal/trace"
)

// scenarioTraces builds the differential-test inputs: the scaled-down
// DieselNet trace plus a small instance of each synthetic mobility model.
// Results are cached — trace generation dominates the suite otherwise.
var scenarioTraceCache = map[string]*trace.Trace{}

func scenarioTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	if len(scenarioTraceCache) > 0 {
		return scenarioTraceCache
	}
	scenarioTraceCache["dieselnet"] = miniTrace(t)
	for _, spec := range []string{
		"rwp:n=16,days=2,seed=5,users=10,msgs=30,injectdays=2,spacing=250,active=7200",
		"community:n=16,days=2,seed=5,users=10,msgs=30,injectdays=2,spacing=250,active=7200,cells=2,bias=0.9",
		"corridor:n=16,days=2,seed=5,users=10,msgs=30,injectdays=2,spacing=250,active=7200,lanes=3",
	} {
		sc, err := mobility.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Materialize(sc)
		if err != nil {
			t.Fatal(err)
		}
		scenarioTraceCache[sc.Name()] = tr
	}
	return scenarioTraceCache
}

// TestDifferentialShardedEngine is the determinism gate for the sharded
// parallel engine: for every routing policy, on the DieselNet trace and on
// each synthetic mobility model, with fault injection off and on, the
// sharded engine at several worker counts and epoch sizes must reproduce
// the sequential reference engine bit for bit — the full delivery list
// (delays and copy counts included), every result counter, and the exact
// event log text. `make check` runs it under -race, which also audits the
// shard partition for conflicting concurrent access.
func TestDifferentialShardedEngine(t *testing.T) {
	traces := scenarioTraces(t)
	faultModes := []struct {
		name string
		cfg  fault.Config
	}{
		{"clean", fault.Config{}},
		{"faults", fault.Config{Seed: 9, Drop: 0.1, Cutoff: 0.15, CutoffItems: 2, Crash: 0.02}},
	}
	for _, scenario := range []string{"dieselnet", "rwp", "community", "corridor"} {
		tr := traces[scenario]
		for _, name := range AllPolicies {
			for _, fm := range faultModes {
				t.Run(fmt.Sprintf("%s/%s/%s", scenario, name, fm.name), func(t *testing.T) {
					var seqLog strings.Builder
					seq := runPolicy(t, tr, name, func(c *Config) {
						c.Faults = fm.cfg
						c.EventLog = &seqLog
					})
					for _, par := range []struct{ workers, epoch int }{
						{1, 0}, {2, 64}, {8, 0}, {4, 1},
					} {
						var parLog strings.Builder
						got := runPolicy(t, tr, name, func(c *Config) {
							c.Faults = fm.cfg
							c.Workers = par.workers
							c.EpochEvents = par.epoch
							c.EventLog = &parLog
						})
						assertIdenticalResults(t, par.workers, seq, got)
						if seqLog.String() != parLog.String() {
							t.Errorf("workers=%d epoch=%d: event log differs from sequential engine\n%s",
								par.workers, par.epoch, firstLogDiff(seqLog.String(), parLog.String()))
						}
					}
				})
			}
		}
	}
}

// TestDifferentialConstraintModes keeps the paper's constraint axes covered
// against the sharded engine: Fig. 9 bandwidth, Fig. 10 storage, bounded
// lifetimes, byte budgets with padded payloads, and multi-address filters.
func TestDifferentialConstraintModes(t *testing.T) {
	tr := miniTrace(t)
	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"bandwidth", func(c *Config) { c.MaxMessagesPerEncounter = 1 }},
		{"storage", func(c *Config) { c.RelayCapacity = 2 }},
		{"lifetime", func(c *Config) { c.MessageLifetime = 6 * 3600 }},
		{"bytes", func(c *Config) {
			c.MaxBytesPerEncounter = 2 << 10
			c.MessageSize = 1 << 10
		}},
		{"filters", func(c *Config) { c.ExtraBuses = SelectedExtraBuses(tr, 4) }},
	}
	for _, name := range AllPolicies {
		for _, m := range mods {
			t.Run(fmt.Sprintf("%s/%s", name, m.name), func(t *testing.T) {
				var seqLog, parLog strings.Builder
				seq := runPolicy(t, tr, name, func(c *Config) { m.mod(c); c.EventLog = &seqLog })
				par := runPolicy(t, tr, name, func(c *Config) {
					m.mod(c)
					c.Workers = 4
					c.EpochEvents = 128
					c.EventLog = &parLog
				})
				assertIdenticalResults(t, 4, seq, par)
				if seqLog.String() != parLog.String() {
					t.Errorf("event log differs:\n%s", firstLogDiff(seqLog.String(), parLog.String()))
				}
			})
		}
	}
}

func assertIdenticalResults(t *testing.T, workers int, seq, par *Result) {
	t.Helper()
	if counters(seq) != counters(par) {
		t.Errorf("workers=%d: counters differ: seq=%+v par=%+v", workers, counters(seq), counters(par))
	}
	ds, dp := seq.Summary.Deliveries(), par.Summary.Deliveries()
	if len(ds) != len(dp) {
		t.Fatalf("workers=%d: %d deliveries vs %d", workers, len(dp), len(ds))
	}
	for i := range ds {
		if ds[i] != dp[i] {
			t.Errorf("workers=%d: delivery %d differs: seq=%+v par=%+v", workers, i, ds[i], dp[i])
		}
	}
}

func counters(r *Result) [13]int64 {
	return [13]int64{int64(r.Encounters), int64(r.Syncs), int64(r.ItemsTransferred),
		r.BytesTransferred, int64(r.Duplicates), int64(r.MeanKnowledgeEntries * 1000),
		int64(r.EncountersDropped), int64(r.SyncsAborted),
		int64(r.ItemsWasted), r.BytesWasted, int64(r.Crashes),
		r.KnowledgeBytes, int64(r.SummaryFallbacks)}
}

// firstLogDiff renders the first differing line of two event logs.
func firstLogDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  seq: %q\n  par: %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(la), len(lb))
}

// TestPartitionInvariants checks the region sharder on a hand-built
// schedule: within an epoch no two shards share a bus (even transitively),
// every event lands in exactly one shard, and a shard's events keep
// schedule order.
func TestPartitionInvariants(t *testing.T) {
	tr := &trace.Trace{
		Days:  1,
		Buses: []string{"a", "b", "c", "d", "e", "f"},
		Encounters: []trace.Encounter{
			{Time: 10, A: "a", B: "b"},
			{Time: 10, A: "c", B: "d"}, // separate component from a–b
			{Time: 11, A: "a", B: "c"}, // bridges the two into one region
			{Time: 12, A: "e", B: "f"}, // independent region
			{Time: 13, A: "a", B: "b"},
		},
		Roster:     [][]string{{"a", "b", "c", "d", "e", "f"}},
		Assignment: []map[string]string{{"u": "a", "v": "e"}},
		Users:      []string{"u", "v"},
		Messages: []trace.Message{
			{ID: "m0", Time: 9, From: "u", To: "v"},  // bus a
			{ID: "m1", Time: 10, From: "v", To: "u"}, // bus e
		},
	}
	r := newRunner(Config{Trace: tr}, tr)
	se := newShardEngine(r, 2)

	// One epoch over everything: a,b,c,d form one region (bridged at t=11),
	// e,f another.
	shards := se.partition(0, len(r.events))
	checkPartition(t, r, se, shards, 0, len(r.events))
	if len(shards) != 2 {
		t.Errorf("expected 2 region shards, got %d", len(shards))
	}

	// Split epochs: before the bridge event, a–b and c–d are separate
	// regions. The stamped union-find must fully reset between epochs.
	half := 4
	shards = se.partition(0, half)
	checkPartition(t, r, se, shards, 0, half)
	if len(shards) != 3 {
		t.Errorf("first half: expected 3 region shards (a-b, c-d, e), got %d", len(shards))
	}
	shards = se.partition(half, len(r.events))
	checkPartition(t, r, se, shards, half, len(r.events))
}

func checkPartition(t *testing.T, r *runner, se *shardEngine, shards [][]int32, lo, hi int) {
	t.Helper()
	// Every event in [lo, hi) appears exactly once.
	seen := map[int32]bool{}
	for _, shard := range shards {
		for _, i := range shard {
			if seen[i] {
				t.Errorf("event %d scheduled twice", i)
			}
			seen[i] = true
			if int(i) < lo || int(i) >= hi {
				t.Errorf("event %d outside epoch [%d, %d)", i, lo, hi)
			}
		}
	}
	if len(seen) != hi-lo {
		t.Errorf("scheduled %d events, want %d", len(seen), hi-lo)
	}
	// Shards are bus-disjoint and schedule-ordered.
	busShard := map[int32]int{}
	for s, shard := range shards {
		for k, i := range shard {
			if k > 0 && shard[k-1] >= i {
				t.Errorf("shard %d not in schedule order at %d", s, i)
			}
			for _, bus := range []int32{se.busA[i], se.busB[i]} {
				if prev, ok := busShard[bus]; ok && prev != s {
					t.Errorf("bus %d appears in shards %d and %d", bus, prev, s)
				}
				busShard[bus] = s
			}
		}
	}
}

// TestShardedWorkerAndEpochClamp exercises degenerate scheduler inputs:
// worker counts far beyond the shard width and epochs far beyond the
// schedule length must degrade gracefully.
func TestShardedWorkerAndEpochClamp(t *testing.T) {
	tr := miniTrace(t)
	seq := runPolicy(t, tr, PolicyEpidemic, nil)
	for _, mod := range []func(*Config){
		func(c *Config) { c.Workers = 512 },
		func(c *Config) { c.Workers = 4; c.EpochEvents = 1 << 20 },
	} {
		par := runPolicy(t, tr, PolicyEpidemic, mod)
		assertIdenticalResults(t, 512, seq, par)
	}
}

// TestEngineMetricsRecorded checks the scheduling metrics plumbing: epochs,
// shard counts, and stage latencies must be observed, and instrumentation
// must not perturb the run.
func TestEngineMetricsRecorded(t *testing.T) {
	tr := miniTrace(t)
	seq := runPolicy(t, tr, PolicyEpidemic, nil)
	em := &obs.EngineMetrics{}
	par := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Workers = 4
		c.EpochEvents = 256
		c.Engine = em
	})
	assertIdenticalResults(t, 4, seq, par)
	snap := em.Snapshot()
	if snap.Epochs == 0 {
		t.Error("no epochs recorded")
	}
	if snap.Shards < snap.Epochs {
		t.Errorf("shards (%d) below epochs (%d)", snap.Shards, snap.Epochs)
	}
	if snap.ShardEvents.Count != snap.Shards {
		t.Errorf("shard width observations (%d) != shards (%d)", snap.ShardEvents.Count, snap.Shards)
	}
	if snap.MergeMicros.Count != snap.Epochs || snap.ExecMicros.Count != snap.Epochs {
		t.Error("stage latency histograms missing epochs")
	}
}

// TestCommitLoopScalesFree pins the tentpole property of the sharded merge:
// committing an epoch allocates nothing and touches no per-node or per-item
// state, so its allocation count is identical whether the fleet has ten
// nodes or ten thousand. A regression here means somebody put a map or a
// per-node structure back into the sequential tail.
func TestCommitLoopScalesFree(t *testing.T) {
	allocsPerEpoch := func(nodes int) float64 {
		tr := syntheticTrace(nodes)
		r := newRunner(Config{Trace: tr}, tr)
		// Pre-executed, pre-folded records: two resolved deliveries on a
		// moved encounter — the heaviest commit path without a log writer.
		recs := make([]eventRec, len(r.events))
		for i := range recs {
			recs[i].moved = 3
			recs[i].bytes = 512
			recs[i].resolved = []delivery{{traceID: "m1", delay: 60, ok: true}, {}}
		}
		return testing.AllocsPerRun(50, func() {
			for i := range r.events {
				r.commitShard(&r.events[i], &recs[i])
			}
		})
	}
	small, large := allocsPerEpoch(10), allocsPerEpoch(10_000)
	if small != large {
		t.Errorf("commit allocations scale with fleet size: %v allocs at 10 nodes, %v at 10k", small, large)
	}
	if small != 0 {
		t.Errorf("commit loop allocates (%v allocs/epoch); the merge must stay allocation-free", small)
	}
}

// syntheticTrace builds an encounters-only trace over n buses (ring
// neighbors, one encounter per bus pair) for scheduler-focused tests.
func syntheticTrace(n int) *trace.Trace {
	buses := make([]string, n)
	for i := range buses {
		buses[i] = fmt.Sprintf("b%05d", i)
	}
	encounters := make([]trace.Encounter, n)
	for i := range encounters {
		a, b := buses[i], buses[(i+1)%n]
		if a > b {
			a, b = b, a
		}
		encounters[i] = trace.Encounter{Time: int64(i + 1), A: a, B: b}
	}
	return &trace.Trace{
		Days:       1,
		Buses:      buses,
		Users:      []string{"u", "v"},
		Encounters: encounters,
		Roster:     [][]string{buses},
		Assignment: []map[string]string{{"u": buses[0], "v": buses[n/2]}},
	}
}
