package emu

import (
	"fmt"
	"strings"
	"testing"

	"replidtn/internal/trace"
)

// TestDifferentialParallelEngine is the determinism gate for the parallel
// engine: for every routing policy, under no constraint and under both of
// the paper's constraint modes (Fig. 9 bandwidth, Fig. 10 storage), the
// parallel engine at 1, 2, and 8 workers must reproduce the sequential
// reference engine bit for bit — the full delivery list (delays and copy
// counts included), every result counter, and the exact event log text.
// `make check` runs it under -race, which also audits the scheduler for
// conflicting concurrent access.
func TestDifferentialParallelEngine(t *testing.T) {
	tr := miniTrace(t)
	modes := []struct {
		name string
		mod  func(*Config)
	}{
		{"unconstrained", nil},
		{"bandwidth", func(c *Config) { c.MaxMessagesPerEncounter = 1 }},
		{"storage", func(c *Config) { c.RelayCapacity = 2 }},
	}
	for _, name := range AllPolicies {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", name, mode.name), func(t *testing.T) {
				var seqLog strings.Builder
				seq := runPolicy(t, tr, name, func(c *Config) {
					if mode.mod != nil {
						mode.mod(c)
					}
					c.EventLog = &seqLog
				})
				for _, workers := range []int{1, 2, 8} {
					var parLog strings.Builder
					par := runPolicy(t, tr, name, func(c *Config) {
						if mode.mod != nil {
							mode.mod(c)
						}
						c.Workers = workers
						c.EventLog = &parLog
					})
					assertIdenticalResults(t, workers, seq, par)
					if seqLog.String() != parLog.String() {
						t.Errorf("workers=%d: event log differs from sequential engine\n%s",
							workers, firstLogDiff(seqLog.String(), parLog.String()))
					}
				}
			})
		}
	}
}

func assertIdenticalResults(t *testing.T, workers int, seq, par *Result) {
	t.Helper()
	if counters(seq) != counters(par) {
		t.Errorf("workers=%d: counters differ: seq=%+v par=%+v", workers, counters(seq), counters(par))
	}
	ds, dp := seq.Summary.Deliveries(), par.Summary.Deliveries()
	if len(ds) != len(dp) {
		t.Fatalf("workers=%d: %d deliveries vs %d", workers, len(dp), len(ds))
	}
	for i := range ds {
		if ds[i] != dp[i] {
			t.Errorf("workers=%d: delivery %d differs: seq=%+v par=%+v", workers, i, ds[i], dp[i])
		}
	}
}

func counters(r *Result) [11]int64 {
	return [11]int64{int64(r.Encounters), int64(r.Syncs), int64(r.ItemsTransferred),
		r.BytesTransferred, int64(r.Duplicates), int64(r.MeanKnowledgeEntries * 1000),
		int64(r.EncountersDropped), int64(r.SyncsAborted),
		int64(r.ItemsWasted), r.BytesWasted, int64(r.Crashes)}
}

// firstLogDiff renders the first differing line of two event logs.
func firstLogDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  seq: %q\n  par: %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(la), len(lb))
}

// TestDifferentialLifetimeAndBytes covers the remaining config axes the
// policy/constraint matrix above does not: bounded message lifetimes (expiry
// interacts with the per-endpoint clocks) and byte-granular budgets with
// padded payloads.
func TestDifferentialLifetimeAndBytes(t *testing.T) {
	tr := miniTrace(t)
	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"lifetime", func(c *Config) { c.MessageLifetime = 6 * 3600 }},
		{"bytes", func(c *Config) {
			c.MaxBytesPerEncounter = 2 << 10
			c.MessageSize = 1 << 10
		}},
		{"filters", func(c *Config) { c.ExtraBuses = SelectedExtraBuses(tr, 4) }},
	}
	for _, m := range mods {
		t.Run(m.name, func(t *testing.T) {
			var seqLog, parLog strings.Builder
			seq := runPolicy(t, tr, PolicyEpidemic, func(c *Config) { m.mod(c); c.EventLog = &seqLog })
			par := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
				m.mod(c)
				c.Workers = 4
				c.EventLog = &parLog
			})
			assertIdenticalResults(t, 4, seq, par)
			if seqLog.String() != parLog.String() {
				t.Errorf("event log differs:\n%s", firstLogDiff(seqLog.String(), parLog.String()))
			}
		})
	}
}

// TestBuildRounds checks the list scheduler's two invariants on a hand-built
// schedule: events in one round never share a bus, and any two events
// sharing a bus land in rounds ordered like their schedule positions.
func TestBuildRounds(t *testing.T) {
	tr := &trace.Trace{
		Days:  1,
		Buses: []string{"a", "b", "c", "d"},
		Encounters: []trace.Encounter{
			{Time: 10, A: "a", B: "b"},
			{Time: 10, A: "c", B: "d"}, // disjoint: same round as the first
			{Time: 11, A: "a", B: "c"}, // conflicts with both: next round
			{Time: 12, A: "b", B: "d"}, // conflicts with #0 and #1 only
			{Time: 13, A: "a", B: "b"}, // conflicts with #2 and #3
		},
		Roster:     [][]string{{"a", "b", "c", "d"}},
		Assignment: []map[string]string{{"u": "a", "v": "c"}},
		Users:      []string{"u", "v"},
		Messages: []trace.Message{
			{ID: "m0", Time: 9, From: "u", To: "v"},  // bus a, before everything
			{ID: "m1", Time: 10, From: "v", To: "u"}, // bus c, same instant as encounters
		},
	}
	events, _ := buildEvents(tr, nil)
	rounds, eventRound := buildRounds(tr, events, nil)

	buses := func(ev *event) []string {
		if ev.kind == evInject {
			m := tr.Messages[ev.index]
			return []string{tr.Assignment[trace.Day(m.Time)][m.From]}
		}
		e := tr.Encounters[ev.index]
		return []string{e.A, e.B}
	}
	// No round shares a bus.
	for ri, round := range rounds {
		seen := map[string]int{}
		for _, i := range round {
			for _, bus := range buses(&events[i]) {
				if prev, dup := seen[bus]; dup {
					t.Errorf("round %d: events %d and %d both touch %s", ri, prev, i, bus)
				}
				seen[bus] = i
			}
		}
	}
	// Conflicting events are round-ordered like their schedule order, and
	// every event is scheduled exactly once.
	scheduled := 0
	for _, round := range rounds {
		scheduled += len(round)
	}
	if scheduled != len(events) {
		t.Fatalf("scheduled %d events, want %d", scheduled, len(events))
	}
	for i := range events {
		for j := i + 1; j < len(events); j++ {
			if !sharesBus(buses(&events[i]), buses(&events[j])) {
				continue
			}
			if eventRound[i] >= eventRound[j] {
				t.Errorf("conflicting events %d (round %d) and %d (round %d) not ordered",
					i, eventRound[i], j, eventRound[j])
			}
		}
	}
	// The injection at t=10 on bus c must be ordered before the c–d
	// encounter at the same instant (injections sort first).
	if eventRound[1] >= eventRound[3] {
		t.Errorf("same-instant injection (round %d) not before conflicting encounter (round %d)",
			eventRound[1], eventRound[3])
	}
}

func sharesBus(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// TestParallelWorkerClamp exercises worker counts far beyond the schedule's
// width, which must degrade gracefully to the available parallelism.
func TestParallelWorkerClamp(t *testing.T) {
	tr := miniTrace(t)
	seq := runPolicy(t, tr, PolicyEpidemic, nil)
	par := runPolicy(t, tr, PolicyEpidemic, func(c *Config) { c.Workers = 512 })
	assertIdenticalResults(t, 512, seq, par)
}
