package emu

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"replidtn/internal/mobility"
	"replidtn/internal/trace"
)

// scaleTrace materializes a mobility scenario for the scale tests.
func scaleTrace(tb testing.TB, spec string) *trace.Trace {
	tb.Helper()
	sc, err := mobility.Parse(spec)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := trace.Materialize(sc)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// TestScaleSmoke is the scale gate run by `make scale-smoke` (and its CI
// job): a 10k-node random-waypoint scenario through both engines, asserting
// bit-identical results and event logs. It is opt-in via DTN_SCALE_SMOKE
// because a fleet this size under -race takes more wall time than tier-1
// tests should; the differential suite covers the same property at small
// scale on every run.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("DTN_SCALE_SMOKE") == "" {
		t.Skip("set DTN_SCALE_SMOKE=1 to run the 10k-node scale smoke (make scale-smoke)")
	}
	tr := scaleTrace(t, "rwp:n=10000,seed=11,users=100,msgs=200,active=1800")
	t.Logf("scenario: %d nodes, %d encounters, %d messages",
		len(tr.Buses), len(tr.Encounters), len(tr.Messages))
	var seqLog, parLog strings.Builder
	seq := runPolicy(t, tr, PolicySpray, func(c *Config) { c.EventLog = &seqLog })
	par := runPolicy(t, tr, PolicySpray, func(c *Config) {
		c.Workers = runtime.GOMAXPROCS(0)
		c.EventLog = &parLog
	})
	assertIdenticalResults(t, runtime.GOMAXPROCS(0), seq, par)
	if seqLog.String() != parLog.String() {
		t.Errorf("event log differs at 10k nodes:\n%s", firstLogDiff(seqLog.String(), parLog.String()))
	}
}

// BenchmarkScale drives the sharded engine across fleet sizes up to the
// 100k-node mark, with the sequential engine as the baseline at each size
// the schedule keeps tractable. Scenario area auto-scales with the fleet, so
// per-node contact rates — and per-node work — are constant across sizes;
// what the benchmark exposes is how the engines absorb schedule volume.
// `make bench-scale` records this suite into BENCH_scale.json.
func BenchmarkScale(b *testing.B) {
	cases := []struct {
		nodes   int
		active  int
		workers []int
	}{
		{1_000, 3600, []int{0, 8}},
		{10_000, 1800, []int{0, 8}},
		{100_000, 900, []int{8}},
	}
	for _, tc := range cases {
		spec := fmt.Sprintf("rwp:n=%d,seed=11,users=100,msgs=200,active=%d", tc.nodes, tc.active)
		var tr *trace.Trace
		for _, workers := range tc.workers {
			b.Run(fmt.Sprintf("nodes=%d/workers=%d", tc.nodes, workers), func(b *testing.B) {
				if tr == nil {
					tr = scaleTrace(b, spec)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := Run(Config{
						Trace:   tr,
						Policy:  Factory(PolicySpray, DefaultParams()),
						Workers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Encounters != len(tr.Encounters) {
						b.Fatalf("processed %d encounters, want %d", res.Encounters, len(tr.Encounters))
					}
				}
			})
		}
	}
}
