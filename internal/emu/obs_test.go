package emu

import (
	"testing"

	"replidtn/internal/obs"
)

// TestObsAggregatesAcrossFleet: an instrumented run leaves the Result
// untouched, and the shared counters reconcile with the run's own accounting
// — the store Live gauge with the end-of-run copy census, the abort counter
// with the fault layer's. Crash-restarts are enabled so the test also pins
// the detach-before-rebuild path: without it every crash would double the
// dead node's contribution to the gauges.
func TestObsAggregatesAcrossFleet(t *testing.T) {
	tr := miniTrace(t)
	plain := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Faults = testFaults(9)
	})

	rm := &obs.ReplicaMetrics{}
	sm := &obs.StoreMetrics{}
	res := runPolicy(t, tr, PolicyEpidemic, func(c *Config) {
		c.Faults = testFaults(9)
		c.Metrics = rm
		c.StoreMetrics = sm
	})

	if res.Summary.DeliveredCount() != plain.Summary.DeliveredCount() ||
		res.ItemsTransferred != plain.ItemsTransferred ||
		res.BytesTransferred != plain.BytesTransferred ||
		res.SyncsAborted != plain.SyncsAborted ||
		res.Crashes != plain.Crashes {
		t.Errorf("instrumentation changed the result: %+v vs %+v", res, plain)
	}
	if res.Crashes == 0 || res.SyncsAborted == 0 {
		t.Fatalf("fault mix too tame to exercise the hooks: crashes=%d aborts=%d",
			res.Crashes, res.SyncsAborted)
	}

	if rm.SyncsInitiated.Value() == 0 || rm.BatchesApplied.Value() == 0 {
		t.Errorf("replica counters flat: initiated=%d applied=%d",
			rm.SyncsInitiated.Value(), rm.BatchesApplied.Value())
	}
	if got, want := rm.SyncsAborted.Value(), int64(res.SyncsAborted); got != want {
		t.Errorf("SyncsAborted = %d, result says %d", got, want)
	}

	// Every live entry across the fleet is a copy of a tracked message, so
	// the shared gauge must equal the copy census — crashes included.
	copies := int64(0)
	for _, d := range res.Summary.Deliveries() {
		copies += int64(d.CopiesAtEnd)
	}
	if got := sm.Live.Value(); got != copies {
		t.Errorf("Live gauge = %d, copy census says %d", got, copies)
	}
	if sm.Relay.Value() < 0 || sm.Tombstones.Value() < 0 {
		t.Errorf("negative occupancy: relay=%d tombstones=%d",
			sm.Relay.Value(), sm.Tombstones.Value())
	}
}
