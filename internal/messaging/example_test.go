package messaging_test

import (
	"fmt"

	"replidtn/internal/messaging"
	"replidtn/internal/replica"
	"replidtn/internal/routing/spraywait"
)

// Example shows the paper's whole idea in a dozen lines: messages are
// replicated items, filters deliver them, and encounters move them.
func Example() {
	alice := messaging.NewEndpoint(messaging.Config{
		NodeID: "alice-phone", Addresses: []string{"user:alice"},
	})
	bob := messaging.NewEndpoint(messaging.Config{
		NodeID: "bob-laptop", Addresses: []string{"user:bob"},
		OnReceive: func(r messaging.Received) {
			fmt.Printf("bob: %s\n", r.Message.Body)
		},
	})
	alice.Send("user:alice", []string{"user:bob"}, []byte("hello over a challenged network"))
	replica.Encounter(alice.Replica(), bob.Replica(), 0)
	// Output: bob: hello over a challenged network
}

// ExampleEndpoint_Send demonstrates multi-hop forwarding through a node
// running the Spray and Wait routing policy.
func ExampleEndpoint_Send() {
	alice := messaging.NewEndpoint(messaging.Config{
		NodeID: "alice", Addresses: []string{"user:alice"},
		Policy: spraywait.New(8),
	})
	courier := messaging.NewEndpoint(messaging.Config{
		NodeID: "courier", Addresses: []string{"user:courier"},
		Policy: spraywait.New(8),
	})
	bob := messaging.NewEndpoint(messaging.Config{
		NodeID: "bob", Addresses: []string{"user:bob"},
	})
	alice.Send("user:alice", []string{"user:bob"}, []byte("sprayed"))
	replica.Encounter(alice.Replica(), courier.Replica(), 0) // spray a copy
	replica.Encounter(courier.Replica(), bob.Replica(), 0)   // deliver it
	fmt.Println("bob received:", len(bob.Inbox()))
	// Output: bob received: 1
}

// ExampleEndpoint_Ack shows delete-to-acknowledge: the tombstone replicates
// back and clears the forwarding node's buffer.
func ExampleEndpoint_Ack() {
	alice := messaging.NewEndpoint(messaging.Config{
		NodeID: "alice", Addresses: []string{"user:alice"},
	})
	bob := messaging.NewEndpoint(messaging.Config{
		NodeID: "bob", Addresses: []string{"user:bob"},
	})
	msg, _ := alice.Send("user:alice", []string{"user:bob"}, []byte("ack me"))
	replica.Encounter(alice.Replica(), bob.Replica(), 0)
	bob.Ack(msg.ID)
	replica.Encounter(bob.Replica(), alice.Replica(), 0)
	fmt.Println("alice still stores it:", alice.Replica().HasItem(msg.ID))
	// Output: alice still stores it: false
}
