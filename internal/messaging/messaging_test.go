package messaging

import (
	"testing"

	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
)

func TestSendAndDirectDelivery(t *testing.T) {
	var got []Received
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}})
	b := NewEndpoint(Config{
		NodeID:    "b",
		Addresses: []string{"user:bob"},
		OnReceive: func(r Received) { got = append(got, r) },
	})
	msg, err := a.Send("user:alice", []string{"user:bob"}, []byte("hi bob"))
	if err != nil {
		t.Fatal(err)
	}
	replica.Encounter(a.Replica(), b.Replica(), 0)
	if len(got) != 1 {
		t.Fatalf("OnReceive fired %d times, want 1", len(got))
	}
	if got[0].At != "user:bob" || string(got[0].Message.Body) != "hi bob" {
		t.Errorf("received %+v", got[0])
	}
	if got[0].Message.ID != msg.ID || got[0].Message.From != "user:alice" {
		t.Errorf("message identity mismatch: %+v", got[0].Message)
	}
	if inbox := b.Inbox(); len(inbox) != 1 {
		t.Errorf("inbox size %d, want 1", len(inbox))
	}
}

func TestSendRequiresRecipient(t *testing.T) {
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}})
	if _, err := a.Send("user:alice", nil, nil); err == nil {
		t.Error("empty recipient list should fail")
	}
}

func TestExactlyOnceAcrossRepeatEncounters(t *testing.T) {
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}})
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}})
	if _, err := a.Send("user:alice", []string{"user:bob"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		replica.Encounter(a.Replica(), b.Replica(), 0)
	}
	if got := len(b.Inbox()); got != 1 {
		t.Errorf("inbox size %d, want exactly 1", got)
	}
}

func TestMultiAddressFilterRelaying(t *testing.T) {
	// §IV.B: relay volunteers for user:bob's messages via its filter.
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}})
	rel := NewEndpoint(Config{
		NodeID:               "r",
		Addresses:            []string{"user:relay"},
		ExtraFilterAddresses: []string{"user:bob"},
	})
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}})
	if _, err := a.Send("user:alice", []string{"user:bob"}, []byte("via relay")); err != nil {
		t.Fatal(err)
	}
	replica.Encounter(a.Replica(), rel.Replica(), 0)
	if len(rel.Inbox()) != 0 {
		t.Error("relay must not deliver messages it only carries")
	}
	replica.Encounter(rel.Replica(), b.Replica(), 0)
	if len(b.Inbox()) != 1 {
		t.Fatal("relayed message not delivered")
	}
}

func TestPolicyRouting(t *testing.T) {
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}, Policy: epidemic.New(10)})
	rel := NewEndpoint(Config{NodeID: "r", Addresses: []string{"user:relay"}, Policy: epidemic.New(10)})
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}, Policy: epidemic.New(10)})
	if _, err := a.Send("user:alice", []string{"user:bob"}, []byte("flooded")); err != nil {
		t.Fatal(err)
	}
	replica.Encounter(a.Replica(), rel.Replica(), 0)
	replica.Encounter(rel.Replica(), b.Replica(), 0)
	if len(b.Inbox()) != 1 {
		t.Fatal("epidemic relay failed")
	}
}

func TestRehomeDeliversHeldMessages(t *testing.T) {
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}, Policy: epidemic.New(10)})
	bus := NewEndpoint(Config{NodeID: "bus", Addresses: []string{"user:carol"}, Policy: epidemic.New(10)})
	if _, err := a.Send("user:alice", []string{"user:bob"}, []byte("hold this")); err != nil {
		t.Fatal(err)
	}
	replica.Encounter(a.Replica(), bus.Replica(), 0) // bus carries it as relay
	if len(bus.Inbox()) != 0 {
		t.Fatal("premature delivery")
	}
	bus.Rehome([]string{"user:bob"}, nil) // bob boards the bus
	if len(bus.Inbox()) != 1 {
		t.Fatal("held message not delivered on rehome")
	}
	if got := bus.Addresses(); len(got) != 1 || got[0] != "user:bob" {
		t.Errorf("Addresses() = %v", got)
	}
	// Rehoming away and back must not re-deliver.
	bus.Rehome([]string{"user:carol"}, nil)
	bus.Rehome([]string{"user:bob"}, nil)
	if got := len(bus.Inbox()); got != 1 {
		t.Errorf("inbox size %d after rehome cycle, want 1", got)
	}
}

func TestAckClearsForwarders(t *testing.T) {
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}, Policy: epidemic.New(10)})
	rel := NewEndpoint(Config{NodeID: "r", Addresses: []string{"user:relay"}, Policy: epidemic.New(10)})
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}, Policy: epidemic.New(10)})
	msg, err := a.Send("user:alice", []string{"user:bob"}, []byte("ack me"))
	if err != nil {
		t.Fatal(err)
	}
	replica.Encounter(a.Replica(), rel.Replica(), 0)
	replica.Encounter(rel.Replica(), b.Replica(), 0)
	if err := b.Ack(msg.ID); err != nil {
		t.Fatal(err)
	}
	replica.Encounter(b.Replica(), rel.Replica(), 0)
	if rel.Replica().HasItem(msg.ID) {
		t.Error("forwarder should discard acked message")
	}
	replica.Encounter(rel.Replica(), a.Replica(), 0)
	if a.Replica().HasItem(msg.ID) {
		t.Error("sender should discard acked message")
	}
}

func TestAckUnknownMessage(t *testing.T) {
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}})
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}})
	msg, _ := a.Send("user:alice", []string{"user:x"}, nil)
	if err := b.Ack(msg.ID); err == nil {
		t.Error("acking an unheld message should fail")
	}
}

func TestMulticastDelivery(t *testing.T) {
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}})
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}})
	c := NewEndpoint(Config{NodeID: "c", Addresses: []string{"user:carol"}})
	if _, err := a.Send("user:alice", []string{"user:bob", "user:carol"}, []byte("both")); err != nil {
		t.Fatal(err)
	}
	replica.Encounter(a.Replica(), b.Replica(), 0)
	replica.Encounter(a.Replica(), c.Replica(), 0)
	if len(b.Inbox()) != 1 || len(c.Inbox()) != 1 {
		t.Error("multicast should reach every recipient")
	}
}

func TestSendExpiring(t *testing.T) {
	var now int64
	clock := func() int64 { return now }
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}, Now: clock})
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}, Now: clock})
	if _, err := a.SendExpiring("user:alice", []string{"user:bob"}, []byte("x"), 0); err == nil {
		t.Error("non-positive lifetime should fail")
	}
	msg, err := a.SendExpiring("user:alice", []string{"user:bob"}, []byte("x"), 100)
	if err != nil {
		t.Fatal(err)
	}
	now = 100
	replica.Encounter(a.Replica(), b.Replica(), 0)
	if len(b.Inbox()) != 0 {
		t.Error("expired message delivered")
	}
	if b.Replica().HasItem(msg.ID) {
		t.Error("expired message stored")
	}
}

func TestSendExpiringDeliversWhileAlive(t *testing.T) {
	var now int64
	clock := func() int64 { return now }
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"}, Now: clock})
	b := NewEndpoint(Config{NodeID: "b", Addresses: []string{"user:bob"}, Now: clock})
	if _, err := a.SendExpiring("user:alice", []string{"user:bob"}, []byte("x"), 100); err != nil {
		t.Fatal(err)
	}
	now = 99
	replica.Encounter(a.Replica(), b.Replica(), 0)
	if len(b.Inbox()) != 1 {
		t.Error("live message not delivered")
	}
}

func TestEndpointPurgeExpired(t *testing.T) {
	var now int64
	clock := func() int64 { return now }
	a := NewEndpoint(Config{NodeID: "a", Addresses: []string{"user:alice"},
		Policy: epidemic.New(10), Now: clock})
	rel := NewEndpoint(Config{NodeID: "r", Addresses: []string{"user:relay"},
		Policy: epidemic.New(10), Now: clock})
	if _, err := a.SendExpiring("user:alice", []string{"user:bob"}, []byte("x"), 50); err != nil {
		t.Fatal(err)
	}
	replica.Encounter(a.Replica(), rel.Replica(), 0)
	now = 60
	if n := rel.PurgeExpired(); n != 1 {
		t.Errorf("purged %d, want 1", n)
	}
}
