package messaging

import (
	"testing"

	"replidtn/internal/item"
)

func deliverN(ep *Endpoint, start, n int) {
	for i := start; i < start+n; i++ {
		it := &item.Item{
			ID: item.ID{Creator: "src", Num: uint64(i)},
			Meta: item.Metadata{
				Source:       "src",
				Destinations: []string{"a"},
				Kind:         KindMessage,
			},
		}
		ep.deliver(it)
	}
}

// TestSeenSetBounded is the regression test for the unbounded delivery
// dedup set the dtnlint unboundedgrowth analyzer flagged: Endpoint.seen
// grew by one entry per delivered message forever. The fix rotates two
// generations of at most SeenCap entries each.
func TestSeenSetBounded(t *testing.T) {
	const cap = 64
	ep := NewEndpoint(Config{NodeID: "n1", Addresses: []string{"a"}, SeenCap: cap})
	deliverN(ep, 0, 10*cap)

	ep.mu.Lock()
	total := len(ep.seen) + len(ep.seenPrev)
	ep.mu.Unlock()
	if total > 2*cap {
		t.Fatalf("dedup set holds %d entries, want <= %d (2xSeenCap)", total, 2*cap)
	}
	if got := len(ep.Inbox()); got != 10*cap {
		t.Fatalf("inbox has %d messages, want %d (eviction must not drop deliveries)", got, 10*cap)
	}
}

// TestSeenSetStillDeduplicates verifies the bounded set still collapses
// repeat deliveries of recent messages: a redelivery inside the retention
// horizon must not reach the inbox twice.
func TestSeenSetStillDeduplicates(t *testing.T) {
	const cap = 64
	ep := NewEndpoint(Config{NodeID: "n1", Addresses: []string{"a"}, SeenCap: cap})
	deliverN(ep, 0, cap/2)
	deliverN(ep, 0, cap/2) // exact repeats, all within one generation
	if got := len(ep.Inbox()); got != cap/2 {
		t.Fatalf("inbox has %d messages after redelivery, want %d", got, cap/2)
	}
}

// TestTakeInboxDrains verifies the bounded-memory consumption API: the
// drain returns pending deliveries in order and releases them.
func TestTakeInboxDrains(t *testing.T) {
	ep := NewEndpoint(Config{NodeID: "n1", Addresses: []string{"a"}, SeenCap: 16})
	deliverN(ep, 0, 5)
	first := ep.TakeInbox()
	if len(first) != 5 {
		t.Fatalf("first drain returned %d messages, want 5", len(first))
	}
	if first[0].Message.ID != (item.ID{Creator: "src", Num: 0}) || first[4].Message.ID != (item.ID{Creator: "src", Num: 4}) {
		t.Fatalf("drain out of delivery order: first=%v last=%v", first[0].Message.ID, first[4].Message.ID)
	}
	if again := ep.TakeInbox(); len(again) != 0 {
		t.Fatalf("second drain returned %d messages, want 0", len(again))
	}
	deliverN(ep, 5, 2)
	if got := ep.TakeInbox(); len(got) != 2 {
		t.Fatalf("drain after new deliveries returned %d, want 2", len(got))
	}
}
