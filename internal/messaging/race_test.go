package messaging

import (
	"fmt"
	"sync"
	"testing"

	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/vclock"
)

// TestConcurrentSendsAndEncounters hammers one hub endpoint with parallel
// sends, encounters, and inbox reads. Run with -race; the invariant checked
// afterwards is exactly-once delivery of every message.
func TestConcurrentSendsAndEncounters(t *testing.T) {
	const (
		senders  = 6
		perSpoke = 10
	)
	hub := NewEndpoint(Config{
		NodeID:    "hub",
		Addresses: []string{"user:hub"},
		Policy:    epidemic.New(10),
	})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			spoke := NewEndpoint(Config{
				NodeID:    vclock.ReplicaID(fmt.Sprintf("spoke%d", s)),
				Addresses: []string{fmt.Sprintf("user:%d", s)},
				Policy:    epidemic.New(10),
			})
			for i := 0; i < perSpoke; i++ {
				if _, err := spoke.Send(fmt.Sprintf("user:%d", s), []string{"user:hub"}, []byte("m")); err != nil {
					t.Error(err)
					return
				}
				replica.Encounter(spoke.Replica(), hub.Replica(), 0)
				_ = hub.Inbox() // concurrent reader
			}
		}()
	}
	wg.Wait()
	if got := len(hub.Inbox()); got != senders*perSpoke {
		t.Errorf("hub inbox = %d, want %d", got, senders*perSpoke)
	}
	if hub.Replica().Stats().Duplicates != 0 {
		t.Error("duplicates under concurrency")
	}
}
