package messaging

import (
	"fmt"
	"sync"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/vclock"
)

// TestConcurrentOnCopies hammers a hub endpoint whose OnCopies callback
// tallies live-copy deltas while parallel spokes send and sync against it.
// Run with -race: the callback fires with the replica lock held, so per-
// replica calls are serialized, but callbacks from different replicas run
// concurrently and any shared sink must provide its own synchronization —
// exactly the contract the emulation engine's per-event recorders rely on.
func TestConcurrentOnCopies(t *testing.T) {
	const (
		senders  = 6
		perSpoke = 10
	)
	var (
		mu     sync.Mutex
		copies = map[string]int{}
	)
	onCopies := func(node string) func(id item.ID, delta int) {
		return func(id item.ID, delta int) {
			mu.Lock()
			copies[node+"/"+id.String()] += delta
			mu.Unlock()
		}
	}
	hub := NewEndpoint(Config{
		NodeID:    "hub",
		Addresses: []string{"user:hub"},
		Policy:    epidemic.New(10),
		OnCopies:  onCopies("hub"),
	})
	var wg sync.WaitGroup
	spokes := make([]*Endpoint, senders)
	for s := 0; s < senders; s++ {
		name := fmt.Sprintf("spoke%d", s)
		spokes[s] = NewEndpoint(Config{
			NodeID:    vclock.ReplicaID(name),
			Addresses: []string{fmt.Sprintf("user:%d", s)},
			Policy:    epidemic.New(10),
			OnCopies:  onCopies(name),
		})
	}
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSpoke; i++ {
				if _, err := spokes[s].Send(fmt.Sprintf("user:%d", s), []string{"user:hub"}, []byte("m")); err != nil {
					t.Error(err)
					return
				}
				replica.Encounter(spokes[s].Replica(), hub.Replica(), 0)
			}
		}()
	}
	wg.Wait()
	// Every accumulated per-(node,item) delta sum must equal the node's live
	// possession of the item: 1 if stored live, 0 otherwise.
	eps := append([]*Endpoint{hub}, spokes...)
	names := append([]string{"hub"}, func() []string {
		out := make([]string, senders)
		for s := range out {
			out[s] = fmt.Sprintf("spoke%d", s)
		}
		return out
	}()...)
	mu.Lock()
	defer mu.Unlock()
	for key, sum := range copies {
		if sum != 0 && sum != 1 {
			t.Errorf("copy delta sum for %s = %d, want 0 or 1", key, sum)
		}
	}
	total := 0
	for i, ep := range eps {
		_, live, _ := ep.Replica().StoreLen()
		held := 0
		for key, sum := range copies {
			if len(key) > len(names[i]) && key[:len(names[i])+1] == names[i]+"/" {
				held += sum
			}
		}
		if held != live {
			t.Errorf("%s: delta sum %d, live entries %d", names[i], held, live)
		}
		total += held
	}
	if total == 0 {
		t.Error("no live copies tallied")
	}
}

// TestConcurrentSendsAndEncounters hammers one hub endpoint with parallel
// sends, encounters, and inbox reads. Run with -race; the invariant checked
// afterwards is exactly-once delivery of every message.
func TestConcurrentSendsAndEncounters(t *testing.T) {
	const (
		senders  = 6
		perSpoke = 10
	)
	hub := NewEndpoint(Config{
		NodeID:    "hub",
		Addresses: []string{"user:hub"},
		Policy:    epidemic.New(10),
	})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			spoke := NewEndpoint(Config{
				NodeID:    vclock.ReplicaID(fmt.Sprintf("spoke%d", s)),
				Addresses: []string{fmt.Sprintf("user:%d", s)},
				Policy:    epidemic.New(10),
			})
			for i := 0; i < perSpoke; i++ {
				if _, err := spoke.Send(fmt.Sprintf("user:%d", s), []string{"user:hub"}, []byte("m")); err != nil {
					t.Error(err)
					return
				}
				replica.Encounter(spoke.Replica(), hub.Replica(), 0)
				_ = hub.Inbox() // concurrent reader
			}
		}()
	}
	wg.Wait()
	if got := len(hub.Inbox()); got != senders*perSpoke {
		t.Errorf("hub inbox = %d, want %d", got, senders*perSpoke)
	}
	if hub.Replica().Stats().Duplicates != 0 {
		t.Error("duplicates under concurrency")
	}
}
