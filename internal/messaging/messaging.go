// Package messaging implements the paper's DTN messaging application on top
// of the replication substrate — "one of the simplest applications one could
// imagine building on such a replication platform" (§IV.A).
//
// A message is a replicated item carrying a destination-address metadata
// attribute; a host's filter selects the messages addressed to it. Sending a
// message is inserting an item into the sender's replica; eventual filter
// consistency then guarantees delivery to every host whose filter matches,
// and knowledge exchange guarantees each host receives it at most once. A
// recipient may delete a processed message, and the tombstone's propagation
// discards the copies held by forwarding nodes without any special
// acknowledgement machinery.
package messaging

import (
	"fmt"
	"sync"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// KindMessage is the item kind used for DTN messages.
const KindMessage = "dtn/message"

// Message is the application-level view of a delivered or sent message.
type Message struct {
	// ID is the replicated item's ID, unique network-wide.
	ID item.ID
	// From is the sender's endpoint address.
	From string
	// To lists the recipient endpoint addresses.
	To []string
	// SentAt is the send time in seconds (simulation or Unix time).
	SentAt int64
	// Body is the message payload.
	Body []byte
}

// Received pairs a delivered message with its receiving endpoint address.
type Received struct {
	Message Message
	// At is the local address the message was delivered to.
	At string
}

// Endpoint is a messaging endpoint bound to one replica (one device). It
// tracks the endpoint addresses homed on the device, translates messages to
// and from replicated items, and deduplicates deliveries so the application
// sees each message exactly once even across address reassignment.
type Endpoint struct {
	mu        sync.Mutex
	replica   *replica.Replica
	addresses []string
	inbox     []Received
	// seen/seenPrev form a two-generation dedup set: lookups consult both,
	// inserts go to seen, and when seen reaches seenCap the generations
	// rotate (seenPrev is dropped wholesale). Memory is bounded by
	// 2×seenCap entries while the most recent seenCap deliveries always
	// dedup exactly — the bounded replacement for the unbounded map the
	// dtnlint unboundedgrowth analyzer flagged (SummaryPeerCap bug class).
	seen      map[item.ID]struct{}
	seenPrev  map[item.ID]struct{}
	seenCap   int
	onReceive func(Received)
	now       func() int64
}

// DefaultSeenCap is the per-generation size of the delivery dedup set. An
// endpoint remembers at least this many of its most recent deliveries (and
// at most twice as many); a message re-delivered across address epochs
// after that horizon would be surfaced to the application again.
const DefaultSeenCap = 1 << 16

// Config configures a messaging endpoint.
type Config struct {
	// NodeID is the replica/device identifier.
	NodeID vclock.ReplicaID
	// Addresses are the endpoint addresses initially homed on this device.
	Addresses []string
	// ExtraFilterAddresses are additional addresses the device volunteers to
	// carry messages for (the paper's §IV.B multi-address filters).
	ExtraFilterAddresses []string
	// Policy is the optional DTN routing policy.
	Policy routing.Policy
	// RelayCapacity bounds relayed messages (<= 0 unlimited).
	RelayCapacity int
	// Eviction orders relayed messages for eviction under storage pressure;
	// nil selects FIFO.
	Eviction store.EvictionStrategy
	// OnReceive, when set, is called for every first-time delivery.
	OnReceive func(Received)
	// OnCopies, when set, observes live-copy transitions in the backing
	// replica's store (see replica.Config.OnCopies). Called with the replica
	// lock held.
	OnCopies func(id item.ID, delta int)
	// Now supplies time in seconds; defaults to a zero clock (useful only
	// for tests — emulations always supply the simulation clock).
	Now func() int64
	// Metrics, when set, receives the backing replica's sync/apply counters.
	// The same instance may back several endpoints to aggregate across an
	// emulated fleet. Nil (the default) disables instrumentation entirely.
	Metrics *obs.ReplicaMetrics
	// StoreMetrics, when set, receives the backing store's occupancy gauges
	// and eviction counter. Nil disables instrumentation.
	StoreMetrics *obs.StoreMetrics
	// SyncSummaries enables the compact knowledge summary protocol on the
	// backing replica (Bloom digests and delta knowledge; see
	// replica.Config.SyncSummaries). Takes effect only on encounters
	// negotiated at protocol v2.
	SyncSummaries bool
	// SummaryFPRate is the Bloom digest's target false-positive rate; 0
	// selects the default (see replica.Config.SummaryFPRate).
	SummaryFPRate float64
	// SummaryDigestMin is the exception-count threshold below which exact
	// knowledge is sent instead of a digest; 0 selects the default.
	SummaryDigestMin int
	// SeenCap bounds the delivery dedup set per generation; 0 selects
	// DefaultSeenCap. Deliveries older than two generations may be
	// surfaced again if the item recurs across an address epoch.
	SeenCap int
}

// NewEndpoint creates a messaging endpoint and its backing replica.
func NewEndpoint(cfg Config) *Endpoint {
	ep := &Endpoint{
		addresses: append([]string(nil), cfg.Addresses...),
		seen:      make(map[item.ID]struct{}),
		seenCap:   cfg.SeenCap,
		onReceive: cfg.OnReceive,
		now:       cfg.Now,
	}
	if ep.seenCap <= 0 {
		ep.seenCap = DefaultSeenCap
	}
	if ep.now == nil {
		ep.now = func() int64 { return 0 }
	}
	filterAddrs := append(append([]string(nil), cfg.Addresses...), cfg.ExtraFilterAddresses...)
	ep.replica = replica.New(replica.Config{
		ID:               cfg.NodeID,
		OwnAddresses:     cfg.Addresses,
		Filter:           filter.NewAddresses(filterAddrs...),
		RelayCapacity:    cfg.RelayCapacity,
		Eviction:         cfg.Eviction,
		Policy:           cfg.Policy,
		OnDeliver:        ep.deliver,
		OnCopies:         cfg.OnCopies,
		Now:              ep.now,
		Metrics:          cfg.Metrics,
		StoreMetrics:     cfg.StoreMetrics,
		SyncSummaries:    cfg.SyncSummaries,
		SummaryFPRate:    cfg.SummaryFPRate,
		SummaryDigestMin: cfg.SummaryDigestMin,
	})
	return ep
}

// Replica exposes the endpoint's backing replica for synchronization.
func (ep *Endpoint) Replica() *replica.Replica { return ep.replica }

// Addresses returns the endpoint addresses currently homed on this device.
func (ep *Endpoint) Addresses() []string {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return append([]string(nil), ep.addresses...)
}

// Send creates and injects a message from the given local address.
func (ep *Endpoint) Send(from string, to []string, body []byte) (Message, error) {
	return ep.send(from, to, body, 0)
}

// SendExpiring creates a message with a bounded lifetime: after lifetime
// seconds the message stops being forwarded or delivered and relays purge it.
func (ep *Endpoint) SendExpiring(from string, to []string, body []byte, lifetime int64) (Message, error) {
	if lifetime <= 0 {
		return Message{}, fmt.Errorf("messaging: lifetime must be positive")
	}
	return ep.send(from, to, body, ep.now()+lifetime)
}

func (ep *Endpoint) send(from string, to []string, body []byte, expires int64) (Message, error) {
	if len(to) == 0 {
		return Message{}, fmt.Errorf("messaging: message needs at least one recipient")
	}
	meta := item.Metadata{
		Source:       from,
		Destinations: append([]string(nil), to...),
		Kind:         KindMessage,
		Created:      ep.now(),
		Expires:      expires,
	}
	it := ep.replica.CreateItem(meta, body)
	return toMessage(it), nil
}

// PurgeExpired drops expired relayed messages from the local store.
func (ep *Endpoint) PurgeExpired() int { return ep.replica.PurgeExpired() }

// Rehome changes the endpoint addresses homed on this device (e.g. users
// boarding a different bus) and rebuilds the filter as own ∪ extra addresses.
// Messages already held for a newly homed address are delivered immediately.
func (ep *Endpoint) Rehome(addresses, extraFilterAddresses []string) {
	ep.mu.Lock()
	ep.addresses = append(ep.addresses[:0], addresses...)
	ep.mu.Unlock()
	filterAddrs := append(append([]string(nil), addresses...), extraFilterAddresses...)
	// SetIdentity triggers delivery callbacks for newly matching items.
	ep.replica.SetIdentity(addresses, filter.NewAddresses(filterAddrs...))
	type addressed interface{ SetOwnAddresses(...string) }
	if p, ok := ep.replica.Policy().(addressed); ok {
		p.SetOwnAddresses(addresses...)
	}
}

// Inbox returns the messages delivered so far, in delivery order. The
// buffer keeps accumulating; long-running applications should prefer
// TakeInbox (or OnReceive) to keep memory bounded.
func (ep *Endpoint) Inbox() []Received {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return append([]Received(nil), ep.inbox...)
}

// TakeInbox drains the inbox: it returns the messages delivered since the
// last drain, in delivery order, and releases them. This is the
// bounded-memory consumption API for long-running endpoints.
func (ep *Endpoint) TakeInbox() []Received {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	out := ep.inbox
	ep.inbox = nil
	return out
}

// Ack deletes a received message from the local replica; the tombstone
// replicates outward and clears forwarders' copies.
func (ep *Endpoint) Ack(id item.ID) error {
	_, err := ep.replica.DeleteItem(id)
	return err
}

// deliver is the replica's delivery callback. The replica guarantees it fires
// at most once per (item, address-epoch); the seen set collapses repeats
// across epochs so the application sees each message exactly once.
func (ep *Endpoint) deliver(it *item.Item) {
	ep.mu.Lock()
	if _, dup := ep.seen[it.ID]; dup {
		ep.mu.Unlock()
		return
	}
	if _, dup := ep.seenPrev[it.ID]; dup {
		ep.mu.Unlock()
		return
	}
	ep.seen[it.ID] = struct{}{}
	if len(ep.seen) >= ep.seenCap {
		// Rotate generations: the previous generation is dropped wholesale,
		// bounding the dedup set at 2×seenCap entries.
		ep.seenPrev = ep.seen
		ep.seen = make(map[item.ID]struct{}, ep.seenCap)
	}
	at := ""
	for _, d := range it.Meta.Destinations {
		for _, a := range ep.addresses {
			if d == a {
				at = a
				break
			}
		}
		if at != "" {
			break
		}
	}
	rcv := Received{Message: toMessage(it), At: at}
	ep.inbox = append(ep.inbox, rcv)
	cb := ep.onReceive
	ep.mu.Unlock()
	if cb != nil {
		cb(rcv)
	}
}

func toMessage(it *item.Item) Message {
	return Message{
		ID:     it.ID,
		From:   it.Meta.Source,
		To:     append([]string(nil), it.Meta.Destinations...),
		SentAt: it.Meta.Created,
		Body:   append([]byte(nil), it.Payload...),
	}
}
