// Package filter implements the content-based filters of a peer-to-peer
// filtered replication system: query-like predicates over item metadata that
// define which items each replica receives and stores.
//
// For the DTN messaging application a host's filter is an address filter
// selecting the messages addressed to it; multi-hop forwarding via filters
// (§IV.B of the paper) simply adds further addresses to the set. The Covers
// relation supports conservative reasoning about filter containment.
package filter

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"

	"replidtn/internal/item"
)

// Filter is a predicate over item metadata deciding whether an item belongs
// in a replica's store.
type Filter interface {
	// Match reports whether the item is selected by the filter.
	Match(it *item.Item) bool
	// Covers conservatively reports whether this filter selects every item
	// the other filter selects. Implementations must return false when they
	// cannot prove containment.
	Covers(other Filter) bool
	// String renders the filter for logs and wire debugging.
	String() string
}

// All selects every item. A replica with the All filter is a full replica —
// under pure flooding this is the "everyone relays everything" extreme the
// paper notes filters converge to.
type All struct{}

// Match implements Filter.
func (All) Match(*item.Item) bool { return true }

// Covers implements Filter: the all-filter covers anything.
func (All) Covers(Filter) bool { return true }

// String implements Filter.
func (All) String() string { return "all" }

// None selects nothing; useful for pure-relay endpoints and tests.
type None struct{}

// Match implements Filter.
func (None) Match(*item.Item) bool { return false }

// Covers implements Filter: only another None is covered.
func (n None) Covers(other Filter) bool {
	_, ok := other.(None)
	return ok
}

// String implements Filter.
func (None) String() string { return "none" }

// Addresses selects items whose destination list intersects a set of
// addresses. This is the host filter of the DTN messaging application: at
// minimum it contains the host's own address, and it may include further
// addresses to enlist the host as a forwarder for them.
type Addresses struct {
	addrs map[string]struct{}
}

// NewAddresses builds an address filter over the given destination addresses.
func NewAddresses(addrs ...string) *Addresses {
	f := &Addresses{addrs: make(map[string]struct{}, len(addrs))}
	for _, a := range addrs {
		f.addrs[a] = struct{}{}
	}
	return f
}

// Match implements Filter.
func (f *Addresses) Match(it *item.Item) bool {
	for _, d := range it.Meta.Destinations {
		if _, ok := f.addrs[d]; ok {
			return true
		}
	}
	return false
}

// Covers implements Filter: an address filter covers another address filter
// whose address set is a subset, and covers None.
func (f *Addresses) Covers(other Filter) bool {
	switch o := other.(type) {
	case None:
		return true
	case *Addresses:
		for a := range o.addrs {
			if _, ok := f.addrs[a]; !ok {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Contains reports whether the filter includes the given address.
func (f *Addresses) Contains(addr string) bool {
	_, ok := f.addrs[addr]
	return ok
}

// Add inserts an address into the filter.
func (f *Addresses) Add(addr string) {
	if f.addrs == nil {
		f.addrs = make(map[string]struct{})
	}
	f.addrs[addr] = struct{}{}
}

// List returns the addresses in sorted order.
func (f *Addresses) List() []string {
	out := make([]string, 0, len(f.addrs))
	for a := range f.addrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of addresses in the filter.
func (f *Addresses) Len() int { return len(f.addrs) }

// String implements Filter.
func (f *Addresses) String() string {
	return "addr(" + strings.Join(f.List(), ",") + ")"
}

// GobEncode implements gob.GobEncoder so address filters can travel inside
// wire-encoded sync requests: the address set is encoded as its sorted list.
func (f *Addresses) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f.List()); err != nil {
		return nil, fmt.Errorf("filter: encode addresses: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (f *Addresses) GobDecode(data []byte) error {
	var addrs []string
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&addrs); err != nil {
		return fmt.Errorf("filter: decode addresses: %w", err)
	}
	f.addrs = make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		f.addrs[a] = struct{}{}
	}
	return nil
}

// Or selects items matching any member filter.
type Or struct {
	Members []Filter
}

// NewOr builds a union filter.
func NewOr(members ...Filter) *Or { return &Or{Members: members} }

// Match implements Filter.
func (f *Or) Match(it *item.Item) bool {
	for _, m := range f.Members {
		if m.Match(it) {
			return true
		}
	}
	return false
}

// Covers implements Filter: true when some member covers the other filter,
// or when the other is a union each of whose members is covered.
func (f *Or) Covers(other Filter) bool {
	if o, ok := other.(*Or); ok {
		for _, om := range o.Members {
			if !f.Covers(om) {
				return false
			}
		}
		return true
	}
	for _, m := range f.Members {
		if m.Covers(other) {
			return true
		}
	}
	return false
}

// String implements Filter.
func (f *Or) String() string {
	parts := make([]string, len(f.Members))
	for i, m := range f.Members {
		parts[i] = m.String()
	}
	return "or(" + strings.Join(parts, ",") + ")"
}

// Kind selects items of a given application kind.
type Kind struct {
	Name string
}

// Match implements Filter.
func (f Kind) Match(it *item.Item) bool { return it.Meta.Kind == f.Name }

// Covers implements Filter.
func (f Kind) Covers(other Filter) bool {
	if o, ok := other.(Kind); ok {
		return o.Name == f.Name
	}
	_, none := other.(None)
	return none
}

// String implements Filter.
func (f Kind) String() string { return "kind(" + f.Name + ")" }
