package filter

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"replidtn/internal/item"
)

func msgTo(dests ...string) *item.Item {
	return &item.Item{Meta: item.Metadata{Kind: "message", Destinations: dests}}
}

func TestAllMatchesEverything(t *testing.T) {
	if !(All{}).Match(msgTo()) || !(All{}).Match(msgTo("x")) {
		t.Error("All must match every item")
	}
}

func TestNoneMatchesNothing(t *testing.T) {
	if (None{}).Match(msgTo("x")) {
		t.Error("None must match nothing")
	}
}

func TestAddressesMatch(t *testing.T) {
	f := NewAddresses("user:1", "user:2")
	if !f.Match(msgTo("user:2")) {
		t.Error("expected match on listed address")
	}
	if !f.Match(msgTo("user:9", "user:1")) {
		t.Error("expected match when any destination is listed")
	}
	if f.Match(msgTo("user:9")) {
		t.Error("unexpected match on unlisted address")
	}
	if f.Match(msgTo()) {
		t.Error("unexpected match on item with no destinations")
	}
}

func TestAddressesAddContainsList(t *testing.T) {
	f := NewAddresses("b")
	f.Add("a")
	if !f.Contains("a") || !f.Contains("b") || f.Contains("c") {
		t.Error("Contains mismatch after Add")
	}
	got := f.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List() = %v, want sorted [a b]", got)
	}
	if f.Len() != 2 {
		t.Errorf("Len() = %d", f.Len())
	}
}

func TestAddressesZeroValueAdd(t *testing.T) {
	var f Addresses
	f.Add("x")
	if !f.Contains("x") {
		t.Error("zero-value Addresses should accept Add")
	}
}

func TestCoversRelations(t *testing.T) {
	a := NewAddresses("u1")
	ab := NewAddresses("u1", "u2")
	cases := []struct {
		name  string
		f, g  Filter
		wants bool
	}{
		{"all covers addresses", All{}, ab, true},
		{"all covers none", All{}, None{}, true},
		{"addresses do not cover all", ab, All{}, false},
		{"superset covers subset", ab, a, true},
		{"subset does not cover superset", a, ab, false},
		{"addresses cover none", a, None{}, true},
		{"none covers none", None{}, None{}, true},
		{"none does not cover addresses", None{}, a, false},
		{"kind covers same kind", Kind{Name: "m"}, Kind{Name: "m"}, true},
		{"kind does not cover other kind", Kind{Name: "m"}, Kind{Name: "n"}, false},
		{"or covers member", NewOr(a, Kind{Name: "m"}), a, true},
		{"or covers or of covered", NewOr(ab), NewOr(a), true},
		{"or does not cover uncovered", NewOr(a), ab, false},
	}
	for _, tc := range cases {
		if got := tc.f.Covers(tc.g); got != tc.wants {
			t.Errorf("%s: Covers = %v, want %v", tc.name, got, tc.wants)
		}
	}
}

func TestOrMatch(t *testing.T) {
	f := NewOr(NewAddresses("u1"), Kind{Name: "news"})
	if !f.Match(msgTo("u1")) {
		t.Error("or should match via address member")
	}
	news := &item.Item{Meta: item.Metadata{Kind: "news"}}
	if !f.Match(news) {
		t.Error("or should match via kind member")
	}
	if f.Match(msgTo("u2")) {
		t.Error("or should not match unrelated item")
	}
}

func TestKindMatch(t *testing.T) {
	f := Kind{Name: "message"}
	if !f.Match(msgTo("x")) {
		t.Error("kind filter should match message items")
	}
	if f.Match(&item.Item{Meta: item.Metadata{Kind: "photo"}}) {
		t.Error("kind filter should not match other kinds")
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		f    Filter
		want string
	}{
		{All{}, "all"},
		{None{}, "none"},
		{NewAddresses("b", "a"), "addr(a,b)"},
		{Kind{Name: "m"}, "kind(m)"},
		{NewOr(None{}, All{}), "or(none,all)"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestPropCoversImpliesMatchContainment checks the soundness contract of
// Covers on random address filters: if f.Covers(g) then every item g matches
// must also match f.
func TestPropCoversImpliesMatchContainment(t *testing.T) {
	addrs := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pick := func() *Addresses {
			f := NewAddresses()
			for _, a := range addrs {
				if rng.Intn(2) == 0 {
					f.Add(a)
				}
			}
			return f
		}
		fa, fb := pick(), pick()
		if !fa.Covers(fb) {
			return true // vacuously fine
		}
		for _, a := range addrs {
			it := msgTo(a)
			if fb.Match(it) && !fa.Match(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressesGobRoundTrip(t *testing.T) {
	in := NewAddresses("user:b", "user:a")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out Addresses
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.List(), out.List()) {
		t.Errorf("round trip = %v, want %v", out.List(), in.List())
	}
	if !out.Match(msgTo("user:a")) {
		t.Error("decoded filter does not match")
	}
}

func TestAddressesGobDecodeGarbage(t *testing.T) {
	var f Addresses
	if err := f.GobDecode([]byte{0x01, 0x02}); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestFilterInterfaceViaGob(t *testing.T) {
	gob.Register(&Addresses{})
	gob.Register(All{})
	var buf bytes.Buffer
	var in Filter = NewAddresses("x")
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out Filter
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Match(msgTo("x")) {
		t.Error("interface-encoded filter lost behavior")
	}
}
