package mobility

import (
	"fmt"
	"strconv"
	"strings"

	"replidtn/internal/trace"
)

// Parse turns a compact scenario spec string into a trace.Scenario. The
// format is model:key=value,... — for example:
//
//	rwp:n=100000,seed=7
//	community:n=500,days=3,cells=6,bias=0.9
//	corridor:n=1000,lanes=16,range=150
//	dieselnet:seed=3,days=17
//	dir:/path/to/trace
//
// Shared keys for the mobility models (rwp, community, corridor): n (node
// count), days, seed, area (meters; 0 auto-scales), spacing, range, speed
// (min-max band, e.g. speed=2-12), tick, active (daily window seconds),
// users, msgs, injectdays. dieselnet accepts seed, days, fleet, users,
// msgs. dir takes a trace directory path instead of key=value pairs.
func Parse(spec string) (trace.Scenario, error) {
	model, rest, _ := strings.Cut(spec, ":")
	switch model {
	case "dir":
		if rest == "" {
			return nil, fmt.Errorf("mobility: dir spec needs a path, e.g. dir:/data/trace")
		}
		tr, err := trace.LoadDir(rest)
		if err != nil {
			return nil, err
		}
		return trace.FromTrace(spec, tr), nil
	case "dieselnet":
		return parseDieselNet(rest)
	case "rwp", "community", "corridor":
		return parseMobility(model, rest)
	default:
		return nil, fmt.Errorf("mobility: unknown scenario model %q (want rwp, community, corridor, dieselnet, or dir)", model)
	}
}

func parseDieselNet(rest string) (trace.Scenario, error) {
	dn := trace.DefaultDieselNet()
	wl := trace.DefaultWorkload()
	err := eachKV(rest, func(key, val string) error {
		switch key {
		case "seed":
			s, err := parseInt64(key, val)
			if err != nil {
				return err
			}
			dn.Seed, wl.Seed = s, s+1
		case "days":
			d, err := parsePosInt(key, val)
			if err != nil {
				return err
			}
			dn.Days = d
			if wl.InjectDays > d {
				wl.InjectDays = d
			}
		case "fleet":
			f, err := parsePosInt(key, val)
			if err != nil {
				return err
			}
			dn.FleetSize = f
			if dn.ActivePerDay > f {
				dn.ActivePerDay = f
			}
		case "users":
			u, err := parsePosInt(key, val)
			if err != nil {
				return err
			}
			wl.Users = u
		case "msgs":
			m, err := parsePosInt(key, val)
			if err != nil {
				return err
			}
			wl.Messages = m
		default:
			return fmt.Errorf("mobility: dieselnet: unknown key %q (want seed, days, fleet, users, msgs)", key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tr, err := trace.Generate(dn, wl, dn.Seed)
	if err != nil {
		return nil, err
	}
	return trace.FromTrace("dieselnet", tr), nil
}

func parseMobility(model, rest string) (trace.Scenario, error) {
	cfg := Defaults()
	cells, bias, lanes := 4, 0.8, 8
	err := eachKV(rest, func(key, val string) error {
		var err error
		switch key {
		case "n":
			cfg.Nodes, err = parsePosInt(key, val)
		case "days":
			cfg.Days, err = parsePosInt(key, val)
			if err == nil && cfg.InjectDays > cfg.Days {
				cfg.InjectDays = cfg.Days
			}
		case "seed":
			cfg.Seed, err = parseInt64(key, val)
		case "area":
			cfg.Area, err = parseFloat(key, val)
		case "spacing":
			cfg.Spacing, err = parseFloat(key, val)
		case "range":
			cfg.Range, err = parseFloat(key, val)
		case "speed":
			lo, hi, ok := strings.Cut(val, "-")
			if !ok {
				return fmt.Errorf("mobility: speed wants a min-max band like speed=2-12, have %q", val)
			}
			if cfg.SpeedMin, err = parseFloat(key, lo); err != nil {
				return err
			}
			cfg.SpeedMax, err = parseFloat(key, hi)
		case "tick":
			var t int
			t, err = parsePosInt(key, val)
			cfg.TickSeconds = int64(t)
		case "active":
			var a int
			a, err = parsePosInt(key, val)
			cfg.ActiveSeconds = int64(a)
		case "users":
			cfg.Users, err = parsePosInt(key, val)
		case "msgs":
			cfg.Messages, err = parsePosInt(key, val)
		case "injectdays":
			cfg.InjectDays, err = parsePosInt(key, val)
		case "cells":
			if model != "community" {
				return fmt.Errorf("mobility: key %q only applies to community", key)
			}
			cells, err = parsePosInt(key, val)
		case "bias":
			if model != "community" {
				return fmt.Errorf("mobility: key %q only applies to community", key)
			}
			bias, err = parseFloat(key, val)
		case "lanes":
			if model != "corridor" {
				return fmt.Errorf("mobility: key %q only applies to corridor", key)
			}
			lanes, err = parsePosInt(key, val)
		default:
			return fmt.Errorf("mobility: %s: unknown key %q (want n, days, seed, area, spacing, range, speed, tick, active, users, msgs, injectdays%s)",
				model, key, modelKeys(model))
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	switch model {
	case "rwp":
		return NewRWP(cfg)
	case "community":
		return NewCommunity(cfg, cells, bias)
	default:
		return NewCorridor(cfg, lanes)
	}
}

func modelKeys(model string) string {
	switch model {
	case "community":
		return ", cells, bias"
	case "corridor":
		return ", lanes"
	}
	return ""
}

// eachKV walks comma-separated key=value pairs in order (no map, so error
// reporting and any future order-sensitive keys stay deterministic).
func eachKV(rest string, fn func(key, val string) error) error {
	if rest == "" {
		return nil
	}
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		if !ok || key == "" || val == "" {
			return fmt.Errorf("mobility: malformed option %q (want key=value)", pair)
		}
		if err := fn(key, val); err != nil {
			return err
		}
	}
	return nil
}

func parsePosInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("mobility: %s wants a positive integer, have %q", key, val)
	}
	return n, nil
}

func parseInt64(key, val string) (int64, error) {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mobility: %s wants an integer, have %q", key, val)
	}
	return n, nil
}

func parseFloat(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("mobility: %s wants a non-negative number, have %q", key, val)
	}
	return f, nil
}
