package mobility

import (
	"fmt"

	"replidtn/internal/trace"
)

// Corridor is a geographic-corridor model patterned on vehicular fleets:
// nodes shuttle back and forth along fixed lanes — alternating horizontal
// and vertical lines across the playground — reflecting at the boundary.
// Contacts happen when vehicles pass on the same lane or cross at a lane
// intersection, giving the recurring, route-structured encounter pattern of
// the DieselNet buses but at arbitrary scale.
type Corridor struct {
	base
	Lanes int
}

// NewCorridor validates the configuration; node i runs lane i mod Lanes.
func NewCorridor(cfg Common, lanes int) (*Corridor, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	if lanes < 1 {
		return nil, fmt.Errorf("mobility: corridor needs at least 1 lane, have %d", lanes)
	}
	return &Corridor{base: b, Lanes: lanes}, nil
}

func (s *Corridor) Name() string { return "corridor" }

func (s *Corridor) Encounters(yield func(trace.Encounter) bool) {
	streamContacts(s.cfg, s.nodes, newCorridorSim(s.cfg, s.Lanes), yield)
}

type corridorSim struct {
	side  float64
	pos   []float64 // coordinate along the lane
	dir   []float64 // +1 or -1
	speed []float64
	lane  []int32 // lane index; even lanes horizontal, odd vertical
	coord []float64
}

func newCorridorSim(cfg Common, lanes int) *corridorSim {
	n := cfg.Nodes
	side := cfg.side()
	c := &corridorSim{
		side:  side,
		pos:   make([]float64, n),
		dir:   make([]float64, n),
		speed: make([]float64, n),
		lane:  make([]int32, n),
		coord: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		rng := seedStream(cfg.Seed, uint64(i))
		lane := i % lanes
		c.lane[i] = int32(lane)
		// Lanes are spread evenly across the interior so horizontal and
		// vertical corridors intersect away from the boundary.
		c.coord[i] = side * float64(lane+1) / float64(lanes+1)
		c.pos[i] = unitRand(&rng) * side
		c.speed[i] = spanRand(&rng, cfg.SpeedMin, cfg.SpeedMax)
		if nextRand(&rng)&1 == 0 {
			c.dir[i] = 1
		} else {
			c.dir[i] = -1
		}
	}
	return c
}

func (c *corridorSim) step(i int, dt float64) (float64, float64) {
	p := c.pos[i] + c.dir[i]*c.speed[i]*dt
	// Reflect at the boundary; with tick displacements far below the side
	// length a single fold per end suffices.
	if p > c.side {
		p = 2*c.side - p
		c.dir[i] = -1
	}
	if p < 0 {
		p = -p
		c.dir[i] = 1
	}
	c.pos[i] = p
	if c.lane[i]%2 == 0 {
		return p, c.coord[i]
	}
	return c.coord[i], p
}
