// Package mobility provides deterministic synthetic mobility scenarios for
// the emulation engine: random-waypoint, community (home-cell), and
// geographic-corridor models. Each model simulates node movement on a square
// area in discrete ticks, detects radio contacts with a uniform grid, and
// streams contact-start events as trace.Encounters — the schedule is never
// materialized by the generator itself, so scenarios far larger than memory
// can be exported tick by tick (trace.Materialize collects them when the
// in-memory engine needs random access).
//
// Determinism is a hard requirement (differential tests replay scenarios and
// compare engine output byte for byte), so every draw comes from per-node
// splitmix64 streams derived from the scenario seed; the package never
// touches wall clocks or global randomness, and dtnlint's determinism
// analyzer enforces that mechanically.
package mobility

import (
	"fmt"
	"math"
	"sort"

	"replidtn/internal/trace"
)

// Common holds the parameters shared by every mobility model. The zero value
// is not usable; start from Defaults.
type Common struct {
	Nodes int   // fleet size
	Days  int   // experiment length in days
	Seed  int64 // root of every random draw in the scenario

	// Geometry. Area is the side of the square playground in meters; 0
	// auto-scales it to sqrt(Nodes)*Spacing so node density — and with it
	// the per-node contact rate — stays constant as the fleet grows.
	Area    float64
	Spacing float64 // meters of side per sqrt(node) when Area is 0
	Range   float64 // radio range in meters

	// Kinematics. Node speeds are drawn uniformly from [SpeedMin, SpeedMax].
	SpeedMin float64 // m/s
	SpeedMax float64 // m/s

	// TickSeconds is the contact-detection timestep. ActiveSeconds bounds
	// the daily operating window (like the DieselNet service day): contacts
	// are only detected during the first ActiveSeconds of each day.
	TickSeconds   int64
	ActiveSeconds int64

	// Workload: Messages injections between Users endpoints during the
	// first InjectDays days. Users ride fixed nodes (user i on node i mod
	// Nodes) for the whole experiment.
	Users      int
	Messages   int
	InjectDays int
}

// Defaults returns a small but non-trivial parameterization: a sparse
// DTN-like density (≈0.03 expected neighbors per node) over a 4-hour daily
// window.
func Defaults() Common {
	return Common{
		Nodes:         50,
		Days:          1,
		Seed:          1,
		Spacing:       1000,
		Range:         100,
		SpeedMin:      1,
		SpeedMax:      10,
		TickSeconds:   60,
		ActiveSeconds: 4 * 3600,
		Users:         20,
		Messages:      100,
		InjectDays:    1,
	}
}

func (c Common) validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("mobility: need at least 2 nodes, have %d", c.Nodes)
	case c.Days < 1:
		return fmt.Errorf("mobility: need at least 1 day, have %d", c.Days)
	case c.Range <= 0:
		return fmt.Errorf("mobility: radio range must be positive, have %v", c.Range)
	case c.Area < 0 || (c.Area == 0 && c.Spacing <= 0):
		return fmt.Errorf("mobility: need a positive area or spacing")
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("mobility: invalid speed band [%v, %v]", c.SpeedMin, c.SpeedMax)
	case c.TickSeconds <= 0:
		return fmt.Errorf("mobility: tick must be positive, have %d", c.TickSeconds)
	case c.ActiveSeconds <= 0 || c.ActiveSeconds > trace.SecondsPerDay:
		return fmt.Errorf("mobility: daily window %d outside (0, %d]", c.ActiveSeconds, trace.SecondsPerDay)
	case c.Users < 2:
		return fmt.Errorf("mobility: need at least 2 users, have %d", c.Users)
	case c.Messages < 0:
		return fmt.Errorf("mobility: negative message count %d", c.Messages)
	case c.InjectDays < 1 || c.InjectDays > c.Days:
		return fmt.Errorf("mobility: inject days %d outside [1, %d]", c.InjectDays, c.Days)
	}
	return nil
}

// side resolves the playground side length, auto-scaling for constant
// density when Area is unset.
func (c Common) side() float64 {
	if c.Area > 0 {
		return c.Area
	}
	return math.Sqrt(float64(c.Nodes)) * c.Spacing
}

// splitmix64: the per-node PRNG. One uint64 of state per stream keeps
// 100k-node scenarios at 8 bytes of generator state per node (a rand.Rand
// is ~5KB), and advancing a stream is a handful of integer ops.
func nextRand(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitRand draws a float64 in [0, 1).
func unitRand(state *uint64) float64 {
	return float64(nextRand(state)>>11) / (1 << 53)
}

// spanRand draws uniformly from [lo, hi).
func spanRand(state *uint64, lo, hi float64) float64 {
	return lo + unitRand(state)*(hi-lo)
}

// intRand draws uniformly from [0, n).
func intRand(state *uint64, n int) int {
	return int(nextRand(state) % uint64(n))
}

// seedStream derives an independent splitmix64 state for stream i of the
// scenario seed.
func seedStream(seed int64, i uint64) uint64 {
	s := uint64(seed) ^ 0x6a09e667f3bcc909
	s += 0x9e3779b97f4a7c15 * (i + 1)
	z := (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 27)
}

// workloadStream and homeStream are reserved stream indices past the
// per-node movement streams (node i uses stream i).
const (
	workloadStream = 1 << 40
	homeStream     = 1<<40 + 1
)

// nodeNames builds the zero-padded fleet roster; padding makes index order
// and lexicographic order coincide, so pair emission sorted by index is
// also sorted by name.
func nodeNames(n int) []string {
	width := len(fmt.Sprint(n - 1))
	if width < 3 {
		width = 3
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%0*d", width, i)
	}
	return out
}

func userNames(n int) []string {
	width := len(fmt.Sprint(n - 1))
	if width < 3 {
		width = 3
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("u%0*d", width, i)
	}
	return out
}

// base provides the model-independent Scenario methods. The three models
// embed it and supply only their movement simulation.
type base struct {
	cfg   Common
	nodes []string
	users []string
}

func newBase(cfg Common) (base, error) {
	if err := cfg.validate(); err != nil {
		return base{}, err
	}
	return base{cfg: cfg, nodes: nodeNames(cfg.Nodes), users: userNames(cfg.Users)}, nil
}

func (b *base) Days() int       { return b.cfg.Days }
func (b *base) Nodes() []string { return b.nodes }
func (b *base) Users() []string { return b.users }

// Roster reports every node active every day: synthetic fleets have no
// DieselNet-style duty rotation.
func (b *base) Roster(day int) []string { return b.nodes }

// Assignment pins user i to node i mod Nodes for the whole experiment.
func (b *base) Assignment(day int) map[string]string {
	asg := make(map[string]string, len(b.users))
	for i, u := range b.users {
		asg[u] = b.nodes[i%len(b.nodes)]
	}
	return asg
}

// Messages streams the injection schedule: times uniform over the daily
// operating windows of the first InjectDays days, sorted, with endpoints
// drawn per message.
func (b *base) Messages(yield func(trace.Message) bool) {
	rng := seedStream(b.cfg.Seed, workloadStream)
	times := make([]int64, b.cfg.Messages)
	for i := range times {
		day := int64(intRand(&rng, b.cfg.InjectDays))
		times[i] = day*trace.SecondsPerDay + int64(nextRand(&rng)%uint64(b.cfg.ActiveSeconds))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	width := len(fmt.Sprint(b.cfg.Messages))
	if width < 4 {
		width = 4
	}
	for i, t := range times {
		from := intRand(&rng, len(b.users))
		to := intRand(&rng, len(b.users)-1)
		if to >= from {
			to++
		}
		m := trace.Message{
			ID:   fmt.Sprintf("m%0*d", width, i+1),
			Time: t,
			From: b.users[from],
			To:   b.users[to],
		}
		if !yield(m) {
			return
		}
	}
}

// mover is one movement model: a fresh instance is built per enumeration so
// that streaming a scenario twice replays identical state.
type mover interface {
	// step advances node i across dt seconds and reports its new position.
	step(i int, dt float64) (x, y float64)
}

// streamContacts runs the discrete-time simulation and yields contact-start
// events in (time, A, B) order. A uniform hash grid with cell size equal to
// the radio range bounds the pair search to the 3×3 neighborhood, keeping
// each tick O(nodes) regardless of area.
func streamContacts(cfg Common, names []string, m mover, yield func(trace.Encounter) bool) {
	g := newGrid(cfg.Nodes, cfg.side(), cfg.Range)
	dt := float64(cfg.TickSeconds)
	lastSeen := make(map[uint64]int64)
	var pairs []uint64
	tick := int64(0)
	for day := 0; day < cfg.Days; day++ {
		for off := int64(0); off < cfg.ActiveSeconds; off += cfg.TickSeconds {
			tick++
			now := int64(day)*trace.SecondsPerDay + off
			g.reset()
			for i := 0; i < cfg.Nodes; i++ {
				x, y := m.step(i, dt)
				g.insert(int32(i), x, y)
			}
			pairs = g.collectPairs(pairs[:0])
			// Sort by packed (i, j) key: with zero-padded names this is
			// also (A, B) name order, so emission within a tick is
			// deterministic and lexicographic.
			sort.Slice(pairs, func(a, b int) bool { return pairs[a] < pairs[b] })
			for _, p := range pairs {
				seen, ok := lastSeen[p]
				lastSeen[p] = tick
				if ok && seen == tick-1 {
					continue // contact continuing since last tick
				}
				e := trace.Encounter{Time: now, A: names[p>>32], B: names[uint32(p)]}
				if !yield(e) {
					return
				}
			}
		}
	}
}

// grid is an open-addressed hash table from occupied cell to a chain of
// node indices, rebuilt every tick with generation stamps instead of
// clearing. Memory is O(nodes), not O(area/range²), which matters once
// auto-scaled playgrounds reach millions of cells.
type grid struct {
	cell    float64
	n       int
	mask    uint64
	keys    []uint64 // packed (cx, cy)
	heads   []int32
	stamps  []int64
	slots   []int32 // occupied slots this generation
	next    []int32 // per-node chain links
	cellOf  []uint64
	posX    []float64
	posY    []float64
	gen     int64
	rangeSq float64
}

func newGrid(n int, side, radio float64) *grid {
	capacity := uint64(8)
	for capacity < uint64(2*n) {
		capacity *= 2
	}
	return &grid{
		cell:    radio,
		n:       n,
		mask:    capacity - 1,
		keys:    make([]uint64, capacity),
		heads:   make([]int32, capacity),
		stamps:  make([]int64, capacity),
		next:    make([]int32, n),
		cellOf:  make([]uint64, n),
		posX:    make([]float64, n),
		posY:    make([]float64, n),
		rangeSq: radio * radio,
	}
}

func (g *grid) reset() {
	g.gen++
	g.slots = g.slots[:0]
}

func packCell(cx, cy int32) uint64 { return uint64(uint32(cx))<<32 | uint64(uint32(cy)) }

func hashCell(key uint64) uint64 {
	key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9
	return key ^ (key >> 27)
}

// slot finds (or claims, when claim is set) the table slot for a cell key,
// returning -1 for an absent cell on lookup.
func (g *grid) slot(key uint64, claim bool) int64 {
	h := hashCell(key) & g.mask
	for {
		if g.stamps[h] != g.gen {
			if !claim {
				return -1
			}
			g.stamps[h] = g.gen
			g.keys[h] = key
			g.heads[h] = -1
			g.slots = append(g.slots, int32(h))
			return int64(h)
		}
		if g.keys[h] == key {
			return int64(h)
		}
		h = (h + 1) & g.mask
	}
}

func (g *grid) insert(i int32, x, y float64) {
	g.posX[i], g.posY[i] = x, y
	key := packCell(int32(x/g.cell), int32(y/g.cell))
	g.cellOf[i] = key
	s := g.slot(key, true)
	g.next[i] = g.heads[s]
	g.heads[s] = i
}

// collectPairs appends the packed (i<<32 | j), i < j, key of every node
// pair within radio range this tick. Each unordered cell pair is visited
// once (same cell, plus the half neighborhood E/N/NE/SE), so no pair is
// reported twice.
func (g *grid) collectPairs(pairs []uint64) []uint64 {
	for _, s := range g.slots {
		key := g.keys[s]
		cx, cy := int32(key>>32), int32(uint32(key))
		for a := g.heads[s]; a >= 0; a = g.next[a] {
			for b := g.next[a]; b >= 0; b = g.next[b] {
				if g.close(a, b) {
					pairs = append(pairs, packPair(a, b))
				}
			}
		}
		for _, d := range [4][2]int32{{1, 0}, {0, 1}, {1, 1}, {1, -1}} {
			ns := g.slot(packCell(cx+d[0], cy+d[1]), false)
			if ns < 0 {
				continue
			}
			for a := g.heads[s]; a >= 0; a = g.next[a] {
				for b := g.heads[ns]; b >= 0; b = g.next[b] {
					if g.close(a, b) {
						pairs = append(pairs, packPair(a, b))
					}
				}
			}
		}
	}
	return pairs
}

func (g *grid) close(a, b int32) bool {
	dx := g.posX[a] - g.posX[b]
	dy := g.posY[a] - g.posY[b]
	return dx*dx+dy*dy <= g.rangeSq
}

func packPair(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}
