package mobility

import (
	"math"

	"replidtn/internal/trace"
)

// RWP is the classic random-waypoint model: each node repeatedly picks a
// uniform destination in the playground and walks there at a per-leg
// uniform speed. It produces spatially homogeneous, memoryless contacts —
// the baseline against which the clustered models are compared.
type RWP struct {
	base
}

// NewRWP validates the configuration and builds a random-waypoint scenario.
func NewRWP(cfg Common) (*RWP, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &RWP{base: b}, nil
}

func (s *RWP) Name() string { return "rwp" }

func (s *RWP) Encounters(yield func(trace.Encounter) bool) {
	side := s.cfg.side()
	w := newWaypointSim(s.cfg, func(rng *uint64, i int) (float64, float64) {
		return unitRand(rng) * side, unitRand(rng) * side
	})
	streamContacts(s.cfg, s.nodes, w, yield)
}

// waypointSim is the walk-to-target engine shared by the random-waypoint
// and community models; pick supplies the model-specific next destination.
type waypointSim struct {
	cfg   Common
	pick  func(rng *uint64, i int) (float64, float64)
	rng   []uint64
	x, y  []float64
	tx    []float64
	ty    []float64
	speed []float64
}

func newWaypointSim(cfg Common, pick func(rng *uint64, i int) (float64, float64)) *waypointSim {
	n := cfg.Nodes
	w := &waypointSim{
		cfg: cfg, pick: pick,
		rng: make([]uint64, n),
		x:   make([]float64, n), y: make([]float64, n),
		tx: make([]float64, n), ty: make([]float64, n),
		speed: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		w.rng[i] = seedStream(cfg.Seed, uint64(i))
		// Start at a model-chosen point (for the community model this
		// clusters the initial placement like the steady state).
		w.x[i], w.y[i] = pick(&w.rng[i], i)
		w.retarget(i)
	}
	return w
}

func (w *waypointSim) retarget(i int) {
	w.tx[i], w.ty[i] = w.pick(&w.rng[i], i)
	w.speed[i] = spanRand(&w.rng[i], w.cfg.SpeedMin, w.cfg.SpeedMax)
}

func (w *waypointSim) step(i int, dt float64) (float64, float64) {
	dx, dy := w.tx[i]-w.x[i], w.ty[i]-w.y[i]
	distSq := dx*dx + dy*dy
	travel := w.speed[i] * dt
	if travel*travel >= distSq {
		// Arrived: snap to the waypoint and choose the next leg. The
		// leftover tick time is dropped — a standard discrete-time
		// approximation that keeps the step O(1).
		w.x[i], w.y[i] = w.tx[i], w.ty[i]
		w.retarget(i)
		return w.x[i], w.y[i]
	}
	frac := travel / math.Sqrt(distSq)
	w.x[i] += dx * frac
	w.y[i] += dy * frac
	return w.x[i], w.y[i]
}
