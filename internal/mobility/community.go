package mobility

import (
	"fmt"

	"replidtn/internal/trace"
)

// Community is a home-cell mobility model: the playground is divided into
// Cells×Cells districts, each node is anchored to one of them, and with
// probability HomeBias a waypoint is drawn inside the home district rather
// than anywhere. The result is the clustered, recurrent contact structure of
// human mobility — nodes meet their neighbors often and strangers rarely —
// which is where community-aware forwarding differs most from uniform
// mixing.
type Community struct {
	base
	Cells    int
	HomeBias float64
	home     []int
}

// NewCommunity validates the configuration and assigns home districts from
// the scenario seed.
func NewCommunity(cfg Common, cells int, homeBias float64) (*Community, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	if cells < 1 {
		return nil, fmt.Errorf("mobility: community needs at least 1 cell, have %d", cells)
	}
	if homeBias < 0 || homeBias > 1 {
		return nil, fmt.Errorf("mobility: home bias %v outside [0, 1]", homeBias)
	}
	s := &Community{base: b, Cells: cells, HomeBias: homeBias}
	rng := seedStream(cfg.Seed, homeStream)
	s.home = make([]int, cfg.Nodes)
	for i := range s.home {
		s.home[i] = intRand(&rng, cells*cells)
	}
	return s, nil
}

func (s *Community) Name() string { return "community" }

func (s *Community) Encounters(yield func(trace.Encounter) bool) {
	side := s.cfg.side()
	cell := side / float64(s.Cells)
	w := newWaypointSim(s.cfg, func(rng *uint64, i int) (float64, float64) {
		if unitRand(rng) < s.HomeBias {
			h := s.home[i]
			hx, hy := float64(h%s.Cells), float64(h/s.Cells)
			return (hx + unitRand(rng)) * cell, (hy + unitRand(rng)) * cell
		}
		return unitRand(rng) * side, unitRand(rng) * side
	})
	streamContacts(s.cfg, s.nodes, w, yield)
}
