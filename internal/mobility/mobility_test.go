package mobility

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"replidtn/internal/trace"
)

// writeTraceDir exports a trace as the CSV directory layout LoadDir reads.
func writeTraceDir(dir string, tr *trace.Trace) error {
	write := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write(trace.EncountersFile, func(f *os.File) error { return trace.WriteEncounters(f, tr.Encounters) }); err != nil {
		return err
	}
	if err := write(trace.MessagesFile, func(f *os.File) error { return trace.WriteMessages(f, tr.Messages) }); err != nil {
		return err
	}
	return write(trace.AssignmentsFile, func(f *os.File) error { return trace.WriteAssignments(f, tr.Assignment) })
}

func testCommon() Common {
	cfg := Defaults()
	cfg.Nodes = 40
	cfg.Days = 2
	cfg.Seed = 7
	cfg.Users = 10
	cfg.Messages = 50
	cfg.InjectDays = 2
	// A denser playground than the default so the small fleet still meets.
	cfg.Spacing = 300
	return cfg
}

func buildAll(t *testing.T, cfg Common) []trace.Scenario {
	t.Helper()
	rwp, err := NewRWP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	com, err := NewCommunity(cfg, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	cor, err := NewCorridor(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	return []trace.Scenario{rwp, com, cor}
}

func TestGeneratorsMaterializeValidTraces(t *testing.T) {
	for _, sc := range buildAll(t, testCommon()) {
		tr, err := trace.Materialize(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if len(tr.Encounters) == 0 {
			t.Errorf("%s: no encounters generated", sc.Name())
		}
		if len(tr.Messages) != 50 {
			t.Errorf("%s: %d messages, want 50", sc.Name(), len(tr.Messages))
		}
		if len(tr.Buses) != 40 {
			t.Errorf("%s: %d nodes, want 40", sc.Name(), len(tr.Buses))
		}
		for _, e := range tr.Encounters {
			off := e.Time % trace.SecondsPerDay
			if off >= testCommon().ActiveSeconds {
				t.Fatalf("%s: encounter at day offset %d outside the active window", sc.Name(), off)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cfg := testCommon()
	for i, sc := range buildAll(t, cfg) {
		t1, err := trace.Materialize(sc)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := trace.Materialize(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Errorf("%s: two enumerations of the same scenario differ", sc.Name())
		}
		other := cfg
		other.Seed++
		t3, err := trace.Materialize(buildAll(t, other)[i])
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(t1.Encounters, t3.Encounters) {
			t.Errorf("%s: different seeds produced identical schedules", sc.Name())
		}
	}
}

func TestEncounterStreamingStopsEarly(t *testing.T) {
	for _, sc := range buildAll(t, testCommon()) {
		var got int
		sc.Encounters(func(trace.Encounter) bool {
			got++
			return got < 3
		})
		if got != 3 {
			t.Errorf("%s: early stop visited %d encounters, want 3", sc.Name(), got)
		}
	}
}

func TestCommunityClustersContacts(t *testing.T) {
	// With full home bias almost all contacts should be within-community;
	// compare against the uniform RWP baseline on the same parameters.
	cfg := testCommon()
	com, err := NewCommunity(cfg, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	homeOf := func(name string) int {
		for i, n := range com.Nodes() {
			if n == name {
				return com.home[i]
			}
		}
		t.Fatalf("unknown node %s", name)
		return -1
	}
	same, total := 0, 0
	com.Encounters(func(e trace.Encounter) bool {
		total++
		if homeOf(e.A) == homeOf(e.B) {
			same++
		}
		return true
	})
	if total == 0 {
		t.Fatal("no community encounters")
	}
	if frac := float64(same) / float64(total); frac < 0.7 {
		t.Errorf("only %.0f%% of fully-biased community contacts are within-community", frac*100)
	}
}

func TestCorridorContactsRespectLanes(t *testing.T) {
	// Nodes on parallel lanes far apart can only meet at intersections
	// with crossing lanes; same-lane passes must dominate with few lanes.
	cfg := testCommon()
	cor, err := NewCorridor(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	laneOf := func(name string) int {
		for i, n := range cor.Nodes() {
			if n == name {
				return i % 4
			}
		}
		t.Fatalf("unknown node %s", name)
		return -1
	}
	total := 0
	cor.Encounters(func(e trace.Encounter) bool {
		total++
		la, lb := laneOf(e.A), laneOf(e.B)
		// Two distinct parallel lanes never come within radio range: lane
		// separation is side/(lanes+1) >> range in this configuration.
		if la != lb && la%2 == lb%2 {
			t.Fatalf("contact between parallel lanes %d and %d", la, lb)
		}
		return true
	})
	if total == 0 {
		t.Fatal("no corridor encounters")
	}
}

func TestScenarioInterfaceShape(t *testing.T) {
	cfg := testCommon()
	sc, err := NewRWP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Days() != cfg.Days {
		t.Errorf("days = %d", sc.Days())
	}
	nodes := sc.Nodes()
	if !sortedStrings(nodes) {
		t.Error("node roster not sorted")
	}
	if got := sc.Roster(1); !reflect.DeepEqual(got, nodes) {
		t.Error("all nodes should be rostered every day")
	}
	asg := sc.Assignment(0)
	if len(asg) != cfg.Users {
		t.Errorf("assignment covers %d users, want %d", len(asg), cfg.Users)
	}
	for _, u := range sc.Users() {
		if _, ok := asg[u]; !ok {
			t.Errorf("user %s unassigned", u)
		}
	}
}

func TestGridMatchesBruteForce(t *testing.T) {
	// The hash grid must report exactly the pairs a quadratic scan finds,
	// across several deterministic point clouds including cell-boundary
	// and duplicate positions.
	const n, side, radio = 200, 2000.0, 100.0
	rng := seedStream(99, 0)
	for round := 0; round < 5; round++ {
		g := newGrid(n, side, radio)
		g.reset()
		xs, ys := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = unitRand(&rng) * side
			ys[i] = unitRand(&rng) * side
			if i%17 == 0 { // exact cell corners
				xs[i] = float64(int(xs[i]/radio)) * radio
			}
			if i%23 == 0 && i > 0 { // coincident nodes
				xs[i], ys[i] = xs[i-1], ys[i-1]
			}
			g.insert(int32(i), xs[i], ys[i])
		}
		got := map[uint64]bool{}
		for _, p := range g.collectPairs(nil) {
			if got[p] {
				t.Fatalf("pair %x reported twice", p)
			}
			got[p] = true
		}
		want := map[uint64]bool{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx, dy := xs[i]-xs[j], ys[i]-ys[j]
				if dx*dx+dy*dy <= radio*radio {
					want[packPair(int32(i), int32(j))] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: grid found %d pairs, brute force %d", round, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("round %d: grid missed pair %x", round, p)
			}
		}
	}
}

func TestEncountersSortedAndWellFormed(t *testing.T) {
	for _, sc := range buildAll(t, testCommon()) {
		var prev trace.Encounter
		first := true
		sc.Encounters(func(e trace.Encounter) bool {
			if !first && e.Time < prev.Time {
				t.Fatalf("%s: time went backwards: %d after %d", sc.Name(), e.Time, prev.Time)
			}
			if !first && e.Time == prev.Time && (e.A < prev.A || (e.A == prev.A && e.B < prev.B)) {
				t.Fatalf("%s: same-tick pair order regressed", sc.Name())
			}
			if e.A >= e.B {
				t.Fatalf("%s: pair %q,%q not in name order", sc.Name(), e.A, e.B)
			}
			prev, first = e, false
			return true
		})
	}
}

func TestMessagesWellFormed(t *testing.T) {
	cfg := testCommon()
	sc, err := NewRWP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	count := 0
	sc.Messages(func(m trace.Message) bool {
		count++
		if m.Time < prev {
			t.Fatalf("message times regressed: %d after %d", m.Time, prev)
		}
		if m.From == m.To {
			t.Fatalf("self-addressed message %s", m.ID)
		}
		if trace.Day(m.Time) >= cfg.InjectDays {
			t.Fatalf("message %s injected on day %d", m.ID, trace.Day(m.Time))
		}
		prev = m.Time
		return true
	})
	if count != cfg.Messages {
		t.Errorf("streamed %d messages, want %d", count, cfg.Messages)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

func TestParseSpecs(t *testing.T) {
	for _, tc := range []struct {
		spec string
		name string
	}{
		{"rwp:n=30,seed=7,users=6,msgs=10,spacing=300", "rwp"},
		{"community:n=30,cells=3,bias=0.9,users=6,msgs=10,spacing=300", "community"},
		{"corridor:n=30,lanes=5,users=6,msgs=10,spacing=300", "corridor"},
		{"rwp:n=30,speed=2-12,tick=30,active=7200,area=1500,users=4,msgs=5,days=2,injectdays=1", "rwp"},
		{"dieselnet:seed=3,days=4,fleet=10,users=8,msgs=20", "dieselnet"},
		{"dieselnet", "dieselnet"},
	} {
		sc, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if sc.Name() != tc.name {
			t.Errorf("%s: name = %q", tc.spec, sc.Name())
		}
		if _, err := trace.Materialize(sc); err != nil {
			t.Errorf("%s: %v", tc.spec, err)
		}
	}
}

func TestParseDirSpec(t *testing.T) {
	dn := trace.DefaultDieselNet()
	dn.Days, dn.FleetSize, dn.ActivePerDay, dn.EncountersPerDay = 2, 6, 5, 50
	wl := trace.DefaultWorkload()
	wl.Users, wl.Messages, wl.InjectDays = 6, 10, 2
	tr, err := trace.Generate(dn, wl, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := writeTraceDir(dir, tr); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse("dir:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.Materialize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Encounters, tr.Encounters) {
		t.Error("dir: scenario diverged from the written trace")
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		spec, want string
	}{
		{"levy:n=10", "unknown scenario model"},
		{"rwp:n=0", "positive integer"},
		{"rwp:bogus=1", "unknown key"},
		{"rwp:speed=5", "min-max band"},
		{"rwp:n", "key=value"},
		{"community:lanes=3", "only applies to corridor"},
		{"corridor:bias=0.5", "only applies to community"},
		{"dieselnet:zipf=2", "unknown key"},
		{"dir:", "needs a path"},
	} {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("%s: expected error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q should mention %q", tc.spec, err, tc.want)
		}
	}
}
