package wire

import (
	"fmt"

	"replidtn/internal/replica"
)

// Codec for journaled mutation batches — the body of a WAL live-log batch
// record (internal/persist/wal). Exactly the fields a Mutation's kind names
// are encoded; the rest are zero by the journal's contract, so the layout is
// per-kind rather than per-struct.

// AppendMutations appends a complete batch body: codec version, count, then
// each mutation as a kind byte plus its kind's fields.
func AppendMutations(buf []byte, muts []replica.Mutation) ([]byte, error) {
	buf = append(buf, CodecVersion)
	buf = AppendUvarint(buf, uint64(len(muts)))
	for i := range muts {
		m := &muts[i]
		buf = append(buf, byte(m.Kind))
		switch m.Kind {
		case replica.MutPut:
			if m.Entry == nil || m.Entry.Item == nil {
				return nil, fmt.Errorf("wire: put mutation %d without entry", i)
			}
			//lint:allow transientleak -- WAL records restore the same host after a crash, so per-copy transient state (spray allowances, hop budgets) legitimately survives; nothing here crosses to another replica
			buf = AppendEntrySnapshot(buf, m.Entry)
			buf = AppendUvarint(buf, m.NextArrival)
		case replica.MutRemove:
			buf = AppendItemID(buf, m.ID)
			buf = AppendUvarint(buf, m.NextArrival)
		case replica.MutLearn:
			buf = AppendVersions(buf, m.Versions)
			buf = AppendUvarint(buf, m.Seq)
		case replica.MutMerge:
			// A nil Knowledge is the journal's poison marker for a marshal
			// failure at the source; the nil-aware encoding preserves it so
			// recovery still refuses to replay past the broken merge.
			buf = AppendBytes(buf, m.Knowledge)
		case replica.MutIdentity:
			buf = AppendStrings(buf, m.Own)
			// Nil FilterAddrs means "the filter is not an address filter",
			// distinct from an empty address filter — nil must round-trip.
			buf = AppendStrings(buf, m.FilterAddrs)
		default:
			return nil, fmt.Errorf("wire: unknown mutation kind %d", m.Kind)
		}
	}
	return buf, nil
}

// DecodeMutations decodes a body written by AppendMutations. Every field is
// copied out of data.
func DecodeMutations(data []byte) ([]replica.Mutation, error) {
	d := NewDecoder(data)
	if ver := d.Byte(); d.err == nil && ver != CodecVersion {
		return nil, fmt.Errorf("wire: mutation batch codec version %d, want %d", ver, CodecVersion)
	}
	n := d.Uvarint()
	// Each mutation costs at least its kind byte.
	if n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("wire: mutation count %d exceeds %d remaining bytes", n, d.Remaining())
	}
	muts := make([]replica.Mutation, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m := replica.Mutation{Kind: replica.MutKind(d.Byte())}
		switch m.Kind {
		case replica.MutPut:
			m.Entry = d.EntrySnapshot()
			m.NextArrival = d.Uvarint()
		case replica.MutRemove:
			m.ID = d.ItemID()
			m.NextArrival = d.Uvarint()
		case replica.MutLearn:
			m.Versions = d.Versions()
			m.Seq = d.Uvarint()
		case replica.MutMerge:
			m.Knowledge = d.BytesCopy()
		case replica.MutIdentity:
			m.Own = d.Strings()
			m.FilterAddrs = d.Strings()
		default:
			if d.err == nil {
				return nil, fmt.Errorf("wire: unknown mutation kind %d", m.Kind)
			}
		}
		muts = append(muts, m)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return muts, nil
}
