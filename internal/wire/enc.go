package wire

import (
	"encoding/binary"
	"math"
)

// The append functions mirror encoding/binary's AppendX shape: each appends
// the encoding of its value to buf and returns the extended slice. Callers
// that reuse one buffer across messages get steady-state zero-allocation
// encoding; callers that pass nil get a minimal throwaway slice.

// AppendUvarint appends v as an unsigned LEB128 varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends v as a zigzag varint (small magnitudes of either sign
// stay short).
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendUint32 appends v as fixed 4-byte little-endian.
func AppendUint32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// AppendUint64 appends v as fixed 8-byte little-endian.
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// AppendFloat64 appends v's IEEE-754 bit pattern as fixed 8-byte
// little-endian.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// AppendString appends a uvarint length followed by the raw bytes. The empty
// string and a "missing" string are indistinguishable; use AppendBytes when
// nil must survive the round trip.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends b with a shifted count that preserves nil-vs-empty:
// uvarint 0 for nil, len(b)+1 followed by the bytes otherwise. Several
// message fields carry meaning in that distinction (a nil MutMerge knowledge
// is a poison marker; a nil FilterAddrs means "not an address filter").
func AppendBytes(buf []byte, b []byte) []byte {
	if b == nil {
		return append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b))+1)
	return append(buf, b...)
}

// AppendStrings appends a string slice with the same shifted-count
// nil-vs-empty convention as AppendBytes.
func AppendStrings(buf []byte, ss []string) []byte {
	if ss == nil {
		return append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ss))+1)
	for _, s := range ss {
		buf = AppendString(buf, s)
	}
	return buf
}
