package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/vclock"
)

// benchResponse builds the representative sync payload both codecs encode: a
// 16-item batch of 1 KiB messages with per-copy transients plus the learned
// knowledge — the shape one encounter leg ships when budgets allow a full
// batch.
func benchResponse(tb testing.TB) *replica.SyncResponse {
	tb.Helper()
	know := vclock.NewKnowledge()
	items := make([]replica.BatchItem, 16)
	for i := range items {
		it := &item.Item{
			ID:      item.ID{Creator: "bus042", Num: uint64(i + 1)},
			Version: vclock.Version{Replica: "bus042", Seq: uint64(i + 1)},
			Meta: item.Metadata{
				Source:       "user:src",
				Destinations: []string{"user:dst"},
				Kind:         "message",
				Created:      100,
				Expires:      4000,
			},
			Payload: bytes.Repeat([]byte{byte(i)}, 1024),
		}
		know.Add(it.Version)
		items[i] = replica.BatchItem{
			Item:      it,
			Transient: item.Transient{}.Set(item.FieldHops, 2), //lint:allow transientleak -- benchmark fixture: the policy-mediated transmit transient is an explicit wire field
		}
	}
	return &replica.SyncResponse{
		SourceID:         "bus042",
		Items:            items,
		LearnedKnowledge: know,
	}
}

// BenchmarkSyncResponseCodec compares the protocol-v3 binary frame body
// against the v1/v2 gob stream for the same sync response — the before/after
// BENCH_sync.json records for the frame envelope. The gob sub-benchmarks
// rebuild the encoder/decoder per op because that is what each encounter
// pays: gob streams are per-connection, and its type dictionary must be
// retransmitted and re-learned every time.
func BenchmarkSyncResponseCodec(b *testing.B) {
	resp := benchResponse(b)

	b.Run("binary-encode", func(b *testing.B) {
		var buf []byte
		var err error
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err = AppendSyncResponse(buf[:0], resp) //lint:allow transientleak -- benchmark fixture batch, not host state
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(buf)), "wireB/frame")
	})

	b.Run("binary-decode", func(b *testing.B) {
		data, err := AppendSyncResponse(nil, resp) //lint:allow transientleak -- benchmark fixture batch, not host state
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeSyncResponse(data); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob-encode", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "wireB/frame")
	})

	b.Run("gob-decode", func(b *testing.B) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out replica.SyncResponse
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
