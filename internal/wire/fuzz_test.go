package wire

// FuzzWireDecode throws hostile bytes at every v3 frame-body decoder. These
// are the transport's parse-hostile surface since protocol v3 — every byte
// arrives from a peer — so the contract under fuzzing is: never panic, never
// trust a forged count as an allocation size, and re-encode anything
// accepted to a canonical fixed point (encoding a decoded value, then
// decoding and encoding again, must reproduce the same bytes — the property
// that makes the codec's output well-defined regardless of how degenerate
// the accepted input was). `make fuzz-smoke` runs this briefly on every CI
// run; the seed corpus under testdata/fuzz (regenerated with `go test -tags
// corpusgen -run WriteFuzzCorpus`) pins one valid encoding per frame family
// plus the boundary shapes.

import (
	"bytes"
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// wireFuzzSeeds builds the seed inputs, shared by the fuzz target and the
// corpus generator so the checked-in files never drift from f.Add.
func wireFuzzSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	know := vclock.NewKnowledge()
	for s := uint64(1); s <= 5; s++ {
		know.Add(vclock.Version{Replica: "a", Seq: s})
	}
	know.Add(vclock.Version{Replica: "b", Seq: 7})

	it := &item.Item{
		ID:      item.ID{Creator: "a", Num: 7},
		Version: vclock.Version{Replica: "a", Seq: 9},
		Prior:   []vclock.Version{{Replica: "a", Seq: 3}},
		Meta: item.Metadata{
			Source:       "user:1",
			Destinations: []string{"user:2"},
			Kind:         "message",
			Created:      100,
			Expires:      900,
			Attrs:        map[string]string{"a": "2"},
		},
		Payload: []byte("payload bytes"),
	}

	must := func(buf []byte, err error) []byte {
		if err != nil {
			tb.Fatalf("build seed: %v", err)
		}
		return buf
	}
	exactReq := must(AppendSyncRequest(nil, &replica.SyncRequest{
		TargetID:  "t",
		Knowledge: know,
		Epoch:     3,
		Gen:       9,
		Filter:    filter.NewAddresses("user:1"),
		MaxItems:  10,
		MaxBytes:  1 << 20,
	}))
	digestReq := must(AppendSyncRequest(nil, &replica.SyncRequest{
		TargetID: "t",
		Digest:   know.Digest(0.01),
		Filter:   filter.All{},
	}))
	deltaReq := must(AppendSyncRequest(nil, &replica.SyncRequest{
		TargetID:    "t",
		Delta:       vclock.NewDelta(2, 5, know),
		StrictBytes: true,
	}))
	resp := must(AppendSyncResponse(nil, &replica.SyncResponse{
		SourceID: "s",
		Items: []replica.BatchItem{
			{Item: it, Transient: item.Transient{"ttl": 2}}, //lint:allow transientleak -- fixture batch: the policy-mediated transmit transient is an explicit wire field
		},
		Truncated:        true,
		LearnedKnowledge: know,
	}))
	muts := must(AppendMutations(nil, []replica.Mutation{
		{Kind: replica.MutPut, Entry: &store.EntrySnapshot{Item: it, Arrival: 5}, NextArrival: 6},
		{Kind: replica.MutRemove, ID: item.ID{Creator: "a", Num: 7}, NextArrival: 7},
		{Kind: replica.MutLearn, Versions: []vclock.Version{{Replica: "a", Seq: 9}}, Seq: 9},
		{Kind: replica.MutIdentity, Own: []string{"user:1"}},
	}))
	return map[string][]byte{
		"exact-request":  exactReq,
		"digest-request": digestReq,
		"delta-request":  deltaReq,
		"response":       resp,
		"done":           AppendDone(nil, 42),
		"mutations":      muts,
		"truncated":      exactReq[:len(exactReq)/2],
		"bad-version":    append([]byte{0xff}, exactReq[1:]...),
		"empty":          nil,
	}
}

// refuzz runs one decode/encode/decode/encode cycle and checks the fixed
// point: enc(dec(enc(dec(data)))) == enc(dec(data)).
func refuzz(t *testing.T, what string, data []byte,
	decode func([]byte) (any, error), encode func(any) ([]byte, error)) {
	t.Helper()
	v, err := decode(data)
	if err != nil {
		return // invalid encodings must only error, never panic
	}
	enc1, err := encode(v)
	if err != nil {
		t.Fatalf("%s: decoded value does not re-encode: %v", what, err)
	}
	v2, err := decode(enc1)
	if err != nil {
		t.Fatalf("%s: re-encoded value does not decode: %v", what, err)
	}
	enc2, err := encode(v2)
	if err != nil {
		t.Fatalf("%s: second re-encode failed: %v", what, err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("%s: encoding is not a fixed point:\n%x\n%x", what, enc1, enc2)
	}
}

func FuzzWireDecode(f *testing.F) {
	for _, seed := range wireFuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		refuzz(t, "sync request", data,
			func(b []byte) (any, error) {
				req, err := DecodeSyncRequest(b)
				if err == nil && req.Routing != nil {
					// The routing blob is nested gob, and gob's map encoding
					// is not byte-deterministic — decoding hostile blobs is
					// still exercised; the fixed point pins everything else.
					req.Routing = nil
				}
				return req, err
			},
			func(v any) ([]byte, error) { return AppendSyncRequest(nil, v.(*replica.SyncRequest)) })
		refuzz(t, "sync response", data,
			func(b []byte) (any, error) { return DecodeSyncResponse(b) },
			func(v any) ([]byte, error) {
				//lint:allow transientleak -- fuzz round-trip: re-encoding the batch the decoder just produced, not leaking host state
				return AppendSyncResponse(nil, v.(*replica.SyncResponse))
			})
		refuzz(t, "done", data,
			func(b []byte) (any, error) { return DecodeDone(b) },
			func(v any) ([]byte, error) { return AppendDone(nil, v.(int)), nil })
		refuzz(t, "mutations", data,
			func(b []byte) (any, error) { return DecodeMutations(b) },
			func(v any) ([]byte, error) {
				//lint:allow transientleak -- fuzz round-trip: re-encoding the batch the decoder just produced, not leaking host state
				return AppendMutations(nil, v.([]replica.Mutation))
			})
	})
}
