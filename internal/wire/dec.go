package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// A Decoder walks one encoded message. Errors are sticky: after the first
// failure every accessor returns a zero value and Err/Finish report the
// original cause, so decode sequences read straight-line without per-field
// error checks. The input slice is never written; view accessors (Bytes,
// String via unsafe-free conversion) alias it, so a caller that reuses its
// read buffer must copy anything that outlives the buffer (BytesCopy, or the
// message decoders in this package, which copy every field that escapes).
type Decoder struct {
	data []byte
	pos  int
	err  error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first error the decoder hit, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.pos }

// Finish returns the sticky error, or ErrTrailing if input remains past the
// message end. Every top-level decode ends with it so a frame carrying junk
// after a valid prefix is rejected, not silently half-read.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.data) {
		return fmt.Errorf("%w: %d of %d bytes undecoded", ErrTrailing, len(d.data)-d.pos, len(d.data))
	}
	return nil
}

// fail records the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint decodes an unsigned LEB128 varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, d.pos))
		return 0
	}
	d.pos += n
	return v
}

// Varint decodes a zigzag varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, d.pos))
		return 0
	}
	d.pos += n
	return v
}

// Int decodes a uvarint that must fit a non-negative int. Counts and budgets
// travel this way; the range check keeps a hostile 2^63 from wrapping into a
// negative int behind a validator's back.
func (d *Decoder) Int() int {
	v := d.Uvarint()
	if d.err == nil && v > math.MaxInt64 {
		d.fail(fmt.Errorf("wire: value %d overflows int", v))
		return 0
	}
	return int(v)
}

// Byte decodes one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail(fmt.Errorf("%w: byte at offset %d", ErrTruncated, d.pos))
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// Bool decodes a one-byte bool, rejecting values other than 0 and 1 so a
// frame has exactly one encoding.
func (d *Decoder) Bool() bool {
	b := d.Byte()
	if d.err == nil && b > 1 {
		d.fail(fmt.Errorf("wire: bool byte 0x%02x at offset %d", b, d.pos-1))
		return false
	}
	return b == 1
}

// Uint32 decodes fixed 4-byte little-endian.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.pos < 4 {
		d.fail(fmt.Errorf("%w: uint32 at offset %d", ErrTruncated, d.pos))
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v
}

// Uint64 decodes fixed 8-byte little-endian.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.pos < 8 {
		d.fail(fmt.Errorf("%w: uint64 at offset %d", ErrTruncated, d.pos))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v
}

// Float64 decodes a fixed 8-byte little-endian IEEE-754 value.
func (d *Decoder) Float64() float64 {
	return math.Float64frombits(d.Uint64())
}

// view returns n bytes of the input without copying, or nil on truncation.
func (d *Decoder) view(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.data)-d.pos) < n {
		d.fail(fmt.Errorf("%w: %d bytes at offset %d, %d remain", ErrTruncated, n, d.pos, len(d.data)-d.pos))
		return nil
	}
	b := d.data[d.pos : d.pos+int(n) : d.pos+int(n)]
	d.pos += int(n)
	return b
}

// String decodes a length-prefixed string (always a copy — Go strings are
// immutable, so this is the only safe materialization).
func (d *Decoder) String() string {
	return string(d.view(d.Uvarint()))
}

// Bytes decodes a nil-aware byte slice as a zero-copy view into the input.
// The view aliases the decoder's buffer; use BytesCopy when the value
// outlives it.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	return d.view(n - 1)
}

// BytesCopy decodes a nil-aware byte slice into fresh storage.
func (d *Decoder) BytesCopy() []byte {
	b := d.Bytes()
	if b == nil {
		return nil
	}
	return append(make([]byte, 0, len(b)), b...)
}

// Strings decodes a nil-aware string slice.
func (d *Decoder) Strings() []string {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	n--
	// Each string costs at least its one-byte length prefix, so a count
	// beyond the remaining input is forged — reject before allocating.
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Errorf("wire: string count %d exceeds %d remaining bytes", n, d.Remaining()))
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		ss = append(ss, d.String())
	}
	if d.err != nil {
		return nil
	}
	return ss
}
