package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"replidtn/internal/filter"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/vclock"
)

// Codecs for the transport's protocol-v3 frame bodies. Each body starts with
// the one-byte codec version; the frame length prefix and message-type byte
// around it belong to the transport (see internal/transport).

// Filter type tags. The filter set is closed (package filter defines exactly
// these implementations), so an explicit tag per concrete type replaces gob's
// registered-name machinery.
const (
	filterNil       = 0
	filterAll       = 1
	filterNone      = 2
	filterAddresses = 3
	filterOr        = 4
	filterKind      = 5
)

// maxFilterDepth bounds Or nesting on both sides: deeper filters are the
// work of a hostile frame (or a runaway caller) and would otherwise let
// recursion depth scale with input bytes.
const maxFilterDepth = 32

// AppendFilter appends a filter as a type tag plus type-specific fields.
// A nil filter encodes as a tag of its own so it survives the round trip.
func AppendFilter(buf []byte, f filter.Filter) ([]byte, error) {
	return appendFilter(buf, f, 0)
}

func appendFilter(buf []byte, f filter.Filter, depth int) ([]byte, error) {
	if depth > maxFilterDepth {
		return nil, fmt.Errorf("wire: filter nesting exceeds %d", maxFilterDepth)
	}
	switch f := f.(type) {
	case nil:
		return append(buf, filterNil), nil
	case filter.All:
		return append(buf, filterAll), nil
	case filter.None:
		return append(buf, filterNone), nil
	case *filter.Addresses:
		buf = append(buf, filterAddresses)
		return AppendStrings(buf, f.List()), nil
	case *filter.Or:
		buf = append(buf, filterOr)
		buf = AppendUvarint(buf, uint64(len(f.Members)))
		var err error
		for _, m := range f.Members {
			if buf, err = appendFilter(buf, m, depth+1); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case filter.Kind:
		buf = append(buf, filterKind)
		return AppendString(buf, f.Name), nil
	default:
		return nil, fmt.Errorf("wire: unencodable filter type %T", f)
	}
}

// Filter decodes a filter written by AppendFilter.
func (d *Decoder) Filter() filter.Filter {
	return d.filter(0)
}

func (d *Decoder) filter(depth int) filter.Filter {
	if depth > maxFilterDepth {
		d.fail(fmt.Errorf("wire: filter nesting exceeds %d", maxFilterDepth))
		return nil
	}
	switch tag := d.Byte(); tag {
	case filterNil:
		return nil
	case filterAll:
		return filter.All{}
	case filterNone:
		return filter.None{}
	case filterAddresses:
		return filter.NewAddresses(d.Strings()...)
	case filterOr:
		n := d.Uvarint()
		// Each member costs at least its one tag byte.
		if n > uint64(d.Remaining()) {
			d.fail(fmt.Errorf("wire: filter member count %d exceeds %d remaining bytes", n, d.Remaining()))
			return nil
		}
		members := make([]filter.Filter, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			members = append(members, d.filter(depth+1))
		}
		return filter.NewOr(members...)
	case filterKind:
		return filter.Kind{Name: d.String()}
	default:
		if d.err == nil {
			d.fail(fmt.Errorf("wire: unknown filter tag %d", tag))
		}
		return nil
	}
}

// Routing-policy requests are interface-typed and open-ended (custom
// policies register their own types via transport.RegisterRequestType), so
// they cross the wire as a nested gob blob: a tag byte for nil, then a
// length-prefixed gob stream of the interface value. The blob is small and
// present only when a stateful policy (PROPHET, MaxProp) is attached, so
// gob's allocations here do not touch the per-item hot path.

// AppendRouting appends a routing request as a nil tag or a gob blob.
func AppendRouting(buf []byte, req routing.Request) ([]byte, error) {
	if req == nil {
		return append(buf, 0), nil
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(&req); err != nil {
		return nil, fmt.Errorf("wire: encode routing request: %w", err)
	}
	buf = append(buf, 1)
	return AppendBytes(buf, blob.Bytes()), nil
}

// Routing decodes a routing request written by AppendRouting.
func (d *Decoder) Routing() routing.Request {
	switch tag := d.Byte(); tag {
	case 0:
		return nil
	case 1:
		blob := d.Bytes()
		if d.err != nil {
			return nil
		}
		var req routing.Request
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&req); err != nil {
			d.fail(fmt.Errorf("wire: decode routing request: %w", err))
			return nil
		}
		return req
	default:
		if d.err == nil {
			d.fail(fmt.Errorf("wire: unknown routing tag %d", tag))
		}
		return nil
	}
}

// Knowledge-frame tags: the request's summary-mode alternatives and the
// response's optional learned knowledge reuse one layout — a tag byte, then
// a length-prefixed vclock binary marshal.
const (
	knowNone   = 0
	knowExact  = 1
	knowDigest = 2
	knowDelta  = 3
)

// appendKnowledgeFrame appends exactly one of the three summary forms (or
// the none tag). The vclock marshals append straight into buf — WireSize
// gives the exact length prefix without building the encoding twice.
func appendKnowledgeFrame(buf []byte, k *vclock.Knowledge, dg *vclock.Digest, dl *vclock.Delta) ([]byte, error) {
	set := 0
	if k != nil {
		set++
	}
	if dg != nil {
		set++
	}
	if dl != nil {
		set++
	}
	if set > 1 {
		return nil, errors.New("wire: multiple knowledge frames set")
	}
	var err error
	switch {
	case k != nil:
		buf = append(buf, knowExact)
		buf = AppendUvarint(buf, uint64(k.WireSize()))
		buf, err = k.AppendBinary(buf)
	case dg != nil:
		buf = append(buf, knowDigest)
		buf = AppendUvarint(buf, uint64(dg.WireSize()))
		buf, err = dg.AppendBinary(buf)
	case dl != nil:
		buf = append(buf, knowDelta)
		buf = AppendUvarint(buf, uint64(dl.WireSize()))
		buf, err = dl.AppendBinary(buf)
	default:
		return append(buf, knowNone), nil
	}
	if err != nil {
		return nil, fmt.Errorf("wire: encode knowledge frame: %w", err)
	}
	return buf, nil
}

// knowledgeFrame decodes one frame into whichever of the three forms the tag
// names. The vclock unmarshals copy and canonicalize, so the returned values
// never alias the input.
func (d *Decoder) knowledgeFrame() (*vclock.Knowledge, *vclock.Digest, *vclock.Delta) {
	tag := d.Byte()
	if tag == knowNone || d.err != nil {
		return nil, nil, nil
	}
	n := d.Uvarint()
	body := d.view(n)
	if d.err != nil {
		return nil, nil, nil
	}
	switch tag {
	case knowExact:
		k := vclock.NewKnowledge()
		if err := k.UnmarshalBinary(body); err != nil {
			d.fail(err)
			return nil, nil, nil
		}
		return k, nil, nil
	case knowDigest:
		dg := new(vclock.Digest)
		if err := dg.UnmarshalBinary(body); err != nil {
			d.fail(err)
			return nil, nil, nil
		}
		return nil, dg, nil
	case knowDelta:
		dl := new(vclock.Delta)
		if err := dl.UnmarshalBinary(body); err != nil {
			d.fail(err)
			return nil, nil, nil
		}
		return nil, nil, dl
	default:
		d.fail(fmt.Errorf("wire: unknown knowledge tag %d", tag))
		return nil, nil, nil
	}
}

// AppendSyncRequest appends a complete v3 sync-request body: codec version,
// target ID, knowledge frame, delta tags, filter, routing blob, budgets.
// Budgets travel as zigzag varints so an (invalid) negative survives to the
// transport validator instead of wrapping into a huge positive.
func AppendSyncRequest(buf []byte, req *replica.SyncRequest) ([]byte, error) {
	buf = append(buf, CodecVersion)
	buf = AppendString(buf, string(req.TargetID))
	buf, err := appendKnowledgeFrame(buf, req.Knowledge, req.Digest, req.Delta)
	if err != nil {
		return nil, err
	}
	buf = AppendUvarint(buf, req.Epoch)
	buf = AppendUvarint(buf, req.Gen)
	if buf, err = AppendFilter(buf, req.Filter); err != nil {
		return nil, err
	}
	if buf, err = AppendRouting(buf, req.Routing); err != nil {
		return nil, err
	}
	buf = AppendVarint(buf, int64(req.MaxItems))
	buf = AppendVarint(buf, req.MaxBytes)
	return AppendBool(buf, req.StrictBytes), nil
}

// DecodeSyncRequest decodes a body written by AppendSyncRequest. Structural
// protocol rules (exactly one knowledge frame, non-negative budgets) stay
// with the transport validator; this only enforces the layout.
func DecodeSyncRequest(data []byte) (*replica.SyncRequest, error) {
	d := NewDecoder(data)
	if ver := d.Byte(); d.err == nil && ver != CodecVersion {
		return nil, fmt.Errorf("wire: sync request codec version %d, want %d", ver, CodecVersion)
	}
	req := &replica.SyncRequest{TargetID: vclock.ReplicaID(d.String())}
	req.Knowledge, req.Digest, req.Delta = d.knowledgeFrame()
	req.Epoch = d.Uvarint()
	req.Gen = d.Uvarint()
	req.Filter = d.Filter()
	req.Routing = d.Routing()
	req.MaxItems = int(d.Varint())
	req.MaxBytes = d.Varint()
	req.StrictBytes = d.Bool()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// AppendSyncResponse appends a complete v3 sync-response body: codec
// version, source ID, the prioritized batch, flags, and the optional learned
// knowledge.
func AppendSyncResponse(buf []byte, resp *replica.SyncResponse) ([]byte, error) {
	buf = append(buf, CodecVersion)
	buf = AppendString(buf, string(resp.SourceID))
	buf = AppendUvarint(buf, uint64(len(resp.Items)))
	for i := range resp.Items {
		bi := &resp.Items[i]
		if bi.Item == nil {
			return nil, fmt.Errorf("wire: batch item %d missing item", i)
		}
		buf = AppendItem(buf, bi.Item)
		//lint:allow transientleak -- BatchItem.Transient is the policy-mediated transmit copy (e.g. a halved spray allowance): an explicit field of the wire protocol, not a leak of host-local state
		buf = AppendTransient(buf, bi.Transient)
		buf = AppendVarint(buf, int64(bi.Priority.Class))
		buf = AppendFloat64(buf, bi.Priority.Cost)
	}
	buf = AppendBool(buf, resp.Truncated)
	buf = AppendBool(buf, resp.NeedKnowledge)
	return appendKnowledgeFrame(buf, resp.LearnedKnowledge, nil, nil)
}

// DecodeSyncResponse decodes a body written by AppendSyncResponse. Every
// item is copied out of data, so the caller may reuse its read buffer.
func DecodeSyncResponse(data []byte) (*replica.SyncResponse, error) {
	d := NewDecoder(data)
	if ver := d.Byte(); d.err == nil && ver != CodecVersion {
		return nil, fmt.Errorf("wire: sync response codec version %d, want %d", ver, CodecVersion)
	}
	resp := &replica.SyncResponse{SourceID: vclock.ReplicaID(d.String())}
	n := d.Uvarint()
	// Each batch item costs well over one byte; one is enough to unmask a
	// forged count before it sizes the allocation.
	if n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("wire: batch item count %d exceeds %d remaining bytes", n, d.Remaining())
	}
	if n > 0 {
		resp.Items = make([]replica.BatchItem, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		bi := replica.BatchItem{Item: d.Item(), Transient: d.Transient()}
		bi.Priority.Class = routing.Class(d.Varint())
		bi.Priority.Cost = d.Float64()
		resp.Items = append(resp.Items, bi)
	}
	resp.Truncated = d.Bool()
	resp.NeedKnowledge = d.Bool()
	var dg *vclock.Digest
	var dl *vclock.Delta
	resp.LearnedKnowledge, dg, dl = d.knowledgeFrame()
	if d.err == nil && (dg != nil || dl != nil) {
		return nil, errors.New("wire: sync response carries a summary knowledge frame")
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// AppendDone appends the encounter-closing acknowledgement body.
func AppendDone(buf []byte, applied int) []byte {
	buf = append(buf, CodecVersion)
	return AppendVarint(buf, int64(applied))
}

// DecodeDone decodes a body written by AppendDone.
func DecodeDone(data []byte) (int, error) {
	d := NewDecoder(data)
	if ver := d.Byte(); d.err == nil && ver != CodecVersion {
		return 0, fmt.Errorf("wire: done codec version %d, want %d", ver, CodecVersion)
	}
	applied := int(d.Varint())
	if err := d.Finish(); err != nil {
		return 0, err
	}
	return applied, nil
}
