// Package wire is the versioned, length-prefixed binary codec shared by the
// WAL persistence backend (record bodies, internal/persist/wal) and the TCP
// transport (protocol v3 frames, internal/transport). It replaces gob on both
// hot paths: encoding appends into a caller-supplied buffer so a steady-state
// writer allocates nothing, and decoding walks a byte slice with zero-copy
// views, materializing only the values that outlive the input.
//
// Layout conventions, shared by every message:
//
//   - integers are unsigned LEB128 varints (encoding/binary uvarint) unless a
//     fixed width is called out; signed integers use zigzag varints
//   - strings are uvarint length + raw bytes
//   - byte slices and string slices that must round-trip nil-vs-empty use a
//     shifted count: uvarint 0 encodes nil, n encodes a value of length n-1
//   - maps encode sorted by key so equal values produce equal bytes
//   - float64 is its IEEE-754 bit pattern as fixed 8-byte little-endian
//
// Every top-level message starts with a one-byte codec version so layouts can
// evolve; see DESIGN.md §14 for the versioning rules. Decoders never trust a
// decoded count to size an allocation: counts are checked against the bytes
// actually remaining first (each element costs at least one byte), so a
// hostile frame cannot turn a forged count into memory pressure.
package wire

import "errors"

// CodecVersion is the current layout version written as the first byte of
// every top-level message (WAL record bodies, v3 transport frame bodies).
// Decoders accept exactly the versions they know; an unknown version is a
// decode error, never a guess.
const CodecVersion = 1

// ErrTruncated reports input that ended before the message did.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTrailing reports input that continued after the message ended.
var ErrTrailing = errors.New("wire: trailing bytes after message")
