package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"reflect"
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, math.MaxUint64)
	buf = AppendVarint(buf, -1)
	buf = AppendVarint(buf, math.MinInt64)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendUint32(buf, 0xdeadbeef)
	buf = AppendUint64(buf, 0xfeedfacecafebeef)
	buf = AppendFloat64(buf, -3.25)
	buf = AppendString(buf, "héllo")
	buf = AppendString(buf, "")

	d := NewDecoder(buf)
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d, want 0", got)
	}
	if got := d.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint = %d, want max", got)
	}
	if got := d.Varint(); got != -1 {
		t.Errorf("varint = %d, want -1", got)
	}
	if got := d.Varint(); got != math.MinInt64 {
		t.Errorf("varint = %d, want min", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bools did not round-trip")
	}
	if got := d.Uint32(); got != 0xdeadbeef {
		t.Errorf("uint32 = %#x", got)
	}
	if got := d.Uint64(); got != 0xfeedfacecafebeef {
		t.Errorf("uint64 = %#x", got)
	}
	if got := d.Float64(); got != -3.25 {
		t.Errorf("float64 = %v", got)
	}
	if got := d.String(); got != "héllo" {
		t.Errorf("string = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("string = %q, want empty", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestNilAwareRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendBytes(buf, nil)
	buf = AppendBytes(buf, []byte{})
	buf = AppendBytes(buf, []byte("abc"))
	buf = AppendStrings(buf, nil)
	buf = AppendStrings(buf, []string{})
	buf = AppendStrings(buf, []string{"x", ""})

	d := NewDecoder(buf)
	if got := d.Bytes(); got != nil {
		t.Errorf("nil bytes decoded as %v", got)
	}
	if got := d.Bytes(); got == nil || len(got) != 0 {
		t.Errorf("empty bytes decoded as %v", got)
	}
	if got := d.BytesCopy(); string(got) != "abc" {
		t.Errorf("bytes = %q", got)
	}
	if got := d.Strings(); got != nil {
		t.Errorf("nil strings decoded as %v", got)
	}
	if got := d.Strings(); got == nil || len(got) != 0 {
		t.Errorf("empty strings decoded as %v", got)
	}
	if got := d.Strings(); !reflect.DeepEqual(got, []string{"x", ""}) {
		t.Errorf("strings = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderHostileInput(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		d := NewDecoder([]byte{0x80}) // unterminated varint
		d.Uvarint()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", d.Err())
		}
	})
	t.Run("trailing", func(t *testing.T) {
		d := NewDecoder([]byte{1, 2, 3})
		d.Byte()
		if err := d.Finish(); !errors.Is(err, ErrTrailing) {
			t.Errorf("Finish = %v, want ErrTrailing", err)
		}
	})
	t.Run("bad bool", func(t *testing.T) {
		d := NewDecoder([]byte{7})
		d.Bool()
		if d.Err() == nil {
			t.Error("bool byte 7 accepted")
		}
	})
	t.Run("forged string count", func(t *testing.T) {
		// Claims 2^40 strings with 2 bytes of input: must fail before any
		// allocation sized from the count.
		buf := AppendUvarint(nil, 1<<40+1)
		d := NewDecoder(buf)
		if got := d.Strings(); got != nil || d.Err() == nil {
			t.Errorf("forged count decoded: %v, err %v", got, d.Err())
		}
	})
	t.Run("forged bytes length", func(t *testing.T) {
		buf := AppendUvarint(nil, 1<<40)
		d := NewDecoder(buf)
		if got := d.Bytes(); got != nil || !errors.Is(d.Err(), ErrTruncated) {
			t.Errorf("forged length decoded: %v, err %v", got, d.Err())
		}
	})
	t.Run("sticky error", func(t *testing.T) {
		d := NewDecoder(nil)
		d.Byte()
		first := d.Err()
		d.Uint64()
		_ = d.String()
		if d.Err() != first {
			t.Errorf("error not sticky: %v then %v", first, d.Err())
		}
	})
}

func testItem() *item.Item {
	return &item.Item{
		ID:      item.ID{Creator: "a", Num: 7},
		Version: vclock.Version{Replica: "a", Seq: 9},
		Prior:   []vclock.Version{{Replica: "a", Seq: 3}, {Replica: "b", Seq: 1}},
		Deleted: false,
		Meta: item.Metadata{
			Source:       "user:1",
			Destinations: []string{"user:2", "user:3"},
			Kind:         "message",
			Created:      100,
			Expires:      900,
			Attrs:        map[string]string{"z": "1", "a": "2"},
		},
		Payload: []byte("payload bytes"),
	}
}

func TestItemRoundTrip(t *testing.T) {
	for name, it := range map[string]*item.Item{
		"full": testItem(),
		"minimal": {
			ID:      item.ID{Creator: "x", Num: 1},
			Version: vclock.Version{Replica: "x", Seq: 1},
		},
		"tombstone": {
			ID:      item.ID{Creator: "x", Num: 1},
			Version: vclock.Version{Replica: "y", Seq: 4},
			Deleted: true,
			Payload: []byte{},
		},
	} {
		t.Run(name, func(t *testing.T) {
			buf := AppendItem(nil, it)
			d := NewDecoder(buf)
			got := d.Item()
			if err := d.Finish(); err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if !reflect.DeepEqual(got, it) {
				t.Errorf("round trip:\n got %+v\nwant %+v", got, it)
			}
		})
	}
}

func TestItemDecodeCopies(t *testing.T) {
	it := testItem()
	buf := AppendItem(nil, it)
	d := NewDecoder(buf)
	got := d.Item()
	for i := range buf {
		buf[i] = 0xff
	}
	if !reflect.DeepEqual(got, it) {
		t.Error("decoded item aliases the input buffer")
	}
}

func TestTransientRoundTrip(t *testing.T) {
	for name, tr := range map[string]item.Transient{
		"nil":   nil,
		"empty": {},
		"full":  {item.FieldTTL: 5, item.FieldCopies: 3, item.FieldHops: 1},
	} {
		t.Run(name, func(t *testing.T) {
			buf := AppendTransient(nil, tr)
			d := NewDecoder(buf)
			got := d.Transient()
			if err := d.Finish(); err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Errorf("round trip: got %v, want %v", got, tr)
			}
		})
	}
}

func TestEntrySnapshotRoundTrip(t *testing.T) {
	e := &store.EntrySnapshot{
		Item:      testItem(),
		Transient: item.Transient{item.FieldCopies: 4},
		Relay:     true,
		Local:     false,
		Arrival:   42,
	}
	buf := AppendEntrySnapshot(nil, e)
	d := NewDecoder(buf)
	got := d.EntrySnapshot()
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, e)
	}
}

func TestMapEncodingDeterministic(t *testing.T) {
	// Map iteration order must not leak into the bytes.
	tr := item.Transient{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}
	first := AppendTransient(nil, tr)
	for i := 0; i < 32; i++ {
		if got := AppendTransient(nil, tr); !bytes.Equal(got, first) {
			t.Fatal("transient encoding depends on map order")
		}
	}
	it := testItem()
	firstItem := AppendItem(nil, it)
	for i := 0; i < 32; i++ {
		if got := AppendItem(nil, it); !bytes.Equal(got, firstItem) {
			t.Fatal("item encoding depends on map order")
		}
	}
}

func TestFilterRoundTrip(t *testing.T) {
	filters := map[string]filter.Filter{
		"nil":       nil,
		"all":       filter.All{},
		"none":      filter.None{},
		"addresses": filter.NewAddresses("user:1", "user:2"),
		"kind":      filter.Kind{Name: "message"},
		"or": filter.NewOr(
			filter.NewAddresses("user:1"),
			filter.Kind{Name: "control"},
			filter.NewOr(filter.None{}),
		),
	}
	for name, f := range filters {
		t.Run(name, func(t *testing.T) {
			buf, err := AppendFilter(nil, f)
			if err != nil {
				t.Fatalf("AppendFilter: %v", err)
			}
			d := NewDecoder(buf)
			got := d.Filter()
			if err := d.Finish(); err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if f == nil {
				if got != nil {
					t.Fatalf("nil filter decoded as %v", got)
				}
				return
			}
			if got.String() != f.String() {
				t.Errorf("round trip: got %v, want %v", got, f)
			}
		})
	}
}

func TestFilterDepthLimit(t *testing.T) {
	var f filter.Filter = filter.All{}
	for i := 0; i < maxFilterDepth+2; i++ {
		f = filter.NewOr(f)
	}
	if _, err := AppendFilter(nil, f); err == nil {
		t.Error("over-deep filter encoded")
	}
	// Hostile deep frame: nested Or tags.
	var buf []byte
	for i := 0; i < maxFilterDepth+2; i++ {
		buf = append(buf, filterOr)
		buf = AppendUvarint(buf, 1)
	}
	buf = append(buf, filterAll)
	d := NewDecoder(buf)
	d.Filter()
	if d.Err() == nil {
		t.Error("over-deep frame decoded")
	}
}

func TestFilterUnknownTag(t *testing.T) {
	d := NewDecoder([]byte{99})
	if got := d.Filter(); got != nil || d.Err() == nil {
		t.Errorf("unknown tag decoded: %v, err %v", got, d.Err())
	}
}

func TestRoutingRoundTrip(t *testing.T) {
	gob.Register(&prophet.Request{})
	t.Run("nil", func(t *testing.T) {
		buf, err := AppendRouting(nil, nil)
		if err != nil {
			t.Fatalf("AppendRouting: %v", err)
		}
		d := NewDecoder(buf)
		if got := d.Routing(); got != nil {
			t.Errorf("nil routing decoded as %v", got)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	})
	t.Run("prophet", func(t *testing.T) {
		req := &prophet.Request{From: "a", OwnAddresses: []string{"user:1"}, Predictability: map[string]float64{"user:2": 0.5}}
		buf, err := AppendRouting(nil, routing.Request(req))
		if err != nil {
			t.Fatalf("AppendRouting: %v", err)
		}
		d := NewDecoder(buf)
		got := d.Routing()
		if err := d.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if !reflect.DeepEqual(got, routing.Request(req)) {
			t.Errorf("round trip: got %#v, want %#v", got, req)
		}
	})
	t.Run("hostile blob", func(t *testing.T) {
		buf := append([]byte{1}, AppendBytes(nil, []byte("not gob"))...)
		d := NewDecoder(buf)
		if got := d.Routing(); got != nil || d.Err() == nil {
			t.Errorf("hostile blob decoded: %v, err %v", got, d.Err())
		}
	})
}

func sampleKnowledge(t *testing.T) *vclock.Knowledge {
	t.Helper()
	k := vclock.NewKnowledge()
	for s := uint64(1); s <= 5; s++ {
		k.Add(vclock.Version{Replica: "a", Seq: s})
	}
	k.Add(vclock.Version{Replica: "b", Seq: 3})
	k.Add(vclock.Version{Replica: "b", Seq: 7})
	return k
}

func TestSyncRequestRoundTrip(t *testing.T) {
	know := sampleKnowledge(t)
	cases := map[string]*replica.SyncRequest{
		"exact": {
			TargetID:  "t",
			Knowledge: know,
			Epoch:     3,
			Gen:       9,
			Filter:    filter.NewAddresses("user:1"),
			MaxItems:  10,
			MaxBytes:  1 << 20,
		},
		"digest": {
			TargetID: "t",
			Digest:   know.Digest(0.01),
			Filter:   filter.All{},
		},
		"delta": {
			TargetID:    "t",
			Delta:       vclock.NewDelta(2, 5, know),
			StrictBytes: true,
		},
	}
	for name, req := range cases {
		t.Run(name, func(t *testing.T) {
			buf, err := AppendSyncRequest(nil, req)
			if err != nil {
				t.Fatalf("AppendSyncRequest: %v", err)
			}
			got, err := DecodeSyncRequest(buf)
			if err != nil {
				t.Fatalf("DecodeSyncRequest: %v", err)
			}
			if got.TargetID != req.TargetID || got.Epoch != req.Epoch || got.Gen != req.Gen ||
				got.MaxItems != req.MaxItems || got.MaxBytes != req.MaxBytes || got.StrictBytes != req.StrictBytes {
				t.Errorf("scalar fields: got %+v, want %+v", got, req)
			}
			if (req.Knowledge == nil) != (got.Knowledge == nil) ||
				(req.Knowledge != nil && !got.Knowledge.Equal(req.Knowledge)) {
				t.Errorf("knowledge: got %v, want %v", got.Knowledge, req.Knowledge)
			}
			if (req.Digest == nil) != (got.Digest == nil) {
				t.Errorf("digest presence: got %v, want %v", got.Digest, req.Digest)
			}
			if req.Digest != nil {
				w, _ := req.Digest.MarshalBinary()
				g, _ := got.Digest.MarshalBinary()
				if !bytes.Equal(w, g) {
					t.Error("digest did not round-trip")
				}
			}
			if (req.Delta == nil) != (got.Delta == nil) {
				t.Errorf("delta presence: got %v, want %v", got.Delta, req.Delta)
			}
			if req.Delta != nil && (got.Delta.Epoch() != req.Delta.Epoch() ||
				got.Delta.Gen() != req.Delta.Gen() || !got.Delta.Changes().Equal(req.Delta.Changes())) {
				t.Error("delta did not round-trip")
			}
			if (req.Filter == nil) != (got.Filter == nil) ||
				(req.Filter != nil && got.Filter.String() != req.Filter.String()) {
				t.Errorf("filter: got %v, want %v", got.Filter, req.Filter)
			}
		})
	}
}

func TestSyncRequestMultipleFramesRejected(t *testing.T) {
	know := sampleKnowledge(t)
	req := &replica.SyncRequest{Knowledge: know, Digest: know.Digest(0.01)}
	if _, err := AppendSyncRequest(nil, req); err == nil {
		t.Error("request with two knowledge frames encoded")
	}
}

func TestSyncResponseRoundTrip(t *testing.T) {
	resp := &replica.SyncResponse{
		SourceID: "s",
		Items: []replica.BatchItem{
			{Item: testItem(), Transient: item.Transient{item.FieldCopies: 2}, Priority: routing.Priority{Class: 3, Cost: 1.5}},
			{Item: &item.Item{ID: item.ID{Creator: "b", Num: 1}, Version: vclock.Version{Replica: "b", Seq: 1}}},
		},
		Truncated:        true,
		LearnedKnowledge: sampleKnowledge(t),
	}
	buf, err := AppendSyncResponse(nil, resp)
	if err != nil {
		t.Fatalf("AppendSyncResponse: %v", err)
	}
	got, err := DecodeSyncResponse(buf)
	if err != nil {
		t.Fatalf("DecodeSyncResponse: %v", err)
	}
	if got.SourceID != resp.SourceID || got.Truncated != resp.Truncated || got.NeedKnowledge != resp.NeedKnowledge {
		t.Errorf("scalar fields: got %+v", got)
	}
	if !reflect.DeepEqual(got.Items, resp.Items) {
		t.Errorf("items:\n got %+v\nwant %+v", got.Items, resp.Items)
	}
	if got.LearnedKnowledge == nil || !got.LearnedKnowledge.Equal(resp.LearnedKnowledge) {
		t.Errorf("learned knowledge: got %v", got.LearnedKnowledge)
	}

	empty := &replica.SyncResponse{SourceID: "s", NeedKnowledge: true}
	buf, err = AppendSyncResponse(nil, empty)
	if err != nil {
		t.Fatalf("AppendSyncResponse: %v", err)
	}
	got, err = DecodeSyncResponse(buf)
	if err != nil {
		t.Fatalf("DecodeSyncResponse: %v", err)
	}
	if !got.NeedKnowledge || got.Items != nil || got.LearnedKnowledge != nil {
		t.Errorf("empty response: got %+v", got)
	}
}

func TestSyncResponseForgedCount(t *testing.T) {
	var buf []byte
	buf = append(buf, CodecVersion)
	buf = AppendString(buf, "s")
	buf = AppendUvarint(buf, 1<<50) // forged item count
	if _, err := DecodeSyncResponse(buf); err == nil {
		t.Error("forged item count decoded")
	}
}

func TestDoneRoundTrip(t *testing.T) {
	buf := AppendDone(nil, 17)
	got, err := DecodeDone(buf)
	if err != nil || got != 17 {
		t.Errorf("DecodeDone = %d, %v", got, err)
	}
	if _, err := DecodeDone(append(buf, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestMutationsRoundTrip(t *testing.T) {
	know, err := sampleKnowledge(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	muts := []replica.Mutation{
		{Kind: replica.MutPut, Entry: &store.EntrySnapshot{Item: testItem(), Transient: item.Transient{"ttl": 2}, Local: true, Arrival: 5}, NextArrival: 6},
		{Kind: replica.MutRemove, ID: item.ID{Creator: "a", Num: 7}, NextArrival: 7},
		{Kind: replica.MutLearn, Versions: []vclock.Version{{Replica: "a", Seq: 9}}, Seq: 4},
		{Kind: replica.MutMerge, Knowledge: know},
		{Kind: replica.MutIdentity, Own: []string{"user:1"}, FilterAddrs: []string{"user:1", "user:2"}},
		{Kind: replica.MutIdentity, Own: []string{}, FilterAddrs: nil},
	}
	buf, err := AppendMutations(nil, muts)
	if err != nil {
		t.Fatalf("AppendMutations: %v", err)
	}
	got, err := DecodeMutations(buf)
	if err != nil {
		t.Fatalf("DecodeMutations: %v", err)
	}
	if !reflect.DeepEqual(got, muts) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, muts)
	}
	// The nil-vs-empty distinctions that carry meaning must survive.
	if got[4].FilterAddrs == nil {
		t.Error("non-nil FilterAddrs decoded as nil")
	}
	if got[5].FilterAddrs != nil {
		t.Error("nil FilterAddrs decoded as non-nil")
	}
}

func TestMutationsPoisonMarker(t *testing.T) {
	muts := []replica.Mutation{{Kind: replica.MutMerge, Knowledge: nil}}
	buf, err := AppendMutations(nil, muts)
	if err != nil {
		t.Fatalf("AppendMutations: %v", err)
	}
	got, err := DecodeMutations(buf)
	if err != nil {
		t.Fatalf("DecodeMutations: %v", err)
	}
	if got[0].Knowledge != nil {
		t.Error("poison-marker nil Knowledge decoded as non-nil")
	}
}

func TestMutationsUnknownKind(t *testing.T) {
	muts := []replica.Mutation{{Kind: 99}}
	if _, err := AppendMutations(nil, muts); err == nil {
		t.Error("unknown kind encoded")
	}
	var buf []byte
	buf = append(buf, CodecVersion)
	buf = AppendUvarint(buf, 1)
	buf = append(buf, 99)
	if _, err := DecodeMutations(buf); err == nil {
		t.Error("unknown kind decoded")
	}
}

func TestCodecVersionRejected(t *testing.T) {
	muts := []replica.Mutation{{Kind: replica.MutRemove, ID: item.ID{Creator: "a", Num: 1}}}
	buf, err := AppendMutations(nil, muts)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = CodecVersion + 1
	if _, err := DecodeMutations(buf); err == nil {
		t.Error("future codec version decoded")
	}
}

// TestDifferentialGob proves the binary codec and the legacy gob encoding
// describe the same values: gob round-trip and binary round-trip of the same
// mutation batch yield deeply equal results.
func TestDifferentialGob(t *testing.T) {
	know, err := sampleKnowledge(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	muts := []replica.Mutation{
		{Kind: replica.MutPut, Entry: &store.EntrySnapshot{Item: testItem(), Arrival: 1}, NextArrival: 2},
		{Kind: replica.MutLearn, Versions: []vclock.Version{{Replica: "a", Seq: 9}, {Replica: "b", Seq: 2}}, Seq: 3},
		{Kind: replica.MutMerge, Knowledge: know},
	}
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(muts); err != nil {
		t.Fatal(err)
	}
	var viaGob []replica.Mutation
	if err := gob.NewDecoder(&gobBuf).Decode(&viaGob); err != nil {
		t.Fatal(err)
	}
	binBuf, err := AppendMutations(nil, muts)
	if err != nil {
		t.Fatal(err)
	}
	viaBin, err := DecodeMutations(binBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaGob, viaBin) {
		t.Errorf("gob and binary disagree:\n gob %+v\n bin %+v", viaGob, viaBin)
	}
	if len(binBuf) >= gobBuf.Cap() {
		t.Logf("note: binary (%d B) not smaller than gob for this batch", len(binBuf))
	}
}

// TestAppendAllocs proves the append side is zero-alloc once the caller's
// buffer has capacity — the property the WAL hot path depends on.
func TestAppendAllocs(t *testing.T) {
	e := &store.EntrySnapshot{Item: testItem(), Transient: item.Transient{"ttl": 1}, Arrival: 3}
	muts := []replica.Mutation{
		{Kind: replica.MutPut, Entry: e, NextArrival: 4},
		{Kind: replica.MutLearn, Versions: []vclock.Version{{Replica: "a", Seq: 9}}, Seq: 4},
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendMutations(buf[:0], muts)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("AppendMutations allocates %.1f times per call with a warm buffer", allocs)
	}
}
