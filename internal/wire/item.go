package wire

import (
	"fmt"

	"replidtn/internal/item"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// Codecs for the item-layer values that ride inside WAL record bodies and v3
// transport frames. Decoded values copy every field out of the input buffer:
// an *item.Item or EntrySnapshot escapes into the store and must not alias a
// reusable read buffer.

// sortKeys sorts a small key slice in place. Map fields here (Transient,
// Metadata.Attrs) hold a handful of entries, so an insertion sort over a
// caller's stack-backed slice beats sort.Strings, which forces the slice to
// escape through its interface argument.
func sortKeys(keys []string) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// AppendVersion appends replica ID + sequence.
func AppendVersion(buf []byte, v vclock.Version) []byte {
	buf = AppendString(buf, string(v.Replica))
	return AppendUvarint(buf, v.Seq)
}

// Version decodes a version.
func (d *Decoder) Version() vclock.Version {
	return vclock.Version{Replica: vclock.ReplicaID(d.String()), Seq: d.Uvarint()}
}

// AppendVersions appends a nil-aware version slice.
func AppendVersions(buf []byte, vs []vclock.Version) []byte {
	if vs == nil {
		return append(buf, 0)
	}
	buf = AppendUvarint(buf, uint64(len(vs))+1)
	for _, v := range vs {
		buf = AppendVersion(buf, v)
	}
	return buf
}

// Versions decodes a nil-aware version slice.
func (d *Decoder) Versions() []vclock.Version {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	n--
	// Each version costs at least two bytes (ID length prefix + seq).
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Errorf("wire: version count %d exceeds %d remaining bytes", n, d.Remaining()))
		return nil
	}
	vs := make([]vclock.Version, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		vs = append(vs, d.Version())
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// AppendItemID appends creator + number.
func AppendItemID(buf []byte, id item.ID) []byte {
	buf = AppendString(buf, string(id.Creator))
	return AppendUvarint(buf, id.Num)
}

// ItemID decodes an item ID.
func (d *Decoder) ItemID() item.ID {
	return item.ID{Creator: vclock.ReplicaID(d.String()), Num: d.Uvarint()}
}

// AppendTransient appends a nil-aware transient map, keys sorted for
// deterministic bytes.
func AppendTransient(buf []byte, t item.Transient) []byte {
	if t == nil {
		return append(buf, 0)
	}
	buf = AppendUvarint(buf, uint64(len(t))+1)
	var arr [8]string
	keys := arr[:0]
	for k := range t {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		buf = AppendString(buf, k)
		buf = AppendFloat64(buf, t[k])
	}
	return buf
}

// Transient decodes a nil-aware transient map.
func (d *Decoder) Transient() item.Transient {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	n--
	// Each entry costs at least nine bytes (key prefix + fixed float64).
	if n > uint64(d.Remaining())/9 {
		d.fail(fmt.Errorf("wire: transient count %d exceeds %d remaining bytes", n, d.Remaining()))
		return nil
	}
	t := make(item.Transient, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.String()
		t[k] = d.Float64()
	}
	if d.err != nil {
		return nil
	}
	return t
}

// appendAttrs appends a nil-aware string map, keys sorted.
func appendAttrs(buf []byte, attrs map[string]string) []byte {
	if attrs == nil {
		return append(buf, 0)
	}
	buf = AppendUvarint(buf, uint64(len(attrs))+1)
	var arr [8]string
	keys := arr[:0]
	for k := range attrs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		buf = AppendString(buf, k)
		buf = AppendString(buf, attrs[k])
	}
	return buf
}

// attrs decodes a nil-aware string map.
func (d *Decoder) attrs() map[string]string {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	n--
	// Each entry costs at least two length prefixes.
	if n > uint64(d.Remaining())/2 {
		d.fail(fmt.Errorf("wire: attr count %d exceeds %d remaining bytes", n, d.Remaining()))
		return nil
	}
	attrs := make(map[string]string, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.String()
		attrs[k] = d.String()
	}
	if d.err != nil {
		return nil
	}
	return attrs
}

// AppendItem appends a full item: ID, version, prior versions, tombstone
// flag, metadata, payload.
func AppendItem(buf []byte, it *item.Item) []byte {
	buf = AppendItemID(buf, it.ID)
	buf = AppendVersion(buf, it.Version)
	buf = AppendVersions(buf, it.Prior)
	buf = AppendBool(buf, it.Deleted)
	buf = AppendString(buf, it.Meta.Source)
	buf = AppendStrings(buf, it.Meta.Destinations)
	buf = AppendString(buf, it.Meta.Kind)
	buf = AppendVarint(buf, it.Meta.Created)
	buf = AppendVarint(buf, it.Meta.Expires)
	buf = appendAttrs(buf, it.Meta.Attrs)
	return AppendBytes(buf, it.Payload)
}

// Item decodes a full item. Every field, including the payload, is copied
// out of the decoder's buffer.
func (d *Decoder) Item() *item.Item {
	it := &item.Item{
		ID:      d.ItemID(),
		Version: d.Version(),
		Prior:   d.Versions(),
		Deleted: d.Bool(),
	}
	it.Meta.Source = d.String()
	it.Meta.Destinations = d.Strings()
	it.Meta.Kind = d.String()
	it.Meta.Created = d.Varint()
	it.Meta.Expires = d.Varint()
	it.Meta.Attrs = d.attrs()
	it.Payload = d.BytesCopy()
	if d.err != nil {
		return nil
	}
	return it
}

// AppendEntrySnapshot appends a stored-entry snapshot: the item plus its
// per-copy transient state, placement flags, and arrival stamp.
func AppendEntrySnapshot(buf []byte, e *store.EntrySnapshot) []byte {
	buf = AppendItem(buf, e.Item)
	buf = AppendTransient(buf, e.Transient) //lint:allow transientleak -- the snapshot codec's own crossing: EntrySnapshot deliberately carries per-copy state, and each caller (WAL persistence, the sync batch's transmit copy) annotates its sanctioned use
	buf = AppendBool(buf, e.Relay)
	buf = AppendBool(buf, e.Local)
	return AppendUvarint(buf, e.Arrival)
}

// EntrySnapshot decodes a stored-entry snapshot.
func (d *Decoder) EntrySnapshot() *store.EntrySnapshot {
	e := &store.EntrySnapshot{
		Item:      d.Item(),
		Transient: d.Transient(),
		Relay:     d.Bool(),
		Local:     d.Bool(),
		Arrival:   d.Uvarint(),
	}
	if d.err != nil {
		return nil
	}
	return e
}
