//go:build corpusgen

package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. It is excluded from normal builds by the corpusgen tag; run
//
//	go test -tags corpusgen -run WriteFuzzCorpus ./internal/wire/
//
// after changing the frame layout or the seed set, and commit the result.
// The corpus pins one valid encoding per frame family (exact/digest/delta
// requests, a response with items, done, a mutation batch) plus the boundary
// shapes (truncation, bad codec version, empty input).
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range wireFuzzSeeds(t) {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
