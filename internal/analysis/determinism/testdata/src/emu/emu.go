// Package emu is a determinism-analyzer fixture mimicking a
// determinism-critical package (its import-path segment "emu" is in the
// critical set).
package emu

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

// wallClock exercises the banned time entry points.
func wallClock() (time.Time, time.Duration) {
	start := time.Now()            // want `time.Now reads the wall clock`
	elapsed := time.Since(start)   // want `time.Since reads the wall clock`
	_ = time.Until(start)          // want `time.Until reads the wall clock`
	_ = start.Add(time.Second)     // method on an explicit value: fine
	_ = time.Unix(42, 0)           // pure construction: fine
	return start, elapsed
}

// injectedClock shows the sanctioned pattern: the clock is a value, and
// referencing time.Now as the injected default is not a call.
type config struct {
	Clock func() time.Time
}

func defaulted(cfg config) func() time.Time {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg.Clock
}

// globalRand exercises the banned shared-source rand functions.
func globalRand(seed int64) int {
	n := rand.Intn(10) // want `global rand.Intn draws from the shared unseeded source`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand.Shuffle draws from the shared unseeded source`
	rng := rand.New(rand.NewSource(seed)) // seeded constructor: fine
	return rng.Intn(10)                   // method on the seeded generator: fine
}

// env exercises the environment lookups.
func env() string {
	if v, ok := os.LookupEnv("DTN_DEBUG"); ok { // want `os.LookupEnv makes behavior depend on the environment`
		return v
	}
	return os.Getenv("DTN_MODE") // want `os.Getenv makes behavior depend on the environment`
}

// eventLog mimics the emulation engine's event recorder.
type eventLog struct{ b strings.Builder }

func (l *eventLog) Record(line string) { l.b.WriteString(line) }

// emitCopies reproduces the PR 2 bug shape: committing event-log lines
// while iterating the copy table map.
func emitCopies(log *eventLog, copies map[string]int) {
	for id, n := range copies {
		log.Record(fmt.Sprintf("copies %s=%d\n", id, n)) // want `writes in map order`
	}
}

// emitCopiesSorted is the fixed shape: collect, sort, then emit.
func emitCopiesSorted(log *eventLog, copies map[string]int) {
	ids := make([]string, 0, len(copies))
	for id := range copies {
		ids = append(ids, id) // sorted immediately below: fine
	}
	sort.Strings(ids)
	for _, id := range ids {
		log.Record(fmt.Sprintf("copies %s=%d\n", id, copies[id]))
	}
}

// collectUnsorted leaks map order through an escaping slice.
func collectUnsorted(copies map[string]int) []string {
	var ids []string
	for id := range copies {
		ids = append(ids, id) // want `append to ids inside iteration over a map commits map order`
	}
	return ids
}

// nestedSorted mirrors vclock's Knowledge.String: the append happens in a
// nested map range and the sort follows the outer loop.
func nestedSorted(extra map[string]map[uint64]bool) []string {
	var versions []string
	for r, ex := range extra {
		for s := range ex {
			versions = append(versions, fmt.Sprintf("%s:%d", r, s)) // sorted after the outer loop: fine
		}
	}
	sort.Strings(versions)
	return versions
}

// writerLeak commits stream output in map order.
func writerLeak(w *strings.Builder, m map[string]int) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `Fprintf inside iteration over a map writes in map order`
	}
}

// channelLeak publishes values in map order.
func channelLeak(ch chan string, m map[string]int) {
	for k := range m {
		ch <- k // want `send on ch inside iteration over a map publishes values in map order`
	}
}

// mapToMap is order-free: writing into another map commits nothing.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// allowed demonstrates the justified escape hatch.
func allowed(m map[string]int) []string {
	var ids []string
	for id := range m {
		ids = append(ids, id) //lint:allow determinism -- fixture: order is folded through a commutative reduction downstream
	}
	return ids
}

// unjustified demonstrates that a bare allow is itself a diagnostic — and
// suppresses nothing, so the original finding stands beside it.
func unjustified(m map[string]int) []string {
	var ids []string
	for id := range m {
		ids = append(ids, id) //lint:allow determinism // want `allow comment needs a justification` `append to ids inside iteration over a map`
	}
	return ids
}
