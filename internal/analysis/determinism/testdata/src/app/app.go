// Package app is a determinism-analyzer fixture for a package outside the
// determinism-critical set: nothing here may be flagged.
package app

import (
	"math/rand"
	"os"
	"time"
)

func clock() time.Time { return time.Now() }

func roll() int { return rand.Intn(6) }

func mode() string { return os.Getenv("APP_MODE") }

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
