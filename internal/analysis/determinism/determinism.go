// Package determinism implements the dtnlint analyzer that keeps
// wall-clock time, ambient randomness, environment lookups, and unordered
// map iteration out of the packages whose behavior must be bit-identical
// across runs and engine configurations (DESIGN.md §8, §10).
//
// The parallel emulation engine and the seeded fault plan both promise
// byte-identical output for a given seed; that promise only holds while
// every input is explicit (injected clocks, seeded rand.New sources) and
// every committed effect is produced in a deterministic order. This
// analyzer mechanizes those rules:
//
//   - no time.Now / time.Since / time.Until calls;
//   - no package-level math/rand functions (seeded *rand.Rand instances
//     created with rand.New(rand.NewSource(seed)) remain fine);
//   - no os.Getenv / os.LookupEnv / os.Environ — environment-derived
//     behavior is invisible to the seed;
//   - no map iteration whose body feeds an order-sensitive sink (appends to
//     an outer slice, writes to an outer writer or logger, sends on an
//     outer channel) unless the appended slice is sorted immediately after
//     the loop — the exact bug shape the engine differential tests exist
//     to catch, found late and expensively; this analyzer finds it at
//     make-check time with a file:line.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &lintcore.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, ambient randomness, env lookups, and order-leaking map iteration in determinism-critical packages",
	Run:  run,
}

// criticalSegments names the packages (by import-path segment) whose
// behavior must be reproducible from explicit seeds and injected clocks.
var criticalSegments = []string{"emu", "fault", "replica", "store", "vclock", "routing", "discovery", "obs", "trace", "mobility"}

// bannedTime are the wall-clock entry points.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are the math/rand constructors that produce explicitly seeded
// generators; every other package-level function draws from the shared
// global source.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// bannedEnv are the environment lookups.
var bannedEnv = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

// writeVerbs name methods that commit output when invoked on state from
// outside a map-iteration body: stream writers, formatted printers, and the
// event-recorder verbs used by the emulation engine.
var writeVerbs = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Log": true, "Logf": true, "Record": true, "Emit": true,
}

// sortFuncs are the calls accepted as the "intervening sort" that makes a
// map-range-collected slice deterministic again.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true, "sort.SliceStable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func run(pass *lintcore.Pass) error {
	if !lintcore.PathHasSegment(pass.Pkg.Path(), criticalSegments...) {
		return nil
	}
	for _, f := range pass.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					checkMapRange(pass, file, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags calls into the banned nondeterministic APIs.
func checkCall(pass *lintcore.Pass, call *ast.CallExpr) {
	fn := lintcore.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine: the
	// receiver is an explicit, injectable value. Only package-level
	// functions reach ambient state.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; inject a clock (cfg.Clock / Now func) so emulation and tests control time", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(call.Pos(), "global rand.%s draws from the shared unseeded source; use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Name())
		}
	case "os":
		if bannedEnv[fn.Name()] {
			pass.Reportf(call.Pos(), "os.%s makes behavior depend on the environment, invisible to the run's seed; take configuration explicitly", fn.Name())
		}
	}
}

// checkMapRange inspects one iteration over a map for effects whose order
// depends on Go's randomized map iteration.
func checkMapRange(pass *lintcore.Pass, file *ast.File, rng *ast.RangeStmt) {
	outer := func(e ast.Expr) types.Object {
		id := lintcore.RootIdent(e)
		if id == nil {
			return nil
		}
		obj := lintcore.ObjectOf(pass.TypesInfo, id)
		if obj == nil || obj.Pos() == 0 {
			return nil
		}
		// Declared outside the loop body (package-level objects included).
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			return nil
		}
		return obj
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for j, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(n.Lhs) <= j {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				obj := outer(n.Lhs[j])
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
					continue
				}
				if sortedAfter(pass, file, obj, rng.End()) {
					continue
				}
				pass.Reportf(n.Pos(), "append to %s inside iteration over a map commits map order; sort %s right after the loop or iterate a sorted key slice", obj.Name(), obj.Name())
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !writeVerbs[sel.Sel.Name] {
				return true
			}
			// Method on outer state (recorder.Log, buf.WriteString), or a
			// package-level printer writing to an outer destination
			// (fmt.Fprintf(w, ...)).
			target := ast.Expr(sel.X)
			if fn := lintcore.CalleeFunc(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil {
				if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() == nil {
					if len(n.Args) == 0 {
						return true
					}
					target = n.Args[0]
				}
			}
			if obj := outer(target); obj != nil {
				pass.Reportf(n.Pos(), "%s inside iteration over a map writes in map order; collect into a slice and sort before emitting", sel.Sel.Name)
			}
		case *ast.SendStmt:
			if obj := outer(n.Chan); obj != nil {
				pass.Reportf(n.Pos(), "send on %s inside iteration over a map publishes values in map order; sort first", obj.Name())
			}
		}
		return true
	})
}

// sortedAfter reports whether the first use of obj after the loop (in
// source order, anywhere in the file, so nested loops and enclosing blocks
// are handled uniformly) is as an argument to a recognized sort call — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(pass *lintcore.Pass, file *ast.File, obj types.Object, after token.Pos) bool {
	var first *ast.Ident
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && id.Pos() > after && lintcore.ObjectOf(pass.TypesInfo, id) == obj {
			if first == nil || id.Pos() < first.Pos() {
				first = id
			}
		}
		return true
	})
	if first == nil {
		return false // never used again: map order escapes with the slice
	}
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintcore.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !sortFuncs[fn.Pkg().Name()+"."+fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id == first {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
