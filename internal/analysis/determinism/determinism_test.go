package determinism_test

import (
	"testing"

	"replidtn/internal/analysis/determinism"
	"replidtn/internal/analysis/linttest"
)

// TestGolden checks the analyzer against the fixture packages: banned
// wall-clock/rand/env calls and order-leaking map iteration are flagged in
// the critical package, the collect-then-sort idiom and non-critical
// packages stay quiet, and the //lint:allow escape hatch suppresses exactly
// the annotated line (an unjustified allow is itself a diagnostic).
func TestGolden(t *testing.T) {
	linttest.Run(t, determinism.Analyzer)
}
