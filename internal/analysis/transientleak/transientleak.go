// Package transientleak implements the dtnlint analyzer that mechanizes the
// paper's replicated-vs-transient metadata split (PAPER §item model,
// DESIGN.md §2): host-specific transient metadata — TTL hop budgets, spray
// copy allowances, traversal hop counts — is per-copy state that is "never
// replicated". A transient value that slips into a wire frame or a
// serialized snapshot silently turns host-local routing state into
// replicated state, which the differential and crash-restart tests would
// only catch indirectly, if at all.
//
// The analyzer flags item.Transient (or any type containing it) at three
// serialization boundaries:
//
//   - arguments to (*encoding/gob.Encoder).Encode — the legacy wire and
//     snapshot encoding the transport and persist layers use;
//   - gob.Register / gob.RegisterName arguments — registering a
//     transient-bearing type declares the intent to ship it;
//   - arguments to the binary codec's Append* entry points (any package
//     with a "wire" import-path segment) — since protocol v3 these, not
//     gob, are how values reach wire frames and WAL records;
//   - struct types declared in a transport package whose fields contain
//     item.Transient — frame structs are the wire contract.
//
// The two sanctioned crossings are annotated with //lint:allow at the call
// site and cataloged in DESIGN.md §10: the sync batch (replica.BatchItem
// carries the policy-mediated transmit transient built by transmitTransient,
// e.g. a halved spray allowance — an explicit wire field of the protocol,
// not a leak) and the persist snapshot (a restart restores the same host,
// so its own per-copy state legitimately survives).
package transientleak

import (
	"go/ast"
	"go/types"
	"strings"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the transient-metadata isolation checker.
var Analyzer = &lintcore.Analyzer{
	Name: "transientleak",
	Doc:  "forbid host-specific transient item metadata from reaching gob encoding or transport frame structs",
	Run:  run,
}

func run(pass *lintcore.Pass) error {
	inTransport := lintcore.PathHasSegment(pass.Pkg.Path(), "transport")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkEncode(pass, n)
			case *ast.TypeSpec:
				if inTransport {
					checkFrameStruct(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkEncode flags gob encoding/registration and binary-codec appends of
// transient-bearing values.
func checkEncode(pass *lintcore.Pass, call *ast.CallExpr) {
	fn := lintcore.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return
	}
	switch {
	case fn.Pkg().Path() == "encoding/gob":
		switch fn.Name() {
		case "Encode", "EncodeValue", "Register", "RegisterName":
		default:
			return
		}
		arg := call.Args[len(call.Args)-1]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok {
			return
		}
		if path := transientPath(tv.Type, nil); path != "" {
			pass.Reportf(call.Pos(), "transient host-specific metadata reaches gob.%s via %s (through %s); transient fields are never replicated — strip them or annotate the sanctioned crossing", fn.Name(), types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), path)
		}
	case lintcore.PathHasSegment(fn.Pkg().Path(), "wire") && strings.HasPrefix(fn.Name(), "Append"):
		// Binary-codec entry points serialize exactly like gob.Encode: any
		// transient-bearing argument (the destination buffer never is) turns
		// host-local state into wire or WAL bytes.
		for _, arg := range call.Args {
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok {
				continue
			}
			if path := transientPath(tv.Type, nil); path != "" {
				pass.Reportf(call.Pos(), "transient host-specific metadata reaches wire.%s via %s (through %s); transient fields are never replicated — strip them or annotate the sanctioned crossing", fn.Name(), types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), path)
				return
			}
		}
	}
}

// checkFrameStruct flags transient-bearing fields of wire frame structs.
func checkFrameStruct(pass *lintcore.Pass, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		// Unexported fields never serialize under gob; they are exactly
		// where deliberately host-local state belongs.
		exported := len(field.Names) == 0 // embedded: conservatively check
		for _, name := range field.Names {
			if name.IsExported() {
				exported = true
			}
		}
		if !exported {
			continue
		}
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if path := transientPath(tv.Type, nil); path != "" {
			pass.Reportf(field.Pos(), "frame struct %s carries transient host-specific metadata (through %s); the wire format must only move replicated state", spec.Name.Name, path)
		}
	}
}

// transientPath reports how t reaches item.Transient ("" when it does not):
// the shortest chain of named types / struct fields, rendered for the
// diagnostic. The item package is identified by its import-path tail so the
// analyzer also works against golden-test fixtures mimicking it.
func transientPath(t types.Type, seen map[types.Type]bool) string {
	if isTransient(t) {
		return typeName(t)
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named, *types.Alias:
		return transientPath(u.Underlying(), seen)
	case *types.Pointer:
		return transientPath(u.Elem(), seen)
	case *types.Slice:
		return transientPath(u.Elem(), seen)
	case *types.Array:
		return transientPath(u.Elem(), seen)
	case *types.Map:
		if p := transientPath(u.Key(), seen); p != "" {
			return p
		}
		return transientPath(u.Elem(), seen)
	case *types.Chan:
		return transientPath(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			// gob serializes exported fields only; an unexported transient
			// field cannot cross the boundary.
			if !f.Exported() {
				continue
			}
			if p := transientPath(f.Type(), seen); p != "" {
				return "field " + f.Name() + " → " + p
			}
		}
	}
	return ""
}

// isTransient reports whether t is the named type Transient declared in an
// item package.
func isTransient(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Transient" {
		return false
	}
	return lintcore.PathHasSegment(obj.Pkg().Path(), "item")
}

// typeName renders a type's bare name for the reach chain.
func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return t.String()
}
