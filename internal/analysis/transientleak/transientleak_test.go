package transientleak_test

import (
	"testing"

	"replidtn/internal/analysis/linttest"
	"replidtn/internal/analysis/transientleak"
)

// TestGolden checks the analyzer against the fixture packages: transient
// metadata reaching gob encoding/registration and transient-bearing
// transport frame structs are flagged, replicated-only payloads and
// unexported (never-serialized) fields stay quiet, and the justified
// //lint:allow escape hatch marks the two sanctioned crossings.
func TestGolden(t *testing.T) {
	linttest.Run(t, transientleak.Analyzer)
}
