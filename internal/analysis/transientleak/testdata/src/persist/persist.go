// Package persist is a transientleak-analyzer fixture mimicking the
// snapshot layer: the gob boundary is checked here too, while struct
// declarations are not (only transport frames are wire contracts).
package persist

import (
	"encoding/gob"
	"io"

	"fixtures/item"
)

// envelope mirrors the real snapshot envelope. Declaring it here is fine —
// persist structs are not frame structs.
type envelope struct {
	Magic   string
	Entries []item.Entry
}

// save crosses the gob boundary with transient state.
func save(w io.Writer, env envelope) error {
	return gob.NewEncoder(w).Encode(env) // want `transient host-specific metadata reaches gob.Encode`
}

// saveAllowed is the sanctioned crossing: a restart restores the same host,
// so its own per-copy transient state legitimately survives.
func saveAllowed(w io.Writer, env envelope) error {
	return gob.NewEncoder(w).Encode(env) //lint:allow transientleak -- fixture: snapshot restores the same host; its own per-copy state survives restart
}
