// Package wire is a transientleak-analyzer fixture mimicking the binary
// codec: any Append* function in a package with a "wire" import-path
// segment is a serialization entry point, exactly like gob.Encode.
package wire

import "fixtures/item"

// AppendTransient mimics the codec's transient serializer — the entry point
// itself; callers shipping transients through it annotate the sanctioned
// crossings.
func AppendTransient(buf []byte, tr item.Transient) []byte {
	for k := range tr {
		buf = append(buf, k...)
	}
	return buf
}

// AppendItem serializes replicated state only.
func AppendItem(buf []byte, it *item.Item) []byte {
	return append(buf, it.Payload...)
}

// AppendEntry serializes a transient-bearing entry: the codec's own
// internal crossing carries the justification.
func AppendEntry(buf []byte, e *item.Entry) []byte {
	buf = AppendItem(buf, &e.Item)
	return AppendTransient(buf, e.Transient) //lint:allow transientleak -- fixture: the entry codec's sanctioned internal crossing
}
