// Package transport is a transientleak-analyzer fixture: a wire-handling
// package (segment "transport"), where frame structs are also checked.
package transport

import (
	"encoding/gob"

	"fixtures/item"
	"fixtures/wire"
)

// frame carries transient state in an exported field: the wire contract
// would replicate host-local metadata.
type frame struct {
	Item      item.Item
	Transient item.Transient // want `frame struct frame carries transient host-specific metadata`
}

// nested reaches Transient through an exported struct chain.
type nested struct {
	Entries []item.Entry // want `frame struct nested carries transient host-specific metadata`
}

// cleanFrame only moves replicated state; the unexported transient field is
// invisible to gob and deliberately host-local.
type cleanFrame struct {
	Item item.Item
	hops item.Transient
}

// send ships a transient value directly.
func send(enc *gob.Encoder, tr item.Transient) error {
	return enc.Encode(tr) // want `transient host-specific metadata reaches gob.Encode`
}

// sendEntry ships a struct containing one.
func sendEntry(enc *gob.Encoder, e item.Entry) error {
	return enc.Encode(&e) // want `transient host-specific metadata reaches gob.Encode`
}

// sendClean ships only replicated state.
func sendClean(enc *gob.Encoder, it item.Item) error {
	return enc.Encode(it)
}

// register declares a transient-bearing type for the wire.
func register() {
	gob.Register(item.Entry{}) // want `transient host-specific metadata reaches gob.Register`
}

// sendAllowed is the sanctioned, justified crossing (the real transport's
// policy-mediated transmit transient).
func sendAllowed(enc *gob.Encoder, tr item.Transient) error {
	return enc.Encode(tr) //lint:allow transientleak -- fixture: policy-mediated transmit transient, an explicit wire field of the sync protocol
}

// sendBinary ships a transient value through the binary codec: the v3 wire
// path must be checked exactly like gob.
func sendBinary(buf []byte, tr item.Transient) []byte {
	return wire.AppendTransient(buf, tr) // want `transient host-specific metadata reaches wire.AppendTransient`
}

// sendBinaryEntry ships a transient-bearing struct through the codec.
func sendBinaryEntry(buf []byte, e *item.Entry) []byte {
	return wire.AppendEntry(buf, e) // want `transient host-specific metadata reaches wire.AppendEntry`
}

// sendBinaryClean ships only replicated state through the codec.
func sendBinaryClean(buf []byte, it *item.Item) []byte {
	return wire.AppendItem(buf, it)
}

// sendBinaryAllowed is the sanctioned crossing under the binary codec.
func sendBinaryAllowed(buf []byte, tr item.Transient) []byte {
	return wire.AppendTransient(buf, tr) //lint:allow transientleak -- fixture: policy-mediated transmit transient, an explicit wire field of the sync protocol
}
