// Package item is a transientleak-analyzer fixture mimicking the real item
// package: the analyzer recognizes the Transient type by its name and the
// "item" import-path segment.
package item

// Transient is host-specific, never-replicated per-copy metadata.
type Transient map[string]float64

// Item is the replicated part.
type Item struct {
	ID      string
	Payload []byte
}

// Entry pairs a stored item with its host-local transient state, like a
// store entry.
type Entry struct {
	Item      Item
	Transient Transient
}
