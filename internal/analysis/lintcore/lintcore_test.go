package lintcore

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

// dummyAnalyzer reports every call expression, exercising the resolver
// helpers the real analyzers are built from along the way.
var dummyAnalyzer = &Analyzer{
	Name: "dummy",
	Doc:  "report every call",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := CalleeFunc(pass.TypesInfo, call); fn != nil {
					_ = IsErrorType(fn.Type())
				}
				if id := RootIdent(call.Fun); id != nil {
					if obj := ObjectOf(pass.TypesInfo, id); obj != nil {
						_ = NamedOrNil(obj.Type())
						_ = IsErrorType(obj.Type())
					}
				}
				pass.Reportf(call.Pos(), "call reported by dummy")
				return true
			})
		}
		return nil
	},
}

// TestDriverEndToEnd runs the dummy analyzer over the fixture module and
// checks the driver behaviors the analyzer golden tests rely on: justified
// allows suppress (trailing and standing-above forms), unjustified or
// unknown-name allows are themselves diagnostics, everything else reports,
// and the output is sorted by position.
func TestDriverEndToEnd(t *testing.T) {
	pkgs, err := Load("testdata/src", "./...")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 fixture package, got %d", len(pkgs))
	}
	diags, err := Run(pkgs, []*Analyzer{dummyAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var dummy, allow []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "dummy":
			dummy = append(dummy, d)
		case "lintallow":
			allow = append(allow, d)
		default:
			t.Errorf("diagnostic from unexpected analyzer: %s", d)
		}
	}

	// thing.go makes seven reportable calls (errors.New at init, one Boom
	// per method, plus Plain's hook invocation); the two justified allows
	// suppress two.
	if len(dummy) != 5 {
		t.Errorf("want 5 surviving dummy diagnostics, got %d: %v", len(dummy), dummy)
	}
	for _, d := range dummy {
		if !strings.Contains(d.String(), "call reported by dummy") {
			t.Errorf("diagnostic lost its message: %s", d)
		}
	}

	// One malformed allow (missing justification) and one naming an unknown
	// analyzer.
	if len(allow) != 2 {
		t.Fatalf("want 2 lintallow diagnostics, got %d: %v", len(allow), allow)
	}
	if !strings.Contains(allow[0].Message, "justification") &&
		!strings.Contains(allow[1].Message, "justification") {
		t.Errorf("no lintallow diagnostic mentions the missing justification: %v", allow)
	}
	if !strings.Contains(allow[0].Message, "nosuchanalyzer") &&
		!strings.Contains(allow[1].Message, "nosuchanalyzer") {
		t.Errorf("no lintallow diagnostic names the unknown analyzer: %v", allow)
	}

	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics not sorted: %s before %s", a, b)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "determinism",
		Message:  "no wall clocks",
	}
	if got, want := d.String(), "x.go:3:7: determinism: no wall clocks"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPathHasSegment(t *testing.T) {
	cases := []struct {
		path string
		segs []string
		want bool
	}{
		{"replidtn/internal/emu", []string{"emu"}, true},
		{"replidtn/internal/emu", []string{"store", "emu"}, true},
		{"replidtn/internal/emulator", []string{"emu"}, false},
		{"emu", []string{"emu"}, true},
		{"replidtn/internal/transport", []string{"emu"}, false},
	}
	for _, c := range cases {
		if got := PathHasSegment(c.path, c.segs...); got != c.want {
			t.Errorf("PathHasSegment(%q, %v) = %v, want %v", c.path, c.segs, got, c.want)
		}
	}
}

func TestRootIdent(t *testing.T) {
	base := &ast.Ident{Name: "s"}
	expr := ast.Expr(&ast.StarExpr{
		X: &ast.IndexExpr{
			X: &ast.ParenExpr{
				X: &ast.SelectorExpr{X: base, Sel: &ast.Ident{Name: "cfg"}},
			},
			Index: &ast.Ident{Name: "i"},
		},
	})
	if got := RootIdent(expr); got != base {
		t.Errorf("RootIdent = %v, want the base ident", got)
	}
	if got := RootIdent(&ast.BasicLit{}); got != nil {
		t.Errorf("RootIdent(literal) = %v, want nil", got)
	}
}
