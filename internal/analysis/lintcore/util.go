package lintcore

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathHasSegment reports whether any "/"-separated segment of the import
// path is one of segs. Analyzers use it to scope themselves to the
// determinism-critical or wire-handling packages by name, which also makes
// them testable against fixture packages that mimic those names.
func PathHasSegment(path string, segs ...string) bool {
	for _, part := range strings.Split(path, "/") {
		for _, s := range segs {
			if part == s {
				return true
			}
		}
	}
	return false
}

// CalleeFunc resolves the statically known function or method a call
// invokes, or nil when the callee is a function value (a variable, field,
// or parameter) or a type conversion.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// RootIdent unwraps selectors, indexing, dereferences, and parens down to
// the base identifier of an expression (e.g. s for s.cfg.OnPeer), or nil.
func RootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		default:
			return nil
		}
	}
}

// ObjectOf resolves an identifier to its (used or defined) object.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// NamedOrNil returns the named type of t after stripping pointers, or nil.
func NamedOrNil(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}
