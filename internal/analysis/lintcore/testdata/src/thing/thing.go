// Package thing is the lintcore driver fixture: a package whose calls a
// dummy analyzer reports, so the driver's allow parsing, suppression
// windows, and diagnostic ordering are observable end to end.
package thing

import "errors"

// ErrBoom is returned by Boom.
var ErrBoom = errors.New("boom")

// Boom fails.
func Boom() error { return ErrBoom }

// Caller makes calls for the dummy analyzer to report.
type Caller struct {
	hook func() error
}

// Allowed is suppressed by a justified trailing allow.
func (c *Caller) Allowed() error {
	return Boom() //lint:allow dummy -- fixture: trailing allow on the flagged line
}

// AllowedAbove is suppressed by a justified allow standing on the line above.
func (c *Caller) AllowedAbove() error {
	//lint:allow dummy -- fixture: standalone allow above the flagged line
	return Boom()
}

// Unjustified carries an allow with no justification: the diagnostic
// survives and the malformed allow is itself reported.
func (c *Caller) Unjustified() error {
	return Boom() //lint:allow dummy
}

// UnknownName names an analyzer that does not exist: reported, nothing
// suppressed.
func (c *Caller) UnknownName() error {
	return Boom() //lint:allow nosuchanalyzer -- fixture: unknown analyzer name
}

// Plain is reported with no allow in sight.
func (c *Caller) Plain() error {
	if c.hook != nil {
		return c.hook()
	}
	return Boom()
}
