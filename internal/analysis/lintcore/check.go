package lintcore

import (
	"fmt"
	"runtime"
	"sync"
)

// Config parameterizes one Check run.
type Config struct {
	// Dir is the directory patterns are resolved from (the module root for
	// repo-wide runs). Empty means the current directory.
	Dir string
	// Patterns are go list package patterns, e.g. "./...".
	Patterns []string
	// Analyzers is the enabled analyzer set.
	Analyzers []*Analyzer
	// CacheDir, when non-empty, enables the on-disk result cache: packages
	// whose content hash (own sources + dependency cone + analyzer set +
	// toolchain) is unchanged are not re-loaded or re-analyzed.
	CacheDir string
	// Workers bounds concurrent package analysis; <= 0 means GOMAXPROCS.
	Workers int
}

// Result is the outcome of one Check run.
type Result struct {
	// Diagnostics are the surviving (allow-filtered) diagnostics across all
	// matched packages, sorted by position.
	Diagnostics []Diagnostic
	// Packages is the number of matched target packages.
	Packages int
	// Reused is how many of those were served from the result cache.
	Reused int
}

// Check is the production driver entry point: resolve patterns, hash the
// dependency graph, serve unchanged packages from the cache, and type-check
// plus analyze the rest in parallel, in dependency order so cross-package
// facts flow to importers. Load+Run remain as the simpler sequential path
// used by the golden-fixture harness.
func Check(cfg Config) (*Result, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	metas, order, targets, err := golist(dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}
	hashes, err := packageHashes(metas, order, fingerprint(cfg.Analyzers))
	if err != nil {
		return nil, err
	}
	cache, err := openResultCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}

	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}
	deps := transitiveTargetDeps(metas, targets, targetSet)

	facts := newFactStore()
	var all []Diagnostic
	var misses []string
	reused := 0
	for _, path := range targets {
		if entry, ok := cache.load(path, hashes[path]); ok {
			reused++
			facts.add(path, entry.Facts)
			all = append(all, entry.Diagnostics...)
			continue
		}
		misses = append(misses, path)
	}

	if len(misses) > 0 {
		missed, err := analyzeMisses(cfg, metas, misses, targetSet, deps, hashes, cache, facts)
		if err != nil {
			return nil, err
		}
		all = append(all, missed...)
	}
	sortDiagnostics(all)
	return &Result{Diagnostics: all, Packages: len(targets), Reused: reused}, nil
}

// transitiveTargetDeps precomputes, for every target, its transitive
// dependencies restricted to the target set — the packages whose facts it
// must see and (when they also missed the cache) must be analyzed first.
func transitiveTargetDeps(metas map[string]*listPkg, targets []string, targetSet map[string]bool) map[string][]string {
	deps := make(map[string][]string, len(targets))
	for _, t := range targets {
		seen := make(map[string]bool)
		stack := []string{t}
		for len(stack) > 0 {
			path := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			meta := metas[path]
			if meta == nil {
				continue
			}
			for _, imp := range meta.Imports {
				if mapped, ok := meta.ImportMap[imp]; ok {
					imp = mapped
				}
				if seen[imp] || !targetSet[imp] {
					continue
				}
				seen[imp] = true
				stack = append(stack, imp)
			}
		}
		list := make([]string, 0, len(seen))
		for imp := range seen {
			list = append(list, imp)
		}
		deps[t] = list
	}
	return deps
}

// analyzeMisses type-checks and analyzes the cache-miss targets on a worker
// pool scheduled over the miss-to-miss dependency DAG: a package becomes
// ready once every missed target it (transitively) imports has been
// analyzed, so its fact view is complete when its turn comes. Cache-hit
// dependencies need no ordering — their facts were preloaded.
func analyzeMisses(cfg Config, metas map[string]*listPkg, misses []string, targetSet map[string]bool,
	deps map[string][]string, hashes map[string]string, cache *resultCache, facts *factStore) ([]Diagnostic, error) {

	missSet := make(map[string]bool, len(misses))
	for _, m := range misses {
		missSet[m] = true
	}
	indeg := make(map[string]int, len(misses))
	dependents := make(map[string][]string)
	for _, m := range misses {
		for _, d := range deps[m] {
			if missSet[d] {
				indeg[m]++
				dependents[d] = append(dependents[d], m)
			}
		}
	}

	ld := newLoader(metas)
	ready := make(chan string, len(misses))
	var (
		mu       sync.Mutex
		all      []Diagnostic
		firstErr error
		finished int
	)
	// finish records a task's completion: it surfaces the first error,
	// unblocks dependents whose last missing dependency this was, and closes
	// the ready queue once every miss has passed through — including after
	// an error, so blocked workers always drain and exit.
	finish := func(path string, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for _, d := range dependents[path] {
			indeg[d]--
			if indeg[d] == 0 {
				ready <- d
			}
		}
		finished++
		if finished == len(misses) {
			close(ready)
		}
	}
	for _, m := range misses {
		if indeg[m] == 0 {
			ready <- m
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(misses) {
		workers = len(misses)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range ready {
				mu.Lock()
				bail := firstErr != nil
				mu.Unlock()
				if bail {
					finish(path, nil)
					continue
				}
				diags, err := analyzeOne(ld, metas[path], cfg.Analyzers, facts, deps[path], hashes[path], cache)
				if err != nil {
					finish(path, err)
					continue
				}
				mu.Lock()
				all = append(all, diags...)
				mu.Unlock()
				finish(path, nil)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return all, nil
}

// analyzeOne runs the full per-package pipeline: type-check, analyze with
// the dependency fact view, publish facts, persist the cache entry.
func analyzeOne(ld *loader, meta *listPkg, analyzers []*Analyzer, facts *factStore,
	deps []string, hash string, cache *resultCache) ([]Diagnostic, error) {
	if meta == nil {
		return nil, fmt.Errorf("lintcore: target missing from go list metadata")
	}
	pkg, err := ld.checkTarget(meta)
	if err != nil {
		return nil, err
	}
	diags, exported, err := analyzePackage(pkg, analyzers, facts.view(deps))
	if err != nil {
		return nil, err
	}
	facts.add(pkg.ImportPath, exported)
	if err := cache.store(pkg.ImportPath, &cacheEntry{Hash: hash, Diagnostics: diags, Facts: exported}); err != nil {
		return nil, err
	}
	return diags, nil
}
