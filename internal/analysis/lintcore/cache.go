package lintcore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheSchemaVersion invalidates every cache entry when the on-disk format
// or the meaning of a hash changes. Bump it whenever cacheEntry's shape or
// the hash inputs change.
const cacheSchemaVersion = "dtnlint-cache-v1"

// cacheEntry is the persisted result of analyzing one package: the content
// hash it is valid for, the (already allow-filtered) diagnostics, and the
// facts the package exports to dependents. Facts must be cached alongside
// diagnostics: a cache-hit package is never re-analyzed, yet its importers
// still need its facts.
type cacheEntry struct {
	Hash        string       `json:"hash"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Facts       []Fact       `json:"facts"`
}

// fingerprint returns the analysis-configuration component of every package
// hash: schema version, toolchain, architecture (types.Sizes differ), and
// the enabled analyzer set. Changing any of these re-analyzes the world.
func fingerprint(analyzers []*Analyzer) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s", cacheSchemaVersion, runtime.Version(), runtime.GOARCH)
	for _, n := range names {
		fmt.Fprintf(h, "|%s", n)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// packageHashes computes a content hash for every package in the go list
// closure, visiting in dependency order so each hash can fold in the hashes
// of its direct imports — an edit anywhere in a package's dependency cone
// changes its hash. Standard-library packages hash as path-only: their
// content is pinned by the toolchain version already in the fingerprint,
// so hashing their sources would only slow the cold path down.
func packageHashes(metas map[string]*listPkg, order []string, fp string) (map[string]string, error) {
	hashes := make(map[string]string, len(order))
	for _, path := range order {
		meta := metas[path]
		h := sha256.New()
		fmt.Fprintf(h, "%s|%s", fp, meta.ImportPath)
		if !meta.Standard {
			for _, name := range meta.GoFiles {
				data, err := os.ReadFile(filepath.Join(meta.Dir, name))
				if err != nil {
					return nil, fmt.Errorf("lintcore: hash %s: %w", meta.ImportPath, err)
				}
				fmt.Fprintf(h, "|%s:%d:", name, len(data))
				h.Write(data)
			}
			for _, imp := range meta.Imports {
				if mapped, ok := meta.ImportMap[imp]; ok {
					imp = mapped
				}
				dep, ok := hashes[imp]
				if !ok && imp != "unsafe" {
					return nil, fmt.Errorf("lintcore: hash %s: import %s not yet hashed (go list order violated)", meta.ImportPath, imp)
				}
				fmt.Fprintf(h, "|%s=%s", imp, dep)
			}
		}
		hashes[path] = hex.EncodeToString(h.Sum(nil))
	}
	return hashes, nil
}

// resultCache is the on-disk per-package store under one directory: one
// JSON file per package, named by the URL-escaped import path so arbitrary
// paths map to safe file names.
type resultCache struct {
	dir string
}

func openResultCache(dir string) (*resultCache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lintcore: create cache dir: %w", err)
	}
	return &resultCache{dir: dir}, nil
}

func (c *resultCache) path(importPath string) string {
	return filepath.Join(c.dir, url.QueryEscape(importPath)+".json")
}

// load returns the cached entry for importPath iff it exists and matches
// hash. Corrupt or stale entries read as misses, never as errors: the cache
// is advisory.
func (c *resultCache) load(importPath, hash string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(importPath))
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil || entry.Hash != hash {
		return nil, false
	}
	return &entry, true
}

// store writes the entry atomically (temp file + rename) so a crashed or
// concurrent lint run can never leave a torn JSON file that poisons later
// loads.
func (c *resultCache) store(importPath string, entry *cacheEntry) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("lintcore: encode cache entry: %w", err)
	}
	final := c.path(importPath)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("lintcore: cache temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lintcore: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lintcore: close cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lintcore: commit cache entry: %w", err)
	}
	return nil
}
