package lintcore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked target package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// loader type-checks packages from source in dependency order. Dependencies
// (including the standard library) are checked with IgnoreFuncBodies — only
// their exported shape matters — while target packages get full bodies and a
// populated types.Info. This is what lets dtnlint run offline with no
// go/packages or export-data machinery: one `go list -deps -json` call
// supplies the file sets and import resolution, and go/types does the rest.
type loader struct {
	fset   *token.FileSet
	metas  map[string]*listPkg // by ImportPath
	byDir  map[string]*listPkg
	cache  map[string]*types.Package
	sizes  types.Sizes
	errors []error
}

// Load resolves patterns (e.g. "./...") relative to dir, type-checks the
// matched packages and every dependency, and returns the matched packages.
// CGO is disabled for file selection so the pure-Go fallbacks of net/os are
// chosen and every compiled file is parseable Go source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintcore: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	ld := &loader{
		fset:  token.NewFileSet(),
		metas: make(map[string]*listPkg),
		byDir: make(map[string]*listPkg),
		cache: make(map[string]*types.Package),
		sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintcore: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lintcore: %s: %s", p.ImportPath, p.Error.Err)
		}
		meta := p
		ld.metas[meta.ImportPath] = &meta
		ld.byDir[meta.Dir] = &meta
		if !meta.DepOnly {
			targets = append(targets, &meta)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := ld.checkTarget(t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parseFiles parses a package's Go files. Target packages keep comments
// (needed for //lint:allow and golden-test want markers); dependencies skip
// them for speed.
func (ld *loader) parseFiles(meta *listPkg, withComments bool) ([]*ast.File, error) {
	mode := parser.SkipObjectResolution
	if withComments {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(meta.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("lintcore: parse %s: %w", filepath.Join(meta.Dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// checkTarget fully type-checks a matched package.
func (ld *loader) checkTarget(meta *listPkg) (*Package, error) {
	files, err := ld.parseFiles(meta, true)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var checkErrs []error
	conf := &types.Config{
		Importer: ld,
		Sizes:    ld.sizes,
		Error:    func(err error) { checkErrs = append(checkErrs, err) },
	}
	tpkg, _ := conf.Check(meta.ImportPath, ld.fset, files, info)
	if len(checkErrs) > 0 {
		return nil, fmt.Errorf("lintcore: type-check %s: %v", meta.ImportPath, checkErrs[0])
	}
	ld.cache[meta.ImportPath] = tpkg
	return &Package{
		ImportPath: meta.ImportPath,
		Dir:        meta.Dir,
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: srcDir identifies the importing
// package, whose ImportMap rewrites vendored standard-library import paths
// (e.g. net's "golang.org/x/net/dns/dnsmessage") to their actual location.
func (ld *loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if from, ok := ld.byDir[srcDir]; ok {
		if mapped, ok := from.ImportMap[path]; ok {
			path = mapped
		}
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	meta, ok := ld.metas[path]
	if !ok {
		return nil, fmt.Errorf("lintcore: import %q not in go list dependency set", path)
	}
	files, err := ld.parseFiles(meta, false)
	if err != nil {
		return nil, err
	}
	var checkErrs []error
	conf := &types.Config{
		Importer:         ld,
		Sizes:            ld.sizes,
		IgnoreFuncBodies: true,
		Error:            func(err error) { checkErrs = append(checkErrs, err) },
	}
	tpkg, _ := conf.Check(meta.ImportPath, ld.fset, files, nil)
	if len(checkErrs) > 0 {
		return nil, fmt.Errorf("lintcore: type-check dependency %s: %v", path, checkErrs[0])
	}
	ld.cache[path] = tpkg
	return tpkg, nil
}
