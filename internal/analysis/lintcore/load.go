package lintcore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Package is one loaded, type-checked target package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	// Imports are the package's direct imports (vendor-mapped), used to
	// order fact-dependent analysis.
	Imports   []string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// golist resolves patterns relative to dir with one `go list -deps -json`
// call. It returns every package in the dependency closure keyed by import
// path, the closure in dependency order (dependencies before dependents,
// which is the order go list emits), and the matched target import paths.
// CGO is disabled for file selection so the pure-Go fallbacks of net/os are
// chosen and every compiled file is parseable Go source.
func golist(dir string, patterns []string) (metas map[string]*listPkg, order, targets []string, err error) {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lintcore: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	metas = make(map[string]*listPkg)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("lintcore: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, nil, fmt.Errorf("lintcore: %s: %s", p.ImportPath, p.Error.Err)
		}
		meta := p
		metas[meta.ImportPath] = &meta
		order = append(order, meta.ImportPath)
		if !meta.DepOnly && len(meta.GoFiles) > 0 {
			targets = append(targets, meta.ImportPath)
		}
	}
	return metas, order, targets, nil
}

// pkgSlot deduplicates concurrent type-checks of one dependency: the first
// goroutine to need the package checks it, everyone else waits on the once.
type pkgSlot struct {
	once sync.Once
	pkg  *types.Package
	err  error
}

// loader type-checks packages from source. Dependencies (including the
// standard library) are checked with IgnoreFuncBodies — only their exported
// shape matters — while target packages get full bodies and a populated
// types.Info. This is what lets dtnlint run offline with no go/packages or
// export-data machinery: one `go list -deps -json` call supplies the file
// sets and import resolution, and go/types does the rest.
//
// The loader is safe for concurrent use: the shared token.FileSet is
// internally synchronized, the slot map serializes the first check of each
// dependency, and fully checked target packages are published into their
// slots so dependents loaded later (the driver schedules targets in
// dependency order) resolve them without a second check.
type loader struct {
	fset  *token.FileSet
	metas map[string]*listPkg
	byDir map[string]*listPkg
	sizes types.Sizes

	mu    sync.Mutex
	slots map[string]*pkgSlot
}

func newLoader(metas map[string]*listPkg) *loader {
	ld := &loader{
		fset:  token.NewFileSet(),
		metas: metas,
		byDir: make(map[string]*listPkg, len(metas)),
		sizes: types.SizesFor("gc", runtime.GOARCH),
		slots: make(map[string]*pkgSlot),
	}
	for _, m := range metas {
		ld.byDir[m.Dir] = m
	}
	return ld
}

// Load resolves patterns (e.g. "./...") relative to dir, type-checks the
// matched packages and every dependency, and returns the matched packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, _, targets, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}
	ld := newLoader(metas)
	var pkgs []*Package
	// go list emits dependencies before dependents, so each full check can
	// publish its result for the targets that import it.
	for _, path := range targets {
		pkg, err := ld.checkTarget(ld.metas[path])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parseFiles parses a package's Go files. Target packages keep comments
// (needed for //lint:allow and golden-test want markers); dependencies skip
// them for speed.
func (ld *loader) parseFiles(meta *listPkg, withComments bool) ([]*ast.File, error) {
	mode := parser.SkipObjectResolution
	if withComments {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(meta.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("lintcore: parse %s: %w", filepath.Join(meta.Dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// slot returns the (created-on-demand) slot for an import path.
func (ld *loader) slot(path string) *pkgSlot {
	ld.mu.Lock()
	s := ld.slots[path]
	if s == nil {
		s = &pkgSlot{}
		ld.slots[path] = s
	}
	ld.mu.Unlock()
	return s
}

// checkTarget fully type-checks a matched package and publishes the result
// so importing targets resolve it without a shape-only re-check.
func (ld *loader) checkTarget(meta *listPkg) (*Package, error) {
	files, err := ld.parseFiles(meta, true)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var checkErrs []error
	conf := &types.Config{
		Importer: importerFrom{ld, meta.Dir},
		Sizes:    ld.sizes,
		Error:    func(err error) { checkErrs = append(checkErrs, err) },
	}
	tpkg, _ := conf.Check(meta.ImportPath, ld.fset, files, info)
	if len(checkErrs) > 0 {
		return nil, fmt.Errorf("lintcore: type-check %s: %v", meta.ImportPath, checkErrs[0])
	}
	slot := ld.slot(meta.ImportPath)
	slot.once.Do(func() { slot.pkg = tpkg })
	return &Package{
		ImportPath: meta.ImportPath,
		Dir:        meta.Dir,
		Imports:    ld.resolvedImports(meta),
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// resolvedImports returns meta's direct imports with vendor mapping applied.
func (ld *loader) resolvedImports(meta *listPkg) []string {
	imports := make([]string, 0, len(meta.Imports))
	for _, imp := range meta.Imports {
		if mapped, ok := meta.ImportMap[imp]; ok {
			imp = mapped
		}
		imports = append(imports, imp)
	}
	return imports
}

// shape type-checks a dependency's exported shape (IgnoreFuncBodies),
// deduplicated through the package's slot.
func (ld *loader) shape(path string) (*types.Package, error) {
	slot := ld.slot(path)
	slot.once.Do(func() { slot.pkg, slot.err = ld.shapeCheck(path) })
	return slot.pkg, slot.err
}

func (ld *loader) shapeCheck(path string) (*types.Package, error) {
	meta, ok := ld.metas[path]
	if !ok {
		return nil, fmt.Errorf("lintcore: import %q not in go list dependency set", path)
	}
	files, err := ld.parseFiles(meta, false)
	if err != nil {
		return nil, err
	}
	var checkErrs []error
	conf := &types.Config{
		Importer:         importerFrom{ld, meta.Dir},
		Sizes:            ld.sizes,
		IgnoreFuncBodies: true,
		Error:            func(err error) { checkErrs = append(checkErrs, err) },
	}
	tpkg, _ := conf.Check(meta.ImportPath, ld.fset, files, nil)
	if len(checkErrs) > 0 {
		return nil, fmt.Errorf("lintcore: type-check dependency %s: %v", path, checkErrs[0])
	}
	return tpkg, nil
}

// importerFrom adapts the loader to types.ImporterFrom for one importing
// package directory: srcDir's ImportMap rewrites vendored standard-library
// import paths (e.g. net's "golang.org/x/net/dns/dnsmessage") to their
// actual location. go/types passes the importing file's directory as
// srcDir, which for generated dependency trees is the package directory;
// binding the meta at construction keeps the lookup correct even when
// go/types passes an empty srcDir.
type importerFrom struct {
	ld     *loader
	srcDir string
}

func (im importerFrom) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.srcDir, 0)
}

func (im importerFrom) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if srcDir == "" {
		srcDir = im.srcDir
	}
	if from, ok := im.ld.byDir[srcDir]; ok {
		if mapped, ok := from.ImportMap[path]; ok {
			path = mapped
		}
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.ld.shape(path)
}
