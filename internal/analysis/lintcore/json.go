package lintcore

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable diagnostic shape consumed by CI:
// flat fields, workspace-relative file paths (GitHub annotations require
// them), one object per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json output document.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Packages    int              `json:"packages"`
	Cached      int              `json:"cached"`
}

// WriteJSON renders a Check result as one JSON document. File paths are
// made relative to the current directory when possible so the output is
// stable across checkouts.
func WriteJSON(w io.Writer, res *Result) error {
	cwd, _ := os.Getwd()
	report := jsonReport{
		Diagnostics: make([]jsonDiagnostic, 0, len(res.Diagnostics)),
		Packages:    res.Packages,
		Cached:      res.Reused,
	}
	for _, d := range res.Diagnostics {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
				file = rel
			}
		}
		report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
