package lintcore

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out a throwaway module for Check to chew on.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

const checkGoMod = "module tmpfixture\n\ngo 1.22\n"

// TestCheckCacheRoundTrip drives the cached parallel driver end to end: a
// cold run analyzes every package and populates the cache, a warm run
// reuses every entry and reproduces the identical diagnostics, and editing
// a dependency invalidates it and its importer while leaving the
// untouched sibling cached.
func TestCheckCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": checkGoMod,
		"base/base.go": `package base

func Ping() int { return pong() }

func pong() int { return 1 }
`,
		"top/top.go": `package top

import "tmpfixture/base"

func Call() int { return base.Ping() }
`,
		"side/side.go": `package side

func Quiet() int { return 2 }
`,
	})
	cache := filepath.Join(dir, "lintcache")
	cfg := Config{
		Dir:       dir,
		Patterns:  []string{"./..."},
		Analyzers: []*Analyzer{dummyAnalyzer},
		CacheDir:  cache,
	}

	cold, err := Check(cfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.Packages != 3 {
		t.Fatalf("cold run analyzed %d packages, want 3", cold.Packages)
	}
	if cold.Reused != 0 {
		t.Fatalf("cold run reused %d cache entries, want 0", cold.Reused)
	}
	// base.Ping calls pong, top.Call calls base.Ping: two call sites total.
	if len(cold.Diagnostics) != 2 {
		t.Fatalf("cold run produced %d diagnostics, want 2: %v", len(cold.Diagnostics), cold.Diagnostics)
	}

	warm, err := Check(cfg)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.Reused != 3 {
		t.Fatalf("warm run reused %d cache entries, want 3", warm.Reused)
	}
	if len(warm.Diagnostics) != len(cold.Diagnostics) {
		t.Fatalf("warm run produced %d diagnostics, want %d", len(warm.Diagnostics), len(cold.Diagnostics))
	}
	for i := range warm.Diagnostics {
		if warm.Diagnostics[i] != cold.Diagnostics[i] {
			t.Fatalf("warm diagnostic %d = %v, want %v (cache must replay verbatim)", i, warm.Diagnostics[i], cold.Diagnostics[i])
		}
	}

	// Edit the dependency: base and its importer top must re-analyze; side
	// stays cached. The extra call site surfaces as a third diagnostic.
	writeTree(t, dir, map[string]string{
		"base/base.go": `package base

func Ping() int { return pong() + pong() }

func pong() int { return 1 }
`,
	})
	edited, err := Check(cfg)
	if err != nil {
		t.Fatalf("post-edit run: %v", err)
	}
	if edited.Reused != 1 {
		t.Fatalf("post-edit run reused %d cache entries, want 1 (only the untouched sibling)", edited.Reused)
	}
	if len(edited.Diagnostics) != 3 {
		t.Fatalf("post-edit run produced %d diagnostics, want 3: %v", len(edited.Diagnostics), edited.Diagnostics)
	}
}

// TestCheckCacheKeyedByAnalyzers verifies the cache fingerprint covers the
// analyzer set: entries written under one set must not satisfy a run with
// another, which would replay the wrong diagnostics.
func TestCheckCacheKeyedByAnalyzers(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": checkGoMod,
		"pkg/pkg.go": `package pkg

func F() int { return g() }

func g() int { return 1 }
`,
	})
	cache := filepath.Join(dir, "lintcache")
	cfg := Config{Dir: dir, Patterns: []string{"./..."}, Analyzers: []*Analyzer{dummyAnalyzer}, CacheDir: cache}
	if _, err := Check(cfg); err != nil {
		t.Fatalf("seed run: %v", err)
	}

	silent := &Analyzer{Name: "silent", Doc: "report nothing", Run: func(*Pass) error { return nil }}
	other := cfg
	other.Analyzers = []*Analyzer{silent}
	res, err := Check(other)
	if err != nil {
		t.Fatalf("other-analyzer run: %v", err)
	}
	if res.Reused != 0 {
		t.Fatalf("run with a different analyzer set reused %d entries, want 0", res.Reused)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("silent analyzer produced %d diagnostics, want 0: %v", len(res.Diagnostics), res.Diagnostics)
	}
}

// TestCheckWithoutCacheDir runs the parallel driver with caching disabled:
// every run analyzes everything and reuses nothing.
func TestCheckWithoutCacheDir(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": checkGoMod,
		"pkg/pkg.go": `package pkg

func F() int { return g() }

func g() int { return 1 }
`,
	})
	cfg := Config{Dir: dir, Patterns: []string{"./..."}, Analyzers: []*Analyzer{dummyAnalyzer}}
	for run := 0; run < 2; run++ {
		res, err := Check(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Reused != 0 {
			t.Fatalf("run %d without a cache dir reused %d entries, want 0", run, res.Reused)
		}
		if len(res.Diagnostics) != 1 {
			t.Fatalf("run %d produced %d diagnostics, want 1", run, len(res.Diagnostics))
		}
	}
}

// TestCheckFactsAcrossCache verifies dependency facts survive the cache: a
// fact-consuming analyzer sees the same dependency facts whether the
// dependency was analyzed live or replayed from disk.
func TestCheckFactsAcrossCache(t *testing.T) {
	exporter := &Analyzer{
		Name: "facts",
		Doc:  "export one fact per package, report when a dependency exported one",
		Run: func(pass *Pass) error {
			for _, f := range pass.AllDepFacts("marker") {
				pass.Reportf(pass.Files[0].Pos(), "dependency fact seen: %s", f.Key)
			}
			pass.ExportFact(pass.Pkg.Path(), "marker", "present")
			return nil
		},
	}
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": checkGoMod,
		"base/base.go": `package base

func Ping() int { return 1 }
`,
		"top/top.go": `package top

import "tmpfixture/base"

func Call() int { return base.Ping() }
`,
	})
	cache := filepath.Join(dir, "lintcache")
	cfg := Config{Dir: dir, Patterns: []string{"./..."}, Analyzers: []*Analyzer{exporter}, CacheDir: cache}

	cold, err := Check(cfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(cold.Diagnostics) != 1 {
		t.Fatalf("cold run produced %d diagnostics, want 1 (top sees base's fact): %v", len(cold.Diagnostics), cold.Diagnostics)
	}

	// Invalidate only the importer: its re-analysis must read base's fact
	// out of the cache entry, not silently see an empty fact store.
	writeTree(t, dir, map[string]string{
		"top/top.go": `package top

import "tmpfixture/base"

func Call() int { return base.Ping() + 1 }
`,
	})
	edited, err := Check(cfg)
	if err != nil {
		t.Fatalf("post-edit run: %v", err)
	}
	if edited.Reused != 1 {
		t.Fatalf("post-edit run reused %d entries, want 1 (base only)", edited.Reused)
	}
	if len(edited.Diagnostics) != 1 {
		t.Fatalf("post-edit run produced %d diagnostics, want 1: %v", len(edited.Diagnostics), edited.Diagnostics)
	}
}
