// Package lintcore is the driver core for dtnlint, the repository's static
// invariant checker. It mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Reportf) but is implemented entirely on the standard
// library's go/ast and go/types, because this module builds offline and must
// not pull external dependencies. An analyzer written against lintcore ports
// to the upstream framework by renaming imports.
//
// The driver adds one facility the upstream multichecker leaves to
// third parties: source-level suppression. A diagnostic is suppressed by a
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// comment on the flagged line or the line directly above it. The
// justification after " -- " is mandatory: an allow without one is itself
// reported as a diagnostic, so every escape hatch in the tree carries its
// reasoning next to the code it excuses. See DESIGN.md §10 for the catalog
// of enforced invariants and the sanctioned allow sites.
package lintcore

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one invariant checker: a name (used in diagnostics and in
// //lint:allow comments), documentation, and a Run function applied to one
// package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position `json:"pos"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Message describes the violation.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Fact is one exported piece of cross-package knowledge: an analyzer
// observation about a function (or other object) of one package, made
// available to the same analyzer when it later runs over packages that
// import it. Facts are plain strings so they serialize into the on-disk
// result cache unchanged; each analyzer defines its own Kind/Detail
// vocabulary (e.g. lockorder exports {Kind: "acquires", Detail: lock key}
// facts keyed by the qualified function name).
type Fact struct {
	// Analyzer names the exporting analyzer; facts are only visible to the
	// analyzer that exported them, mirroring x/tools fact scoping.
	Analyzer string `json:"analyzer"`
	// Key identifies the object the fact describes, conventionally the
	// types.Func FullName (e.g. "(*replidtn/internal/store.Store).Put").
	Key string `json:"key"`
	// Kind is the analyzer-defined fact class.
	Kind string `json:"kind"`
	// Detail is the analyzer-defined payload.
	Detail string `json:"detail,omitempty"`
}

// FuncKey returns the canonical fact key for a function or method: its
// fully qualified name, stable across packages and cache round-trips.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass, plus the lintcore fact surface: facts exported by the same
// analyzer on the package's (transitive, in-module) dependencies are
// visible through DepFacts, and ExportFact publishes facts about this
// package's objects for future dependents.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags    *[]Diagnostic
	facts    *[]Fact
	depFacts map[string][]Fact // key → facts from dependencies, this analyzer only
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes a fact about an object of this package, visible to
// this analyzer when it runs over packages importing this one (and
// persisted in the result cache alongside diagnostics).
func (p *Pass) ExportFact(key, kind, detail string) {
	if p.facts == nil {
		return
	}
	*p.facts = append(*p.facts, Fact{Analyzer: p.Analyzer.Name, Key: key, Kind: kind, Detail: detail})
}

// DepFacts returns the facts this analyzer exported about key (a FuncKey)
// when it analyzed the package's dependencies. Nil when the key's package
// was outside the analysis set (the standard library, or a package not
// matched by the lint patterns) — analyzers must degrade gracefully.
func (p *Pass) DepFacts(key string) []Fact {
	return p.depFacts[key]
}

// DepFactsOfKind filters DepFacts by fact kind.
func (p *Pass) DepFactsOfKind(key, kind string) []Fact {
	var out []Fact
	for _, f := range p.depFacts[key] {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// AllDepFacts returns every dependency fact of the given kind this analyzer
// exported, across all keys, sorted by key then detail for deterministic
// iteration. Used by whole-graph analyzers (lockorder folds dependency
// lock-order edges into the package's graph regardless of which function
// they came from).
func (p *Pass) AllDepFacts(kind string) []Fact {
	var out []Fact
	for _, facts := range p.depFacts {
		for _, f := range facts {
			if f.Kind == kind {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// allowName is the pseudo-analyzer under which malformed //lint:allow
// comments are reported; it cannot itself be suppressed.
const allowName = "lintallow"

// allowMark is one parsed //lint:allow comment.
type allowMark struct {
	analyzers map[string]bool
	line      int
	file      string
}

// parseAllows extracts the //lint:allow marks from a package's files and
// reports malformed ones (missing justification, unknown analyzer name)
// as diagnostics so they fail the lint run rather than silently excusing
// nothing — or worse, everything.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]allowMark, []Diagnostic) {
	var marks []allowMark
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: allowName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				names, reason, justified := strings.Cut(body, " -- ")
				if !justified || strings.TrimSpace(reason) == "" {
					report(c.Pos(), "allow comment needs a justification: //lint:allow <analyzer> -- <why>")
					continue
				}
				mark := allowMark{
					analyzers: make(map[string]bool),
					line:      fset.Position(c.Pos()).Line,
					file:      fset.Position(c.Pos()).Filename,
				}
				for _, name := range strings.Split(strings.TrimSpace(names), ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						report(c.Pos(), "allow names unknown analyzer %q", name)
						continue
					}
					mark.analyzers[name] = true
				}
				if len(mark.analyzers) > 0 {
					marks = append(marks, mark)
				}
			}
		}
	}
	return marks, diags
}

// suppress drops every diagnostic covered by an allow mark: same file, same
// analyzer, and located on the mark's line or the line directly below it
// (so a mark works both trailing the flagged statement and standing alone
// above it).
func suppress(diags []Diagnostic, marks []allowMark) []Diagnostic {
	if len(marks) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		allowed := false
		for _, m := range marks {
			if m.file == d.Pos.Filename && m.analyzers[d.Analyzer] &&
				(d.Pos.Line == m.line || d.Pos.Line == m.line+1) {
				allowed = true
				break
			}
		}
		if !allowed {
			kept = append(kept, d)
		}
	}
	return kept
}

// analyzePackage applies every analyzer to one type-checked package.
// depFacts supplies, per analyzer name, the facts that analyzer exported on
// the package's dependencies. The returned diagnostics have the package's
// allow marks applied; the returned facts are this package's exports.
func analyzePackage(pkg *Package, analyzers []*Analyzer, depFacts func(analyzer string) map[string][]Fact) ([]Diagnostic, []Fact, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	var facts []Fact
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
			facts:     &facts,
		}
		if depFacts != nil {
			pass.depFacts = depFacts(a.Name)
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lintcore: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	marks, bad := parseAllows(pkg.Fset, pkg.Files, known)
	diags = append(suppress(diags, marks), bad...)
	return diags, facts, nil
}

// factStore accumulates each analyzed package's exported facts, for lookup
// by later (importing) packages. Safe for concurrent use.
type factStore struct {
	mu    sync.RWMutex
	byPkg map[string][]Fact
}

func newFactStore() *factStore {
	return &factStore{byPkg: make(map[string][]Fact)}
}

func (s *factStore) add(importPath string, facts []Fact) {
	s.mu.Lock()
	s.byPkg[importPath] = facts
	s.mu.Unlock()
}

// view builds the per-analyzer dependency-fact lookup for a package whose
// transitive in-module dependencies are deps.
func (s *factStore) view(deps []string) func(analyzer string) map[string][]Fact {
	s.mu.RLock()
	merged := make(map[string]map[string][]Fact) // analyzer → key → facts
	for _, dep := range deps {
		for _, f := range s.byPkg[dep] {
			byKey := merged[f.Analyzer]
			if byKey == nil {
				byKey = make(map[string][]Fact)
				merged[f.Analyzer] = byKey
			}
			byKey[f.Key] = append(byKey[f.Key], f)
		}
	}
	s.mu.RUnlock()
	return func(analyzer string) map[string][]Fact { return merged[analyzer] }
}

// sortDiagnostics orders diagnostics by position, then analyzer name.
func sortDiagnostics(all []Diagnostic) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// topoOrder returns pkgs sorted so every package follows its in-set
// dependencies (import-path ties broken alphabetically), which is the order
// fact export requires.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var order []*Package
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		visit(p)
	}
	return order
}

// transitiveImports returns the transitive in-set dependencies of p.
func transitiveImports(p *Package, byPath map[string]*Package) []string {
	seen := make(map[string]bool)
	var walk func(imports []string)
	walk = func(imports []string) {
		for _, imp := range imports {
			dep, ok := byPath[imp]
			if !ok || seen[imp] {
				continue
			}
			seen[imp] = true
			walk(dep.Imports)
		}
	}
	walk(p.Imports)
	deps := make([]string, 0, len(seen))
	for imp := range seen {
		deps = append(deps, imp)
	}
	sort.Strings(deps)
	return deps
}

// Run applies every analyzer to every package — in dependency order, so an
// analyzer's facts about a package are visible when its importers are
// analyzed — and returns the surviving diagnostics sorted by position.
// Allow marks are parsed per package and applied to that package's
// diagnostics only.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	facts := newFactStore()
	var all []Diagnostic
	for _, pkg := range topoOrder(pkgs) {
		diags, exported, err := analyzePackage(pkg, analyzers, facts.view(transitiveImports(pkg, byPath)))
		if err != nil {
			return nil, err
		}
		facts.add(pkg.ImportPath, exported)
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}
