// Package lintcore is the driver core for dtnlint, the repository's static
// invariant checker. It mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Reportf) but is implemented entirely on the standard
// library's go/ast and go/types, because this module builds offline and must
// not pull external dependencies. An analyzer written against lintcore ports
// to the upstream framework by renaming imports.
//
// The driver adds one facility the upstream multichecker leaves to
// third parties: source-level suppression. A diagnostic is suppressed by a
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <justification>
//
// comment on the flagged line or the line directly above it. The
// justification after " -- " is mandatory: an allow without one is itself
// reported as a diagnostic, so every escape hatch in the tree carries its
// reasoning next to the code it excuses. See DESIGN.md §10 for the catalog
// of enforced invariants and the sanctioned allow sites.
package lintcore

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker: a name (used in diagnostics and in
// //lint:allow comments), documentation, and a Run function applied to one
// package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowName is the pseudo-analyzer under which malformed //lint:allow
// comments are reported; it cannot itself be suppressed.
const allowName = "lintallow"

// allowMark is one parsed //lint:allow comment.
type allowMark struct {
	analyzers map[string]bool
	line      int
	file      string
}

// parseAllows extracts the //lint:allow marks from a package's files and
// reports malformed ones (missing justification, unknown analyzer name)
// as diagnostics so they fail the lint run rather than silently excusing
// nothing — or worse, everything.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]allowMark, []Diagnostic) {
	var marks []allowMark
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: allowName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				names, reason, justified := strings.Cut(body, " -- ")
				if !justified || strings.TrimSpace(reason) == "" {
					report(c.Pos(), "allow comment needs a justification: //lint:allow <analyzer> -- <why>")
					continue
				}
				mark := allowMark{
					analyzers: make(map[string]bool),
					line:      fset.Position(c.Pos()).Line,
					file:      fset.Position(c.Pos()).Filename,
				}
				for _, name := range strings.Split(strings.TrimSpace(names), ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						report(c.Pos(), "allow names unknown analyzer %q", name)
						continue
					}
					mark.analyzers[name] = true
				}
				if len(mark.analyzers) > 0 {
					marks = append(marks, mark)
				}
			}
		}
	}
	return marks, diags
}

// suppress drops every diagnostic covered by an allow mark: same file, same
// analyzer, and located on the mark's line or the line directly below it
// (so a mark works both trailing the flagged statement and standing alone
// above it).
func suppress(diags []Diagnostic, marks []allowMark) []Diagnostic {
	if len(marks) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		allowed := false
		for _, m := range marks {
			if m.file == d.Pos.Filename && m.analyzers[d.Analyzer] &&
				(d.Pos.Line == m.line || d.Pos.Line == m.line+1) {
				allowed = true
				break
			}
		}
		if !allowed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Allow marks are parsed per package and
// applied to that package's diagnostics only.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lintcore: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		marks, bad := parseAllows(pkg.Fset, pkg.Files, known)
		diags = append(suppress(diags, marks), bad...)
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}
