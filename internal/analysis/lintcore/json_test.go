package lintcore

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteJSON pins the machine-readable report shape CI consumes:
// one object with diagnostics (file/line/col/analyzer/message), the
// package count, and the cache-hit count — file paths rewritten relative
// to the working directory so GitHub annotations resolve.
func TestWriteJSON(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{
		Diagnostics: []Diagnostic{
			{
				Pos:      token.Position{Filename: filepath.Join(cwd, "pkg", "file.go"), Line: 12, Column: 3},
				Analyzer: "lockorder",
				Message:  "lock-order cycle",
			},
			{
				Pos:      token.Position{Filename: "/elsewhere/other.go", Line: 1, Column: 1},
				Analyzer: "determinism",
				Message:  "wall clock",
			},
		},
		Packages: 7,
		Reused:   5,
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	var report struct {
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Packages int `json:"packages"`
		Cached   int `json:"cached"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Packages != 7 || report.Cached != 5 {
		t.Errorf("packages/cached = %d/%d, want 7/5", report.Packages, report.Cached)
	}
	if len(report.Diagnostics) != 2 {
		t.Fatalf("report carries %d diagnostics, want 2", len(report.Diagnostics))
	}
	first := report.Diagnostics[0]
	if first.File != filepath.Join("pkg", "file.go") {
		t.Errorf("in-tree path = %q, want the cwd-relative %q", first.File, filepath.Join("pkg", "file.go"))
	}
	if first.Line != 12 || first.Col != 3 || first.Analyzer != "lockorder" || first.Message != "lock-order cycle" {
		t.Errorf("first diagnostic mangled: %+v", first)
	}
	// A path outside the tree must stay absolute rather than sprout ../..
	// chains that no annotation consumer can resolve.
	if second := report.Diagnostics[1]; second.File != "/elsewhere/other.go" {
		t.Errorf("out-of-tree path = %q, want it untouched", second.File)
	}
}

// TestWriteJSONEmpty keeps the empty report well-formed: diagnostics is an
// empty array, not null, so jq pipelines in CI need no null guards.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, &Result{Packages: 2, Reused: 2}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var report map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if string(report["diagnostics"]) == "null" {
		t.Errorf("empty report serializes diagnostics as null; want []")
	}
}
