// Package callbackunderlock implements the dtnlint analyzer that flags
// invoking a registered callback — any function-typed struct field, such as
// the store.LiveNotify observer, replica.Config.OnCopies, or
// messaging.Config.OnReceive — while a sync.Mutex or sync.RWMutex belonging
// to the same object is held.
//
// The O(1) copy-accounting chain introduced with the parallel engine
// (store live-transition hook → replica OnCopies → messaging OnCopies) runs
// user-supplied code from deep inside the replica; a callback that calls
// back into the locked object deadlocks (sync.Mutex is not reentrant), and
// one that blocks extends the critical section unboundedly. The safe idiom,
// used by messaging.deliver and discovery.observe, is to copy the callback
// and its arguments under the lock and invoke it after unlocking.
//
// The analyzer is intraprocedural with one repo-idiom extension: a method
// whose name ends in "Locked" on a struct that has a mutex field is treated
// as executing with that mutex held, which is exactly the contract such
// helpers document. Deliberate call-under-lock contracts (replica's
// OnDeliver ordering guarantee) are annotated with //lint:allow and
// cataloged in DESIGN.md §10.
package callbackunderlock

import (
	"go/ast"
	"go/types"
	"strings"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the callback-under-lock invariant checker.
var Analyzer = &lintcore.Analyzer{
	Name: "callbackunderlock",
	Doc:  "forbid calling function-typed fields (registered callbacks) while a mutex of the same object is held",
	Run:  run,
}

// heldLock describes one mutex the current code path holds.
type heldLock struct {
	// root is the base object the lock was reached through (the receiver
	// or local variable in s.mu.Lock()).
	root types.Object
	// expr renders the mutex expression for diagnostics ("s.mu").
	expr string
}

func run(pass *lintcore.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]heldLock{}
			if recv := lockedMethodReceiver(pass, fd); recv != nil {
				held["<locked-method>"] = heldLock{root: recv, expr: recv.Name() + "'s mutex (method is *Locked)"}
			}
			walkStmts(pass, fd.Body.List, held)
		}
	}
	return nil
}

// lockedMethodReceiver returns the receiver object of a method named
// *Locked whose receiver struct carries a mutex field, signalling the
// repo's "caller holds the lock" naming contract; nil otherwise.
func lockedMethodReceiver(pass *lintcore.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || !strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvID := fd.Recv.List[0].Names[0]
	obj := pass.TypesInfo.Defs[recvID]
	if obj == nil {
		return nil
	}
	named := lintcore.NamedOrNil(obj.Type())
	if named == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return obj
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named := lintcore.NamedOrNil(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// walkStmts scans a statement list in order, maintaining the set of held
// locks. Nested control-flow bodies are scanned with a copy of the set, so
// an early-exit branch that unlocks (if dup { mu.Unlock(); return }) does
// not clear the lock for the straight-line code after it.
func walkStmts(pass *lintcore.Pass, list []ast.Stmt, held map[string]heldLock) {
	for _, stmt := range list {
		walkStmt(pass, stmt, held)
	}
}

func walkStmt(pass *lintcore.Pass, stmt ast.Stmt, held map[string]heldLock) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if applyLockOp(pass, call, held) {
				return
			}
			checkExpr(pass, s.X, held)
			return
		}
		checkExpr(pass, s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the remainder of the
		// function body, which the linear scan already models; a deferred
		// callback call is flagged like a direct one (it may run before the
		// deferred unlock).
		if isLockOp(pass, s.Call) == "" {
			checkExpr(pass, s.Call, held)
		}
	case *ast.GoStmt:
		// A goroutine does not inherit the caller's critical section.
	case *ast.BlockStmt:
		walkStmts(pass, s.List, copyHeld(held))
	case *ast.IfStmt:
		// Branch bodies get a copy of the held set: an early-exit branch
		// that unlocks and returns must not clear the lock for the
		// fall-through path.
		checkChildExprs(pass, s.Init, s.Cond, held)
		walkStmt(pass, s.Body, copyHeld(held))
		if s.Else != nil {
			walkStmt(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		checkChildExprs(pass, s.Init, s.Cond, held)
		walkStmt(pass, s.Body, copyHeld(held))
	case *ast.RangeStmt:
		checkExpr(pass, s.X, held)
		walkStmt(pass, s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		checkChildExprs(pass, s.Init, s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, held)
	default:
		// Assignments, returns, sends, declarations: callback calls may hide
		// in any subexpression.
		checkExpr(pass, stmt, held)
	}
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func checkChildExprs(pass *lintcore.Pass, init ast.Stmt, cond ast.Expr, held map[string]heldLock) {
	if init != nil {
		checkExpr(pass, init, held)
	}
	if cond != nil {
		checkExpr(pass, cond, held)
	}
}

// isLockOp classifies a call as a mutex acquire ("lock"), release
// ("unlock"), or neither ("").
func isLockOp(pass *lintcore.Pass, call *ast.CallExpr) string {
	fn := lintcore.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}

// applyLockOp updates the held set for a Lock/Unlock call and reports
// whether the call was one.
func applyLockOp(pass *lintcore.Pass, call *ast.CallExpr, held map[string]heldLock) bool {
	op := isLockOp(pass, call)
	if op == "" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return true
	}
	mutexExpr := sel.X // s.mu in s.mu.Lock(), or s itself for an embedded mutex
	root := lintcore.RootIdent(mutexExpr)
	if root == nil {
		return true
	}
	rootObj := lintcore.ObjectOf(pass.TypesInfo, root)
	if rootObj == nil {
		return true
	}
	key := exprString(mutexExpr)
	if op == "lock" {
		held[key] = heldLock{root: rootObj, expr: key}
	} else {
		delete(held, key)
	}
	return true
}

// exprString renders a selector chain compactly for keys and diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	default:
		return "?"
	}
}

// checkExpr flags calls through function-typed fields reachable from the
// root object of any held lock.
func checkExpr(pass *lintcore.Pass, n ast.Node, held map[string]heldLock) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if fl, ok := node.(*ast.FuncLit); ok {
			_ = fl
			return false // a closure body runs later, under its own locks
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !field.IsField() {
			return true
		}
		if _, isFunc := field.Type().Underlying().(*types.Signature); !isFunc {
			return true
		}
		root := lintcore.RootIdent(sel.X)
		if root == nil {
			return true
		}
		rootObj := lintcore.ObjectOf(pass.TypesInfo, root)
		for _, lock := range held {
			if lock.root == rootObj {
				pass.Reportf(call.Pos(), "callback field %s is invoked while %s is held; copy it under the lock and call it after unlocking (deadlock/re-entrancy hazard)", exprString(sel), lock.expr)
				return true
			}
		}
		return true
	})
}
