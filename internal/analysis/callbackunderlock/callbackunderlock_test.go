package callbackunderlock_test

import (
	"testing"

	"replidtn/internal/analysis/callbackunderlock"
	"replidtn/internal/analysis/linttest"
)

// TestGolden checks the analyzer against the fixture package: callback
// fields invoked under a held (or *Locked-implied) mutex are flagged, the
// copy-then-call idiom and cross-object calls stay quiet, and the justified
// //lint:allow escape hatch suppresses the annotated line.
func TestGolden(t *testing.T) {
	linttest.Run(t, callbackunderlock.Analyzer)
}
