// Package store is a callbackunderlock-analyzer fixture mimicking the
// observer-callback shapes of the real store/replica/messaging packages.
package store

import "sync"

// Store carries a registered observer callback guarded by a mutex, like the
// real store's LiveNotify hook.
type Store struct {
	mu     sync.Mutex
	onLive func(string, int)
	peers  map[string]int
	n      int
}

// DeferBad holds the lock for the whole body via defer and invokes the
// callback inside the critical section.
func (s *Store) DeferBad(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.onLive(id, 1) // want `callback field s.onLive is invoked while s.mu is held`
}

// InlineBad unlocks only after the callback.
func (s *Store) InlineBad(id string) {
	s.mu.Lock()
	s.onLive(id, 1) // want `callback field s.onLive is invoked while s.mu is held`
	s.mu.Unlock()
}

// Good is the sanctioned idiom: copy the callback under the lock, invoke it
// after unlocking. The call through the local copy is not a field call.
func (s *Store) Good(id string) {
	s.mu.Lock()
	cb := s.onLive
	s.mu.Unlock()
	if cb != nil {
		cb(id, 1)
	}
}

// EarlyExit unlocks in a return branch; the fall-through path still holds
// the lock when the callback fires.
func (s *Store) EarlyExit(id string) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return
	}
	s.onLive(id, 1) // want `callback field s.onLive is invoked while s.mu is held`
	s.mu.Unlock()
}

// BranchUnlockClean unlocks inside the branch before calling: the copy of
// the held set models the in-branch sequence correctly.
func (s *Store) BranchUnlockClean(id string) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		s.onLive(id, 1) // unlocked on this path: fine
		return
	}
	s.mu.Unlock()
}

// notifyLocked documents the caller-holds-the-lock contract by the repo's
// *Locked naming convention; calling the callback inside it is the same
// hazard.
func (s *Store) notifyLocked(id string) {
	s.onLive(id, 1) // want `method is \*Locked`
}

// Unguarded has no lock in scope; field calls are fine.
func (s *Store) Unguarded(id string) {
	s.onLive(id, 1)
}

// OtherObject holds this store's lock while invoking a callback field of a
// different object: not this analyzer's hazard (no self-deadlock), so it
// stays quiet.
func (s *Store) OtherObject(peer *Store, id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	peer.onLive(id, 1)
}

// Spawned callbacks run outside the caller's critical section.
func (s *Store) Spawned(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.onLive(id, 1) // separate goroutine, own lock discipline: fine here
	}()
}

// Allowed demonstrates the justified escape hatch for a documented
// call-under-lock contract.
func (s *Store) Allowed(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onLive(id, 1) //lint:allow callbackunderlock -- fixture: documented deterministic-ordering contract requires in-lock delivery
}
