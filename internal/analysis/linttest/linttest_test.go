package linttest

import (
	"go/ast"
	"go/token"
	"testing"
)

func TestUnquote(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{`"plain"`, "plain"},
		{`"with \"escape\""`, `with "escape"`},
		{`"back\\slash"`, `back\slash`},
	}
	for _, c := range cases {
		got, err := unquote(c.in)
		if err != nil {
			t.Errorf("unquote(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("unquote(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := unquote(`"trailing\"`); err == nil {
		t.Error("unquote accepted a trailing backslash")
	}
}

func TestParseWant(t *testing.T) {
	fset := token.NewFileSet()
	file := fset.AddFile("fixture.go", -1, 100)
	file.AddLine(0)
	c := &ast.Comment{
		Slash: file.Pos(0),
		Text:  "// want `first pattern` \"second \\\"quoted\\\"\"",
	}
	wants := parseWant(t, fset, c)
	if len(wants) != 2 {
		t.Fatalf("want 2 markers, got %d", len(wants))
	}
	if !wants[0].re.MatchString("a first pattern here") {
		t.Errorf("backquoted marker does not match: %v", wants[0].raw)
	}
	if !wants[1].re.MatchString(`second "quoted"`) {
		t.Errorf("double-quoted marker does not match: %v", wants[1].raw)
	}
	if got := parseWant(t, fset, &ast.Comment{Slash: file.Pos(0), Text: "// no marker"}); got != nil {
		t.Errorf("comment without marker produced wants: %v", got)
	}
}
