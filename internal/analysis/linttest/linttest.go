// Package linttest is the golden-test harness for dtnlint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture packages
// live under the analyzer's testdata/src directory (which carries its own
// go.mod so `go list` resolves them without touching the real module), and
// expected diagnostics are declared inline with want comments:
//
//	time.Now() // want `reads the wall clock`
//
// The backquoted (or double-quoted) string is a regular expression matched
// against diagnostic messages reported on that line; several want markers
// may share a line. The harness fails the test for any diagnostic without a
// matching want and any want without a matching diagnostic — so a fixture
// line carrying a //lint:allow comment and no want marker is exactly the
// proof that the suppression facility works.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"replidtn/internal/analysis/lintcore"
)

// want is one expected-diagnostic marker.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// wantPattern extracts the quoted expectation strings from a want comment.
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads every fixture package under testdata/src, applies the analyzer,
// and compares the surviving diagnostics against the fixtures' want
// markers.
func Run(t *testing.T, analyzer *lintcore.Analyzer) {
	t.Helper()
	pkgs, err := lintcore.Load("testdata/src", "./...")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	diags, err := lintcore.Run(pkgs, []*lintcore.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("run %s: %v", analyzer.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmet want matching the diagnostic and reports
// whether one existed.
func claim(wants []*want, d lintcore.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses the want markers out of every fixture file.
func collectWants(t *testing.T, pkgs []*lintcore.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, pkg.Fset, c)...)
				}
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []*want {
	t.Helper()
	// The marker may open the comment or follow other trailing commentary
	// (e.g. a //lint:allow annotation under test) in the same token.
	idx := strings.Index(c.Text, "// want ")
	if idx < 0 {
		return nil
	}
	body := c.Text[idx+len("// want "):]
	pos := fset.Position(c.Pos())
	var wants []*want
	for _, quoted := range wantPattern.FindAllString(body, -1) {
		expr := quoted[1 : len(quoted)-1]
		if quoted[0] == '"' {
			unq, err := unquote(quoted)
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", pos, quoted, err)
			}
			expr = unq
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			t.Fatalf("%s: bad want regexp %s: %v", pos, quoted, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: quoted})
	}
	if len(wants) == 0 {
		t.Fatalf("%s: want comment carries no quoted expectation", pos)
	}
	return wants
}

// unquote resolves a double-quoted want string's escapes.
func unquote(s string) (string, error) {
	var out strings.Builder
	body := s[1 : len(s)-1]
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' {
			i++
			if i >= len(body) {
				return "", fmt.Errorf("trailing backslash")
			}
		}
		out.WriteByte(body[i])
	}
	return out.String(), nil
}
