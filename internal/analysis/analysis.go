// Package analysis assembles the dtnlint invariant checkers. Each analyzer
// mechanizes one design rule the repo's correctness claims rest on; the
// catalog mapping analyzers to rules lives in DESIGN.md §10.
package analysis

import (
	"replidtn/internal/analysis/callbackunderlock"
	"replidtn/internal/analysis/determinism"
	"replidtn/internal/analysis/errdiscard"
	"replidtn/internal/analysis/goroutineleak"
	"replidtn/internal/analysis/hotpathalloc"
	"replidtn/internal/analysis/lintcore"
	"replidtn/internal/analysis/lockorder"
	"replidtn/internal/analysis/transientleak"
	"replidtn/internal/analysis/unboundedgrowth"
)

// All returns every dtnlint analyzer, in reporting order.
func All() []*lintcore.Analyzer {
	return []*lintcore.Analyzer{
		determinism.Analyzer,
		callbackunderlock.Analyzer,
		transientleak.Analyzer,
		errdiscard.Analyzer,
		lockorder.Analyzer,
		goroutineleak.Analyzer,
		unboundedgrowth.Analyzer,
		hotpathalloc.Analyzer,
	}
}
