// Package store is the dependency half of the lockorder cross-package
// fixture: Acquire's lock usage is exported as an "acquires" fact that the
// replica fixture package consumes through its call sites.
package store

import "sync"

// S guards a shared table with an exported mutex, like the real store.
type S struct {
	Mu    sync.Mutex
	table map[string]int
}

// Acquire takes and releases the store lock; importers calling it while
// holding their own locks create cross-package lock-order edges.
func (s *S) Acquire(k string) {
	s.Mu.Lock()
	s.table[k]++
	s.Mu.Unlock()
}

// Peek reads without locking; calling it adds no edges.
func (s *S) Peek(k string) int {
	return s.table[k]
}
