// Package messaging exercises the lockorder allow escape hatch: a
// documented, intentionally asymmetric nesting suppressed with a justified
// //lint:allow.
package messaging

import "sync"

// E pairs an endpoint lock with a delivery lock whose one crossing is a
// documented contract.
type E struct {
	mu     sync.Mutex
	dmu    sync.Mutex
	queued int
}

// Deliver nests dmu inside mu.
func (e *E) Deliver() {
	e.mu.Lock()
	e.dmu.Lock() // want `lock-order cycle`
	e.queued++
	e.dmu.Unlock()
	e.mu.Unlock()
}

// Requeue nests mu inside dmu — the reverse edge — under a justified allow;
// Deliver's side of the cycle is still reported.
func (e *E) Requeue() {
	e.dmu.Lock()
	e.mu.Lock() //lint:allow lockorder -- fixture: documented requeue path; delivery is quiesced before requeue runs so the reverse nesting cannot deadlock
	e.queued--
	e.mu.Unlock()
	e.dmu.Unlock()
}
