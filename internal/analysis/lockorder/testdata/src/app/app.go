// Package app sits outside the analyzer's scope segments: even a blatant
// lock-order cycle stays unreported here.
package app

import "sync"

// A holds two mutexes nested in both orders — out of scope, so silent.
type A struct {
	x sync.Mutex
	y sync.Mutex
	n int
}

func (a *A) XY() {
	a.x.Lock()
	a.y.Lock()
	a.n++
	a.y.Unlock()
	a.x.Unlock()
}

func (a *A) YX() {
	a.y.Lock()
	a.x.Lock()
	a.n++
	a.x.Unlock()
	a.y.Unlock()
}
