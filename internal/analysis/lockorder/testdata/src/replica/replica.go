// Package replica is the lockorder fixture: intra-package cycles,
// same-instance reacquisition, the *Locked naming convention, and
// cross-package edges through the store dependency's facts.
package replica

import (
	"sync"

	"fixtures/store"
)

// R carries two mutexes with a documented order (mu before emitMu) plus a
// store guarded by its own lock.
type R struct {
	mu     sync.Mutex
	emitMu sync.Mutex
	s      *store.S
	n      int
}

// ForwardOrder nests emitMu inside mu: the sanctioned direction.
func (r *R) ForwardOrder() {
	r.mu.Lock()
	r.emitMu.Lock() // want `lock-order cycle`
	r.n++
	r.emitMu.Unlock()
	r.mu.Unlock()
}

// ReverseOrder nests mu inside emitMu: together with ForwardOrder this
// closes a two-lock cycle, so both acquisition sites are reported.
func (r *R) ReverseOrder() {
	r.emitMu.Lock()
	r.mu.Lock() // want `lock-order cycle`
	r.n++
	r.mu.Unlock()
	r.emitMu.Unlock()
}

// Reacquire takes the same instance's mutex twice on one path: certain
// self-deadlock, reported at the inner acquisition.
func (r *R) Reacquire() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want `acquired while already held`
	r.n++
}

// Handoff locks two distinct instances of the same type: legitimate (shard
// handoff), not a reacquisition.
func Handoff(a, b *R) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// bumpLocked runs under mu by the *Locked naming contract; taking the store
// lock inside it is an R.mu -> store.S.Mu edge even with no visible Lock.
// The edge closes a cycle through CrossReverse.
func (r *R) bumpLocked() {
	r.s.Mu.Lock() // want `lock-order cycle`
	r.s.Mu.Unlock()
}

// CrossForward calls the store's Acquire (whose lock usage arrives only as
// a dependency fact) while holding emitMu: an R.emitMu -> store.S.Mu edge
// with no Lock call in sight, cyclic via CrossReverse + ForwardOrder.
func (r *R) CrossForward() {
	r.emitMu.Lock()
	r.s.Acquire("k") // want `lock-order cycle`
	r.emitMu.Unlock()
}

// CrossReverse takes mu while holding the store's lock: closes the
// cross-package cycle with CrossForward's call-induced edge.
func (r *R) CrossReverse() {
	r.s.Mu.Lock()
	r.mu.Lock() // want `lock-order cycle`
	r.n++
	r.mu.Unlock()
	r.s.Mu.Unlock()
}

// BranchScoped unlocks before the nested acquisition on every path: the
// held-set branch copies must not leak a stale hold.
func (r *R) BranchScoped() {
	r.mu.Lock()
	if r.n > 0 {
		r.mu.Unlock()
		r.s.Peek("k")
		return
	}
	r.mu.Unlock()
}

// Spawned goroutines start with an empty held set: the inner lock is not
// ordered after mu.
func (r *R) Spawned() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.emitMu.Lock()
		r.emitMu.Unlock()
	}()
}
