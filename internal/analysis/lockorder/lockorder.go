// Package lockorder implements the dtnlint analyzer that builds a
// lock-acquisition graph and reports lock-order cycles and same-lock
// reacquisition.
//
// The replica/store/transport/messaging/wal stack holds sync.Mutex and
// sync.RWMutex fields whose nesting discipline is pure convention: replica
// documents "mu before emitMu", the WAL holds db.mu across memtable flushes,
// and the store is guarded by the replica lock by contract. One call edge
// added in the wrong direction deadlocks only under encounter-level
// concurrency — exactly the schedules the emulator's fault sweeps explore.
// This analyzer mechanizes the discipline: every mutex acquired while
// another is held becomes a directed edge (type-qualified, so all instances
// of replica.Replica.mu share a node), edges flow across packages as
// lintcore facts, and any edge that closes a directed cycle — or any
// reacquisition of a mutex the path already holds, sync.Mutex being
// non-reentrant — is reported.
//
// Conventions honored: a method named *Locked runs with its receiver's
// first mutex field held (the repo's caller-holds-the-lock naming contract,
// shared with callbackunderlock); goroutine bodies start with an empty held
// set; function literals elsewhere are assumed to run synchronously (the
// sort.Slice / store.Range idiom), so they inherit the held set at their
// definition point.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the lock-ordering invariant checker.
var Analyzer = &lintcore.Analyzer{
	Name: "lockorder",
	Doc:  "report lock-order cycles and same-lock reacquisition across the mutex-acquisition graph",
	Run:  run,
}

// scopeSegments limits the analyzer to the packages whose locking the
// design relies on; fixture packages mimic these names in tests.
var scopeSegments = []string{"replica", "store", "transport", "messaging", "wal"}

const (
	factAcquires = "acquires" // detail: one lock key the function may acquire
	factEdge     = "edge"     // detail: "from|to" lock-order edge
)

// edge is one "to acquired while from held" observation.
type edge struct{ from, to string }

// callSite is one statically resolved call with the locks held at it.
type callSite struct {
	callee string // lintcore.FuncKey of the callee
	held   []string
	pos    token.Pos
}

// funcInfo accumulates one function's locking behavior. Goroutine bodies
// get their own anonymous funcInfo (key ""): their edges are real, but
// their acquires must not leak into the spawning function's summary — the
// caller does not block on them.
type funcInfo struct {
	key      string
	acquires map[string]bool
	edges    map[edge]token.Pos
	calls    []callSite
}

// heldLock is one mutex the current path holds.
type heldLock struct {
	root types.Object // base object the lock was reached through (instance identity)
	pos  token.Pos    // acquisition site, for reacquire diagnostics
}

type analysis struct {
	pass  *lintcore.Pass
	infos []*funcInfo
}

func run(pass *lintcore.Pass) error {
	if !lintcore.PathHasSegment(pass.Pkg.Path(), scopeSegments...) {
		return nil
	}
	a := &analysis{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			info := &funcInfo{
				acquires: make(map[string]bool),
				edges:    make(map[edge]token.Pos),
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				info.key = lintcore.FuncKey(fn)
			}
			a.infos = append(a.infos, info)
			held := map[string]heldLock{}
			if key := lockedEntryKey(pass, fd); key != "" {
				held[key] = heldLock{pos: fd.Pos()}
			}
			a.walkStmts(fd.Body.List, held, info)
		}
	}
	a.finish()
	return nil
}

// lockedEntryKey returns the lock key a *Locked method holds at entry (its
// receiver's first mutex field), or "".
func lockedEntryKey(pass *lintcore.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || !strings.HasSuffix(fd.Name.Name, "Locked") || len(fd.Recv.List) == 0 {
		return ""
	}
	recvType := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if recvType == nil {
		if len(fd.Recv.List[0].Names) > 0 {
			if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
				recvType = obj.Type()
			}
		}
	}
	named := lintcore.NamedOrNil(recvType)
	if named == nil {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return namedKey(named) + "." + st.Field(i).Name()
		}
	}
	return ""
}

func isMutexType(t types.Type) bool {
	named := lintcore.NamedOrNil(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

func namedKey(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// lockKey resolves the mutex expression of a Lock/Unlock call to its
// type-qualified graph node ("pkg/path.Type.field" for struct fields,
// "pkg/path.var" for package-level mutexes) plus the instance root object.
// Function-local mutexes return "": they cannot participate in
// cross-function ordering.
func lockKey(pass *lintcore.Pass, mutexExpr ast.Expr) (string, types.Object) {
	root := lintcore.RootIdent(mutexExpr)
	var rootObj types.Object
	if root != nil {
		rootObj = lintcore.ObjectOf(pass.TypesInfo, root)
	}
	t := pass.TypesInfo.Types[mutexExpr].Type
	if t == nil && rootObj != nil {
		t = rootObj.Type()
	}
	if t == nil {
		return "", nil
	}
	if isMutexType(t) {
		switch e := ast.Unparen(mutexExpr).(type) {
		case *ast.SelectorExpr:
			field, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var)
			if !ok || !field.IsField() {
				return "", nil
			}
			sel := pass.TypesInfo.Selections[e]
			if sel == nil {
				return "", nil
			}
			owner := lintcore.NamedOrNil(sel.Recv())
			if owner == nil {
				return "", nil
			}
			return namedKey(owner) + "." + field.Name(), rootObj
		case *ast.Ident:
			obj := lintcore.ObjectOf(pass.TypesInfo, e)
			if obj == nil || obj.Pkg() == nil {
				return "", nil
			}
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name(), obj
			}
			return "", nil // function-local mutex
		}
		return "", nil
	}
	// x.Lock() through an embedded sync.Mutex: the receiver expression is
	// the embedding struct; key on its anonymous mutex field.
	named := lintcore.NamedOrNil(t)
	if named == nil {
		return "", nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Anonymous() && isMutexType(f.Type()) {
			return namedKey(named) + "." + f.Name(), rootObj
		}
	}
	return "", nil
}

// isLockOp classifies a call as mutex acquire/release by resolving the
// callee into package sync.
func isLockOp(pass *lintcore.Pass, call *ast.CallExpr) string {
	fn := lintcore.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}

func (a *analysis) walkStmts(list []ast.Stmt, held map[string]heldLock, info *funcInfo) {
	for _, stmt := range list {
		a.walkStmt(stmt, held, info)
	}
}

func (a *analysis) walkStmt(stmt ast.Stmt, held map[string]heldLock, info *funcInfo) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && a.applyLockOp(call, held, info) {
			return
		}
		a.scanExpr(s.X, held, info)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the linear
		// scan, which is the model we want; other deferred calls are
		// recorded with the current held set (they commonly run before the
		// deferred unlock).
		if isLockOp(a.pass, s.Call) == "" {
			a.scanExpr(s.Call, held, info)
		}
	case *ast.GoStmt:
		// A goroutine neither inherits the spawner's critical section nor
		// contributes to its acquisition summary; its own locking is
		// tracked in an anonymous funcInfo so its edges still count.
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ginfo := &funcInfo{acquires: make(map[string]bool), edges: make(map[edge]token.Pos)}
			a.infos = append(a.infos, ginfo)
			a.walkStmts(fl.Body.List, map[string]heldLock{}, ginfo)
		}
	case *ast.BlockStmt:
		a.walkStmts(s.List, copyHeld(held), info)
	case *ast.IfStmt:
		a.scanChild(s.Init, s.Cond, held, info)
		a.walkStmt(s.Body, copyHeld(held), info)
		if s.Else != nil {
			a.walkStmt(s.Else, copyHeld(held), info)
		}
	case *ast.ForStmt:
		a.scanChild(s.Init, s.Cond, held, info)
		a.walkStmt(s.Body, copyHeld(held), info)
	case *ast.RangeStmt:
		a.scanExpr(s.X, held, info)
		a.walkStmt(s.Body, copyHeld(held), info)
	case *ast.SwitchStmt:
		a.scanChild(s.Init, s.Tag, held, info)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.walkStmts(cc.Body, copyHeld(held), info)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.walkStmts(cc.Body, copyHeld(held), info)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				a.walkStmts(cc.Body, copyHeld(held), info)
			}
		}
	case *ast.LabeledStmt:
		a.walkStmt(s.Stmt, held, info)
	default:
		a.scanExpr(stmt, held, info)
	}
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (a *analysis) scanChild(init ast.Stmt, cond ast.Expr, held map[string]heldLock, info *funcInfo) {
	if init != nil {
		a.scanExpr(init, held, info)
	}
	if cond != nil {
		a.scanExpr(cond, held, info)
	}
}

// applyLockOp handles a direct Lock/RLock/Unlock/RUnlock call: it updates
// the held set, records the acquisition and the edges it induces, and
// reports same-instance reacquisition on the spot.
func (a *analysis) applyLockOp(call *ast.CallExpr, held map[string]heldLock, info *funcInfo) bool {
	op := isLockOp(a.pass, call)
	if op == "" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return true
	}
	key, root := lockKey(a.pass, sel.X)
	if key == "" {
		return true
	}
	if op == "unlock" {
		delete(held, key)
		return true
	}
	info.acquires[key] = true
	for h, hl := range held {
		if h == key {
			// Same type-level lock again: only a shared instance root is a
			// certain self-deadlock; two distinct instances of one type
			// (shard handoff) are legitimate.
			if root != nil && hl.root != nil && root == hl.root {
				a.pass.Reportf(call.Pos(), "mutex %s is acquired while already held (sync mutexes are not reentrant; self-deadlock)", key)
			}
			continue
		}
		if _, exists := info.edges[edge{h, key}]; !exists {
			info.edges[edge{h, key}] = call.Pos()
		}
	}
	held[key] = heldLock{root: root, pos: call.Pos()}
	return true
}

// scanExpr records statically resolved calls (with the held-lock snapshot)
// anywhere in an expression tree, and walks function literals with the held
// set at their definition point — the synchronous-callback assumption.
func (a *analysis) scanExpr(n ast.Node, held map[string]heldLock, info *funcInfo) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			a.walkStmts(node.Body.List, copyHeld(held), info)
			return false
		case *ast.CallExpr:
			fn := lintcore.CalleeFunc(a.pass.TypesInfo, node)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
				return true
			}
			snapshot := make([]string, 0, len(held))
			for h := range held {
				snapshot = append(snapshot, h)
			}
			sort.Strings(snapshot)
			info.calls = append(info.calls, callSite{
				callee: lintcore.FuncKey(fn),
				held:   snapshot,
				pos:    node.Pos(),
			})
		}
		return true
	})
}

// finish runs the interprocedural half: fixpoint the may-acquire summaries
// over the local call graph (seeded with dependency facts), materialize
// call-induced edges, fold in dependency edges, detect cycles, and export
// facts for importers.
func (a *analysis) finish() {
	pass := a.pass

	// May-acquire fixpoint. Dependency summaries are fixed inputs; local
	// summaries grow monotonically until stable.
	local := make(map[string]*funcInfo)
	may := make(map[string]map[string]bool)
	for _, info := range a.infos {
		if info.key == "" {
			continue
		}
		local[info.key] = info
		set := make(map[string]bool, len(info.acquires))
		for k := range info.acquires {
			set[k] = true
		}
		may[info.key] = set
	}
	resolve := func(callee string) []string {
		if set, ok := may[callee]; ok {
			keys := make([]string, 0, len(set))
			for k := range set {
				keys = append(keys, k)
			}
			return keys
		}
		var keys []string
		for _, f := range pass.DepFactsOfKind(callee, factAcquires) {
			keys = append(keys, f.Detail)
		}
		return keys
	}
	for changed := true; changed; {
		changed = false
		for key, info := range local {
			set := may[key]
			for _, c := range info.calls {
				for _, k := range resolve(c.callee) {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}

	// Materialize edges: direct (recorded during the walk) plus
	// call-induced (every lock a callee may acquire, ordered after every
	// lock held at the call site).
	type located struct {
		e   edge
		pos token.Pos
	}
	edgePos := make(map[edge]token.Pos)
	record := func(e edge, pos token.Pos) {
		if e.from == e.to {
			return
		}
		if old, ok := edgePos[e]; !ok || pos < old {
			edgePos[e] = pos
		}
	}
	for _, info := range a.infos {
		for e, pos := range info.edges {
			record(e, pos)
		}
		for _, c := range info.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, k := range resolve(c.callee) {
				for _, h := range c.held {
					record(edge{h, k}, c.pos)
				}
			}
		}
	}

	// Adjacency over local edges plus dependency edges (reachability only;
	// a dependency's own cycles were reported when it was analyzed).
	adj := make(map[string][]string)
	addAdj := func(e edge) { adj[e.from] = append(adj[e.from], e.to) }
	for e := range edgePos {
		addAdj(e)
	}
	for _, f := range pass.AllDepFacts(factEdge) {
		from, to, ok := strings.Cut(f.Detail, "|")
		if ok && from != to {
			addAdj(edge{from, to})
		}
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}

	var cyclic []located
	for e, pos := range edgePos {
		if reaches(e.to, e.from) {
			cyclic = append(cyclic, located{e, pos})
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		if cyclic[i].pos != cyclic[j].pos {
			return cyclic[i].pos < cyclic[j].pos
		}
		return cyclic[i].e.from+cyclic[i].e.to < cyclic[j].e.from+cyclic[j].e.to
	})
	for _, c := range cyclic {
		pass.Reportf(c.pos, "lock-order cycle: %s is acquired while %s is held, and %s is (transitively) acquired while %s is held elsewhere; pick one order", c.e.to, c.e.from, c.e.from, c.e.to)
	}

	// Export facts: per-function acquisition summaries for callers in
	// importing packages, and this package's edges for their cycle checks.
	for _, key := range sortedKeys(local) {
		set := may[key]
		for _, lock := range sortedSet(set) {
			pass.ExportFact(key, factAcquires, lock)
		}
	}
	pkgKey := pass.Pkg.Path()
	for _, c := range sortedEdges(edgePos) {
		pass.ExportFact(pkgKey, factEdge, c.from+"|"+c.to)
	}
}

func sortedKeys(m map[string]*funcInfo) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedSet(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedEdges(m map[edge]token.Pos) []edge {
	edges := make([]edge, 0, len(m))
	for e := range m {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	return edges
}
