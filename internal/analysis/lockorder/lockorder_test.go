package lockorder_test

import (
	"testing"

	"replidtn/internal/analysis/linttest"
	"replidtn/internal/analysis/lockorder"
)

// TestGolden checks the analyzer against the fixture packages: intra- and
// cross-package lock-order cycles and same-instance reacquisition are
// flagged (including edges induced through *Locked methods and dependency
// facts), consistent nesting, branch-scoped unlocks, distinct-instance
// handoff, and goroutine bodies stay quiet, out-of-scope packages are
// skipped, and the justified //lint:allow suppresses its side of a cycle.
func TestGolden(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer)
}
