package errdiscard_test

import (
	"testing"

	"replidtn/internal/analysis/errdiscard"
	"replidtn/internal/analysis/linttest"
)

// TestGolden checks the analyzer against the fixture packages: discarded
// error returns in transport/persist are flagged in every form (bare call,
// blank assign, defer, go), the `_ = conn.SetDeadline` arming pattern and
// out-of-scope packages stay quiet, and the justified //lint:allow escape
// hatch suppresses the annotated line.
func TestGolden(t *testing.T) {
	linttest.Run(t, errdiscard.Analyzer)
}
