// Package app is an errdiscard-analyzer fixture outside the
// transport/persist scope: discards here are ordinary robustness concerns,
// not transactional-sync violations, and stay unflagged.
package app

import "os"

func cleanup(f *os.File) {
	f.Close()
	defer f.Close()
	_ = os.Remove("scratch")
}
