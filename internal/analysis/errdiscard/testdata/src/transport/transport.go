// Package transport is an errdiscard-analyzer fixture: a wire-handling
// package where discarded errors break transactional sync.
package transport

import (
	"net"
	"time"
)

// serve exercises the flagged discard forms.
func serve(conn net.Conn, buf []byte) {
	conn.Close()                            // want `call to Close discards its error`
	defer conn.Close()                      // want `deferred call to Close discards its error`
	go conn.Close()                         // want `spawned call to Close discards its error`
	_ = conn.Close()                        // want `error from Close is blank-assigned`
	n, _ := conn.Read(buf)                  // want `error from Read is blank-assigned`
	_ = n
	_ = conn.SetDeadline(time.Time{})       // sanctioned deadline-arming pattern: fine
	_ = conn.SetReadDeadline(time.Time{})   // fine
	_ = conn.SetWriteDeadline(time.Time{})  // fine
	if err := conn.Close(); err != nil {    // handled: fine
		_ = err
	}
}

// helpers without error results are never flagged.
func report(s string) {}

func clean(conn net.Conn) {
	report("ok")
	defer report("done")
}

// allowed demonstrates the justified escape hatch.
func allowed(ln net.Listener) {
	ln.Close() //lint:allow errdiscard -- fixture: listener already failed; nothing to report the close error to
}
