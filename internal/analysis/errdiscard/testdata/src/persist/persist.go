// Package persist is an errdiscard-analyzer fixture for the durability
// side of the transactional-sync contract.
package persist

import "os"

func save(path string, data []byte) error {
	tmp, err := os.CreateTemp("", ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // want `deferred call to Remove discards its error`
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() // want `call to Close discards its error`
		return err
	}
	if err := tmp.Close(); err != nil { // handled: fine
		return err
	}
	return os.Rename(tmp.Name(), path)
}
