// Package errdiscard implements the dtnlint analyzer that forbids
// discarding error returns in the transport and persist packages.
//
// Both packages sit on the transactional-sync path hardened by the
// fault-injection work (DESIGN.md §9): transport promises that a severed
// batch is discarded whole and persist promises atomic, detectable
// snapshots. A swallowed error on either surface converts a detectable
// fault into silent state divergence — the one failure mode the fault model
// cannot account for. Elsewhere in the repo, dropped errors are at worst a
// robustness wart; here they break a stated guarantee, so the check is
// scoped rather than global.
//
// Flagged forms: a call used as a bare statement whose (last) result is an
// error, a blank-assigned error result, and a deferred or spawned call
// whose error vanishes with the statement. One pattern is allowlisted
// outright: `_ = conn.SetDeadline(...)` (and the read/write variants) — the
// deliberate best-effort deadline arming on a connection whose subsequent
// reads report any failure anyway. Everything else needs handling or a
// justified //lint:allow.
package errdiscard

import (
	"go/ast"
	"go/types"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the discarded-error checker for the wire/durability packages.
var Analyzer = &lintcore.Analyzer{
	Name: "errdiscard",
	Doc:  "forbid discarded error returns in transport and persist, where a swallowed error breaks transactional sync",
	Run:  run,
}

// scopeSegments are the packages under the transactional-sync contract.
var scopeSegments = []string{"transport", "persist"}

// deadlineMethods may have their error blank-assigned without justification.
var deadlineMethods = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

func run(pass *lintcore.Pass) error {
	if !lintcore.PathHasSegment(pass.Pkg.Path(), scopeSegments...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkBareCall(pass, call, "call")
				}
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call, "deferred call")
			case *ast.GoStmt:
				checkBareCall(pass, n.Call, "spawned call")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// errorResults returns the indices of error-typed results of a call.
func errorResults(pass *lintcore.Pass, call *ast.CallExpr) []int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if lintcore.IsErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
		return out
	default:
		if lintcore.IsErrorType(tv.Type) {
			return []int{0}
		}
	}
	return nil
}

// checkBareCall flags a statement-position call whose error result dies
// with the statement.
func checkBareCall(pass *lintcore.Pass, call *ast.CallExpr, kind string) {
	if len(errorResults(pass, call)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "%s to %s discards its error; on the transactional sync path a swallowed error is silent state divergence — handle it or annotate why it cannot matter", kind, calleeName(pass, call))
}

// checkBlankAssign flags error results assigned to the blank identifier,
// excepting the deliberate deadline-arming pattern.
func checkBlankAssign(pass *lintcore.Pass, assign *ast.AssignStmt) {
	// Only call RHS can produce errors; tuple-destructuring assigns have a
	// single call on the right.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for _, i := range errorResults(pass, call) {
			if i < len(assign.Lhs) && isBlank(assign.Lhs[i]) {
				report(pass, call, assign)
			}
		}
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(assign.Lhs) || !isBlank(assign.Lhs[i]) {
			continue
		}
		if len(errorResults(pass, call)) > 0 {
			report(pass, call, assign)
		}
	}
}

func report(pass *lintcore.Pass, call *ast.CallExpr, assign *ast.AssignStmt) {
	if fn := lintcore.CalleeFunc(pass.TypesInfo, call); fn != nil && deadlineMethods[fn.Name()] {
		return // the sanctioned `_ = conn.SetDeadline(...)` arming pattern
	}
	pass.Reportf(assign.Pos(), "error from %s is blank-assigned; on the transactional sync path a swallowed error is silent state divergence — handle it or annotate why it cannot matter", calleeName(pass, call))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeName renders the callee for diagnostics.
func calleeName(pass *lintcore.Pass, call *ast.CallExpr) string {
	if fn := lintcore.CalleeFunc(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "call"
}
