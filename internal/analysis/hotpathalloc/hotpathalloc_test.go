package hotpathalloc_test

import (
	"testing"

	"replidtn/internal/analysis/hotpathalloc"
	"replidtn/internal/analysis/linttest"
)

// TestGolden checks the analyzer against the fixture package: inside
// //dtn:hotpath functions, capturing closures, interface boxing at call
// arguments, assignments, returns, sends, and composite literals, fmt
// calls, un-preallocated appends, and map-range-fed ordered output are all
// flagged, while the allocation-free counterparts (preallocated slices,
// strconv, sorted keys, pointer-shaped interface values, field appends),
// the unannotated twin, and the justified //lint:allow stay quiet.
func TestGolden(t *testing.T) {
	linttest.Run(t, hotpathalloc.Analyzer)
}
