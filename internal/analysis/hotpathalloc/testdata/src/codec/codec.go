// Package codec is the hotpathalloc fixture: every allocation pattern the
// //dtn:hotpath contract forbids, its allocation-free counterpart, the
// unannotated twin that stays unchecked, and the justified escape hatch.
package codec

import (
	"fmt"
	"sort"
	"strconv"
)

// sink accepts anything; passing a concrete non-pointer value boxes it.
func sink(v interface{}) { _ = v }

// Frame is a tiny value record.
type Frame struct {
	Kind uint8
	Len  int
}

// Box carries an interface-typed field.
type Box struct {
	payload interface{}
}

// Encoder appends frames into a reusable buffer.
type Encoder struct {
	buf []byte
	out chan interface{}
}

// EncodeHot violates the contract five ways.
//
//dtn:hotpath
func (e *Encoder) EncodeHot(frames []Frame, counts map[string]int) []string {
	total := 0
	walk := func() { // want `function literal captures total`
		total++
	}
	walk()
	sink(frames[0]) // want `argument boxes a concrete value`
	name := fmt.Sprintf("frame-%d", total) // want `call into package fmt`
	var lines []string
	lines = append(lines, name) // want `append to lines, which was declared without preallocated capacity`
	for k := range counts {
		lines = append(lines, k) // want `appending to lines while ranging a map` `append to lines, which was declared without preallocated capacity`
	}
	return lines
}

// BoxHot boxes through assignment, return, send, and composite literal.
//
//dtn:hotpath
func (e *Encoder) BoxHot(f Frame) interface{} {
	var b Box
	b.payload = f // want `assignment boxes a concrete value`
	e.out <- f    // want `channel send boxes a concrete value`
	_ = Box{payload: f} // want `composite-literal field boxes a concrete value`
	return f // want `return value boxes a concrete value`
}

// EncodeClean does the same work within the contract: preallocated output,
// strconv instead of fmt, keys sorted before ordered emission, pointer
// values through the interface slot.
//
//dtn:hotpath
func (e *Encoder) EncodeClean(frames []Frame, counts map[string]int) []string {
	lines := make([]string, 0, len(frames)+len(counts))
	for i := range frames {
		lines = append(lines, strconv.Itoa(frames[i].Len))
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines = append(lines, keys...)
	sink(&frames[0]) // pointer fits the interface word: no boxing
	e.buf = append(e.buf, byte(len(lines))) // field append: caller amortizes
	return lines
}

// EncodeCold is EncodeHot without the annotation: identical patterns, no
// contract, no diagnostics.
func (e *Encoder) EncodeCold(frames []Frame, counts map[string]int) []string {
	total := 0
	walk := func() { total++ }
	walk()
	sink(frames[0])
	name := fmt.Sprintf("frame-%d", total)
	var lines []string
	lines = append(lines, name)
	for k := range counts {
		lines = append(lines, k)
	}
	return lines
}

// EncodeAllowed keeps one violation under a justified allow: the error
// path formats diagnostics, and errors are off the hot path by contract.
//
//dtn:hotpath
func (e *Encoder) EncodeAllowed(f Frame) error {
	if f.Len < 0 {
		return fmt.Errorf("negative frame length %d", f.Len) //lint:allow hotpathalloc -- fixture: error construction runs only on the failure path, never per frame
	}
	e.buf = append(e.buf, f.Kind)
	return nil
}
