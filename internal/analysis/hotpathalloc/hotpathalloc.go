// Package hotpathalloc implements the dtnlint analyzer behind the
// //dtn:hotpath function annotation: a machine-checked "this function does
// not allocate avoidably" contract.
//
// The ROADMAP's zero-alloc goal (wire/WAL codec, sync candidate pipeline)
// was previously a benchmark we remembered to run; annotating a function
//
//	//dtn:hotpath
//	func (s *Store) Put(...)
//
// turns it into a gated invariant. Inside an annotated function the
// analyzer forbids the allocation patterns that silently creep into Go hot
// loops:
//
//   - function literals that capture enclosing variables (the closure and
//     its captured variables escape to the heap on every call);
//   - boxing a concrete non-pointer value into an interface (call
//     arguments, assignments, returns, sends, composite literals) — the
//     value is heap-allocated to fit the interface's data word;
//   - any call into package fmt (fmt formats through reflection and
//     allocates on every call — the determinism analyzer's ban on %p/%v of
//     pointers composes with this);
//   - appending to a function-local slice that was never pre-allocated
//     with make (growth reallocates geometrically inside the loop; fields
//     and parameters are exempt because their capacity is amortized by the
//     caller);
//   - iterating a map to feed an ordered output (append or channel send) —
//     both an ordering hazard and a symptom of building ad-hoc collections
//     on the hot path.
//
// The annotation is inherited by nothing: helpers called from a hot path
// must be annotated (and thus checked) themselves to get the guarantee.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &lintcore.Analyzer{
	Name: "hotpathalloc",
	Doc:  "enforce the //dtn:hotpath contract: no closures, interface boxing, fmt, unpreallocated append, or map-order-fed output",
	Run:  run,
}

// marker is the annotation line, written pragma-style (no space) so gofmt
// leaves it alone.
const marker = "//dtn:hotpath"

func run(pass *lintcore.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

func checkFunc(pass *lintcore.Pass, fd *ast.FuncDecl) {
	// Pre-pass: local slice variables with no pre-allocated backing array
	// (declared nil or empty-literal); appends to these are flagged.
	bare := bareLocalSlices(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if captured := capturedVars(pass, fd, n); len(captured) > 0 {
				pass.Reportf(n.Pos(), "hotpath %s: function literal captures %s; the closure escapes to the heap per call — hoist it or pass state explicitly", fd.Name.Name, strings.Join(captured, ", "))
			}
			return false // the literal's own body is not the annotated hot path
		case *ast.CallExpr:
			checkCall(pass, fd, n, bare)
		case *ast.AssignStmt:
			checkAssign(pass, fd, n)
		case *ast.ReturnStmt:
			checkReturn(pass, fd, n)
		case *ast.SendStmt:
			checkSend(pass, fd, n)
		case *ast.CompositeLit:
			checkComposite(pass, fd, n)
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		}
		return true
	})
}

// bareLocalSlices collects slice variables declared in fd with nil or
// empty-literal initializers: `var buf []T` or `buf := []T{}`. Appending to
// one inside the hot path grows it through repeated reallocation.
func bareLocalSlices(pass *lintcore.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	bare := make(map[types.Object]bool)
	mark := func(id *ast.Ident, init ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if init == nil {
			bare[obj] = true
			return
		}
		if cl, ok := ast.Unparen(init).(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
			bare[obj] = true
		}
		if id, ok := ast.Unparen(init).(*ast.Ident); ok && id.Name == "nil" {
			bare[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					mark(name, init)
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					mark(id, n.Rhs[i])
				}
			}
		}
		return true
	})
	return bare
}

// capturedVars lists variables a function literal uses but does not
// declare: locals of the enclosing function referenced from the closure.
func capturedVars(pass *lintcore.Pass, fd *ast.FuncDecl, fl *ast.FuncLit) []string {
	var captured []string
	seen := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Captured = declared inside the enclosing function but outside the
		// literal. Package-level vars aren't captures (no per-call alloc).
		if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
			return true
		}
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		seen[obj] = true
		captured = append(captured, obj.Name())
		return true
	})
	return captured
}

// boxes reports whether assigning expr into a slot of type target boxes a
// concrete value: the target is an interface, the value is not (interface
// to interface is a pointer copy), and the value is not pointer-shaped
// (pointers, chans, maps, funcs fit the interface data word without heap
// allocation).
func boxes(pass *lintcore.Pass, expr ast.Expr, target types.Type) bool {
	if target == nil {
		return false
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

func reportBox(pass *lintcore.Pass, fd *ast.FuncDecl, expr ast.Expr, what string) {
	pass.Reportf(expr.Pos(), "hotpath %s: %s boxes a concrete value into an interface (heap-allocates per call); keep hot-path data concrete", fd.Name.Name, what)
}

func checkCall(pass *lintcore.Pass, fd *ast.FuncDecl, call *ast.CallExpr, bare map[types.Object]bool) {
	// fmt is banned outright.
	if fn := lintcore.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hotpath %s: call into package fmt (reflection-based formatting allocates per call); format off the hot path or use strconv", fd.Name.Name)
		return
	}
	// Un-preallocated append to a bare local.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := lintcore.ObjectOf(pass.TypesInfo, target); obj != nil && bare[obj] {
					pass.Reportf(call.Pos(), "hotpath %s: append to %s, which was declared without preallocated capacity; make it with a capacity bound (growth reallocates inside the loop)", fd.Name.Name, target.Name)
				}
			}
			return
		}
	}
	// Interface boxing at call arguments.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			if last, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				param = last.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if boxes(pass, arg, param) {
			reportBox(pass, fd, arg, "argument")
		}
	}
}

func checkAssign(pass *lintcore.Pass, fd *ast.FuncDecl, n *ast.AssignStmt) {
	if n.Tok.String() == ":=" {
		return // new variable takes the concrete type; nothing boxes
	}
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		lt, ok := pass.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		if boxes(pass, rhs, lt.Type) {
			reportBox(pass, fd, rhs, "assignment")
		}
	}
}

func checkReturn(pass *lintcore.Pass, fd *ast.FuncDecl, n *ast.ReturnStmt) {
	fnObj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fnObj.Type().(*types.Signature)
	if sig.Results().Len() != len(n.Results) {
		return
	}
	for i, res := range n.Results {
		if boxes(pass, res, sig.Results().At(i).Type()) {
			reportBox(pass, fd, res, "return value")
		}
	}
}

func checkSend(pass *lintcore.Pass, fd *ast.FuncDecl, n *ast.SendStmt) {
	tv, ok := pass.TypesInfo.Types[n.Chan]
	if !ok {
		return
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return
	}
	if boxes(pass, n.Value, ch.Elem()) {
		reportBox(pass, fd, n.Value, "channel send")
	}
}

func checkComposite(pass *lintcore.Pass, fd *ast.FuncDecl, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Struct:
		for i, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for j := 0; j < t.NumFields(); j++ {
					if t.Field(j).Name() == key.Name && boxes(pass, kv.Value, t.Field(j).Type()) {
						reportBox(pass, fd, kv.Value, "composite-literal field")
					}
				}
			} else if i < t.NumFields() && boxes(pass, elt, t.Field(i).Type()) {
				reportBox(pass, fd, elt, "composite-literal field")
			}
		}
	case *types.Slice:
		for _, elt := range cl.Elts {
			if boxes(pass, elt, t.Elem()) {
				reportBox(pass, fd, elt, "composite-literal element")
			}
		}
	}
}

// checkMapRange flags a range over a map whose body feeds an ordered
// output: appending to a slice declared outside the loop or sending on a
// channel. Map iteration order is randomized, so the output order is too —
// and the pattern usually means an ad-hoc collection is being built on the
// hot path.
func checkMapRange(pass *lintcore.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "hotpath %s: channel send inside a map range; map order is randomized, so the receive order is too", fd.Name.Name)
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || id.Name != "append" || len(n.Args) == 0 {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			target, ok := ast.Unparen(n.Args[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := lintcore.ObjectOf(pass.TypesInfo, target)
			if obj == nil {
				return true
			}
			// Only appends to slices that outlive the iteration matter, and
			// collect-then-sort is the sanctioned idiom: a slice handed to
			// package sort later in the function has its order restored.
			if (obj.Pos() < rs.Pos() || obj.Pos() > rs.End()) && !sortedAfter(pass, fd, rs, obj) {
				pass.Reportf(n.Pos(), "hotpath %s: appending to %s while ranging a map feeds randomized order into an ordered output; sort the keys first (off the hot path) or keep a sorted structure", fd.Name.Name, target.Name)
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a package-sort function
// after the map range: the collect-then-sort idiom re-establishes a
// deterministic order, so the range-fed append is not an ordering hazard.
func sortedAfter(pass *lintcore.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := lintcore.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && lintcore.ObjectOf(pass.TypesInfo, id) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
