// Package app sits outside the analyzer's scope segments: unbounded growth
// here is an application concern, not replication state, and stays silent.
package app

// Journal grows without bound — out of scope, so unreported.
type Journal struct {
	lines []string
}

func (j *Journal) Add(line string) {
	j.lines = append(j.lines, line)
}
