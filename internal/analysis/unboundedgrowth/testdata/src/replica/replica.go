// Package replica is the unboundedgrowth fixture: long-lived map/slice
// fields grown per peer or per item with no delete, eviction, cap, or
// drain anywhere in the package — the SummaryPeerCap bug class — against
// every sanctioned bounding idiom the analyzer credits.
package replica

// Tracker accumulates per-peer and per-item state.
type Tracker struct {
	peers map[string]int
	log   []string
	seen  map[string]bool

	cache  map[string]int
	buf    []byte
	window []int
	scores map[string]float64
	inbox  []string
}

// AddPeer grows the peer map; nothing in the package ever shrinks it.
func (t *Tracker) AddPeer(id string) {
	t.peers[id]++ // want `map field .*Tracker.peers grows in AddPeer`
}

// Append grows the log slice; nothing in the package ever shrinks it.
func (t *Tracker) Append(line string) {
	t.log = append(t.log, line) // want `slice field .*Tracker.log grows in Append`
}

// Mark is the prophet partner-cache bug verbatim: the nil-guarded lazy
// make is initialization, not eviction, so the field still grows without
// bound.
func (t *Tracker) Mark(id string) {
	if t.seen == nil {
		t.seen = make(map[string]bool)
	}
	t.seen[id] = true // want `map field .*Tracker.seen grows in Mark`
}

// Cache grows a map that Invalidate below deletes from: bounded.
func (t *Tracker) Cache(k string, v int) {
	t.cache[k] = v
}

// Invalidate is the delete site crediting cache.
func (t *Tracker) Invalidate(k string) {
	delete(t.cache, k)
}

// Buffer appends to buf, which Flush truncates wholesale: bounded.
func (t *Tracker) Buffer(b byte) {
	t.buf = append(t.buf, b)
}

// Flush is the reassignment shrink site crediting buf.
func (t *Tracker) Flush() []byte {
	out := t.buf
	t.buf = t.buf[:0]
	return out
}

// Slide grows window under a len() bound checked in the same function:
// the cap is visibly enforced where the growth happens.
func (t *Tracker) Slide(v int) {
	if len(t.window) >= 128 {
		t.window = t.window[1:]
	}
	t.window = append(t.window, v)
}

// Score grows scores, which pruneScores hands to an eviction-style helper.
func (t *Tracker) Score(id string, s float64) {
	t.scores[id] = s
}

// pruneScores passes the field to a callee whose name declares eviction.
func (t *Tracker) pruneScores() {
	evictLowest(t.scores)
}

func evictLowest(m map[string]float64) {
	for k := range m {
		delete(m, k)
		return
	}
}

// Deliver grows the application-owned inbox deliberately: the consumer
// drains it, which this package cannot see.
func (t *Tracker) Deliver(msg string) {
	t.inbox = append(t.inbox, msg) //lint:allow unboundedgrowth -- fixture: application-owned drain buffer; the consumer empties it via a TakeInbox-style API outside this package
}

// Ledger's receiver-wide credit: a method matching the eviction-name
// pattern bounds every map/slice field of its type.
type Ledger struct {
	entries map[string]int
}

// Record grows entries; Compact below credits the whole receiver.
func (l *Ledger) Record(k string) {
	l.entries[k]++
}

// Compact rewrites the ledger in place, keeping it bounded.
func (l *Ledger) Compact() {
	for k, v := range l.entries {
		if v == 0 {
			delete(l.entries, k)
		}
	}
}

// Touch mutates a Tracker it does not own (package function, not a method
// of the type): growth is only charged to the owning type's methods.
func Touch(t *Tracker, id string) {
	t.peers[id]++
}
