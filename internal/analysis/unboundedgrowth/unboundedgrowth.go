// Package unboundedgrowth implements the dtnlint analyzer that flags map
// and slice struct fields which only ever grow.
//
// The motivating bug is PR 7's summary caches: replica kept per-peer
// Bloom-digest frontiers and delta-knowledge state in maps keyed by peer
// ID, with inserts on every sync and no eviction — on a long-lived node
// meeting an open-ended peer population, that is a slow memory leak, fixed
// only later by SummaryPeerCap. The same shape (state keyed by peer or item
// ID, populated on the hot path, freed never) recurs in routing tables,
// dedup sets, and delivery buffers, so the rule is mechanized: inside the
// state-bearing packages, a map/slice field of a struct that is written
// (map insert, self-append) in the struct's own methods must have a
// shrink site somewhere in the package — a delete, a clear, a reassignment
// that drops elements, a call into an eviction-style helper, or a len()
// bound checked in the same function as the growth.
//
// Deliberately unbounded fields (an application-owned drain buffer) carry a
// //lint:allow with the justification, which is the audit trail this
// analyzer exists to force.
package unboundedgrowth

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the unbounded-state invariant checker.
var Analyzer = &lintcore.Analyzer{
	Name: "unboundedgrowth",
	Doc:  "flag map/slice struct fields that grow in methods with no delete/eviction/cap site in the package",
	Run:  run,
}

// scopeSegments are the packages that hold long-lived per-peer/per-item
// state; fixture packages mimic these names in tests.
var scopeSegments = []string{
	"replica", "store", "transport", "messaging", "discovery",
	"routing", "prophet", "maxprop", "persist", "wal", "vclock",
}

// shrinkCallee matches helper names that imply bounded retention when a
// field is passed to (or its holder invokes) them.
var shrinkCallee = regexp.MustCompile(`(?i)(evict|prune|trim|expire|compact|reset|clear|drop|purge|shrink|gc|limit|cap)`)

// fieldRef identifies a struct field type-qualified, so writes through any
// instance or alias aggregate onto one ledger entry.
type fieldRef struct {
	typ   string // named type, pkgpath.Name
	field string
}

type growth struct {
	ref    fieldRef
	pos    token.Pos
	method string
	kind   string // "map" or "slice"
	fn     *ast.FuncDecl
}

func run(pass *lintcore.Pass) error {
	if !lintcore.PathHasSegment(pass.Pkg.Path(), scopeSegments...) {
		return nil
	}
	var growths []growth
	shrunk := make(map[fieldRef]bool)
	// capped marks fields whose growth function also checks len(field)
	// against a bound; keyed per enclosing function.
	type funcField struct {
		fn  *ast.FuncDecl
		ref fieldRef
	}
	capped := make(map[funcField]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverType(pass, fd)
			lazyInit := lazyInitAssigns(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					scanAssign(pass, fd, recv, n, &growths, shrunk, lazyInit)
				case *ast.IncDecStmt:
					// x.f[k]++ inserts k when absent: map growth.
					if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
						if ref, kind, ok := fieldOf(pass, idx.X); ok && kind == "map" && methodOf(pass, recv, idx.X) {
							growths = append(growths, growth{ref: ref, pos: n.Pos(), method: fd.Name.Name, kind: kind, fn: fd})
						}
					}
				case *ast.CallExpr:
					scanCall(pass, n, shrunk)
				case *ast.BinaryExpr:
					if ref, ok := lenBoundCheck(pass, n); ok {
						capped[funcField{fd, ref}] = true
					}
				}
				return true
			})
		}
	}

	// Report each still-unbounded field once, at its first growth site.
	sort.Slice(growths, func(i, j int) bool { return growths[i].pos < growths[j].pos })
	reported := make(map[fieldRef]bool)
	for _, g := range growths {
		if shrunk[g.ref] || reported[g.ref] {
			continue
		}
		if capped[funcField{g.fn, g.ref}] {
			continue
		}
		reported[g.ref] = true
		pass.Reportf(g.pos, "%s field %s.%s grows in %s but nothing in this package ever deletes, evicts, or caps it (unbounded per-peer/per-item state; the SummaryPeerCap bug class)", g.kind, g.ref.typ, g.ref.field, g.method)
	}
	return nil
}

// receiverType returns the named receiver type of a method, or nil.
func receiverType(pass *lintcore.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if t == nil && len(fd.Recv.List[0].Names) > 0 {
		if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			t = obj.Type()
		}
	}
	return lintcore.NamedOrNil(t)
}

// fieldOf resolves expr to a map/slice struct field reference plus its
// element kind; ok is false for locals, parameters, and non-collections.
func fieldOf(pass *lintcore.Pass, expr ast.Expr) (fieldRef, string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return fieldRef{}, "", false
	}
	field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() {
		return fieldRef{}, "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return fieldRef{}, "", false
	}
	owner := lintcore.NamedOrNil(selection.Recv())
	if owner == nil || owner.Obj().Pkg() == nil {
		return fieldRef{}, "", false
	}
	var kind string
	switch field.Type().Underlying().(type) {
	case *types.Map:
		kind = "map"
	case *types.Slice:
		kind = "slice"
	default:
		return fieldRef{}, "", false
	}
	ref := fieldRef{
		typ:   owner.Obj().Pkg().Path() + "." + owner.Obj().Name(),
		field: field.Name(),
	}
	return ref, kind, true
}

// scanAssign classifies one assignment as growth or shrink.
//
// Growth (methods of the owning type only — constructors build, they don't
// leak): x.f[k] = v on a map field; x.f = append(x.f, ...) on a slice
// field. Shrink (any function): x.f = <anything that isn't a pure
// self-append> — covers re-make, nil-out, x.f = x.f[:0], and the
// compaction idiom append(x.f[:i], x.f[i+1:]...).
func scanAssign(pass *lintcore.Pass, fd *ast.FuncDecl, recv *types.Named, n *ast.AssignStmt, growths *[]growth, shrunk map[fieldRef]bool, lazyInit map[token.Pos]bool) {
	for i, lhs := range n.Lhs {
		// Map insert: x.f[k] = v.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if ref, kind, ok := fieldOf(pass, idx.X); ok && kind == "map" {
				if methodOf(pass, recv, idx.X) {
					*growths = append(*growths, growth{ref: ref, pos: lhs.Pos(), method: fd.Name.Name, kind: kind, fn: fd})
				}
			}
			continue
		}
		ref, kind, ok := fieldOf(pass, lhs)
		if !ok {
			continue
		}
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		if kind == "slice" && isSelfAppend(pass, lhs, rhs) {
			if methodOf(pass, recv, lhs) {
				*growths = append(*growths, growth{ref: ref, pos: lhs.Pos(), method: fd.Name.Name, kind: kind, fn: fd})
			}
			continue
		}
		// Any other reassignment resets or rebuilds the field — unless it
		// is the lazy-init idiom (guarded by `if x.f == nil`), which only
		// ever runs once per field and bounds nothing.
		if !lazyInit[lhs.Pos()] {
			shrunk[ref] = true
		}
	}
}

// lazyInitAssigns collects the positions of assignment LHSs that sit inside
// an `if x.f == nil { ... }` body assigning that same field: first-use
// initialization, not eviction.
func lazyInitAssigns(pass *lintcore.Pass, fd *ast.FuncDecl) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		be, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		var guarded ast.Expr
		if isNilIdent(pass, be.Y) {
			guarded = be.X
		} else if isNilIdent(pass, be.X) {
			guarded = be.Y
		}
		if guarded == nil {
			return true
		}
		ref, _, ok := fieldOf(pass, guarded)
		if !ok {
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if r, _, ok := fieldOf(pass, lhs); ok && r == ref && sameSelector(lhs, guarded) {
					out[lhs.Pos()] = true
				}
			}
			return true
		})
		return true
	})
	return out
}

func isNilIdent(pass *lintcore.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// methodOf reports whether the write goes through the method's own receiver
// type: expr's base must resolve to a value of type recv. Writes to
// embedded/other structs from a constructor-style function don't count as
// the leak pattern.
func methodOf(pass *lintcore.Pass, recv *types.Named, expr ast.Expr) bool {
	if recv == nil {
		return false
	}
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	owner := lintcore.NamedOrNil(selection.Recv())
	return owner != nil && owner.Obj() == recv.Obj()
}

// isSelfAppend reports whether rhs is append(lhs, ...) with lhs as the
// exact first argument — pure growth. append over a sliced prefix
// (append(x.f[:i], ...)) drops elements and is treated as shrink by the
// caller.
func isSelfAppend(pass *lintcore.Pass, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return sameSelector(lhs, call.Args[0])
}

// sameSelector compares two expressions structurally as selector chains.
func sameSelector(a, b ast.Expr) bool {
	return selectorString(a) != "" && selectorString(a) == selectorString(b)
}

func selectorString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := selectorString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// scanCall records shrink sites expressed as calls: the delete and clear
// builtins, and passing the field to (or invoking it on an object through)
// an eviction-style helper.
func scanCall(pass *lintcore.Pass, call *ast.CallExpr, shrunk map[fieldRef]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "delete" || id.Name == "clear") && len(call.Args) > 0 {
			if ref, _, ok := fieldOf(pass, call.Args[0]); ok {
				shrunk[ref] = true
			}
			return
		}
	}
	// field passed to an eviction-style helper by name.
	if fn := lintcore.CalleeFunc(pass.TypesInfo, call); fn != nil && shrinkCallee.MatchString(fn.Name()) {
		for _, arg := range call.Args {
			if ref, _, ok := fieldOf(pass, arg); ok {
				shrunk[ref] = true
			}
		}
		// A method like evictOldestLocked shrinks its receiver's
		// collections without naming them; credit every map/slice field of
		// the receiver type.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if owner := lintcore.NamedOrNil(sig.Recv().Type()); owner != nil && owner.Obj().Pkg() != nil {
				if st, ok := owner.Underlying().(*types.Struct); ok {
					typ := owner.Obj().Pkg().Path() + "." + owner.Obj().Name()
					for i := 0; i < st.NumFields(); i++ {
						switch st.Field(i).Type().Underlying().(type) {
						case *types.Map, *types.Slice:
							shrunk[fieldRef{typ: typ, field: st.Field(i).Name()}] = true
						}
					}
				}
			}
		}
	}
}

// lenBoundCheck matches `len(x.f) <op> bound` (either side), the inline
// capping idiom: the function that grows the field also checks its size.
func lenBoundCheck(pass *lintcore.Pass, be *ast.BinaryExpr) (fieldRef, bool) {
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return fieldRef{}, false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		call, ok := ast.Unparen(side).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "len" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if ref, _, ok := fieldOf(pass, call.Args[0]); ok {
			return ref, true
		}
	}
	return fieldRef{}, false
}
