package unboundedgrowth_test

import (
	"testing"

	"replidtn/internal/analysis/linttest"
	"replidtn/internal/analysis/unboundedgrowth"
)

// TestGolden checks the analyzer against the fixture packages: map and
// slice fields grown in their type's methods with no shrink site anywhere
// in the package are flagged — including growth behind a nil-guarded lazy
// make, the prophet partner-cache bug — while delete/clear sites, wholesale
// reassignment, same-function len() bounds, eviction-named callees and
// receiver methods, non-owning mutators, out-of-scope packages, and the
// justified //lint:allow all stay quiet.
func TestGolden(t *testing.T) {
	linttest.Run(t, unboundedgrowth.Analyzer)
}
