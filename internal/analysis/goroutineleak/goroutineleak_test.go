package goroutineleak_test

import (
	"testing"

	"replidtn/internal/analysis/goroutineleak"
	"replidtn/internal/analysis/linttest"
)

// TestGolden checks the analyzer against the fixture packages: goroutines
// running inescapable loops are flagged whether spawned as literals, named
// methods, call-graph wrappers, or imported functions known only through
// facts — the select-swallowed unlabeled break (the PR 5 discoverer-restart
// bug) included — while done-channel returns, labeled breaks, channel
// ranges, panics, and terminating callees stay quiet and the justified
// //lint:allow suppresses a deliberate daemon.
func TestGolden(t *testing.T) {
	linttest.Run(t, goroutineleak.Analyzer)
}
