// Package goroutineleak implements the dtnlint analyzer that flags `go`
// statements spawning goroutines with no reachable termination path.
//
// The motivating bug class is PR 5's discoverer restart: a background loop
// whose only exit was an unlabeled break inside a select — which exits the
// select, not the for — so every Stop/Start cycle leaked a goroutine (and
// its socket). The repo's lifecycle rule is that every spawned loop must
// terminate via a done channel, context, or Close-driven error path; this
// analyzer mechanizes the detectable core of that rule: an infinite `for`
// loop (no condition) that contains no return, no break that actually
// targets the loop, and no panic/os.Exit/runtime.Goexit/log.Fatal can never
// finish, so a goroutine running one can never be collected.
//
// The property propagates through calls: a function whose body reaches an
// inescapable loop — directly or by calling another such function — "may
// run forever", exported as a lintcore fact so `go pkg.Worker()` across a
// package boundary is caught too. Loops with conditions and range loops are
// assumed terminating (range over a channel ends when the sender closes
// it — the lifecycle idiom this analyzer is steering code toward).
package goroutineleak

import (
	"go/ast"
	"go/types"

	"replidtn/internal/analysis/lintcore"
)

// Analyzer is the goroutine-termination invariant checker.
var Analyzer = &lintcore.Analyzer{
	Name: "goroutineleak",
	Doc:  "flag go statements whose goroutine has no reachable termination path (inescapable infinite loop)",
	Run:  run,
}

const factForever = "mayrunforever"

func run(pass *lintcore.Pass) error {
	// Pass 1: classify every declared function — does its body contain an
	// inescapable infinite loop, and which functions does it call?
	type fnNode struct {
		decl    *ast.FuncDecl
		forever bool
		calls   []string // FuncKeys of statically resolved callees
	}
	nodes := make(map[string]*fnNode)
	order := []string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := lintcore.FuncKey(fn)
			node := &fnNode{decl: fd, forever: hasInescapableLoop(pass, fd.Body)}
			node.calls = directCalls(pass, fd.Body)
			nodes[key] = node
			order = append(order, key)
		}
	}

	// Fixpoint: calling a may-run-forever function (locally classified or
	// known via a dependency fact) makes the caller may-run-forever.
	foreverByFact := func(key string) bool {
		return len(pass.DepFactsOfKind(key, factForever)) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, key := range order {
			node := nodes[key]
			if node.forever {
				continue
			}
			for _, callee := range node.calls {
				if local, ok := nodes[callee]; ok && local.forever || !ok && foreverByFact(callee) {
					node.forever = true
					changed = true
					break
				}
			}
		}
	}

	// Pass 2: check every `go` statement.
	mayRunForever := func(key string) bool {
		if node, ok := nodes[key]; ok {
			return node.forever
		}
		return foreverByFact(key)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				if hasInescapableLoop(pass, fun.Body) {
					pass.Reportf(gs.Pos(), "goroutine runs an infinite loop with no return, loop-targeting break, or terminating call; it can never exit (add a done/ctx/Close-driven exit path)")
					return true
				}
				for _, callee := range directCalls(pass, fun.Body) {
					if mayRunForever(callee) {
						pass.Reportf(gs.Pos(), "goroutine calls %s, which may run forever (inescapable infinite loop); it can never exit (add a done/ctx/Close-driven exit path)", callee)
						return true
					}
				}
			default:
				if fn := lintcore.CalleeFunc(pass.TypesInfo, gs.Call); fn != nil {
					key := lintcore.FuncKey(fn)
					if mayRunForever(key) {
						pass.Reportf(gs.Pos(), "goroutine calls %s, which may run forever (inescapable infinite loop); it can never exit (add a done/ctx/Close-driven exit path)", key)
					}
				}
			}
			return true
		})
	}

	// Export classifications for importing packages' go statements.
	for _, key := range order {
		if nodes[key].forever {
			pass.ExportFact(key, factForever, "")
		}
	}
	return nil
}

// directCalls collects the FuncKeys of statically resolved calls anywhere
// in body, including inside nested function literals (a literal that calls
// a forever-function and is invoked synchronously keeps its enclosing
// function alive; treating it as a call is the conservative choice that
// still lets `go e.run()` wrappers be caught).
func directCalls(pass *lintcore.Pass, body *ast.BlockStmt) []string {
	var calls []string
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			// A spawned goroutine does not keep its spawner running; the
			// nested go statement is checked on its own.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintcore.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		key := lintcore.FuncKey(fn)
		if !seen[key] {
			seen[key] = true
			calls = append(calls, key)
		}
		return true
	})
	return calls
}

// hasInescapableLoop reports whether body contains a `for` loop with no
// condition and no statement that can exit it. Nested function literals are
// separate execution contexts and are skipped.
func hasInescapableLoop(pass *lintcore.Pass, body *ast.BlockStmt) bool {
	// Resolve each loop's label first, so a labeled for is judged once with
	// its label in scope (not a second time as an unlabeled loop).
	labels := make(map[*ast.ForStmt]string)
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			if fs, ok := ls.Stmt.(*ast.ForStmt); ok {
				labels[fs] = ls.Label.Name
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopCanExit(pass, n, labels[n]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopCanExit reports whether the infinite loop has any exit: a return, a
// break that targets it (unlabeled breaks bind to the innermost for/range/
// switch/select — the PR 5 bug was an unlabeled break inside a select that
// only exited the select), a goto to a label outside the loop (assumed
// exiting), or a call that never returns (panic, os.Exit, runtime.Goexit,
// log.Fatal*, testing's t.Fatal*).
func loopCanExit(pass *lintcore.Pass, loop *ast.ForStmt, label string) bool {
	return stmtsExit(pass, loop.Body.List, label, true)
}

// stmtsExit walks statements inside the loop. breakBinds tracks whether an
// unlabeled break at this nesting level still targets the loop under test.
func stmtsExit(pass *lintcore.Pass, list []ast.Stmt, label string, breakBinds bool) bool {
	for _, s := range list {
		if stmtExits(pass, s, label, breakBinds) {
			return true
		}
	}
	return false
}

func stmtExits(pass *lintcore.Pass, stmt ast.Stmt, label string, breakBinds bool) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if s.Label != nil {
				return label != "" && s.Label.Name == label
			}
			return breakBinds
		case "goto":
			// A goto out of the loop exits it; resolving label scopes is
			// not worth the complexity, so any goto is assumed to escape.
			return true
		}
		return false
	case *ast.ExprStmt:
		return callNeverReturns(pass, s.X)
	case *ast.BlockStmt:
		return stmtsExit(pass, s.List, label, breakBinds)
	case *ast.IfStmt:
		if stmtExits(pass, s.Body, label, breakBinds) {
			return true
		}
		return s.Else != nil && stmtExits(pass, s.Else, label, breakBinds)
	case *ast.ForStmt:
		// An inner loop swallows unlabeled breaks.
		return stmtsExit(pass, s.Body.List, label, false)
	case *ast.RangeStmt:
		return stmtsExit(pass, s.Body.List, label, false)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsExit(pass, cc.Body, label, false) {
				return true
			}
		}
		return false
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsExit(pass, cc.Body, label, false) {
				return true
			}
		}
		return false
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && stmtsExit(pass, cc.Body, label, false) {
				return true
			}
		}
		return false
	case *ast.LabeledStmt:
		return stmtExits(pass, s.Stmt, label, breakBinds)
	}
	return false
}

// callNeverReturns recognizes calls that terminate the goroutine outright.
func callNeverReturns(pass *lintcore.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := lintcore.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln" ||
			fn.Name() == "Panic" || fn.Name() == "Panicf" || fn.Name() == "Panicln"
	case "testing":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "FailNow" ||
			fn.Name() == "Skip" || fn.Name() == "Skipf" || fn.Name() == "SkipNow"
	}
	return false
}
