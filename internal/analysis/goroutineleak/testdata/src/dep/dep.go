// Package dep is the dependency half of the goroutineleak cross-package
// fixture: Forever's classification travels to importers as a
// "mayrunforever" fact. No go statement lives here, so this package itself
// reports nothing.
package dep

// Forever spins with no exit path.
func Forever() {
	n := 0
	for {
		n++
	}
}

// Bounded returns once its work is done.
func Bounded(limit int) int {
	n := 0
	for i := 0; i < limit; i++ {
		n += i
	}
	return n
}
