// Package leak is the goroutineleak fixture: go statements spawning
// inescapable loops — including the PR 5 bug class, an unlabeled break
// inside a select that exits the select rather than the loop — against the
// done-channel and labeled-break idioms that terminate cleanly.
package leak

import "fixtures/dep"

// Worker couples a work channel with a done channel.
type Worker struct {
	ch   chan int
	done chan struct{}
}

// run drains ch forever: no return, no loop-targeting break.
func (w *Worker) run() {
	for {
		<-w.ch
	}
}

// spin only calls run; the may-run-forever property propagates through the
// local call graph.
func (w *Worker) spin() {
	w.run()
}

// Start spawns the obvious leak: an anonymous loop with no exit.
func (w *Worker) Start() {
	go func() { // want `infinite loop with no return`
		for {
			<-w.ch
		}
	}()
}

// StartSelectBreak is the PR 5 discoverer-restart bug verbatim: the
// unlabeled break exits the select, not the for, so the goroutine can never
// finish and every restart leaks one.
func (w *Worker) StartSelectBreak() {
	go func() { // want `infinite loop with no return`
		for {
			select {
			case <-w.done:
				break
			case v := <-w.ch:
				_ = v
			}
		}
	}()
}

// StartMethod spawns a named method classified as may-run-forever.
func (w *Worker) StartMethod() {
	go w.run() // want `may run forever`
}

// StartWrapped reaches the inescapable loop through one call hop.
func (w *Worker) StartWrapped() {
	go w.spin() // want `may run forever`
}

// StartImported spawns a dependency function whose classification arrives
// as a lintcore fact.
func StartImported() {
	go dep.Forever() // want `may run forever`
}

// StartDone is the sanctioned daemon shape: the done channel gives the loop
// a return path.
func (w *Worker) StartDone() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			case v := <-w.ch:
				_ = v
			}
		}
	}()
}

// StartLabeled exits via a labeled break that really targets the loop.
func (w *Worker) StartLabeled() {
	go func() {
	drain:
		for {
			select {
			case <-w.done:
				break drain
			case v := <-w.ch:
				_ = v
			}
		}
	}()
}

// StartRange ranges the channel: the loop ends when the sender closes it.
func (w *Worker) StartRange() {
	go func() {
		for v := range w.ch {
			_ = v
		}
	}()
}

// StartPanics can terminate through panic, so the loop is escapable.
func (w *Worker) StartPanics() {
	go func() {
		for {
			if v := <-w.ch; v < 0 {
				panic("negative work item")
			}
		}
	}()
}

// StartBounded spawns a terminating dependency call.
func StartBounded() {
	go dep.Bounded(10)
}

// StartAllowed is the justified escape hatch: a process-lifetime daemon
// that is deliberately never collected.
func (w *Worker) StartAllowed() {
	go w.run() //lint:allow goroutineleak -- fixture: process-lifetime daemon by design; the process exit collects it
}
