// Package twohop implements the classic two-hop relay scheme (Grossglauser &
// Tse): the source hands copies of its own messages to any node it meets,
// but relays never forward further — a message travels source → relay →
// destination at most. Two-hop relaying is the canonical minimal-overhead
// baseline between direct delivery (the basic substrate) and full epidemic
// flooding, and slots into the same policy interface as the paper's four
// protocols.
package twohop

import (
	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// Policy is the two-hop relay policy. The zero value is ready to use.
type Policy struct{}

// New returns a two-hop relay policy.
func New() *Policy { return &Policy{} }

// Name implements routing.Policy.
func (*Policy) Name() string { return "twohop" }

// GenerateReq implements routing.Policy; two-hop relaying needs no routing
// state.
func (*Policy) GenerateReq() routing.Request { return nil }

// ProcessReq implements routing.Policy.
func (*Policy) ProcessReq(vclock.ReplicaID, routing.Request) {}

// ToSend implements routing.Policy: only locally created messages are handed
// to relays; everything a node merely carries waits for the destination
// (which the substrate serves via the filter class).
func (*Policy) ToSend(e *store.Entry, _ routing.Target) (routing.Priority, item.Transient) {
	if !e.Local {
		return routing.Skip, nil
	}
	return routing.Priority{Class: routing.ClassNormal}, nil
}
