package twohop

import (
	"fmt"
	"math/rand"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/vclock"
)

func node(id, addr string) *replica.Replica {
	return replica.New(replica.Config{
		ID:           vclock.ReplicaID(id),
		OwnAddresses: []string{addr},
		Policy:       New(),
	})
}

func sendMsg(r *replica.Replica, from, to string) *item.Item {
	return r.CreateItem(item.Metadata{
		Source: from, Destinations: []string{to}, Kind: "message",
	}, nil)
}

func TestSourceHandsToRelay(t *testing.T) {
	src := node("src", "addr:src")
	rel := node("rel", "addr:rel")
	msg := sendMsg(src, "addr:src", "addr:dst")
	res := replica.Sync(src, rel, 0)
	if res.Apply.Relayed != 1 {
		t.Fatalf("relay should receive the source's message: %+v", res)
	}
	if !rel.HasItem(msg.ID) {
		t.Error("relay missing message")
	}
}

func TestRelayNeverForwardsToThirdParty(t *testing.T) {
	src := node("src", "addr:src")
	rel := node("rel", "addr:rel")
	third := node("third", "addr:third")
	msg := sendMsg(src, "addr:src", "addr:dst")
	replica.Sync(src, rel, 0)
	res := replica.Sync(rel, third, 0)
	if res.Sent != 0 {
		t.Errorf("relay forwarded %d items to a third party", res.Sent)
	}
	if third.HasItem(msg.ID) {
		t.Error("message traveled more than two hops")
	}
}

func TestRelayDeliversToDestination(t *testing.T) {
	src := node("src", "addr:src")
	rel := node("rel", "addr:rel")
	dst := node("dst", "addr:dst")
	sendMsg(src, "addr:src", "addr:dst")
	replica.Sync(src, rel, 0)
	res := replica.Sync(rel, dst, 0)
	if res.Apply.Delivered != 1 {
		t.Errorf("relay must deliver via filter match: %+v", res)
	}
}

func TestNoopHooks(t *testing.T) {
	p := New()
	if p.Name() != "twohop" {
		t.Error("wrong name")
	}
	if p.GenerateReq() != nil {
		t.Error("two-hop should piggyback nothing")
	}
	p.ProcessReq("x", nil)
}

// TestPropHopBound checks under random gossip that no copy ever travels more
// than two hops: every holder's copy has hops <= 2, and only the destination
// or direct relays of the source hold copies.
func TestPropHopBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		nodes := make([]*replica.Replica, n)
		for i := range nodes {
			nodes[i] = node(fmt.Sprintf("n%d", i), fmt.Sprintf("addr:%d", i))
		}
		msg := sendMsg(nodes[0], "addr:0", fmt.Sprintf("addr:%d", n-1))
		for k := 0; k < 60; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				replica.Encounter(nodes[i], nodes[j], 0)
			}
		}
		for i, nd := range nodes {
			e := nd.Entry(msg.ID)
			if e == nil {
				continue
			}
			if hops := e.Transient.GetInt(item.FieldHops); hops > 2 {
				t.Fatalf("seed %d: node %d holds a %d-hop copy", seed, i, hops)
			}
		}
	}
}
