package maxprop

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"replidtn/internal/vclock"
)

// stateDoc is the serializable form of the policy's durable routing state:
// the raw meeting weights, the learned probability table, and the
// address-home beliefs.
type stateDoc struct {
	Weights map[vclock.ReplicaID]float64
	Table   map[vclock.ReplicaID]Row
	Homes   map[string]Home
}

// SnapshotState implements routing.Persistent.
func (p *Policy) SnapshotState() ([]byte, error) {
	doc := stateDoc{
		Weights: make(map[vclock.ReplicaID]float64, len(p.weights)),
		Table:   make(map[vclock.ReplicaID]Row, len(p.table)),
		Homes:   make(map[string]Home, len(p.homes)),
	}
	for id, w := range p.weights {
		doc.Weights[id] = w
	}
	for id, row := range p.table {
		cp := make(map[vclock.ReplicaID]float64, len(row.Probabilities))
		for k, v := range row.Probabilities {
			cp[k] = v
		}
		doc.Table[id] = Row{Probabilities: cp, Updated: row.Updated}
	}
	for a, h := range p.homes {
		doc.Homes[a] = h
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(doc); err != nil {
		return nil, fmt.Errorf("maxprop: snapshot state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements routing.Persistent.
func (p *Policy) RestoreState(data []byte) error {
	var doc stateDoc
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&doc); err != nil {
		return fmt.Errorf("maxprop: restore state: %w", err)
	}
	p.weights = doc.Weights
	if p.weights == nil {
		p.weights = make(map[vclock.ReplicaID]float64)
	}
	p.table = doc.Table
	if p.table == nil {
		p.table = make(map[vclock.ReplicaID]Row)
	}
	p.homes = doc.Homes
	if p.homes == nil {
		p.homes = make(map[string]Home)
	}
	return nil
}
