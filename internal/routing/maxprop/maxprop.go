// Package maxprop implements MaxProp (Burgess et al., INFOCOM 2006) as a
// replication routing policy.
//
// Each node maintains a probability distribution over which node it will
// encounter next, built from incremental meeting counts. Nodes exchange these
// distributions (their own row, plus the freshest rows they have learned for
// other nodes) during encounters. For every message a node might forward, it
// scores the lowest-cost path to the message's destination with a modified
// Dijkstra search where the cost of traversing the link (x, y) is the
// probability that the encounter does not occur, 1 − f_x(y); the path score
// is the sum of those costs.
//
// Transmission order during an encounter follows the protocol: messages
// addressed to the neighbor first (the substrate's filter class covers this),
// then messages whose copies have traversed fewer hops than a threshold,
// ordered by hop count, and finally the remaining messages ordered by
// ascending path cost. MaxProp's hoplist duplicate suppression and flooded
// delivery acknowledgements are unnecessary on this substrate: knowledge
// provides exact at-most-once transfer, and deletion tombstones clear
// forwarder buffers.
package maxprop

import (
	"container/heap"
	"math"

	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// DefaultHopThreshold is the paper's Table II priority threshold: copies with
// fewer traversed hops are "new" and jump the path-cost queue.
const DefaultHopThreshold = 3

// Row is one node's next-encounter probability distribution together with the
// time it was produced, used for freshest-wins merging.
type Row struct {
	Probabilities map[vclock.ReplicaID]float64
	Updated       int64
}

// Home records where an endpoint address was last known to be homed.
type Home struct {
	Node    vclock.ReplicaID
	Updated int64
}

// Request is the routing state piggybacked on sync requests: the requester's
// identity and homed addresses, its meeting-probability table (its own row
// plus learned rows), and its address-home beliefs.
type Request struct {
	From         vclock.ReplicaID
	OwnAddresses []string
	Table        map[vclock.ReplicaID]Row
	Homes        map[string]Home
}

// Policy is the MaxProp policy attached to one replica.
type Policy struct {
	self         vclock.ReplicaID
	hopThreshold int
	now          func() int64
	ownAddresses []string

	// weights are this node's raw meeting counts; the probability row is
	// weights normalized to sum to 1.
	weights map[vclock.ReplicaID]float64
	// table holds the freshest known probability row per node (including our
	// own, refreshed on demand).
	table map[vclock.ReplicaID]Row
	// homes maps endpoint address → freshest known homing node.
	homes map[string]Home
}

// New creates a MaxProp policy for the given replica. hopThreshold <= 0
// selects DefaultHopThreshold; now supplies seconds (simulation or wall
// clock); ownAddresses are the endpoint addresses homed on this node.
func New(self vclock.ReplicaID, hopThreshold int, now func() int64, ownAddresses ...string) *Policy {
	if hopThreshold <= 0 {
		hopThreshold = DefaultHopThreshold
	}
	return &Policy{
		self:         self,
		hopThreshold: hopThreshold,
		now:          now,
		ownAddresses: append([]string(nil), ownAddresses...),
		weights:      make(map[vclock.ReplicaID]float64),
		table:        make(map[vclock.ReplicaID]Row),
		homes:        make(map[string]Home),
	}
}

// Name implements routing.Policy.
func (*Policy) Name() string { return "maxprop" }

// SetOwnAddresses updates the endpoint addresses homed on this node.
func (p *Policy) SetOwnAddresses(addrs ...string) {
	p.ownAddresses = append(p.ownAddresses[:0], addrs...)
}

// OwnRow returns this node's normalized next-encounter distribution.
func (p *Policy) OwnRow() map[vclock.ReplicaID]float64 {
	total := 0.0
	for _, w := range p.weights {
		total += w
	}
	out := make(map[vclock.ReplicaID]float64, len(p.weights))
	if total == 0 {
		return out
	}
	for id, w := range p.weights {
		out[id] = w / total
	}
	return out
}

// GenerateReq implements routing.Policy: ship identity, homed addresses, the
// full freshest-rows table, and address homes.
func (p *Policy) GenerateReq() routing.Request {
	p.refreshOwn()
	table := make(map[vclock.ReplicaID]Row, len(p.table))
	for id, row := range p.table {
		cp := make(map[vclock.ReplicaID]float64, len(row.Probabilities))
		for k, v := range row.Probabilities {
			cp[k] = v
		}
		table[id] = Row{Probabilities: cp, Updated: row.Updated}
	}
	homes := make(map[string]Home, len(p.homes)+len(p.ownAddresses))
	for a, h := range p.homes {
		homes[a] = h
	}
	now := p.now()
	for _, a := range p.ownAddresses {
		homes[a] = Home{Node: p.self, Updated: now}
	}
	return &Request{
		From:         p.self,
		OwnAddresses: append([]string(nil), p.ownAddresses...),
		Table:        table,
		Homes:        homes,
	}
}

// ProcessReq implements routing.Policy: count the encounter (incrementing the
// partner's meeting weight and re-normalizing, per the protocol), then merge
// the partner's table rows and address homes freshest-first. Fires once per
// encounter per node because each encounter syncs once in each direction.
func (p *Policy) ProcessReq(from vclock.ReplicaID, req routing.Request) {
	r, ok := req.(*Request)
	if !ok || r == nil {
		return
	}
	p.weights[from]++
	p.refreshOwn()
	for id, row := range r.Table {
		if id == p.self {
			continue // nobody else's view of us beats our own
		}
		cur, exists := p.table[id]
		if !exists || row.Updated > cur.Updated {
			cp := make(map[vclock.ReplicaID]float64, len(row.Probabilities))
			for k, v := range row.Probabilities {
				cp[k] = v
			}
			p.table[id] = Row{Probabilities: cp, Updated: row.Updated}
		}
	}
	for addr, h := range r.Homes {
		if cur, exists := p.homes[addr]; !exists || h.Updated > cur.Updated {
			p.homes[addr] = h
		}
	}
	now := p.now()
	for _, addr := range r.OwnAddresses {
		p.homes[addr] = Home{Node: from, Updated: now}
	}
}

// refreshOwn rewrites our own row in the table from current weights.
func (p *Policy) refreshOwn() {
	p.table[p.self] = Row{Probabilities: p.OwnRow(), Updated: p.now()}
}

// ToSend implements routing.Policy: MaxProp floods — every item is eligible —
// but the priority encodes the protocol's transmission order. Copies under
// the hop threshold form a high class ordered by hop count; the rest are
// ordered by ascending lowest path cost to the destination.
func (p *Policy) ToSend(e *store.Entry, _ routing.Target) (routing.Priority, item.Transient) {
	hops := e.Transient.GetInt(item.FieldHops)
	if hops < p.hopThreshold {
		return routing.Priority{Class: routing.ClassHigh, Cost: float64(hops)}, nil
	}
	cost := math.Inf(1)
	for _, dest := range e.Item.Meta.Destinations {
		if c := p.PathCost(dest); c < cost {
			cost = c
		}
	}
	return routing.Priority{Class: routing.ClassNormal, Cost: cost}, nil
}

// PathCost returns the lowest-cost path score from this node to the node
// currently homing the destination address: the modified Dijkstra search with
// edge cost 1 − f_x(y). It returns +Inf when the destination's home is
// unknown or unreachable through the learned table.
func (p *Policy) PathCost(destAddr string) float64 {
	home, ok := p.homes[destAddr]
	if !ok {
		return math.Inf(1)
	}
	if home.Node == p.self {
		return 0
	}
	p.refreshOwn()
	return dijkstra(p.table, p.self, home.Node)
}

// dijkstra computes the minimum sum of (1 − f_x(y)) over paths from src to
// dst in the learned probability table.
func dijkstra(table map[vclock.ReplicaID]Row, src, dst vclock.ReplicaID) float64 {
	dist := map[vclock.ReplicaID]float64{src: 0}
	pq := &costHeap{{node: src, cost: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(costEntry)
		if cur.node == dst {
			return cur.cost
		}
		if cur.cost > dist[cur.node] {
			continue
		}
		row, ok := table[cur.node]
		if !ok {
			continue
		}
		for next, prob := range row.Probabilities {
			if prob <= 0 {
				continue
			}
			nc := cur.cost + (1 - prob)
			if d, seen := dist[next]; !seen || nc < d {
				dist[next] = nc
				heap.Push(pq, costEntry{node: next, cost: nc})
			}
		}
	}
	return math.Inf(1)
}

type costEntry struct {
	node vclock.ReplicaID
	cost float64
}

type costHeap []costEntry

func (h costHeap) Len() int           { return len(h) }
func (h costHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x any)        { *h = append(*h, x.(costEntry)) }
func (h *costHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
