package maxprop

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

type simClock struct{ t int64 }

func (c *simClock) now() int64 { c.t++; return c.t }

func rid(s string) vclock.ReplicaID { return vclock.ReplicaID(s) }

func reqFrom(p *Policy) *Request { return p.GenerateReq().(*Request) }

func TestNewDefaults(t *testing.T) {
	clk := &simClock{}
	p := New("a", 0, clk.now)
	if p.hopThreshold != DefaultHopThreshold {
		t.Error("threshold <= 0 should select the default")
	}
	if p.Name() != "maxprop" {
		t.Error("wrong name")
	}
}

func TestOwnRowNormalized(t *testing.T) {
	clk := &simClock{}
	a := New("a", 3, clk.now)
	b := New("b", 3, clk.now, "addr:b")
	c := New("c", 3, clk.now, "addr:c")
	a.ProcessReq("b", reqFrom(b))
	a.ProcessReq("b", reqFrom(b))
	a.ProcessReq("c", reqFrom(c))
	row := a.OwnRow()
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("row sums to %v, want 1", sum)
	}
	if math.Abs(row["b"]-2.0/3) > 1e-12 || math.Abs(row["c"]-1.0/3) > 1e-12 {
		t.Errorf("row = %v, want b=2/3 c=1/3", row)
	}
}

func TestEmptyOwnRow(t *testing.T) {
	clk := &simClock{}
	if len(New("a", 3, clk.now).OwnRow()) != 0 {
		t.Error("fresh node should have an empty distribution")
	}
}

func TestHomesLearnedDirectAndTransitive(t *testing.T) {
	clk := &simClock{}
	a := New("a", 3, clk.now)
	b := New("b", 3, clk.now, "addr:b")
	c := New("c", 3, clk.now, "addr:c")
	b.ProcessReq("c", reqFrom(c)) // b learns addr:c → c
	a.ProcessReq("b", reqFrom(b)) // a learns addr:b → b directly, addr:c → c transitively
	if h := a.homes["addr:b"]; h.Node != "b" {
		t.Errorf("addr:b homed at %s, want b", h.Node)
	}
	if h := a.homes["addr:c"]; h.Node != "c" {
		t.Errorf("addr:c homed at %s, want c", h.Node)
	}
}

func TestFreshestHomeWins(t *testing.T) {
	clk := &simClock{}
	a := New("a", 3, clk.now)
	b := New("b", 3, clk.now, "user:1")
	a.ProcessReq("b", reqFrom(b))
	// user:1 moves to node c; a hears from c later.
	b.SetOwnAddresses()
	c := New("c", 3, clk.now, "user:1")
	a.ProcessReq("c", reqFrom(c))
	if h := a.homes["user:1"]; h.Node != "c" {
		t.Errorf("user:1 homed at %s, want c (freshest)", h.Node)
	}
}

func TestDijkstraDirectAndTwoHop(t *testing.T) {
	table := map[vclock.ReplicaID]Row{
		"a": {Probabilities: map[vclock.ReplicaID]float64{"b": 0.5, "c": 0.1}},
		"b": {Probabilities: map[vclock.ReplicaID]float64{"c": 0.9}},
	}
	// Direct a→c: 0.9; via b: 0.5 + 0.1 = 0.6.
	got := dijkstra(table, "a", "c")
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("dijkstra = %v, want 0.6 (two-hop path)", got)
	}
	if got := dijkstra(table, "a", "zzz"); !math.IsInf(got, 1) {
		t.Errorf("unreachable node should cost +Inf, got %v", got)
	}
	if got := dijkstra(table, "a", "a"); got != 0 {
		t.Errorf("self path should cost 0, got %v", got)
	}
}

func TestPathCostUnknownHome(t *testing.T) {
	clk := &simClock{}
	p := New("a", 3, clk.now)
	if got := p.PathCost("addr:unknown"); !math.IsInf(got, 1) {
		t.Errorf("unknown home should cost +Inf, got %v", got)
	}
}

func TestPathCostOwnAddress(t *testing.T) {
	clk := &simClock{}
	p := New("a", 3, clk.now, "addr:a")
	p.ProcessReq("b", reqFrom(New("b", 3, clk.now, "addr:b")))
	req := reqFrom(p)
	if req.Homes["addr:a"].Node != "a" {
		t.Fatal("own address should be homed locally in requests")
	}
	p.homes["addr:a"] = Home{Node: "a", Updated: clk.now()}
	if got := p.PathCost("addr:a"); got != 0 {
		t.Errorf("own address should cost 0, got %v", got)
	}
}

func entryWith(hops int, dest string) *store.Entry {
	e := &store.Entry{Item: &item.Item{
		ID:   item.ID{Creator: "a", Num: 1},
		Meta: item.Metadata{Destinations: []string{dest}},
	}}
	e.Transient = e.Transient.Set(item.FieldHops, float64(hops))
	return e
}

func TestToSendHopThresholdClass(t *testing.T) {
	clk := &simClock{}
	p := New("a", 3, clk.now)
	fresh, _ := p.ToSend(entryWith(1, "addr:x"), routing.Target{ID: "b"})
	old, _ := p.ToSend(entryWith(5, "addr:x"), routing.Target{ID: "b"})
	if fresh.Class != routing.ClassHigh {
		t.Errorf("low-hop copy should be ClassHigh, got %v", fresh.Class)
	}
	if old.Class != routing.ClassNormal {
		t.Errorf("high-hop copy should be ClassNormal, got %v", old.Class)
	}
	if !fresh.Before(old) {
		t.Error("low-hop copies must transmit before path-cost copies")
	}
	fresher, _ := p.ToSend(entryWith(0, "addr:x"), routing.Target{ID: "b"})
	if !fresher.Before(fresh) {
		t.Error("within the hop class, fewer hops transmit first")
	}
}

func TestToSendNeverSkips(t *testing.T) {
	// MaxProp floods: even unknown destinations are eligible, just last.
	clk := &simClock{}
	p := New("a", 3, clk.now)
	pr, _ := p.ToSend(entryWith(9, "addr:unknown"), routing.Target{ID: "b"})
	if pr.Class == routing.ClassSkip {
		t.Error("MaxProp must not skip items")
	}
	if !math.IsInf(pr.Cost, 1) {
		t.Errorf("unknown destination should sort last, cost %v", pr.Cost)
	}
}

func TestToSendOrdersByPathCost(t *testing.T) {
	clk := &simClock{}
	a := New("a", 1, clk.now)
	near := New("near", 1, clk.now, "addr:near")
	far := New("far", 1, clk.now, "addr:far")
	mid := New("mid", 1, clk.now, "addr:mid")
	// a meets near often, mid once; mid meets far.
	mid.ProcessReq("far", reqFrom(far))
	for i := 0; i < 5; i++ {
		a.ProcessReq("near", reqFrom(near))
	}
	a.ProcessReq("mid", reqFrom(mid))
	pNear, _ := a.ToSend(entryWith(2, "addr:near"), routing.Target{ID: "x"})
	pFar, _ := a.ToSend(entryWith(2, "addr:far"), routing.Target{ID: "x"})
	if !pNear.Before(pFar) {
		t.Errorf("likelier destination should transmit first: %v vs %v", pNear.Cost, pFar.Cost)
	}
}

func TestIgnoresForeignRequestTypes(t *testing.T) {
	clk := &simClock{}
	p := New("a", 3, clk.now)
	p.ProcessReq("x", 42)
	p.ProcessReq("x", nil)
	if len(p.OwnRow()) != 0 {
		t.Error("foreign requests must not count as encounters")
	}
}

// TestPropDistributionsAlwaysNormalized checks that after arbitrary encounter
// sequences every learned row sums to 1 (or is empty).
func TestPropDistributionsAlwaysNormalized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := &simClock{}
		const n = 5
		ps := make([]*Policy, n)
		for i := range ps {
			id := rid(fmt.Sprintf("n%d", i))
			ps[i] = New(id, 3, clk.now, fmt.Sprintf("addr:%d", i))
		}
		for k := 0; k < 60; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			ps[i].ProcessReq(ps[j].self, reqFrom(ps[j]))
			ps[j].ProcessReq(ps[i].self, reqFrom(ps[i]))
		}
		for _, p := range ps {
			for _, row := range p.table {
				if len(row.Probabilities) == 0 {
					continue
				}
				sum := 0.0
				for _, v := range row.Probabilities {
					if v < 0 || v > 1 {
						return false
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
