package maxprop

import (
	"math"
	"reflect"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	clk := &simClock{}
	a := New("a", 3, clk.now, "addr:a")
	b := New("b", 3, clk.now, "addr:b")
	c := New("c", 3, clk.now, "addr:c")
	b.ProcessReq("c", reqFrom(c))
	a.ProcessReq("b", reqFrom(b))
	a.ProcessReq("b", reqFrom(b))
	data, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := New("a", 3, clk.now, "addr:a")
	if err := restored.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.OwnRow(), restored.OwnRow()) {
		t.Errorf("row mismatch: %v vs %v", a.OwnRow(), restored.OwnRow())
	}
	if !reflect.DeepEqual(a.homes, restored.homes) {
		t.Errorf("homes mismatch: %v vs %v", a.homes, restored.homes)
	}
	// Path costs computed from restored state match the original.
	want := a.PathCost("addr:c")
	got := restored.PathCost("addr:c")
	if math.IsInf(want, 1) != math.IsInf(got, 1) ||
		(!math.IsInf(want, 1) && math.Abs(want-got) > 1e-12) {
		t.Errorf("path cost after restore = %v, want %v", got, want)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	clk := &simClock{}
	p := New("a", 3, clk.now)
	if err := p.RestoreState([]byte{0x01, 0x02}); err == nil {
		t.Error("garbage state should fail to restore")
	}
}

func TestRestoreEmptyState(t *testing.T) {
	clk := &simClock{}
	a := New("a", 3, clk.now)
	data, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := New("a", 3, clk.now)
	if err := restored.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	if len(restored.OwnRow()) != 0 || len(restored.homes) != 0 {
		t.Error("empty snapshot should restore to empty state")
	}
	// Maps must be usable (non-nil) after restoring an empty snapshot.
	restored.ProcessReq("b", reqFrom(New("b", 3, clk.now, "addr:b")))
	if len(restored.OwnRow()) != 1 {
		t.Error("restored policy unusable after empty snapshot")
	}
}
