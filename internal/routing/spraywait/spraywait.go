// Package spraywait implements Spray and Wait (Spyropoulos et al., WDTN
// 2005) as a replication routing policy: binary spraying of a fixed copy
// allowance.
//
// Each message enters the network with a fixed number of logical copies. A
// node holding two or more copies transfers half of them to every node it
// synchronizes with (the "spray" phase, distributing copies along a binary
// tree rooted at the source); a node holding a single copy only delivers
// directly to the destination (the "wait" phase). The remaining-copies count
// is host-specific transient metadata: halving it on both sides never creates
// a new item version, so the adjusted item is not re-sent as an update — the
// paper's §V.C.2 mechanism.
package spraywait

import (
	"math"

	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// DefaultCopies is the paper's Table II per-message copy allowance.
const DefaultCopies = 8

// Policy is the Spray and Wait policy. Create one per replica with New.
type Policy struct {
	initialCopies int
}

// New returns a Spray and Wait policy with the given initial copy allowance;
// copies <= 0 selects DefaultCopies.
func New(copies int) *Policy {
	if copies <= 0 {
		copies = DefaultCopies
	}
	return &Policy{initialCopies: copies}
}

// Name implements routing.Policy.
func (*Policy) Name() string { return "spraywait" }

// GenerateReq implements routing.Policy; Spray and Wait piggybacks nothing —
// the substrate's knowledge replaces the protocol's message-ID handshake.
func (*Policy) GenerateReq() routing.Request { return nil }

// ProcessReq implements routing.Policy; Spray and Wait keeps no routing
// state.
func (*Policy) ProcessReq(vclock.ReplicaID, routing.Request) {}

// ToSend implements routing.Policy: forward an item only while this replica
// holds at least two copies, halving the allowance on both the transmitted
// and the locally stored copy.
func (p *Policy) ToSend(e *store.Entry, _ routing.Target) (routing.Priority, item.Transient) {
	if !e.Transient.Has(item.FieldCopies) {
		e.Transient = e.Transient.Set(item.FieldCopies, float64(p.initialCopies))
	}
	copies := e.Transient.GetInt(item.FieldCopies)
	if copies < 2 {
		return routing.Skip, nil
	}
	half := int(math.Floor(float64(copies) / 2))
	e.Transient.Set(item.FieldCopies, float64(copies-half))
	out := e.Transient.Clone()
	out = out.Set(item.FieldCopies, float64(half))
	return routing.Priority{Class: routing.ClassNormal}, out
}
