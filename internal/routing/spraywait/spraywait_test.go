package spraywait

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

func entryWithCopies(copies int, has bool) *store.Entry {
	e := &store.Entry{Item: &item.Item{
		ID:   item.ID{Creator: "a", Num: 1},
		Meta: item.Metadata{Destinations: []string{"addr:x"}},
	}}
	if has {
		e.Transient = e.Transient.Set(item.FieldCopies, float64(copies))
	}
	return e
}

func TestNewDefaults(t *testing.T) {
	if New(0).initialCopies != DefaultCopies {
		t.Error("copies <= 0 should select DefaultCopies")
	}
	if New(0).Name() != "spraywait" {
		t.Error("wrong name")
	}
}

func TestBinarySprayHalvesBothSides(t *testing.T) {
	p := New(8)
	e := entryWithCopies(8, true)
	pr, tr := p.ToSend(e, routing.Target{})
	if pr.Class != routing.ClassNormal {
		t.Fatal("item with 8 copies must spray")
	}
	if got := e.Transient.GetInt(item.FieldCopies); got != 4 {
		t.Errorf("stored copies = %d, want 4", got)
	}
	if got := tr.GetInt(item.FieldCopies); got != 4 {
		t.Errorf("transmitted copies = %d, want 4", got)
	}
}

func TestOddCopiesSplit(t *testing.T) {
	p := New(8)
	e := entryWithCopies(5, true)
	_, tr := p.ToSend(e, routing.Target{})
	if got := e.Transient.GetInt(item.FieldCopies); got != 3 {
		t.Errorf("stored copies = %d, want 3 (keeps ceil)", got)
	}
	if got := tr.GetInt(item.FieldCopies); got != 2 {
		t.Errorf("transmitted copies = %d, want 2 (sends floor)", got)
	}
}

func TestWaitPhaseHoldsLastCopy(t *testing.T) {
	p := New(8)
	e := entryWithCopies(1, true)
	if pr, _ := p.ToSend(e, routing.Target{}); pr.Class != routing.ClassSkip {
		t.Error("a single copy must wait for the destination")
	}
}

func TestStampsMissingAllowance(t *testing.T) {
	p := New(6)
	e := entryWithCopies(0, false)
	_, tr := p.ToSend(e, routing.Target{})
	if got := e.Transient.GetInt(item.FieldCopies); got != 3 {
		t.Errorf("stored copies = %d, want 3 after stamping 6 and spraying", got)
	}
	if got := tr.GetInt(item.FieldCopies); got != 3 {
		t.Errorf("transmitted copies = %d, want 3", got)
	}
}

func TestNoopHooks(t *testing.T) {
	p := New(0)
	if p.GenerateReq() != nil {
		t.Error("spray and wait should piggyback nothing")
	}
	p.ProcessReq("x", nil)
}

// TestPropTotalCopiesNeverExceedAllocation sprays a message through random
// gossip and checks the binary-tree invariant: the total copy allowance
// across the network never exceeds the initial allocation, and every node
// holding the item holds at least one copy.
func TestPropTotalCopiesNeverExceedAllocation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		const initial = 8
		nodes := make([]*replica.Replica, n)
		for i := range nodes {
			nodes[i] = replica.New(replica.Config{
				ID:           vclock.ReplicaID(fmt.Sprintf("n%d", i)),
				OwnAddresses: []string{fmt.Sprintf("addr:%d", i)},
				Policy:       New(initial),
			})
		}
		msg := nodes[0].CreateItem(item.Metadata{
			Source: "addr:0", Destinations: []string{"addr:none"}, Kind: "message",
		}, nil)
		for k := 0; k < 40; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				replica.Encounter(nodes[i], nodes[j], 0)
			}
		}
		total := 0
		for _, nd := range nodes {
			e := nd.Entry(msg.ID)
			if e == nil {
				continue
			}
			c := e.Transient.GetInt(item.FieldCopies)
			if c < 1 {
				return false
			}
			total += c
		}
		return total <= initial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSprayBoundsSpread(t *testing.T) {
	// With 4 initial copies the item can occupy at most 4 nodes, no matter
	// how much gossip happens.
	const n = 10
	nodes := make([]*replica.Replica, n)
	for i := range nodes {
		nodes[i] = replica.New(replica.Config{
			ID:           vclock.ReplicaID(fmt.Sprintf("n%d", i)),
			OwnAddresses: []string{fmt.Sprintf("addr:%d", i)},
			Policy:       New(4),
		})
	}
	msg := nodes[0].CreateItem(item.Metadata{
		Source: "addr:0", Destinations: []string{"addr:none"}, Kind: "message",
	}, nil)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			replica.Encounter(nodes[i], nodes[j], 0)
		}
	}
	holders := 0
	for _, nd := range nodes {
		if nd.HasItem(msg.ID) {
			holders++
		}
	}
	if holders > 4 {
		t.Errorf("%d holders exceed the 4-copy allocation", holders)
	}
	if holders < 2 {
		t.Errorf("spraying never happened (%d holders)", holders)
	}
}
