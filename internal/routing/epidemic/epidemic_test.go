package epidemic

import (
	"fmt"
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

func entryWithTTL(ttl int, has bool) *store.Entry {
	e := &store.Entry{Item: &item.Item{
		ID:   item.ID{Creator: "a", Num: 1},
		Meta: item.Metadata{Destinations: []string{"addr:x"}},
	}}
	if has {
		e.Transient = e.Transient.Set(item.FieldTTL, float64(ttl))
	}
	return e
}

func TestNewDefaults(t *testing.T) {
	if New(0).initialTTL != DefaultTTL {
		t.Error("ttl <= 0 should select DefaultTTL")
	}
	if New(5).initialTTL != 5 {
		t.Error("explicit ttl should be kept")
	}
	if New(0).Name() != "epidemic" {
		t.Error("wrong name")
	}
}

func TestToSendStampsMissingTTL(t *testing.T) {
	p := New(10)
	e := entryWithTTL(0, false)
	pr, tr := p.ToSend(e, routing.Target{})
	if pr.Class != routing.ClassNormal {
		t.Fatalf("fresh item should be sent, got class %v", pr.Class)
	}
	if got := e.Transient.GetInt(item.FieldTTL); got != 10 {
		t.Errorf("stored TTL = %d, want 10 (stamped)", got)
	}
	if got := tr.GetInt(item.FieldTTL); got != 9 {
		t.Errorf("transmitted TTL = %d, want 9", got)
	}
}

func TestToSendDecrementsOnlyInFlightCopy(t *testing.T) {
	p := New(10)
	e := entryWithTTL(4, true)
	_, tr := p.ToSend(e, routing.Target{})
	if got := e.Transient.GetInt(item.FieldTTL); got != 4 {
		t.Errorf("stored TTL changed to %d; must stay 4", got)
	}
	if got := tr.GetInt(item.FieldTTL); got != 3 {
		t.Errorf("transmitted TTL = %d, want 3", got)
	}
}

func TestToSendSkipsExhaustedTTL(t *testing.T) {
	p := New(10)
	pr, _ := p.ToSend(entryWithTTL(0, true), routing.Target{})
	if pr.Class != routing.ClassSkip {
		t.Error("zero TTL must not be forwarded")
	}
}

func TestGenerateProcessReqAreNoops(t *testing.T) {
	p := New(0)
	if p.GenerateReq() != nil {
		t.Error("epidemic should piggyback nothing")
	}
	p.ProcessReq("x", nil) // must not panic
}

// chainNodes builds a line topology a0-a1-...-a{n-1} of epidemic nodes.
func chainNodes(n, ttl int) []*replica.Replica {
	nodes := make([]*replica.Replica, n)
	for i := range nodes {
		nodes[i] = replica.New(replica.Config{
			ID:           vclock.ReplicaID(fmt.Sprintf("n%d", i)),
			OwnAddresses: []string{fmt.Sprintf("addr:%d", i)},
			Policy:       New(ttl),
		})
	}
	return nodes
}

func TestHopBoundOnChain(t *testing.T) {
	// With TTL = 2 a message can traverse at most 2 policy hops from the
	// sender, so on a chain synced left-to-right it reaches node 2 but not
	// node 3 (except via filter match, which is exercised separately).
	nodes := chainNodes(5, 2)
	msg := nodes[0].CreateItem(item.Metadata{
		Source: "addr:0", Destinations: []string{"addr:99"}, Kind: "message",
	}, nil)
	for i := 0; i+1 < len(nodes); i++ {
		replica.Sync(nodes[i], nodes[i+1], 0)
	}
	for i, nd := range nodes {
		has := nd.HasItem(msg.ID)
		want := i <= 2
		if has != want {
			t.Errorf("node %d has=%v want=%v (TTL bound)", i, has, want)
		}
	}
}

func TestFilterMatchIgnoresTTL(t *testing.T) {
	// Delivery to the destination is a filter transfer, not a policy
	// forward: it happens even when the TTL is exhausted.
	a := replica.New(replica.Config{
		ID: "a", OwnAddresses: []string{"addr:a"}, Policy: New(1),
	})
	r := replica.New(replica.Config{
		ID: "r", OwnAddresses: []string{"addr:r"}, Policy: New(1),
	})
	b := replica.New(replica.Config{
		ID: "b", OwnAddresses: []string{"addr:b"}, Filter: filter.NewAddresses("addr:b"),
	})
	msg := a.CreateItem(item.Metadata{
		Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
	}, nil)
	replica.Sync(a, r, 0) // consumes the only policy hop
	if got := r.Entry(msg.ID).Transient.GetInt(item.FieldTTL); got != 0 {
		t.Fatalf("TTL at relay = %d, want 0", got)
	}
	res := replica.Sync(r, b, 0)
	if res.Apply.Delivered != 1 {
		t.Error("exhausted TTL must not block filter delivery")
	}
}

func TestFloodDeliversEveryone(t *testing.T) {
	// Star gossip with generous TTL floods all nodes.
	nodes := chainNodes(6, 10)
	msg := nodes[0].CreateItem(item.Metadata{
		Source: "addr:0", Destinations: []string{"addr:5"}, Kind: "message",
	}, nil)
	for round := 0; round < 2; round++ {
		for i := 0; i+1 < len(nodes); i++ {
			replica.Encounter(nodes[i], nodes[i+1], 0)
		}
	}
	for i, nd := range nodes {
		if !nd.HasItem(msg.ID) {
			t.Errorf("node %d missing flooded message", i)
		}
	}
	if nodes[5].Stats().Delivered != 1 {
		t.Error("destination should have exactly one delivery")
	}
}
