// Package epidemic implements Epidemic routing (Vahdat & Becker, 2000) as a
// replication routing policy: TTL-limited flooding.
//
// Every stored item is forwarded during every synchronization until its hop
// budget (TTL) is exhausted. The original protocol's summary-vector exchange
// for duplicate suppression is unnecessary here — the replication substrate's
// knowledge already guarantees each item is delivered at most once to each
// host, exactly as the paper observes.
package epidemic

import (
	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// DefaultTTL is the paper's Table II hop budget.
const DefaultTTL = 10

// Policy is the Epidemic routing policy. Create one per replica with New.
type Policy struct {
	initialTTL int
}

// New returns an Epidemic policy with the given initial TTL; ttl <= 0 selects
// DefaultTTL.
func New(ttl int) *Policy {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Policy{initialTTL: ttl}
}

// Name implements routing.Policy.
func (*Policy) Name() string { return "epidemic" }

// GenerateReq implements routing.Policy; Epidemic piggybacks nothing.
func (*Policy) GenerateReq() routing.Request { return nil }

// ProcessReq implements routing.Policy; Epidemic keeps no routing state.
func (*Policy) ProcessReq(vclock.ReplicaID, routing.Request) {}

// ToSend implements routing.Policy: select every item whose TTL is positive,
// transmitting a copy whose TTL is decremented by one. New locally created
// items without a TTL field are stamped with the initial hop budget first.
// Only the in-flight copy's TTL drops; the stored copy keeps its value, as
// §V.C.1 of the paper specifies.
func (p *Policy) ToSend(e *store.Entry, target routing.Target) (routing.Priority, item.Transient) {
	pr := p.Decide(e, target)
	if pr.Class == routing.ClassSkip {
		return pr, nil
	}
	return pr, p.Materialize(e, target)
}

// Decide implements routing.SplitSender: the forwarding decision half of
// ToSend, including its TTL-stamping side effect.
func (p *Policy) Decide(e *store.Entry, _ routing.Target) routing.Priority {
	if !e.Transient.Has(item.FieldTTL) {
		e.Transient = e.Transient.Set(item.FieldTTL, float64(p.initialTTL))
	}
	if e.Transient.GetInt(item.FieldTTL) <= 0 {
		return routing.Skip
	}
	return routing.Priority{Class: routing.ClassNormal}
}

// Materialize implements routing.SplitSender: build the in-flight copy's
// transient — the stored transient with a decremented TTL. Pure; called only
// for items that made the batch.
func (p *Policy) Materialize(e *store.Entry, _ routing.Target) item.Transient {
	out := e.Transient.Clone()
	return out.Set(item.FieldTTL, float64(e.Transient.GetInt(item.FieldTTL)-1))
}
