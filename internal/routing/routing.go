// Package routing defines the pluggable DTN routing-policy interface that
// extends the replication substrate with multi-hop forwarding, following the
// paper's IDTNPolicy design (Fig. 3): a policy contributes routing state to
// outgoing synchronization requests (GenerateReq), digests the state carried
// by incoming requests (ProcessReq), and decides — per stored item — whether
// and with what priority to forward items that do not match the
// synchronization target's filter (ToSend).
package routing

import (
	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// Class is the coarse priority band of a batch item. Higher classes are
// transmitted earlier. ClassFilter is reserved for items that match the
// target's filter — messages addressed directly to the sync partner always
// go first.
type Class int

// Priority classes, lowest to highest.
const (
	ClassSkip Class = iota // do not send
	ClassLowest
	ClassLow
	ClassNormal
	ClassHigh
	ClassHighest
	ClassFilter // matches the target's filter; reserved for the substrate
)

var classNames = map[Class]string{
	ClassSkip:    "skip",
	ClassLowest:  "lowest",
	ClassLow:     "low",
	ClassNormal:  "normal",
	ClassHigh:    "high",
	ClassHighest: "highest",
	ClassFilter:  "filter",
}

// String renders the class name.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "unknown"
}

// Priority orders items within a synchronization batch: by Class, highest
// first, then by Cost, lowest first, as the paper's priority model specifies
// ("a class value ranging from lowest to highest, and a real-valued cost to
// break ties inside a class").
type Priority struct {
	Class Class
	Cost  float64
}

// Skip is the priority returned by ToSend to exclude an item from the batch.
var Skip = Priority{Class: ClassSkip}

// Before reports whether p should be transmitted before q.
func (p Priority) Before(q Priority) bool {
	if p.Class != q.Class {
		return p.Class > q.Class
	}
	return p.Cost < q.Cost
}

// Target describes the synchronization target (the replica that issued the
// request) to a forwarding decision.
type Target struct {
	ID     vclock.ReplicaID
	Filter filter.Filter
}

// Request is opaque, policy-specific routing state piggybacked on a
// synchronization request — e.g. PROPHET's delivery-predictability vector or
// MaxProp's meeting-probability table. A nil Request is valid and means the
// policy has nothing to say.
type Request any

// Policy is a pluggable DTN forwarding policy attached to one replica. The
// substrate invokes it at the three points of the extended sync protocol
// (paper Fig. 4). Implementations may keep per-replica persistent state; the
// owning replica serializes calls, so implementations need no internal
// locking unless shared across replicas.
type Policy interface {
	// Name identifies the policy (e.g. "epidemic").
	Name() string
	// GenerateReq is called when this replica initiates a synchronization
	// (acts as target); its return value travels in the request.
	GenerateReq() Request
	// ProcessReq is called when this replica receives a synchronization
	// request (acts as source), with the requesting replica's ID and the
	// routing state it sent. Policies typically fold the state into their
	// local tables here; since each encounter performs one sync in each
	// direction, ProcessReq fires exactly once per replica per encounter.
	ProcessReq(from vclock.ReplicaID, req Request)
	// ToSend decides whether to forward a stored item that does NOT match
	// the target's filter, returning its transmission priority (Skip to
	// withhold) and the transient metadata to attach to the transmitted
	// copy; returning a nil Transient transmits a clone of the stored one.
	// ToSend may mutate the entry's stored transient state (e.g. halve a
	// copy allowance) — such mutations never create new item versions.
	ToSend(e *store.Entry, target Target) (Priority, item.Transient)
}

// SplitSender is optionally implemented by policies that can separate the
// forwarding decision from building the transmitted transient. When a policy
// implements it, the substrate calls Decide while scanning candidates and
// Materialize only for the entries that survive batch truncation — so a
// policy that would allocate a fresh transient per candidate (e.g. Epidemic's
// decremented-TTL copy) allocates only per transmitted item, keeping batch
// assembly allocation-free per scanned entry.
//
// The contract mirrors ToSend split in two: Decide carries exactly the
// stored-state side effects ToSend would have (e.g. stamping an initial TTL)
// and returns the same priority. Materialize must be pure — no stored-state
// mutation — and return exactly the transient ToSend would have returned
// alongside that priority. It is called at most once per Decide, only for
// transmitted entries, after every Decide of the batch has run.
type SplitSender interface {
	Decide(e *store.Entry, target Target) Priority
	Materialize(e *store.Entry, target Target) item.Transient
}

// Persistent is implemented by policies that keep durable routing state —
// the paper's requirement that "DTN routing policies can define persistent
// data structures which are serialized to disk and retrieved whenever a
// synchronization operation is invoked". Stateless policies (Epidemic, Spray
// and Wait — whose state lives in per-item transients) need not implement
// it.
type Persistent interface {
	// SnapshotState serializes the policy's routing state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the policy's routing state from a snapshot.
	RestoreState(data []byte) error
}

// Nop is the no-op policy: it forwards nothing, reducing the substrate to
// basic filtered replication (messages travel only sender→destination).
type Nop struct{}

// Name implements Policy.
func (Nop) Name() string { return "none" }

// GenerateReq implements Policy.
func (Nop) GenerateReq() Request { return nil }

// ProcessReq implements Policy.
func (Nop) ProcessReq(vclock.ReplicaID, Request) {}

// ToSend implements Policy.
func (Nop) ToSend(*store.Entry, Target) (Priority, item.Transient) {
	return Skip, nil
}
