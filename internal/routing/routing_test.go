package routing

import (
	"math"
	"testing"
)

func TestPriorityBefore(t *testing.T) {
	cases := []struct {
		name string
		p, q Priority
		want bool
	}{
		{"higher class first", Priority{Class: ClassFilter}, Priority{Class: ClassHigh}, true},
		{"lower class later", Priority{Class: ClassLow}, Priority{Class: ClassNormal}, false},
		{"same class lower cost first", Priority{Class: ClassNormal, Cost: 1}, Priority{Class: ClassNormal, Cost: 2}, true},
		{"same class higher cost later", Priority{Class: ClassNormal, Cost: 3}, Priority{Class: ClassNormal, Cost: 2}, false},
		{"inf cost sorts last", Priority{Class: ClassNormal, Cost: 1}, Priority{Class: ClassNormal, Cost: math.Inf(1)}, true},
		{"class beats cost", Priority{Class: ClassHigh, Cost: 100}, Priority{Class: ClassNormal, Cost: 0}, true},
	}
	for _, tc := range cases {
		if got := tc.p.Before(tc.q); got != tc.want {
			t.Errorf("%s: Before = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassSkip:    "skip",
		ClassLowest:  "lowest",
		ClassLow:     "low",
		ClassNormal:  "normal",
		ClassHigh:    "high",
		ClassHighest: "highest",
		ClassFilter:  "filter",
		Class(99):    "unknown",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestNopPolicy(t *testing.T) {
	var p Nop
	if p.Name() != "none" {
		t.Error("wrong name")
	}
	if p.GenerateReq() != nil {
		t.Error("nop should generate nothing")
	}
	p.ProcessReq("x", nil)
	pr, tr := p.ToSend(nil, Target{})
	if pr.Class != ClassSkip || tr != nil {
		t.Error("nop must skip everything")
	}
}
