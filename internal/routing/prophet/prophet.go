// Package prophet implements PROPHET (Lindgren, Doria, Schelén — Probabilistic
// Routing in Intermittently Connected Networks) as a replication routing
// policy.
//
// Each node maintains a delivery predictability P(self, d) ∈ [0, 1] for every
// destination d it has heard of. Predictabilities increase on direct
// encounters, age down exponentially while nodes stay apart, and propagate
// transitively: meeting a node that meets d often raises our own
// predictability for d. A message is forwarded to a synchronization partner
// only when the partner's predictability for the message's destination
// exceeds our own.
//
// The partner's predictability vector arrives as routing state on the sync
// request (GenerateReq/ProcessReq), exactly as the paper's §V.C.3 describes;
// duplicate suppression comes for free from the substrate's knowledge.
package prophet

import (
	"math"
	"sort"

	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// Strategy selects the forwarding/queueing variant from the PROPHET
// Internet-Draft. All variants share the GRTR predicate — forward only when
// the partner's delivery predictability exceeds ours — and differ in how
// eligible messages are ordered when bandwidth is scarce.
type Strategy int

const (
	// GRTRSort orders eligible messages by the predictability margin
	// P(B,D) − P(A,D), largest first (the default).
	GRTRSort Strategy = iota
	// GRTR uses no predictability ordering (stable store order).
	GRTR
	// GRTRMax orders eligible messages by the partner's absolute
	// predictability P(B,D), largest first.
	GRTRMax
)

// String renders the strategy name.
func (st Strategy) String() string {
	switch st {
	case GRTR:
		return "GRTR"
	case GRTRMax:
		return "GRTRMax"
	default:
		return "GRTRSort"
	}
}

// Params are the PROPHET protocol constants. The defaults are the paper's
// Table II values.
type Params struct {
	// PInit is the predictability boost applied on a direct encounter.
	PInit float64
	// Beta scales transitive predictability propagation.
	Beta float64
	// Gamma is the per-time-unit aging factor.
	Gamma float64
	// AgingUnit is the length of one aging time unit in seconds.
	AgingUnit int64
	// Strategy selects the queueing variant (default GRTRSort).
	Strategy Strategy
}

// DefaultParams returns the paper's Table II parameters (P_init = 0.75,
// β = 0.25, γ = 0.98) with a 30-second aging unit. The aging granularity is
// fixed by neither paper; 30 seconds makes predictability decay within hours
// of an encounter, which reproduces the selective (non-flooding) forwarding
// the paper observes for PROPHET on DieselNet.
func DefaultParams() Params {
	return Params{PInit: 0.75, Beta: 0.25, Gamma: 0.98, AgingUnit: 30}
}

// Request is the routing state piggybacked on sync requests: the target's
// delivery-predictability vector, keyed by destination address, plus the
// addresses the target identifies as (the endpoints homed on it).
type Request struct {
	// From is the requesting node.
	From vclock.ReplicaID
	// OwnAddresses are the endpoint addresses homed on the requester; the
	// receiver boosts its direct predictability for them.
	OwnAddresses []string
	// Predictability maps destination address → P(requester, destination).
	Predictability map[string]float64
}

// Policy is the PROPHET policy attached to one replica. The owning replica
// serializes calls; the emulator advances the clock between encounters.
type Policy struct {
	params Params
	now    func() int64
	// ownAddresses are the endpoint addresses homed on this node (kept
	// current by the application as endpoints move).
	ownAddresses []string
	// p maps destination address → delivery predictability.
	p map[string]float64
	// lastAged is the time of the most recent aging pass.
	lastAged int64
	// partners caches the latest vector received from each sync partner.
	partners partnerCache
}

// New creates a PROPHET policy. now supplies the current time in seconds
// (simulation or wall clock); ownAddresses are the endpoint addresses homed
// on this node.
func New(params Params, now func() int64, ownAddresses ...string) *Policy {
	if params.AgingUnit <= 0 {
		params.AgingUnit = DefaultParams().AgingUnit
	}
	return &Policy{
		params:       params,
		now:          now,
		ownAddresses: append([]string(nil), ownAddresses...),
		p:            make(map[string]float64),
		lastAged:     now(),
	}
}

// Name implements routing.Policy.
func (*Policy) Name() string { return "prophet" }

// SetOwnAddresses updates the endpoint addresses homed on this node.
func (p *Policy) SetOwnAddresses(addrs ...string) {
	p.ownAddresses = append(p.ownAddresses[:0], addrs...)
}

// Predictability returns P(self, dest) after aging.
func (p *Policy) Predictability(dest string) float64 {
	p.age()
	return p.p[dest]
}

// Vector returns a copy of the aged predictability vector.
func (p *Policy) Vector() map[string]float64 {
	p.age()
	out := make(map[string]float64, len(p.p))
	for d, v := range p.p {
		out[d] = v
	}
	return out
}

// GenerateReq implements routing.Policy: ship the aged predictability vector
// and our homed addresses.
func (p *Policy) GenerateReq() routing.Request {
	return &Request{
		OwnAddresses:   append([]string(nil), p.ownAddresses...),
		Predictability: p.Vector(),
	}
}

// ProcessReq implements routing.Policy: store the partner's vector for use by
// ToSend and update our own predictabilities — the direct boost for the
// addresses homed on the partner and the transitive update through the
// partner's vector. Because each encounter runs one sync in each direction,
// this fires exactly once per encounter per node.
func (p *Policy) ProcessReq(from vclock.ReplicaID, req routing.Request) {
	r, ok := req.(*Request)
	if !ok || r == nil {
		return
	}
	p.age()
	// Direct encounter boost: P(a,b) += (1 - P(a,b)) * P_init for every
	// address homed on the encountered node.
	for _, addr := range r.OwnAddresses {
		old := p.p[addr]
		p.p[addr] = old + (1-old)*p.params.PInit
	}
	// Transitivity: P(a,c) = max(P(a,c), P(a,b) * P(b,c) * beta), where b is
	// the encountered node. P(a,b) is the maximum over b's homed addresses.
	pab := 0.0
	for _, addr := range r.OwnAddresses {
		if v := p.p[addr]; v > pab {
			pab = v
		}
	}
	for dest, pbc := range r.Predictability {
		if p.ownAddress(dest) {
			continue
		}
		if v := pab * pbc * p.params.Beta; v > p.p[dest] {
			p.p[dest] = v
		}
	}
	p.partners.store(from, r.Predictability)
}

func (p *Policy) ownAddress(addr string) bool {
	for _, a := range p.ownAddresses {
		if a == addr {
			return true
		}
	}
	return false
}

// partnerCap bounds the partner vector cache. A node roaming an open-ended
// peer population would otherwise accumulate one predictability vector per
// peer ever met (dtnlint unboundedgrowth; the SummaryPeerCap bug class).
// Eviction is insertion-order FIFO — deterministic, and a partner met again
// after eviction is simply re-cached on the next encounter.
const partnerCap = 1024

// partners caches the most recent predictability vector seen from each
// encounter partner, consulted by ToSend.
type partnerCache struct {
	vectors map[vclock.ReplicaID]map[string]float64
	// order tracks first-insertion order for FIFO eviction.
	order []vclock.ReplicaID
}

func (c *partnerCache) store(id vclock.ReplicaID, vec map[string]float64) {
	if c.vectors == nil {
		c.vectors = make(map[vclock.ReplicaID]map[string]float64)
	}
	cp := make(map[string]float64, len(vec))
	for d, v := range vec {
		cp[d] = v
	}
	if _, known := c.vectors[id]; !known {
		c.order = append(c.order, id)
	}
	c.vectors[id] = cp
	c.evictOldest()
}

// evictOldest drops first-inserted partners until the cache is within
// partnerCap.
func (c *partnerCache) evictOldest() {
	for len(c.vectors) > partnerCap && len(c.order) > 0 {
		delete(c.vectors, c.order[0])
		c.order = append(c.order[:0], c.order[1:]...)
	}
}

func (c *partnerCache) get(id vclock.ReplicaID) map[string]float64 {
	return c.vectors[id]
}

// ToSend implements routing.Policy: forward a message when the target's
// delivery predictability for any of the message's destinations exceeds ours
// (the GRTR predicate), with queue order given by the configured strategy —
// the cost is negated so stronger candidates transmit earlier in the class.
func (p *Policy) ToSend(e *store.Entry, target routing.Target) (routing.Priority, item.Transient) {
	vec := p.partners.get(target.ID)
	if vec == nil {
		return routing.Skip, nil
	}
	p.age()
	bestMargin := math.Inf(-1)
	bestTheirs := math.Inf(-1)
	send := false
	for _, dest := range e.Item.Meta.Destinations {
		theirs, ours := vec[dest], p.p[dest]
		if theirs > ours {
			send = true
			if margin := theirs - ours; margin > bestMargin {
				bestMargin = margin
			}
			if theirs > bestTheirs {
				bestTheirs = theirs
			}
		}
	}
	if !send {
		return routing.Skip, nil
	}
	switch p.params.Strategy {
	case GRTR:
		return routing.Priority{Class: routing.ClassNormal}, nil
	case GRTRMax:
		return routing.Priority{Class: routing.ClassNormal, Cost: -bestTheirs}, nil
	default: // GRTRSort
		return routing.Priority{Class: routing.ClassNormal, Cost: -bestMargin}, nil
	}
}

// age applies exponential decay for the elapsed whole aging units:
// P = P * gamma^k.
func (p *Policy) age() {
	now := p.now()
	elapsed := now - p.lastAged
	if elapsed < p.params.AgingUnit {
		return
	}
	k := elapsed / p.params.AgingUnit
	factor := math.Pow(p.params.Gamma, float64(k))
	for d, v := range p.p {
		nv := v * factor
		if nv < 1e-9 {
			delete(p.p, d)
			continue
		}
		p.p[d] = nv
	}
	p.lastAged += k * p.params.AgingUnit
}

// DestinationsKnown returns the aged vector's destinations in sorted order
// (primarily for tests and debugging output).
func (p *Policy) DestinationsKnown() []string {
	p.age()
	out := make([]string, 0, len(p.p))
	for d := range p.p {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
