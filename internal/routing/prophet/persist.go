package prophet

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"replidtn/internal/vclock"
)

// stateDoc is the serializable form of the policy's durable routing state:
// the delivery-predictability vector, its aging watermark, and the cached
// partner vectors.
type stateDoc struct {
	Predictability map[string]float64
	LastAged       int64
	Partners       map[vclock.ReplicaID]map[string]float64
}

// SnapshotState implements routing.Persistent.
func (p *Policy) SnapshotState() ([]byte, error) {
	p.age()
	doc := stateDoc{
		Predictability: make(map[string]float64, len(p.p)),
		LastAged:       p.lastAged,
		Partners:       make(map[vclock.ReplicaID]map[string]float64, len(p.partners.vectors)),
	}
	for d, v := range p.p {
		doc.Predictability[d] = v
	}
	for id, vec := range p.partners.vectors {
		cp := make(map[string]float64, len(vec))
		for d, v := range vec {
			cp[d] = v
		}
		doc.Partners[id] = cp
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(doc); err != nil {
		return nil, fmt.Errorf("prophet: snapshot state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements routing.Persistent.
func (p *Policy) RestoreState(data []byte) error {
	var doc stateDoc
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&doc); err != nil {
		return fmt.Errorf("prophet: restore state: %w", err)
	}
	p.p = doc.Predictability
	if p.p == nil {
		p.p = make(map[string]float64)
	}
	p.lastAged = doc.LastAged
	// A snapshot taken long ago must age forward, not backward.
	if now := p.now(); p.lastAged > now {
		p.lastAged = now
	}
	p.partners = partnerCache{vectors: doc.Partners}
	return nil
}
