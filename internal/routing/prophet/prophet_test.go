package prophet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// simClock is a settable test clock.
type simClock struct{ t int64 }

func (c *simClock) now() int64 { return c.t }

func newPolicy(clk *simClock, addrs ...string) *Policy {
	return New(DefaultParams(), clk.now, addrs...)
}

func reqFrom(p *Policy) *Request { return p.GenerateReq().(*Request) }

func TestDirectEncounterBoost(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	b := newPolicy(clk, "addr:b")
	a.ProcessReq("b", reqFrom(b))
	got := a.Predictability("addr:b")
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(a,b) = %v, want 0.75 after first encounter", got)
	}
	// Second encounter compounds: 0.75 + 0.25*0.75 = 0.9375.
	a.ProcessReq("b", reqFrom(b))
	if got := a.Predictability("addr:b"); math.Abs(got-0.9375) > 1e-12 {
		t.Errorf("P(a,b) = %v, want 0.9375 after second encounter", got)
	}
}

func TestAging(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	b := newPolicy(clk, "addr:b")
	a.ProcessReq("b", reqFrom(b))
	base := a.Predictability("addr:b")
	clk.t += 10 * DefaultParams().AgingUnit
	aged := a.Predictability("addr:b")
	want := base * math.Pow(DefaultParams().Gamma, 10)
	if math.Abs(aged-want) > 1e-12 {
		t.Errorf("aged P = %v, want %v", aged, want)
	}
}

func TestAgingPartialUnitIsDeferred(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	b := newPolicy(clk, "addr:b")
	a.ProcessReq("b", reqFrom(b))
	base := a.Predictability("addr:b")
	clk.t += DefaultParams().AgingUnit - 1
	if got := a.Predictability("addr:b"); got != base {
		t.Errorf("partial unit aged early: %v != %v", got, base)
	}
}

func TestTransitivity(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	b := newPolicy(clk, "addr:b")
	c := newPolicy(clk, "addr:c")
	// b meets c, then a meets b: a should gain transitive predictability
	// for addr:c = P(a,b) * P(b,c) * beta.
	b.ProcessReq("c", reqFrom(c))
	a.ProcessReq("b", reqFrom(b))
	pab := a.Predictability("addr:b")
	pbc := b.Predictability("addr:c")
	want := pab * pbc * DefaultParams().Beta
	if got := a.Predictability("addr:c"); math.Abs(got-want) > 1e-12 {
		t.Errorf("transitive P(a,c) = %v, want %v", got, want)
	}
}

func TestTransitivityNeverLowers(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	c := newPolicy(clk, "addr:c")
	a.ProcessReq("c", reqFrom(c)) // direct: 0.75
	b := newPolicy(clk, "addr:b")
	b.ProcessReq("c", reqFrom(c))
	a.ProcessReq("b", reqFrom(b))
	if got := a.Predictability("addr:c"); got < 0.75-1e-12 {
		t.Errorf("transitive update lowered P(a,c) to %v", got)
	}
}

func TestOwnAddressNotPolluted(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	b := newPolicy(clk, "addr:b")
	b.ProcessReq("a", reqFrom(a))
	a.ProcessReq("b", reqFrom(b))
	if _, ok := a.Vector()["addr:a"]; ok {
		t.Error("a node must not track predictability for its own address")
	}
}

func msgEntry(dest string) *store.Entry {
	return &store.Entry{Item: &item.Item{
		ID:   item.ID{Creator: "a", Num: 1},
		Meta: item.Metadata{Destinations: []string{dest}},
	}}
}

func TestToSendComparesPredictabilities(t *testing.T) {
	clk := &simClock{}
	src := newPolicy(clk, "addr:src")
	tgt := newPolicy(clk, "addr:tgt")
	dst := newPolicy(clk, "addr:dst")
	// Target met the destination; source did not.
	tgt.ProcessReq("dst", reqFrom(dst))
	src.ProcessReq("tgt", reqFrom(tgt)) // also caches tgt's vector
	pr, _ := src.ToSend(msgEntry("addr:dst"), routing.Target{ID: "tgt"})
	if pr.Class != routing.ClassNormal {
		t.Fatal("message must be forwarded to a better custodian")
	}
	// Reverse direction: target has no vector cached for src → skip.
	pr, _ = tgt.ToSend(msgEntry("addr:dst"), routing.Target{ID: "unknown"})
	if pr.Class != routing.ClassSkip {
		t.Error("no cached vector for the partner must mean skip")
	}
}

func TestToSendSkipsWhenSourceIsBetter(t *testing.T) {
	clk := &simClock{}
	src := newPolicy(clk, "addr:src")
	tgt := newPolicy(clk, "addr:tgt")
	dst := newPolicy(clk, "addr:dst")
	src.ProcessReq("dst", reqFrom(dst)) // source met destination directly
	src.ProcessReq("tgt", reqFrom(tgt)) // target knows nothing about dst
	pr, _ := src.ToSend(msgEntry("addr:dst"), routing.Target{ID: "tgt"})
	if pr.Class != routing.ClassSkip {
		t.Error("message must stay with the better custodian")
	}
}

func TestToSendPriorityOrdersByMargin(t *testing.T) {
	clk := &simClock{}
	src := newPolicy(clk, "addr:src")
	d1 := newPolicy(clk, "addr:d1")
	d2 := newPolicy(clk, "addr:d2")
	tgt := newPolicy(clk, "addr:tgt")
	tgt.ProcessReq("d1", reqFrom(d1))
	tgt.ProcessReq("d1", reqFrom(d1)) // stronger predictability for d1
	tgt.ProcessReq("d2", reqFrom(d2))
	src.ProcessReq("tgt", reqFrom(tgt))
	p1, _ := src.ToSend(msgEntry("addr:d1"), routing.Target{ID: "tgt"})
	p2, _ := src.ToSend(msgEntry("addr:d2"), routing.Target{ID: "tgt"})
	if !p1.Before(p2) {
		t.Errorf("larger margin should transmit first: %+v vs %+v", p1, p2)
	}
}

func TestIgnoresForeignRequestTypes(t *testing.T) {
	clk := &simClock{}
	p := newPolicy(clk, "addr:a")
	p.ProcessReq("x", 42)  // must not panic
	p.ProcessReq("x", nil) // must not panic
	if len(p.Vector()) != 0 {
		t.Error("foreign requests must not mutate state")
	}
}

func TestSetOwnAddresses(t *testing.T) {
	clk := &simClock{}
	p := newPolicy(clk, "addr:old")
	p.SetOwnAddresses("addr:new")
	req := reqFrom(p)
	if len(req.OwnAddresses) != 1 || req.OwnAddresses[0] != "addr:new" {
		t.Errorf("OwnAddresses = %v", req.OwnAddresses)
	}
}

// TestPropPredictabilitiesStayInRange drives random encounter sequences and
// checks every predictability remains in [0, 1].
func TestPropPredictabilitiesStayInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := &simClock{}
		const n = 5
		ps := make([]*Policy, n)
		for i := range ps {
			ps[i] = newPolicy(clk, addr(i))
		}
		for k := 0; k < 100; k++ {
			clk.t += int64(rng.Intn(7200))
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			ps[i].ProcessReq(id(j), reqFrom(ps[j]))
			ps[j].ProcessReq(id(i), reqFrom(ps[i]))
		}
		for _, p := range ps {
			for _, v := range p.Vector() {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func addr(i int) string { return string(rune('a'+i)) + ":addr" }

func id(i int) vclock.ReplicaID { return vclock.ReplicaID(rune('a' + i)) }

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{GRTR: "GRTR", GRTRSort: "GRTRSort", GRTRMax: "GRTRMax"}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestStrategiesShareTheGRTRPredicate(t *testing.T) {
	for _, st := range []Strategy{GRTR, GRTRSort, GRTRMax} {
		clk := &simClock{}
		params := DefaultParams()
		params.Strategy = st
		src := New(params, clk.now, "addr:src")
		tgt := newPolicy(clk, "addr:tgt")
		dst := newPolicy(clk, "addr:dst")
		tgt.ProcessReq("dst", reqFrom(dst))
		src.ProcessReq("tgt", reqFrom(tgt))
		if pr, _ := src.ToSend(msgEntry("addr:dst"), routing.Target{ID: "tgt"}); pr.Class != routing.ClassNormal {
			t.Errorf("%v: eligible message skipped", st)
		}
		if pr, _ := src.ToSend(msgEntry("addr:unknown"), routing.Target{ID: "tgt"}); pr.Class != routing.ClassSkip {
			t.Errorf("%v: ineligible message forwarded", st)
		}
	}
}

func TestGRTRMaxOrdersByAbsolutePredictability(t *testing.T) {
	clk := &simClock{}
	params := DefaultParams()
	params.Strategy = GRTRMax
	src := New(params, clk.now, "addr:src")
	d1 := newPolicy(clk, "addr:d1")
	d2 := newPolicy(clk, "addr:d2")
	tgt := newPolicy(clk, "addr:tgt")
	tgt.ProcessReq("d1", reqFrom(d1))
	tgt.ProcessReq("d1", reqFrom(d1)) // P(tgt,d1) > P(tgt,d2)
	tgt.ProcessReq("d2", reqFrom(d2))
	src.ProcessReq("tgt", reqFrom(tgt))
	p1, _ := src.ToSend(msgEntry("addr:d1"), routing.Target{ID: "tgt"})
	p2, _ := src.ToSend(msgEntry("addr:d2"), routing.Target{ID: "tgt"})
	if !p1.Before(p2) {
		t.Errorf("GRTRMax should favor the higher absolute predictability: %+v vs %+v", p1, p2)
	}
}

func TestGRTRUsesNoOrdering(t *testing.T) {
	clk := &simClock{}
	params := DefaultParams()
	params.Strategy = GRTR
	src := New(params, clk.now, "addr:src")
	dst := newPolicy(clk, "addr:dst")
	tgt := newPolicy(clk, "addr:tgt")
	tgt.ProcessReq("dst", reqFrom(dst))
	src.ProcessReq("tgt", reqFrom(tgt))
	pr, _ := src.ToSend(msgEntry("addr:dst"), routing.Target{ID: "tgt"})
	if pr.Cost != 0 {
		t.Errorf("GRTR should not assign costs, got %v", pr.Cost)
	}
}
