package prophet

import (
	"reflect"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	b := newPolicy(clk, "addr:b")
	c := newPolicy(clk, "addr:c")
	b.ProcessReq("c", reqFrom(c))
	a.ProcessReq("b", reqFrom(b))
	data, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := newPolicy(clk, "addr:a")
	if err := restored.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Vector(), restored.Vector()) {
		t.Errorf("vector mismatch: %v vs %v", a.Vector(), restored.Vector())
	}
	// The cached partner vectors must survive too: ToSend works right away.
	if got := restored.partners.get("b"); got == nil {
		t.Error("partner cache lost through snapshot")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	clk := &simClock{}
	p := newPolicy(clk, "addr:a")
	if err := p.RestoreState([]byte("not gob")); err == nil {
		t.Error("garbage state should fail to restore")
	}
}

func TestRestoreClampsFutureWatermark(t *testing.T) {
	clk := &simClock{t: 1000}
	a := newPolicy(clk, "addr:a")
	b := newPolicy(clk, "addr:b")
	a.ProcessReq("b", reqFrom(b))
	data, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a policy whose clock is behind the snapshot's watermark;
	// aging must not run backwards (negative elapsed time).
	past := &simClock{t: 0}
	restored := New(DefaultParams(), past.now, "addr:a")
	if err := restored.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	if restored.lastAged > 0 {
		t.Errorf("watermark %d not clamped to current time", restored.lastAged)
	}
	// Aging forward afterwards still works.
	past.t = 10 * DefaultParams().AgingUnit
	if v := restored.Predictability("addr:b"); v <= 0 || v >= 0.75 {
		t.Errorf("aged predictability = %v, want in (0, 0.75)", v)
	}
}

func TestRestoreEmptyState(t *testing.T) {
	clk := &simClock{}
	a := newPolicy(clk, "addr:a")
	data, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := newPolicy(clk, "addr:x")
	if err := restored.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	if len(restored.Vector()) != 0 {
		t.Error("empty snapshot should restore to empty state")
	}
}

func TestNameAndDestinationsKnown(t *testing.T) {
	clk := &simClock{}
	p := newPolicy(clk, "addr:a")
	if p.Name() != "prophet" {
		t.Error("wrong name")
	}
	b := newPolicy(clk, "addr:b")
	c := newPolicy(clk, "addr:c")
	p.ProcessReq("c", reqFrom(c))
	p.ProcessReq("b", reqFrom(b))
	got := p.DestinationsKnown()
	if len(got) < 2 || got[0] > got[1] {
		t.Errorf("DestinationsKnown = %v, want sorted destinations", got)
	}
}

func TestNewDefaultsAgingUnit(t *testing.T) {
	clk := &simClock{}
	p := New(Params{PInit: 0.5, Beta: 0.2, Gamma: 0.9}, clk.now)
	if p.params.AgingUnit != DefaultParams().AgingUnit {
		t.Errorf("AgingUnit = %d, want default", p.params.AgingUnit)
	}
}
