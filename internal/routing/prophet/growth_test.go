package prophet

import (
	"fmt"
	"testing"

	"replidtn/internal/vclock"
)

// TestPartnerCacheBounded is the regression test for the unbounded partner
// vector cache the dtnlint unboundedgrowth analyzer flagged: one
// predictability vector was retained per peer ever encountered. The cache
// now evicts in insertion order past partnerCap.
func TestPartnerCacheBounded(t *testing.T) {
	var c partnerCache
	vec := map[string]float64{"dest": 0.5}
	for i := 0; i < partnerCap+100; i++ {
		c.store(vclock.ReplicaID(fmt.Sprintf("peer-%05d", i)), vec)
	}
	if len(c.vectors) > partnerCap {
		t.Fatalf("partner cache holds %d vectors, want <= %d", len(c.vectors), partnerCap)
	}
	// FIFO: the first 100 inserts are gone, the most recent survive.
	if c.get("peer-00000") != nil {
		t.Fatalf("oldest partner still cached after %d inserts", partnerCap+100)
	}
	if c.get(vclock.ReplicaID(fmt.Sprintf("peer-%05d", partnerCap+99))) == nil {
		t.Fatalf("newest partner missing from cache")
	}
	// Re-storing an existing partner must not duplicate its order entry.
	last := vclock.ReplicaID(fmt.Sprintf("peer-%05d", partnerCap+99))
	for i := 0; i < 10; i++ {
		c.store(last, vec)
	}
	if len(c.order) != len(c.vectors) {
		t.Fatalf("order ledger (%d) out of sync with cache (%d)", len(c.order), len(c.vectors))
	}
}
