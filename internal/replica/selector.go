package replica

import (
	"sort"

	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
)

// syncCandidate is one store entry admitted to batch selection, before its
// wire transient is materialized. Keeping candidates this small — and
// deferring transient construction until after truncation — is what makes
// batch assembly allocation-free per scanned entry.
type syncCandidate struct {
	entry    *store.Entry
	priority routing.Priority
	// transient is the policy-built transient for eager ToSend policies; nil
	// for substrate-class candidates (which transmit a clone of the stored
	// transient) and for split policies.
	transient item.Transient
	// materialize marks a candidate admitted via routing.SplitSender.Decide,
	// whose transient is produced by Materialize only if it survives
	// truncation.
	materialize bool
}

// batchSelector assembles a synchronization batch as a stream: candidates
// are offered one at a time and only the top-K worth transmitting are
// retained, in a bounded max-heap whose root is the worst retained candidate
// (the first to displace). This turns batch assembly from
// O(candidates · log candidates) with a full materialized sort into
// O(candidates · log K) with O(K) memory — the difference between sorting a
// 100k-entry store and keeping one item when the encounter budget is one
// message.
//
// When limit <= 0 the batch is unbounded: candidates are collected and fully
// sorted at finish, preserving the exact ordering of the unbounded path.
//
// The retained set is always the first min(total, limit) items of the full
// priority ordering, so any truncation rule that takes a prefix of that
// ordering (MaxItems, the MaxBytes scan) computes identical results on the
// selector's output — the property the differential test pins down.
type batchSelector struct {
	limit int
	cands []syncCandidate
	total int
}

// candLess reports whether a transmits before b: priority order (class
// descending, cost ascending), ties broken by item ID. Within one batch the
// order is total because item IDs are unique.
//
//dtn:hotpath
func candLess(a, b *syncCandidate) bool {
	if a.priority != b.priority {
		return a.priority.Before(b.priority)
	}
	return lessID(a.entry.Item.ID, b.entry.Item.ID)
}

// offer considers one candidate for the batch.
//
//dtn:hotpath
func (sel *batchSelector) offer(c syncCandidate) {
	sel.total++
	if sel.limit <= 0 {
		sel.cands = append(sel.cands, c)
		return
	}
	if len(sel.cands) < sel.limit {
		sel.cands = append(sel.cands, c)
		sel.siftUp(len(sel.cands) - 1)
		return
	}
	if !candLess(&c, &sel.cands[0]) {
		return // not better than the worst retained candidate
	}
	sel.cands[0] = c
	sel.siftDown(0, len(sel.cands))
}

// finish returns the retained candidates in transmission order. The selector
// must not be used afterwards.
func (sel *batchSelector) finish() []syncCandidate {
	if sel.limit <= 0 {
		sort.Slice(sel.cands, func(i, j int) bool {
			return candLess(&sel.cands[i], &sel.cands[j])
		})
		return sel.cands
	}
	// Heapsort in place: repeatedly move the heap's worst element to the
	// end, leaving the slice in ascending transmission order.
	for end := len(sel.cands) - 1; end > 0; end-- {
		sel.cands[0], sel.cands[end] = sel.cands[end], sel.cands[0]
		sel.siftDown(0, end)
	}
	return sel.cands
}

// siftUp restores the heap property ("worst at root") after an append.
//
//dtn:hotpath
func (sel *batchSelector) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !candLess(&sel.cands[parent], &sel.cands[i]) {
			return
		}
		sel.cands[i], sel.cands[parent] = sel.cands[parent], sel.cands[i]
		i = parent
	}
}

// siftDown restores the heap property below i within cands[:n].
//
//dtn:hotpath
func (sel *batchSelector) siftDown(i, n int) {
	for {
		left, right := 2*i+1, 2*i+2
		worst := i
		if left < n && candLess(&sel.cands[worst], &sel.cands[left]) {
			worst = left
		}
		if right < n && candLess(&sel.cands[worst], &sel.cands[right]) {
			worst = right
		}
		if worst == i {
			return
		}
		sel.cands[i], sel.cands[worst] = sel.cands[worst], sel.cands[i]
		i = worst
	}
}
