package replica

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/routing/spraywait"
	"replidtn/internal/vclock"
)

// handleSyncRequestReference is the pre-refactor batch assembly, kept
// verbatim as the specification the streaming selector must match: snapshot
// and sort the whole store, score every candidate, sort the full batch, and
// only then truncate to the budgets. Any divergence between this and
// HandleSyncRequest on the same inputs is a bug in the streaming path.
func (r *Replica) handleSyncRequestReference(req *SyncRequest) *SyncResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.policy != nil && req.Routing != nil {
		r.policy.ProcessReq(req.TargetID, req.Routing)
	}
	target := routing.Target{ID: req.TargetID, Filter: req.Filter}

	var batch []BatchItem
	for _, e := range r.store.Entries() {
		if req.Knowledge.Contains(e.Item.Version) {
			continue
		}
		if !e.Item.Deleted && r.expiredLocked(&e.Item.Meta) {
			continue
		}
		switch {
		case e.Item.Deleted:
			batch = append(batch, BatchItem{
				Item:      e.Item,
				Transient: transmitTransient(e, nil),
				Priority:  routing.Priority{Class: routing.ClassFilter},
			})
		case req.Filter != nil && req.Filter.Match(e.Item):
			batch = append(batch, BatchItem{
				Item:      e.Item,
				Transient: transmitTransient(e, nil),
				Priority:  routing.Priority{Class: routing.ClassFilter},
			})
		case r.policy != nil:
			pr, tr := r.policy.ToSend(e, target)
			if pr.Class == routing.ClassSkip {
				continue
			}
			batch = append(batch, BatchItem{
				Item:      e.Item,
				Transient: transmitTransient(e, tr),
				Priority:  pr,
			})
		}
	}

	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].Priority != batch[j].Priority {
			return batch[i].Priority.Before(batch[j].Priority)
		}
		return lessID(batch[i].Item.ID, batch[j].Item.ID)
	})

	resp := &SyncResponse{SourceID: r.id, Items: batch}
	if req.MaxItems > 0 && len(batch) > req.MaxItems {
		resp.Items = batch[:req.MaxItems]
		resp.Truncated = true
	}
	if req.MaxBytes > 0 {
		var used int64
		cut := len(resp.Items)
		for i, bi := range resp.Items {
			size := itemWireBytes(bi.Item)
			if used+size > req.MaxBytes && (i > 0 || req.StrictBytes) {
				cut = i
				break
			}
			used += size
		}
		if cut < len(resp.Items) {
			resp.Items = resp.Items[:cut]
			resp.Truncated = true
		}
	}
	if !resp.Truncated && req.Filter != nil && r.filter.Covers(req.Filter) {
		resp.LearnedKnowledge = r.know.Clone()
	}
	return resp
}

// diffScenario is one randomized store + request configuration.
type diffScenario struct {
	seed        int64
	policy      int // 0 none, 1 epidemic, 2 spray, 3 prophet
	items       int
	maxItems    int
	maxBytes    int64
	strictBytes bool
	knownFrac   int // percent of versions pre-learned by the target
	tombFrac    int // percent of items deleted
	expireFrac  int // percent of items already expired
	wideFilter  bool
}

// buildSource constructs a source replica populated per the scenario; called
// twice with the same scenario it produces identical replicas, so policy
// side effects (spray halving, TTL decrements) apply equally to both paths.
func buildSource(sc diffScenario) (*Replica, *SyncRequest) {
	rng := rand.New(rand.NewSource(sc.seed))
	var now int64 = 1000
	var pol routing.Policy
	switch sc.policy {
	case 1:
		pol = epidemic.New(8)
	case 2:
		pol = spraywait.New(8)
	case 3:
		pol = prophet.New(prophet.DefaultParams(), func() int64 { return now }, "addr:src")
	}
	src := New(Config{
		ID:           "src",
		OwnAddresses: []string{"addr:src"},
		Policy:       pol,
		Now:          func() int64 { return now },
	})
	targetKnow := vclock.NewKnowledge()
	for i := 0; i < sc.items; i++ {
		dst := fmt.Sprintf("addr:%d", rng.Intn(6))
		expires := int64(0)
		if rng.Intn(100) < sc.expireFrac {
			expires = now - 1 // already past
		}
		payload := make([]byte, rng.Intn(200))
		it := src.CreateItem(item.Metadata{
			Source:       "addr:src",
			Destinations: []string{dst},
			Kind:         "message",
			Expires:      expires,
		}, payload)
		if rng.Intn(100) < sc.tombFrac {
			if _, err := src.DeleteItem(it.ID); err != nil {
				panic(err)
			}
		}
		if rng.Intn(100) < sc.knownFrac {
			targetKnow.Add(it.Version)
		}
	}
	var f filter.Filter = filter.NewAddresses("addr:0", "addr:1")
	if sc.wideFilter {
		f = filter.All{}
	}
	req := &SyncRequest{
		TargetID:    "tgt",
		Knowledge:   targetKnow,
		Filter:      f,
		MaxItems:    sc.maxItems,
		MaxBytes:    sc.maxBytes,
		StrictBytes: sc.strictBytes,
	}
	return src, req
}

// reqClone gives each path its own request: ProcessReq and knowledge reads
// must not couple the two runs.
func reqClone(req *SyncRequest) *SyncRequest {
	c := *req
	c.Knowledge = req.Knowledge.Clone()
	return &c
}

func sameResponse(a, b *SyncResponse) error {
	if a.Truncated != b.Truncated {
		return fmt.Errorf("Truncated %v vs %v", a.Truncated, b.Truncated)
	}
	if (a.LearnedKnowledge == nil) != (b.LearnedKnowledge == nil) {
		return fmt.Errorf("LearnedKnowledge presence %v vs %v",
			a.LearnedKnowledge != nil, b.LearnedKnowledge != nil)
	}
	if a.LearnedKnowledge != nil && !a.LearnedKnowledge.Equal(b.LearnedKnowledge) {
		return fmt.Errorf("LearnedKnowledge %s vs %s", a.LearnedKnowledge, b.LearnedKnowledge)
	}
	if len(a.Items) != len(b.Items) {
		return fmt.Errorf("batch length %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		x, y := a.Items[i], b.Items[i]
		if x.Item.ID != y.Item.ID {
			return fmt.Errorf("item %d: ID %s vs %s", i, x.Item.ID, y.Item.ID)
		}
		if x.Item.Version != y.Item.Version {
			return fmt.Errorf("item %d: version %s vs %s", i, x.Item.Version, y.Item.Version)
		}
		if x.Priority != y.Priority {
			return fmt.Errorf("item %d: priority %+v vs %+v", i, x.Priority, y.Priority)
		}
		if fmt.Sprint(x.Transient) != fmt.Sprint(y.Transient) {
			return fmt.Errorf("item %d: transient %v vs %v", i, x.Transient, y.Transient)
		}
	}
	return nil
}

// TestHandleSyncRequestDifferential is the property test pinning the
// streaming selector to the old sort-everything path: across random stores,
// policies, filters, and MaxItems/MaxBytes combinations, both paths must
// emit byte-identical batches (same items, same order, same priorities, same
// truncation and knowledge-merge flags).
func TestHandleSyncRequestDifferential(t *testing.T) {
	check := func(seed int64, policy, items, maxItems uint8, maxBytes uint16, strict, wide bool, knownFrac, tombFrac, expireFrac uint8) bool {
		sc := diffScenario{
			seed:        seed,
			policy:      int(policy % 4),
			items:       int(items%120) + 1,
			maxItems:    int(maxItems % 12), // 0 = unlimited, often tiny
			maxBytes:    int64(maxBytes % 2048),
			strictBytes: strict,
			knownFrac:   int(knownFrac % 101),
			tombFrac:    int(tombFrac % 40),
			expireFrac:  int(expireFrac % 30),
			wideFilter:  wide,
		}
		// Two identical sources: side-effecting policies (spray) mutate
		// stored transients during assembly, so each path gets its own.
		oldSrc, oldReq := buildSource(sc)
		newSrc, newReq := buildSource(sc)
		oldResp := oldSrc.handleSyncRequestReference(reqClone(oldReq))
		newResp := newSrc.HandleSyncRequest(reqClone(newReq))
		if err := sameResponse(oldResp, newResp); err != nil {
			t.Logf("scenario %+v: %v", sc, err)
			return false
		}
		// The side effects must also agree: stores identical after assembly.
		oldEntries, newEntries := oldSrc.store.Entries(), newSrc.store.Entries()
		if len(oldEntries) != len(newEntries) {
			t.Logf("scenario %+v: store length diverged", sc)
			return false
		}
		for i := range oldEntries {
			if oldEntries[i].Item.ID != newEntries[i].Item.ID ||
				fmt.Sprint(oldEntries[i].Transient) != fmt.Sprint(newEntries[i].Transient) {
				t.Logf("scenario %+v: store entry %d diverged", sc, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHandleSyncRequestDifferentialEdgeBudgets hits the budget boundaries
// quick.Check may miss: MaxItems=1 (the paper's Fig. 9 constraint), a byte
// budget below one item, and both budgets binding at once.
func TestHandleSyncRequestDifferentialEdgeBudgets(t *testing.T) {
	cases := []diffScenario{
		{seed: 1, policy: 1, items: 50, maxItems: 1},
		{seed: 2, policy: 1, items: 50, maxBytes: 1},
		{seed: 3, policy: 1, items: 50, maxBytes: 1, strictBytes: true},
		{seed: 4, policy: 2, items: 80, maxItems: 1, maxBytes: 64},
		{seed: 5, policy: 3, items: 80, maxItems: 3, maxBytes: 200, tombFrac: 20},
		{seed: 6, policy: 0, items: 40, maxItems: 1, wideFilter: true},
		{seed: 7, policy: 1, items: 60, maxBytes: 63, strictBytes: true},
		{seed: 8, policy: 2, items: 100, maxItems: 100},
		{seed: 9, policy: 1, items: 30, maxItems: 30, wideFilter: true, knownFrac: 50},
		{seed: 10, policy: 1, items: 1, maxItems: 1, maxBytes: 64},
	}
	for _, sc := range cases {
		oldSrc, oldReq := buildSource(sc)
		newSrc, newReq := buildSource(sc)
		oldResp := oldSrc.handleSyncRequestReference(reqClone(oldReq))
		newResp := newSrc.HandleSyncRequest(reqClone(newReq))
		if err := sameResponse(oldResp, newResp); err != nil {
			t.Errorf("scenario %+v: %v", sc, err)
		}
	}
}

// TestHandleSyncRequestAllocsSublinear is the regression guard for the
// MaxItems=1 hot path: allocation count must not grow with store size (the
// old path allocated a slice element per store entry just to throw almost
// all of them away).
func TestHandleSyncRequestAllocsSublinear(t *testing.T) {
	measure := func(n int) float64 {
		src := New(Config{
			ID:           "src",
			OwnAddresses: []string{"addr:src"},
			Policy:       epidemic.New(64),
		})
		for i := 0; i < n; i++ {
			src.CreateItem(item.Metadata{
				Source:       "addr:src",
				Destinations: []string{fmt.Sprintf("addr:%d", i%4)},
				Kind:         "message",
			}, nil)
		}
		tgt := New(Config{ID: "tgt", OwnAddresses: []string{"addr:0"}, Policy: epidemic.New(64)})
		req := tgt.MakeSyncRequest(1)
		req.Knowledge = vclock.NewKnowledge()
		return testing.AllocsPerRun(20, func() {
			src.HandleSyncRequest(req)
		})
	}
	small, large := measure(500), measure(5000)
	if small == 0 {
		t.Fatalf("suspicious zero-alloc measurement")
	}
	// A 10x store must not cost anywhere near 10x the allocations; allow 2x
	// for noise.
	if large > 2*small {
		t.Errorf("allocations grew with store size: %v at 500 entries, %v at 5000", small, large)
	}
}
