package replica

import (
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/vclock"
)

// tick is a settable test clock.
type tick struct{ t int64 }

func (c *tick) now() int64 { return c.t }

func expiringNode(id, addr string, clk *tick) *Replica {
	return New(Config{
		ID:           vclock.ReplicaID("n-" + id),
		OwnAddresses: []string{addr},
		Policy:       floodPolicy{},
		Now:          clk.now,
	})
}

func sendExpiring(r *Replica, from, to string, created, expires int64) *item.Item {
	return r.CreateItem(item.Metadata{
		Source:       from,
		Destinations: []string{to},
		Kind:         "message",
		Created:      created,
		Expires:      expires,
	}, nil)
}

func TestExpiredItemsNotTransmitted(t *testing.T) {
	clk := &tick{}
	a := expiringNode("a", "addr:a", clk)
	b := expiringNode("b", "addr:b", clk)
	sendExpiring(a, "addr:a", "addr:b", 0, 100)
	clk.t = 100 // lifetime passed
	res := Sync(a, b, 0)
	if res.Sent != 0 {
		t.Errorf("expired message transmitted: %+v", res)
	}
}

func TestExpiredItemsNotDeliveredOnArrival(t *testing.T) {
	clk := &tick{}
	a := expiringNode("a", "addr:a", clk)
	b := expiringNode("b", "addr:b", clk)
	msg := sendExpiring(a, "addr:a", "addr:b", 0, 100)
	// The batch is assembled while alive, but expiry hits before it applies
	// (e.g. a long transfer): the receiver must drop it.
	req := b.MakeSyncRequest(0)
	resp := a.HandleSyncRequest(req)
	if len(resp.Items) != 1 {
		t.Fatalf("setup: expected 1 item, got %d", len(resp.Items))
	}
	clk.t = 100
	st := b.ApplyBatch(resp)
	if st.Expired != 1 || st.Delivered != 0 {
		t.Errorf("apply stats: %+v", st)
	}
	if b.HasItem(msg.ID) {
		t.Error("expired item stored")
	}
	// The version is known: a later re-offer is impossible.
	if !b.Knowledge().Contains(msg.Version) {
		t.Error("expired version must still enter knowledge")
	}
}

func TestLiveItemsDeliverBeforeExpiry(t *testing.T) {
	clk := &tick{}
	a := expiringNode("a", "addr:a", clk)
	b := expiringNode("b", "addr:b", clk)
	sendExpiring(a, "addr:a", "addr:b", 0, 100)
	clk.t = 99
	res := Sync(a, b, 0)
	if res.Apply.Delivered != 1 {
		t.Errorf("live message should deliver: %+v", res)
	}
}

func TestPurgeExpired(t *testing.T) {
	clk := &tick{}
	a := expiringNode("a", "addr:a", clk)
	rel := expiringNode("r", "addr:r", clk)
	own := sendExpiring(a, "addr:a", "addr:z", 0, 100)
	Sync(a, rel, 0) // relay holds a copy
	clk.t = 200
	if n := rel.PurgeExpired(); n != 1 {
		t.Errorf("purged %d, want 1", n)
	}
	if rel.HasItem(own.ID) {
		t.Error("expired relay copy survived purge")
	}
	// The sender keeps its own record.
	if n := a.PurgeExpired(); n != 0 {
		t.Errorf("sender purged %d of its own items", n)
	}
	if !a.HasItem(own.ID) {
		t.Error("sender's local copy must survive purge")
	}
}

func TestNoClockMeansNoExpiry(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}})
	a.CreateItem(item.Metadata{
		Source: "addr:a", Destinations: []string{"addr:b"},
		Kind: "message", Expires: 1,
	}, nil)
	res := Sync(a, b, 0)
	if res.Apply.Delivered != 1 {
		t.Error("without a clock, expiry must be disabled")
	}
	if a.PurgeExpired() != 0 {
		t.Error("purge without a clock must be a no-op")
	}
}

func TestZeroExpiresNeverExpires(t *testing.T) {
	clk := &tick{t: 1 << 40}
	a := expiringNode("a", "addr:a", clk)
	b := expiringNode("b", "addr:b", clk)
	sendExpiring(a, "addr:a", "addr:b", 0, 0)
	if res := Sync(a, b, 0); res.Apply.Delivered != 1 {
		t.Error("Expires=0 must mean no lifetime bound")
	}
}
