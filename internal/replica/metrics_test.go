package replica

import (
	"testing"

	"replidtn/internal/obs"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/vclock"
)

func newMeteredNode(id string, m *obs.ReplicaMetrics, sm *obs.StoreMetrics, addrs ...string) *Replica {
	return New(Config{
		ID:           vclock.ReplicaID(id),
		OwnAddresses: addrs,
		Policy:       epidemic.New(10),
		Metrics:      m,
		StoreMetrics: sm,
	})
}

func TestMetricsMirrorSyncActivity(t *testing.T) {
	m := &obs.ReplicaMetrics{}
	sm := &obs.StoreMetrics{}
	a := newMeteredNode("a", m, nil, "addr:a")
	b := newMeteredNode("b", m, sm, "addr:b")

	send(a, "addr:a", "addr:b")
	send(a, "addr:a", "addr:c") // relayed at b
	res := Sync(a, b, 0)
	if res.Sent != 2 {
		t.Fatalf("Sent = %d, want 2", res.Sent)
	}

	snap := m.Snapshot()
	if snap.SyncsInitiated != 1 || snap.SyncsServed != 1 {
		t.Errorf("syncs initiated/served = %d/%d, want 1/1", snap.SyncsInitiated, snap.SyncsServed)
	}
	if snap.ItemsSent != 2 || snap.ItemsApplied != 2 {
		t.Errorf("items sent/applied = %d/%d, want 2/2", snap.ItemsSent, snap.ItemsApplied)
	}
	if snap.Stored != 1 || snap.Relayed != 1 || snap.Delivered != 1 {
		t.Errorf("stored/relayed/delivered = %d/%d/%d, want 1/1/1",
			snap.Stored, snap.Relayed, snap.Delivered)
	}
	if snap.BatchesApplied != 1 || snap.BatchItems.Count != 1 || snap.BatchItems.Sum != 2 {
		t.Errorf("batches = %d, batch-items count/sum = %d/%d, want 1, 1/2",
			snap.BatchesApplied, snap.BatchItems.Count, snap.BatchItems.Sum)
	}
	if snap.Duplicates != 0 {
		t.Errorf("Duplicates = %d, want 0 (at-most-once)", snap.Duplicates)
	}
	if got, want := snap.KnowledgeSize, int64(b.Knowledge().Size()); got != want {
		t.Errorf("KnowledgeSize = %d, want %d", got, want)
	}

	// Store gauges were threaded through Config.StoreMetrics to b's store.
	if sm.Live.Value() != 2 || sm.Relay.Value() != 1 {
		t.Errorf("store gauges live/relay = %d/%d, want 2/1", sm.Live.Value(), sm.Relay.Value())
	}

	// Tombstone replication shows up in the tombstone counter.
	msg := b.Items()[0]
	if _, err := b.DeleteItem(msg.ID); err != nil {
		t.Fatalf("DeleteItem: %v", err)
	}
	Sync(b, a, 0)
	if got := m.Snapshot().Tombstones; got != 1 {
		t.Errorf("Tombstones = %d, want 1", got)
	}
}

func TestMetricsCountAbortedSyncs(t *testing.T) {
	m := &obs.ReplicaMetrics{}
	a := newMeteredNode("a", m, nil, "addr:a")
	b := newMeteredNode("b", m, nil, "addr:b")
	for i := 0; i < 3; i++ {
		send(a, "addr:a", "addr:b")
	}
	res := EncounterLink(a, b, Budget{}, Link{Cutoff: 1})
	if !res.AtoB.Aborted {
		t.Fatalf("link cutoff should abort the first leg: %+v", res)
	}
	snap := m.Snapshot()
	if snap.SyncsAborted != 1 {
		t.Errorf("SyncsAborted = %d, want 1", snap.SyncsAborted)
	}
	if snap.BatchesApplied != 0 || snap.ItemsApplied != 0 {
		t.Errorf("aborted sync must apply nothing: batches=%d items=%d",
			snap.BatchesApplied, snap.ItemsApplied)
	}
}

func TestMetricsCountEvictions(t *testing.T) {
	m := &obs.ReplicaMetrics{}
	a := newMeteredNode("a", nil, nil, "addr:a")
	b := New(Config{ // two relay items against capacity 1
		ID:            "b",
		OwnAddresses:  []string{"addr:b"},
		Policy:        epidemic.New(10),
		RelayCapacity: 1,
		Metrics:       m,
	})
	send(a, "addr:a", "addr:c")
	send(a, "addr:a", "addr:d")
	Sync(a, b, 0)
	snap := m.Snapshot()
	if snap.Relayed != 2 || snap.Evictions != 1 {
		t.Errorf("relayed/evictions = %d/%d, want 2/1", snap.Relayed, snap.Evictions)
	}
}

func TestMetricsDisabledChangesNothing(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	send(a, "addr:a", "addr:b")
	res := Sync(a, b, 0)
	if res.Sent != 1 || res.Apply.Stored != 1 {
		t.Fatalf("sync without metrics should behave identically: %+v", res)
	}
}
