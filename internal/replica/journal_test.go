package replica

import (
	"strings"
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/item"
)

// journalRecorder collects emitted batches for assertions.
type journalRecorder struct {
	batches [][]Mutation
}

func (j *journalRecorder) record(muts []Mutation) {
	j.batches = append(j.batches, muts)
}

func (j *journalRecorder) kinds() []MutKind {
	var out []MutKind
	for _, b := range j.batches {
		for _, m := range b {
			out = append(out, m.Kind)
		}
	}
	return out
}

func TestJournalCreateEmitsLearnAndPut(t *testing.T) {
	r := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	var rec journalRecorder
	r.Journal(rec.record)

	it := r.CreateItem(item.Metadata{Destinations: []string{"addr:b"}}, []byte("x"))
	if len(rec.batches) != 1 {
		t.Fatalf("got %d batches, want 1 (a public op is one batch)", len(rec.batches))
	}
	batch := rec.batches[0]
	var sawLearn, sawPut bool
	for _, m := range batch {
		switch m.Kind {
		case MutLearn:
			sawLearn = true
			if len(m.Versions) != 1 || m.Versions[0] != it.Version {
				t.Errorf("MutLearn versions %v, want [%v]", m.Versions, it.Version)
			}
			if m.Seq == 0 {
				t.Error("MutLearn carries zero Seq")
			}
		case MutPut:
			sawPut = true
			if m.Entry == nil || m.Entry.Item.ID != it.ID {
				t.Errorf("MutPut entry %+v, want item %s", m.Entry, it.ID)
			}
		}
	}
	if !sawLearn || !sawPut {
		t.Errorf("batch kinds %v, want both learn and put", rec.kinds())
	}
}

func TestJournalBatchNeverSplitsAnOperation(t *testing.T) {
	// An ApplyBatch touching several items must land in ONE journal batch:
	// that boundary is what lets a WAL persist operations atomically through
	// torn tails.
	src := New(Config{ID: "src", OwnAddresses: []string{"addr:src"}})
	for i := 0; i < 4; i++ {
		src.CreateItem(item.Metadata{Destinations: []string{"addr:dst"}}, []byte{byte(i)})
	}
	dst := New(Config{ID: "dst", OwnAddresses: []string{"addr:dst"}})
	var rec journalRecorder
	dst.Journal(rec.record)

	resp := src.HandleSyncRequest(dst.MakeSyncRequest(0))
	dst.ApplyBatch(resp)

	if len(rec.batches) != 1 {
		t.Fatalf("ApplyBatch emitted %d batches, want 1", len(rec.batches))
	}
	var puts int
	for _, m := range rec.batches[0] {
		if m.Kind == MutPut {
			puts++
		}
	}
	if puts != 4 {
		t.Errorf("batch has %d puts, want 4", puts)
	}
}

func TestJournalCoversEveryKind(t *testing.T) {
	env := struct{ now int64 }{now: 1000}
	r := New(Config{
		ID:             "a",
		OwnAddresses:   []string{"alice"},
		RelayCapacity:  2,
		MergeKnowledge: true,
		Now:            func() int64 { return env.now },
	})
	peer := New(Config{
		ID:           "b",
		OwnAddresses: []string{"bob"},
		Filter:       filter.NewAddresses("alice", "bob", "carol"),
	})
	var rec journalRecorder
	r.Journal(rec.record)

	r.CreateItem(item.Metadata{Destinations: []string{"alice"}}, []byte("mine"))
	peer.CreateItem(item.Metadata{Destinations: []string{"alice"}, Created: env.now, Expires: env.now + 10}, []byte("theirs"))
	r.ApplyBatch(peer.HandleSyncRequest(r.MakeSyncRequest(0)))
	r.SetIdentity([]string{"alice", "carol"}, nil)
	env.now += 100
	r.PurgeExpired()

	seen := map[MutKind]bool{}
	for _, k := range rec.kinds() {
		seen[k] = true
	}
	for _, k := range []MutKind{MutPut, MutRemove, MutLearn, MutMerge, MutIdentity} {
		if !seen[k] {
			t.Errorf("kind %v never journaled by the workload", k)
		}
	}
}

func TestJournalIdentityCarriesFilterAddresses(t *testing.T) {
	r := New(Config{ID: "a", OwnAddresses: []string{"alice"}})
	var rec journalRecorder
	r.Journal(rec.record)

	r.SetIdentity([]string{"alice"}, filter.NewAddresses("alice", "zed"))
	var m *Mutation
	for _, b := range rec.batches {
		for i := range b {
			if b[i].Kind == MutIdentity {
				m = &b[i]
			}
		}
	}
	if m == nil {
		t.Fatal("no MutIdentity emitted")
	}
	if len(m.Own) != 1 || m.Own[0] != "alice" {
		t.Errorf("Own = %v", m.Own)
	}
	if len(m.FilterAddrs) != 2 {
		t.Errorf("FilterAddrs = %v, want the address filter's list", m.FilterAddrs)
	}
}

func TestJournalUnregisterStopsDelivery(t *testing.T) {
	r := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	var rec journalRecorder
	r.Journal(rec.record)
	r.CreateItem(item.Metadata{}, []byte("one"))
	n := len(rec.batches)
	r.Journal(nil)
	r.CreateItem(item.Metadata{}, []byte("two"))
	if len(rec.batches) != n {
		t.Errorf("mutations delivered after unregister: %d batches, want %d", len(rec.batches), n)
	}
}

func TestJournalRunsOutsideReplicaLock(t *testing.T) {
	// The callback must be able to read the replica — the WAL backend reads
	// PolicyState and snapshots inside flush handling. If emission happened
	// under r.mu this would deadlock, which is exactly what dtnlint's
	// callbackunderlock check and this test guard against.
	r := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	calls := 0
	r.Journal(func([]Mutation) {
		calls++
		if _, err := r.PolicyState(); err != nil {
			t.Errorf("PolicyState inside journal callback: %v", err)
		}
		if r.Items() == nil && calls > 1 {
			t.Error("Items inside journal callback returned nil after first create")
		}
	})
	r.CreateItem(item.Metadata{}, []byte("x"))
	r.CreateItem(item.Metadata{}, []byte("y"))
	if calls != 2 {
		t.Errorf("callback ran %d times, want 2", calls)
	}
}

func TestJournalRestoreSnapshotNotJournaled(t *testing.T) {
	src := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	src.CreateItem(item.Metadata{}, []byte("x"))
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	var rec journalRecorder
	r.Journal(rec.record)
	if err := r.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if len(rec.batches) != 0 {
		t.Errorf("RestoreSnapshot journaled %d batches; restore is wholesale, not a mutation", len(rec.batches))
	}
}

func TestMutKindString(t *testing.T) {
	for _, k := range []MutKind{MutPut, MutRemove, MutLearn, MutMerge, MutIdentity} {
		if s := k.String(); strings.HasPrefix(s, "mutkind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := MutKind(99).String(); s != "mutkind(99)" {
		t.Errorf("unknown kind String() = %q", s)
	}
}
