package replica

import (
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/vclock"
)

// fullNode is an All-filter replica used by the conflict tests, so updates
// replicate everywhere.
func fullNode(id string) *Replica {
	return New(Config{
		ID:           vclock.ReplicaID(id),
		OwnAddresses: []string{"addr:" + id},
		Filter:       filter.All{},
	})
}

func TestConcurrentUpdatesConvergeDeterministically(t *testing.T) {
	a := fullNode("a")
	b := fullNode("b")
	c := fullNode("c")
	msg := send(a, "addr:a", "addr:c")
	Sync(a, b, 0)
	Sync(a, c, 0)

	// a and b update concurrently (no sync in between).
	if _, err := a.UpdateItem(msg.ID, []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.UpdateItem(msg.ID, []byte("from-b")); err != nil {
		t.Fatal(err)
	}

	// Propagate both versions everywhere, in different orders per node.
	Sync(a, c, 0)
	Sync(b, c, 0)
	Sync(b, a, 0)
	Sync(a, b, 0)
	Sync(c, a, 0)
	Sync(c, b, 0)

	pa := string(a.Entry(msg.ID).Item.Payload)
	pb := string(b.Entry(msg.ID).Item.Payload)
	pc := string(c.Entry(msg.ID).Item.Payload)
	if pa != pb || pb != pc {
		t.Fatalf("replicas diverged: a=%q b=%q c=%q", pa, pb, pc)
	}
	// The deterministic winner is the higher (seq, replica) version: a's
	// update is its second local version (a:2) while b's is its first (b:1),
	// so a's wins on sequence number at every replica.
	if pa != "from-a" {
		t.Errorf("winner = %q, want from-a (deterministic order)", pa)
	}
	// Both versions are known everywhere; no further transfers happen.
	for _, nd := range []*Replica{a, b, c} {
		for _, other := range []*Replica{a, b, c} {
			if nd == other {
				continue
			}
			if res := Sync(nd, other, 0); res.Sent != 0 {
				t.Errorf("post-convergence sync moved %d items", res.Sent)
			}
		}
	}
}

func TestConcurrentUpdateAndDelete(t *testing.T) {
	a := fullNode("a")
	b := fullNode("b")
	msg := send(a, "addr:a", "addr:x")
	Sync(a, b, 0)

	// a updates (version a:2), b deletes (version b:1), concurrently. The
	// update wins on sequence number; both replicas must agree.
	if _, err := a.UpdateItem(msg.ID, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DeleteItem(msg.ID); err != nil {
		t.Fatal(err)
	}
	Sync(a, b, 0)
	Sync(b, a, 0)

	ea, eb := a.Entry(msg.ID), b.Entry(msg.ID)
	if ea == nil || eb == nil {
		t.Fatal("entries must remain on both replicas")
	}
	if ea.Item.Deleted != eb.Item.Deleted {
		t.Fatalf("divergent tombstone state: a=%v b=%v", ea.Item.Deleted, eb.Item.Deleted)
	}
	if ea.Item.Deleted {
		t.Error("the higher-sequence update should prevail over the delete")
	}
	if string(ea.Item.Payload) != "updated" || string(eb.Item.Payload) != "updated" {
		t.Errorf("payloads: a=%q b=%q", ea.Item.Payload, eb.Item.Payload)
	}
}
