package replica

import (
	"fmt"
	"sort"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// This file is the replica's mutation journal: an incremental feed of every
// durable-state change, built for write-ahead-log persistence backends
// (internal/persist/wal). Where Snapshot captures the whole state at O(store)
// cost, the journal emits each mutation once, at O(change) cost, so a backend
// can persist a live replica without ever rescanning it.
//
// Scope: the journal covers exactly the state Snapshot captures as a
// consequence of explicit mutations — store entries (with their arrival
// order), knowledge, the local version counter, and the identity
// (addresses/filter). Two Snapshot-visible things are deliberately outside
// it: routing-policy state, which policies mutate on their own schedule
// (including from outside any replica method, e.g. PROPHET aging in
// discovery) and which backends therefore checkpoint wholesale, and in-place
// transient tweaks a policy makes to *stored* entries while serving a sync
// (epidemic's lazy TTL initialization). Both are routing hints, not
// replicated data: losing them to a crash can change forwarding efficiency
// but never violates at-most-once delivery, which knowledge alone enforces.

// MutKind discriminates journal mutations.
type MutKind uint8

const (
	// MutPut records that a store entry became current (insert or replace).
	MutPut MutKind = iota + 1
	// MutRemove records that a store entry left the store (explicit removal,
	// expiry purge, or capacity eviction).
	MutRemove
	// MutLearn records versions folded into knowledge, together with the
	// local version counter after the operation.
	MutLearn
	// MutMerge records a wholesale knowledge replacement (the Cimbiosys
	// knowledge-merge optimization); Knowledge holds the merged result.
	MutMerge
	// MutIdentity records a SetIdentity call: new delivery addresses and,
	// when the new filter is an address filter, its address list.
	MutIdentity
)

// String names the kind for diagnostics.
func (k MutKind) String() string {
	switch k {
	case MutPut:
		return "put"
	case MutRemove:
		return "remove"
	case MutLearn:
		return "learn"
	case MutMerge:
		return "merge"
	case MutIdentity:
		return "identity"
	}
	return fmt.Sprintf("mutkind(%d)", uint8(k))
}

// Mutation is one journaled durable-state change. Exactly the fields named
// by Kind are meaningful; the rest stay zero.
type Mutation struct {
	Kind MutKind
	// Entry is the deep-copied entry that became current (MutPut).
	Entry *store.EntrySnapshot
	// ID identifies the removed entry (MutRemove).
	ID item.ID
	// Versions are the versions folded into knowledge (MutLearn).
	Versions []vclock.Version
	// Knowledge is the binary-marshaled merged knowledge (MutMerge). A nil
	// Knowledge on a MutMerge marks a marshal failure: the journal stream is
	// broken and a backend must surface the corruption instead of replaying
	// past it.
	Knowledge []byte
	// Own and FilterAddrs are the new identity (MutIdentity). A nil
	// FilterAddrs means the filter is not an address filter and survives
	// restarts via configuration, exactly like Snapshot.FilterAddresses.
	Own, FilterAddrs []string
	// Seq is the local version counter after the operation (MutLearn).
	Seq uint64
	// NextArrival is the store's arrival counter after the operation
	// (MutPut, MutRemove).
	NextArrival uint64
}

// Journal registers fn to receive every durable mutation this replica
// performs, batched per public operation: one call per CreateItem,
// UpdateItem, DeleteItem, ApplyBatch, SetIdentity, or PurgeExpired that
// changed anything, carrying that operation's mutations in occurrence order.
// Concurrent operations may coalesce into one batch but a batch boundary
// never splits an operation, so persisting whole batches atomically
// preserves operation atomicity (an ApplyBatch is all-or-nothing even
// through a torn log tail). Replaying all batches in emission order against
// empty state rebuilds the replica's durable state exactly (see the
// Snapshot-equivalence property test in internal/persist/wal).
//
// fn runs after the replica lock is released, so it may block or read the
// replica (e.g. PolicyState) freely — but it must not call a mutating
// replica method, which would re-enter the emission path and deadlock.
// A batch is emitted exactly once, and emission order equals mutation
// order even under concurrent mutators. A nil fn unregisters. Register
// before the replica sees traffic; mutations performed before registration
// are not replayed. RestoreSnapshot is wholesale replacement, not a
// mutation, and is never journaled — a backend re-registers after restore.
func (r *Replica) Journal(fn func([]Mutation)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = fn
	r.pending = nil
	if fn == nil {
		r.store.Journal(nil)
		r.hasJournal.Store(false)
		return
	}
	r.store.Journal(func(op store.JournalOp) {
		if op.Put != nil {
			r.pending = append(r.pending, Mutation{Kind: MutPut, Entry: op.Put, NextArrival: op.NextArrival})
		} else {
			r.pending = append(r.pending, Mutation{Kind: MutRemove, ID: op.Remove, NextArrival: op.NextArrival})
		}
	})
	r.hasJournal.Store(true)
}

// journalLearnLocked appends a MutLearn for versions just folded into
// knowledge. Callers hold r.mu and have already updated r.know and r.seq.
// The variadic slice is owned by this call — every caller passes a fresh
// variadic literal or AllVersions' fresh return — so it is retained without
// a defensive copy (one fewer allocation on the journaled create hot path).
func (r *Replica) journalLearnLocked(versions ...vclock.Version) {
	if !r.hasJournal.Load() {
		return
	}
	r.pending = append(r.pending, Mutation{
		Kind:     MutLearn,
		Versions: versions,
		Seq:      r.seq,
	})
}

// journalMergeLocked appends a MutMerge carrying the post-merge knowledge.
func (r *Replica) journalMergeLocked() {
	if !r.hasJournal.Load() {
		return
	}
	know, err := r.know.MarshalBinary()
	if err != nil {
		// A nil Knowledge poisons the journal stream deliberately: the
		// backend refuses to recover past it rather than silently losing the
		// merge (see Mutation.Knowledge).
		know = nil
	}
	r.pending = append(r.pending, Mutation{Kind: MutMerge, Knowledge: know})
}

// journalIdentityLocked appends a MutIdentity for the current identity.
func (r *Replica) journalIdentityLocked() {
	if !r.hasJournal.Load() {
		return
	}
	m := Mutation{Kind: MutIdentity, Own: r.ownAddressesLocked()}
	if af, ok := r.filter.(*filter.Addresses); ok {
		m.FilterAddrs = af.List()
	}
	r.pending = append(r.pending, m)
}

// ownAddressesLocked returns the delivery addresses in sorted order.
func (r *Replica) ownAddressesLocked() []string {
	out := make([]string, 0, len(r.own))
	for a := range r.own {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// emitJournal delivers the pending mutation batch to the registered journal
// callback. Mutating methods arrange for it to run after their deferred
// unlock (defer it first), so the callback never executes inside the
// replica's critical section; a dedicated emission lock keeps delivery order
// equal to mutation order when several goroutines mutate concurrently.
func (r *Replica) emitJournal() {
	if !r.hasJournal.Load() {
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	r.mu.Lock()
	muts := r.pending
	r.pending = nil
	fn := r.journal
	r.mu.Unlock()
	if fn != nil && len(muts) > 0 {
		fn(muts)
	}
}

// PolicyState returns the routing policy's serialized durable state, or nil
// when the policy is stateless or absent — the per-checkpoint complement to
// the incremental journal (see the scope note at the top of this file).
func (r *Replica) PolicyState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policyStateLocked()
}

// policyStateLocked serializes the routing policy's durable state under r.mu.
func (r *Replica) policyStateLocked() ([]byte, error) {
	p, ok := r.policy.(routing.Persistent)
	if !ok {
		return nil, nil
	}
	state, err := p.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("replica %s: snapshot policy: %w", r.id, err)
	}
	return state, nil
}
