package replica

import (
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// This file implements the compact knowledge summary mode of the sync
// protocol (protocol v2). The paper's Fig. 4 exchange opens every sync with
// the target's full knowledge frame; at large replica counts that frame —
// not the item batch — dominates per-encounter bytes. Summary mode replaces
// it with one of two compact representations, both of which degrade to an
// exact-knowledge fallback round rather than ever changing what the batch
// delivers:
//
//   - Delta knowledge, for recurring peer pairs: the target remembers the
//     knowledge frontier it last sent this source and ships only what it
//     learned since, tagged with its (epoch, generation) so a restarted
//     source — or any lost frame — is detected by strict tag matching and
//     answered with a full resync demand instead of a stale baseline.
//
//   - Bloom digest, for first contact with an already-large knowledge: the
//     base vector travels exactly, the exception set as a Bloom filter
//     (sized per Marandi et al., see vclock.Digest). The source aborts to
//     the fallback round on the first candidate the filter cannot decide,
//     so a false positive can never suppress a transmission.
//
// Either way the served batch is provably identical to the one an exact
// knowledge frame would have produced, which is what lets the differential
// suite require bit-identical delivery results with summaries on and off.

// peerFrontier is target-side state: the knowledge this replica last shipped
// to a given source, and the generation number of that frame within the
// current epoch. The next frame to the same source is the diff against know.
// use is the replica's useTick at the last touch, for LRU eviction.
type peerFrontier struct {
	use  uint64
	gen  uint64
	know *vclock.Knowledge
}

func (f *peerFrontier) lastUse() uint64 { return f.use }

// peerBaseline is source-side state: the exact knowledge a given target last
// established here (via a tagged full frame), advanced by each delta frame
// whose (epoch, gen) tags match strictly. use is the replica's useTick at
// the last touch, for LRU eviction.
type peerBaseline struct {
	use   uint64
	epoch uint64
	gen   uint64
	know  *vclock.Knowledge
}

func (b *peerBaseline) lastUse() uint64 { return b.use }

// evictOldestLocked drops least-recently-used entries from a per-peer
// summary cache until it has room for one more under limit. Peer IDs are
// self-declared over the transport, so these maps must stay bounded no
// matter how many identities a hostile dialer invents; each entry pins a
// knowledge clone. Eviction never affects correctness — an evicted pair
// pays one tagged full frame (frontier side) or one NeedKnowledge fallback
// round (baseline side) at its next encounter. The linear scan only runs
// when a new peer arrives with the cache full, and limit is small.
func evictOldestLocked[E interface{ lastUse() uint64 }](m map[vclock.ReplicaID]E, limit int) {
	for len(m) >= limit {
		var oldest vclock.ReplicaID
		first := true
		var min uint64
		for id, e := range m {
			if first || e.lastUse() < min {
				first, min, oldest = false, e.lastUse(), id
			}
		}
		delete(m, oldest)
	}
}

// stampUseLocked advances the recency clock and returns the new stamp.
func (r *Replica) stampUseLocked() uint64 {
	r.useTick++
	return r.useTick
}

// SummariesEnabled reports whether this replica initiates syncs in summary
// mode. Fixed at construction; the in-process session drivers and the
// transport's v2 encounters consult it to pick the request form.
func (r *Replica) SummariesEnabled() bool { return r.summaries }

// Epoch returns the replica's incarnation number (1 for a fresh replica,
// bumped by every snapshot restore). Exposed for tests and diagnostics.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// MakeSummaryRequest builds the request this replica sends when initiating a
// synchronization in summary mode (acting as target). The knowledge frame is
// chosen per peer: a delta once a frontier exists for the peer, a Bloom
// digest on first contact when the exception set is already large, and an
// exact (epoch/gen-tagged) full frame otherwise — the tagged frame is what
// establishes the frontier that upgrades the pair to deltas.
func (r *Replica) MakeSummaryRequest(peer vclock.ReplicaID, maxItems int) *SyncRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.SyncsInitiated++
	if r.metrics != nil {
		r.metrics.SyncsInitiated.Inc()
		r.metrics.KnowledgeSize.Set(int64(r.know.Size()))
	}
	req := &SyncRequest{TargetID: r.id, Filter: r.filter, MaxItems: maxItems}
	if r.policy != nil {
		req.Routing = r.policy.GenerateReq()
	}
	switch {
	case r.frontiers[peer] != nil:
		f := r.frontiers[peer]
		f.use = r.stampUseLocked()
		changes := r.know.DiffSince(f.know)
		f.gen++
		f.know = r.know.Clone()
		req.Delta = vclock.NewDelta(r.epoch, f.gen, changes)
		r.stats.KnowledgeDeltas++
		if r.metrics != nil {
			r.metrics.KnowledgeDeltaFrames.Inc()
			r.metrics.KnowledgeDeltaBytes.Add(int64(req.Delta.WireSize()))
		}
	case r.know.ExceptionCount() >= r.digestMin:
		req.Digest = r.know.Digest(r.fpRate)
		r.stats.KnowledgeDigests++
		if r.metrics != nil {
			r.metrics.KnowledgeDigestFrames.Inc()
			r.metrics.KnowledgeDigestBytes.Add(int64(req.Digest.WireSize()))
		}
	default:
		r.attachFullLocked(req, peer)
	}
	return req
}

// MakeFallbackRequest builds the exact-knowledge retry of a summary sync the
// source answered with NeedKnowledge. It reuses the first round's routing
// state verbatim — the source only processes routing when it serves a batch,
// so the policy sees the exchange exactly once, like a v1 sync — and does
// not count as a new initiated sync. The tagged full frame it carries also
// (re-)establishes the peer's frontier, so a pair that fell back resumes
// delta mode on the next encounter.
func (r *Replica) MakeFallbackRequest(peer vclock.ReplicaID, maxItems int, rt routing.Request) *SyncRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.SummaryFallbacks++
	if r.metrics != nil {
		r.metrics.SummaryFallbacks.Inc()
	}
	req := &SyncRequest{TargetID: r.id, Filter: r.filter, MaxItems: maxItems}
	if rt != nil {
		req.Routing = rt
	}
	r.attachFullLocked(req, peer)
	return req
}

// attachFullLocked puts an epoch/gen-tagged exact knowledge frame on req and
// records it as the new frontier for peer. The tag tells the source this
// frame may be cached as the delta baseline for this pair.
func (r *Replica) attachFullLocked(req *SyncRequest, peer vclock.ReplicaID) {
	f := r.frontiers[peer]
	if f == nil {
		evictOldestLocked(r.frontiers, r.peerCap)
		f = &peerFrontier{}
		r.frontiers[peer] = f
	}
	f.use = r.stampUseLocked()
	f.gen++
	f.know = r.know.Clone()
	req.Knowledge = f.know.Clone()
	req.Epoch = r.epoch
	req.Gen = f.gen
	r.stats.KnowledgeFulls++
	if r.metrics != nil {
		r.metrics.KnowledgeFullFrames.Inc()
		r.metrics.KnowledgeFullBytes.Add(int64(req.Knowledge.WireSize()))
	}
}

// resolveKnowledgeLocked recovers the target's knowledge from whichever
// representation the request carries, acting as source.
//
// It returns exactly one of know (exact knowledge — given directly or
// reconstructed from a delta against the cached baseline) or digest, or
// ok=false when the source must answer NeedKnowledge: a delta whose
// (epoch, gen) tags do not extend the cached baseline strictly — cache
// missing (we restarted, or never saw the baseline), wrong epoch (the
// target restarted), or a generation gap (a frame was lost) — is refused
// rather than merged onto a possibly-stale baseline.
func (r *Replica) resolveKnowledgeLocked(req *SyncRequest) (know *vclock.Knowledge, digest *vclock.Digest, ok bool) {
	switch {
	case req.Knowledge != nil:
		if req.Epoch != 0 {
			if r.peerKnow[req.TargetID] == nil {
				evictOldestLocked(r.peerKnow, r.peerCap)
			}
			r.peerKnow[req.TargetID] = &peerBaseline{
				use:   r.stampUseLocked(),
				epoch: req.Epoch,
				gen:   req.Gen,
				know:  req.Knowledge.Clone(),
			}
		}
		return req.Knowledge, nil, true
	case req.Delta != nil:
		c := r.peerKnow[req.TargetID]
		if c == nil || c.epoch != req.Delta.Epoch() || c.gen+1 != req.Delta.Gen() {
			return nil, nil, false
		}
		c.use = r.stampUseLocked()
		c.know.Merge(req.Delta.Changes())
		c.gen = req.Delta.Gen()
		return c.know, nil, true
	case req.Digest != nil:
		return nil, req.Digest, true
	default:
		// A v1 frame with no knowledge at all; the transport rejects this
		// before it reaches us, and in-process callers always attach one.
		// Serve against empty knowledge rather than crash on hostile input.
		return vclock.NewKnowledge(), nil, true
	}
}

// digestAmbiguousLocked pre-scans the store for a candidate the digest
// cannot decide: a version above the exact base that the Bloom filter
// reports as maybe-known. The filter has no false negatives, so with no
// such candidate, base inclusion alone answers "known?" exactly like full
// knowledge would for every stored version; with one, only an exact frame
// can keep the batch identical, so the source demands a fallback round.
// The scan does only knowledge checks — no routing-policy calls — so a
// fallback leaves policy state untouched for the retry.
func (r *Replica) digestAmbiguousLocked(d *vclock.Digest) bool {
	ambiguous := false
	r.store.Range(func(e *store.Entry) bool {
		v := e.Item.Version
		if !d.BaseIncludes(v) && d.MayHaveException(v) {
			ambiguous = true
			return false
		}
		return true
	})
	return ambiguous
}
