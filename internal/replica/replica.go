// Package replica implements the peer-to-peer filtered replication (PFR)
// substrate: a Cimbiosys-like replica holding a filtered subset of a data
// collection, synchronizing pairwise with other replicas, and guaranteeing
// eventual filter consistency together with at-most-once delivery via
// exchanged knowledge.
//
// The sync protocol follows the paper's Fig. 4. The target sends its
// knowledge, filter and policy routing state; the source returns a
// priority-ordered batch of versions unknown to the target that either match
// the target's filter or are selected by the source's pluggable DTN routing
// policy. Applying the batch folds every carried version into the target's
// knowledge, which is what makes duplicate transmission impossible by
// construction.
package replica

import (
	"fmt"
	"sync"
	"sync/atomic"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// Config configures a replica.
type Config struct {
	// ID is the unique replica identifier.
	ID vclock.ReplicaID
	// OwnAddresses are the endpoint addresses considered local for
	// application delivery (e.g. the users currently hosted by this node).
	OwnAddresses []string
	// Filter selects the items this replica stores in-filter. When nil, an
	// address filter over OwnAddresses is used.
	Filter filter.Filter
	// RelayCapacity bounds relayed (out-of-filter) live items; <= 0 means
	// unlimited. Matches the paper's storage-constrained configuration.
	RelayCapacity int
	// Eviction orders relay entries for eviction under storage pressure;
	// nil selects FIFO (the paper's strategy).
	Eviction store.EvictionStrategy
	// Policy is the optional DTN routing policy. Nil means basic filtered
	// replication: no out-of-filter forwarding.
	Policy routing.Policy
	// OnDeliver, when set, is invoked (with the replica lock held) each time
	// an item addressed to one of OwnAddresses is first stored locally, and
	// again if an address added later by SetIdentity matches a stored item.
	OnDeliver func(*item.Item)
	// OnCopies, when set, observes live-copy transitions in the local store:
	// it is invoked (with the replica lock held) as OnCopies(id, +1) when a
	// live copy of an item appears locally and OnCopies(id, -1) when one
	// disappears (tombstone, eviction, expiry purge). Summing the deltas per
	// item across replicas yields the network-wide stored-copy count without
	// ever scanning a store. Snapshot restore does not notify.
	OnCopies func(item.ID, int)
	// Now supplies the current time in seconds for message-lifetime checks;
	// nil disables expiry (items never expire).
	Now func() int64
	// Metrics, when set, mirrors sync activity into observability counters
	// (see obs.ReplicaMetrics). Nil — the default, and what the deterministic
	// emulation uses unless asked — disables the hooks at the cost of one nil
	// check per sync. A single set may be shared across replicas to aggregate.
	Metrics *obs.ReplicaMetrics
	// StoreMetrics, when set, is handed to the underlying store (see
	// store.SetMetrics); its gauges are only exact when not shared.
	StoreMetrics *obs.StoreMetrics
	// MergeKnowledge enables the Cimbiosys knowledge-merge optimization:
	// when a sync source proves its filter covers ours, adopt its whole
	// knowledge, keeping ours a compact vector. Leave it off for replicas
	// whose filters change over time (e.g. via SetIdentity): a wholesale
	// merge can claim versions the replica never stored, which a later,
	// wider filter would then silently miss.
	MergeKnowledge bool
	// SyncSummaries enables the compact knowledge summary mode (protocol
	// v2) for syncs this replica initiates: delta knowledge against the
	// frontier last sent to a recurring peer, Bloom-digest frames for first
	// contact with an already-large exception set, and an exact-knowledge
	// fallback round whenever the source cannot serve a summary exactly.
	// Delivery results are identical to full-knowledge syncs by
	// construction; only the knowledge-frame bytes change.
	SyncSummaries bool
	// SummaryFPRate is the Bloom digest's target false-positive rate; 0
	// selects vclock.DefaultDigestFPRate (1%).
	SummaryFPRate float64
	// SummaryDigestMin is the exception count below which first-contact
	// frames stay exact (a tiny exception set encodes smaller than any
	// filter, and exact frames establish delta frontiers); 0 selects 64.
	SummaryDigestMin int
	// SummaryPeerCap bounds the per-peer summary caches: delta frontiers on
	// the target side and knowledge baselines on the source side. Peer IDs
	// arrive self-declared over the transport, so unbounded maps would let a
	// hostile dialer pin a knowledge clone per invented identity; past the
	// cap the least-recently-used pair is evicted, which only costs that
	// pair one full-frame or fallback round. 0 selects 1024.
	SummaryPeerCap int
}

// defaultSummaryDigestMin is the SummaryDigestMin applied when the config
// leaves it zero: below this many exceptions a digest saves little over the
// exact encoding and would keep the pair off the delta upgrade path.
const defaultSummaryDigestMin = 64

// defaultSummaryPeerCap is the SummaryPeerCap applied when the config leaves
// it zero: generous next to any real contact graph (PR 6's fleets average
// far fewer recurring peers per node) while keeping the worst-case pinned
// state a few thousand knowledge clones, not one per identity a hostile
// dialer invents.
const defaultSummaryPeerCap = 1024

// Stats counts a replica's synchronization activity.
type Stats struct {
	// SyncsInitiated counts syncs where this replica was the target.
	SyncsInitiated int
	// SyncsServed counts syncs where this replica was the source.
	SyncsServed int
	// SyncsAborted counts syncs this replica initiated whose transfer died
	// mid-batch; the partial batch was discarded without applying anything.
	SyncsAborted int
	// ItemsSent counts batch items transmitted as source.
	ItemsSent int
	// ItemsReceived counts batch items accepted as target.
	ItemsReceived int
	// Duplicates counts received items whose version was already known; the
	// substrate guarantees this stays zero.
	Duplicates int
	// Evicted counts relay entries dropped by storage pressure.
	Evicted int
	// Delivered counts application deliveries.
	Delivered int
	// KnowledgeFulls / KnowledgeDigests / KnowledgeDeltas count the
	// knowledge frames this replica sent as sync target, by representation
	// (v1 requests always count as full frames).
	KnowledgeFulls   int
	KnowledgeDigests int
	KnowledgeDeltas  int
	// SummaryFallbacks counts summary syncs that needed an extra
	// exact-knowledge round (digest ambiguity or delta tag mismatch).
	SummaryFallbacks int
}

// Replica is one node's replica of the collection. All methods are safe for
// concurrent use.
type Replica struct {
	mu             sync.Mutex
	id             vclock.ReplicaID
	own            map[string]struct{}
	filter         filter.Filter
	policy         routing.Policy
	onDeliver      func(*item.Item)
	now            func() int64
	mergeKnowledge bool

	seq     uint64
	know    *vclock.Knowledge
	store   *store.Store
	stats   Stats
	metrics *obs.ReplicaMetrics

	// Mutation journal (see journal.go): journal receives batches, pending
	// accumulates under mu, emitMu serializes emission so delivery order
	// matches mutation order, hasJournal is the lock-free fast path that
	// keeps the unjournaled case at one atomic load per operation.
	journal    func([]Mutation)
	pending    []Mutation
	emitMu     sync.Mutex
	hasJournal atomic.Bool

	// Summary-mode (protocol v2) state; see summary.go. epoch is this
	// replica's incarnation (starts at 1, bumped by RestoreSnapshot);
	// frontiers is target-side per-peer state, peerKnow source-side.
	summaries bool
	fpRate    float64
	digestMin int
	peerCap   int
	epoch     uint64
	// useTick is a logical clock stamping every frontier/baseline touch, so
	// eviction at peerCap drops the least recently used pair.
	useTick   uint64
	frontiers map[vclock.ReplicaID]*peerFrontier
	peerKnow  map[vclock.ReplicaID]*peerBaseline
}

// New creates a replica from cfg.
func New(cfg Config) *Replica {
	f := cfg.Filter
	if f == nil {
		f = filter.NewAddresses(cfg.OwnAddresses...)
	}
	digestMin := cfg.SummaryDigestMin
	if digestMin <= 0 {
		digestMin = defaultSummaryDigestMin
	}
	peerCap := cfg.SummaryPeerCap
	if peerCap <= 0 {
		peerCap = defaultSummaryPeerCap
	}
	r := &Replica{
		id:             cfg.ID,
		own:            make(map[string]struct{}, len(cfg.OwnAddresses)),
		filter:         f,
		policy:         cfg.Policy,
		onDeliver:      cfg.OnDeliver,
		now:            cfg.Now,
		mergeKnowledge: cfg.MergeKnowledge,
		know:           vclock.NewKnowledge(),
		store:          store.NewWithEviction(cfg.RelayCapacity, cfg.Eviction),
		metrics:        cfg.Metrics,
		summaries:      cfg.SyncSummaries,
		fpRate:         cfg.SummaryFPRate,
		digestMin:      digestMin,
		peerCap:        peerCap,
		epoch:          1,
		frontiers:      make(map[vclock.ReplicaID]*peerFrontier),
		peerKnow:       make(map[vclock.ReplicaID]*peerBaseline),
	}
	for _, a := range cfg.OwnAddresses {
		r.own[a] = struct{}{}
	}
	if cfg.OnCopies != nil {
		r.store.LiveNotify(cfg.OnCopies)
	}
	if cfg.StoreMetrics != nil {
		r.store.SetMetrics(cfg.StoreMetrics)
	}
	return r
}

// ID returns the replica identifier.
func (r *Replica) ID() vclock.ReplicaID { return r.id }

// Policy returns the attached routing policy (nil for the basic substrate).
func (r *Replica) Policy() routing.Policy { return r.policy }

// Filter returns the replica's current filter.
func (r *Replica) Filter() filter.Filter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filter
}

// Stats returns a snapshot of the replica's counters.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// AbortSync records that a synchronization this replica initiated was
// interrupted mid-transfer and its partial batch discarded. Nothing else
// changes: the knowledge and store are exactly as they were before the sync
// began, which is what lets the next encounter resume precisely where this
// one failed. (Transactional sync: a batch applies atomically via ApplyBatch
// or, on an interrupted transfer, not at all.)
func (r *Replica) AbortSync() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.SyncsAborted++
	if r.metrics != nil {
		r.metrics.SyncsAborted.Inc()
	}
}

// Knowledge returns a copy of the replica's knowledge.
func (r *Replica) Knowledge() *vclock.Knowledge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.know.Clone()
}

// DetachStoreMetrics withdraws this replica's store contribution from a
// shared obs.StoreMetrics sink and unregisters it (no-op when none is set).
// Call it before discarding a replica whose state is restored into a
// successor sharing the same sink, so gauges are not double-counted.
func (r *Replica) DetachStoreMetrics() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store.DetachMetrics()
}

// StoreLen returns (total, live, relay) entry counts.
func (r *Replica) StoreLen() (total, live, relay int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Len(), r.store.LiveLen(), r.store.RelayLen()
}

// HasItem reports whether a live (non-tombstone) copy of the item is stored.
func (r *Replica) HasItem(id item.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.store.Get(id)
	return e != nil && !e.Item.Deleted
}

// Entry returns the stored entry for id, or nil. The entry is shared; callers
// must not mutate it.
func (r *Replica) Entry(id item.ID) *store.Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Get(id)
}

// Items returns the live in-filter items (the replica's application-visible
// collection) in deterministic order.
func (r *Replica) Items() []*item.Item {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*item.Item
	r.store.Range(func(e *store.Entry) bool {
		if !e.Item.Deleted && !e.Relay {
			out = append(out, e.Item)
		}
		return true
	})
	return out
}

// CreateItem inserts a new item into the local replica with the next local
// version. The creator always keeps its items (they are exempt from relay
// eviction), matching the paper's sender-copy semantics.
func (r *Replica) CreateItem(meta item.Metadata, payload []byte) *item.Item {
	defer r.emitJournal() // deferred before the unlock, so it runs after it
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	it := &item.Item{
		ID:      item.ID{Creator: r.id, Num: r.seq},
		Version: vclock.Version{Replica: r.id, Seq: r.seq},
		Meta:    meta,
		Payload: payload,
	}
	r.know.Add(it.Version)
	r.journalLearnLocked(it.Version)
	r.store.Put(it, nil, !r.filter.Match(it), true)
	r.maybeDeliverLocked(it)
	return it
}

// UpdateItem replaces the payload of a stored item with a new version.
func (r *Replica) UpdateItem(id item.ID, payload []byte) (*item.Item, error) {
	return r.mutate(id, func(next *item.Item) { next.Payload = payload })
}

// DeleteItem marks a stored item deleted. The tombstone replicates like any
// update, so forwarding nodes eventually discard their copies — the paper's
// "no special acknowledgements are needed" deletion story.
func (r *Replica) DeleteItem(id item.ID) (*item.Item, error) {
	return r.mutate(id, func(next *item.Item) {
		next.Deleted = true
		next.Payload = nil
	})
}

func (r *Replica) mutate(id item.ID, apply func(*item.Item)) (*item.Item, error) {
	defer r.emitJournal() // deferred before the unlock, so it runs after it
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.store.Get(id)
	if e == nil {
		return nil, fmt.Errorf("replica %s: item %s not stored", r.id, id)
	}
	prev := e.Item
	r.seq++
	next := prev.Clone()
	next.Prior = append(next.Prior, prev.Version)
	next.Version = vclock.Version{Replica: r.id, Seq: r.seq}
	apply(next)
	r.know.Add(next.Version)
	r.journalLearnLocked(next.Version)
	r.store.Put(next, e.Transient, e.Relay, e.Local)
	return next, nil
}

// SetIdentity atomically replaces the replica's delivery addresses and
// filter, rescanning the store: entries that now match the filter leave the
// relay partition, entries that no longer match (and are not local) join it,
// and stored items newly addressed to a local address are delivered. It
// returns the newly delivered items. This supports dynamic scenarios such as
// users moving between vehicular nodes from day to day.
func (r *Replica) SetIdentity(ownAddresses []string, f filter.Filter) []*item.Item {
	defer r.emitJournal() // deferred before the unlock, so it runs after it
	r.mu.Lock()
	defer r.mu.Unlock()
	if f == nil {
		f = filter.NewAddresses(ownAddresses...)
	}
	prevOwn := r.own
	r.filter = f
	r.own = make(map[string]struct{}, len(ownAddresses))
	for _, a := range ownAddresses {
		r.own[a] = struct{}{}
	}
	r.journalIdentityLocked()
	var delivered []*item.Item
	// Entries (a snapshot) rather than Range: reclassification mutates the
	// store mid-loop.
	for _, e := range r.store.Entries() {
		if r.store.Get(e.Item.ID) == nil {
			continue // evicted by an earlier reclassification in this loop
		}
		relay := !r.filter.Match(e.Item)
		if relay != e.Relay {
			evicted := len(r.store.Put(e.Item, e.Transient, relay, e.Local))
			r.stats.Evicted += evicted
			if r.metrics != nil {
				r.metrics.Evictions.Add(int64(evicted))
			}
		}
		newlyAddressed := r.addressedLocally(e.Item) && !addressedBy(prevOwn, e.Item)
		if !e.Item.Deleted && newlyAddressed && r.store.Get(e.Item.ID) != nil {
			delivered = append(delivered, e.Item)
			r.deliverLocked(e.Item)
		}
	}
	return delivered
}

func addressedBy(own map[string]struct{}, it *item.Item) bool {
	for _, d := range it.Meta.Destinations {
		if _, ok := own[d]; ok {
			return true
		}
	}
	return false
}

func (r *Replica) addressedLocally(it *item.Item) bool {
	return addressedBy(r.own, it)
}

func (r *Replica) maybeDeliverLocked(it *item.Item) {
	if !it.Deleted && !r.expiredLocked(&it.Meta) && r.addressedLocally(it) {
		r.deliverLocked(it)
	}
}

// expiredLocked reports whether metadata is past its lifetime under the
// replica's clock (never, without a clock).
func (r *Replica) expiredLocked(m *item.Metadata) bool {
	//lint:allow callbackunderlock -- Config.Now is documented as a pure clock read invoked under the replica lock; it must not call back into the replica
	return r.now != nil && m.Expired(r.now())
}

// PurgeExpired removes expired live items from the store and returns how
// many were removed. Their versions stay in knowledge, so purged items are
// never re-accepted. Locally created items are kept until their senders
// delete them explicitly (applications may want the record).
func (r *Replica) PurgeExpired() int {
	defer r.emitJournal() // deferred before the unlock, so it runs after it
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.now == nil {
		return 0
	}
	// Collect first, remove second: Range walks the live index, which must
	// not be mutated mid-iteration.
	var expired []item.ID
	r.store.Range(func(e *store.Entry) bool {
		if !e.Item.Deleted && !e.Local && r.expiredLocked(&e.Item.Meta) {
			expired = append(expired, e.Item.ID)
		}
		return true
	})
	for _, id := range expired {
		r.store.Remove(id)
	}
	return len(expired)
}

func (r *Replica) deliverLocked(it *item.Item) {
	r.stats.Delivered++
	if r.onDeliver != nil {
		//lint:allow callbackunderlock -- Config.OnDeliver is documented as invoked with the replica lock held, keeping delivery ordered with batch application; re-entry is the callback's contract to avoid
		r.onDeliver(it)
	}
}
