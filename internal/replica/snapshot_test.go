package replica

import (
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/store"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, Policy: floodPolicy{}})
	own := send(a, "addr:a", "addr:b")
	relayed := send(b, "addr:b", "addr:z")
	Sync(b, a, 0) // a relays b's message

	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if !restored.HasItem(own.ID) || !restored.HasItem(relayed.ID) {
		t.Error("restored replica missing items")
	}
	if !restored.Knowledge().Equal(a.Knowledge()) {
		t.Error("knowledge mismatch after restore")
	}
	if got := restored.Filter().String(); got != a.Filter().String() {
		t.Errorf("filter after restore = %s, want %s", got, a.Filter())
	}
	if string(restored.ID()) != "a" {
		t.Error("ID accessor mismatch")
	}
	if restored.Policy() == nil {
		t.Error("Policy accessor lost the configured policy")
	}
	// The application-visible collection holds the locally created message
	// (Local entries are never relay entries) but not the relayed one.
	if items := restored.Items(); len(items) != 1 || items[0].ID != own.ID {
		t.Errorf("Items() = %v, want just the local message", items)
	}
}

func TestRestoreSnapshotRejectsMismatches(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := New(Config{ID: "other", OwnAddresses: []string{"addr:o"}})
	if err := other.RestoreSnapshot(snap); err == nil {
		t.Error("snapshot for a different replica must be rejected")
	}
	if err := a.RestoreSnapshot(nil); err == nil {
		t.Error("nil snapshot must be rejected")
	}
	snap.Knowledge = []byte{0xff}
	if err := a.RestoreSnapshot(snap); err == nil {
		t.Error("corrupt knowledge must be rejected")
	}
}

func TestSnapshotKeepsNonAddressFilter(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Filter: filter.All{}})
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.FilterAddresses != nil {
		t.Error("non-address filters must not serialize an address list")
	}
	restored := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Filter: filter.All{}})
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.Filter().(filter.All); !ok {
		t.Errorf("configured filter replaced: %T", restored.Filter())
	}
}

func TestItemsReturnsApplicationCollection(t *testing.T) {
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}})
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	msg := send(a, "addr:a", "addr:b")
	Sync(a, b, 0)
	items := b.Items()
	if len(items) != 1 || items[0].ID != msg.ID {
		t.Errorf("Items() = %v", items)
	}
}

func TestTransmitTransientHopsMerge(t *testing.T) {
	e := &store.Entry{
		Item:      &item.Item{ID: item.ID{Creator: "a", Num: 1}},
		Transient: item.Transient{}.Set(item.FieldHops, 3).Set(item.FieldTTL, 7),
	}
	// Policy returned a fresh transient without hops: hops must be merged in.
	out := transmitTransient(e, item.Transient{}.Set(item.FieldCopies, 4))
	if out.GetInt(item.FieldHops) != 3 || out.GetInt(item.FieldCopies) != 4 {
		t.Errorf("merged transient = %v", out)
	}
	if out.Has(item.FieldTTL) {
		t.Error("policy-substituted transient must not inherit other fields")
	}
	// Policy returned a transient that already sets hops: keep it.
	out = transmitTransient(e, item.Transient{}.Set(item.FieldHops, 9))
	if out.GetInt(item.FieldHops) != 9 {
		t.Errorf("explicit hops overridden: %v", out)
	}
	// No policy transient: the stored transient travels as a clone.
	out = transmitTransient(e, nil)
	if out.GetInt(item.FieldTTL) != 7 || out.GetInt(item.FieldHops) != 3 {
		t.Errorf("cloned transient = %v", out)
	}
	out.Set(item.FieldTTL, 1)
	if e.Transient.GetInt(item.FieldTTL) != 7 {
		t.Error("transmitted transient shares storage with the entry")
	}
}
