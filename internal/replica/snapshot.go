package replica

import (
	"fmt"

	"replidtn/internal/filter"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// Snapshot is the durable state of a replica: everything needed to resume
// synchronization after a restart with the substrate's guarantees intact —
// in particular the knowledge, whose persistence is what preserves
// at-most-once delivery across crashes.
type Snapshot struct {
	// ID is the replica identifier; Restore rejects mismatches.
	ID vclock.ReplicaID
	// Seq is the local version counter.
	Seq uint64
	// OwnAddresses are the delivery addresses at snapshot time.
	OwnAddresses []string
	// FilterAddresses rebuilds an address filter on restore; nil keeps the
	// configured filter (for replicas using non-address filters).
	FilterAddresses []string
	// Knowledge is the binary-marshaled learned-version set.
	Knowledge []byte
	// Entries are the stored items with their host-local state.
	Entries []store.EntrySnapshot
	// NextArrival is the store's arrival counter (drives FIFO eviction).
	NextArrival uint64
	// PolicyState is the routing policy's serialized durable state (nil when
	// the policy is stateless or absent).
	PolicyState []byte
	// Epoch is the replica incarnation at snapshot time. Restoring sets the
	// successor's epoch to Epoch+1, which invalidates every delta-knowledge
	// baseline peers may hold for this replica (summary mode tags delta
	// frames with the epoch; see summary.go). Snapshots from before this
	// field decode as 0 and restore to epoch 1 — still distinct from any
	// epoch a peer cached from the snapshotting incarnation, because that
	// incarnation ran at Epoch >= 1 and its restore lands at >= 2; a fresh
	// pre-epoch snapshot's peers cached nothing.
	Epoch uint64
}

// Snapshot captures the replica's durable state. Policies implementing
// routing.Persistent contribute their routing state.
func (r *Replica) Snapshot() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	know, err := r.know.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("replica %s: snapshot knowledge: %w", r.id, err)
	}
	entries, next := r.store.Snapshot()
	snap := &Snapshot{
		ID:           r.id,
		Seq:          r.seq,
		OwnAddresses: r.ownAddressesLocked(),
		Knowledge:    know,
		Entries:      entries,
		NextArrival:  next,
		Epoch:        r.epoch,
	}
	if af, ok := r.filter.(*filter.Addresses); ok {
		snap.FilterAddresses = af.List()
	}
	state, err := r.policyStateLocked()
	if err != nil {
		return nil, err
	}
	snap.PolicyState = state
	return snap, nil
}

// RestoreSnapshot replaces the replica's durable state from a snapshot taken
// on the same replica ID. Configuration (policy, relay capacity, callbacks)
// comes from New; the snapshot restores data. No delivery callbacks fire for
// restored items — they were delivered before the snapshot.
func (r *Replica) RestoreSnapshot(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("replica: nil snapshot")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if snap.ID != r.id {
		return fmt.Errorf("replica %s: snapshot belongs to %s", r.id, snap.ID)
	}
	know := vclock.NewKnowledge()
	if err := know.UnmarshalBinary(snap.Knowledge); err != nil {
		return fmt.Errorf("replica %s: restore knowledge: %w", r.id, err)
	}
	if err := r.store.Restore(snap.Entries, snap.NextArrival); err != nil {
		return fmt.Errorf("replica %s: restore store: %w", r.id, err)
	}
	r.know = know
	r.seq = snap.Seq
	// A restore is a new incarnation: knowledge may have moved backward to
	// the snapshot point, so every summary-mode baseline involving this
	// replica is stale. Bumping the epoch makes peers' cached baselines
	// unmatchable (they demand a full resync), and clearing our own maps
	// forgets frontiers we can no longer diff against and baselines our
	// peers will re-establish.
	r.epoch = snap.Epoch + 1
	r.frontiers = make(map[vclock.ReplicaID]*peerFrontier)
	r.peerKnow = make(map[vclock.ReplicaID]*peerBaseline)
	// A restore is wholesale replacement, never journaled; discard any
	// mutations queued before it so a re-registering backend starts clean.
	r.pending = nil
	r.own = make(map[string]struct{}, len(snap.OwnAddresses))
	for _, a := range snap.OwnAddresses {
		r.own[a] = struct{}{}
	}
	if snap.FilterAddresses != nil {
		r.filter = filter.NewAddresses(snap.FilterAddresses...)
	}
	if len(snap.PolicyState) > 0 {
		p, ok := r.policy.(routing.Persistent)
		if !ok {
			return fmt.Errorf("replica %s: snapshot has policy state but policy %T is not persistent", r.id, r.policy)
		}
		if err := p.RestoreState(snap.PolicyState); err != nil {
			return fmt.Errorf("replica %s: restore policy: %w", r.id, err)
		}
	}
	return nil
}
