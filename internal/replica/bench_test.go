package replica

import (
	"fmt"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/vclock"
)

// newBenchSource builds a source replica holding n items: every fourth item
// is addressed to the sync target (in-filter for the request), the rest are
// relay candidates selected by the epidemic policy.
func newBenchSource(b testing.TB, n int) *Replica {
	b.Helper()
	src := New(Config{
		ID:           "src",
		OwnAddresses: []string{"addr:src"},
		Policy:       epidemic.New(64),
	})
	for i := 0; i < n; i++ {
		dst := fmt.Sprintf("addr:%d", i%4)
		src.CreateItem(item.Metadata{
			Source:       "addr:src",
			Destinations: []string{dst},
			Kind:         "message",
		}, []byte("payload"))
	}
	return src
}

// benchRequest builds a sync request from an empty target: everything in the
// source store is a candidate.
func benchRequest(maxItems int) *SyncRequest {
	tgt := New(Config{
		ID:           "tgt",
		OwnAddresses: []string{"addr:0"},
		Policy:       epidemic.New(64),
	})
	req := tgt.MakeSyncRequest(maxItems)
	req.Knowledge = vclock.NewKnowledge()
	return req
}

// BenchmarkHandleSyncRequest measures batch assembly on the sync hot path at
// several store sizes, with the encounter budget both unconstrained and at
// the paper's Fig. 9 bound of one item per sync.
func BenchmarkHandleSyncRequest(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, maxItems := range []int{0, 1} {
			name := fmt.Sprintf("n=%d/maxItems=%d", n, maxItems)
			b.Run(name, func(b *testing.B) {
				src := newBenchSource(b, n)
				req := benchRequest(maxItems)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp := src.HandleSyncRequest(req)
					if len(resp.Items) == 0 {
						b.Fatal("empty batch")
					}
				}
			})
		}
	}
}

// BenchmarkMakeSyncRequest measures request construction — dominated by how
// the replica shares its knowledge with the request.
func BenchmarkMakeSyncRequest(b *testing.B) {
	src := newBenchSource(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if req := src.MakeSyncRequest(1); req == nil {
			b.Fatal("nil request")
		}
	}
}
