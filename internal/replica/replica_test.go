package replica

import (
	"fmt"
	"math/rand"
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

func newNode(id string, addrs ...string) *Replica {
	return New(Config{ID: vclock.ReplicaID(id), OwnAddresses: addrs})
}

func send(r *Replica, from, to string) *item.Item {
	return r.CreateItem(item.Metadata{
		Source:       from,
		Destinations: []string{to},
		Kind:         "message",
	}, []byte("payload"))
}

func TestDirectDelivery(t *testing.T) {
	var delivered []*item.Item
	a := newNode("a", "addr:a")
	b := New(Config{
		ID:           "b",
		OwnAddresses: []string{"addr:b"},
		OnDeliver:    func(it *item.Item) { delivered = append(delivered, it) },
	})
	msg := send(a, "addr:a", "addr:b")
	res := Sync(a, b, 0)
	if res.Sent != 1 || res.Apply.Delivered != 1 || res.Apply.Stored != 1 {
		t.Fatalf("unexpected sync result: %+v", res)
	}
	if len(delivered) != 1 || delivered[0].ID != msg.ID {
		t.Fatalf("delivery callback mismatch: %v", delivered)
	}
	if !b.HasItem(msg.ID) {
		t.Error("destination should store the message")
	}
}

func TestAtMostOnceAcrossRepeatedSyncs(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	send(a, "addr:a", "addr:b")
	for i := 0; i < 5; i++ {
		Sync(a, b, 0)
	}
	st := b.Stats()
	if st.ItemsReceived != 1 {
		t.Errorf("ItemsReceived = %d, want 1", st.ItemsReceived)
	}
	if st.Duplicates != 0 {
		t.Errorf("Duplicates = %d, want 0", st.Duplicates)
	}
	if st.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1 (exactly-once)", st.Delivered)
	}
}

func TestNoForwardingWithoutPolicy(t *testing.T) {
	a := newNode("a", "addr:a")
	rel := newNode("r", "addr:r")
	send(a, "addr:a", "addr:b")
	res := Sync(a, rel, 0)
	if res.Sent != 0 {
		t.Errorf("basic substrate must not transfer out-of-filter items, sent %d", res.Sent)
	}
}

func TestMultiAddressFilterForwarding(t *testing.T) {
	// §IV.B: a relay whose filter includes addr:b receives b's messages and
	// hands them to b later.
	a := newNode("a", "addr:a")
	rel := New(Config{
		ID:           "r",
		OwnAddresses: []string{"addr:r"},
		Filter:       filter.NewAddresses("addr:r", "addr:b"),
	})
	b := newNode("b", "addr:b")
	msg := send(a, "addr:a", "addr:b")
	if res := Sync(a, rel, 0); res.Sent != 1 || res.Apply.Stored != 1 {
		t.Fatalf("relay should pull the message in-filter: %+v", res)
	}
	if res := Sync(rel, b, 0); res.Apply.Delivered != 1 {
		t.Fatalf("relay should deliver to destination: %+v", res)
	}
	if !b.HasItem(msg.ID) {
		t.Error("destination missing message after relay")
	}
}

func TestSelfAddressedDeliversOnCreate(t *testing.T) {
	a := newNode("a", "addr:a")
	send(a, "addr:a", "addr:a")
	if a.Stats().Delivered != 1 {
		t.Error("self-addressed item should deliver at creation")
	}
}

func TestUpdateSupersedes(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	msg := send(a, "addr:a", "addr:b")
	Sync(a, b, 0)
	if _, err := a.UpdateItem(msg.ID, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	res := Sync(a, b, 0)
	if res.Sent != 1 {
		t.Fatalf("update should be sent, got %d items", res.Sent)
	}
	e := b.Entry(msg.ID)
	if string(e.Item.Payload) != "v2" {
		t.Errorf("payload = %q, want v2", e.Item.Payload)
	}
	// The superseded version is in knowledge: a replica that still holds v1
	// must not re-send it.
	if !b.Knowledge().Contains(msg.Version) {
		t.Error("superseded version must be folded into knowledge")
	}
}

func TestStaleVersionNotReaccepted(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	c := New(Config{ID: "c", OwnAddresses: []string{"addr:c"},
		Filter: filter.NewAddresses("addr:c", "addr:b")})
	msg := send(a, "addr:a", "addr:b")
	Sync(a, c, 0) // c holds v1 in-filter
	if _, err := a.UpdateItem(msg.ID, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	Sync(a, b, 0) // b gets v2 directly
	res := Sync(c, b, 0)
	if res.Sent != 0 {
		t.Errorf("stale v1 must not be sent to a replica knowing v2, sent %d", res.Sent)
	}
	if string(b.Entry(msg.ID).Item.Payload) != "v2" {
		t.Error("newer version lost")
	}
}

func TestDeleteTombstonePropagates(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	msg := send(a, "addr:a", "addr:b")
	Sync(a, b, 0)
	if _, err := b.DeleteItem(msg.ID); err != nil {
		t.Fatal(err)
	}
	res := Sync(b, a, 0)
	if res.Apply.Tombstones != 1 {
		t.Fatalf("tombstone should apply at the sender: %+v", res)
	}
	if a.HasItem(msg.ID) {
		t.Error("sender should discard deleted item content")
	}
}

func TestTombstoneImmunizesAgainstStaleCopy(t *testing.T) {
	// d learns the tombstone before ever seeing the live item; the live copy
	// held by a relay must then never be accepted.
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	rel := New(Config{ID: "r", OwnAddresses: []string{"addr:r"},
		Filter: filter.NewAddresses("addr:r", "addr:b")})
	msg := send(a, "addr:a", "addr:b")
	Sync(a, rel, 0) // relay holds live copy
	Sync(a, b, 0)
	if _, err := b.DeleteItem(msg.ID); err != nil {
		t.Fatal(err)
	}
	d := New(Config{ID: "d", OwnAddresses: []string{"addr:d"},
		Filter: filter.NewAddresses("addr:d", "addr:b")})
	Sync(b, d, 0) // d learns tombstone first
	res := Sync(rel, d, 0)
	if res.Apply.Stored != 0 && res.Apply.Superseded == 0 {
		t.Errorf("stale live copy must not resurrect a deleted item: %+v", res)
	}
	if e := d.Entry(msg.ID); e != nil && !e.Item.Deleted {
		t.Error("deleted item resurrected at d")
	}
}

// floodPolicy forwards everything at normal priority (minimal test policy).
type floodPolicy struct{}

func (floodPolicy) Name() string                                 { return "flood" }
func (floodPolicy) GenerateReq() routing.Request                 { return nil }
func (floodPolicy) ProcessReq(vclock.ReplicaID, routing.Request) {}
func (floodPolicy) ToSend(*store.Entry, routing.Target) (routing.Priority, item.Transient) {
	return routing.Priority{Class: routing.ClassNormal}, nil
}

func TestPolicyForwardingStoresRelay(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	rel := New(Config{ID: "r", OwnAddresses: []string{"addr:r"}, Policy: floodPolicy{}})
	b := newNode("b", "addr:b")
	msg := send(a, "addr:a", "addr:b")
	res := Sync(a, rel, 0)
	if res.Apply.Relayed != 1 {
		t.Fatalf("policy-forwarded item should be stored as relay: %+v", res)
	}
	if res := Sync(rel, b, 0); res.Apply.Delivered != 1 {
		t.Fatalf("relay must deliver to destination via filter match: %+v", res)
	}
	if !b.HasItem(msg.ID) {
		t.Error("multi-hop delivery failed")
	}
}

func TestHopsIncrementPerHop(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	r1 := New(Config{ID: "r1", OwnAddresses: []string{"addr:r1"}, Policy: floodPolicy{}})
	r2 := New(Config{ID: "r2", OwnAddresses: []string{"addr:r2"}, Policy: floodPolicy{}})
	msg := send(a, "addr:a", "addr:z")
	Sync(a, r1, 0)
	Sync(r1, r2, 0)
	if got := r1.Entry(msg.ID).Transient.GetInt(item.FieldHops); got != 1 {
		t.Errorf("hops at first relay = %d, want 1", got)
	}
	if got := r2.Entry(msg.ID).Transient.GetInt(item.FieldHops); got != 2 {
		t.Errorf("hops at second relay = %d, want 2", got)
	}
}

func TestBandwidthTruncationByPriority(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	b := newNode("b", "addr:b")
	send(a, "addr:a", "addr:x") // out-of-filter for b
	want := send(a, "addr:a", "addr:b")
	send(a, "addr:a", "addr:y")
	req := b.MakeSyncRequest(1)
	resp := a.HandleSyncRequest(req)
	if len(resp.Items) != 1 || !resp.Truncated {
		t.Fatalf("expected truncated single-item batch, got %d items", len(resp.Items))
	}
	if resp.Items[0].Item.ID != want.ID {
		t.Errorf("filter-matching item must be transmitted first, got %s", resp.Items[0].Item.ID)
	}
	b.ApplyBatch(resp)
	if !b.HasItem(want.ID) {
		t.Error("destination missing its message")
	}
}

func TestRelayCapacityEviction(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	rel := New(Config{ID: "r", OwnAddresses: []string{"addr:r"},
		Policy: floodPolicy{}, RelayCapacity: 2})
	for i := 0; i < 5; i++ {
		send(a, "addr:a", fmt.Sprintf("addr:x%d", i))
	}
	res := Sync(a, rel, 0)
	if res.Apply.Evicted != 3 {
		t.Errorf("Evicted = %d, want 3", res.Apply.Evicted)
	}
	_, _, relay := rel.StoreLen()
	if relay != 2 {
		t.Errorf("relay population = %d, want 2", relay)
	}
}

func TestSenderCopyExemptFromEviction(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"},
		Policy: floodPolicy{}, RelayCapacity: 1})
	own := send(a, "addr:a", "addr:z") // local, out-of-filter, exempt
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, Policy: floodPolicy{}})
	send(b, "addr:b", "addr:y1")
	send(b, "addr:b", "addr:y2")
	Sync(b, a, 0)
	if !a.HasItem(own.ID) {
		t.Error("sender's own message must never be evicted")
	}
	_, _, relay := a.StoreLen()
	if relay != 1 {
		t.Errorf("relay population = %d, want 1", relay)
	}
}

func TestSetIdentityDeliversHeldRelay(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	n := New(Config{ID: "n", OwnAddresses: []string{"user:1"}, Policy: floodPolicy{}})
	msg := send(a, "addr:a", "user:9")
	Sync(a, n, 0) // n holds it as relay
	delivered := n.SetIdentity([]string{"user:9"}, nil)
	if len(delivered) != 1 || delivered[0].ID != msg.ID {
		t.Fatalf("SetIdentity should deliver held item, got %v", delivered)
	}
	// Re-applying the same identity must not deliver again.
	if again := n.SetIdentity([]string{"user:9"}, nil); len(again) != 0 {
		t.Errorf("repeated SetIdentity re-delivered: %v", again)
	}
	if n.Stats().Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", n.Stats().Delivered)
	}
}

func TestUpdateMissingItem(t *testing.T) {
	a := newNode("a", "addr:a")
	if _, err := a.UpdateItem(item.ID{Creator: "x", Num: 1}, nil); err == nil {
		t.Error("updating a missing item should fail")
	}
	if _, err := a.DeleteItem(item.ID{Creator: "x", Num: 1}); err == nil {
		t.Error("deleting a missing item should fail")
	}
}

func TestEncounterSharedBudget(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	send(a, "addr:a", "addr:b")
	send(b, "addr:b", "addr:a")
	res := Encounter(a, b, 1)
	total := res.AtoB.Sent + res.BtoA.Sent
	if total != 1 {
		t.Errorf("per-encounter budget violated: %d items moved", total)
	}
}

func TestEncounterUnlimited(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	send(a, "addr:a", "addr:b")
	send(b, "addr:b", "addr:a")
	res := Encounter(a, b, 0)
	if res.AtoB.Apply.Delivered != 1 || res.BtoA.Apply.Delivered != 1 {
		t.Errorf("both directions should deliver: %+v", res)
	}
}

// TestPropEventualConsistencyRandomSchedules drives random full-replication
// sync schedules over small replica groups and checks both eventual
// consistency (everyone converges once a spanning set of syncs happens) and
// the at-most-once invariant (zero duplicate receipts anywhere).
func TestPropEventualConsistencyRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		nodes := make([]*Replica, n)
		for i := range nodes {
			nodes[i] = New(Config{
				ID:           vclock.ReplicaID(fmt.Sprintf("n%d", i)),
				OwnAddresses: []string{fmt.Sprintf("addr:%d", i)},
				Filter:       filter.All{},
			})
		}
		items := 0
		for i, nd := range nodes {
			for j := 0; j < 1+rng.Intn(3); j++ {
				send(nd, fmt.Sprintf("addr:%d", i), fmt.Sprintf("addr:%d", rng.Intn(n)))
				items++
			}
		}
		// Random gossip for a while, then a deterministic ring pass to
		// guarantee a connected synchronization path.
		for k := 0; k < 10*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				Sync(nodes[i], nodes[j], 0)
			}
		}
		for round := 0; round < 2; round++ {
			for i := range nodes {
				Sync(nodes[i], nodes[(i+1)%n], 0)
				Sync(nodes[(i+1)%n], nodes[i], 0)
			}
		}
		for i, nd := range nodes {
			total, live, _ := nd.StoreLen()
			if live != items || total != items {
				t.Fatalf("seed %d: node %d has %d/%d items, want %d", seed, i, live, total, items)
			}
			if d := nd.Stats().Duplicates; d != 0 {
				t.Fatalf("seed %d: node %d saw %d duplicates", seed, i, d)
			}
		}
		for i := 1; i < n; i++ {
			if !nodes[0].Knowledge().Equal(nodes[i].Knowledge()) {
				t.Fatalf("seed %d: knowledge diverged at node %d", seed, i)
			}
		}
	}
}

func TestByteBudgetTruncation(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: floodPolicy{}})
	b := newNode("b", "addr:b")
	for i := 0; i < 4; i++ {
		a.CreateItem(item.Metadata{
			Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
		}, make([]byte, 100))
	}
	// Each item costs 100 payload + 96 overhead = 196 bytes; 400 bytes admit
	// two items.
	res := SyncBudget(a, b, Budget{Bytes: 400})
	if res.Sent != 2 || !res.Truncated {
		t.Fatalf("sent %d items (truncated=%v), want 2 truncated", res.Sent, res.Truncated)
	}
	if res.SentBytes != 392 {
		t.Errorf("SentBytes = %d, want 392", res.SentBytes)
	}
	// Remaining items arrive on later syncs; nothing is lost.
	SyncBudget(a, b, Budget{Bytes: 400})
	if _, live, _ := b.StoreLen(); live != 4 {
		t.Errorf("b holds %d items, want 4", live)
	}
}

func TestByteBudgetAlwaysAdmitsOneItem(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	a.CreateItem(item.Metadata{
		Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
	}, make([]byte, 10000))
	res := SyncBudget(a, b, Budget{Bytes: 16})
	if res.Sent != 1 {
		t.Errorf("a huge message must still cross a tiny-budget contact, sent %d", res.Sent)
	}
}

func TestEncounterSharedByteBudget(t *testing.T) {
	a := newNode("a", "addr:a")
	b := newNode("b", "addr:b")
	a.CreateItem(item.Metadata{
		Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
	}, make([]byte, 100))
	b.CreateItem(item.Metadata{
		Source: "addr:b", Destinations: []string{"addr:a"}, Kind: "message",
	}, make([]byte, 100))
	res := EncounterBudget(a, b, Budget{Bytes: 200})
	total := res.AtoB.SentBytes + res.BtoA.SentBytes
	if total > 200 && res.BtoA.Sent > 0 {
		t.Errorf("shared byte budget exceeded: %d bytes", total)
	}
	if res.AtoB.Sent != 1 || res.BtoA.Sent != 0 {
		t.Errorf("expected only the first leg to fit: %+v", res)
	}
}
