package replica

import (
	"fmt"
	"math/rand"
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/vclock"
)

// fullReplica builds an All-filter replica (sees everything) with merging
// enabled.
func fullReplica(id string) *Replica {
	return New(Config{
		ID:             vclock.ReplicaID(id),
		OwnAddresses:   []string{"addr:" + id},
		Filter:         filter.All{},
		MergeKnowledge: true,
	})
}

func TestKnowledgeMergeCompactsExceptions(t *testing.T) {
	// Many creators insert items; hub (a full replica) syncs with each, then
	// a fresh full replica syncs once with the hub: wholesale merge should
	// leave it with zero knowledge exceptions.
	hub := fullReplica("hub")
	for i := 0; i < 8; i++ {
		src := fullReplica(fmt.Sprintf("c%d", i))
		for j := 0; j < 5; j++ {
			send(src, fmt.Sprintf("addr:c%d", i), "addr:nobody")
		}
		Sync(src, hub, 0)
	}
	late := fullReplica("late")
	res := Sync(hub, late, 0)
	if !res.Apply.KnowledgeMerged {
		t.Fatal("covering source should trigger a wholesale merge")
	}
	if got := late.Knowledge().ExceptionCount(); got != 0 {
		t.Errorf("knowledge has %d exceptions after merge, want 0", got)
	}
	if !late.Knowledge().Equal(hub.Knowledge()) {
		t.Error("merged knowledge should equal the source's")
	}
}

func TestKnowledgeMergeRequiresCoveringFilter(t *testing.T) {
	narrow := New(Config{
		ID: "n", OwnAddresses: []string{"addr:n"}, MergeKnowledge: true,
	})
	wide := fullReplica("w")
	send(wide, "addr:w", "addr:n")
	// wide covers narrow: merge fires.
	if res := Sync(wide, narrow, 0); !res.Apply.KnowledgeMerged {
		t.Error("covering filter should offer knowledge")
	}
	// narrow does not cover wide: no merge.
	send(narrow, "addr:n", "addr:w")
	if res := Sync(narrow, wide, 0); res.Apply.KnowledgeMerged {
		t.Error("non-covering filter must not offer knowledge")
	}
}

func TestKnowledgeMergeDisabledByDefault(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Filter: filter.All{}})
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, Filter: filter.All{}})
	send(a, "addr:a", "addr:b")
	if res := Sync(a, b, 0); res.Apply.KnowledgeMerged {
		t.Error("merge must be opt-in")
	}
}

func TestKnowledgeMergeSkippedWhenTruncated(t *testing.T) {
	a := fullReplica("a")
	b := fullReplica("b")
	for i := 0; i < 5; i++ {
		send(a, "addr:a", fmt.Sprintf("addr:x%d", i))
	}
	req := b.MakeSyncRequest(2) // forces truncation
	resp := a.HandleSyncRequest(req)
	if !resp.Truncated {
		t.Fatal("setup: batch not truncated")
	}
	if resp.LearnedKnowledge != nil {
		t.Error("truncated batches must not offer knowledge")
	}
	st := b.ApplyBatch(resp)
	if st.KnowledgeMerged {
		t.Error("truncated batch merged knowledge")
	}
	// The remaining items must still arrive on the next sync.
	Sync(a, b, 0)
	if _, live, _ := b.StoreLen(); live != 5 {
		t.Errorf("b holds %d items, want 5", live)
	}
}

// TestPropMergeNeverLosesDeliveries runs random gossip among full replicas
// with merging enabled and verifies eventual consistency still holds — the
// merge fast path must never mark undelivered versions as known.
func TestPropMergeNeverLosesDeliveries(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 6
		nodes := make([]*Replica, n)
		for i := range nodes {
			nodes[i] = fullReplica(fmt.Sprintf("n%d", i))
		}
		items := 0
		for i, nd := range nodes {
			for j := 0; j < 1+rng.Intn(3); j++ {
				send(nd, fmt.Sprintf("addr:n%d", i), fmt.Sprintf("addr:n%d", rng.Intn(n)))
				items++
			}
		}
		for k := 0; k < 8*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				// Mix bandwidth-limited (merge-suppressed) and unlimited syncs.
				max := 0
				if rng.Intn(3) == 0 {
					max = 1 + rng.Intn(2)
				}
				Sync(nodes[i], nodes[j], max)
			}
		}
		for round := 0; round < 2; round++ {
			for i := range nodes {
				Sync(nodes[i], nodes[(i+1)%n], 0)
				Sync(nodes[(i+1)%n], nodes[i], 0)
			}
		}
		for i, nd := range nodes {
			if _, live, _ := nd.StoreLen(); live != items {
				t.Fatalf("seed %d: node %d holds %d items, want %d", seed, i, live, items)
			}
			if nd.Stats().Duplicates != 0 {
				t.Fatalf("seed %d: duplicates at node %d", seed, i)
			}
		}
	}
}
