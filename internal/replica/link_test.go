package replica

import (
	"fmt"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/routing/epidemic"
)

func newLinkedPair(t *testing.T) (a, b *Replica) {
	t.Helper()
	a = New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: epidemic.New(10)})
	b = New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, Policy: epidemic.New(10)})
	return a, b
}

func seedMessages(r *Replica, from string, n int) []*item.Item {
	items := make([]*item.Item, n)
	for i := range items {
		items[i] = r.CreateItem(item.Metadata{
			Source:       from,
			Destinations: []string{"addr:b"},
			Kind:         "message",
		}, []byte(fmt.Sprintf("msg-%d", i)))
	}
	return items
}

// TestEncounterLinkReliableMatchesBudget proves the reliable link is the
// exact fault-free path: same results, same stats, no abort accounting.
func TestEncounterLinkReliableMatchesBudget(t *testing.T) {
	a1, b1 := newLinkedPair(t)
	a2, b2 := newLinkedPair(t)
	seedMessages(a1, "addr:a", 5)
	seedMessages(a2, "addr:a", 5)

	ref := EncounterBudget(a1, b1, Budget{Items: 3})
	got := EncounterLink(a2, b2, Budget{Items: 3}, ReliableLink())
	if ref != got {
		t.Errorf("reliable link diverged from EncounterBudget:\nref %+v\ngot %+v", ref, got)
	}
	if b2.Stats().SyncsAborted != 0 || a2.Stats().SyncsAborted != 0 {
		t.Error("reliable link recorded aborts")
	}
}

// TestCutoffAbortsTransactionally is the core transactional-sync guarantee:
// an interrupted transfer leaves the target's knowledge and store bit-
// identical to before the sync, and the wasted partial transfer is reported.
func TestCutoffAbortsTransactionally(t *testing.T) {
	a, b := newLinkedPair(t)
	seedMessages(a, "addr:a", 5)
	knowBefore := b.Knowledge()
	totalBefore, _, _ := b.StoreLen()

	res := EncounterLink(a, b, Budget{}, Link{Cutoff: 2})
	if !res.AtoB.Aborted {
		t.Fatalf("expected aborted first leg, got %+v", res.AtoB)
	}
	if res.AtoB.Sent != 2 {
		t.Errorf("wasted transfer = %d items, want 2 (the cut point)", res.AtoB.Sent)
	}
	if res.AtoB.Apply != (ApplyStats{}) {
		t.Errorf("aborted sync applied something: %+v", res.AtoB.Apply)
	}
	if res.BtoA != (SyncResult{}) {
		t.Errorf("second leg ran over a dead link: %+v", res.BtoA)
	}
	if !b.Knowledge().Equal(knowBefore) {
		t.Errorf("abort perturbed knowledge: %s -> %s", knowBefore, b.Knowledge())
	}
	if total, _, _ := b.StoreLen(); total != totalBefore {
		t.Errorf("abort perturbed store: %d -> %d entries", totalBefore, total)
	}
	if b.Stats().SyncsAborted != 1 {
		t.Errorf("SyncsAborted = %d, want 1", b.Stats().SyncsAborted)
	}
	if b.Stats().Duplicates != 0 {
		t.Error("abort produced duplicates")
	}
}

// TestResumeAfterAbortDeliversExactlyOnce: because the abort left knowledge
// untouched, the next (reliable) encounter re-offers the full batch and every
// message arrives exactly once — nothing lost, nothing duplicated.
func TestResumeAfterAbortDeliversExactlyOnce(t *testing.T) {
	a, b := newLinkedPair(t)
	var delivered int
	b2 := New(Config{
		ID: "b", OwnAddresses: []string{"addr:b"}, Policy: epidemic.New(10),
		OnDeliver: func(*item.Item) { delivered++ },
	})
	_ = b
	msgs := seedMessages(a, "addr:a", 5)

	// Two disrupted encounters in a row, then a clean one.
	for _, cutoff := range []int{1, 3} {
		res := EncounterLink(a, b2, Budget{}, Link{Cutoff: cutoff})
		if !res.AtoB.Aborted {
			t.Fatalf("cutoff %d: expected abort, got %+v", cutoff, res.AtoB)
		}
	}
	if delivered != 0 {
		t.Fatalf("aborted syncs delivered %d messages", delivered)
	}
	res := EncounterLink(a, b2, Budget{}, ReliableLink())
	if res.AtoB.Aborted || res.AtoB.Sent != len(msgs) {
		t.Fatalf("clean encounter after aborts: %+v", res.AtoB)
	}
	if delivered != len(msgs) {
		t.Errorf("delivered %d messages, want %d", delivered, len(msgs))
	}
	if b2.Stats().Duplicates != 0 {
		t.Errorf("at-most-once violated: %d duplicates", b2.Stats().Duplicates)
	}
	// A further encounter moves nothing: everything is known.
	res = EncounterLink(a, b2, Budget{}, ReliableLink())
	if res.AtoB.Sent != 0 || b2.Stats().Duplicates != 0 {
		t.Errorf("steady state perturbed: %+v, %d duplicates", res.AtoB, b2.Stats().Duplicates)
	}
}

// TestCutoffBudgetSharedAcrossLegs: the link's item allowance spans both
// synchronization legs, so a first leg consuming part of it leaves the
// remainder to the second.
func TestCutoffBudgetSharedAcrossLegs(t *testing.T) {
	a, b := newLinkedPair(t)
	seedMessages(a, "addr:a", 2) // leg 1: b pulls 2 from a
	bMsgs := make([]*item.Item, 4)
	for i := range bMsgs {
		bMsgs[i] = b.CreateItem(item.Metadata{
			Source: "addr:b", Destinations: []string{"addr:a"}, Kind: "message",
		}, []byte(fmt.Sprintf("rev-%d", i)))
	}

	// Allowance 5: leg 1 moves 2 cleanly, leg 2's 4-item batch exceeds the
	// remaining 3 and aborts after 3 crossed items.
	res := EncounterLink(a, b, Budget{}, Link{Cutoff: 5})
	if res.AtoB.Aborted || res.AtoB.Sent != 2 {
		t.Fatalf("first leg: %+v", res.AtoB)
	}
	if !res.BtoA.Aborted || res.BtoA.Sent != 3 {
		t.Fatalf("second leg: %+v, want abort after 3 crossed", res.BtoA)
	}
	if a.Stats().SyncsAborted != 1 {
		t.Errorf("a.SyncsAborted = %d, want 1", a.Stats().SyncsAborted)
	}
	// a (the second leg's target) kept none of b's items.
	for _, m := range bMsgs {
		if a.HasItem(m.ID) {
			t.Errorf("aborted leg leaked item %s into a", m.ID)
		}
	}
}

// TestCutoffZeroLosesEverything: a link dying immediately moves nothing and
// still leaves both sides consistent.
func TestCutoffZeroLosesEverything(t *testing.T) {
	a, b := newLinkedPair(t)
	seedMessages(a, "addr:a", 3)
	res := EncounterLink(a, b, Budget{}, Link{Cutoff: 0})
	if !res.AtoB.Aborted || res.AtoB.Sent != 0 || res.AtoB.SentBytes != 0 {
		t.Fatalf("zero-budget link: %+v", res.AtoB)
	}
	if total, _, _ := b.StoreLen(); total != 0 {
		t.Error("zero-budget link stored items at b")
	}
}

// TestCutoffRespectsEncounterBudget: the fault path still honors the paper's
// bandwidth budget — a small batch under MaxItems fits inside a generous
// cutoff and completes.
func TestCutoffRespectsEncounterBudget(t *testing.T) {
	a, b := newLinkedPair(t)
	seedMessages(a, "addr:a", 5)
	res := EncounterLink(a, b, Budget{Items: 1}, Link{Cutoff: 10})
	if res.AtoB.Aborted {
		t.Fatalf("budgeted batch within cutoff must complete: %+v", res.AtoB)
	}
	if res.AtoB.Sent != 1 {
		t.Errorf("budget violated: sent %d, want 1", res.AtoB.Sent)
	}
}
