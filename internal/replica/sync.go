package replica

import (
	"sort"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// SyncRequest is the target→source half of the sync protocol: the target's
// knowledge, filter, and policy routing state (paper Fig. 4).
type SyncRequest struct {
	// TargetID identifies the requesting replica.
	TargetID vclock.ReplicaID
	// Knowledge is the target's learned-version set; the source sends only
	// versions outside it, which yields at-most-once delivery.
	Knowledge *vclock.Knowledge
	// Filter is the target's content-based filter; matching items are always
	// included and transmitted first.
	Filter filter.Filter
	// Routing carries policy-specific state (e.g. a PROPHET predictability
	// vector) produced by the target's policy GenerateReq.
	Routing routing.Request
	// MaxItems bounds the batch size (0 = unlimited), modeling constrained
	// encounter bandwidth.
	MaxItems int
	// MaxBytes bounds the batch payload volume (0 = unlimited): items are
	// taken in priority order until the next would exceed the budget. Unless
	// StrictBytes is set, at least one item is always sent when anything is
	// eligible, so a large message cannot deadlock a small-budget contact.
	MaxBytes int64
	// StrictBytes disables the at-least-one exception; used for the second
	// leg of an encounter, whose budget is the remainder of a shared one.
	StrictBytes bool
}

// BatchItem is one transmitted item copy: the replicated item plus the
// transient (host-specific) metadata the source chose to attach, and the
// priority it was assigned.
type BatchItem struct {
	Item      *item.Item
	Transient item.Transient
	Priority  routing.Priority
}

// SyncResponse is the source→target half: the prioritized batch, plus —
// when the source can prove it is a superset replica for the target — its
// full knowledge, which the target may adopt wholesale to keep its own
// knowledge compact (the Cimbiosys knowledge-merge optimization).
type SyncResponse struct {
	SourceID  vclock.ReplicaID
	Items     []BatchItem
	Truncated bool
	// LearnedKnowledge, when non-nil, is the source's knowledge offered for
	// wholesale merging. It is only set when the source's filter covers the
	// target's and the batch was not truncated, so every version it covers
	// that the target's filter selects either travels in this batch or is
	// already stored at the target.
	LearnedKnowledge *vclock.Knowledge
}

// ApplyStats summarizes one ApplyBatch call.
type ApplyStats struct {
	// Stored counts newly stored in-filter items.
	Stored int
	// Relayed counts newly stored out-of-filter (relay) items.
	Relayed int
	// Delivered counts items handed to the application.
	Delivered int
	// Duplicates counts already-known versions (must be zero under the
	// substrate's guarantee).
	Duplicates int
	// Superseded counts received versions older than the stored one.
	Superseded int
	// Tombstones counts deletion records applied.
	Tombstones int
	// Evicted counts relay entries expelled by storage pressure.
	Evicted int
	// Expired counts received items already past their lifetime (dropped).
	Expired int
	// KnowledgeMerged reports that the source's knowledge was adopted
	// wholesale (the compact-metadata fast path).
	KnowledgeMerged bool
}

// MakeSyncRequest builds the request this replica sends when initiating a
// synchronization (acting as target). maxItems bounds the returned batch
// (0 = unlimited).
func (r *Replica) MakeSyncRequest(maxItems int) *SyncRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.SyncsInitiated++
	req := &SyncRequest{
		TargetID:  r.id,
		Knowledge: r.know.Clone(),
		Filter:    r.filter,
		MaxItems:  maxItems,
	}
	if r.policy != nil {
		req.Routing = r.policy.GenerateReq()
	}
	return req
}

// HandleSyncRequest serves a synchronization request (acting as source):
// process the request's routing state, assemble the batch of versions unknown
// to the target that match its filter or are selected by the local policy,
// order it by priority, and apply the bandwidth bound.
func (r *Replica) HandleSyncRequest(req *SyncRequest) *SyncResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.SyncsServed++
	if r.policy != nil && req.Routing != nil {
		r.policy.ProcessReq(req.TargetID, req.Routing)
	}
	target := routing.Target{ID: req.TargetID, Filter: req.Filter}

	var batch []BatchItem
	for _, e := range r.store.Entries() {
		if req.Knowledge.Contains(e.Item.Version) {
			continue
		}
		if !e.Item.Deleted && r.expiredLocked(&e.Item.Meta) {
			// Dead messages are not worth encounter bandwidth.
			continue
		}
		switch {
		case e.Item.Deleted:
			// Tombstones always travel: they clear forwarders' copies and
			// immunize the target against stale live versions.
			batch = append(batch, BatchItem{
				Item:      e.Item,
				Transient: transmitTransient(e, nil),
				Priority:  routing.Priority{Class: routing.ClassFilter},
			})
		case req.Filter != nil && req.Filter.Match(e.Item):
			batch = append(batch, BatchItem{
				Item:      e.Item,
				Transient: transmitTransient(e, nil),
				Priority:  routing.Priority{Class: routing.ClassFilter},
			})
		case r.policy != nil:
			pr, tr := r.policy.ToSend(e, target)
			if pr.Class == routing.ClassSkip {
				continue
			}
			batch = append(batch, BatchItem{
				Item:      e.Item,
				Transient: transmitTransient(e, tr),
				Priority:  pr,
			})
		}
	}

	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].Priority != batch[j].Priority {
			return batch[i].Priority.Before(batch[j].Priority)
		}
		return lessID(batch[i].Item.ID, batch[j].Item.ID)
	})

	resp := &SyncResponse{SourceID: r.id, Items: batch}
	if req.MaxItems > 0 && len(batch) > req.MaxItems {
		resp.Items = batch[:req.MaxItems]
		resp.Truncated = true
	}
	if req.MaxBytes > 0 {
		var used int64
		cut := len(resp.Items)
		for i, bi := range resp.Items {
			size := itemWireBytes(bi.Item)
			if used+size > req.MaxBytes && (i > 0 || req.StrictBytes) {
				cut = i
				break
			}
			used += size
		}
		if cut < len(resp.Items) {
			resp.Items = resp.Items[:cut]
			resp.Truncated = true
		}
	}
	// Offer wholesale knowledge when this replica provably sees everything
	// the target's filter selects: the target can then compact its knowledge
	// to a plain vector instead of accumulating per-item exceptions. Safe
	// because in-filter items are never evicted, so every version in our
	// knowledge that matches our filter is either stored here (and in this
	// batch if unknown to the target) or superseded.
	if !resp.Truncated && req.Filter != nil && r.filter.Covers(req.Filter) {
		resp.LearnedKnowledge = r.know.Clone()
	}
	r.stats.ItemsSent += len(resp.Items)
	return resp
}

// transmitTransient builds the host-specific metadata accompanying a
// transmitted copy. Per-copy fields accompany the copy they describe (the
// paper's epidemic policy forwards copies carrying a decremented TTL, and its
// spray policy halves the allowance "for both the locally stored item and the
// item in the synchronization batch"); only *updates* to them stay local and
// never replicate as new versions. A policy may substitute its own transient
// for the in-flight copy; filter-matched transfers carry the stored one
// unchanged. The copy's hop count always travels and is incremented by the
// receiver.
func transmitTransient(e *store.Entry, policySet item.Transient) item.Transient {
	if policySet == nil {
		return e.Transient.Clone()
	}
	if hops, ok := e.Transient.Get(item.FieldHops); ok && !policySet.Has(item.FieldHops) {
		policySet = policySet.Set(item.FieldHops, hops)
	}
	return policySet
}

// ApplyBatch ingests a synchronization response (acting as target): fold
// every carried version into knowledge, store new items in the appropriate
// partition, apply tombstones, and deliver items addressed to this replica.
func (r *Replica) ApplyBatch(resp *SyncResponse) ApplyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st ApplyStats
	for _, bi := range resp.Items {
		incoming := bi.Item
		if r.know.Contains(incoming.Version) {
			st.Duplicates++
			r.stats.Duplicates++
			continue
		}
		for _, v := range incoming.AllVersions() {
			r.know.Add(v)
		}
		r.stats.ItemsReceived++

		existing := r.store.Get(incoming.ID)
		if existing != nil && !incoming.Supersedes(existing.Item) {
			st.Superseded++
			continue
		}
		if !incoming.Deleted && r.expiredLocked(&incoming.Meta) {
			// The version is recorded in knowledge (never re-accepted) but
			// an expired message is neither stored nor delivered.
			st.Expired++
			continue
		}

		// The copy's hop count is host-specific: it grows by one on arrival.
		tr := bi.Transient.Clone()
		tr = tr.Set(item.FieldHops, float64(tr.GetInt(item.FieldHops)+1))

		stored := incoming.Clone()
		relay := !r.filter.Match(stored)
		local := existing != nil && existing.Local
		evicted := r.store.Put(stored, tr, relay, local)
		st.Evicted += len(evicted)
		r.stats.Evicted += len(evicted)

		switch {
		case stored.Deleted:
			st.Tombstones++
		case relay:
			st.Relayed++
		default:
			st.Stored++
		}
		if !stored.Deleted && r.addressedLocally(stored) && r.store.Get(stored.ID) != nil {
			wasAddressed := existing != nil && !existing.Item.Deleted && r.addressedLocally(existing.Item)
			if !wasAddressed {
				st.Delivered++
				r.deliverLocked(stored)
			}
		}
	}
	// Merge after items apply so every batch version is stored first.
	if resp.LearnedKnowledge != nil && r.mergeKnowledge {
		r.know.Merge(resp.LearnedKnowledge)
		st.KnowledgeMerged = true
	}
	return st
}

// itemWireBytes estimates an item's transfer cost: its payload plus a fixed
// per-item metadata overhead.
func itemWireBytes(it *item.Item) int64 {
	const metadataOverhead = 64
	return int64(len(it.Payload)) + metadataOverhead
}

// BatchBytes sums the estimated wire size of a response's items.
func BatchBytes(resp *SyncResponse) int64 {
	var total int64
	for _, bi := range resp.Items {
		total += itemWireBytes(bi.Item)
	}
	return total
}

// lessID orders item IDs deterministically.
func lessID(a, b item.ID) bool {
	if a.Creator != b.Creator {
		return a.Creator < b.Creator
	}
	return a.Num < b.Num
}
