package replica

import (
	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/routing"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// SyncRequest is the target→source half of the sync protocol: the target's
// knowledge, filter, and policy routing state (paper Fig. 4).
type SyncRequest struct {
	// TargetID identifies the requesting replica.
	TargetID vclock.ReplicaID
	// Knowledge is the target's learned-version set; the source sends only
	// versions outside it, which yields at-most-once delivery. In summary
	// mode (protocol v2) exactly one of Knowledge, Digest, or Delta is set.
	Knowledge *vclock.Knowledge
	// Digest is a compact knowledge summary: exact base vector plus a Bloom
	// filter over the exceptions (see vclock.Digest). The source serves from
	// it only when the filter decides every stored candidate; otherwise it
	// answers NeedKnowledge and the target retries with exact knowledge.
	Digest *vclock.Digest
	// Delta ships only the knowledge learned since the frontier this target
	// last sent the source, tagged with the target's (epoch, generation);
	// the source reconstructs exact knowledge from its cached baseline, or
	// answers NeedKnowledge when the tags do not match strictly.
	Delta *vclock.Delta
	// Epoch and Gen tag a full Knowledge frame sent in summary mode (Epoch
	// is never 0 on such frames): they let the source cache the frame as
	// the delta baseline for this pair. Untagged (v1) frames are not cached.
	Epoch uint64
	Gen   uint64
	// Filter is the target's content-based filter; matching items are always
	// included and transmitted first.
	Filter filter.Filter
	// Routing carries policy-specific state (e.g. a PROPHET predictability
	// vector) produced by the target's policy GenerateReq.
	Routing routing.Request
	// MaxItems bounds the batch size (0 = unlimited), modeling constrained
	// encounter bandwidth.
	MaxItems int
	// MaxBytes bounds the batch payload volume (0 = unlimited): items are
	// taken in priority order until the next would exceed the budget. Unless
	// StrictBytes is set, at least one item is always sent when anything is
	// eligible, so a large message cannot deadlock a small-budget contact.
	MaxBytes int64
	// StrictBytes disables the at-least-one exception; used for the second
	// leg of an encounter, whose budget is the remainder of a shared one.
	StrictBytes bool
}

// BatchItem is one transmitted item copy: the replicated item plus the
// transient (host-specific) metadata the source chose to attach, and the
// priority it was assigned.
type BatchItem struct {
	Item      *item.Item
	Transient item.Transient
	Priority  routing.Priority
}

// SyncResponse is the source→target half: the prioritized batch, plus —
// when the source can prove it is a superset replica for the target — its
// full knowledge, which the target may adopt wholesale to keep its own
// knowledge compact (the Cimbiosys knowledge-merge optimization).
type SyncResponse struct {
	SourceID  vclock.ReplicaID
	Items     []BatchItem
	Truncated bool
	// NeedKnowledge demands an exact-knowledge retry of a summary-mode
	// request: the source could not decide the batch from the digest (an
	// ambiguous Bloom answer) or could not apply the delta (tag mismatch
	// after a restart or lost frame). The response carries no items and the
	// source has not processed the request's routing state, so the retry
	// replays the same routing frame and the exchange counts once.
	NeedKnowledge bool
	// LearnedKnowledge, when non-nil, is the source's knowledge offered for
	// wholesale merging. It is only set when the source's filter covers the
	// target's and the batch was not truncated, so every version it covers
	// that the target's filter selects either travels in this batch or is
	// already stored at the target.
	LearnedKnowledge *vclock.Knowledge
}

// ApplyStats summarizes one ApplyBatch call.
type ApplyStats struct {
	// Stored counts newly stored in-filter items.
	Stored int
	// Relayed counts newly stored out-of-filter (relay) items.
	Relayed int
	// Delivered counts items handed to the application.
	Delivered int
	// Duplicates counts already-known versions (must be zero under the
	// substrate's guarantee).
	Duplicates int
	// Superseded counts received versions older than the stored one.
	Superseded int
	// Tombstones counts deletion records applied.
	Tombstones int
	// Evicted counts relay entries expelled by storage pressure.
	Evicted int
	// Expired counts received items already past their lifetime (dropped).
	Expired int
	// KnowledgeMerged reports that the source's knowledge was adopted
	// wholesale (the compact-metadata fast path).
	KnowledgeMerged bool
}

// MakeSyncRequest builds the request this replica sends when initiating a
// synchronization (acting as target). maxItems bounds the returned batch
// (0 = unlimited). The attached knowledge is a copy-on-write clone — taking
// it is O(1), and it stays consistent even as this replica keeps learning
// versions while the source reads it.
//
//dtn:hotpath
func (r *Replica) MakeSyncRequest(maxItems int) *SyncRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.SyncsInitiated++
	if r.metrics != nil {
		r.metrics.SyncsInitiated.Inc()
		r.metrics.KnowledgeSize.Set(int64(r.know.Size()))
	}
	req := &SyncRequest{
		TargetID:  r.id,
		Knowledge: r.know.Clone(),
		Filter:    r.filter,
		MaxItems:  maxItems,
	}
	if r.policy != nil {
		req.Routing = r.policy.GenerateReq()
	}
	r.stats.KnowledgeFulls++
	if r.metrics != nil {
		r.metrics.KnowledgeFullFrames.Inc()
		r.metrics.KnowledgeFullBytes.Add(int64(req.Knowledge.WireSize()))
	}
	return req
}

// selectorLimit derives the number of candidates worth retaining from the
// request's budgets: the item bound directly, and the byte bound via the
// fixed per-item metadata overhead (every batch item costs at least
// metadataOverhead wire bytes, so a byte budget implies an item budget). The
// slack of 2 keeps the at-least-one exception and the cut boundary safely
// inside the retained prefix. 0 means unbounded.
//
//dtn:hotpath
func selectorLimit(req *SyncRequest) int {
	limit := 0
	if req.MaxItems > 0 {
		limit = req.MaxItems
	}
	if req.MaxBytes > 0 {
		byteLimit := int(req.MaxBytes/metadataOverhead) + 2
		if limit == 0 || byteLimit < limit {
			limit = byteLimit
		}
	}
	return limit
}

// HandleSyncRequest serves a synchronization request (acting as source): it
// processes the request's routing state, then streams store entries off the
// maintained index — skipping known and expired versions inline — and keeps
// only the top-K batch under the request's budgets in a bounded priority
// heap. Tombstones and filter-matched items keep their priority-class
// ordering; the full batch is materialized and sorted only when the request
// carries no budget at all. The emitted batch is identical, item for item,
// to sorting every candidate and truncating afterwards.
func (r *Replica) HandleSyncRequest(req *SyncRequest) *SyncResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Summary mode: recover the target's knowledge before touching any other
	// state. When the request cannot be served exactly — an undecidable
	// digest or an unmatchable delta — answer NeedKnowledge without counting
	// the sync or processing routing state, so the exact-knowledge retry
	// runs as if it were the first and only round.
	know, digest, ok := r.resolveKnowledgeLocked(req)
	if !ok {
		return &SyncResponse{SourceID: r.id, NeedKnowledge: true}
	}
	if digest != nil {
		if r.digestAmbiguousLocked(digest) {
			return &SyncResponse{SourceID: r.id, NeedKnowledge: true}
		}
		// No stored candidate above the exact base is Bloom-ambiguous, and
		// the filter has no false negatives, so base inclusion now answers
		// "does the target know this version?" exactly as full knowledge
		// would for every stored version.
	}
	r.stats.SyncsServed++
	if r.policy != nil && req.Routing != nil {
		r.policy.ProcessReq(req.TargetID, req.Routing)
	}
	target := routing.Target{ID: req.TargetID, Filter: req.Filter}
	split, _ := r.policy.(routing.SplitSender)

	sel := batchSelector{limit: selectorLimit(req)}
	r.store.Range(func(e *store.Entry) bool {
		if digest != nil {
			if digest.BaseIncludes(e.Item.Version) {
				return true
			}
		} else if know.Contains(e.Item.Version) {
			return true
		}
		if !e.Item.Deleted && r.expiredLocked(&e.Item.Meta) {
			// Dead messages are not worth encounter bandwidth.
			return true
		}
		switch {
		case e.Item.Deleted:
			// Tombstones always travel: they clear forwarders' copies and
			// immunize the target against stale live versions.
			sel.offer(syncCandidate{
				entry:    e,
				priority: routing.Priority{Class: routing.ClassFilter},
			})
		case req.Filter != nil && req.Filter.Match(e.Item):
			sel.offer(syncCandidate{
				entry:    e,
				priority: routing.Priority{Class: routing.ClassFilter},
			})
		case split != nil:
			pr := split.Decide(e, target)
			if pr.Class == routing.ClassSkip {
				return true
			}
			sel.offer(syncCandidate{entry: e, priority: pr, materialize: true})
		case r.policy != nil:
			pr, tr := r.policy.ToSend(e, target)
			if pr.Class == routing.ClassSkip {
				return true
			}
			sel.offer(syncCandidate{entry: e, priority: pr, transient: tr})
		}
		return true
	})
	cands := sel.finish()

	truncated := false
	if req.MaxItems > 0 && sel.total > req.MaxItems {
		n := req.MaxItems
		if n > len(cands) {
			// The byte budget bounded retention below MaxItems; the byte scan
			// below always cuts inside the retained prefix.
			n = len(cands)
		}
		cands = cands[:n]
		truncated = true
	}
	if req.MaxBytes > 0 {
		var used int64
		cut := len(cands)
		for i := range cands {
			size := itemWireBytes(cands[i].entry.Item)
			if used+size > req.MaxBytes && (i > 0 || req.StrictBytes) {
				cut = i
				break
			}
			used += size
		}
		if cut < len(cands) {
			cands = cands[:cut]
			truncated = true
		}
	}

	// Materialize batch items only now, for the candidates that survived
	// truncation: building a wire transient clones a map, and doing it per
	// transmitted item instead of per scanned candidate is what keeps served
	// syncs O(batch) in allocations rather than O(store).
	resp := &SyncResponse{SourceID: r.id, Truncated: truncated}
	if len(cands) > 0 {
		resp.Items = make([]BatchItem, len(cands))
		for i := range cands {
			c := &cands[i]
			tr := c.transient
			if c.materialize {
				tr = split.Materialize(c.entry, target)
			}
			resp.Items[i] = BatchItem{
				Item:      c.entry.Item,
				Transient: transmitTransient(c.entry, tr),
				Priority:  c.priority,
			}
		}
	}
	// Offer wholesale knowledge when this replica provably sees everything
	// the target's filter selects: the target can then compact its knowledge
	// to a plain vector instead of accumulating per-item exceptions. Safe
	// because in-filter items are never evicted, so every version in our
	// knowledge that matches our filter is either stored here (and in this
	// batch if unknown to the target) or superseded.
	if !resp.Truncated && req.Filter != nil && r.filter.Covers(req.Filter) {
		resp.LearnedKnowledge = r.know.Clone()
	}
	r.stats.ItemsSent += len(resp.Items)
	if r.metrics != nil {
		r.metrics.SyncsServed.Inc()
		r.metrics.ItemsSent.Add(int64(len(resp.Items)))
	}
	return resp
}

// transmitTransient builds the host-specific metadata accompanying a
// transmitted copy. Per-copy fields accompany the copy they describe (the
// paper's epidemic policy forwards copies carrying a decremented TTL, and its
// spray policy halves the allowance "for both the locally stored item and the
// item in the synchronization batch"); only *updates* to them stay local and
// never replicate as new versions. A policy may substitute its own transient
// for the in-flight copy; filter-matched transfers carry the stored one
// unchanged. The copy's hop count always travels and is incremented by the
// receiver.
//
//dtn:hotpath
func transmitTransient(e *store.Entry, policySet item.Transient) item.Transient {
	if policySet == nil {
		return e.Transient.Clone()
	}
	if hops, ok := e.Transient.Get(item.FieldHops); ok && !policySet.Has(item.FieldHops) {
		policySet = policySet.Set(item.FieldHops, hops)
	}
	return policySet
}

// ApplyBatch ingests a synchronization response (acting as target): fold
// every carried version into knowledge, store new items in the appropriate
// partition, apply tombstones, and deliver items addressed to this replica.
//
// Application is transactional with respect to the transfer: ApplyBatch must
// only ever be handed a complete batch. Under the replica lock it has no
// failure points — every item's knowledge fold and store mutation happen
// together, and the optional wholesale knowledge merge runs only after every
// item has been stored — so a caller-visible batch is always applied in full.
// Callers that receive batches over an unreliable medium (the TCP transport,
// the fault-injecting emulator) discard interrupted transfers before this
// point (see AbortSync and EncounterLink): a partial batch must never reach
// ApplyBatch, because folding a prefix of the batch's versions into knowledge
// would permanently suppress re-transmission of the lost suffix. Durability
// composes the same way: internal/persist snapshots are taken between syncs,
// so a crash never persists a half-applied batch, and a batch replayed after
// a restart is rejected item-by-item through the restored knowledge.
func (r *Replica) ApplyBatch(resp *SyncResponse) ApplyStats {
	defer r.emitJournal() // deferred before the unlock, so it runs after it
	r.mu.Lock()
	defer r.mu.Unlock()
	var st ApplyStats
	for _, bi := range resp.Items {
		incoming := bi.Item
		if r.know.Contains(incoming.Version) {
			st.Duplicates++
			r.stats.Duplicates++
			continue
		}
		for _, v := range incoming.AllVersions() {
			r.know.Add(v)
		}
		r.journalLearnLocked(incoming.AllVersions()...)
		r.stats.ItemsReceived++

		existing := r.store.Get(incoming.ID)
		if existing != nil && !incoming.Supersedes(existing.Item) {
			st.Superseded++
			continue
		}
		if !incoming.Deleted && r.expiredLocked(&incoming.Meta) {
			// The version is recorded in knowledge (never re-accepted) but
			// an expired message is neither stored nor delivered.
			st.Expired++
			continue
		}

		// The copy's hop count is host-specific: it grows by one on arrival.
		tr := bi.Transient.Clone()
		tr = tr.Set(item.FieldHops, float64(tr.GetInt(item.FieldHops)+1))

		stored := incoming.Clone()
		relay := !r.filter.Match(stored)
		local := existing != nil && existing.Local
		evicted := r.store.Put(stored, tr, relay, local)
		st.Evicted += len(evicted)
		r.stats.Evicted += len(evicted)

		switch {
		case stored.Deleted:
			st.Tombstones++
		case relay:
			st.Relayed++
		default:
			st.Stored++
		}
		if !stored.Deleted && r.addressedLocally(stored) && r.store.Get(stored.ID) != nil {
			wasAddressed := existing != nil && !existing.Item.Deleted && r.addressedLocally(existing.Item)
			if !wasAddressed {
				st.Delivered++
				r.deliverLocked(stored)
			}
		}
	}
	// Merge after items apply so every batch version is stored first.
	if resp.LearnedKnowledge != nil && r.mergeKnowledge {
		r.know.Merge(resp.LearnedKnowledge)
		r.journalMergeLocked()
		st.KnowledgeMerged = true
	}
	if r.metrics != nil {
		r.recordApplyLocked(len(resp.Items), st)
	}
	return st
}

// recordApplyLocked mirrors one ApplyBatch outcome into the metrics sink.
func (r *Replica) recordApplyLocked(batchLen int, st ApplyStats) {
	m := r.metrics
	m.BatchesApplied.Inc()
	m.BatchItems.Observe(int64(batchLen))
	m.ItemsApplied.Add(int64(st.Stored + st.Relayed + st.Tombstones))
	m.Stored.Add(int64(st.Stored))
	m.Relayed.Add(int64(st.Relayed))
	m.Tombstones.Add(int64(st.Tombstones))
	m.Duplicates.Add(int64(st.Duplicates))
	m.Superseded.Add(int64(st.Superseded))
	m.Expired.Add(int64(st.Expired))
	m.Delivered.Add(int64(st.Delivered))
	m.Evictions.Add(int64(st.Evicted))
	m.KnowledgeSize.Set(int64(r.know.Size()))
}

// metadataOverhead is the fixed per-item wire cost added to the payload
// size. Because every batch item costs at least this much, a MaxBytes budget
// implies an item budget of MaxBytes/metadataOverhead (+1 for the
// at-least-one exception) — the bound selectorLimit uses to keep streaming
// batch assembly O(candidates · log K). The value must not underestimate the
// transport's real per-item framing or byte budgets overrun: the steady-state
// marginal cost of one gob-encoded batch item with trace-realistic metadata
// measures 76–80 bytes beyond its payload (see
// TestMetadataOverheadCoversEncodedFrame), so 96 leaves headroom for an
// extra destination or transient field.
const metadataOverhead = 96

// itemWireBytes estimates an item's transfer cost: its payload plus a fixed
// per-item metadata overhead.
//
//dtn:hotpath
func itemWireBytes(it *item.Item) int64 {
	return int64(len(it.Payload)) + metadataOverhead
}

// KnowledgeWireBytes returns the encoded size of whichever knowledge frame
// the request carries (exact, digest, or delta), for byte accounting.
func (req *SyncRequest) KnowledgeWireBytes() int64 {
	switch {
	case req.Knowledge != nil:
		return int64(req.Knowledge.WireSize())
	case req.Digest != nil:
		return int64(req.Digest.WireSize())
	case req.Delta != nil:
		return int64(req.Delta.WireSize())
	}
	return 0
}

// BatchBytes sums the estimated wire size of a response's items.
func BatchBytes(resp *SyncResponse) int64 {
	var total int64
	for _, bi := range resp.Items {
		total += itemWireBytes(bi.Item)
	}
	return total
}

// lessID orders item IDs deterministically.
func lessID(a, b item.ID) bool {
	if a.Creator != b.Creator {
		return a.Creator < b.Creator
	}
	return a.Num < b.Num
}
