package replica

// Budget bounds one synchronization or encounter: a maximum item count
// and/or a maximum payload volume (zero fields mean unlimited).
type Budget struct {
	Items int
	Bytes int64
}

// unlimited reports whether the budget imposes no bound at all.
func (b Budget) unlimited() bool { return b.Items <= 0 && b.Bytes <= 0 }

// SyncResult summarizes one directed synchronization.
type SyncResult struct {
	Sent      int
	SentBytes int64
	Truncated bool
	// Aborted reports that the transfer died mid-batch and the partial batch
	// was discarded transactionally: the target applied nothing, its knowledge
	// is untouched, and Sent/SentBytes count only the wasted partial transfer.
	Aborted bool
	// KnowledgeBytes is the encoded size of the knowledge frame(s) the
	// target shipped for this sync — the exact frame under v1, the summary
	// frame (plus the exact retry, when a fallback round ran) under v2.
	// This is the cost the summary protocol exists to shrink.
	KnowledgeBytes int64
	// Fallback reports that a summary-mode sync needed the extra
	// exact-knowledge round.
	Fallback bool
	Apply    ApplyStats
}

// makeRequest builds the sync request for one directed in-process sync,
// choosing summary mode when the target has it enabled.
func makeRequest(source, target *Replica, budget Budget, strictBytes bool) *SyncRequest {
	var req *SyncRequest
	if target.SummariesEnabled() {
		req = target.MakeSummaryRequest(source.ID(), budget.Items)
	} else {
		req = target.MakeSyncRequest(budget.Items)
	}
	req.MaxBytes = budget.Bytes
	req.StrictBytes = strictBytes
	return req
}

// fallbackRequest builds the exact-knowledge retry after a NeedKnowledge
// response, reusing the first round's routing state and budgets.
func fallbackRequest(source, target *Replica, first *SyncRequest) *SyncRequest {
	req := target.MakeFallbackRequest(source.ID(), first.MaxItems, first.Routing)
	req.MaxBytes = first.MaxBytes
	req.StrictBytes = first.StrictBytes
	return req
}

// Sync performs one in-process synchronization in which target pulls from
// source: the target issues a request, the source assembles the batch, and
// the target applies it. maxItems bounds the batch (0 = unlimited).
func Sync(source, target *Replica, maxItems int) SyncResult {
	return SyncBudget(source, target, Budget{Items: maxItems})
}

// SyncBudget is Sync with a full bandwidth budget (items and/or bytes).
func SyncBudget(source, target *Replica, budget Budget) SyncResult {
	return syncBudget(source, target, budget, false)
}

func syncBudget(source, target *Replica, budget Budget, strictBytes bool) SyncResult {
	req := makeRequest(source, target, budget, strictBytes)
	kbytes := req.KnowledgeWireBytes()
	resp := source.HandleSyncRequest(req)
	fallback := false
	if resp.NeedKnowledge {
		// The source could not serve the summary exactly; retry once with
		// exact knowledge. The retry cannot be refused.
		fallback = true
		req = fallbackRequest(source, target, req)
		kbytes += req.KnowledgeWireBytes()
		resp = source.HandleSyncRequest(req)
	}
	apply := target.ApplyBatch(resp)
	return SyncResult{
		Sent:           len(resp.Items),
		SentBytes:      BatchBytes(resp),
		Truncated:      resp.Truncated,
		KnowledgeBytes: kbytes,
		Fallback:       fallback,
		Apply:          apply,
	}
}

// EncounterResult summarizes one encounter (two syncs with alternating
// roles).
type EncounterResult struct {
	AtoB SyncResult // b pulls from a
	BtoA SyncResult // a pulls from b
}

// Encounter models a contact between two replicas as the paper's emulation
// does: two synchronizations with the source and target roles alternating.
// maxItems, when positive, is a shared per-encounter transfer budget: items
// sent in the first sync count against what the second may send.
func Encounter(a, b *Replica, maxItems int) EncounterResult {
	return EncounterBudget(a, b, Budget{Items: maxItems})
}

// EncounterBudget is Encounter with a full bandwidth budget shared across
// both syncs: items and bytes consumed by the first leg reduce what the
// second may use.
func EncounterBudget(a, b *Replica, budget Budget) EncounterResult {
	var res EncounterResult
	res.AtoB = SyncBudget(a, b, budget)
	if budget.unlimited() {
		res.BtoA = SyncBudget(b, a, budget)
		return res
	}
	second, strict, ok := secondLeg(budget, res.AtoB)
	if !ok {
		return res
	}
	res.BtoA = syncBudget(b, a, second, strict)
	return res
}

// secondLeg derives the second synchronization's budget from the encounter
// budget and the first leg's consumption. ok is false when the first leg
// exhausted the shared budget.
func secondLeg(budget Budget, first SyncResult) (second Budget, strict, ok bool) {
	second = budget
	if budget.Items > 0 {
		second.Items = budget.Items - first.Sent
		if second.Items <= 0 {
			return second, false, false
		}
	}
	if budget.Bytes > 0 {
		second.Bytes = budget.Bytes - first.SentBytes
		if second.Bytes <= 0 {
			return second, false, false
		}
		// The remainder is a hard cap: the at-least-one exception applied to
		// the encounter budget already, on the first leg.
		strict = true
	}
	return second, strict, true
}

// Link models the radio contact an encounter runs over. A non-negative
// Cutoff is a disrupted link: it delivers at most that many batch items
// (across both synchronization legs) before dying. A negative Cutoff is a
// reliable link — EncounterLink over a reliable link is exactly
// EncounterBudget.
type Link struct {
	Cutoff int
}

// ReliableLink returns a link that never fails.
func ReliableLink() Link { return Link{Cutoff: -1} }

// EncounterLink is EncounterBudget over a possibly-disrupted link. When the
// link dies mid-batch the interrupted synchronization aborts transactionally:
// the target discards the partial batch without applying any of it, leaving
// its knowledge untouched, so the next encounter re-offers exactly the
// versions this one failed to deliver and at-most-once delivery is
// preserved. The remainder of the encounter (including the second leg) is
// skipped — the link is gone.
func EncounterLink(a, b *Replica, budget Budget, link Link) EncounterResult {
	if link.Cutoff < 0 {
		return EncounterBudget(a, b, budget)
	}
	var res EncounterResult
	var ok bool
	res.AtoB, ok = syncLink(a, b, budget, false, &link)
	if !ok {
		return res
	}
	if budget.unlimited() {
		res.BtoA, _ = syncLink(b, a, budget, false, &link)
		return res
	}
	second, strict, open := secondLeg(budget, res.AtoB)
	if !open {
		return res
	}
	res.BtoA, _ = syncLink(b, a, second, strict, &link)
	return res
}

// syncLink performs one directed synchronization over a disrupted link,
// consuming the link's remaining item allowance. ok is false when the link
// died mid-batch: the sync was aborted and nothing was applied.
func syncLink(source, target *Replica, budget Budget, strictBytes bool, link *Link) (SyncResult, bool) {
	req := makeRequest(source, target, budget, strictBytes)
	kbytes := req.KnowledgeWireBytes()
	resp := source.HandleSyncRequest(req)
	fallback := false
	if resp.NeedKnowledge {
		// The fallback round exchanges knowledge frames only — no batch
		// items cross — so it does not consume the link's item allowance.
		fallback = true
		req = fallbackRequest(source, target, req)
		kbytes += req.KnowledgeWireBytes()
		resp = source.HandleSyncRequest(req)
	}
	if len(resp.Items) > link.Cutoff {
		// The link died after link.Cutoff items had crossed. The target never
		// received a complete batch, so it applies nothing: a partial apply
		// would fold partial knowledge and break resume-correctness.
		crossed := resp.Items[:link.Cutoff]
		target.AbortSync()
		var wasted int64
		for i := range crossed {
			wasted += itemWireBytes(crossed[i].Item)
		}
		return SyncResult{
			Sent:           len(crossed),
			SentBytes:      wasted,
			Truncated:      true,
			Aborted:        true,
			KnowledgeBytes: kbytes,
			Fallback:       fallback,
		}, false
	}
	link.Cutoff -= len(resp.Items)
	apply := target.ApplyBatch(resp)
	return SyncResult{
		Sent:           len(resp.Items),
		SentBytes:      BatchBytes(resp),
		Truncated:      resp.Truncated,
		KnowledgeBytes: kbytes,
		Fallback:       fallback,
		Apply:          apply,
	}, true
}
