package replica

// Budget bounds one synchronization or encounter: a maximum item count
// and/or a maximum payload volume (zero fields mean unlimited).
type Budget struct {
	Items int
	Bytes int64
}

// unlimited reports whether the budget imposes no bound at all.
func (b Budget) unlimited() bool { return b.Items <= 0 && b.Bytes <= 0 }

// SyncResult summarizes one directed synchronization.
type SyncResult struct {
	Sent      int
	SentBytes int64
	Truncated bool
	Apply     ApplyStats
}

// Sync performs one in-process synchronization in which target pulls from
// source: the target issues a request, the source assembles the batch, and
// the target applies it. maxItems bounds the batch (0 = unlimited).
func Sync(source, target *Replica, maxItems int) SyncResult {
	return SyncBudget(source, target, Budget{Items: maxItems})
}

// SyncBudget is Sync with a full bandwidth budget (items and/or bytes).
func SyncBudget(source, target *Replica, budget Budget) SyncResult {
	return syncBudget(source, target, budget, false)
}

func syncBudget(source, target *Replica, budget Budget, strictBytes bool) SyncResult {
	req := target.MakeSyncRequest(budget.Items)
	req.MaxBytes = budget.Bytes
	req.StrictBytes = strictBytes
	resp := source.HandleSyncRequest(req)
	apply := target.ApplyBatch(resp)
	return SyncResult{
		Sent:      len(resp.Items),
		SentBytes: BatchBytes(resp),
		Truncated: resp.Truncated,
		Apply:     apply,
	}
}

// EncounterResult summarizes one encounter (two syncs with alternating
// roles).
type EncounterResult struct {
	AtoB SyncResult // b pulls from a
	BtoA SyncResult // a pulls from b
}

// Encounter models a contact between two replicas as the paper's emulation
// does: two synchronizations with the source and target roles alternating.
// maxItems, when positive, is a shared per-encounter transfer budget: items
// sent in the first sync count against what the second may send.
func Encounter(a, b *Replica, maxItems int) EncounterResult {
	return EncounterBudget(a, b, Budget{Items: maxItems})
}

// EncounterBudget is Encounter with a full bandwidth budget shared across
// both syncs: items and bytes consumed by the first leg reduce what the
// second may use.
func EncounterBudget(a, b *Replica, budget Budget) EncounterResult {
	var res EncounterResult
	res.AtoB = SyncBudget(a, b, budget)
	if budget.unlimited() {
		res.BtoA = SyncBudget(b, a, budget)
		return res
	}
	second := budget
	if budget.Items > 0 {
		second.Items = budget.Items - res.AtoB.Sent
		if second.Items <= 0 {
			return res
		}
	}
	strict := false
	if budget.Bytes > 0 {
		second.Bytes = budget.Bytes - res.AtoB.SentBytes
		if second.Bytes <= 0 {
			return res
		}
		// The remainder is a hard cap: the at-least-one exception applied to
		// the encounter budget already, on the first leg.
		strict = true
	}
	res.BtoA = syncBudget(b, a, second, strict)
	return res
}
