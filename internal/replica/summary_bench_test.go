package replica

import (
	"fmt"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/vclock"
)

// newBenchTarget builds a summaries-capable replica whose knowledge spans
// creators×perCreator versions plus excs exceptions — the ≥10k-version shape
// where the knowledge frame, not the item batch, dominates encounter bytes.
func newBenchTarget(b *testing.B, summaries bool, digestMin, creators, perCreator, excs int) *Replica {
	b.Helper()
	r := New(Config{
		ID: "tgt", OwnAddresses: []string{"addr:tgt"},
		SyncSummaries: summaries, SummaryDigestMin: digestMin,
	})
	for c := 0; c < creators; c++ {
		id := vclock.ReplicaID(fmt.Sprintf("bus%03d", c))
		for s := 1; s <= perCreator; s++ {
			r.know.Add(vclock.Version{Replica: id, Seq: uint64(s)})
		}
	}
	// Exceptions: versions two above each creator's contiguous prefix, so
	// they can never compact into the base.
	for e := 0; e < excs; e++ {
		id := vclock.ReplicaID(fmt.Sprintf("bus%03d", e%creators))
		r.know.Add(vclock.Version{Replica: id, Seq: uint64(perCreator + 2 + e/creators)})
	}
	return r
}

// BenchmarkKnowledgeFrame measures the per-sync knowledge frame each request
// representation ships at 10k+ known versions: the exact v1 frame, the Bloom
// digest a summaries-enabled replica sends on first contact, and the delta a
// recurring pair settles into. wireB/frame is the encoded frame size the
// transport pays per sync — the number BENCH_sync.json records and the ≥5×
// reduction criterion reads.
func BenchmarkKnowledgeFrame(b *testing.B) {
	const (
		creators   = 200
		perCreator = 50
		excs       = 1000
	)

	b.Run("full", func(b *testing.B) {
		r := newBenchTarget(b, false, 0, creators, perCreator, excs)
		var wire int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := r.MakeSyncRequest(0)
			wire += req.KnowledgeWireBytes()
		}
		b.ReportMetric(float64(wire)/float64(b.N), "wireB/frame")
	})

	b.Run("digest", func(b *testing.B) {
		r := newBenchTarget(b, true, 0, creators, perCreator, excs)
		var wire int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A distinct peer per iteration keeps every request on the
			// first-contact digest path rather than upgrading to deltas.
			req := r.MakeSummaryRequest(vclock.ReplicaID(fmt.Sprintf("p%d", i)), 0)
			if req.Digest == nil {
				b.Fatal("expected a digest frame")
			}
			wire += req.KnowledgeWireBytes()
		}
		b.ReportMetric(float64(wire)/float64(b.N), "wireB/frame")
	})

	// The digest's win scales with how exception-dominated the knowledge is:
	// the base vector travels exactly either way, but each exception costs a
	// handful of exact bytes against ~1.2 Bloom bytes. full-excheavy is the
	// exact baseline at the same exception-dominated shape.
	b.Run("full-excheavy", func(b *testing.B) {
		r := newBenchTarget(b, false, 0, 20, perCreator, 9000)
		var wire int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := r.MakeSyncRequest(0)
			wire += req.KnowledgeWireBytes()
		}
		b.ReportMetric(float64(wire)/float64(b.N), "wireB/frame")
	})

	b.Run("digest-excheavy", func(b *testing.B) {
		r := newBenchTarget(b, true, 0, 20, perCreator, 9000)
		var wire int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := r.MakeSummaryRequest(vclock.ReplicaID(fmt.Sprintf("p%d", i)), 0)
			if req.Digest == nil {
				b.Fatal("expected a digest frame")
			}
			wire += req.KnowledgeWireBytes()
		}
		b.ReportMetric(float64(wire)/float64(b.N), "wireB/frame")
	})

	b.Run("delta", func(b *testing.B) {
		// A digest-mode first contact leaves the source with no exact
		// baseline, so digest pairs never upgrade to deltas; disabling the
		// digest (huge SummaryDigestMin) makes first contact a tagged full
		// frame, which establishes the frontier. Thereafter each sync ships
		// only what the replica learned since — here one new own version per
		// encounter, the steady state of a recurring pair.
		r := newBenchTarget(b, true, 1<<30, creators, perCreator, excs)
		r.MakeSummaryRequest("peer", 0)
		var wire int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.CreateItem(item.Metadata{
				Source: "addr:tgt", Destinations: []string{"addr:peer"}, Kind: "message",
			}, nil)
			req := r.MakeSummaryRequest("peer", 0)
			if req.Delta == nil {
				b.Fatal("expected a delta frame")
			}
			wire += req.KnowledgeWireBytes()
		}
		b.ReportMetric(float64(wire)/float64(b.N), "wireB/frame")
	})
}

// TestKnowledgeFrameReduction pins the acceptance criterion outside the
// benchmark loop: at 10k+ known versions, both compact representations must
// shrink the knowledge frame at least 5× against the exact v1 encoding.
func TestKnowledgeFrameReduction(t *testing.T) {
	r := New(Config{ID: "tgt", OwnAddresses: []string{"addr:tgt"}, SyncSummaries: true})
	for c := 0; c < 200; c++ {
		id := vclock.ReplicaID(fmt.Sprintf("bus%03d", c))
		for s := 1; s <= 50; s++ {
			r.know.Add(vclock.Version{Replica: id, Seq: uint64(s)})
		}
		for e := 0; e < 5; e++ {
			r.know.Add(vclock.Version{Replica: id, Seq: uint64(52 + e)})
		}
	}
	full := int64(r.know.WireSize())
	digestReq := r.MakeSummaryRequest("first-contact", 0)
	if digestReq.Digest == nil {
		t.Fatal("expected digest on first contact")
	}
	// Deltas require an exact baseline at the source, which only a tagged
	// full frame establishes — the fallback request is that frame.
	r.MakeFallbackRequest("first-contact", 0, nil)
	r.CreateItem(item.Metadata{
		Source: "addr:tgt", Destinations: []string{"addr:p"}, Kind: "message",
	}, nil)
	deltaReq := r.MakeSummaryRequest("first-contact", 0)
	if deltaReq.Delta == nil {
		t.Fatal("expected delta on second contact")
	}
	// The digest compresses only the exception part (the base vector must
	// travel exactly), so its win at this base-heavy shape is modest; the
	// steady-state delta is what carries the ≥5× acceptance criterion.
	if dw := digestReq.KnowledgeWireBytes(); dw <= 0 || dw >= full {
		t.Errorf("digest frame %dB did not shrink below full %dB", dw, full)
	}
	if dw := deltaReq.KnowledgeWireBytes(); dw <= 0 || dw*5 > full {
		t.Errorf("delta frame %dB vs full %dB: reduction below 5×", dw, full)
	}
}
