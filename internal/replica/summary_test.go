package replica

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"replidtn/internal/item"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/vclock"
)

// wireBatchItem builds a batch item with trace-realistic metadata (address
// lengths, timestamps, transient routing state) and a payload of the given
// size, for measuring real encoded frame costs.
func wireBatchItem(n uint64, payload int) BatchItem {
	return BatchItem{
		Item: &item.Item{
			ID:      item.ID{Creator: "bus07", Num: n},
			Version: vclock.Version{Replica: "bus07", Seq: n},
			Meta: item.Metadata{
				Source:       "user:17",
				Destinations: []string{"user:42"},
				Kind:         "message",
				Created:      86400 + int64(n),
				Expires:      86400 + int64(n) + 43200,
			},
			Payload: make([]byte, payload),
		},
		Transient: item.Transient{item.FieldTTL: 7},
	}
}

// TestMetadataOverheadCoversEncodedFrame pins the byte-budget model to the
// wire: itemWireBytes charges payload + metadataOverhead per batch item, and
// budgets overrun if that underestimates what the transport actually encodes.
// The test gob-encodes responses differing by exactly one item and checks the
// marginal cost — steady-state, after gob's one-time type descriptors are
// paid — never exceeds the constant, with and without payload.
func TestMetadataOverheadCoversEncodedFrame(t *testing.T) {
	encoded := func(n, payload int) int {
		resp := &SyncResponse{SourceID: "bus07"}
		for i := 0; i < n; i++ {
			resp.Items = append(resp.Items, wireBatchItem(uint64(i+1), payload))
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	for _, payload := range []int{0, 100, 1000} {
		marginal := encoded(9, payload) - encoded(8, payload)
		overhead := marginal - payload
		if overhead > metadataOverhead {
			t.Errorf("payload %d: encoded marginal item overhead %dB exceeds metadataOverhead=%d — byte budgets underestimate",
				payload, overhead, metadataOverhead)
		}
		if overhead <= 0 {
			t.Errorf("payload %d: marginal overhead %dB not positive — measurement broken", payload, overhead)
		}
	}
}

// summaryScenario drives one randomized twin build: identical item creation
// and encounter order, with summary mode on or off at every replica. The
// returned IDs are every item addressed to the target.
func summaryScenario(seed int64, summaries bool) (a, b *Replica, toB []item.ID) {
	rng := rand.New(rand.NewSource(seed))
	a = New(Config{
		ID: "a", OwnAddresses: []string{"addr:a"},
		Policy:        epidemic.New(10),
		SyncSummaries: summaries, SummaryDigestMin: 1,
	})
	b = New(Config{
		ID: "b", OwnAddresses: []string{"addr:b"},
		SyncSummaries: summaries, SummaryDigestMin: 1,
	})
	create := func(r *Replica, from string, dests []string) {
		it := r.CreateItem(item.Metadata{
			Source: from, Destinations: dests, Kind: "message",
		}, []byte("payload"))
		for _, d := range dests {
			if d == "addr:b" {
				toB = append(toB, it.ID)
				break
			}
		}
	}
	// Feeders shape b's knowledge: items addressed only to a leave gaps in
	// b's view of the feeder, so b's exception set ranges from empty (no
	// feeders, or to-b prefixes) to all-exception (to-a items first).
	// Dual-addressed items reach both replicas through plain filter
	// matching, which plants versions from b's exception set in a's store —
	// candidates the Bloom digest can never decide (no false negatives), so
	// the corpus deterministically exercises the fallback round too.
	feeders := rng.Intn(4)
	for i := 0; i < feeders; i++ {
		fid := fmt.Sprintf("f%d", i)
		f := New(Config{ID: vclock.ReplicaID(fid), OwnAddresses: []string{"addr:" + fid}})
		for j, n := 0, rng.Intn(7); j < n; j++ {
			var dests []string
			switch rng.Intn(3) {
			case 0:
				dests = []string{"addr:a"}
			case 1:
				dests = []string{"addr:b"}
			default:
				dests = []string{"addr:a", "addr:b"}
			}
			create(f, "addr:"+fid, dests)
		}
		Encounter(f, b, 0)
		Encounter(f, a, 0)
	}
	for j, n := 0, rng.Intn(4); j < n; j++ {
		create(a, "addr:a", []string{"addr:b"})
	}
	return a, b, toB
}

// TestQuickDigestSyncDeliversExactly is the property-test satellite: across
// random knowledge/exception shapes — including empty knowledge and
// all-exception knowledge — a digest-mode sync must deliver exactly what a
// full-knowledge sync delivers: never a duplicate, never a lost item, and
// apply-stat-identical to the v1 twin.
func TestQuickDigestSyncDeliversExactly(t *testing.T) {
	var digests, fallbacks int
	prop := func(seed int64) bool {
		run := func(summaries bool) (SyncResult, SyncResult, *Replica, []item.ID) {
			a, b, toB := summaryScenario(seed, summaries)
			r1 := Sync(a, b, 0)
			// Fresh traffic, then a second sync: recurring pairs ride the
			// delta path in summary mode.
			extra := a.CreateItem(item.Metadata{
				Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
			}, []byte("late"))
			toB = append(toB, extra.ID)
			r2 := Sync(a, b, 0)
			return r1, r2, b, toB
		}
		p1, p2, pb, ids := run(false)
		s1, s2, sb, _ := run(true)
		digests += sb.Stats().KnowledgeDigests
		fallbacks += sb.Stats().SummaryFallbacks
		if p1.Apply != s1.Apply || p2.Apply != s2.Apply {
			t.Logf("seed %d: apply stats diverged:\nv1 %+v / %+v\nv2 %+v / %+v", seed, p1.Apply, p2.Apply, s1.Apply, s2.Apply)
			return false
		}
		if sb.Stats().Duplicates != 0 {
			t.Logf("seed %d: digest sync produced %d duplicates", seed, sb.Stats().Duplicates)
			return false
		}
		for _, id := range ids {
			if !sb.HasItem(id) {
				t.Logf("seed %d: digest sync lost item %s", seed, id)
				return false
			}
			if !pb.HasItem(id) {
				t.Logf("seed %d: v1 twin lost item %s — scenario broken", seed, id)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
	// The corpus must actually exercise the summary machinery, including the
	// ambiguous-digest fallback, or the property is vacuous.
	if digests == 0 {
		t.Error("no run sent a Bloom digest")
	}
	if fallbacks == 0 {
		t.Error("no run hit the exact-knowledge fallback round")
	}
}

// TestDeltaRecurringPair walks a recurring pair through the delta upgrade
// path: tagged full on first contact, deltas after, with every sync's
// knowledge-byte accounting visible in the result.
func TestDeltaRecurringPair(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, SyncSummaries: true})
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, SyncSummaries: true})
	send(a, "addr:a", "addr:b")
	r1 := Sync(a, b, 0)
	if r1.Apply.Delivered != 1 || r1.Fallback {
		t.Fatalf("first sync: %+v", r1)
	}
	if got := b.Stats().KnowledgeFulls; got != 1 {
		t.Errorf("first contact sent %d full frames, want 1 (tagged, frontier-establishing)", got)
	}
	for i := 0; i < 3; i++ {
		send(a, "addr:a", "addr:b")
		r := Sync(a, b, 0)
		if r.Apply.Delivered != 1 || r.Fallback {
			t.Fatalf("delta sync %d: %+v", i, r)
		}
		if r.KnowledgeBytes <= 0 {
			t.Errorf("delta sync %d: no knowledge bytes accounted", i)
		}
		if got, want := b.Stats().KnowledgeDeltas, i+1; got != want {
			t.Errorf("after delta sync %d: %d delta frames, want %d", i, got, want)
		}
	}
	if got := b.Stats().SummaryFallbacks; got != 0 {
		t.Errorf("healthy recurring pair hit %d fallbacks", got)
	}
}

// TestSourceRestartForcesDeltaResync crash-restarts the source via
// snapshot/restore: its cached delta baseline is gone, so the target's next
// delta frame must be refused and resolved by one exact-knowledge fallback
// round — after which the pair resumes delta mode.
func TestSourceRestartForcesDeltaResync(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, SyncSummaries: true})
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, SyncSummaries: true})
	send(a, "addr:a", "addr:b")
	Sync(a, b, 0)
	send(a, "addr:a", "addr:b")
	if r := Sync(a, b, 0); r.Fallback || r.Apply.Delivered != 1 {
		t.Fatalf("pre-crash delta sync: %+v", r)
	}

	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a2 := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, SyncSummaries: true})
	if err := a2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	send(a2, "addr:a", "addr:b")
	r := Sync(a2, b, 0)
	if !r.Fallback {
		t.Error("restarted source accepted a delta against a baseline it no longer holds")
	}
	if r.Apply.Delivered != 1 || r.Apply.Duplicates != 0 {
		t.Errorf("post-crash sync delivered wrong batch: %+v", r.Apply)
	}
	if got := b.Stats().SummaryFallbacks; got != 1 {
		t.Errorf("%d fallbacks, want exactly 1", got)
	}
	// The fallback's tagged full frame re-established the frontier: the pair
	// is back on deltas.
	send(a2, "addr:a", "addr:b")
	deltas := b.Stats().KnowledgeDeltas
	if r := Sync(a2, b, 0); r.Fallback || r.Apply.Delivered != 1 {
		t.Fatalf("post-recovery delta sync: %+v", r)
	}
	if got := b.Stats().KnowledgeDeltas; got != deltas+1 {
		t.Errorf("pair did not resume delta mode after fallback: %d deltas, want %d", got, deltas+1)
	}
}

// TestTargetRestartBumpsEpoch crash-restarts the target: the restore bumps
// its epoch and clears its frontiers, so it re-establishes the pair with a
// freshly tagged full frame — no stale delta is ever sent, and no fallback
// round is needed.
func TestTargetRestartBumpsEpoch(t *testing.T) {
	a := New(Config{ID: "a", OwnAddresses: []string{"addr:a"}, SyncSummaries: true})
	b := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, SyncSummaries: true})
	send(a, "addr:a", "addr:b")
	Sync(a, b, 0)
	send(a, "addr:a", "addr:b")
	Sync(a, b, 0)
	if got := b.Epoch(); got != 1 {
		t.Fatalf("fresh replica epoch %d, want 1", got)
	}

	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b2 := New(Config{ID: "b", OwnAddresses: []string{"addr:b"}, SyncSummaries: true})
	if err := b2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got := b2.Epoch(); got != 2 {
		t.Errorf("restored epoch %d, want 2", got)
	}
	fulls := b2.Stats().KnowledgeFulls
	send(a, "addr:a", "addr:b")
	r := Sync(a, b2, 0)
	if r.Fallback {
		t.Error("restarted target needed a fallback — it should have sent a tagged full frame directly")
	}
	if r.Apply.Delivered != 1 || r.Apply.Duplicates != 0 {
		t.Errorf("post-restart sync: %+v", r.Apply)
	}
	if got := b2.Stats().KnowledgeFulls; got != fulls+1 {
		t.Errorf("restarted target sent %d full frames, want %d", got, fulls+1)
	}
	// And the new-epoch baseline supports deltas again.
	send(a, "addr:a", "addr:b")
	if r := Sync(a, b2, 0); r.Fallback || r.Apply.Delivered != 1 {
		t.Fatalf("new-epoch delta sync: %+v", r)
	}
	if got := b2.Stats().KnowledgeDeltas; got != 1 {
		t.Errorf("new incarnation sent %d deltas, want 1", got)
	}
}

// TestSummaryPeerCapBoundsState sprays fresh self-declared peer identities
// at both sides of the summary state. Without the cap every identity pins a
// knowledge clone (a baseline on the source side, a frontier on the target
// side), handing a hostile dialer unbounded server memory; with it the maps
// stay at SummaryPeerCap with least-recently-used pairs evicted, and an
// evicted pair degrades to a NeedKnowledge fallback round, never to wrong
// knowledge.
func TestSummaryPeerCapBoundsState(t *testing.T) {
	const limit = 4

	// Source side: tagged full frames under ever-fresh TargetIDs.
	src := New(Config{ID: "src", OwnAddresses: []string{"addr:src"}, SummaryPeerCap: limit})
	know := vclock.NewKnowledge()
	know.Add(vclock.Version{Replica: "x", Seq: 1})
	for i := 0; i < 10*limit; i++ {
		src.HandleSyncRequest(&SyncRequest{
			TargetID:  vclock.ReplicaID(fmt.Sprintf("t%d", i)),
			Knowledge: know.Clone(),
			Epoch:     1, Gen: 1,
		})
	}
	if n := len(src.peerKnow); n > limit {
		t.Errorf("peerKnow holds %d baselines after identity spray, cap %d", n, limit)
	}
	// The most recent identities survive (LRU), the oldest are gone.
	if src.peerKnow[vclock.ReplicaID(fmt.Sprintf("t%d", 10*limit-1))] == nil {
		t.Error("most recent baseline was evicted")
	}
	// A delta from an evicted pair is refused, not served from stale state.
	resp := src.HandleSyncRequest(&SyncRequest{
		TargetID: "t0",
		Delta:    vclock.NewDelta(1, 2, nil),
	})
	if !resp.NeedKnowledge {
		t.Error("delta against an evicted baseline must demand a fallback round")
	}

	// Target side: initiating against ever-fresh peers.
	tgt := New(Config{ID: "tgt", OwnAddresses: []string{"addr:tgt"},
		SyncSummaries: true, SummaryPeerCap: limit})
	for i := 0; i < 10*limit; i++ {
		tgt.MakeSummaryRequest(vclock.ReplicaID(fmt.Sprintf("p%d", i)), 0)
	}
	if n := len(tgt.frontiers); n > limit {
		t.Errorf("frontiers holds %d entries after peer spray, cap %d", n, limit)
	}
	// An evicted frontier just re-establishes with a tagged full frame.
	fulls := tgt.Stats().KnowledgeFulls
	if req := tgt.MakeSummaryRequest("p0", 0); req.Knowledge == nil || req.Epoch == 0 {
		t.Error("evicted pair must restart with a tagged full frame")
	}
	if got := tgt.Stats().KnowledgeFulls; got != fulls+1 {
		t.Errorf("re-establishing frame counted %d fulls, want %d", got, fulls+1)
	}
}
