// Allocation budgets for the //dtn:hotpath functions exercised by the sync
// benchmarks. The hotpathalloc analyzer forbids the allocation *patterns*
// statically; these budgets pin the measured *counts*, so a regression that
// sneaks past the analyzer (a library call that starts allocating, an
// escape-analysis change) still fails `make bench`.
//
// Excluded under -race: the race runtime instruments allocations and
// inflates the counts.

//go:build !race

package replica

import (
	"testing"
)

// TestSyncAllocBudget pins allocs/op for the two sync entry points built
// from //dtn:hotpath functions.
func TestSyncAllocBudget(t *testing.T) {
	src := newBenchSource(t, 1000)

	// MakeSyncRequest is two allocations by design: the request struct and
	// the O(1) copy-on-write knowledge clone header.
	req := benchRequest(1)
	makeAllocs := testing.AllocsPerRun(100, func() {
		if r := src.MakeSyncRequest(1); r == nil {
			t.Fatal("nil request")
		}
	})
	if makeAllocs > 2 {
		t.Errorf("MakeSyncRequest allocates %.1f/op, budget 2 (request struct + knowledge clone header)", makeAllocs)
	}

	// HandleSyncRequest at the paper's one-item encounter budget: the
	// bounded selector keeps batch assembly allocation-free per scanned
	// entry, so the cost is response assembly plus the single materialized
	// item, not the 1000-entry scan.
	handleAllocs := testing.AllocsPerRun(100, func() {
		if resp := src.HandleSyncRequest(req); len(resp.Items) == 0 {
			t.Fatal("empty batch")
		}
	})
	if handleAllocs > 20 {
		t.Errorf("HandleSyncRequest(maxItems=1) allocates %.1f/op over a 1000-entry store, budget 20", handleAllocs)
	}
}
