package discovery

import (
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock: tests advance it explicitly instead of
// sleeping through real TTLs.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// startPair launches two discoverers beaconing at each other over loopback.
// clockA, when non-nil, is injected into node A's freshness accounting.
func startPair(t *testing.T, interval time.Duration, clockA func() time.Time) (*Discoverer, *Discoverer) {
	t.Helper()
	// Bind both sockets first so each knows the other's UDP address.
	connA, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	connB, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := connA.LocalAddr().String(), connB.LocalAddr().String()
	connA.Close()
	connB.Close()

	da := New(Config{
		Self: "nodeA", TCPAddr: "127.0.0.1:9001",
		Listen: addrA, Targets: []string{addrB}, Interval: interval,
		Clock: clockA,
	})
	db := New(Config{
		Self: "nodeB", TCPAddr: "127.0.0.1:9002",
		Listen: addrB, Targets: []string{addrA}, Interval: interval,
	})
	if _, err := da.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(da.Stop)
	if _, err := db.Start(); err != nil {
		da.Stop()
		t.Fatal(err)
	}
	t.Cleanup(db.Stop)
	return da, db
}

func waitFor(t *testing.T, cond func() bool, within time.Duration, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMutualDiscovery(t *testing.T) {
	da, db := startPair(t, 50*time.Millisecond, nil)
	waitFor(t, func() bool { return len(da.Peers()) == 1 && len(db.Peers()) == 1 },
		3*time.Second, "mutual discovery")
	pa := da.Peers()[0]
	if pa.ID != "nodeB" || pa.Addr != "127.0.0.1:9002" {
		t.Errorf("A discovered %+v", pa)
	}
	pb := db.Peers()[0]
	if pb.ID != "nodeA" || pb.Addr != "127.0.0.1:9001" {
		t.Errorf("B discovered %+v", pb)
	}
	if got := da.Addrs(); len(got) != 1 || got[0] != "127.0.0.1:9002" {
		t.Errorf("Addrs() = %v", got)
	}
}

func TestOnPeerFiresOncePerAppearance(t *testing.T) {
	var mu sync.Mutex
	var events []Peer
	connA, _ := net.ListenPacket("udp", "127.0.0.1:0")
	connB, _ := net.ListenPacket("udp", "127.0.0.1:0")
	addrA, addrB := connA.LocalAddr().String(), connB.LocalAddr().String()
	connA.Close()
	connB.Close()
	da := New(Config{
		Self: "nodeA", TCPAddr: "a", Listen: addrA, Targets: nil,
		Interval: 30 * time.Millisecond,
		OnPeer: func(p Peer) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		},
	})
	db := New(Config{
		Self: "nodeB", TCPAddr: "127.0.0.1:9002",
		Listen: addrB, Targets: []string{addrA}, Interval: 30 * time.Millisecond,
	})
	if _, err := da.Start(); err != nil {
		t.Fatal(err)
	}
	defer da.Stop()
	if _, err := db.Start(); err != nil {
		t.Fatal(err)
	}
	defer db.Stop()
	waitFor(t, func() bool { return len(da.Peers()) == 1 }, 3*time.Second, "discovery")
	// Let several more beacons arrive: OnPeer must not re-fire.
	time.Sleep(150 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 {
		t.Errorf("OnPeer fired %d times, want 1", len(events))
	}
}

func TestPeerExpiry(t *testing.T) {
	clk := newFakeClock()
	da, db := startPair(t, 30*time.Millisecond, clk.Now)
	waitFor(t, func() bool { return len(da.Peers()) == 1 }, 3*time.Second, "discovery")
	db.Stop()
	// Expiry is driven by the injected clock, not by sleeping through the
	// TTL: each poll jumps well past it, so once B's last in-flight beacon
	// has drained the registry must read empty.
	waitFor(t, func() bool {
		clk.Advance(time.Second)
		return len(da.Peers()) == 0
	}, 3*time.Second, "expiry")
}

// TestObserveWithInjectedClock exercises the registry state machine without
// sockets: freshness, TTL expiry, and OnPeer re-fire are all a pure function
// of the injected clock.
func TestObserveWithInjectedClock(t *testing.T) {
	clk := newFakeClock()
	var fired []Peer
	d := New(Config{
		Self: "self", TCPAddr: "a", Listen: "127.0.0.1:0",
		Interval: time.Second, // TTL defaults to 3s
		OnPeer:   func(p Peer) { fired = append(fired, p) },
		Clock:    clk.Now,
	})
	d.observe(beacon{Version: beaconVersion, ID: "peer", TCPAddr: "127.0.0.1:9300"})
	if len(d.Peers()) != 1 || len(fired) != 1 {
		t.Fatalf("after first beacon: peers=%v fired=%v", d.Peers(), fired)
	}
	// A beacon within the TTL refreshes without re-firing OnPeer.
	clk.Advance(2 * time.Second)
	d.observe(beacon{Version: beaconVersion, ID: "peer", TCPAddr: "127.0.0.1:9300"})
	if len(fired) != 1 {
		t.Fatalf("OnPeer re-fired within TTL: %v", fired)
	}
	// Silence past the TTL expires the peer.
	clk.Advance(4 * time.Second)
	if got := d.Peers(); len(got) != 0 {
		t.Fatalf("peer should have expired, got %v", got)
	}
	// A re-appearance after expiry fires OnPeer again.
	d.observe(beacon{Version: beaconVersion, ID: "peer", TCPAddr: "127.0.0.1:9300"})
	if len(fired) != 2 {
		t.Fatalf("OnPeer should re-fire after expiry, fired=%v", fired)
	}
}

func TestIgnoresOwnAndMalformedBeacons(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	// Beacon to itself: must not self-register.
	d := New(Config{
		Self: "solo", TCPAddr: "127.0.0.1:9100",
		Listen: addr, Targets: []string{addr}, Interval: 20 * time.Millisecond,
	})
	if _, err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	// Inject garbage too.
	g, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte{0xff, 0x00, 0x13})
	g.Close()
	time.Sleep(100 * time.Millisecond)
	if got := d.Peers(); len(got) != 0 {
		t.Errorf("registry should stay empty, got %v", got)
	}
}

func TestDoubleStartFails(t *testing.T) {
	d := New(Config{Self: "x", TCPAddr: "a", Listen: "127.0.0.1:0"})
	if _, err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if _, err := d.Start(); err == nil {
		t.Error("second Start should fail")
	}
}

func TestStopIdempotent(t *testing.T) {
	d := New(Config{Self: "x", TCPAddr: "a", Listen: "127.0.0.1:0"})
	if _, err := d.Start(); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	d.Stop() // must not panic
}
