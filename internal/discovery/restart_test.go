package discovery

import (
	"net"
	"testing"
	"time"

	"replidtn/internal/obs"
)

// TestRestartAfterStop: Stop then Start must relaunch working send and
// receive loops. Before the done channel was recreated per Start, a restarted
// sendLoop exited on its first select and the node went silent.
func TestRestartAfterStop(t *testing.T) {
	connA, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	connB, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := connA.LocalAddr().String(), connB.LocalAddr().String()
	connA.Close()
	connB.Close()

	da := New(Config{
		Self: "nodeA", TCPAddr: "127.0.0.1:9001",
		Listen: addrA, Targets: []string{addrB}, Interval: 30 * time.Millisecond,
	})
	db := New(Config{
		Self: "nodeB", TCPAddr: "127.0.0.1:9002",
		Listen: addrB, Targets: []string{addrA}, Interval: 30 * time.Millisecond,
	})
	if _, err := db.Start(); err != nil {
		t.Fatal(err)
	}
	defer db.Stop()

	for cycle := 0; cycle < 3; cycle++ {
		if _, err := da.Start(); err != nil {
			t.Fatalf("cycle %d: Start: %v", cycle, err)
		}
		// Both directions must work every cycle: A hears B (recvLoop) and B
		// hears A's fresh beacons (sendLoop). B's registry is cleared first so
		// stale pre-restart sightings cannot satisfy the wait.
		db.mu.Lock()
		clear(db.peers)
		db.mu.Unlock()
		waitFor(t, func() bool { return len(da.Peers()) == 1 && len(db.Peers()) == 1 },
			3*time.Second, "post-restart discovery")
		da.Stop()
	}
}

// TestDiscoveryMetrics: beacon counters and the live-peer gauge move with
// traffic, rejects and expiries included.
func TestDiscoveryMetrics(t *testing.T) {
	m := &obs.DiscoveryMetrics{}
	clk := newFakeClock()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	d := New(Config{
		Self: "self", TCPAddr: "127.0.0.1:9100",
		Listen: addr, Targets: []string{addr}, Interval: 20 * time.Millisecond,
		Clock:   clk.Now,
		Metrics: m,
	})
	if _, err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	// Our own beacons loop back: sent and received but rejected, never peers.
	waitFor(t, func() bool { return m.BeaconsSent.Value() >= 2 && m.BeaconsRejected.Value() >= 2 },
		3*time.Second, "own-beacon accounting")
	if got := m.BeaconsReceived.Value(); got < m.BeaconsRejected.Value() {
		t.Errorf("received %d < rejected %d", got, m.BeaconsRejected.Value())
	}
	if m.PeersSeen.Value() != 0 || m.PeersLive.Value() != 0 {
		t.Errorf("own beacons registered as peers: seen=%d live=%d",
			m.PeersSeen.Value(), m.PeersLive.Value())
	}

	// A real peer: seen once, live, then expired by the injected clock.
	d.observe(beacon{Version: beaconVersion, ID: "peer", TCPAddr: "127.0.0.1:9300"})
	if m.PeersSeen.Value() != 1 || m.PeersLive.Value() != 1 {
		t.Errorf("after peer beacon: seen=%d live=%d, want 1/1",
			m.PeersSeen.Value(), m.PeersLive.Value())
	}
	clk.Advance(time.Minute)
	if n := len(d.Peers()); n != 0 {
		t.Fatalf("peer should have expired, registry has %d", n)
	}
	if m.PeerExpiries.Value() != 1 || m.PeersLive.Value() != 0 {
		t.Errorf("after expiry: expiries=%d live=%d, want 1/0",
			m.PeerExpiries.Value(), m.PeersLive.Value())
	}
}
