// Package discovery provides opportunistic peer discovery for live nodes:
// each node periodically beacons its identity and TCP encounter address over
// UDP and listens for other nodes' beacons, maintaining a registry of
// recently seen peers. This is the "encounter detection" half of a real DTN
// deployment — the trace-driven emulations schedule encounters explicitly,
// but live nodes (cmd/dtnnode) must notice each other first.
//
// Beacons are tiny gob frames sent to a configured set of targets (unicast
// peers on loopback or a LAN broadcast address). Peers expire from the
// registry when their beacons stop arriving, modeling the end of a contact.
package discovery

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"replidtn/internal/obs"
	"replidtn/internal/vclock"
)

// beaconVersion guards the beacon wire format.
const beaconVersion = 1

// beacon is the announcement frame.
type beacon struct {
	Version int
	ID      vclock.ReplicaID
	TCPAddr string
}

// Peer is a recently seen node.
type Peer struct {
	ID vclock.ReplicaID
	// Addr is the peer's TCP encounter address.
	Addr string
	// LastSeen is when its latest beacon arrived.
	LastSeen time.Time
}

// Config configures a Discoverer.
type Config struct {
	// Self is this node's replica ID; its own beacons are ignored.
	Self vclock.ReplicaID
	// TCPAddr is the encounter address announced in beacons.
	TCPAddr string
	// Listen is the UDP address to receive beacons on (e.g. "127.0.0.1:7700").
	Listen string
	// Targets are the UDP addresses beacons are sent to (unicast peers or a
	// broadcast address).
	Targets []string
	// Interval is the beacon period (default 2s).
	Interval time.Duration
	// TTL is how long a peer stays in the registry after its last beacon
	// (default 3 × Interval).
	TTL time.Duration
	// OnPeer, when set, fires each time a peer is seen for the first time
	// (or re-appears after expiring).
	OnPeer func(Peer)
	// Clock supplies the current time for peer freshness accounting
	// (default time.Now). Tests inject a fake clock to drive expiry
	// deterministically instead of sleeping through real TTLs.
	Clock func() time.Time
	// Metrics, when set, receives beacon counters and the live-peer gauge.
	// Nil disables instrumentation.
	Metrics *obs.DiscoveryMetrics
}

// Discoverer runs the beacon sender and listener. Create with New, then
// Start; Stop shuts both down. A stopped Discoverer can be started again —
// the peer registry survives the gap, subject to normal TTL expiry.
type Discoverer struct {
	cfg  Config
	conn net.PacketConn

	mu      sync.Mutex
	peers   map[vclock.ReplicaID]Peer
	started bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// New creates a Discoverer from cfg, applying defaults.
func New(cfg Config) *Discoverer {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * cfg.Interval
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Discoverer{
		cfg:   cfg,
		peers: make(map[vclock.ReplicaID]Peer),
		done:  make(chan struct{}),
	}
}

// Start binds the UDP socket and launches the beacon sender and listener.
// It returns the bound UDP address.
func (d *Discoverer) Start() (net.Addr, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return nil, fmt.Errorf("discovery: already started")
	}
	conn, err := net.ListenPacket("udp", d.cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("discovery: listen %s: %w", d.cfg.Listen, err)
	}
	d.conn = conn
	d.started = true
	// Stop closed the previous done channel; every Start gets a fresh one so
	// the relaunched loops do not exit on their first select.
	d.done = make(chan struct{})
	d.wg.Add(2)
	go d.sendLoop()
	go d.recvLoop()
	return conn.LocalAddr(), nil
}

// Stop shuts down the sender and listener and waits for them.
func (d *Discoverer) Stop() {
	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		return
	}
	d.started = false
	close(d.done)
	conn := d.conn
	d.mu.Unlock()
	conn.Close()
	d.wg.Wait()
}

// Peers returns the live (unexpired) registry, sorted by ID.
func (d *Discoverer) Peers() []Peer {
	now := d.cfg.Clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Peer, 0, len(d.peers))
	for id, p := range d.peers {
		if now.Sub(p.LastSeen) > d.cfg.TTL {
			delete(d.peers, id)
			if d.cfg.Metrics != nil {
				d.cfg.Metrics.PeerExpiries.Inc()
			}
			continue
		}
		out = append(out, p)
	}
	if d.cfg.Metrics != nil {
		d.cfg.Metrics.PeersLive.Set(int64(len(d.peers)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Addrs returns the live peers' TCP encounter addresses.
func (d *Discoverer) Addrs() []string {
	peers := d.Peers()
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = p.Addr
	}
	return out
}

// sendLoop beacons to every target until Stop, with an immediate first
// beacon so discovery does not wait a full interval.
func (d *Discoverer) sendLoop() {
	defer d.wg.Done()
	frame, err := d.encodeBeacon()
	if err != nil {
		return
	}
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	for {
		for _, target := range d.cfg.Targets {
			if addr, err := net.ResolveUDPAddr("udp", target); err == nil {
				if _, err := d.conn.WriteTo(frame, addr); err == nil && d.cfg.Metrics != nil {
					d.cfg.Metrics.BeaconsSent.Inc()
				}
			}
		}
		select {
		case <-d.done:
			return
		case <-ticker.C:
		}
	}
}

func (d *Discoverer) encodeBeacon() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(beacon{
		Version: beaconVersion,
		ID:      d.cfg.Self,
		TCPAddr: d.cfg.TCPAddr,
	})
	if err != nil {
		return nil, fmt.Errorf("discovery: encode beacon: %w", err)
	}
	return buf.Bytes(), nil
}

// recvLoop ingests beacons until the socket closes. Malformed frames and
// our own beacons are ignored.
func (d *Discoverer) recvLoop() {
	defer d.wg.Done()
	buf := make([]byte, 1024)
	for {
		n, _, err := d.conn.ReadFrom(buf)
		if err != nil {
			return // socket closed by Stop
		}
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.BeaconsReceived.Inc()
		}
		var b beacon
		if err := gob.NewDecoder(bytes.NewReader(buf[:n])).Decode(&b); err != nil {
			if d.cfg.Metrics != nil {
				d.cfg.Metrics.BeaconsRejected.Inc()
			}
			continue
		}
		if b.Version != beaconVersion || b.ID == d.cfg.Self || b.TCPAddr == "" {
			if d.cfg.Metrics != nil {
				d.cfg.Metrics.BeaconsRejected.Inc()
			}
			continue
		}
		d.observe(b)
	}
}

func (d *Discoverer) observe(b beacon) {
	now := d.cfg.Clock()
	d.mu.Lock()
	prev, known := d.peers[b.ID]
	fresh := !known || now.Sub(prev.LastSeen) > d.cfg.TTL
	peer := Peer{ID: b.ID, Addr: b.TCPAddr, LastSeen: now}
	d.peers[b.ID] = peer
	if d.cfg.Metrics != nil {
		if fresh {
			d.cfg.Metrics.PeersSeen.Inc()
		}
		d.cfg.Metrics.PeersLive.Set(int64(len(d.peers)))
	}
	cb := d.cfg.OnPeer
	d.mu.Unlock()
	if fresh && cb != nil {
		cb(peer)
	}
}
