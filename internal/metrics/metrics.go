// Package metrics computes the evaluation quantities the paper reports:
// message delivery delays and their cumulative distributions, delivery rates
// within deadlines, and stored-copy accounting at delivery time and at the
// end of an experiment.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Delivery records one message's fate.
type Delivery struct {
	// MsgID is the application message identifier.
	MsgID string
	// SentAt is the injection time in seconds.
	SentAt int64
	// DeliveredAt is the delivery time in seconds; < 0 when undelivered.
	DeliveredAt int64
	// CopiesAtDelivery counts replicas holding the message when delivered.
	CopiesAtDelivery int
	// CopiesAtEnd counts replicas holding the message at experiment end.
	CopiesAtEnd int
}

// Delivered reports whether the message reached its destination.
func (d Delivery) Delivered() bool { return d.DeliveredAt >= 0 }

// Delay returns the delivery delay in seconds (undefined when undelivered).
func (d Delivery) Delay() int64 { return d.DeliveredAt - d.SentAt }

// Summary aggregates deliveries for one experiment configuration.
type Summary struct {
	deliveries []Delivery
}

// NewSummary wraps a delivery set.
func NewSummary(deliveries []Delivery) *Summary {
	return &Summary{deliveries: deliveries}
}

// Total returns the number of messages.
func (s *Summary) Total() int { return len(s.deliveries) }

// DeliveredCount returns how many messages were delivered.
func (s *Summary) DeliveredCount() int {
	n := 0
	for _, d := range s.deliveries {
		if d.Delivered() {
			n++
		}
	}
	return n
}

// DeliveryRate returns the delivered fraction in [0, 1].
func (s *Summary) DeliveryRate() float64 {
	if len(s.deliveries) == 0 {
		return 0
	}
	return float64(s.DeliveredCount()) / float64(len(s.deliveries))
}

// MeanDelayHours returns the mean delivery delay of delivered messages in
// hours — the Fig. 5 quantity ("counting the delivery time of all
// messages"; in the unconstrained experiments every message is eventually
// delivered, so delivered-only and all-message means coincide).
func (s *Summary) MeanDelayHours() float64 {
	total, n := 0.0, 0
	for _, d := range s.deliveries {
		if d.Delivered() {
			total += float64(d.Delay())
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return total / float64(n) / 3600
}

// DeliveredWithin returns the fraction of all messages delivered within the
// given number of seconds — the Fig. 6 quantity (12-hour deadline).
func (s *Summary) DeliveredWithin(seconds int64) float64 {
	if len(s.deliveries) == 0 {
		return 0
	}
	n := 0
	for _, d := range s.deliveries {
		if d.Delivered() && d.Delay() <= seconds {
			n++
		}
	}
	return float64(n) / float64(len(s.deliveries))
}

// MaxDelayHours returns the worst delivered delay in hours (the Fig. 7(b)
// "worst case delay"), or NaN when nothing was delivered.
func (s *Summary) MaxDelayHours() float64 {
	max := int64(-1)
	for _, d := range s.deliveries {
		if d.Delivered() && d.Delay() > max {
			max = d.Delay()
		}
	}
	if max < 0 {
		return math.NaN()
	}
	return float64(max) / 3600
}

// CDF returns, for each delay bound in bounds (seconds, ascending), the
// percentage of all messages delivered within it — the Figs. 7, 9, 10
// series.
func (s *Summary) CDF(bounds []int64) []float64 {
	out := make([]float64, len(bounds))
	for i, b := range bounds {
		out[i] = s.DeliveredWithin(b) * 100
	}
	return out
}

// MeanCopiesAtDelivery returns the average number of stored copies per
// delivered message at the moment of its delivery — the Fig. 8 "at message
// delivery" bar.
func (s *Summary) MeanCopiesAtDelivery() float64 {
	total, n := 0.0, 0
	for _, d := range s.deliveries {
		if d.Delivered() {
			total += float64(d.CopiesAtDelivery)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return total / float64(n)
}

// MeanCopiesAtEnd returns the average number of stored copies per message at
// the end of the experiment — the Fig. 8 "at the end of experiment" bar.
func (s *Summary) MeanCopiesAtEnd() float64 {
	if len(s.deliveries) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, d := range s.deliveries {
		total += float64(d.CopiesAtEnd)
	}
	return total / float64(len(s.deliveries))
}

// Deliveries returns the underlying records.
func (s *Summary) Deliveries() []Delivery { return s.deliveries }

// HourBounds returns bounds at every hour from 1..n, in seconds.
func HourBounds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i+1) * 3600
	}
	return out
}

// DayBounds returns bounds at every day from 1..n, in seconds.
func DayBounds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i+1) * 24 * 3600
	}
	return out
}

// Series is a labeled sequence of (x, y) points used to render the paper's
// figures as text.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// FormatTable renders aligned columns: the first column is x, then one column
// per series, matching the rows a plot digitizer would extract from the
// paper's figures. Ragged series render every row out to the longest series:
// the x value comes from the first series that has one at that index, and
// shorter series print "-".
func FormatTable(xHeader string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xHeader)
	rows := 0
	for _, s := range series {
		fmt.Fprintf(&b, "%14s", s.Label)
		if len(s.X) > rows {
			rows = len(s.X)
		}
		if len(s.Y) > rows {
			rows = len(s.Y)
		}
	}
	b.WriteByte('\n')
	for i := 0; i < rows; i++ {
		wroteX := false
		for _, s := range series {
			if i < len(s.X) {
				fmt.Fprintf(&b, "%-12.4g", s.X[i])
				wroteX = true
				break
			}
		}
		if !wroteX {
			fmt.Fprintf(&b, "%-12s", "-")
		}
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%14.3f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedDelaysHours returns the delivered delays in hours, ascending
// (useful for percentile reporting and tests).
func (s *Summary) SortedDelaysHours() []float64 {
	var out []float64
	for _, d := range s.deliveries {
		if d.Delivered() {
			out = append(out, float64(d.Delay())/3600)
		}
	}
	sort.Float64s(out)
	return out
}

// PercentileDelayHours returns the p-th percentile (0 < p <= 100) of the
// delivered delays in hours, using nearest-rank; NaN when nothing was
// delivered or p is out of range.
func (s *Summary) PercentileDelayHours(p float64) float64 {
	if p <= 0 || p > 100 {
		return math.NaN()
	}
	delays := s.SortedDelaysHours()
	if len(delays) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(p / 100 * float64(len(delays))))
	if rank < 1 {
		rank = 1
	}
	return delays[rank-1]
}

// MedianDelayHours returns the median delivered delay in hours.
func (s *Summary) MedianDelayHours() float64 { return s.PercentileDelayHours(50) }
