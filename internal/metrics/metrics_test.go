package metrics

import (
	"math"
	"strings"
	"testing"
)

func sample() *Summary {
	return NewSummary([]Delivery{
		{MsgID: "m1", SentAt: 0, DeliveredAt: 3600, CopiesAtDelivery: 2, CopiesAtEnd: 4},
		{MsgID: "m2", SentAt: 0, DeliveredAt: 7200, CopiesAtDelivery: 4, CopiesAtEnd: 6},
		{MsgID: "m3", SentAt: 100, DeliveredAt: -1, CopiesAtEnd: 2},
		{MsgID: "m4", SentAt: 0, DeliveredAt: 24 * 3600, CopiesAtDelivery: 6, CopiesAtEnd: 8},
	})
}

func TestCounts(t *testing.T) {
	s := sample()
	if s.Total() != 4 {
		t.Errorf("Total = %d", s.Total())
	}
	if s.DeliveredCount() != 3 {
		t.Errorf("DeliveredCount = %d", s.DeliveredCount())
	}
	if got := s.DeliveryRate(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("DeliveryRate = %v", got)
	}
}

func TestMeanDelayHours(t *testing.T) {
	s := sample()
	want := (1.0 + 2.0 + 24.0) / 3
	if got := s.MeanDelayHours(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanDelayHours = %v, want %v", got, want)
	}
}

func TestDeliveredWithin(t *testing.T) {
	s := sample()
	if got := s.DeliveredWithin(3600); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("within 1h = %v, want 0.25", got)
	}
	if got := s.DeliveredWithin(12 * 3600); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("within 12h = %v, want 0.5", got)
	}
	if got := s.DeliveredWithin(48 * 3600); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("within 48h = %v, want 0.75 (undelivered never counts)", got)
	}
}

func TestMaxDelayHours(t *testing.T) {
	if got := sample().MaxDelayHours(); math.Abs(got-24) > 1e-12 {
		t.Errorf("MaxDelayHours = %v", got)
	}
	empty := NewSummary([]Delivery{{MsgID: "x", DeliveredAt: -1}})
	if !math.IsNaN(empty.MaxDelayHours()) {
		t.Error("no deliveries should yield NaN")
	}
}

func TestCDF(t *testing.T) {
	s := sample()
	got := s.CDF([]int64{3600, 7200, 86400})
	want := []float64{25, 50, 75}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCopies(t *testing.T) {
	s := sample()
	if got := s.MeanCopiesAtDelivery(); math.Abs(got-4) > 1e-12 {
		t.Errorf("MeanCopiesAtDelivery = %v, want 4", got)
	}
	if got := s.MeanCopiesAtEnd(); math.Abs(got-5) > 1e-12 {
		t.Errorf("MeanCopiesAtEnd = %v, want 5", got)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewSummary(nil)
	if s.DeliveryRate() != 0 || s.DeliveredWithin(10) != 0 {
		t.Error("empty summary rates should be 0")
	}
	if !math.IsNaN(s.MeanDelayHours()) || !math.IsNaN(s.MeanCopiesAtEnd()) {
		t.Error("empty summary means should be NaN")
	}
}

func TestBounds(t *testing.T) {
	h := HourBounds(3)
	if len(h) != 3 || h[0] != 3600 || h[2] != 3*3600 {
		t.Errorf("HourBounds = %v", h)
	}
	d := DayBounds(2)
	if len(d) != 2 || d[1] != 2*86400 {
		t.Errorf("DayBounds = %v", d)
	}
}

func TestSortedDelaysHours(t *testing.T) {
	got := sample().SortedDelaysHours()
	if len(got) != 3 || got[0] != 1 || got[2] != 24 {
		t.Errorf("SortedDelaysHours = %v", got)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable("hours", []Series{
		{Label: "epidemic", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Label: "prophet", X: []float64{1, 2}, Y: []float64{5}},
	})
	if !strings.Contains(out, "epidemic") || !strings.Contains(out, "prophet") {
		t.Error("missing series labels")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[2], "-") {
		t.Error("short series should render a dash")
	}
	if FormatTable("x", nil) == "" {
		t.Error("empty table should still render header")
	}
}

// TestFormatTableRaggedSeries: a later series longer than series[0] must
// render every row — the table iterates the longest series, taking x from the
// first series that still has one and dashing out the rest.
func TestFormatTableRaggedSeries(t *testing.T) {
	out := FormatTable("hours", []Series{
		{Label: "short", X: []float64{1}, Y: []float64{10}},
		{Label: "long", X: []float64{1, 2, 3}, Y: []float64{5, 6, 7}},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4 (header + longest series):\n%s", len(lines), out)
	}
	// Rows past the short series take x from the long one and dash its y.
	if !strings.HasPrefix(lines[2], "2") || !strings.HasPrefix(lines[3], "3") {
		t.Errorf("x column should come from the longer series:\n%s", out)
	}
	for _, line := range lines[2:] {
		if !strings.Contains(line, "-") {
			t.Errorf("exhausted series should render a dash: %q", line)
		}
	}
	if !strings.Contains(lines[3], "7.000") {
		t.Errorf("long series y missing from final row:\n%s", out)
	}

	// A series with y values but no x of its own still gets its rows.
	out = FormatTable("x", []Series{
		{Label: "noX", X: nil, Y: []float64{1, 2}},
	})
	lines = strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "-") {
		t.Errorf("missing x should render a dash placeholder:\n%s", out)
	}
}

// TestNaNPathsWhenNothingDelivered: every delivered-only aggregate is NaN for
// a summary whose messages all failed, and stays NaN for the empty summary.
func TestNaNPathsWhenNothingDelivered(t *testing.T) {
	undelivered := NewSummary([]Delivery{
		{MsgID: "u1", SentAt: 0, DeliveredAt: -1, CopiesAtEnd: 3},
		{MsgID: "u2", SentAt: 50, DeliveredAt: -1, CopiesAtEnd: 1},
	})
	if !math.IsNaN(undelivered.MeanDelayHours()) {
		t.Error("MeanDelayHours over undelivered messages should be NaN")
	}
	if !math.IsNaN(undelivered.MeanCopiesAtDelivery()) {
		t.Error("MeanCopiesAtDelivery over undelivered messages should be NaN")
	}
	if !math.IsNaN(undelivered.PercentileDelayHours(50)) {
		t.Error("percentile over undelivered messages should be NaN")
	}
	if !math.IsNaN(undelivered.PercentileDelayHours(100)) {
		t.Error("p100 over undelivered messages should be NaN")
	}
	// But all-message quantities stay well-defined.
	if got := undelivered.MeanCopiesAtEnd(); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanCopiesAtEnd = %v, want 2", got)
	}
	if undelivered.DeliveryRate() != 0 {
		t.Errorf("DeliveryRate = %v, want 0", undelivered.DeliveryRate())
	}

	single := NewSummary([]Delivery{{MsgID: "s", SentAt: 0, DeliveredAt: 3600}})
	if got := single.PercentileDelayHours(100); math.Abs(got-1) > 1e-12 {
		t.Errorf("p100 of a single delivery = %v, want 1", got)
	}
	if got := single.PercentileDelayHours(0.0001); math.Abs(got-1) > 1e-12 {
		t.Errorf("tiny percentile should clamp to rank 1, got %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	s := sample()
	// Delivered delays: 1h, 2h, 24h.
	if got := s.MedianDelayHours(); math.Abs(got-2) > 1e-12 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := s.PercentileDelayHours(100); math.Abs(got-24) > 1e-12 {
		t.Errorf("p100 = %v, want 24", got)
	}
	if got := s.PercentileDelayHours(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("p1 = %v, want 1", got)
	}
	if !math.IsNaN(s.PercentileDelayHours(0)) || !math.IsNaN(s.PercentileDelayHours(101)) {
		t.Error("out-of-range percentile should be NaN")
	}
	empty := NewSummary(nil)
	if !math.IsNaN(empty.MedianDelayHours()) {
		t.Error("empty summary median should be NaN")
	}
}
