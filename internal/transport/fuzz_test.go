package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/vclock"
	"replidtn/internal/wire"
)

// byteConn is a net.Conn that replays a fixed client transcript: reads drain
// the recorded bytes then hit EOF, writes succeed and are discarded. Using it
// instead of a real socket makes each fuzz exec a pure in-process parse —
// microseconds instead of an I/O-deadline wait — while driving exactly the
// code path a TCP peer reaches. Deadline behavior (slow-loris and friends)
// is covered separately by robustness_test.go.
type byteConn struct {
	r bytes.Reader
}

func (c *byteConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *byteConn) Close() error                       { return nil }
func (c *byteConn) LocalAddr() net.Addr                { return fuzzAddr{} }
func (c *byteConn) RemoteAddr() net.Addr               { return fuzzAddr{} }
func (c *byteConn) SetDeadline(t time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(t time.Time) error { return nil }

type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz" }

// FuzzServeConn feeds arbitrary bytes to the server side of an encounter:
// the gob stream is the system's outermost parse-hostile surface, reachable
// by anyone who can dial the TCP port. The invariant under test is that a
// hostile or corrupt client transcript can never panic the handler — every
// malformed frame must surface as an error, applied transactionally (nothing
// half-ingested) — and that the handler always returns within its deadline.
// The seed corpus under testdata/fuzz (regenerated with
// `go test -tags corpusgen -run WriteFuzzCorpus`) includes a full valid
// client transcript, so mutation explores the deep protocol path (hello →
// request → reverse response), not just first-frame rejections.
func FuzzServeConn(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Add(validClientTranscript(f)[:8]) // truncated mid-hello
	f.Add(validClientTranscript(f))
	f.Add(validClientTranscriptV3(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := replica.New(replica.Config{ID: "srv", OwnAddresses: []string{"addr:srv"}})
		r.CreateItem(item.Metadata{
			Source: "addr:srv", Destinations: []string{"addr:peer"}, Kind: "message",
		}, []byte("payload"))
		srv := NewServer(r, 4)
		srv.MaxWireBytes = 1 << 20

		conn := &byteConn{}
		conn.r.Reset(data)
		// The only acceptable outcomes are a clean return or a protocol
		// error; a panic fails the run.
		_ = srv.serveConn(conn)

		// Whatever the transcript did, the replica must remain internally
		// consistent: a usable knowledge structure and a servable store.
		if r.Knowledge() == nil {
			t.Fatal("replica knowledge destroyed by hostile transcript")
		}
		probe := replica.New(replica.Config{ID: "probe", OwnAddresses: []string{"addr:probe"}})
		resp := r.HandleSyncRequest(probe.MakeSyncRequest(0))
		probe.ApplyBatch(resp)
	})
}

// validClientTranscript builds the full byte stream an honest dialer sends
// during one encounter: hello, sync request, reverse sync response — one
// continuous gob stream, exactly as Encounter would produce against a peer
// holding one message.
func validClientTranscript(f testing.TB) []byte {
	f.Helper()
	registerWireTypes()
	peer := replica.New(replica.Config{ID: "peer", OwnAddresses: []string{"addr:peer"}})
	it := peer.CreateItem(item.Metadata{
		Source: "addr:peer", Destinations: []string{"addr:srv"}, Kind: "message",
	}, []byte("from peer"))

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(hello{Version: protocolBaseVersion, ID: "peer"}); err != nil {
		f.Fatal(err)
	}
	req := peer.MakeSyncRequest(4)
	if err := enc.Encode(req); err != nil {
		f.Fatal(err)
	}
	know := vclock.NewKnowledge()
	know.Add(it.Version)
	resp := &replica.SyncResponse{
		SourceID: "peer",
		Items: []replica.BatchItem{{
			Item:      it,
			Transient: item.Transient{}.Set(item.FieldHops, 1),
		}},
		LearnedKnowledge: know,
	}
	if err := enc.Encode(resp); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// validClientTranscriptV3 is the protocol-v3 counterpart: a Max-advertising
// gob hello followed by binary frames for the sync request and the reverse
// response, exactly as a v3 dialer produces them. Seeding it lets mutation
// explore the binary frame decoder behind the negotiation, not just the
// legacy gob path.
func validClientTranscriptV3(f testing.TB) []byte {
	f.Helper()
	registerWireTypes()
	peer := replica.New(replica.Config{ID: "peer", OwnAddresses: []string{"addr:peer"}})
	it := peer.CreateItem(item.Metadata{
		Source: "addr:peer", Destinations: []string{"addr:srv"}, Kind: "message",
	}, []byte("from peer"))

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(hello{Version: protocolBaseVersion, ID: "peer", Max: protocolVersion}); err != nil {
		f.Fatal(err)
	}
	appendFrame := func(msgType byte, body []byte) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)+1))
		buf.Write(hdr[:])
		buf.WriteByte(msgType)
		buf.Write(body)
	}
	reqBody, err := wire.AppendSyncRequest(nil, peer.MakeSyncRequest(4))
	if err != nil {
		f.Fatal(err)
	}
	appendFrame(frameSyncRequest, reqBody)
	know := vclock.NewKnowledge()
	know.Add(it.Version)
	resp := &replica.SyncResponse{
		SourceID: "peer",
		Items: []replica.BatchItem{{
			Item:      it,
			Transient: item.Transient{}.Set(item.FieldHops, 1),
		}},
		LearnedKnowledge: know,
	}
	respBody, err := wire.AppendSyncResponse(nil, resp) //lint:allow transientleak -- fuzz seed: the transcript reproduces the sync batch's sanctioned transmit transient
	if err != nil {
		f.Fatal(err)
	}
	appendFrame(frameSyncResponse, respBody)
	return buf.Bytes()
}

// TestServeConnRejectsMalformedFrames pins the validation layer the fuzzer
// exercises probabilistically: structurally malformed frames that gob
// decodes happily — nil knowledge, negative budgets, nil batch items — must
// be rejected at the transport boundary with nothing applied, because the
// replica's in-process contract assumes they cannot occur.
func TestServeConnRejectsMalformedFrames(t *testing.T) {
	cases := []struct {
		name string
		req  *replica.SyncRequest
		resp *replica.SyncResponse
	}{
		{name: "nil knowledge", req: &replica.SyncRequest{TargetID: "evil"}},
		{name: "negative max items", req: &replica.SyncRequest{
			TargetID: "evil", Knowledge: vclock.NewKnowledge(), MaxItems: -1,
		}},
		{name: "negative max bytes", req: &replica.SyncRequest{
			TargetID: "evil", Knowledge: vclock.NewKnowledge(), MaxBytes: -1,
		}},
		{name: "nil batch item", req: &replica.SyncRequest{
			TargetID: "evil", Knowledge: vclock.NewKnowledge(), Filter: filter.All{},
		}, resp: &replica.SyncResponse{
			SourceID: "evil", Items: []replica.BatchItem{{Item: nil}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := replica.New(replica.Config{ID: "srv", OwnAddresses: []string{"addr:srv"}})
			srv := NewServer(r, 4)
			srv.IOTimeout = 2 * time.Second
			errc := make(chan error, 1)
			srv.OnError = func(err error) { errc <- err }
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			conn, err := netDial(addr.String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			enc := gob.NewEncoder(conn)
			dec := gob.NewDecoder(conn)
			if err := enc.Encode(hello{Version: protocolBaseVersion, ID: "evil"}); err != nil {
				t.Fatal(err)
			}
			var peerHello hello
			if err := dec.Decode(&peerHello); err != nil {
				t.Fatal(err)
			}
			if err := enc.Encode(tc.req); err != nil {
				t.Fatal(err)
			}
			if tc.resp != nil {
				// The request was valid; walk the protocol to the reverse
				// leg and deliver the malformed response there.
				var legResp replica.SyncResponse
				if err := dec.Decode(&legResp); err != nil {
					t.Fatal(err)
				}
				var revReq replica.SyncRequest
				if err := dec.Decode(&revReq); err != nil {
					t.Fatal(err)
				}
				if err := enc.Encode(tc.resp); err != nil {
					t.Fatal(err)
				}
			}
			select {
			case err := <-errc:
				if err == nil {
					t.Fatal("server accepted malformed frame")
				}
			case <-time.After(3 * time.Second):
				t.Fatal("server reported no protocol error")
			}
			total, _, _ := r.StoreLen()
			if total != 0 {
				t.Fatalf("malformed exchange mutated the store: %d items", total)
			}
		})
	}
}
