// Package transport runs the replication sync protocol over real TCP
// connections, so the same replica code that powers the trace-driven
// emulations also operates as an actual distributed system.
//
// One connection carries one encounter, mirroring the emulated protocol: a
// hello exchange, then two synchronizations with alternating source/target
// roles. Hellos are always gob-encoded — gob's self-describing framing is
// what lets every protocol generation parse them — and on encounters
// negotiated at version 3 or above the sync messages that follow switch to
// explicit length-prefixed binary frames (internal/wire), with the wire-byte
// cap enforced per frame on both sides. Older encounters keep speaking pure
// gob, bit-identical to previous builds.
package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"syscall"
	"time"

	"replidtn/internal/filter"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/vclock"
	"replidtn/internal/wire"
)

// protocolVersion is the highest protocol this build speaks. Version 2 adds
// the compact knowledge summary mode (Bloom digests, delta knowledge, and
// the NeedKnowledge fallback round; see internal/replica/summary.go).
// Version 3 replaces gob with length-prefixed binary frames (internal/wire)
// for every post-hello message and enforces MaxWireBytes per frame instead
// of cumulatively per connection.
const protocolVersion = 3

// protocolBaseVersion is the version every build has ever required in the
// hello's Version field. It never changes: version 1 peers validate
// Version == 1 and know nothing of the Max field, so capability negotiation
// rides in Max while Version stays pinned at the base.
const protocolBaseVersion = 1

// defaultIOTimeout bounds one connection's total I/O when the server does not
// configure its own limit: a peer that stalls (slow-loris, dead link) is cut
// off rather than pinning a handler goroutine.
const defaultIOTimeout = 30 * time.Second

// defaultMaxWireBytes bounds the bytes read from one connection — on both the
// serving and the dialing side — when no explicit limit is configured, so an
// adversarial or broken peer cannot make the other end buffer unbounded gob
// input.
const defaultMaxWireBytes = 64 << 20

// registerOnce installs the concrete filter and routing-request types that
// travel inside interface-typed sync request fields.
var registerOnce sync.Once

func registerWireTypes() {
	registerOnce.Do(func() {
		gob.Register(filter.All{})
		gob.Register(filter.None{})
		gob.Register(&filter.Addresses{})
		gob.Register(&filter.Or{})
		gob.Register(filter.Kind{})
		gob.Register(&prophet.Request{})
		gob.Register(&maxprop.Request{})
	})
}

// RegisterRequestType makes an additional routing-policy request type
// encodable on the wire; custom policies call this once at startup.
func RegisterRequestType(req routing.Request) {
	registerWireTypes()
	gob.Register(req)
}

// hello opens each connection in both directions. Version is always
// protocolBaseVersion — the compatibility floor old peers hard-check — and
// Max, when nonzero, advertises the highest version the sender speaks; the
// encounter runs at the minimum of both sides' ceilings. Old builds omit
// Max when encoding (the field does not exist) and ignore it when decoding
// (gob drops unknown fields), and a v1-pinned new build omits it too (gob
// elides zero fields), making its hello byte-identical to an old build's —
// so every pairing of old and new interoperates.
type hello struct {
	Version int
	ID      vclock.ReplicaID
	Max     int
}

// effectiveMax clamps a configured protocol ceiling into [1, protocolVersion];
// 0 (unset) selects the build's maximum.
func effectiveMax(configured int) int {
	if configured <= 0 || configured > protocolVersion {
		return protocolVersion
	}
	return configured
}

// localHello builds our hello frame for the given ceiling.
func localHello(id vclock.ReplicaID, max int) hello {
	h := hello{Version: protocolBaseVersion, ID: id}
	if max > protocolBaseVersion {
		h.Max = max
	}
	return h
}

// negotiate returns the version an encounter runs at: the minimum of our
// ceiling and the peer's advertised one (absent Max means a v1-only peer).
func negotiate(ourMax int, peer hello) int {
	peerMax := peer.Max
	if peerMax < protocolBaseVersion {
		peerMax = protocolBaseVersion
	}
	if peerMax < ourMax {
		return peerMax
	}
	return ourMax
}

// done closes an encounter: the listener acknowledges that it applied the
// reverse batch, making the exchange synchronous for the dialer.
type done struct {
	Applied int
}

// Server accepts encounters for one replica. The zero value is not usable;
// call NewServer.
type Server struct {
	replica  *replica.Replica
	maxItems int
	// OnError, when set before Listen, observes per-connection protocol
	// errors (primarily for logging and tests).
	OnError func(error)
	// IOTimeout bounds each connection's total I/O time; 0 selects the
	// 30-second default. Set before Listen.
	IOTimeout time.Duration
	// MaxWireBytes bounds the bytes read from one connection; 0 selects the
	// 64 MiB default. A peer exceeding it fails mid-decode and the
	// connection is dropped with nothing applied. Set before Listen.
	MaxWireBytes int64
	// Metrics, when set before Listen, receives served-encounter counters,
	// wire accounting, and sync spans. Nil disables instrumentation.
	Metrics *obs.TransportMetrics
	// MaxProtocol pins the highest protocol version this server negotiates
	// (for staged rollouts and downgrade tests); 0 selects the build's
	// maximum. Set before Listen.
	MaxProtocol int

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a replica. maxItems bounds each served synchronization
// batch (0 = unlimited).
func NewServer(r *replica.Replica, maxItems int) *Server {
	registerWireTypes()
	return &Server{replica: r, maxItems: maxItems}
}

// Listen starts accepting encounters on addr (e.g. "127.0.0.1:0") and returns
// the bound address. It serves connections on background goroutines until
// Close. A server listens on at most one address: a second Listen while the
// first is active is rejected rather than silently abandoning the first
// listener and its accept goroutine.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close() //lint:allow errdiscard -- losing the race with Close: the socket was never exposed, so there is no caller to report a close failure to
		return nil, errors.New("transport: server closed")
	}
	if s.listener != nil {
		s.mu.Unlock()
		ln.Close() //lint:allow errdiscard -- the socket was never exposed; the caller only learns the Listen was rejected
		return nil, errors.New("transport: server already listening")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close() //lint:allow errdiscard -- teardown after the batch committed or failed transactionally; a close error cannot un-apply it and serveConn already surfaced any real fault via OnError
			// Errors are per-connection: a misbehaving peer must not take
			// down the server.
			if err := s.serveConn(conn); err != nil && s.OnError != nil {
				s.OnError(err)
			}
		}()
	}
}

// validationError marks frames that decoded but failed structural validation:
// the work of a hostile or broken peer, counted separately from transport
// faults.
type validationError struct{ err error }

func (e *validationError) Error() string { return e.err.Error() }
func (e *validationError) Unwrap() error { return e.err }

// errVersionMismatch classifies hello frames from an incompatible peer.
var errVersionMismatch = errors.New("protocol version mismatch")

// validateRequest rejects structurally malformed sync requests before they
// reach the replica. gob happily decodes a frame with fields omitted or
// forged, and the replica's in-process contract (a knowledge frame present,
// non-negative budgets) must not be enforceable by a hostile peer's byte
// stream: a nil knowledge would panic HandleSyncRequest, and a negative
// MaxItems would bypass the server's batch clamp. The version rule: a v1
// encounter carries exactly an exact-knowledge frame; a v2 encounter carries
// exactly one of exact knowledge, digest, or delta.
func validateRequest(req *replica.SyncRequest, ver int) error {
	frames := 0
	if req.Knowledge != nil {
		frames++
	}
	if req.Digest != nil {
		frames++
	}
	if req.Delta != nil {
		frames++
	}
	if ver < 2 && (req.Digest != nil || req.Delta != nil) {
		return &validationError{errors.New("summary knowledge frame on a v1 encounter")}
	}
	if ver < 2 && req.Knowledge == nil {
		return &validationError{errors.New("sync request missing knowledge")}
	}
	if ver >= 2 && frames != 1 {
		return &validationError{fmt.Errorf("sync request carries %d knowledge frames, want exactly 1", frames)}
	}
	if req.MaxItems < 0 || req.MaxBytes < 0 {
		return &validationError{fmt.Errorf("sync request with negative budget (items %d, bytes %d)", req.MaxItems, req.MaxBytes)}
	}
	return nil
}

// validateResponse rejects structurally malformed sync responses before
// ApplyBatch, which documents that it is only ever handed complete, valid
// batches: a nil item pointer in a decoded batch would panic it. A
// NeedKnowledge demand is a v2 frame and carries no items by contract.
func validateResponse(resp *replica.SyncResponse, ver int) error {
	if resp.NeedKnowledge {
		if ver < 2 {
			return &validationError{errors.New("knowledge demand on a v1 encounter")}
		}
		if len(resp.Items) > 0 {
			return &validationError{fmt.Errorf("knowledge demand carrying %d items", len(resp.Items))}
		}
	}
	for i := range resp.Items {
		if resp.Items[i].Item == nil {
			return &validationError{fmt.Errorf("batch item %d missing item", i)}
		}
	}
	return nil
}

// countingReader counts bytes pulled through it into *n. One connection is
// driven by one goroutine, so a plain int64 suffices.
type countingReader struct {
	r io.Reader
	n *int64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	*c.n += int64(n)
	return n, err
}

// countingWriter counts bytes pushed through it into *n.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// Binary frame layout for v3+ encounters: a uint32 little-endian length
// (covering the type byte and body, so always >= 1), a message-type byte,
// and the body in the internal/wire encoding. The length is checked against
// the wire-byte cap before any body allocation on the read side and after
// assembly on the write side, so an oversized frame is rejected by both the
// producer and the consumer.
const (
	frameSyncRequest  = 1
	frameSyncResponse = 2
	frameDone         = 3
)

// maxFrameScratch caps the encode/decode scratch buffers retained across
// frames; a single giant batch must not pin its footprint for the rest of
// the connection.
const maxFrameScratch = 4 << 20

// wireIO bundles one encounter connection's codecs with the wire-byte cap
// and frame/byte accounting the metrics hooks report. Hellos always travel
// as gob; after negotiation, upgrade switches the sync messages to binary
// frames when the encounter version is 3 or higher. Both codecs share one
// buffered reader — bufio.Reader implements io.ByteReader, so gob reads
// through it without stacking a second buffer, and bytes it read ahead
// remain available to the frame decoder after the upgrade.
type wireIO struct {
	enc   *gob.Encoder
	dec   *gob.Decoder
	br    *bufio.Reader
	lr    *io.LimitedReader
	out   countingWriter
	ver   int   // negotiated encounter version; 0 until upgrade
	limit int64 // the MaxWireBytes cap: cumulative for gob, per-frame for v3

	rbuf, wbuf          []byte
	bytesIn, bytesOut   int64
	framesIn, framesOut int64
}

func newWireIO(conn net.Conn, limit int64) *wireIO {
	w := &wireIO{limit: limit}
	w.out = countingWriter{w: conn, n: &w.bytesOut}
	w.lr = &io.LimitedReader{R: countingReader{r: conn, n: &w.bytesIn}, N: limit}
	w.br = bufio.NewReader(w.lr)
	w.enc = gob.NewEncoder(w.out)
	w.dec = gob.NewDecoder(w.br)
	return w
}

// upgrade records the negotiated version once the hello exchange settles.
// From version 3 on, the cumulative read cap gob needed is lifted and the
// same limit is enforced on each frame instead — a long-lived connection may
// move any number of frames, none larger than MaxWireBytes.
func (w *wireIO) upgrade(ver int) {
	w.ver = ver
	if ver >= 3 {
		w.lr.N = math.MaxInt64
	}
}

func (w *wireIO) encode(v any) error {
	if w.ver >= 3 {
		return w.encodeFrame(v)
	}
	if err := w.enc.Encode(v); err != nil {
		return err
	}
	w.framesOut++
	return nil
}

// encodeFrame assembles one binary frame in the reusable scratch buffer and
// writes it in a single Write. The per-frame cap is checked after assembly,
// before anything reaches the connection: a local batch too large for the
// negotiated limit fails the encounter cleanly instead of feeding the peer a
// frame it is bound to reject.
func (w *wireIO) encodeFrame(v any) error {
	buf := append(w.wbuf[:0], 0, 0, 0, 0)
	var err error
	switch v := v.(type) {
	case *replica.SyncRequest:
		buf = append(buf, frameSyncRequest)
		buf, err = wire.AppendSyncRequest(buf, v)
	case *replica.SyncResponse:
		buf = append(buf, frameSyncResponse)
		buf, err = wire.AppendSyncResponse(buf, v) //lint:allow transientleak -- BatchItem.Transient is the policy-mediated transmit copy built by transmitTransient: an explicit field of the wire protocol, not a leak of host-local state
	case done:
		buf = append(buf, frameDone)
		buf = wire.AppendDone(buf, v.Applied)
	default:
		return fmt.Errorf("transport: unframeable message type %T", v)
	}
	w.wbuf = buf
	if cap(w.wbuf) > maxFrameScratch {
		w.wbuf = nil
	}
	if err != nil {
		return err
	}
	length := len(buf) - 4
	if int64(length) > w.limit {
		return fmt.Errorf("transport: outgoing frame of %d bytes exceeds the %d-byte wire limit", length, w.limit)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(length))
	if _, err := w.out.Write(buf); err != nil {
		return err
	}
	w.framesOut++
	return nil
}

func (w *wireIO) decode(v any) error {
	if w.ver >= 3 {
		return w.decodeFrame(v)
	}
	if err := w.dec.Decode(v); err != nil {
		return err
	}
	w.framesIn++
	return nil
}

// decodeFrame reads one binary frame. The length prefix is validated against
// the per-frame cap before the body is buffered, so a hostile peer cannot
// make this side allocate past MaxWireBytes; a frame that decodes but fails
// the wire codec is a validation error, counted with the other structural
// rejections.
func (w *wireIO) decodeFrame(v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(w.br, hdr[:]); err != nil {
		return err
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	if length == 0 {
		return &validationError{errors.New("empty wire frame")}
	}
	if int64(length) > w.limit {
		return &validationError{fmt.Errorf("incoming frame of %d bytes exceeds the %d-byte wire limit", length, w.limit)}
	}
	if cap(w.rbuf) < int(length) {
		w.rbuf = make([]byte, length)
	}
	buf := w.rbuf[:length]
	if cap(w.rbuf) > maxFrameScratch {
		w.rbuf = nil
	}
	if _, err := io.ReadFull(w.br, buf); err != nil {
		return err
	}
	msgType, body := buf[0], buf[1:]
	switch v := v.(type) {
	case *replica.SyncRequest:
		if msgType != frameSyncRequest {
			return &validationError{fmt.Errorf("frame type %d, want sync request", msgType)}
		}
		req, err := wire.DecodeSyncRequest(body)
		if err != nil {
			return &validationError{err}
		}
		*v = *req
	case *replica.SyncResponse:
		if msgType != frameSyncResponse {
			return &validationError{fmt.Errorf("frame type %d, want sync response", msgType)}
		}
		resp, err := wire.DecodeSyncResponse(body)
		if err != nil {
			return &validationError{err}
		}
		*v = *resp
	case *done:
		if msgType != frameDone {
			return &validationError{fmt.Errorf("frame type %d, want done", msgType)}
		}
		applied, err := wire.DecodeDone(body)
		if err != nil {
			return &validationError{err}
		}
		v.Applied = applied
	default:
		return fmt.Errorf("transport: unframeable message type %T", v)
	}
	w.framesIn++
	return nil
}

// errClass buckets an encounter error for spans and counters: "" (success),
// timeout, refused, reset, truncated, validation, protocol, or io.
func errClass(err error) string {
	if err == nil {
		return ""
	}
	var ve *validationError
	if errors.As(err, &ve) {
		return "validation"
	}
	if errors.Is(err, errVersionMismatch) {
		return "protocol"
	}
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	case errors.Is(err, syscall.ECONNREFUSED):
		return "refused"
	case errors.Is(err, syscall.ECONNRESET):
		return "reset"
	case errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF):
		return "truncated"
	}
	return "io"
}

// record folds one finished encounter into the metrics sink. m is non-nil.
func record(m *obs.TransportMetrics, span obs.SyncSpan, w *wireIO, start time.Time, err error) {
	span.BytesIn, span.BytesOut = w.bytesIn, w.bytesOut
	span.DurationMicros = time.Since(start).Microseconds()
	span.Err = errClass(err)
	m.FramesRead.Add(w.framesIn)
	m.FramesWritten.Add(w.framesOut)
	m.BytesRead.Add(w.bytesIn)
	m.BytesWritten.Add(w.bytesOut)
	if span.Err == "validation" {
		m.ValidationRejected.Inc()
	}
	if err != nil {
		m.EncounterErrors.Inc()
	} else {
		if span.Role == obs.RoleServe {
			m.EncountersServed.Inc()
		} else {
			m.EncountersDialed.Inc()
		}
		m.EncounterMicros.Observe(span.DurationMicros)
	}
	m.Spans.Record(span)
}

// serveBatch runs one directed synchronization as the source side: decode
// the peer's request, serve it, and — when the replica demands exact
// knowledge for an unservable summary frame — run the single fallback round
// before shipping the batch. Both encounter roles serve one leg with it.
func serveBatch(w *wireIO, r *replica.Replica, maxItems, ver int) (*replica.SyncResponse, error) {
	var req replica.SyncRequest
	if err := w.decode(&req); err != nil {
		return nil, fmt.Errorf("read sync request: %w", err)
	}
	if err := validateRequest(&req, ver); err != nil {
		return nil, err
	}
	clampItems(&req, maxItems)
	resp := r.HandleSyncRequest(&req)
	if resp.NeedKnowledge {
		if err := w.encode(resp); err != nil {
			return nil, fmt.Errorf("write knowledge demand: %w", err)
		}
		var retry replica.SyncRequest
		if err := w.decode(&retry); err != nil {
			return nil, fmt.Errorf("read fallback request: %w", err)
		}
		if err := validateRequest(&retry, ver); err != nil {
			return nil, err
		}
		if retry.Knowledge == nil {
			// One fallback round, maximum: the retry must be exact. A peer
			// looping summary frames would otherwise pin this handler.
			return nil, &validationError{errors.New("fallback request without exact knowledge")}
		}
		clampItems(&retry, maxItems)
		resp = r.HandleSyncRequest(&retry)
	}
	//lint:allow transientleak -- BatchItem.Transient is the policy-mediated transmit copy built by transmitTransient (e.g. a halved spray allowance): an explicit field of the wire protocol, not a leak of host-local state
	if err := w.encode(resp); err != nil {
		return nil, fmt.Errorf("write sync response: %w", err)
	}
	return resp, nil
}

// pullBatch runs one directed synchronization as the target side: send our
// request (summary form when negotiated and enabled), retry once with exact
// knowledge if the source demands it, and apply the batch. The returned
// SyncResult carries knowledge-frame byte accounting like the in-process
// session drivers'.
func pullBatch(w *wireIO, r *replica.Replica, peer vclock.ReplicaID, maxItems, ver int) (res replica.SyncResult, err error) {
	var req *replica.SyncRequest
	if ver >= 2 && r.SummariesEnabled() {
		req = r.MakeSummaryRequest(peer, maxItems)
	} else {
		req = r.MakeSyncRequest(maxItems)
	}
	res.KnowledgeBytes = req.KnowledgeWireBytes()
	if err := w.encode(req); err != nil {
		return res, fmt.Errorf("write sync request: %w", err)
	}
	var resp replica.SyncResponse
	if err := w.decode(&resp); err != nil {
		return res, fmt.Errorf("read sync response: %w", err)
	}
	if err := validateResponse(&resp, ver); err != nil {
		return res, err
	}
	if resp.NeedKnowledge {
		res.Fallback = true
		retry := r.MakeFallbackRequest(peer, maxItems, req.Routing)
		res.KnowledgeBytes += retry.KnowledgeWireBytes()
		if err := w.encode(retry); err != nil {
			return res, fmt.Errorf("write fallback request: %w", err)
		}
		resp = replica.SyncResponse{}
		if err := w.decode(&resp); err != nil {
			return res, fmt.Errorf("read fallback response: %w", err)
		}
		if err := validateResponse(&resp, ver); err != nil {
			return res, err
		}
		if resp.NeedKnowledge {
			// An exact frame is always servable; a second demand is hostile.
			return res, &validationError{errors.New("peer demanded knowledge twice")}
		}
	}
	res.Sent = len(resp.Items)
	res.SentBytes = replica.BatchBytes(&resp)
	res.Truncated = resp.Truncated
	res.Apply = r.ApplyBatch(&resp)
	return res, nil
}

// clampItems applies the local per-batch bound to a decoded request.
func clampItems(req *replica.SyncRequest, maxItems int) {
	if maxItems > 0 && (req.MaxItems == 0 || req.MaxItems > maxItems) {
		req.MaxItems = maxItems
	}
}

// serveConn handles one encounter from the accepting side. Batch application
// is transactional: every frame is fully decoded before any replica call, so
// a peer dying mid-batch — truncated frame, slow-loris hitting the deadline,
// oversized input hitting the wire limit — leaves the replica's store and
// knowledge exactly as they were.
func (s *Server) serveConn(conn net.Conn) (err error) {
	timeout := s.IOTimeout
	if timeout <= 0 {
		timeout = defaultIOTimeout
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	limit := s.MaxWireBytes
	if limit <= 0 {
		limit = defaultMaxWireBytes
	}
	w := newWireIO(conn, limit)

	span := obs.SyncSpan{Peer: conn.RemoteAddr().String(), Role: obs.RoleServe}
	if s.Metrics != nil {
		start := time.Now()
		span.Start = start.UnixNano()
		defer func() { record(s.Metrics, span, w, start, err) }()
	}

	max := effectiveMax(s.MaxProtocol)
	var peer hello
	if err := w.decode(&peer); err != nil {
		return fmt.Errorf("transport: read hello: %w", err)
	}
	if peer.Version != protocolBaseVersion {
		return fmt.Errorf("transport: protocol version %d, want %d: %w", peer.Version, protocolBaseVersion, errVersionMismatch)
	}
	ver := negotiate(max, peer)
	span.Peer = string(peer.ID)
	if err := w.encode(localHello(s.replica.ID(), max)); err != nil {
		return fmt.Errorf("transport: write hello: %w", err)
	}
	w.upgrade(ver)

	// Leg 1: we are the source; the dialer pulls from us.
	resp, err := serveBatch(w, s.replica, s.maxItems, ver)
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	span.ItemsSent = len(resp.Items)

	// Leg 2: roles alternate; we pull from the dialer.
	res, err := pullBatch(w, s.replica, peer.ID, s.maxItems, ver)
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	span.ItemsApplied = res.Apply.Stored + res.Apply.Relayed + res.Apply.Tombstones
	if err := w.encode(done{Applied: span.ItemsApplied}); err != nil {
		return fmt.Errorf("transport: write done: %w", err)
	}
	return nil
}

// Close stops accepting and waits for in-flight encounters.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.listener = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// DialOptions configures the dialing side of an encounter.
type DialOptions struct {
	// Retries is the number of additional dial attempts after a transient
	// failure; 0 means a single attempt (no retry). Only EncounterRetry
	// retries.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt;
	// 0 selects 50ms.
	Backoff time.Duration
	// MaxWireBytes bounds the bytes read from the connection, mirroring
	// Server.MaxWireBytes on the dialing side; 0 selects the 64 MiB default.
	// A listener exceeding it fails the encounter mid-decode with nothing
	// applied.
	MaxWireBytes int64
	// Metrics, when set, receives dialed-encounter counters, wire
	// accounting, and sync spans. Nil disables instrumentation.
	Metrics *obs.TransportMetrics
	// MaxProtocol pins the highest protocol version this dialer negotiates,
	// mirroring Server.MaxProtocol; 0 selects the build's maximum.
	MaxProtocol int
}

// Encounter dials addr and performs a full encounter (two syncs with
// alternating roles) on behalf of r. maxItems bounds each pulled batch
// (0 = unlimited). timeout bounds the whole exchange.
func Encounter(r *replica.Replica, addr string, maxItems int, timeout time.Duration) (replica.EncounterResult, error) {
	return EncounterOpts(r, addr, maxItems, timeout, DialOptions{})
}

// EncounterOpts is Encounter with explicit dial options (wire-byte cap,
// metrics sink). The Retries/Backoff fields are ignored here; use
// EncounterRetry for transient-failure retries.
func EncounterOpts(r *replica.Replica, addr string, maxItems int, timeout time.Duration, opts DialOptions) (out replica.EncounterResult, err error) {
	registerWireTypes()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		if opts.Metrics != nil {
			opts.Metrics.EncounterErrors.Inc()
			opts.Metrics.Spans.Record(obs.SyncSpan{
				Start: time.Now().UnixNano(), Peer: addr, Role: obs.RoleDial,
				Err: errClass(err),
			})
		}
		return out, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close() //lint:allow errdiscard -- teardown after the encounter committed or failed transactionally; the exchange's own errors are already returned to the caller
	_ = conn.SetDeadline(time.Now().Add(timeout))
	limit := opts.MaxWireBytes
	if limit <= 0 {
		limit = defaultMaxWireBytes
	}
	w := newWireIO(conn, limit)

	span := obs.SyncSpan{Peer: addr, Role: obs.RoleDial}
	if opts.Metrics != nil {
		start := time.Now()
		span.Start = start.UnixNano()
		defer func() { record(opts.Metrics, span, w, start, err) }()
	}

	max := effectiveMax(opts.MaxProtocol)
	if err := w.encode(localHello(r.ID(), max)); err != nil {
		return out, fmt.Errorf("transport: write hello: %w", err)
	}
	var peer hello
	if err := w.decode(&peer); err != nil {
		return out, fmt.Errorf("transport: read hello: %w", err)
	}
	if peer.Version != protocolBaseVersion {
		return out, fmt.Errorf("transport: protocol version %d, want %d: %w", peer.Version, protocolBaseVersion, errVersionMismatch)
	}
	ver := negotiate(max, peer)
	span.Peer = string(peer.ID)
	w.upgrade(ver)

	// Leg 1: we are the target and pull from the listener.
	out.BtoA, err = pullBatch(w, r, peer.ID, maxItems, ver)
	if err != nil {
		return out, fmt.Errorf("transport: %w", err)
	}
	span.ItemsApplied = out.BtoA.Apply.Stored + out.BtoA.Apply.Relayed + out.BtoA.Apply.Tombstones

	// Leg 2: serve the listener's pull.
	resp, err := serveBatch(w, r, maxItems, ver)
	if err != nil {
		return out, fmt.Errorf("transport: %w", err)
	}
	span.ItemsSent = len(resp.Items)
	out.AtoB.Sent = len(resp.Items)
	out.AtoB.Truncated = resp.Truncated
	var fin done
	if err := w.decode(&fin); err != nil {
		return out, fmt.Errorf("transport: read done: %w", err)
	}
	return out, nil
}

// EncounterRetry performs a full encounter like Encounter, retrying with
// exponential backoff when the dial itself fails transiently (refused, reset,
// or timed out — a peer that is rebooting or not yet listening). Failures
// after the connection is up are never retried: the protocol is transactional
// per encounter, so a broken exchange applies nothing and the caller simply
// schedules a fresh encounter later.
//
// timeout budgets the whole call — attempts and backoff sleeps together.
// Later attempts run under whatever remains of the budget, and retrying stops
// once a backoff sleep would exhaust it, so the call never blocks
// meaningfully past timeout no matter how many retries are allowed.
func EncounterRetry(r *replica.Replica, addr string, maxItems int, timeout time.Duration, opts DialOptions) (replica.EncounterResult, error) {
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	remaining := timeout
	for attempt := 0; ; attempt++ {
		out, err := EncounterOpts(r, addr, maxItems, remaining, opts)
		if err == nil || attempt >= opts.Retries || !transientDialError(err) {
			return out, err
		}
		if remaining = time.Until(deadline); remaining <= backoff {
			// The budget cannot cover the sleep, let alone another attempt.
			return out, err
		}
		if opts.Metrics != nil {
			opts.Metrics.DialRetries.Inc()
		}
		time.Sleep(backoff)
		remaining = time.Until(deadline)
		backoff *= 2
	}
}

// transientDialError reports whether err is a dial-phase failure worth
// retrying. Anything past the dial — protocol errors, mid-exchange
// disconnects — is permanent from this encounter's point of view.
func transientDialError(err error) bool {
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "dial" {
		return false
	}
	return op.Timeout() ||
		errors.Is(op.Err, syscall.ECONNREFUSED) ||
		errors.Is(op.Err, syscall.ECONNRESET)
}
