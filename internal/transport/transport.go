// Package transport runs the replication sync protocol over real TCP
// connections, so the same replica code that powers the trace-driven
// emulations also operates as an actual distributed system.
//
// One connection carries one encounter, mirroring the emulated protocol: a
// hello exchange, then two synchronizations with alternating source/target
// roles. Messages are gob-encoded; gob's self-describing framing makes the
// stream safe without explicit length prefixes.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"replidtn/internal/filter"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/vclock"
)

// protocolVersion guards against wire incompatibilities.
const protocolVersion = 1

// defaultIOTimeout bounds one connection's total I/O when the server does not
// configure its own limit: a peer that stalls (slow-loris, dead link) is cut
// off rather than pinning a handler goroutine.
const defaultIOTimeout = 30 * time.Second

// defaultMaxWireBytes bounds the bytes read from one connection when the
// server does not configure its own limit, so an adversarial or broken peer
// cannot make a handler buffer unbounded gob input.
const defaultMaxWireBytes = 64 << 20

// registerOnce installs the concrete filter and routing-request types that
// travel inside interface-typed sync request fields.
var registerOnce sync.Once

func registerWireTypes() {
	registerOnce.Do(func() {
		gob.Register(filter.All{})
		gob.Register(filter.None{})
		gob.Register(&filter.Addresses{})
		gob.Register(&filter.Or{})
		gob.Register(filter.Kind{})
		gob.Register(&prophet.Request{})
		gob.Register(&maxprop.Request{})
	})
}

// RegisterRequestType makes an additional routing-policy request type
// encodable on the wire; custom policies call this once at startup.
func RegisterRequestType(req routing.Request) {
	registerWireTypes()
	gob.Register(req)
}

// hello opens each connection in both directions.
type hello struct {
	Version int
	ID      vclock.ReplicaID
}

// done closes an encounter: the listener acknowledges that it applied the
// reverse batch, making the exchange synchronous for the dialer.
type done struct {
	Applied int
}

// Server accepts encounters for one replica. The zero value is not usable;
// call NewServer.
type Server struct {
	replica  *replica.Replica
	maxItems int
	// OnError, when set before Listen, observes per-connection protocol
	// errors (primarily for logging and tests).
	OnError func(error)
	// IOTimeout bounds each connection's total I/O time; 0 selects the
	// 30-second default. Set before Listen.
	IOTimeout time.Duration
	// MaxWireBytes bounds the bytes read from one connection; 0 selects the
	// 64 MiB default. A peer exceeding it fails mid-decode and the
	// connection is dropped with nothing applied. Set before Listen.
	MaxWireBytes int64

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a replica. maxItems bounds each served synchronization
// batch (0 = unlimited).
func NewServer(r *replica.Replica, maxItems int) *Server {
	registerWireTypes()
	return &Server{replica: r, maxItems: maxItems}
}

// Listen starts accepting encounters on addr (e.g. "127.0.0.1:0") and returns
// the bound address. It serves connections on background goroutines until
// Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close() //lint:allow errdiscard -- losing the race with Close: the socket was never exposed, so there is no caller to report a close failure to
		return nil, errors.New("transport: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close() //lint:allow errdiscard -- teardown after the batch committed or failed transactionally; a close error cannot un-apply it and serveConn already surfaced any real fault via OnError
			// Errors are per-connection: a misbehaving peer must not take
			// down the server.
			if err := s.serveConn(conn); err != nil && s.OnError != nil {
				s.OnError(err)
			}
		}()
	}
}

// validateRequest rejects structurally malformed sync requests before they
// reach the replica. gob happily decodes a frame with fields omitted or
// forged, and the replica's in-process contract (non-nil knowledge,
// non-negative budgets) must not be enforceable by a hostile peer's byte
// stream: a nil knowledge would panic HandleSyncRequest, and a negative
// MaxItems would bypass the server's batch clamp.
func validateRequest(req *replica.SyncRequest) error {
	if req.Knowledge == nil {
		return errors.New("sync request missing knowledge")
	}
	if req.MaxItems < 0 || req.MaxBytes < 0 {
		return fmt.Errorf("sync request with negative budget (items %d, bytes %d)", req.MaxItems, req.MaxBytes)
	}
	return nil
}

// validateResponse rejects structurally malformed sync responses before
// ApplyBatch, which documents that it is only ever handed complete, valid
// batches: a nil item pointer in a decoded batch would panic it.
func validateResponse(resp *replica.SyncResponse) error {
	for i := range resp.Items {
		if resp.Items[i].Item == nil {
			return fmt.Errorf("batch item %d missing item", i)
		}
	}
	return nil
}

// serveConn handles one encounter from the accepting side. Batch application
// is transactional: every frame is fully decoded before any replica call, so
// a peer dying mid-batch — truncated frame, slow-loris hitting the deadline,
// oversized input hitting the wire limit — leaves the replica's store and
// knowledge exactly as they were.
func (s *Server) serveConn(conn net.Conn) error {
	timeout := s.IOTimeout
	if timeout <= 0 {
		timeout = defaultIOTimeout
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	limit := s.MaxWireBytes
	if limit <= 0 {
		limit = defaultMaxWireBytes
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(&io.LimitedReader{R: conn, N: limit})

	var peer hello
	if err := dec.Decode(&peer); err != nil {
		return fmt.Errorf("transport: read hello: %w", err)
	}
	if peer.Version != protocolVersion {
		return fmt.Errorf("transport: protocol version %d, want %d", peer.Version, protocolVersion)
	}
	if err := enc.Encode(hello{Version: protocolVersion, ID: s.replica.ID()}); err != nil {
		return fmt.Errorf("transport: write hello: %w", err)
	}

	// Leg 1: we are the source; the dialer pulls from us.
	var req replica.SyncRequest
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("transport: read sync request: %w", err)
	}
	if err := validateRequest(&req); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	if s.maxItems > 0 && (req.MaxItems == 0 || req.MaxItems > s.maxItems) {
		req.MaxItems = s.maxItems
	}
	resp := s.replica.HandleSyncRequest(&req)
	//lint:allow transientleak -- BatchItem.Transient is the policy-mediated transmit copy built by transmitTransient (e.g. a halved spray allowance): an explicit field of the wire protocol, not a leak of host-local state
	if err := enc.Encode(resp); err != nil {
		return fmt.Errorf("transport: write sync response: %w", err)
	}

	// Leg 2: roles alternate; we pull from the dialer.
	ourReq := s.replica.MakeSyncRequest(s.maxItems)
	if err := enc.Encode(ourReq); err != nil {
		return fmt.Errorf("transport: write reverse request: %w", err)
	}
	var theirResp replica.SyncResponse
	if err := dec.Decode(&theirResp); err != nil {
		return fmt.Errorf("transport: read reverse response: %w", err)
	}
	if err := validateResponse(&theirResp); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	apply := s.replica.ApplyBatch(&theirResp)
	if err := enc.Encode(done{Applied: apply.Stored + apply.Relayed + apply.Tombstones}); err != nil {
		return fmt.Errorf("transport: write done: %w", err)
	}
	return nil
}

// Close stops accepting and waits for in-flight encounters.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.listener = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Encounter dials addr and performs a full encounter (two syncs with
// alternating roles) on behalf of r. maxItems bounds each pulled batch
// (0 = unlimited). timeout bounds the whole exchange.
func Encounter(r *replica.Replica, addr string, maxItems int, timeout time.Duration) (replica.EncounterResult, error) {
	registerWireTypes()
	var out replica.EncounterResult
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return out, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close() //lint:allow errdiscard -- teardown after the encounter committed or failed transactionally; the exchange's own errors are already returned to the caller
	_ = conn.SetDeadline(time.Now().Add(timeout))
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	if err := enc.Encode(hello{Version: protocolVersion, ID: r.ID()}); err != nil {
		return out, fmt.Errorf("transport: write hello: %w", err)
	}
	var peer hello
	if err := dec.Decode(&peer); err != nil {
		return out, fmt.Errorf("transport: read hello: %w", err)
	}
	if peer.Version != protocolVersion {
		return out, fmt.Errorf("transport: protocol version %d, want %d", peer.Version, protocolVersion)
	}

	// Leg 1: we are the target and pull from the listener.
	req := r.MakeSyncRequest(maxItems)
	if err := enc.Encode(req); err != nil {
		return out, fmt.Errorf("transport: write sync request: %w", err)
	}
	var resp replica.SyncResponse
	if err := dec.Decode(&resp); err != nil {
		return out, fmt.Errorf("transport: read sync response: %w", err)
	}
	if err := validateResponse(&resp); err != nil {
		return out, fmt.Errorf("transport: %w", err)
	}
	out.BtoA.Sent = len(resp.Items)
	out.BtoA.Truncated = resp.Truncated
	out.BtoA.Apply = r.ApplyBatch(&resp)

	// Leg 2: serve the listener's pull.
	var theirReq replica.SyncRequest
	if err := dec.Decode(&theirReq); err != nil {
		return out, fmt.Errorf("transport: read reverse request: %w", err)
	}
	if err := validateRequest(&theirReq); err != nil {
		return out, fmt.Errorf("transport: %w", err)
	}
	ourResp := r.HandleSyncRequest(&theirReq)
	//lint:allow transientleak -- BatchItem.Transient is the policy-mediated transmit copy built by transmitTransient: an explicit field of the wire protocol, not a leak of host-local state
	if err := enc.Encode(ourResp); err != nil {
		return out, fmt.Errorf("transport: write reverse response: %w", err)
	}
	out.AtoB.Sent = len(ourResp.Items)
	out.AtoB.Truncated = ourResp.Truncated
	var fin done
	if err := dec.Decode(&fin); err != nil {
		return out, fmt.Errorf("transport: read done: %w", err)
	}
	return out, nil
}

// DialOptions configures EncounterRetry's handling of transient dial
// failures.
type DialOptions struct {
	// Retries is the number of additional dial attempts after a transient
	// failure; 0 means a single attempt (no retry).
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt;
	// 0 selects 50ms.
	Backoff time.Duration
}

// EncounterRetry performs a full encounter like Encounter, retrying with
// exponential backoff when the dial itself fails transiently (refused, reset,
// or timed out — a peer that is rebooting or not yet listening). Failures
// after the connection is up are never retried: the protocol is transactional
// per encounter, so a broken exchange applies nothing and the caller simply
// schedules a fresh encounter later.
func EncounterRetry(r *replica.Replica, addr string, maxItems int, timeout time.Duration, opts DialOptions) (replica.EncounterResult, error) {
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		out, err := Encounter(r, addr, maxItems, timeout)
		if err == nil || attempt >= opts.Retries || !transientDialError(err) {
			return out, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// transientDialError reports whether err is a dial-phase failure worth
// retrying. Anything past the dial — protocol errors, mid-exchange
// disconnects — is permanent from this encounter's point of view.
func transientDialError(err error) bool {
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "dial" {
		return false
	}
	return op.Timeout() ||
		errors.Is(op.Err, syscall.ECONNREFUSED) ||
		errors.Is(op.Err, syscall.ECONNRESET)
}
