// Package transport runs the replication sync protocol over real TCP
// connections, so the same replica code that powers the trace-driven
// emulations also operates as an actual distributed system.
//
// One connection carries one encounter, mirroring the emulated protocol: a
// hello exchange, then two synchronizations with alternating source/target
// roles. Messages are gob-encoded; gob's self-describing framing makes the
// stream safe without explicit length prefixes.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"replidtn/internal/filter"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/vclock"
)

// protocolVersion guards against wire incompatibilities.
const protocolVersion = 1

// defaultIOTimeout bounds one connection's total I/O when the server does not
// configure its own limit: a peer that stalls (slow-loris, dead link) is cut
// off rather than pinning a handler goroutine.
const defaultIOTimeout = 30 * time.Second

// defaultMaxWireBytes bounds the bytes read from one connection — on both the
// serving and the dialing side — when no explicit limit is configured, so an
// adversarial or broken peer cannot make the other end buffer unbounded gob
// input.
const defaultMaxWireBytes = 64 << 20

// registerOnce installs the concrete filter and routing-request types that
// travel inside interface-typed sync request fields.
var registerOnce sync.Once

func registerWireTypes() {
	registerOnce.Do(func() {
		gob.Register(filter.All{})
		gob.Register(filter.None{})
		gob.Register(&filter.Addresses{})
		gob.Register(&filter.Or{})
		gob.Register(filter.Kind{})
		gob.Register(&prophet.Request{})
		gob.Register(&maxprop.Request{})
	})
}

// RegisterRequestType makes an additional routing-policy request type
// encodable on the wire; custom policies call this once at startup.
func RegisterRequestType(req routing.Request) {
	registerWireTypes()
	gob.Register(req)
}

// hello opens each connection in both directions.
type hello struct {
	Version int
	ID      vclock.ReplicaID
}

// done closes an encounter: the listener acknowledges that it applied the
// reverse batch, making the exchange synchronous for the dialer.
type done struct {
	Applied int
}

// Server accepts encounters for one replica. The zero value is not usable;
// call NewServer.
type Server struct {
	replica  *replica.Replica
	maxItems int
	// OnError, when set before Listen, observes per-connection protocol
	// errors (primarily for logging and tests).
	OnError func(error)
	// IOTimeout bounds each connection's total I/O time; 0 selects the
	// 30-second default. Set before Listen.
	IOTimeout time.Duration
	// MaxWireBytes bounds the bytes read from one connection; 0 selects the
	// 64 MiB default. A peer exceeding it fails mid-decode and the
	// connection is dropped with nothing applied. Set before Listen.
	MaxWireBytes int64
	// Metrics, when set before Listen, receives served-encounter counters,
	// wire accounting, and sync spans. Nil disables instrumentation.
	Metrics *obs.TransportMetrics

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a replica. maxItems bounds each served synchronization
// batch (0 = unlimited).
func NewServer(r *replica.Replica, maxItems int) *Server {
	registerWireTypes()
	return &Server{replica: r, maxItems: maxItems}
}

// Listen starts accepting encounters on addr (e.g. "127.0.0.1:0") and returns
// the bound address. It serves connections on background goroutines until
// Close. A server listens on at most one address: a second Listen while the
// first is active is rejected rather than silently abandoning the first
// listener and its accept goroutine.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close() //lint:allow errdiscard -- losing the race with Close: the socket was never exposed, so there is no caller to report a close failure to
		return nil, errors.New("transport: server closed")
	}
	if s.listener != nil {
		s.mu.Unlock()
		ln.Close() //lint:allow errdiscard -- the socket was never exposed; the caller only learns the Listen was rejected
		return nil, errors.New("transport: server already listening")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close() //lint:allow errdiscard -- teardown after the batch committed or failed transactionally; a close error cannot un-apply it and serveConn already surfaced any real fault via OnError
			// Errors are per-connection: a misbehaving peer must not take
			// down the server.
			if err := s.serveConn(conn); err != nil && s.OnError != nil {
				s.OnError(err)
			}
		}()
	}
}

// validationError marks frames that decoded but failed structural validation:
// the work of a hostile or broken peer, counted separately from transport
// faults.
type validationError struct{ err error }

func (e *validationError) Error() string { return e.err.Error() }
func (e *validationError) Unwrap() error { return e.err }

// errVersionMismatch classifies hello frames from an incompatible peer.
var errVersionMismatch = errors.New("protocol version mismatch")

// validateRequest rejects structurally malformed sync requests before they
// reach the replica. gob happily decodes a frame with fields omitted or
// forged, and the replica's in-process contract (non-nil knowledge,
// non-negative budgets) must not be enforceable by a hostile peer's byte
// stream: a nil knowledge would panic HandleSyncRequest, and a negative
// MaxItems would bypass the server's batch clamp.
func validateRequest(req *replica.SyncRequest) error {
	if req.Knowledge == nil {
		return &validationError{errors.New("sync request missing knowledge")}
	}
	if req.MaxItems < 0 || req.MaxBytes < 0 {
		return &validationError{fmt.Errorf("sync request with negative budget (items %d, bytes %d)", req.MaxItems, req.MaxBytes)}
	}
	return nil
}

// validateResponse rejects structurally malformed sync responses before
// ApplyBatch, which documents that it is only ever handed complete, valid
// batches: a nil item pointer in a decoded batch would panic it.
func validateResponse(resp *replica.SyncResponse) error {
	for i := range resp.Items {
		if resp.Items[i].Item == nil {
			return &validationError{fmt.Errorf("batch item %d missing item", i)}
		}
	}
	return nil
}

// countingReader counts bytes pulled through it into *n. One connection is
// driven by one goroutine, so a plain int64 suffices.
type countingReader struct {
	r io.Reader
	n *int64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	*c.n += int64(n)
	return n, err
}

// countingWriter counts bytes pushed through it into *n.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// wireIO bundles one encounter connection's gob codecs with the wire-byte cap
// and frame/byte accounting the metrics hooks report.
type wireIO struct {
	enc                 *gob.Encoder
	dec                 *gob.Decoder
	bytesIn, bytesOut   int64
	framesIn, framesOut int64
}

func newWireIO(conn net.Conn, limit int64) *wireIO {
	w := &wireIO{}
	w.enc = gob.NewEncoder(countingWriter{w: conn, n: &w.bytesOut})
	w.dec = gob.NewDecoder(&io.LimitedReader{R: countingReader{r: conn, n: &w.bytesIn}, N: limit})
	return w
}

func (w *wireIO) encode(v any) error {
	if err := w.enc.Encode(v); err != nil {
		return err
	}
	w.framesOut++
	return nil
}

func (w *wireIO) decode(v any) error {
	if err := w.dec.Decode(v); err != nil {
		return err
	}
	w.framesIn++
	return nil
}

// errClass buckets an encounter error for spans and counters: "" (success),
// timeout, refused, reset, truncated, validation, protocol, or io.
func errClass(err error) string {
	if err == nil {
		return ""
	}
	var ve *validationError
	if errors.As(err, &ve) {
		return "validation"
	}
	if errors.Is(err, errVersionMismatch) {
		return "protocol"
	}
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	case errors.Is(err, syscall.ECONNREFUSED):
		return "refused"
	case errors.Is(err, syscall.ECONNRESET):
		return "reset"
	case errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF):
		return "truncated"
	}
	return "io"
}

// record folds one finished encounter into the metrics sink. m is non-nil.
func record(m *obs.TransportMetrics, span obs.SyncSpan, w *wireIO, start time.Time, err error) {
	span.BytesIn, span.BytesOut = w.bytesIn, w.bytesOut
	span.DurationMicros = time.Since(start).Microseconds()
	span.Err = errClass(err)
	m.FramesRead.Add(w.framesIn)
	m.FramesWritten.Add(w.framesOut)
	m.BytesRead.Add(w.bytesIn)
	m.BytesWritten.Add(w.bytesOut)
	if span.Err == "validation" {
		m.ValidationRejected.Inc()
	}
	if err != nil {
		m.EncounterErrors.Inc()
	} else {
		if span.Role == obs.RoleServe {
			m.EncountersServed.Inc()
		} else {
			m.EncountersDialed.Inc()
		}
		m.EncounterMicros.Observe(span.DurationMicros)
	}
	m.Spans.Record(span)
}

// serveConn handles one encounter from the accepting side. Batch application
// is transactional: every frame is fully decoded before any replica call, so
// a peer dying mid-batch — truncated frame, slow-loris hitting the deadline,
// oversized input hitting the wire limit — leaves the replica's store and
// knowledge exactly as they were.
func (s *Server) serveConn(conn net.Conn) (err error) {
	timeout := s.IOTimeout
	if timeout <= 0 {
		timeout = defaultIOTimeout
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	limit := s.MaxWireBytes
	if limit <= 0 {
		limit = defaultMaxWireBytes
	}
	w := newWireIO(conn, limit)

	span := obs.SyncSpan{Peer: conn.RemoteAddr().String(), Role: obs.RoleServe}
	if s.Metrics != nil {
		start := time.Now()
		span.Start = start.UnixNano()
		defer func() { record(s.Metrics, span, w, start, err) }()
	}

	var peer hello
	if err := w.decode(&peer); err != nil {
		return fmt.Errorf("transport: read hello: %w", err)
	}
	if peer.Version != protocolVersion {
		return fmt.Errorf("transport: protocol version %d, want %d: %w", peer.Version, protocolVersion, errVersionMismatch)
	}
	span.Peer = string(peer.ID)
	if err := w.encode(hello{Version: protocolVersion, ID: s.replica.ID()}); err != nil {
		return fmt.Errorf("transport: write hello: %w", err)
	}

	// Leg 1: we are the source; the dialer pulls from us.
	var req replica.SyncRequest
	if err := w.decode(&req); err != nil {
		return fmt.Errorf("transport: read sync request: %w", err)
	}
	if err := validateRequest(&req); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	if s.maxItems > 0 && (req.MaxItems == 0 || req.MaxItems > s.maxItems) {
		req.MaxItems = s.maxItems
	}
	resp := s.replica.HandleSyncRequest(&req)
	span.ItemsSent = len(resp.Items)
	//lint:allow transientleak -- BatchItem.Transient is the policy-mediated transmit copy built by transmitTransient (e.g. a halved spray allowance): an explicit field of the wire protocol, not a leak of host-local state
	if err := w.encode(resp); err != nil {
		return fmt.Errorf("transport: write sync response: %w", err)
	}

	// Leg 2: roles alternate; we pull from the dialer.
	ourReq := s.replica.MakeSyncRequest(s.maxItems)
	if err := w.encode(ourReq); err != nil {
		return fmt.Errorf("transport: write reverse request: %w", err)
	}
	var theirResp replica.SyncResponse
	if err := w.decode(&theirResp); err != nil {
		return fmt.Errorf("transport: read reverse response: %w", err)
	}
	if err := validateResponse(&theirResp); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	apply := s.replica.ApplyBatch(&theirResp)
	span.ItemsApplied = apply.Stored + apply.Relayed + apply.Tombstones
	if err := w.encode(done{Applied: span.ItemsApplied}); err != nil {
		return fmt.Errorf("transport: write done: %w", err)
	}
	return nil
}

// Close stops accepting and waits for in-flight encounters.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.listener = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// DialOptions configures the dialing side of an encounter.
type DialOptions struct {
	// Retries is the number of additional dial attempts after a transient
	// failure; 0 means a single attempt (no retry). Only EncounterRetry
	// retries.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt;
	// 0 selects 50ms.
	Backoff time.Duration
	// MaxWireBytes bounds the bytes read from the connection, mirroring
	// Server.MaxWireBytes on the dialing side; 0 selects the 64 MiB default.
	// A listener exceeding it fails the encounter mid-decode with nothing
	// applied.
	MaxWireBytes int64
	// Metrics, when set, receives dialed-encounter counters, wire
	// accounting, and sync spans. Nil disables instrumentation.
	Metrics *obs.TransportMetrics
}

// Encounter dials addr and performs a full encounter (two syncs with
// alternating roles) on behalf of r. maxItems bounds each pulled batch
// (0 = unlimited). timeout bounds the whole exchange.
func Encounter(r *replica.Replica, addr string, maxItems int, timeout time.Duration) (replica.EncounterResult, error) {
	return EncounterOpts(r, addr, maxItems, timeout, DialOptions{})
}

// EncounterOpts is Encounter with explicit dial options (wire-byte cap,
// metrics sink). The Retries/Backoff fields are ignored here; use
// EncounterRetry for transient-failure retries.
func EncounterOpts(r *replica.Replica, addr string, maxItems int, timeout time.Duration, opts DialOptions) (out replica.EncounterResult, err error) {
	registerWireTypes()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		if opts.Metrics != nil {
			opts.Metrics.EncounterErrors.Inc()
			opts.Metrics.Spans.Record(obs.SyncSpan{
				Start: time.Now().UnixNano(), Peer: addr, Role: obs.RoleDial,
				Err: errClass(err),
			})
		}
		return out, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close() //lint:allow errdiscard -- teardown after the encounter committed or failed transactionally; the exchange's own errors are already returned to the caller
	_ = conn.SetDeadline(time.Now().Add(timeout))
	limit := opts.MaxWireBytes
	if limit <= 0 {
		limit = defaultMaxWireBytes
	}
	w := newWireIO(conn, limit)

	span := obs.SyncSpan{Peer: addr, Role: obs.RoleDial}
	if opts.Metrics != nil {
		start := time.Now()
		span.Start = start.UnixNano()
		defer func() { record(opts.Metrics, span, w, start, err) }()
	}

	if err := w.encode(hello{Version: protocolVersion, ID: r.ID()}); err != nil {
		return out, fmt.Errorf("transport: write hello: %w", err)
	}
	var peer hello
	if err := w.decode(&peer); err != nil {
		return out, fmt.Errorf("transport: read hello: %w", err)
	}
	if peer.Version != protocolVersion {
		return out, fmt.Errorf("transport: protocol version %d, want %d: %w", peer.Version, protocolVersion, errVersionMismatch)
	}
	span.Peer = string(peer.ID)

	// Leg 1: we are the target and pull from the listener.
	req := r.MakeSyncRequest(maxItems)
	if err := w.encode(req); err != nil {
		return out, fmt.Errorf("transport: write sync request: %w", err)
	}
	var resp replica.SyncResponse
	if err := w.decode(&resp); err != nil {
		return out, fmt.Errorf("transport: read sync response: %w", err)
	}
	if err := validateResponse(&resp); err != nil {
		return out, fmt.Errorf("transport: %w", err)
	}
	out.BtoA.Sent = len(resp.Items)
	out.BtoA.Truncated = resp.Truncated
	out.BtoA.Apply = r.ApplyBatch(&resp)
	span.ItemsApplied = out.BtoA.Apply.Stored + out.BtoA.Apply.Relayed + out.BtoA.Apply.Tombstones

	// Leg 2: serve the listener's pull.
	var theirReq replica.SyncRequest
	if err := w.decode(&theirReq); err != nil {
		return out, fmt.Errorf("transport: read reverse request: %w", err)
	}
	if err := validateRequest(&theirReq); err != nil {
		return out, fmt.Errorf("transport: %w", err)
	}
	ourResp := r.HandleSyncRequest(&theirReq)
	span.ItemsSent = len(ourResp.Items)
	//lint:allow transientleak -- BatchItem.Transient is the policy-mediated transmit copy built by transmitTransient: an explicit field of the wire protocol, not a leak of host-local state
	if err := w.encode(ourResp); err != nil {
		return out, fmt.Errorf("transport: write reverse response: %w", err)
	}
	out.AtoB.Sent = len(ourResp.Items)
	out.AtoB.Truncated = ourResp.Truncated
	var fin done
	if err := w.decode(&fin); err != nil {
		return out, fmt.Errorf("transport: read done: %w", err)
	}
	return out, nil
}

// EncounterRetry performs a full encounter like Encounter, retrying with
// exponential backoff when the dial itself fails transiently (refused, reset,
// or timed out — a peer that is rebooting or not yet listening). Failures
// after the connection is up are never retried: the protocol is transactional
// per encounter, so a broken exchange applies nothing and the caller simply
// schedules a fresh encounter later.
//
// timeout budgets the whole call — attempts and backoff sleeps together.
// Later attempts run under whatever remains of the budget, and retrying stops
// once a backoff sleep would exhaust it, so the call never blocks
// meaningfully past timeout no matter how many retries are allowed.
func EncounterRetry(r *replica.Replica, addr string, maxItems int, timeout time.Duration, opts DialOptions) (replica.EncounterResult, error) {
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	remaining := timeout
	for attempt := 0; ; attempt++ {
		out, err := EncounterOpts(r, addr, maxItems, remaining, opts)
		if err == nil || attempt >= opts.Retries || !transientDialError(err) {
			return out, err
		}
		if remaining = time.Until(deadline); remaining <= backoff {
			// The budget cannot cover the sleep, let alone another attempt.
			return out, err
		}
		if opts.Metrics != nil {
			opts.Metrics.DialRetries.Inc()
		}
		time.Sleep(backoff)
		remaining = time.Until(deadline)
		backoff *= 2
	}
}

// transientDialError reports whether err is a dial-phase failure worth
// retrying. Anything past the dial — protocol errors, mid-exchange
// disconnects — is permanent from this encounter's point of view.
func transientDialError(err error) bool {
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "dial" {
		return false
	}
	return op.Timeout() ||
		errors.Is(op.Err, syscall.ECONNREFUSED) ||
		errors.Is(op.Err, syscall.ECONNRESET)
}
