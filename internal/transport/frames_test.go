package transport

import (
	"encoding/binary"
	"encoding/gob"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
)

// Regression tests for the v3 per-frame wire cap: a frame whose length
// prefix exceeds MaxWireBytes must be rejected before the body is buffered
// (decode side, both roles), and a local batch too large for the cap must
// fail the encounter before anything reaches the connection (encode side,
// both roles).

// TestServeRejectsOversizedFrameHeader: a peer that completes the hello
// exchange at v3 and then claims a frame bigger than the server's wire cap
// is cut off on the length prefix alone — before the server buffers a single
// body byte — and counted as a validation rejection.
func TestServeRejectsOversizedFrameHeader(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	srv.MaxWireBytes = 4 << 10
	srv.Metrics = &obs.TransportMetrics{}
	errCh := make(chan error, 1)
	srv.OnError = func(err error) { errCh <- err }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := netDial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := encodeHello(conn, hello{Version: protocolBaseVersion, ID: "evil", Max: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	var peer hello
	if err := gob.NewDecoder(conn).Decode(&peer); err != nil {
		t.Fatalf("read server hello: %v", err)
	}
	// A frame header claiming 1 GiB against a 4 KiB cap, with no body behind
	// it: if the server tried to buffer the body it would block until the
	// deadline instead of failing fast on the prefix.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !strings.Contains(err.Error(), "exceeds") {
			t.Errorf("server error does not name the wire limit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not reject the oversized frame header")
	}
	if got := srv.Metrics.ValidationRejected.Value(); got != 1 {
		t.Errorf("ValidationRejected = %d, want 1", got)
	}
	if total, _, _ := a.StoreLen(); total != 0 {
		t.Errorf("oversized frame left %d items in the store", total)
	}
}

// TestDialerRejectsOversizedFrameHeader mirrors the header check on the
// dialing side: a listener claiming an over-cap frame fails the encounter on
// the prefix, classified as a validation rejection, with nothing applied.
func TestDialerRejectsOversizedFrameHeader(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	served := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			served <- err
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		var h hello
		if err := dec.Decode(&h); err != nil {
			served <- err
			return
		}
		if err := gob.NewEncoder(conn).Encode(hello{Version: protocolBaseVersion, ID: "fake", Max: protocolVersion}); err != nil {
			served <- err
			return
		}
		// Ignore the dialer's leg-1 request; answer with a hostile header.
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 1<<30)
		_, err = conn.Write(hdr[:])
		served <- err
	}()

	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	knowBefore := a.Knowledge()
	m := &obs.TransportMetrics{}
	_, err = EncounterOpts(a, ln.Addr().String(), 0, 2*time.Second,
		DialOptions{MaxWireBytes: 4 << 10, Metrics: m})
	if err == nil {
		t.Fatal("oversized frame header should fail the dialer")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("dialer error does not name the wire limit: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("fake peer: %v", err)
	}
	if got := m.ValidationRejected.Value(); got != 1 {
		t.Errorf("ValidationRejected = %d, want 1", got)
	}
	if !a.Knowledge().Equal(knowBefore) {
		t.Error("oversized frame perturbed the dialer's knowledge")
	}
}

// TestServeEncodeSideFrameCap: a server whose own batch exceeds its wire cap
// fails the encounter at frame assembly — before a byte reaches the peer —
// instead of shipping a frame the peer (symmetric cap) is bound to reject.
func TestServeEncodeSideFrameCap(t *testing.T) {
	big := replica.New(replica.Config{ID: "big", OwnAddresses: []string{"addr:big"}})
	big.CreateItem(item.Metadata{
		Source: "addr:big", Destinations: []string{"addr:a"}, Kind: "message",
	}, make([]byte, 64<<10))
	srv := NewServer(big, 0)
	srv.MaxWireBytes = 4 << 10
	var mu sync.Mutex
	var serveErr error
	srv.OnError = func(err error) { mu.Lock(); serveErr = err; mu.Unlock() }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	if _, err := Encounter(a, addr.String(), 0, 2*time.Second); err == nil {
		t.Fatal("over-cap response should fail the encounter")
	}
	if total, _, _ := a.StoreLen(); total != 0 {
		t.Errorf("dialer stored %d items from a rejected frame", total)
	}
	srv.Close()
	mu.Lock()
	defer mu.Unlock()
	if serveErr == nil || !strings.Contains(serveErr.Error(), "outgoing frame") {
		t.Errorf("server error is not the encode-side cap: %v", serveErr)
	}
}

// TestDialEncodeSideFrameCap mirrors the encode-side cap on the dialing
// side: the dialer's leg-2 batch exceeds its own cap and fails locally.
func TestDialEncodeSideFrameCap(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	big := replica.New(replica.Config{ID: "big", OwnAddresses: []string{"addr:big"}})
	big.CreateItem(item.Metadata{
		Source: "addr:big", Destinations: []string{"addr:a"}, Kind: "message",
	}, make([]byte, 64<<10))
	_, err = EncounterOpts(big, addr.String(), 0, 2*time.Second, DialOptions{MaxWireBytes: 4 << 10})
	if err == nil {
		t.Fatal("over-cap batch should fail the dialer")
	}
	if !strings.Contains(err.Error(), "outgoing frame") {
		t.Errorf("dialer error is not the encode-side cap: %v", err)
	}
	if total, _, _ := a.StoreLen(); total != 0 {
		t.Errorf("server stored %d items from a failed encounter", total)
	}
}
