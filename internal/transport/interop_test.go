package transport

import (
	"fmt"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/vclock"
)

// summaryNode builds a summaries-enabled replica for the interop matrix.
// Whether summary frames actually travel is then decided purely by version
// negotiation, which is exactly what the matrix varies.
func summaryNode(t *testing.T, id, addr string) *replica.Replica {
	t.Helper()
	return replica.New(replica.Config{
		ID:            vclock.ReplicaID(id),
		OwnAddresses:  []string{addr},
		SyncSummaries: true,
	})
}

// applyPair is the observable outcome of one encounter as the dialer sees
// it: what the pulled batch did locally, and how many items moved each way.
// (The server-side apply stats travel back only as the done frame's count.)
type applyPair struct {
	BtoA   replica.ApplyStats
	SentAB int
	SentBA int
}

func pair(res replica.EncounterResult) applyPair {
	return applyPair{
		BtoA:   res.BtoA.Apply,
		SentAB: res.AtoB.Sent,
		SentBA: res.BtoA.Sent,
	}
}

// TestDowngradeInteropMatrix runs the same two-encounter exchange over real
// TCP under every combination of pinned protocol versions. The delivered
// results must be bit-identical whether the pair negotiates v3 (binary
// frames), v2 (gob summary frames), v1 (gob exact frames), or a mixed pin
// that forces a downgrade; only the frame representation may differ. A pin
// at v2 on either side must downgrade a v3 peer to gob framing with summary
// knowledge intact, and pinned-v1 runs must not emit a single summary frame.
func TestDowngradeInteropMatrix(t *testing.T) {
	type outcome struct {
		first, second applyPair
		delivered     int
		deltasA       int
		deltasB       int
		digests       int
	}
	exchange := func(serverMax, dialerMax int) outcome {
		a := summaryNode(t, "a", "addr:a")
		b := summaryNode(t, "b", "addr:b")
		sendMsg(a, "addr:a", "addr:b")
		sendMsg(a, "addr:a", "addr:b")
		sendMsg(b, "addr:b", "addr:a")

		srv := NewServer(a, 0)
		srv.MaxProtocol = serverMax
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		opts := DialOptions{MaxProtocol: dialerMax}

		res1, err := EncounterOpts(b, addr.String(), 0, testTimeout, opts)
		if err != nil {
			t.Fatalf("server=v%d dialer=v%d first encounter: %v", serverMax, dialerMax, err)
		}
		// New traffic between encounters so the second sync ships items too —
		// the recurring-pair path must move data, not just empty frames.
		sendMsg(a, "addr:a", "addr:b")
		sendMsg(b, "addr:b", "addr:a")
		res2, err := EncounterOpts(b, addr.String(), 0, testTimeout, opts)
		if err != nil {
			t.Fatalf("server=v%d dialer=v%d second encounter: %v", serverMax, dialerMax, err)
		}
		return outcome{
			first:     pair(res1),
			second:    pair(res2),
			delivered: a.Stats().Delivered + b.Stats().Delivered,
			deltasA:   a.Stats().KnowledgeDeltas,
			deltasB:   b.Stats().KnowledgeDeltas,
			digests:   a.Stats().KnowledgeDigests + b.Stats().KnowledgeDigests,
		}
	}

	pins := []struct{ server, dialer int }{
		{3, 3}, {2, 2}, {3, 2}, {2, 3}, {1, 2}, {2, 1}, {3, 1}, {1, 3}, {1, 1},
	}
	results := make([]outcome, len(pins))
	for i, p := range pins {
		results[i] = exchange(p.server, p.dialer)
	}
	for i, p := range pins[1:] {
		got, want := results[i+1], results[0]
		if got.first != want.first || got.second != want.second || got.delivered != want.delivered {
			t.Errorf("server=v%d dialer=v%d delivered differently than v3/v3:\ngot  %+v / %+v (delivered %d)\nwant %+v / %+v (delivered %d)",
				p.server, p.dialer, got.first, got.second, got.delivered,
				want.first, want.second, want.delivered)
		}
	}
	// At v2 or above — including every downgrade to v2 — the second encounter
	// of a recurring pair runs on delta knowledge, on both roles (each side is
	// target for one leg).
	for i, p := range pins {
		if p.server >= 2 && p.dialer >= 2 {
			if results[i].deltasA == 0 || results[i].deltasB == 0 {
				t.Errorf("server=v%d dialer=v%d recurring pair did not upgrade to delta knowledge: a=%d b=%d deltas",
					p.server, p.dialer, results[i].deltasA, results[i].deltasB)
			}
		}
	}
	// Any pin at v1 must force exact frames end to end: negotiation, not
	// configuration, decides — both replicas had summaries enabled.
	for i, p := range pins[1:] {
		r := results[i+1]
		if p.server == 1 || p.dialer == 1 {
			if r.deltasA+r.deltasB+r.digests != 0 {
				t.Errorf("server=v%d dialer=v%d emitted summary frames despite v1 pin: %d deltas (a) %d deltas (b) %d digests",
					p.server, p.dialer, r.deltasA, r.deltasB, r.digests)
			}
		}
	}
	// Sanity: everything addressed got delivered in every configuration.
	for i, r := range results {
		if r.delivered != 5 {
			t.Errorf("pin combo %d delivered %d of 5 messages", i, r.delivered)
		}
	}
}

// TestInteropDigestFallbackOverTCP drives a v2 encounter whose request
// carries a Bloom digest that is necessarily ambiguous — the server stores
// items whose versions are in the target's exception set, and the filter has
// no false negatives — so the exact-knowledge fallback round runs end to end
// over TCP. The delivered batch must still match a v1 run exactly.
func TestInteropDigestFallbackOverTCP(t *testing.T) {
	build := func(summaries bool) (*replica.Replica, *replica.Replica) {
		a := replica.New(replica.Config{
			ID: "a", OwnAddresses: []string{"addr:a"},
			Policy:        epidemic.New(10),
			SyncSummaries: summaries, SummaryDigestMin: 1,
		})
		b := replica.New(replica.Config{
			ID: "b", OwnAddresses: []string{"addr:b"},
			SyncSummaries: summaries, SummaryDigestMin: 1,
		})
		// Each feeder creates three items addressed only to a before three
		// addressed to both a and b, so b's knowledge of the feeder is pure
		// exceptions above an empty base — and a, receiving the dual-addressed
		// items through its own filter, holds versions inside b's exception
		// set: candidates the Bloom digest can never decide (no false
		// negatives), guaranteeing the fallback round.
		for i := 0; i < 4; i++ {
			fid := fmt.Sprintf("f%d", i)
			f := replica.New(replica.Config{
				ID: vclock.ReplicaID(fid), OwnAddresses: []string{"addr:" + fid},
			})
			for j := 0; j < 3; j++ {
				sendMsg(f, "addr:"+fid, "addr:a")
			}
			for j := 0; j < 3; j++ {
				f.CreateItem(item.Metadata{
					Source:       "addr:" + fid,
					Destinations: []string{"addr:a", "addr:b"},
					Kind:         "message",
				}, []byte("dual"))
			}
			replica.Encounter(f, b, 0)
			replica.Encounter(f, a, 0)
		}
		for i := 0; i < 4; i++ {
			sendMsg(a, "addr:a", "addr:b")
		}
		return a, b
	}

	run := func(summaries bool) (applyPair, int, int, int) {
		a, b := build(summaries)
		srv := NewServer(a, 0)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		res, err := EncounterOpts(b, addr.String(), 0, testTimeout, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return pair(res), b.Stats().Delivered, b.Stats().KnowledgeDigests, b.Stats().SummaryFallbacks
	}

	plain, plainDelivered, _, _ := run(false)
	sum, sumDelivered, digests, fallbacks := run(true)
	if plain != sum || plainDelivered != sumDelivered {
		t.Errorf("digest-mode TCP encounter delivered differently than v1:\nv1 %+v (delivered %d)\nv2 %+v (delivered %d)",
			plain, plainDelivered, sum, sumDelivered)
	}
	if digests == 0 {
		t.Error("scenario never sent a Bloom digest — not exercising the summary path")
	}
	if fallbacks == 0 {
		t.Error("guaranteed-ambiguous digest did not trigger the fallback round")
	}
	if sum.BtoA.Duplicates != 0 {
		t.Errorf("fallback round re-sent known items: %d duplicates", sum.BtoA.Duplicates)
	}
}
