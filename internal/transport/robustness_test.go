package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/vclock"
)

// TestServerSurvivesGarbageConnections fires random bytes, empty
// connections, and abrupt disconnects at a server and verifies it keeps
// serving well-formed encounters afterwards with unchanged state.
func TestServerSurvivesGarbageConnections(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	a.CreateItem(item.Metadata{
		Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
	}, []byte("survives"))
	srv := NewServer(a, 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			conn, err := net.DialTimeout("tcp", addr.String(), time.Second)
			if err != nil {
				return
			}
			defer conn.Close()
			switch i % 3 {
			case 0: // random garbage
				buf := make([]byte, 64+rng.Intn(512))
				rng.Read(buf)
				conn.Write(buf)
			case 1: // immediate disconnect
			case 2: // valid hello then garbage
				encodeHello(conn, hello{Version: protocolBaseVersion, ID: "x"})
				conn.Write([]byte{0xde, 0xad, 0xbe, 0xef})
			}
		}()
	}
	wg.Wait()

	// The server must still complete a well-formed encounter.
	b := replica.New(replica.Config{ID: "b", OwnAddresses: []string{"addr:b"}})
	res, err := Encounter(b, addr.String(), 0, 5*time.Second)
	if err != nil {
		t.Fatalf("encounter after abuse: %v", err)
	}
	if res.BtoA.Apply.Delivered != 1 {
		t.Errorf("delivery after abuse failed: %+v", res)
	}
	// Garbage must not have perturbed the replica.
	if total, live, _ := a.StoreLen(); total != 1 || live != 1 {
		t.Errorf("server replica store corrupted: %d/%d", total, live)
	}
	if a.Stats().Duplicates != 0 {
		t.Error("duplicates after abuse")
	}
}

// TestGarbageNeverPanics decodes adversarial inputs directly through the
// server handler path via raw connections and just asserts the process
// survives (the handler returns errors instead of panicking).
func TestGarbageNeverPanics(t *testing.T) {
	a := replica.New(replica.Config{ID: vclock.ReplicaID("a"), OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	var gotErr int
	var mu sync.Mutex
	srv.OnError = func(error) { mu.Lock(); gotErr++; mu.Unlock() }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		conn, err := net.DialTimeout("tcp", addr.String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		conn.Write(buf)
		conn.Close()
	}
	// Give handlers a moment to observe the closed connections.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := gotErr
		mu.Unlock()
		if n >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotErr == 0 {
		t.Error("expected at least one surfaced protocol error")
	}
}

// chokeWriter forwards writes to a connection until its limit is exhausted,
// then fails mid-write — the wire sees a prefix of a valid frame, exactly
// what a link dying mid-batch produces.
type chokeWriter struct {
	conn  net.Conn
	limit int // -1 = unlimited
}

func (c *chokeWriter) Write(p []byte) (int, error) {
	if c.limit < 0 {
		return c.conn.Write(p)
	}
	if len(p) > c.limit {
		c.conn.Write(p[:c.limit])
		c.limit = 0
		return 0, errTruncated
	}
	c.limit -= len(p)
	return c.conn.Write(p)
}

var errTruncated = errors.New("link died mid-frame")

// TestTruncatedBatchAppliesNothing: a peer that dies mid-frame while sending
// its batch must leave the dialer's replica untouched — knowledge and store
// bit-identical — so the next encounter resumes the full exchange.
func TestTruncatedBatchAppliesNothing(t *testing.T) {
	peer := replica.New(replica.Config{ID: "peer", OwnAddresses: []string{"addr:peer"}})
	for i := 0; i < 5; i++ {
		peer.CreateItem(item.Metadata{
			Source: "addr:peer", Destinations: []string{"addr:a"}, Kind: "message",
		}, []byte(fmt.Sprintf("msg-%d", i)))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	served := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			served <- err
			return
		}
		defer conn.Close()
		// Speak the protocol honestly up to the batch, then die mid-frame.
		cw := &chokeWriter{conn: conn, limit: -1}
		enc := gob.NewEncoder(cw)
		dec := gob.NewDecoder(conn)
		var h hello
		if err := dec.Decode(&h); err != nil {
			served <- err
			return
		}
		if err := enc.Encode(hello{Version: protocolBaseVersion, ID: "peer"}); err != nil {
			served <- err
			return
		}
		var req replica.SyncRequest
		if err := dec.Decode(&req); err != nil {
			served <- err
			return
		}
		resp := peer.HandleSyncRequest(&req)
		cw.limit = 20 // the batch frame is cut after 20 bytes
		if err := enc.Encode(resp); err != errTruncated {
			served <- fmt.Errorf("expected truncation, got %v", err)
			return
		}
		served <- nil
	}()

	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	knowBefore := a.Knowledge()
	if _, err := Encounter(a, ln.Addr().String(), 0, 2*time.Second); err == nil {
		t.Fatal("truncated batch should fail the encounter")
	}
	if err := <-served; err != nil {
		t.Fatalf("fake peer: %v", err)
	}
	if !a.Knowledge().Equal(knowBefore) {
		t.Errorf("truncated batch perturbed knowledge: %s -> %s", knowBefore, a.Knowledge())
	}
	if total, _, _ := a.StoreLen(); total != 0 {
		t.Errorf("truncated batch left %d items in the store", total)
	}
	if a.Stats().Duplicates != 0 {
		t.Error("duplicates after truncated batch")
	}
}

// TestOversizedBatchRejected: a server with a small wire-byte budget cuts off
// a peer shipping an oversized batch, applies nothing, and keeps serving.
func TestOversizedBatchRejected(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	srv.MaxWireBytes = 4 << 10
	var mu sync.Mutex
	var errs int
	srv.OnError = func(error) { mu.Lock(); errs++; mu.Unlock() }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	big := replica.New(replica.Config{ID: "big", OwnAddresses: []string{"addr:big"}})
	big.CreateItem(item.Metadata{
		Source: "addr:big", Destinations: []string{"addr:a"}, Kind: "message",
	}, make([]byte, 64<<10))
	if _, err := Encounter(big, addr.String(), 0, 2*time.Second); err == nil {
		t.Fatal("oversized batch should fail the encounter")
	}
	if total, _, _ := a.StoreLen(); total != 0 {
		t.Errorf("oversized batch left %d items in the server store", total)
	}
	mu.Lock()
	n := errs
	mu.Unlock()
	if n == 0 {
		t.Error("server surfaced no error for the oversized batch")
	}
	// A reasonable peer still syncs fine afterwards.
	small := replica.New(replica.Config{ID: "small", OwnAddresses: []string{"addr:small"}})
	if _, err := Encounter(small, addr.String(), 0, 2*time.Second); err != nil {
		t.Errorf("server unusable after oversized batch: %v", err)
	}
}

// TestSlowLorisCutOffByDeadline: a peer that connects and stalls is
// disconnected once the server's I/O deadline expires, and Close does not
// hang on the abandoned handler.
func TestSlowLorisCutOffByDeadline(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	srv.IOTimeout = 200 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := netDial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dribble one hello byte and stall; the server must hang up on its own.
	conn.Write([]byte{0x1f})
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected server to close the stalled connection")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("server took %v to cut off a stalled peer", waited)
	}
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung on a stalled handler")
	}
}

// TestNoGoroutineLeaksAfterAbuse: after garbage connections, stalled peers,
// and clean encounters, closing the server returns the process to its
// pre-test goroutine population.
func TestNoGoroutineLeaksAfterAbuse(t *testing.T) {
	before := runtime.NumGoroutine()
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	srv.IOTimeout = 200 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		conn, err := netDial(addr.String())
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0:
			conn.Write([]byte{0xba, 0xad})
			conn.Close()
		case 1:
			conn.Close()
		case 2:
			// Stalled: left open for the deadline to collect.
			defer conn.Close()
		}
	}
	b := replica.New(replica.Config{ID: "b", OwnAddresses: []string{"addr:b"}})
	if _, err := Encounter(b, addr.String(), 0, 2*time.Second); err != nil {
		t.Fatalf("clean encounter amid abuse: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Handlers exit with Close; give the runtime a moment to reap them.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestEncounterRetryRecoversFromRefused: a peer that is not yet listening
// refuses the dial; bounded retry-with-backoff rides out the gap and the
// encounter completes once the server comes up.
func TestEncounterRetryRecoversFromRefused(t *testing.T) {
	// Reserve a port, then free it so the first dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	a.CreateItem(item.Metadata{
		Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
	}, []byte("late"))
	srvUp := make(chan *Server, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		srv := NewServer(replica.New(replica.Config{ID: "b", OwnAddresses: []string{"addr:b"}}), 0)
		if _, err := srv.Listen(addr); err != nil {
			t.Error(err)
		}
		srvUp <- srv
	}()
	b := replica.New(replica.Config{ID: "c", OwnAddresses: []string{"addr:c"}})
	res, err := EncounterRetry(b, addr, 0, 2*time.Second, DialOptions{Retries: 20, Backoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("retry never reached the late server: %v", err)
	}
	_ = res
	(<-srvUp).Close()
}

// TestEncounterRetryNotOnProtocolError: failures after the dial — here a
// version mismatch — are permanent for this encounter and must not be
// retried.
func TestEncounterRetryNotOnProtocolError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	accepts := 0
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			accepts++
			mu.Unlock()
			dec := gob.NewDecoder(conn)
			var h hello
			dec.Decode(&h)
			gob.NewEncoder(conn).Encode(hello{Version: 99, ID: "zeta"})
			conn.Close()
		}
	}()
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	if _, err := EncounterRetry(a, ln.Addr().String(), 0, time.Second, DialOptions{Retries: 5, Backoff: 10 * time.Millisecond}); err == nil {
		t.Fatal("version mismatch should fail the encounter")
	}
	mu.Lock()
	defer mu.Unlock()
	if accepts != 1 {
		t.Errorf("protocol error was retried: %d connection attempts", accepts)
	}
}
