package transport

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/vclock"
)

// TestServerSurvivesGarbageConnections fires random bytes, empty
// connections, and abrupt disconnects at a server and verifies it keeps
// serving well-formed encounters afterwards with unchanged state.
func TestServerSurvivesGarbageConnections(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	a.CreateItem(item.Metadata{
		Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
	}, []byte("survives"))
	srv := NewServer(a, 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			conn, err := net.DialTimeout("tcp", addr.String(), time.Second)
			if err != nil {
				return
			}
			defer conn.Close()
			switch i % 3 {
			case 0: // random garbage
				buf := make([]byte, 64+rng.Intn(512))
				rng.Read(buf)
				conn.Write(buf)
			case 1: // immediate disconnect
			case 2: // valid hello then garbage
				encodeHello(conn, hello{Version: protocolVersion, ID: "x"})
				conn.Write([]byte{0xde, 0xad, 0xbe, 0xef})
			}
		}()
	}
	wg.Wait()

	// The server must still complete a well-formed encounter.
	b := replica.New(replica.Config{ID: "b", OwnAddresses: []string{"addr:b"}})
	res, err := Encounter(b, addr.String(), 0, 5*time.Second)
	if err != nil {
		t.Fatalf("encounter after abuse: %v", err)
	}
	if res.BtoA.Apply.Delivered != 1 {
		t.Errorf("delivery after abuse failed: %+v", res)
	}
	// Garbage must not have perturbed the replica.
	if total, live, _ := a.StoreLen(); total != 1 || live != 1 {
		t.Errorf("server replica store corrupted: %d/%d", total, live)
	}
	if a.Stats().Duplicates != 0 {
		t.Error("duplicates after abuse")
	}
}

// TestGarbageNeverPanics decodes adversarial inputs directly through the
// server handler path via raw connections and just asserts the process
// survives (the handler returns errors instead of panicking).
func TestGarbageNeverPanics(t *testing.T) {
	a := replica.New(replica.Config{ID: vclock.ReplicaID("a"), OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	var gotErr int
	var mu sync.Mutex
	srv.OnError = func(error) { mu.Lock(); gotErr++; mu.Unlock() }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		conn, err := net.DialTimeout("tcp", addr.String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		conn.Write(buf)
		conn.Close()
	}
	// Give handlers a moment to observe the closed connections.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := gotErr
		mu.Unlock()
		if n >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotErr == 0 {
		t.Error("expected at least one surfaced protocol error")
	}
}
