package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/vclock"
)

const testTimeout = 5 * time.Second

func node(t *testing.T, id, addr string) *replica.Replica {
	t.Helper()
	return replica.New(replica.Config{
		ID:           vclock.ReplicaID(id),
		OwnAddresses: []string{addr},
	})
}

func sendMsg(r *replica.Replica, from, to string) *item.Item {
	return r.CreateItem(item.Metadata{
		Source: from, Destinations: []string{to}, Kind: "message",
	}, []byte("over tcp"))
}

func serve(t *testing.T, r *replica.Replica, maxItems int) (string, *Server) {
	t.Helper()
	srv := NewServer(r, maxItems)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String(), srv
}

func TestEncounterDeliversBothDirections(t *testing.T) {
	a := node(t, "a", "addr:a")
	b := node(t, "b", "addr:b")
	ma := sendMsg(a, "addr:a", "addr:b")
	mb := sendMsg(b, "addr:b", "addr:a")

	addr, _ := serve(t, a, 0)
	res, err := Encounter(b, addr, 0, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.BtoA.Sent != 1 || res.BtoA.Apply.Delivered != 1 {
		t.Errorf("pull leg: %+v", res.BtoA)
	}
	if res.AtoB.Sent != 1 {
		t.Errorf("push leg: %+v", res.AtoB)
	}
	if !b.HasItem(ma.ID) {
		t.Error("b missing a's message")
	}
	if !a.HasItem(mb.ID) {
		t.Error("a missing b's message")
	}
	if a.Stats().Delivered != 1 || b.Stats().Delivered != 1 {
		t.Error("both sides should deliver exactly once")
	}
}

func TestRepeatEncountersSendNothingNew(t *testing.T) {
	a := node(t, "a", "addr:a")
	b := node(t, "b", "addr:b")
	sendMsg(a, "addr:a", "addr:b")
	addr, _ := serve(t, a, 0)
	if _, err := Encounter(b, addr, 0, testTimeout); err != nil {
		t.Fatal(err)
	}
	res, err := Encounter(b, addr, 0, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.BtoA.Sent != 0 || res.AtoB.Sent != 0 {
		t.Errorf("second encounter moved items: %+v", res)
	}
	if b.Stats().Duplicates != 0 {
		t.Error("duplicate receipt over TCP")
	}
}

func TestServerSideBandwidthCap(t *testing.T) {
	a := node(t, "a", "addr:a")
	b := node(t, "b", "addr:b")
	for i := 0; i < 5; i++ {
		sendMsg(a, "addr:a", "addr:b")
	}
	addr, _ := serve(t, a, 2)
	res, err := Encounter(b, addr, 0, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.BtoA.Sent != 2 || !res.BtoA.Truncated {
		t.Errorf("server cap not applied: %+v", res.BtoA)
	}
}

func TestPolicyRequestsTravelOnTheWire(t *testing.T) {
	now := func() int64 { return 0 }
	mk := func(id, addr string) *replica.Replica {
		return replica.New(replica.Config{
			ID:           vclock.ReplicaID(id),
			OwnAddresses: []string{addr},
			Policy:       prophet.New(prophet.DefaultParams(), now, addr),
		})
	}
	a := mk("a", "addr:a")
	b := mk("b", "addr:b")
	c := mk("c", "addr:c")
	msg := sendMsg(a, "addr:a", "addr:c")

	// b meets c so b's predictability for addr:c rises, then a meets b and
	// should hand over the message — all over TCP.
	addrC, _ := serve(t, c, 0)
	if _, err := Encounter(b, addrC, 0, testTimeout); err != nil {
		t.Fatal(err)
	}
	addrB, _ := serve(t, b, 0)
	if _, err := Encounter(a, addrB, 0, testTimeout); err != nil {
		t.Fatal(err)
	}
	if !b.HasItem(msg.ID) {
		t.Fatal("PROPHET did not forward over TCP")
	}
	if _, err := Encounter(b, addrC, 0, testTimeout); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Delivered != 1 {
		t.Error("message not delivered via TCP relay chain")
	}
}

func TestMaxPropRequestsTravel(t *testing.T) {
	now := func() int64 { return 0 }
	mk := func(id, addr string) *replica.Replica {
		return replica.New(replica.Config{
			ID:           vclock.ReplicaID(id),
			OwnAddresses: []string{addr},
			Policy:       maxprop.New(vclock.ReplicaID(id), 3, now, addr),
		})
	}
	a := mk("a", "addr:a")
	b := mk("b", "addr:b")
	msg := sendMsg(a, "addr:a", "addr:z")
	addr, _ := serve(t, a, 0)
	if _, err := Encounter(b, addr, 0, testTimeout); err != nil {
		t.Fatal(err)
	}
	if !b.HasItem(msg.ID) {
		t.Error("MaxProp flooding failed over TCP")
	}
}

func TestConcurrentEncounters(t *testing.T) {
	hub := replica.New(replica.Config{
		ID:           "hub",
		OwnAddresses: []string{"addr:hub"},
		Policy:       epidemic.New(10),
	})
	addr, _ := serve(t, hub, 0)

	const n = 8
	nodes := make([]*replica.Replica, n)
	for i := range nodes {
		nodes[i] = replica.New(replica.Config{
			ID:           vclock.ReplicaID(fmt.Sprintf("n%d", i)),
			OwnAddresses: []string{fmt.Sprintf("addr:%d", i)},
			Policy:       epidemic.New(10),
		})
		sendMsg(nodes[i], fmt.Sprintf("addr:%d", i), "addr:hub")
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, nd := range nodes {
		nd := nd
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Encounter(nd, addr, 0, testTimeout); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := hub.Stats().Delivered; got != n {
		t.Errorf("hub delivered %d messages, want %d", got, n)
	}
	if hub.Stats().Duplicates != 0 {
		t.Error("duplicates under concurrency")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	a := node(t, "a", "addr:a")
	addr, _ := serve(t, a, 0)
	conn, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := encodeHello(conn, hello{Version: 99, ID: "evil"}); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection without a hello reply; reading the
	// reply should fail quickly.
	if err := expectClosed(conn); err != nil {
		t.Error(err)
	}
}

func TestCloseIsIdempotentAndBlocksListen(t *testing.T) {
	a := node(t, "a", "addr:a")
	srv := NewServer(a, 0)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("listen after close should fail")
	}
}

func TestDialFailure(t *testing.T) {
	a := node(t, "a", "addr:a")
	if _, err := Encounter(a, "127.0.0.1:1", 0, 200*time.Millisecond); err == nil {
		t.Error("dialing a dead port should fail")
	}
}
